#include "alamr/opt/lbfgs.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "alamr/linalg/matrix.hpp"

namespace alamr::opt {

namespace {

using linalg::dot;

struct CorrectionPair {
  std::vector<double> s;  // x_{k+1} - x_k
  std::vector<double> y;  // g_{k+1} - g_k
  double rho = 0.0;       // 1 / (y . s)
};

/// Two-loop recursion: d = -H g using the stored correction pairs.
std::vector<double> two_loop_direction(const std::deque<CorrectionPair>& pairs,
                                       std::span<const double> grad) {
  std::vector<double> q(grad.begin(), grad.end());
  std::vector<double> alpha(pairs.size());
  for (std::size_t idx = pairs.size(); idx-- > 0;) {
    const auto& p = pairs[idx];
    alpha[idx] = p.rho * dot(p.s, q);
    linalg::axpy(-alpha[idx], p.y, q);
  }
  // Initial Hessian scaling gamma = (s.y)/(y.y) from the freshest pair.
  if (!pairs.empty()) {
    const auto& last = pairs.back();
    const double yy = dot(last.y, last.y);
    if (yy > 0.0) {
      const double gamma = dot(last.s, last.y) / yy;
      for (double& v : q) v *= gamma;
    }
  }
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    const auto& p = pairs[idx];
    const double beta = p.rho * dot(p.y, q);
    linalg::axpy(alpha[idx] - beta, p.s, q);
  }
  for (double& v : q) v = -v;
  return q;
}

double projected_gradient_inf_norm(std::span<const double> x,
                                   std::span<const double> grad,
                                   const Bounds& bounds) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double step = x[i] - grad[i];
    if (bounds.active()) {
      if (!bounds.lower.empty()) step = std::max(step, bounds.lower[i]);
      if (!bounds.upper.empty()) step = std::min(step, bounds.upper[i]);
    }
    worst = std::max(worst, std::abs(step - x[i]));
  }
  return worst;
}

}  // namespace

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kGradientTolerance: return "gradient tolerance reached";
    case StopReason::kFunctionTolerance: return "function tolerance reached";
    case StopReason::kMaxIterations: return "max iterations reached";
    case StopReason::kLineSearchFailed: return "line search failed";
  }
  return "unknown";
}

OptimizeResult lbfgs_minimize(const Objective& f, std::span<const double> x0,
                              const LbfgsOptions& options, const Bounds& bounds) {
  if (x0.empty()) throw std::invalid_argument("lbfgs: empty start point");
  bounds.validate(x0.size());

  OptimizeResult result;
  result.x.assign(x0.begin(), x0.end());
  bounds.project(result.x);

  std::vector<double> grad(x0.size());
  result.value = f(result.x, grad);
  ++result.evaluations;

  std::deque<CorrectionPair> pairs;
  std::vector<double> candidate(x0.size());
  std::vector<double> candidate_grad(x0.size());
  // Narrow curved valleys (Rosenbrock-like) produce tiny per-iteration
  // decreases long before convergence; only stop on the f-tolerance after
  // several consecutive small changes.
  int small_change_streak = 0;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    if (projected_gradient_inf_norm(result.x, grad, bounds) <
        options.gradient_tolerance) {
      result.reason = StopReason::kGradientTolerance;
      result.iterations = iter;
      return result;
    }

    std::vector<double> direction = two_loop_direction(pairs, grad);
    double slope = dot(direction, grad);
    if (!(slope < 0.0)) {
      // Not a descent direction (can happen after projections or with a
      // stale history); fall back to steepest descent and drop history.
      pairs.clear();
      for (std::size_t i = 0; i < direction.size(); ++i) direction[i] = -grad[i];
      slope = dot(direction, grad);
      if (!(slope < 0.0)) {
        result.reason = StopReason::kGradientTolerance;
        return result;
      }
    }

    // Approximate strong-Wolfe line search (bracket + bisection zoom).
    // When the box projection clips a trial point, the Wolfe curvature
    // test is skipped for that trial and plain Armijo acceptance applies.
    constexpr double kWolfeC2 = 0.9;
    double step = 1.0;
    double step_lo = 0.0;
    double step_hi = std::numeric_limits<double>::infinity();
    bool accepted = false;
    double candidate_value = 0.0;
    // Best Armijo-passing trial so far, used if the search budget runs out
    // while hunting for the curvature condition.
    bool have_fallback = false;
    std::vector<double> fallback_x;
    std::vector<double> fallback_grad;
    double fallback_value = 0.0;

    for (std::size_t ls = 0; ls < options.max_line_search_steps; ++ls) {
      bool clipped = false;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        candidate[i] = result.x[i] + step * direction[i];
      }
      if (bounds.active()) {
        bounds.project(candidate);
        for (std::size_t i = 0; i < candidate.size(); ++i) {
          if (candidate[i] != result.x[i] + step * direction[i]) {
            clipped = true;
            break;
          }
        }
      }
      candidate_value = f(candidate, candidate_grad);
      ++result.evaluations;

      // Sufficient decrease, measured against the actual displacement
      // (which differs from step*direction after projection).
      double displacement_slope = 0.0;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        displacement_slope += grad[i] * (candidate[i] - result.x[i]);
      }
      const bool armijo =
          std::isfinite(candidate_value) &&
          candidate_value <= result.value + options.armijo_c1 * displacement_slope;

      if (!armijo) {
        // Too long: bracket from above and bisect down.
        step_hi = step;
        step = 0.5 * (step_lo + step_hi);
        continue;
      }
      if (clipped) {
        accepted = true;  // projected step with sufficient decrease
        break;
      }
      const double candidate_slope = dot(candidate_grad, direction);
      if (candidate_slope < kWolfeC2 * slope) {
        // Still descending steeply: step too short. Remember it, then
        // expand (or bisect upward once an upper bracket exists).
        if (!have_fallback || candidate_value < fallback_value) {
          have_fallback = true;
          fallback_x = candidate;
          fallback_grad = candidate_grad;
          fallback_value = candidate_value;
        }
        step_lo = step;
        step = std::isfinite(step_hi) ? 0.5 * (step_lo + step_hi) : 2.0 * step;
        continue;
      }
      accepted = true;  // strong-Wolfe satisfied
      break;
    }
    if (!accepted && have_fallback) {
      candidate = fallback_x;
      candidate_grad = fallback_grad;
      candidate_value = fallback_value;
      accepted = true;
    }
    if (!accepted) {
      result.reason = StopReason::kLineSearchFailed;
      return result;
    }

    CorrectionPair pair;
    pair.s.resize(candidate.size());
    pair.y.resize(candidate.size());
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      pair.s[i] = candidate[i] - result.x[i];
      pair.y[i] = candidate_grad[i] - grad[i];
    }
    const double sy = dot(pair.s, pair.y);
    if (sy > 1e-10 * linalg::norm2(pair.s) * linalg::norm2(pair.y)) {
      pair.rho = 1.0 / sy;
      pairs.push_back(std::move(pair));
      if (pairs.size() > options.history) pairs.pop_front();
    }

    const double previous_value = result.value;
    result.x = candidate;
    result.value = candidate_value;
    grad = candidate_grad;

    const double rel_change = std::abs(previous_value - result.value) /
                              std::max({std::abs(previous_value),
                                        std::abs(result.value), 1.0});
    small_change_streak =
        rel_change < options.relative_f_tolerance ? small_change_streak + 1 : 0;
    if (small_change_streak >= 3) {
      if (!pairs.empty()) {
        // Progress stalled with quasi-Newton history: the stored curvature
        // pairs can poison the direction in narrow curved valleys. Restart
        // from steepest descent once before concluding convergence.
        pairs.clear();
        small_change_streak = 0;
      } else {
        result.reason = StopReason::kFunctionTolerance;
        return result;
      }
    }
  }
  result.reason = StopReason::kMaxIterations;
  return result;
}

}  // namespace alamr::opt
