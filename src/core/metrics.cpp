#include "alamr/core/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace alamr::core {

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  if (predicted.size() != actual.size() || predicted.empty()) {
    throw std::invalid_argument("rmse: size mismatch or empty");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - actual[i];
    total += e * e;
  }
  return std::sqrt(total / static_cast<double>(predicted.size()));
}

double weighted_rmse(std::span<const double> predicted,
                     std::span<const double> actual,
                     std::span<const double> weights) {
  if (predicted.size() != actual.size() || predicted.size() != weights.size() ||
      predicted.empty()) {
    throw std::invalid_argument("weighted_rmse: size mismatch or empty");
  }
  double weight_total = 0.0;
  for (const double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_rmse: negative weight");
    weight_total += w;
  }
  if (weight_total <= 0.0) {
    throw std::invalid_argument("weighted_rmse: weights sum to zero");
  }
  // Normalize so sum(rho) == n; uniform weights then reproduce rmse().
  const double scale = static_cast<double>(predicted.size()) / weight_total;
  double total = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - actual[i];
    total += weights[i] * scale * e * e;
  }
  return std::sqrt(total / static_cast<double>(predicted.size()));
}

double individual_regret(double cost, double memory, double memory_limit) {
  return memory >= memory_limit ? cost : 0.0;
}

std::vector<double> cumulative(std::span<const double> values) {
  std::vector<double> out(values.size());
  double running = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    running += values[i];
    out[i] = running;
  }
  return out;
}

}  // namespace alamr::core
