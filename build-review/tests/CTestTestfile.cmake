# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/tests_stats[1]_include.cmake")
include("/root/repo/build-review/tests/tests_linalg[1]_include.cmake")
include("/root/repo/build-review/tests/tests_opt[1]_include.cmake")
include("/root/repo/build-review/tests/tests_gp[1]_include.cmake")
include("/root/repo/build-review/tests/tests_data[1]_include.cmake")
include("/root/repo/build-review/tests/tests_amr[1]_include.cmake")
include("/root/repo/build-review/tests/tests_core[1]_include.cmake")
include("/root/repo/build-review/tests/tests_golden[1]_include.cmake")
include("/root/repo/build-review/tests/tests_integration[1]_include.cmake")
include("/root/repo/build-review/tests/tests_robustness[1]_include.cmake")
add_test(tests_core_threads4 "/root/repo/build-review/tests/tests_core" "--gtest_filter=AlSimulatorParallel.*:AlSimulator.IncrementalRefitMatchesFullRefit:RunBatch.*:Trace.Concurrent*:Trace.PoolTask*")
set_tests_properties(tests_core_threads4 PROPERTIES  ENVIRONMENT "ALAMR_THREADS=4" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;73;add_test;/root/repo/tests/CMakeLists.txt;0;")
