#pragma once

// Descriptive statistics used throughout the evaluation: Table I reports
// min/median/mean/max of features and responses; Fig. 2 reports medians and
// interquartile ranges of selected-sample cost distributions.

#include <cstddef>
#include <span>
#include <vector>

namespace alamr::stats {

/// min/median/mean/max plus dispersion measures of one column.
/// Matches the row format of the paper's Table I.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
};

/// Computes a Summary. Throws std::invalid_argument on empty input or
/// non-finite entries.
Summary summarize(std::span<const double> values);

/// Sample quantile with linear interpolation between order statistics
/// (R type-7 / NumPy default). q in [0, 1].
double quantile(std::span<const double> values, double q);

/// Quantile of an already ascending-sorted sample (no copy).
double quantile_sorted(std::span<const double> sorted, double q);

double mean(std::span<const double> values);
double median(std::span<const double> values);

/// Sample variance with n-1 denominator; 0 for n < 2.
double variance(std::span<const double> values);
double stddev(std::span<const double> values);

/// Adjusted Fisher–Pearson sample skewness; 0 for n < 3 or zero variance.
/// Used by the goodness-base ablation to quantify selection-distribution
/// skew (the paper: "higher bases will lead to more skewed candidate
/// distributions").
double skewness(std::span<const double> values);

/// Root-mean-square of a vector of residuals (paper Eq. 10 with e given).
double rms(std::span<const double> residuals);

/// Standard normal density phi(z).
double standard_normal_pdf(double z);

/// Standard normal CDF Phi(z) (via erfc; accurate in both tails).
double standard_normal_cdf(double z);

/// Numerically stable streaming mean/variance accumulator.
class Welford {
 public:
  void add(double value) noexcept;
  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace alamr::stats
