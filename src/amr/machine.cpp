#include "alamr/amr/machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alamr::amr {

std::vector<std::size_t> sfc_partition(const std::vector<std::size_t>& cells,
                                       std::size_t ranks) {
  if (ranks == 0) throw std::invalid_argument("sfc_partition: ranks == 0");
  std::vector<std::size_t> owner(cells.size(), 0);
  if (cells.empty()) return owner;

  std::size_t total = 0;
  for (const std::size_t c : cells) total += c;
  if (total == 0) return owner;

  // p4est-style weighted prefix partition: a leaf belongs to the rank in
  // whose ideal share its starting offset along the curve falls. Keeps
  // assignments contiguous and cell-balanced; the first leaf always lands
  // on rank 0.
  double accumulated = 0.0;
  for (std::size_t n = 0; n < cells.size(); ++n) {
    const auto rank = static_cast<std::size_t>(
        accumulated * static_cast<double>(ranks) / static_cast<double>(total));
    owner[n] = std::min(rank, ranks - 1);
    accumulated += static_cast<double>(cells[n]);
  }
  return owner;
}

JobResult simulate_job(const SolverStats& stats, int nodes,
                       const MachineSpec& spec, stats::Rng& rng) {
  if (nodes < 1) throw std::invalid_argument("simulate_job: nodes < 1");
  const std::size_t ranks =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(spec.cores_per_node);

  JobResult job;
  double peak_rank_bytes = 0.0;
  double weighted_imbalance = 0.0;
  std::size_t weighted_steps = 0;

  const double log2_ranks =
      std::log2(static_cast<double>(std::max<std::size_t>(ranks, 2)));

  for (const EpochProfile& epoch : stats.epochs) {
    const MeshTopology& topo = epoch.topology;
    const std::size_t n_leaves = topo.cells.size();
    if (n_leaves == 0) continue;

    const std::vector<std::size_t> owner = sfc_partition(topo.cells, ranks);

    // Per-rank compute cells, comm volume, memory.
    std::vector<std::size_t> rank_cells(ranks, 0);
    std::vector<std::size_t> rank_patches(ranks, 0);
    std::vector<double> rank_comm_bytes(ranks, 0.0);
    std::vector<std::size_t> rank_messages(ranks, 0);
    for (std::size_t n = 0; n < n_leaves; ++n) {
      rank_cells[owner[n]] += topo.cells[n];
      rank_patches[owner[n]] += 1;
      for (const LeafEdge& edge : topo.edges[n]) {
        if (owner[edge.neighbor] != owner[n]) {
          rank_comm_bytes[owner[n]] +=
              static_cast<double>(edge.ghost_cells) * spec.bytes_per_ghost_cell;
          rank_messages[owner[n]] += 1;
        }
      }
    }

    std::size_t max_cells = 0;
    double max_comm = 0.0;
    for (std::size_t r = 0; r < ranks; ++r) {
      max_cells = std::max(max_cells, rank_cells[r]);
      const double comm =
          static_cast<double>(rank_messages[r]) * spec.latency_seconds +
          rank_comm_bytes[r] / spec.bandwidth_bytes_per_second;
      max_comm = std::max(max_comm, comm);

      const double bytes =
          static_cast<double>(rank_cells[r]) * spec.bytes_per_cell_memory +
          static_cast<double>(rank_patches[r]) * spec.bytes_per_patch_overhead;
      peak_rank_bytes = std::max(peak_rank_bytes, bytes);
    }

    const double compute_per_step =
        static_cast<double>(max_cells) * spec.cell_update_seconds;
    const double reduction_per_step = log2_ranks * spec.reduction_latency_seconds;
    const double steps = static_cast<double>(epoch.steps);

    job.compute_seconds += steps * compute_per_step;
    job.comm_seconds += steps * (max_comm + reduction_per_step);

    // Imbalance diagnostic, weighted by steps spent in the epoch.
    const double mean_cells =
        static_cast<double>(topo.total_cells()) / static_cast<double>(ranks);
    if (mean_cells > 0.0) {
      weighted_imbalance +=
          steps * (static_cast<double>(max_cells) / mean_cells);
      weighted_steps += epoch.steps;
    }

    // Regrid cost charged per epoch after the first (each epoch boundary
    // is one regrid + repartition of the full mesh).
    if (&epoch != &stats.epochs.front()) {
      job.regrid_seconds += static_cast<double>(topo.total_cells()) *
                            spec.regrid_seconds_per_cell;
    }
  }

  job.startup_seconds =
      spec.startup_seconds + spec.startup_seconds_per_rank * static_cast<double>(ranks);
  job.load_imbalance = weighted_steps > 0
                           ? weighted_imbalance / static_cast<double>(weighted_steps)
                           : 1.0;

  double wallclock = job.compute_seconds + job.comm_seconds +
                     job.regrid_seconds + job.startup_seconds;
  // Measurement noise: multiplicative lognormal (machine variability).
  wallclock *= std::exp(rng.normal(0.0, spec.wallclock_noise_sigma));
  job.wallclock_seconds = wallclock;
  job.cost_node_hours = wallclock * static_cast<double>(nodes) / 3600.0;

  double rss = peak_rank_bytes / 1.0e6;
  rss *= std::exp(rng.normal(0.0, spec.memory_noise_sigma));
  job.maxrss_mb = rss;
  return job;
}

}  // namespace alamr::amr
