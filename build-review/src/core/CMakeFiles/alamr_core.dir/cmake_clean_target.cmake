file(REMOVE_RECURSE
  "libalamr_core.a"
)
