#include "alamr/data/partition.hpp"

#include <stdexcept>

namespace alamr::data {

Partition make_partition(std::size_t n, std::size_t n_test, std::size_t n_init,
                         stats::Rng& rng) {
  if (n_init == 0) {
    throw std::invalid_argument("make_partition: n_init must be >= 1");
  }
  if (n_test + n_init > n) {
    throw std::invalid_argument("make_partition: n_test + n_init exceeds n");
  }
  const std::vector<std::size_t> order = rng.permutation(n);
  Partition p;
  p.test.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_test));
  p.init.assign(order.begin() + static_cast<std::ptrdiff_t>(n_test),
                order.begin() + static_cast<std::ptrdiff_t>(n_test + n_init));
  p.active.assign(order.begin() + static_cast<std::ptrdiff_t>(n_test + n_init),
                  order.end());
  return p;
}

}  // namespace alamr::data
