file(REMOVE_RECURSE
  "libalamr_gp.a"
)
