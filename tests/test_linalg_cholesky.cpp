// Tests for the Cholesky factorization used by the GPR core.

#include "alamr/linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::linalg;
using alamr::stats::Rng;

Matrix random_spd(std::size_t n, Rng& rng, double diagonal_boost = 0.5) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix spd = aat(a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += diagonal_boost;
  return spd;
}

TEST(Cholesky, FactorsKnownMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  EXPECT_DOUBLE_EQ(factor->lower()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(factor->lower()(1, 0), 1.0);
  EXPECT_NEAR(factor->lower()(1, 1), std::sqrt(2.0), 1e-14);
}

TEST(Cholesky, RejectsNonSquare) {
  const Matrix a(2, 3);
  EXPECT_THROW(CholeskyFactor::factor(a), std::invalid_argument);
}

TEST(Cholesky, IndefiniteReturnsNullopt) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor::factor(a).has_value());
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  // x = [1, -1] -> b = A x = [2, -1].
  const Vector x = factor->solve(std::vector<double>{2.0, -1.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], -1.0, 1e-14);
}

TEST(Cholesky, LogDetMatchesKnownValue) {
  const Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  EXPECT_NEAR(factor->log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  Rng rng(5);
  const Matrix a = random_spd(8, rng);
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  const Matrix inv = factor->inverse();
  EXPECT_LT(max_abs_diff(matmul(a, inv), Matrix::identity(8)), 1e-9);
}

TEST(CholeskyJitter, CleanMatrixGetsZeroJitter) {
  Rng rng(6);
  const Matrix a = random_spd(6, rng);
  const auto [factor, jitter] = cholesky_with_jitter(a);
  EXPECT_DOUBLE_EQ(jitter, 0.0);
  EXPECT_EQ(factor.size(), 6u);
}

TEST(CholeskyJitter, RepairsSemiDefiniteMatrix) {
  // Rank-1 gram matrix of duplicated points — exactly the situation the
  // dataset's replicate measurements create.
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const auto [factor, jitter] = cholesky_with_jitter(a);
  EXPECT_GT(jitter, 0.0);
  const Vector x = factor.solve(std::vector<double>{1.0, 1.0});
  EXPECT_TRUE(std::isfinite(x[0]));
}

TEST(CholeskyJitter, ThrowsOnHopelessMatrix) {
  const Matrix a{{-1.0, 0.0}, {0.0, -1.0}};
  EXPECT_THROW(cholesky_with_jitter(a), std::runtime_error);
}

// Property sweep over sizes and seeds: reconstruction, solve residual,
// log-det consistency.
class CholeskyProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(CholeskyProperty, ReconstructsAndSolves) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = random_spd(n, rng);
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());

  // A == L L^T.
  const Matrix reconstructed =
      matmul(factor->lower(), factor->lower().transposed());
  EXPECT_LT(max_abs_diff(reconstructed, a), 1e-10);

  // Residual of a random solve.
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x = factor->solve(b);
  const Vector ax = matvec(a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);

  // log|A| via the factor matches the product of eigenvalue magnitudes
  // computed through a second factorization route (L L^T determinant).
  double diag_product = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    diag_product += 2.0 * std::log(factor->lower()(i, i));
  }
  EXPECT_NEAR(factor->log_det(), diag_product, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, CholeskyProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 10, 25, 60),
                       ::testing::Values<std::uint64_t>(1, 42, 4242)));

}  // namespace
