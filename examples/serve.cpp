// Multi-tenant AL serving (DESIGN.md §15): one SessionEngine hosts N
// synthetic tenants, each an open online-AL trajectory advanced through
// the suggest/observe protocol. Every round the tenants' suggest work is
// coalesced into a single micro-batched sweep (drain), hyperparameter
// refits run on background workers off the request path, and — when
// --checkpoint-dir is given — one tenant is evicted to disk mid-run and
// restored by id, continuing byte-identically.
//
// Flags: --sessions N (default 8), --shards N (default 8),
//        --checkpoint-dir PATH (enables the evict/restore detour),
//        --stride N (full-refit stride; default 4), --trace PATH.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string_view>
#include <vector>

#include "alamr/core/serve.hpp"
#include "example_utils.hpp"

int main(int argc, char** argv) {
  using namespace alamr;
  const std::optional<std::string> trace_path =
      examples::trace_flag(argc, argv);

  std::size_t n_sessions = 8;
  std::size_t n_shards = 8;
  std::size_t stride = 4;
  std::filesystem::path checkpoint_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--sessions" && i + 1 < argc) {
      n_sessions = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (arg == "--shards" && i + 1 < argc) {
      n_shards = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (arg == "--stride" && i + 1 < argc) {
      stride = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (arg == "--checkpoint-dir" && i + 1 < argc) {
      checkpoint_dir = argv[i + 1];
    }
  }
  if (n_sessions == 0) n_sessions = 1;

  // Shared candidate grid (every tenant explores the same configuration
  // space, so the engine shares one immutable GridContext between them).
  constexpr std::size_t kPerAxis = 8;
  linalg::Matrix grid(kPerAxis * kPerAxis, 2);
  for (std::size_t i = 0; i < kPerAxis; ++i) {
    for (std::size_t j = 0; j < kPerAxis; ++j) {
      grid(i * kPerAxis + j, 0) = static_cast<double>(i) / (kPerAxis - 1);
      grid(i * kPerAxis + j, 1) = static_cast<double>(j) / (kPerAxis - 1);
    }
  }

  // Synthetic per-tenant oracle: each tenant's workload has its own cost
  // and memory scale, so the learned surrogates genuinely differ.
  const auto oracle = [](core::SessionId id, std::span<const double> f) {
    const double tenant = 1.0 + 0.1 * static_cast<double>(id % 7);
    const double cost = 0.01 * tenant * std::pow(10.0, 2.0 * f[0]);
    const double memory = 0.5 * std::pow(10.0, 1.5 * f[1] / tenant);
    return std::pair{cost, memory};
  };

  core::ServeOptions serve;
  serve.shards = n_shards;
  serve.retrain_workers = 2;
  core::SessionEngine engine(serve);

  const core::MaxSigma explore;
  const core::RandUniform uniform;
  core::SessionOptions options;
  options.al.n_init = 2;
  options.al.iterations = 12;
  options.al.initial_fit.restarts = 1;
  options.al.initial_fit.max_opt_iterations = 15;
  options.al.refit.max_opt_iterations = 4;
  options.retrain_stride = stride;

  for (core::SessionId id = 1; id <= n_sessions; ++id) {
    options.seed = 1000 + id;
    if (!checkpoint_dir.empty()) {
      options.checkpoint =
          checkpoint_dir / ("tenant" + std::to_string(id) + ".ck");
    }
    const core::Strategy& strategy =
        (id % 2 == 0) ? static_cast<const core::Strategy&>(explore)
                      : static_cast<const core::Strategy&>(uniform);
    engine.open_session(id, grid, strategy, options);
  }
  std::printf("Serving %zu tenants over %zu shards (stride %zu, grid %zux%zu)\n",
              n_sessions, n_shards, stride, kPerAxis, kPerAxis);

  const core::SessionId evictee = (n_sessions + 1) / 2;
  bool evicted = false;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<char> done(n_sessions + 1, 0);
  std::size_t rounds = 0;
  std::size_t requests = 0;
  for (;;) {
    bool any = false;
    for (core::SessionId id = 1; id <= n_sessions; ++id) {
      if (done[id]) continue;
      engine.enqueue_suggest(id);
      any = true;
    }
    if (!any) break;
    ++rounds;
    requests += engine.drain();
    for (core::SessionId id = 1; id <= n_sessions; ++id) {
      if (done[id]) continue;
      const std::optional<core::Suggestion> s = engine.take_suggestion(id);
      if (!s || s->done) {
        done[id] = 1;
        continue;
      }
      const auto [cost, memory] = oracle(id, s->features);
      engine.enqueue_observe(id, cost, memory);
    }
    requests += engine.drain();

    if (!evicted && !checkpoint_dir.empty() && rounds == 5) {
      // Mid-run eviction: the tenant's full state (records, posterior,
      // rng stream, stride phase) goes to durable frames; the restore
      // continues the trajectory byte-identically.
      evicted = true;
      const core::SessionStatus before = engine.status(evictee);
      engine.evict_session(evictee);
      std::printf("# round %zu: evicted tenant %llu (%zu records) to %s\n",
                  rounds, static_cast<unsigned long long>(evictee),
                  before.records, checkpoint_dir.string().c_str());
      options.seed = 1000 + evictee;
      options.checkpoint =
          checkpoint_dir / ("tenant" + std::to_string(evictee) + ".ck");
      const core::Strategy& strategy =
          (evictee % 2 == 0) ? static_cast<const core::Strategy&>(explore)
                             : static_cast<const core::Strategy&>(uniform);
      engine.restore_session(evictee, grid, strategy, options);
      std::printf("# round %zu: restored tenant %llu from disk\n", rounds,
                  static_cast<unsigned long long>(evictee));
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  examples::print_rule();
  std::printf("%7s %8s %8s %12s %10s %7s\n", "tenant", "records", "epochs",
              "cum.cost", "swaps", "health");
  examples::print_rule();
  for (core::SessionId id = 1; id <= n_sessions; ++id) {
    const core::SessionStatus status = engine.status(id);
    const core::trace::TraceReport tr = engine.session_trace(id);
    const core::OnlineResult result = engine.finish_session(id);
    std::printf("%7llu %8zu %8llu %12.4f %10llu %7s\n",
                static_cast<unsigned long long>(id), result.records.size(),
                static_cast<unsigned long long>(status.epoch),
                result.records.empty() ? 0.0
                                       : result.records.back().cumulative_cost,
                static_cast<unsigned long long>(
                    tr.counter("serve.retrain_swaps")),
                status.cost_health == core::resilience::Health::kHealthy
                    ? "ok"
                    : "degraded");
  }
  examples::print_rule();
  std::printf("%zu rounds, %zu requests in %.2f s wall (%.0f req/s)\n", rounds,
              requests, elapsed, static_cast<double>(requests) / elapsed);
  examples::finish_trace(trace_path);
  return 0;
}
