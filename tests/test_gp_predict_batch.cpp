// Tests for the fused batched posterior (DESIGN.md §10): predict_batch
// must be BIT-identical to the per-candidate predict() / the
// predict_from_cross() path it replaces — the golden-trajectory suite
// depends on the two paths being interchangeable — and the cached
// alpha = K_y^{-1}(y - mean) must be recomputed only on (re)fit.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "alamr/core/trace.hpp"
#include "alamr/gp/gpr.hpp"
#include "alamr/linalg/workspace.hpp"
#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::gp;
using alamr::linalg::Matrix;
using alamr::linalg::Workspace;
using alamr::stats::Rng;
namespace trace = alamr::core::trace;

Matrix random_points(std::size_t n, std::size_t dim, Rng& rng) {
  Matrix x(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) x(i, d) = rng.uniform(0.0, 1.0);
  }
  return x;
}

std::vector<double> targets(const Matrix& x, Rng& rng) {
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double s = 0.0;
    for (std::size_t d = 0; d < x.cols(); ++d) s += std::sin(3.0 * x(i, d));
    y[i] = s + rng.normal(0.0, 0.01);
  }
  return y;
}

void expect_bitwise_equal(const Prediction& a, const Prediction& b) {
  ASSERT_EQ(a.mean.size(), b.mean.size());
  for (std::size_t i = 0; i < a.mean.size(); ++i) {
    EXPECT_EQ(a.mean[i], b.mean[i]) << "mean " << i;
    EXPECT_EQ(a.stddev[i], b.stddev[i]) << "stddev " << i;
  }
}

TEST(PredictBatch, BitwiseMatchesPredictAcrossKernels) {
  struct Case {
    const char* name;
    std::unique_ptr<Kernel> (*make)();
  };
  const Case cases[] = {
      {"paper", [] { return make_paper_kernel(); }},
      {"ard", [] { return make_ard_kernel(3); }},
      {"matern",
       [] { return make_matern_kernel(MaternKernel::Nu::kFiveHalves); }},
      {"rq",
       [] {
         return sum(product(std::make_unique<ConstantKernel>(1.0),
                            std::make_unique<RationalQuadraticKernel>(0.5)),
                    std::make_unique<WhiteKernel>(1e-6));
       }},
  };
  for (const Case& c : cases) {
    Rng rng(41);
    const Matrix x = random_points(30, 3, rng);
    const auto y = targets(x, rng);
    GaussianProcessRegressor gpr(c.make(), {});
    gpr.fit(x, y, rng);

    const Matrix q = random_points(17, 3, rng);
    const Prediction scalar = gpr.predict(q);
    Workspace ws;
    const Prediction fused = gpr.predict_batch(q, ws);
    expect_bitwise_equal(fused, scalar);
    // Second call through the now-warm arena: same bits again.
    expect_bitwise_equal(gpr.predict_batch(q, ws), scalar);
  }
}

TEST(PredictBatch, SpanOverloadBitwiseMatchesPredictFromCross) {
  Rng rng(42);
  const Matrix x = random_points(25, 2, rng);
  const auto y = targets(x, rng);
  GaussianProcessRegressor gpr(make_paper_kernel(), {});
  gpr.fit(x, y, rng);

  const Matrix q = random_points(11, 2, rng);
  const Matrix k_star = gpr.kernel().cross(x, q);
  const std::vector<double> diag = gpr.kernel().diagonal(q);
  const Prediction expect = gpr.predict_from_cross(k_star, q);

  Workspace ws;
  std::vector<double> mean(q.rows());
  std::vector<double> stddev(q.rows());
  gpr.predict_batch(k_star, diag, ws, mean, stddev);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    EXPECT_EQ(mean[i], expect.mean[i]) << i;
    EXPECT_EQ(stddev[i], expect.stddev[i]) << i;
  }
  // Everything carved from the arena was released on return.
  EXPECT_EQ(ws.doubles_in_use(), 0u);
  EXPECT_EQ(ws.open_scopes(), 0u);
}

TEST(PredictBatch, ValidatesShapesAndFitState) {
  Rng rng(43);
  const Matrix x = random_points(10, 2, rng);
  const auto y = targets(x, rng);
  GaussianProcessRegressor gpr(make_paper_kernel(), {});

  Workspace ws;
  std::vector<double> out(3);
  const Matrix k_star(10, 3);
  const std::vector<double> diag(3, 1.0);
  EXPECT_THROW(gpr.predict_batch(k_star, diag, ws, out, out),
               std::logic_error);

  gpr.fit(x, y, rng);
  std::vector<double> wrong(2);
  EXPECT_THROW(gpr.predict_batch(k_star, diag, ws, wrong, wrong),
               std::invalid_argument);
  const std::vector<double> short_diag(2, 1.0);
  EXPECT_THROW(gpr.predict_batch(k_star, short_diag, ws, out, out),
               std::invalid_argument);
}

TEST(PredictBatch, EmptyQueryIsANoOp) {
  Rng rng(44);
  const Matrix x = random_points(8, 2, rng);
  const auto y = targets(x, rng);
  GaussianProcessRegressor gpr(make_paper_kernel(), {});
  gpr.fit(x, y, rng);

  Workspace ws;
  const Matrix k_star(8, 0);
  gpr.predict_batch(k_star, {}, ws, {}, {});
  EXPECT_EQ(ws.doubles_in_use(), 0u);
}

// Regression for the cached-alpha satellite: predictions must reuse the
// stored alpha; only a (re)fit may trigger the two triangular solves.
TEST(PredictBatch, AlphaSolvedOnlyOnRefit) {
  const bool was_enabled = trace::enabled();
  trace::set_enabled(true);
  trace::TraceCollector collector;
  {
    const trace::ScopedCollector scoped(collector);

    Rng rng(45);
    const Matrix x = random_points(20, 2, rng);
    const auto y = targets(x, rng);
    GaussianProcessRegressor gpr(make_paper_kernel(), {});
    gpr.fit(x, y, rng);
    const std::uint64_t after_fit =
        collector.report().counter("gpr.alpha_solve");
    EXPECT_GE(after_fit, 1u);

    const Matrix q = random_points(9, 2, rng);
    Workspace ws;
    for (int i = 0; i < 5; ++i) {
      (void)gpr.predict(q);
      (void)gpr.predict_batch(q, ws);
    }
    EXPECT_EQ(collector.report().counter("gpr.alpha_solve"), after_fit)
        << "predict must not recompute alpha";

    const Matrix xa = random_points(1, 2, rng);
    gpr.add_point(xa.row(0), 0.25);
    EXPECT_EQ(collector.report().counter("gpr.alpha_solve"), after_fit + 1)
        << "appending a training point must recompute alpha exactly once";
  }
  trace::set_enabled(was_enabled);
}

}  // namespace
