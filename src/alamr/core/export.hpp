#pragma once

// CSV export of AL trajectories and aggregate curves, so users can plot
// the paper's figures with any external tool (one row per iteration, one
// file per trajectory/curve).

#include <filesystem>
#include <string>

#include "alamr/core/batch.hpp"

namespace alamr::core {

/// Serializes a trajectory's per-iteration records:
/// iteration,dataset_row,actual_cost,actual_memory,predicted_cost_log10,
/// predicted_cost_sigma,predicted_mem_log10,predicted_mem_sigma,rmse_cost,
/// rmse_mem,rmse_cost_weighted,cumulative_cost,cumulative_regret
std::string trajectory_to_csv(const TrajectoryResult& trajectory);

/// trajectory_to_csv + write to disk. Throws std::runtime_error on I/O
/// failure.
void write_trajectory_csv(const TrajectoryResult& trajectory,
                          const std::filesystem::path& path);

/// Serializes an aggregate curve: iteration,mean,lo,hi,count.
std::string curve_to_csv(std::span<const CurvePoint> curve);

void write_curve_csv(std::span<const CurvePoint> curve,
                     const std::filesystem::path& path);

}  // namespace alamr::core
