// Tests for the Cholesky factorization used by the GPR core.

#include "alamr/linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "alamr/core/faults.hpp"
#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::linalg;
using alamr::stats::Rng;

Matrix random_spd(std::size_t n, Rng& rng, double diagonal_boost = 0.5) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  Matrix spd = aat(a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += diagonal_boost;
  return spd;
}

TEST(Cholesky, FactorsKnownMatrix) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  EXPECT_DOUBLE_EQ(factor->lower()(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(factor->lower()(1, 0), 1.0);
  EXPECT_NEAR(factor->lower()(1, 1), std::sqrt(2.0), 1e-14);
}

TEST(Cholesky, RejectsNonSquare) {
  const Matrix a(2, 3);
  EXPECT_THROW(CholeskyFactor::factor(a), std::invalid_argument);
}

TEST(Cholesky, IndefiniteReturnsNullopt) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor::factor(a).has_value());
}

TEST(Cholesky, SolveRecoversKnownSolution) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  // x = [1, -1] -> b = A x = [2, -1].
  const Vector x = factor->solve(std::vector<double>{2.0, -1.0});
  EXPECT_NEAR(x[0], 1.0, 1e-14);
  EXPECT_NEAR(x[1], -1.0, 1e-14);
}

TEST(Cholesky, LogDetMatchesKnownValue) {
  const Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  EXPECT_NEAR(factor->log_det(), std::log(36.0), 1e-12);
}

TEST(Cholesky, InverseTimesMatrixIsIdentity) {
  Rng rng(5);
  const Matrix a = random_spd(8, rng);
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  const Matrix inv = factor->inverse();
  EXPECT_LT(max_abs_diff(matmul(a, inv), Matrix::identity(8)), 1e-9);
}

TEST(CholeskyJitter, CleanMatrixGetsZeroJitter) {
  Rng rng(6);
  const Matrix a = random_spd(6, rng);
  const auto [factor, jitter] = cholesky_with_jitter(a);
  EXPECT_DOUBLE_EQ(jitter, 0.0);
  EXPECT_EQ(factor.size(), 6u);
}

TEST(CholeskyJitter, RepairsSemiDefiniteMatrix) {
  // Rank-1 gram matrix of duplicated points — exactly the situation the
  // dataset's replicate measurements create.
  const Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const auto [factor, jitter] = cholesky_with_jitter(a);
  EXPECT_GT(jitter, 0.0);
  const Vector x = factor.solve(std::vector<double>{1.0, 1.0});
  EXPECT_TRUE(std::isfinite(x[0]));
}

TEST(CholeskyJitter, ThrowsOnHopelessMatrix) {
  const Matrix a{{-1.0, 0.0}, {0.0, -1.0}};
  EXPECT_THROW(cholesky_with_jitter(a), std::runtime_error);
}

TEST(CholeskyJitter, MaxJitterRungIsAlwaysAttempted) {
  // The *10 ladder from 1e-12 accumulates rounding and tops out one
  // ulp-cluster SHORT of a 1e-4 max_jitter...
  double rel = 1e-12;
  std::size_t rungs = 0;
  for (; rel <= 1e-4; rel *= 10.0) ++rungs;
  EXPECT_EQ(rungs, 9u);
  // ...so without the explicit final attempt, exactly-max_jitter was never
  // tried. Drive the ladder with fault injection: veto the clean attempt
  // plus all 9 ladder rungs (max=10 fires), so only the boundary attempt at
  // exactly max_jitter can succeed.
  namespace faults = alamr::core::faults;
  faults::FaultInjector injector(
      faults::FaultPlan::parse("cholesky.non_psd:p=1,max=10"));
  const faults::ScopedFaultInjector scope(injector);
  const Matrix eye = Matrix::identity(4);
  const auto [factor, jitter] = cholesky_with_jitter(eye, 1e-12, 1e-4);
  EXPECT_EQ(injector.fires(faults::Site::kCholeskyNonPsd), 10u);
  EXPECT_EQ(injector.hits(faults::Site::kCholeskyNonPsd), 11u);
  // scale = mean diagonal = 1, so the boundary rung applies exactly 1e-4 —
  // strictly above where the rounded ladder stopped.
  EXPECT_EQ(jitter, 1e-4);
  EXPECT_GT(jitter, 9.9999999999999978e-05);
  EXPECT_EQ(factor.size(), 4u);
}

TEST(CholeskyJitter, InjectedExhaustionThrows) {
  // An unbounded p=1 plan vetoes every attempt including the boundary
  // rung: the ladder must exhaust with the documented error, exercising
  // the path GPR's recovery ladder catches.
  namespace faults = alamr::core::faults;
  faults::FaultInjector injector(
      faults::FaultPlan::parse("cholesky.non_psd:p=1"));
  const faults::ScopedFaultInjector scope(injector);
  const Matrix eye = Matrix::identity(3);
  EXPECT_THROW(cholesky_with_jitter(eye), std::runtime_error);
  // clean + 9 ladder rungs + boundary attempt, every one consulted.
  EXPECT_EQ(injector.hits(faults::Site::kCholeskyNonPsd), 11u);
}

TEST(CholeskyJitter, InjectedNonPsdFallsToFirstJitterRung) {
  // A single vetoed clean attempt degrades to the smallest jitter rung.
  namespace faults = alamr::core::faults;
  faults::FaultInjector injector(
      faults::FaultPlan::parse("cholesky.non_psd:hits=0"));
  const faults::ScopedFaultInjector scope(injector);
  const Matrix eye = Matrix::identity(3);
  const auto [factor, jitter] = cholesky_with_jitter(eye, 1e-12, 1e-4);
  EXPECT_EQ(jitter, 1e-12);
  EXPECT_EQ(factor.size(), 3u);
}

// Property sweep over sizes and seeds: reconstruction, solve residual,
// log-det consistency.
class CholeskyProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(CholeskyProperty, ReconstructsAndSolves) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = random_spd(n, rng);
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());

  // A == L L^T.
  const Matrix reconstructed =
      matmul(factor->lower(), factor->lower().transposed());
  EXPECT_LT(max_abs_diff(reconstructed, a), 1e-10);

  // Residual of a random solve.
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x = factor->solve(b);
  const Vector ax = matvec(a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);

  // log|A| via the factor matches the product of eigenvalue magnitudes
  // computed through a second factorization route (L L^T determinant).
  double diag_product = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    diag_product += 2.0 * std::log(factor->lower()(i, i));
  }
  EXPECT_NEAR(factor->log_det(), diag_product, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, CholeskyProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3, 5, 10, 25, 60),
                       ::testing::Values<std::uint64_t>(1, 42, 4242)));

// --- Rank-1 extension -----------------------------------------------------

/// Splits an (n+1)x(n+1) SPD matrix into its leading block factor plus the
/// border (row, diag) that extend() consumes.
struct Bordered {
  CholeskyFactor base;
  std::vector<double> row;
  double diag = 0.0;
  Matrix full;
};

Bordered make_bordered(std::size_t n, Rng& rng, double diagonal_boost = 0.5) {
  Matrix full = random_spd(n + 1, rng, diagonal_boost);
  Matrix lead(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) lead(i, j) = full(i, j);
  }
  auto base = CholeskyFactor::factor(lead);
  EXPECT_TRUE(base.has_value());
  std::vector<double> row(n);
  for (std::size_t i = 0; i < n; ++i) row[i] = full(n, i);
  return Bordered{std::move(*base), std::move(row), full(n, n),
                  std::move(full)};
}

TEST(CholeskyExtend, MatchesFullFactorizationBitForBit) {
  Rng rng(7);
  Bordered b = make_bordered(12, rng);
  ASSERT_TRUE(b.base.extend(b.row, b.diag));

  const auto full = CholeskyFactor::factor(b.full);
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(b.base.size(), full->size());
  // extend() repeats factor()'s exact operation sequence for the last
  // column, so every entry must match exactly, not just approximately.
  for (std::size_t i = 0; i <= 12; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_EQ(b.base.lower()(i, j), full->lower()(i, j))
          << "entry (" << i << ", " << j << ")";
    }
  }
}

TEST(CholeskyExtend, RepeatedExtensionSolvesLikeFullFactor) {
  // Grow a factor one row at a time from 4x4 to 24x24 and check the solve
  // residual against the directly factored matrix at the final size.
  Rng rng(8);
  const std::size_t target = 24;
  const Matrix full = random_spd(target, rng);
  Matrix lead(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) lead(i, j) = full(i, j);
  }
  auto factor = CholeskyFactor::factor(lead);
  ASSERT_TRUE(factor.has_value());
  for (std::size_t n = 4; n < target; ++n) {
    std::vector<double> row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = full(n, j);
    ASSERT_TRUE(factor->extend(row, full(n, n))) << "at size " << n;
  }
  std::vector<double> b(target);
  for (double& v : b) v = rng.uniform(-1.0, 1.0);
  const Vector x = factor->solve(b);
  const Vector ax = matvec(full, x);
  for (std::size_t i = 0; i < target; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(CholeskyExtend, RejectsSingularBorderLeavingFactorUnchanged) {
  Rng rng(9);
  const std::size_t n = 8;
  const Matrix a = random_spd(n, rng);
  auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  const Matrix before = factor->lower();

  // Border equal to an existing row makes the bordered matrix singular:
  // the Schur complement is exactly zero.
  std::vector<double> row(n);
  for (std::size_t j = 0; j < n; ++j) row[j] = a(0, j);
  EXPECT_FALSE(factor->extend(row, a(0, 0)));
  EXPECT_EQ(factor->size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(factor->lower()(i, j), before(i, j));
    }
  }
}

TEST(CholeskyExtend, IllConditionedNearSingularBorder) {
  // Border almost parallel to an existing row: the Schur complement is
  // tiny but positive, and the extension must still reproduce the full
  // factorization.
  Rng rng(10);
  const std::size_t n = 10;
  Bordered b = make_bordered(n, rng);
  for (std::size_t j = 0; j < n; ++j) {
    b.row[j] = b.full(0, j) * (1.0 + 1e-9);
    b.full(n, j) = b.row[j];
    b.full(j, n) = b.row[j];
  }
  b.diag = b.full(0, 0) * (1.0 + 1e-6);
  b.full(n, n) = b.diag;

  const auto full = CholeskyFactor::factor(b.full);
  const bool extended = b.base.extend(b.row, b.diag);
  ASSERT_EQ(extended, full.has_value());
  if (extended) {
    for (std::size_t i = 0; i <= n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        EXPECT_EQ(b.base.lower()(i, j), full->lower()(i, j));
      }
    }
  }
}

TEST(CholeskyExtend, JitterFallbackFlowRepairsDuplicateBorder) {
  // The caller-side fallback contract: when extend() refuses (duplicated
  // training point -> singular bordered gram), cholesky_with_jitter on the
  // bordered matrix must still produce a usable factor.
  Rng rng(11);
  const std::size_t n = 6;
  Bordered b = make_bordered(n, rng);
  for (std::size_t j = 0; j < n; ++j) {
    b.row[j] = b.full(2, j);
    b.full(n, j) = b.row[j];
    b.full(j, n) = b.row[j];
  }
  // With an exact duplicate the Schur complement is zero up to rounding
  // (either sign); shrinking the diagonal slightly makes the rejection
  // deterministic while keeping the matrix jitter-repairable.
  b.diag = b.full(2, 2) * (1.0 - 1e-6);
  b.full(n, n) = b.diag;

  ASSERT_FALSE(b.base.extend(b.row, b.diag));
  const auto [repaired, jitter] = cholesky_with_jitter(b.full);
  EXPECT_GT(jitter, 0.0);
  EXPECT_EQ(repaired.size(), n + 1);
  std::vector<double> rhs(n + 1, 1.0);
  for (const double v : repaired.solve(rhs)) EXPECT_TRUE(std::isfinite(v));
}

TEST(CholeskyExtend, LengthMismatchThrows) {
  Rng rng(12);
  const Matrix a = random_spd(5, rng);
  auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  const std::vector<double> wrong(4, 0.0);
  EXPECT_THROW(factor->extend(wrong, 1.0), std::invalid_argument);
}

// The blocked right-looking factor() must agree with the unblocked
// left-looking factor_reference() — the acceptance bar is 1e-12, but the
// panel/trailing-update split was arranged so every entry accumulates its
// subtractions in the same ascending-k order, giving bitwise equality.
// Sizes bracket the block edge (kCholeskyBlock = 48) and a multi-block
// case with remainder.
TEST(CholeskyBlocked, MatchesReferenceAroundBlockEdges) {
  ASSERT_EQ(kCholeskyBlock, 48u);
  Rng rng(31);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, kCholeskyBlock - 1, kCholeskyBlock,
        kCholeskyBlock + 1, 2 * kCholeskyBlock + 3}) {
    const Matrix a = random_spd(n, rng);
    const auto blocked = CholeskyFactor::factor(a);
    const auto reference = CholeskyFactor::factor_reference(a);
    ASSERT_TRUE(blocked.has_value()) << "n=" << n;
    ASSERT_TRUE(reference.has_value()) << "n=" << n;
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double diff =
            std::abs(blocked->lower()(i, j) - reference->lower()(i, j));
        worst = std::max(worst, diff);
        EXPECT_EQ(blocked->lower()(i, j), reference->lower()(i, j))
            << "n=" << n << " (" << i << ", " << j << ")";
      }
    }
    EXPECT_LE(worst, 1e-12) << "n=" << n;
  }
}

// Same contract for the blocked inverse: identical bits to the
// column-at-a-time reference at sizes bracketing the panel edge.
TEST(CholeskyBlocked, InverseMatchesReferenceAroundBlockEdges) {
  Rng rng(33);
  // The last two sizes reach past one and two of the inverse's 64-row
  // k-chunks below the first panel, exercising the chunked interior
  // updates (triangular finish + full-chunk consumers) bitwise.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{3}, kCholeskyBlock - 1, kCholeskyBlock,
        kCholeskyBlock + 1, 2 * kCholeskyBlock + 3, std::size_t{150},
        std::size_t{233}}) {
    const Matrix a = random_spd(n, rng);
    const auto factor = CholeskyFactor::factor(a);
    ASSERT_TRUE(factor.has_value()) << "n=" << n;
    const Matrix blocked = factor->inverse();
    const Matrix reference = factor->inverse_reference();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(blocked(i, j), reference(i, j))
            << "n=" << n << " (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(CholeskyBlocked, ReferenceRejectsIndefiniteLikeBlocked) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_FALSE(CholeskyFactor::factor(a).has_value());
  EXPECT_FALSE(CholeskyFactor::factor_reference(a).has_value());
}

TEST(CholeskyBlocked, SolveLowerBlockMatchesColumnSolves) {
  Rng rng(32);
  const std::size_t n = 20;
  const Matrix a = random_spd(n, rng);
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());

  Matrix b(n, 6);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 6; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  // A column slice of the multi-RHS solve equals the vector solve of that
  // column — bit for bit at the scalar dispatch level. At the vector
  // levels the block elimination runs through simd::rank1_sub (fused
  // multiply-adds), so the two chains agree only to rounding; rel 1e-12
  // is the per-kernel dispatch contract (test_linalg_simd.cpp).
  const bool bit_exact = alamr::linalg::simd::active_level() ==
                         alamr::linalg::simd::Level::kScalar;
  const Matrix mid = factor->solve_lower_block(b, 2, 5);
  ASSERT_EQ(mid.rows(), n);
  ASSERT_EQ(mid.cols(), 3u);
  for (std::size_t c = 2; c < 5; ++c) {
    std::vector<double> col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, c);
    const Vector z = factor->solve_lower(col);
    for (std::size_t i = 0; i < n; ++i) {
      if (bit_exact) {
        EXPECT_EQ(mid(i, c - 2), z[i]) << "col " << c << " row " << i;
      } else {
        EXPECT_NEAR(mid(i, c - 2), z[i], 1e-12 * std::abs(z[i]) + 1e-300)
            << "col " << c << " row " << i;
      }
    }
  }
  EXPECT_THROW(factor->solve_lower_block(b, 5, 2), std::invalid_argument);
  EXPECT_THROW(factor->solve_lower_block(b, 0, 7), std::invalid_argument);
}

TEST(Cholesky, InverseIsSymmetric) {
  Rng rng(13);
  const Matrix a = random_spd(9, rng);
  const auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  const Matrix inv = factor->inverse();
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      EXPECT_EQ(inv(i, j), inv(j, i));
    }
  }
}

}  // namespace
