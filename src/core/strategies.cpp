#include "alamr/core/strategies.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "alamr/core/trace.hpp"
#include "alamr/stats/descriptive.hpp"
#include "alamr/stats/distributions.hpp"

namespace alamr::core {

namespace {

void require_candidates(const CandidateView& candidates) {
  if (candidates.size() == 0) {
    throw std::invalid_argument("Strategy: empty candidate set");
  }
  // Mean spans may be empty (mean-skipping sweep feeding a strategy with
  // needs_mean() == false); when present they must align with the sigmas.
  const bool mu_ok =
      (candidates.mu_cost.empty() && candidates.mu_mem.empty()) ||
      (candidates.mu_cost.size() == candidates.sigma_cost.size() &&
       candidates.mu_mem.size() == candidates.sigma_mem.size());
  if (!mu_ok || candidates.sigma_cost.size() != candidates.sigma_mem.size() ||
      candidates.sigma_cost.size() != candidates.x.rows()) {
    throw std::invalid_argument("Strategy: misaligned candidate vectors");
  }
}

}  // namespace

std::optional<std::size_t> RandUniform::select(const CandidateView& candidates,
                                               stats::Rng& rng) const {
  require_candidates(candidates);
  return rng.uniform_index(candidates.size());
}

std::unique_ptr<Strategy> RandUniform::clone() const {
  return std::make_unique<RandUniform>(*this);
}

std::optional<std::size_t> MaxSigma::select(const CandidateView& candidates,
                                            stats::Rng& rng) const {
  require_candidates(candidates);
  (void)rng;
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (candidates.sigma_cost[i] > candidates.sigma_cost[best]) best = i;
  }
  return best;
}

std::unique_ptr<Strategy> MaxSigma::clone() const {
  return std::make_unique<MaxSigma>(*this);
}

std::optional<std::size_t> MinPred::select(const CandidateView& candidates,
                                           stats::Rng& rng) const {
  require_candidates(candidates);
  (void)rng;
  std::size_t best = 0;
  double best_score = candidates.sigma_cost[0] - candidates.mu_cost[0];
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double score = candidates.sigma_cost[i] - candidates.mu_cost[i];
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

std::unique_ptr<Strategy> MinPred::clone() const {
  return std::make_unique<MinPred>(*this);
}

RandGoodness::RandGoodness(double base) : base_(base) {
  if (!(base > 1.0)) {
    throw std::invalid_argument("RandGoodness: base must exceed 1");
  }
}

std::string RandGoodness::name() const {
  if (base_ == 10.0) return "RandGoodness";
  std::ostringstream os;
  os << "RandGoodness(base=" << base_ << ")";
  return os.str();
}

std::optional<std::size_t> RandGoodness::select(const CandidateView& candidates,
                                                stats::Rng& rng) const {
  require_candidates(candidates);
  const std::vector<double> weights =
      stats::goodness_weights(candidates.mu_cost, candidates.sigma_cost, base_);
  return stats::sample_categorical(weights, rng);
}

std::unique_ptr<Strategy> RandGoodness::clone() const {
  return std::make_unique<RandGoodness>(*this);
}

Rgma::Rgma(double memory_limit_log10, double base)
    : limit_(memory_limit_log10), base_(base) {
  if (!(base > 1.0)) {
    throw std::invalid_argument("Rgma: base must exceed 1");
  }
}

std::string Rgma::name() const {
  if (base_ == 10.0) return "RGMA";
  std::ostringstream os;
  os << "RGMA(base=" << base_ << ")";
  return os.str();
}

std::optional<std::size_t> Rgma::select(const CandidateView& candidates,
                                        stats::Rng& rng) const {
  require_candidates(candidates);

  // Algorithm 2, line 1-2: keep candidates predicted to satisfy the limit.
  std::vector<std::size_t> satisfying;
  satisfying.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates.mu_mem[i] < limit_) satisfying.push_back(i);
  }
  trace::count("strategy.rgma_filtered", candidates.size() - satisfying.size());
  // Early termination (paper Sec. V-D): every remaining sample is likely
  // to exceed the memory limit.
  if (satisfying.empty()) {
    trace::count("strategy.rgma_exhausted");
    return std::nullopt;
  }

  // Lines 3-5: goodness draw restricted to the satisfying set.
  std::vector<double> mu(satisfying.size());
  std::vector<double> sigma(satisfying.size());
  for (std::size_t s = 0; s < satisfying.size(); ++s) {
    mu[s] = candidates.mu_cost[satisfying[s]];
    sigma[s] = candidates.sigma_cost[satisfying[s]];
  }
  const std::vector<double> weights = stats::goodness_weights(mu, sigma, base_);
  return satisfying[stats::sample_categorical(weights, rng)];
}

std::unique_ptr<Strategy> Rgma::clone() const {
  return std::make_unique<Rgma>(*this);
}

ExpectedImprovement::ExpectedImprovement(double xi) : xi_(xi) {
  if (xi < 0.0) {
    throw std::invalid_argument("ExpectedImprovement: xi must be >= 0");
  }
}

std::optional<std::size_t> ExpectedImprovement::select(
    const CandidateView& candidates, stats::Rng& rng) const {
  require_candidates(candidates);
  (void)rng;
  double best_mu = candidates.mu_cost[0];
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    best_mu = std::min(best_mu, candidates.mu_cost[i]);
  }
  std::size_t best = 0;
  double best_ei = -1.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double sigma = candidates.sigma_cost[i];
    const double improvement = best_mu - candidates.mu_cost[i] - xi_;
    double ei = 0.0;
    if (sigma > 1e-12) {
      const double z = improvement / sigma;
      ei = improvement * stats::standard_normal_cdf(z) +
           sigma * stats::standard_normal_pdf(z);
    } else if (improvement > 0.0) {
      ei = improvement;
    }
    if (ei > best_ei) {
      best_ei = ei;
      best = i;
    }
  }
  return best;
}

std::unique_ptr<Strategy> ExpectedImprovement::clone() const {
  return std::make_unique<ExpectedImprovement>(*this);
}

}  // namespace alamr::core
