// Tests for the finite-volume time integrator and its instrumentation.

#include "alamr/amr/solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace {

using namespace alamr::amr;

ShockBubbleProblem tiny_problem(int mx = 8, int max_level = 2) {
  ShockBubbleProblem problem;
  problem.mx = mx;
  problem.max_level = max_level;
  problem.r0 = 0.35;
  problem.rhoin = 0.1;
  problem.final_time = 0.01;
  return problem;
}

TEST(Solver, RunsToFinalTime) {
  FvSolver solver(tiny_problem());
  const SolverStats stats = solver.run();
  EXPECT_NEAR(stats.final_time, 0.01, 1e-12);
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.total_cell_updates, 0u);
}

TEST(Solver, RunTwiceThrows) {
  FvSolver solver(tiny_problem());
  solver.run();
  EXPECT_THROW(solver.run(), std::logic_error);
}

TEST(Solver, MaxStepsCapRespected) {
  FvSolver solver(tiny_problem());
  const SolverStats stats = solver.run(3);
  EXPECT_EQ(stats.steps, 3u);
  EXPECT_LT(stats.final_time, 0.01);
}

TEST(Solver, EpochStepsSumToTotalSteps) {
  FvSolver solver(tiny_problem(8, 3));
  const SolverStats stats = solver.run();
  std::size_t epoch_steps = 0;
  for (const EpochProfile& epoch : stats.epochs) epoch_steps += epoch.steps;
  EXPECT_EQ(epoch_steps, stats.steps);
  EXPECT_EQ(stats.epochs.size(), stats.regrids + 1);
}

TEST(Solver, PeakCellsAtLeastFinalCells) {
  FvSolver solver(tiny_problem(8, 3));
  const std::size_t initial_cells = solver.mesh().total_cells();
  const SolverStats stats = solver.run();
  EXPECT_GE(stats.peak_cells, initial_cells);
  EXPECT_GE(stats.peak_cells, solver.mesh().total_cells());
}

TEST(Solver, UniformMeshConservesMassWithClosedSides) {
  // On a uniform (no-AMR) mesh, the only non-conservation comes through
  // the physical boundaries. With a quiescent field nothing moves and
  // mass is conserved to machine precision.
  ShockBubbleProblem problem = tiny_problem(8, 0);
  FvSolver solver(problem);
  solver.mesh().for_each_cell_set([&](double, double) {
    return to_conserved(Prim{1.0, 0.0, 0.0, 1.0});
  });
  const double mass_before = solver.mesh().total_mass();
  solver.mesh().fill_ghosts();
  solver.step(1e-3);
  // Quiescent + symmetric BCs: nothing changes except via the inflow
  // boundary whose state differs. Measure only interior far from it.
  const double mass_after = solver.mesh().total_mass();
  EXPECT_NEAR(mass_after, mass_before, 0.05 * mass_before);
}

TEST(Solver, StationaryUniformFlowIsExactlyPreserved) {
  // A spatially uniform state is a fixed point of the scheme away from
  // boundaries that inject different states.
  ShockBubbleProblem problem = tiny_problem(8, 0);
  FvSolver solver(problem);
  const Cons uniform = to_conserved(problem.post_shock());
  // Entire domain at the inflow state: even the inflow BC injects the
  // same values, so the field must not change at all.
  solver.mesh().for_each_cell_set([&](double, double) { return uniform; });
  solver.mesh().fill_ghosts();
  solver.step(1e-4);
  bool reflect_rows_touched = false;
  solver.mesh().for_each_leaf([&](const Patch& patch) {
    for (int j = 1; j < patch.mx() - 1; ++j) {
      for (int i = 0; i < patch.mx(); ++i) {
        // Interior rows away from the reflecting walls must be unchanged.
        EXPECT_NEAR(patch.at(i, j).rho, uniform.rho, 1e-13);
        EXPECT_NEAR(patch.at(i, j).mx, uniform.mx, 1e-13);
      }
    }
    (void)reflect_rows_touched;
  });
}

TEST(Solver, ShockAdvancesRight) {
  ShockBubbleProblem problem = tiny_problem(8, 2);
  problem.final_time = 0.02;
  FvSolver solver(problem);
  // Before: density right of the shock is ambient (1.0) outside the bubble.
  const double probe_x = problem.shock_x + 0.05;
  const double probe_y = 0.45;  // above the bubble
  EXPECT_NEAR(solver.mesh().rho_at(probe_x, probe_y), 1.0, 1e-12);
  solver.run();
  // After: the Mach-2 shock (speed ~ 2 sqrt(1.4) ~ 2.37) has passed the
  // probe, compressing the gas.
  EXPECT_GT(solver.mesh().rho_at(probe_x, probe_y), 1.5);
}

TEST(Solver, DensityStaysPositive) {
  ShockBubbleProblem problem = tiny_problem(8, 3);
  problem.rhoin = 0.02;  // hardest case: near-vacuum bubble
  problem.final_time = 0.02;
  FvSolver solver(problem);
  solver.run();
  solver.mesh().for_each_leaf([&](const Patch& patch) {
    for (int j = 0; j < patch.mx(); ++j) {
      for (int i = 0; i < patch.mx(); ++i) {
        EXPECT_GT(patch.at(i, j).rho, 0.0);
        EXPECT_TRUE(std::isfinite(patch.at(i, j).e));
      }
    }
  });
}

TEST(Solver, RefinementFollowsTheShock) {
  ShockBubbleProblem problem = tiny_problem(8, 3);
  problem.final_time = 0.02;
  FvSolver solver(problem);
  solver.run();
  // The shock has moved right of its initial position; the mesh must be
  // refined at the current shock location. Mach-2 shock speed is
  // 2 * sqrt(1.4) ~= 2.366, so x_shock ~= shock_x + 0.047.
  const double x_now = problem.shock_x + 2.0 * std::sqrt(1.4) * 0.02;
  EXPECT_EQ(solver.mesh().level_at(x_now, 0.4), problem.max_level);
}

TEST(Solver, MoreLevelsMoreWork) {
  ShockBubbleProblem coarse = tiny_problem(8, 1);
  ShockBubbleProblem fine = tiny_problem(8, 3);
  FvSolver s1(coarse);
  FvSolver s2(fine);
  const SolverStats r1 = s1.run();
  const SolverStats r2 = s2.run();
  EXPECT_GT(r2.total_cell_updates, r1.total_cell_updates * 3);
  EXPECT_GT(r2.steps, r1.steps);
}

TEST(Solver, SodShockTubeMatchesExactRiemannPlateaus) {
  // Quasi-1-D Sod problem run on the 2-D solver (uniform in y), compared
  // against the exact Riemann solution's intermediate states at t = 0.1:
  //   left star density  rho*L ~= 0.4263 (between rarefaction and contact)
  //   right star density rho*R ~= 0.2656 (between contact and shock)
  //   undisturbed right state rho = 0.125 (ahead of the shock)
  // First-order HLL on a 64x32 grid smears discontinuities over a few
  // cells, so probes sit mid-plateau with a 15% tolerance.
  ShockBubbleProblem problem = tiny_problem(32, 0);
  problem.final_time = 0.1;
  FvSolver solver(problem);
  solver.mesh().for_each_cell_set([](double x, double) {
    return x < 0.5 ? to_conserved(Prim{1.0, 0.0, 0.0, 1.0})
                   : to_conserved(Prim{0.125, 0.0, 0.0, 0.1});
  });
  solver.run();

  const double y_mid = 0.25;
  EXPECT_NEAR(solver.mesh().rho_at(0.55, y_mid), 0.4263, 0.4263 * 0.15);
  EXPECT_NEAR(solver.mesh().rho_at(0.63, y_mid), 0.2656, 0.2656 * 0.15);
  EXPECT_NEAR(solver.mesh().rho_at(0.85, y_mid), 0.125, 0.125 * 0.05);
  // Inside the rarefaction fan the density lies strictly between the left
  // state and the left star state.
  const double fan = solver.mesh().rho_at(0.44, y_mid);
  EXPECT_LT(fan, 1.0);
  EXPECT_GT(fan, 0.4263 * 0.9);
  // The flow is genuinely quasi-1-D: no y-variation develops.
  EXPECT_NEAR(solver.mesh().rho_at(0.63, 0.1), solver.mesh().rho_at(0.63, 0.4),
              1e-10);
}

TEST(Solver, HllcSodPlateausAndSharperContact) {
  // HLLC must reproduce the same exact-Riemann plateaus, and resolve the
  // contact discontinuity at least as sharply as HLL (measured by the
  // density difference across the contact's neighborhood).
  const auto run_sod = [](RiemannSolver rs) {
    ShockBubbleProblem problem = tiny_problem(32, 0);
    problem.final_time = 0.1;
    problem.riemann = rs;
    auto solver = std::make_unique<FvSolver>(problem);
    solver->mesh().for_each_cell_set([](double x, double) {
      return x < 0.5 ? to_conserved(Prim{1.0, 0.0, 0.0, 1.0})
                     : to_conserved(Prim{0.125, 0.0, 0.0, 0.1});
    });
    solver->run();
    return solver;
  };
  const auto hll = run_sod(RiemannSolver::kHll);
  const auto hllc = run_sod(RiemannSolver::kHllc);

  EXPECT_NEAR(hllc->mesh().rho_at(0.55, 0.25), 0.4263, 0.4263 * 0.15);
  EXPECT_NEAR(hllc->mesh().rho_at(0.63, 0.25), 0.2656, 0.2656 * 0.15);

  // Contact sharpness: density drop realized over the contact's
  // two-cell-wide neighborhood (exact location ~0.593 at t=0.1).
  const auto contact_drop = [](const QuadtreeMesh& mesh) {
    return mesh.rho_at(0.57, 0.25) - mesh.rho_at(0.615, 0.25);
  };
  EXPECT_GE(contact_drop(hllc->mesh()), contact_drop(hll->mesh()) - 1e-6);
}

TEST(SolverSecondOrder, SodPlateausTighterThanFirstOrder) {
  // The MUSCL-Hancock scheme must hit the exact-Riemann plateaus with
  // smaller error than the first-order scheme on the same grid.
  const auto run_sod = [](SpatialOrder order) {
    ShockBubbleProblem problem = tiny_problem(32, 0);
    problem.final_time = 0.1;
    problem.order = order;
    auto solver = std::make_unique<FvSolver>(problem);
    solver->mesh().for_each_cell_set([](double x, double) {
      return x < 0.5 ? to_conserved(Prim{1.0, 0.0, 0.0, 1.0})
                     : to_conserved(Prim{0.125, 0.0, 0.0, 0.1});
    });
    solver->run();
    return solver;
  };
  const auto first = run_sod(SpatialOrder::kFirstOrder);
  const auto second = run_sod(SpatialOrder::kSecondOrder);

  const auto plateau_error = [](const QuadtreeMesh& mesh) {
    return std::abs(mesh.rho_at(0.55, 0.25) - 0.4263) +
           std::abs(mesh.rho_at(0.63, 0.25) - 0.2656);
  };
  EXPECT_NEAR(second->mesh().rho_at(0.55, 0.25), 0.4263, 0.4263 * 0.10);
  EXPECT_NEAR(second->mesh().rho_at(0.63, 0.25), 0.2656, 0.2656 * 0.10);
  EXPECT_LT(plateau_error(second->mesh()), plateau_error(first->mesh()));
}

TEST(SolverSecondOrder, UniformFlowExactlyPreserved) {
  ShockBubbleProblem problem = tiny_problem(8, 0);
  problem.order = SpatialOrder::kSecondOrder;
  FvSolver solver(problem);
  const Cons uniform = to_conserved(problem.post_shock());
  solver.mesh().for_each_cell_set([&](double, double) { return uniform; });
  solver.mesh().fill_ghosts();
  solver.step(1e-4);
  solver.mesh().for_each_leaf([&](const Patch& patch) {
    for (int j = 2; j < patch.mx() - 2; ++j) {
      for (int i = 0; i < patch.mx(); ++i) {
        EXPECT_NEAR(patch.at(i, j).rho, uniform.rho, 1e-13);
      }
    }
  });
}

TEST(SolverSecondOrder, PositivityWithNearVacuumBubble) {
  ShockBubbleProblem problem = tiny_problem(8, 3);
  problem.order = SpatialOrder::kSecondOrder;
  problem.rhoin = 0.02;
  problem.final_time = 0.02;
  FvSolver solver(problem);
  solver.run();
  solver.mesh().for_each_leaf([&](const Patch& patch) {
    for (int j = 0; j < patch.mx(); ++j) {
      for (int i = 0; i < patch.mx(); ++i) {
        EXPECT_GT(patch.at(i, j).rho, 0.0);
        EXPECT_TRUE(std::isfinite(patch.at(i, j).e));
      }
    }
  });
}

TEST(SolverSecondOrder, RunsOnAmrMeshAndTracksShock) {
  ShockBubbleProblem problem = tiny_problem(8, 3);
  problem.order = SpatialOrder::kSecondOrder;
  problem.final_time = 0.02;
  FvSolver solver(problem);
  const SolverStats stats = solver.run();
  EXPECT_GT(stats.steps, 0u);
  const double x_now = problem.shock_x + 2.0 * std::sqrt(1.4) * 0.02;
  EXPECT_EQ(solver.mesh().level_at(x_now, 0.4), problem.max_level);
}

TEST(SolverSecondOrder, GhostWidthFollowsOrder) {
  ShockBubbleProblem problem = tiny_problem(8, 1);
  EXPECT_EQ(problem.ghost_width(), 1);
  problem.order = SpatialOrder::kSecondOrder;
  EXPECT_EQ(problem.ghost_width(), 2);
  QuadtreeMesh mesh(problem);
  mesh.for_each_leaf([](const Patch& patch) { EXPECT_EQ(patch.ghosts(), 2); });
}

namespace {

/// L1 error of an advected smooth density bump against the exact solution
/// (uniform velocity transports the profile unchanged). Quasi-1-D so the
/// reflecting walls are inert. Returns the error at resolution mx.
double advection_l1_error(SpatialOrder order, int mx) {
  ShockBubbleProblem problem;
  problem.mx = mx;
  problem.max_level = 0;
  problem.order = order;
  problem.final_time = 0.04;
  problem.cfl = 0.4;
  FvSolver solver(problem);

  constexpr double kU = 1.0;
  const auto bump = [](double x) {
    // Broad profile (~5 cells at the coarsest resolution, so the limiter
    // is not permanently active), placed away from the inflow boundary
    // whose mismatch wave travels at ~3 and must not reach the samples.
    const double d = (x - 0.55) / 0.15;
    return 1.0 + 0.3 * std::exp(-d * d);
  };
  solver.mesh().for_each_cell_set([&](double x, double) {
    // Uniform pressure and velocity: density is passively advected.
    return to_conserved(Prim{bump(x), kU, 0.0, 1.0});
  });
  solver.run();

  // Compare at cell centers (rho_at returns the containing cell's value;
  // probing off-center would add an O(h) artifact that masks the scheme's
  // order).
  const double h = solver.mesh().cell_size(0);
  double error = 0.0;
  int samples = 0;
  for (double x = 0.35; x < 0.85; x += h) {
    const double center = (std::floor(x / h) + 0.5) * h;
    error += std::abs(solver.mesh().rho_at(center, 0.25) -
                      bump(center - kU * problem.final_time));
    ++samples;
  }
  return error / samples;
}

}  // namespace

TEST(SolverConvergence, SecondOrderConvergesFasterOnSmoothAdvection) {
  const double first_coarse = advection_l1_error(SpatialOrder::kFirstOrder, 16);
  const double first_fine = advection_l1_error(SpatialOrder::kFirstOrder, 64);
  const double second_coarse =
      advection_l1_error(SpatialOrder::kSecondOrder, 16);
  const double second_fine = advection_l1_error(SpatialOrder::kSecondOrder, 64);

  // Both schemes converge under 4x refinement.
  EXPECT_LT(first_fine, first_coarse);
  EXPECT_LT(second_fine, second_coarse);
  // The second-order scheme is more accurate at every resolution, and its
  // error contraction under 4x refinement is markedly stronger (formal
  // orders would give 4x vs 16x; minmod clipping at the extremum makes the
  // thresholds conservative).
  EXPECT_LT(second_coarse, first_coarse);
  EXPECT_LT(second_fine, first_fine);
  const double ratio_first = first_coarse / first_fine;
  const double ratio_second = second_coarse / second_fine;
  EXPECT_GT(ratio_first, 2.0);
  EXPECT_GT(ratio_second, 5.0);
  EXPECT_GT(ratio_second, 1.5 * ratio_first);
}

TEST(Solver, DeterministicAcrossRuns) {
  const auto run = [] {
    FvSolver solver(tiny_problem(8, 2));
    const SolverStats stats = solver.run();
    return std::tuple{stats.steps, stats.total_cell_updates,
                      solver.mesh().total_mass()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
