#!/usr/bin/env bash
# Pre-PR gate: builds and runs the full test suite in three configurations
# and fails on the first broken one.
#
#   1. plain       — the default release build (build-check/plain)
#   2. sanitized   — ALAMR_SANITIZE=address,undefined (build-check/asan)
#   3. threaded    — plain binaries, ctest with ALAMR_THREADS=4 so every
#                    suite (not just tests_core_threads4) exercises the
#                    4-lane pool
#
# Usage: scripts/check.sh [jobs]     (default: nproc)
#
# Build trees live under build-check/ to leave the main build/ alone.

set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_config() {
  local name="$1"
  local build_dir="build-check/$name"
  shift
  echo "=== [$name] configure + build ==="
  cmake -B "$build_dir" -S . "$@" > /dev/null
  cmake --build "$build_dir" -j "$jobs" > /dev/null
  echo "=== [$name] ctest ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" > /tmp/check_"$name".log 2>&1 || {
    tail -50 /tmp/check_"$name".log
    echo "FAILED: $name (full log: /tmp/check_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_"$name".log
}

run_config plain
run_config asan -DALAMR_SANITIZE=address,undefined

echo "=== [threads4] ctest with ALAMR_THREADS=4 on the plain build ==="
ALAMR_THREADS=4 ctest --test-dir build-check/plain --output-on-failure -j "$jobs" \
  > /tmp/check_threads4.log 2>&1 || {
  tail -50 /tmp/check_threads4.log
  echo "FAILED: threads4 (full log: /tmp/check_threads4.log)"
  exit 1
}
tail -2 /tmp/check_threads4.log

echo "All checks passed."
