file(REMOVE_RECURSE
  "CMakeFiles/surrogate_explorer.dir/surrogate_explorer.cpp.o"
  "CMakeFiles/surrogate_explorer.dir/surrogate_explorer.cpp.o.d"
  "surrogate_explorer"
  "surrogate_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/surrogate_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
