
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_batch.cpp" "tests/CMakeFiles/tests_core.dir/test_core_batch.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_core_batch.cpp.o.d"
  "/root/repo/tests/test_core_export.cpp" "tests/CMakeFiles/tests_core.dir/test_core_export.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_core_export.cpp.o.d"
  "/root/repo/tests/test_core_metrics.cpp" "tests/CMakeFiles/tests_core.dir/test_core_metrics.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_core_metrics.cpp.o.d"
  "/root/repo/tests/test_core_online.cpp" "tests/CMakeFiles/tests_core.dir/test_core_online.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_core_online.cpp.o.d"
  "/root/repo/tests/test_core_parallel.cpp" "tests/CMakeFiles/tests_core.dir/test_core_parallel.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_core_parallel.cpp.o.d"
  "/root/repo/tests/test_core_simulator.cpp" "tests/CMakeFiles/tests_core.dir/test_core_simulator.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_core_simulator.cpp.o.d"
  "/root/repo/tests/test_core_strategies.cpp" "tests/CMakeFiles/tests_core.dir/test_core_strategies.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_core_strategies.cpp.o.d"
  "/root/repo/tests/test_core_trace.cpp" "tests/CMakeFiles/tests_core.dir/test_core_trace.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_core_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/alamr_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/amr/CMakeFiles/alamr_amr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/gp/CMakeFiles/alamr_gp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/opt/CMakeFiles/alamr_opt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/alamr_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
