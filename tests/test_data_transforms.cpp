// Tests for the paper's pre-processing: log10 responses and unit-cube
// feature scaling (Sec. IV-A).

#include "alamr/data/transforms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::data;
using alamr::linalg::Matrix;
using alamr::stats::Rng;

TEST(Log10Transform, KnownValues) {
  const std::vector<double> v{1.0, 10.0, 100.0, 0.01};
  const auto t = log10_transform(v);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 1.0);
  EXPECT_DOUBLE_EQ(t[2], 2.0);
  EXPECT_DOUBLE_EQ(t[3], -2.0);
}

TEST(Log10Transform, RejectsNonPositive) {
  EXPECT_THROW(log10_transform(std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(log10_transform(std::vector<double>{-3.0}),
               std::invalid_argument);
}

TEST(Exp10Transform, RoundTripsAndStaysPositive) {
  const std::vector<double> v{0.002, 0.249, 11.853};  // Table I cost range
  const auto round_trip = exp10_transform(log10_transform(v));
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(round_trip[i], v[i], 1e-12);
  }
  // The paper's motivation: exponentiation guarantees positive predictions.
  const auto positive = exp10_transform(std::vector<double>{-50.0, 0.0, 3.0});
  for (const double p : positive) EXPECT_GT(p, 0.0);
}

TEST(FeatureScaler, MapsToUnitCube) {
  const Matrix x{{4.0, 8.0}, {32.0, 16.0}, {18.0, 32.0}};
  const FeatureScaler scaler = FeatureScaler::fit(x);
  const Matrix scaled = scaler.transform(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      EXPECT_GE(scaled(i, j), 0.0);
      EXPECT_LE(scaled(i, j), 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.0);  // min maps to 0
  EXPECT_DOUBLE_EQ(scaled(1, 0), 1.0);  // max maps to 1
}

TEST(FeatureScaler, InverseTransformRoundTrips) {
  Rng rng(3);
  Matrix x(20, 4);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 4; ++j) x(i, j) = rng.uniform(-5.0, 50.0);
  }
  const FeatureScaler scaler = FeatureScaler::fit(x);
  const Matrix back = scaler.inverse_transform(scaler.transform(x));
  EXPECT_LT(alamr::linalg::max_abs_diff(back, x), 1e-10);
}

TEST(FeatureScaler, ConstantColumnMapsToHalf) {
  const Matrix x{{7.0, 1.0}, {7.0, 2.0}};
  const FeatureScaler scaler = FeatureScaler::fit(x);
  const Matrix scaled = scaler.transform(x);
  EXPECT_DOUBLE_EQ(scaled(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(scaled(1, 0), 0.5);
}

TEST(FeatureScaler, ExtrapolatesOutsideFittedRange) {
  const Matrix x{{0.0}, {10.0}};
  const FeatureScaler scaler = FeatureScaler::fit(x);
  const Matrix outside{{20.0}};
  EXPECT_DOUBLE_EQ(scaler.transform(outside)(0, 0), 2.0);
}

TEST(ColumnTransforms, EmptySpecIsIdentity) {
  const Matrix x{{4.0, 0.2}, {32.0, 0.5}};
  const Matrix out = apply_column_transforms(x, {});
  EXPECT_LT(alamr::linalg::max_abs_diff(out, x), 1e-15);
}

TEST(ColumnTransforms, Log2MakesPowersOfTwoEquidistant) {
  // Paper Sec. V-D: with log2(p), 2^3 is equally far from 2^2 and 2^4.
  const Matrix x{{4.0}, {8.0}, {16.0}};
  const std::vector<ColumnTransform> spec{ColumnTransform::kLog2};
  const Matrix out = apply_column_transforms(x, spec);
  EXPECT_DOUBLE_EQ(out(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(out(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(out(1, 0) - out(0, 0), out(2, 0) - out(1, 0));
}

TEST(ColumnTransforms, MixedSpecAppliesPerColumn) {
  const Matrix x{{8.0, 100.0, 7.0}};
  const std::vector<ColumnTransform> spec{
      ColumnTransform::kLog2, ColumnTransform::kLog10,
      ColumnTransform::kIdentity};
  const Matrix out = apply_column_transforms(x, spec);
  EXPECT_DOUBLE_EQ(out(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 7.0);
}

TEST(ColumnTransforms, RejectsBadInput) {
  const Matrix x{{1.0, 2.0}};
  const std::vector<ColumnTransform> short_spec{ColumnTransform::kIdentity};
  EXPECT_THROW(apply_column_transforms(x, short_spec), std::invalid_argument);

  const Matrix nonpositive{{-1.0}};
  const std::vector<ColumnTransform> log_spec{ColumnTransform::kLog2};
  EXPECT_THROW(apply_column_transforms(nonpositive, log_spec),
               std::invalid_argument);
}

TEST(FeatureScaler, DimensionMismatchThrows) {
  const Matrix x{{1.0, 2.0}};
  const FeatureScaler scaler = FeatureScaler::fit(x);
  EXPECT_THROW(scaler.transform(Matrix{{1.0}}), std::invalid_argument);
  EXPECT_THROW(scaler.inverse_transform(Matrix{{1.0, 2.0, 3.0}}),
               std::invalid_argument);
}

}  // namespace
