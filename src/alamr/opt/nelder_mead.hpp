#pragma once

// Derivative-free Nelder–Mead simplex minimizer.
//
// Serves two roles: (1) a fallback for objectives without analytic
// gradients (e.g. experimenting with non-differentiable kernels), and
// (2) an independent cross-check of the L-BFGS results in tests — both
// optimizers must land on the same hyperparameters for well-conditioned
// fixtures.

#include <cstddef>
#include <vector>

#include "alamr/opt/objective.hpp"

namespace alamr::opt {

struct NelderMeadOptions {
  std::size_t max_iterations = 500;
  double initial_step = 0.5;        // simplex edge length
  double f_tolerance = 1e-10;       // spread of simplex values
  double x_tolerance = 1e-9;        // spread of simplex vertices
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Minimizes `f` (gradient never requested). If `bounds.active()`, vertices
/// are projected into the box after every move.
NelderMeadResult nelder_mead_minimize(const Objective& f,
                                      std::span<const double> x0,
                                      const NelderMeadOptions& options = {},
                                      const Bounds& bounds = {});

}  // namespace alamr::opt
