file(REMOVE_RECURSE
  "CMakeFiles/tests_data.dir/test_data_csv.cpp.o"
  "CMakeFiles/tests_data.dir/test_data_csv.cpp.o.d"
  "CMakeFiles/tests_data.dir/test_data_dataset.cpp.o"
  "CMakeFiles/tests_data.dir/test_data_dataset.cpp.o.d"
  "CMakeFiles/tests_data.dir/test_data_partition.cpp.o"
  "CMakeFiles/tests_data.dir/test_data_partition.cpp.o.d"
  "CMakeFiles/tests_data.dir/test_data_transforms.cpp.o"
  "CMakeFiles/tests_data.dir/test_data_transforms.cpp.o.d"
  "tests_data"
  "tests_data.pdb"
  "tests_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
