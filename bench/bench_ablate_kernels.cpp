// A3 — kernel ablation (the paper's future-work direction: "evaluating
// alternative kernel functions (e.g., anisotropic RBF kernels and Matern
// kernels with controllable smoothness)"). Runs the same RandGoodness AL
// with RBF (paper), ARD-RBF, Matern 3/2 and Matern 5/2 kernels and
// compares final accuracy and the models' marginal likelihoods.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace alamr;
  bench::print_header(
      "A3: kernel ablation", "Sec. VI future work",
      "ARD/Matern can improve accuracy over isotropic RBF on anisotropic "
      "response surfaces; ordering is the result of interest");

  const data::Dataset dataset = bench::load_dataset();

  const struct {
    const char* name;
    core::KernelChoice choice;
  } kernels[] = {
      {"RBF (paper)", core::KernelChoice::kRbf},
      {"RBF-ARD", core::KernelChoice::kRbfArd},
      {"Matern 3/2", core::KernelChoice::kMatern32},
      {"Matern 5/2", core::KernelChoice::kMatern52},
  };

  std::printf("\n%-14s %14s %14s %14s %12s\n", "kernel", "init RMSE(c)",
              "final RMSE(c)", "final RMSE(m)", "cum.cost");
  for (const auto& entry : kernels) {
    core::AlOptions options = bench::al_options(/*n_init=*/50,
                                                /*iterations=*/100);
    options.kernel = entry.choice;
    const core::AlSimulator simulator(dataset, options);

    stats::Rng partition_rng(2020);  // same partition for every kernel
    const data::Partition partition = data::make_partition(
        dataset.size(), options.n_test, options.n_init, partition_rng);
    stats::Rng rng(3);
    const core::TrajectoryResult traj =
        simulator.run_with_partition(core::RandGoodness(), partition, rng);
    std::printf("%-14s %14.4f %14.4f %14.4f %12.3f\n", entry.name,
                traj.initial_rmse_cost, traj.iterations.back().rmse_cost,
                traj.iterations.back().rmse_mem,
                traj.iterations.back().cumulative_cost);
  }
  return 0;
}
