// A2 — ablation of the memory limit L_mem: sweeps the limit across
// quantiles of the log10 memory distribution and reports how much of the
// Active set stays reachable for RGMA, the regret it incurs, and where it
// terminates early. Tightening the limit shrinks the safe region and
// forces earlier termination (the stopping behaviour paper Sec. V-D
// discusses).

#include <cmath>
#include <cstdio>

#include "alamr/data/transforms.hpp"
#include "alamr/stats/descriptive.hpp"
#include "bench_common.hpp"

int main() {
  using namespace alamr;
  bench::print_header(
      "A2: memory limit sweep", "Sec. V-B / V-D design parameter",
      "tighter limit -> fewer safe candidates, earlier RGMA termination, "
      "bounded regret; looser limit -> RGMA approaches RandGoodness");

  const data::Dataset dataset = bench::load_dataset();
  const auto log_mem = data::log10_transform(dataset.memory);

  std::printf("\n%10s %12s %14s %10s %12s %14s %12s\n", "quantile",
              "L_mem[MB]", "jobs over[%]", "iters", "early stop",
              "final CR[nh]", "RMSE(cost)");
  for (const double q : {0.30, 0.50, 0.70, 0.90}) {
    core::AlOptions options = bench::al_options(/*n_init=*/50,
                                                /*iterations=*/120);
    options.memory_limit_log10 = stats::quantile(log_mem, q);
    const core::AlSimulator simulator(dataset, options);

    std::size_t over = 0;
    for (const double m : dataset.memory) {
      if (m >= simulator.memory_limit_mb()) ++over;
    }

    const core::Rgma rgma(simulator.memory_limit_log10());
    stats::Rng rng(23);
    const core::TrajectoryResult traj = simulator.run(rgma, rng);
    const double cr = traj.iterations.empty()
                          ? 0.0
                          : traj.iterations.back().cumulative_regret;
    const double rmse = traj.iterations.empty()
                            ? traj.initial_rmse_cost
                            : traj.iterations.back().rmse_cost;
    std::printf("%10.2f %12.3f %14.1f %10zu %12s %14.4f %12.4f\n", q,
                simulator.memory_limit_mb(),
                100.0 * static_cast<double>(over) /
                    static_cast<double>(dataset.size()),
                traj.iterations.size(), traj.early_stopped ? "yes" : "no", cr,
                rmse);
  }
  return 0;
}
