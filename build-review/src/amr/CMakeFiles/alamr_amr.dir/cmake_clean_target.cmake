file(REMOVE_RECURSE
  "libalamr_amr.a"
)
