// Tests for covariance functions and kernel algebra.

#include "alamr/gp/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "alamr/linalg/cholesky.hpp"
#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::gp;
using alamr::linalg::Matrix;
using alamr::stats::Rng;

Matrix random_points(std::size_t n, std::size_t d, Rng& rng) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniform(0.0, 1.0);
  }
  return x;
}

TEST(RbfKernelTest, KnownValues) {
  RbfKernel k(1.0);
  const Matrix x{{0.0, 0.0}, {1.0, 0.0}};
  const Matrix gram = k.gram(x);
  EXPECT_DOUBLE_EQ(gram(0, 0), 1.0);
  EXPECT_NEAR(gram(0, 1), std::exp(-0.5), 1e-14);
  EXPECT_DOUBLE_EQ(gram(0, 1), gram(1, 0));
}

TEST(RbfKernelTest, LongerLengthScaleFlattens) {
  const Matrix x{{0.0}, {1.0}};
  RbfKernel narrow(0.5);
  RbfKernel broad(5.0);
  EXPECT_LT(narrow.gram(x)(0, 1), broad.gram(x)(0, 1));
}

TEST(RbfKernelTest, LogParamRoundTrip) {
  RbfKernel k(2.0);
  const auto theta = k.log_params();
  ASSERT_EQ(theta.size(), 1u);
  EXPECT_NEAR(theta[0], std::log(2.0), 1e-14);
  k.set_log_params(std::vector<double>{std::log(3.0)});
  EXPECT_NEAR(k.length_scale(), 3.0, 1e-14);
}

TEST(ConstantKernelTest, GramIsConstant) {
  ConstantKernel k(2.5);
  const Matrix x{{0.0}, {1.0}, {7.0}};
  const Matrix gram = k.gram(x);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(gram(i, j), 2.5);
  }
  EXPECT_THROW(ConstantKernel(-1.0), std::invalid_argument);
}

TEST(WhiteKernelTest, DiagonalOnlyAndZeroCross) {
  WhiteKernel k(0.1);
  const Matrix x{{0.0}, {1.0}};
  const Matrix gram = k.gram(x);
  EXPECT_DOUBLE_EQ(gram(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(gram(0, 1), 0.0);
  const Matrix cross = k.cross(x, x);
  // White noise applies to training targets, never to cross-covariance —
  // even if query points coincide with training points.
  EXPECT_DOUBLE_EQ(cross(0, 0), 0.0);
}

TEST(MaternKernelTest, NuHalfIsExponential) {
  MaternKernel k(MaternKernel::Nu::kHalf, 2.0);
  const Matrix x{{0.0}, {3.0}};
  EXPECT_NEAR(k.gram(x)(0, 1), std::exp(-1.5), 1e-14);
}

TEST(MaternKernelTest, SmootherNuIsCloserToRbf) {
  // As nu increases the Matérn kernel approaches the RBF value.
  const Matrix x{{0.0}, {0.7}};
  RbfKernel rbf(1.0);
  const double target = rbf.gram(x)(0, 1);
  MaternKernel m12(MaternKernel::Nu::kHalf, 1.0);
  MaternKernel m32(MaternKernel::Nu::kThreeHalves, 1.0);
  MaternKernel m52(MaternKernel::Nu::kFiveHalves, 1.0);
  const double e12 = std::abs(m12.gram(x)(0, 1) - target);
  const double e32 = std::abs(m32.gram(x)(0, 1) - target);
  const double e52 = std::abs(m52.gram(x)(0, 1) - target);
  EXPECT_LT(e52, e32);
  EXPECT_LT(e32, e12);
}

TEST(RbfArdKernelTest, AnisotropyMatters) {
  RbfArdKernel k(std::vector<double>{0.1, 10.0});
  const Matrix near_in_0{{0.0, 0.0}, {0.05, 0.0}};
  const Matrix near_in_1{{0.0, 0.0}, {0.0, 0.05}};
  // Displacement along the short-length-scale axis decays much faster.
  EXPECT_LT(k.gram(near_in_0)(0, 1), k.gram(near_in_1)(0, 1));
}

TEST(RbfArdKernelTest, MatchesIsotropicWhenScalesEqual) {
  RbfArdKernel ard(std::vector<double>{1.3, 1.3, 1.3});
  RbfKernel iso(1.3);
  Rng rng(5);
  const Matrix x = random_points(6, 3, rng);
  EXPECT_LT(alamr::linalg::max_abs_diff(ard.gram(x), iso.gram(x)), 1e-14);
}

TEST(RationalQuadraticTest, LargeAlphaApproachesRbf) {
  const Matrix x{{0.0}, {0.6}};
  RbfKernel rbf(1.0);
  RationalQuadraticKernel rq_small(1.0, 0.5);
  RationalQuadraticKernel rq_large(1.0, 1000.0);
  const double target = rbf.gram(x)(0, 1);
  EXPECT_LT(std::abs(rq_large.gram(x)(0, 1) - target),
            std::abs(rq_small.gram(x)(0, 1) - target));
  EXPECT_NEAR(rq_large.gram(x)(0, 1), target, 1e-3);
}

TEST(RationalQuadraticTest, KnownValue) {
  // l = 1, alpha = 1, r = 1: k = (1 + 0.5)^-1 = 2/3.
  RationalQuadraticKernel rq(1.0, 1.0);
  const Matrix x{{0.0}, {1.0}};
  EXPECT_NEAR(rq.gram(x)(0, 1), 2.0 / 3.0, 1e-14);
}

TEST(SumKernelTest, GramAddsAndParamsConcatenate) {
  auto k = sum(std::make_unique<ConstantKernel>(2.0),
               std::make_unique<WhiteKernel>(0.5));
  const Matrix x{{0.0}, {1.0}};
  const Matrix gram = k->gram(x);
  EXPECT_DOUBLE_EQ(gram(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(gram(0, 1), 2.0);
  EXPECT_EQ(k->num_params(), 2u);
  const auto theta = k->log_params();
  EXPECT_NEAR(theta[0], std::log(2.0), 1e-14);
  EXPECT_NEAR(theta[1], std::log(0.5), 1e-14);
}

TEST(ProductKernelTest, AmplitudeScalesRbf) {
  auto k = product(std::make_unique<ConstantKernel>(4.0),
                   std::make_unique<RbfKernel>(1.0));
  const Matrix x{{0.0}, {1.0}};
  const Matrix gram = k->gram(x);
  EXPECT_DOUBLE_EQ(gram(0, 0), 4.0);
  EXPECT_NEAR(gram(0, 1), 4.0 * std::exp(-0.5), 1e-13);
}

TEST(PaperKernel, StructureAndDiagonal) {
  auto k = make_paper_kernel(2.0, 0.5, 0.01);
  EXPECT_EQ(k->num_params(), 3u);  // amplitude, length, noise
  const Matrix x{{0.2, 0.3}, {0.8, 0.1}};
  const auto diag = k->diagonal(x);
  EXPECT_NEAR(diag[0], 2.0 + 0.01, 1e-13);
  // Gram diagonal includes noise; cross does not.
  const Matrix gram = k->gram(x);
  EXPECT_NEAR(gram(0, 0), 2.01, 1e-13);
  const Matrix cross = k->cross(x, x);
  EXPECT_NEAR(cross(0, 0), 2.0, 1e-13);
}

TEST(KernelClone, IndependentState) {
  auto k = make_paper_kernel();
  auto copy = k->clone();
  std::vector<double> theta = k->log_params();
  theta[0] += 1.0;
  copy->set_log_params(theta);
  EXPECT_NE(copy->log_params()[0], k->log_params()[0]);
}

TEST(KernelDescribe, MentionsStructure) {
  const auto k = make_paper_kernel();
  const std::string text = k->describe();
  EXPECT_NE(text.find("RBF"), std::string::npos);
  EXPECT_NE(text.find("White"), std::string::npos);
}

// Property: every kernel produces a symmetric positive semi-definite gram
// matrix on random point sets (checked via jittered Cholesky success and
// symmetry), and cross(x, x) agrees with gram minus the white component.
struct KernelFactory {
  const char* name;
  std::unique_ptr<Kernel> (*make)();
};

std::unique_ptr<Kernel> make_rbf() {
  return std::make_unique<RbfKernel>(0.7);
}
std::unique_ptr<Kernel> make_matern32() {
  return std::make_unique<MaternKernel>(MaternKernel::Nu::kThreeHalves, 0.7);
}
std::unique_ptr<Kernel> make_matern52() {
  return std::make_unique<MaternKernel>(MaternKernel::Nu::kFiveHalves, 0.7);
}
std::unique_ptr<Kernel> make_ard() {
  return std::make_unique<RbfArdKernel>(std::vector<double>{0.5, 1.5, 0.9});
}
std::unique_ptr<Kernel> make_paper() { return make_paper_kernel(1.5, 0.6, 0.05); }
std::unique_ptr<Kernel> make_rq() {
  return std::make_unique<RationalQuadraticKernel>(0.7, 2.0);
}

class KernelPsdProperty : public ::testing::TestWithParam<KernelFactory> {};

TEST_P(KernelPsdProperty, GramSymmetricPsd) {
  Rng rng(31);
  const auto kernel = GetParam().make();
  const Matrix x = random_points(20, 3, rng);
  const Matrix gram = kernel->gram(x);
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    for (std::size_t j = 0; j < gram.cols(); ++j) {
      EXPECT_NEAR(gram(i, j), gram(j, i), 1e-14);
    }
  }
  // PSD (up to jitter): factorization must succeed.
  EXPECT_NO_THROW(alamr::linalg::cholesky_with_jitter(gram));
}

TEST_P(KernelPsdProperty, DiagonalMatchesGram) {
  Rng rng(32);
  const auto kernel = GetParam().make();
  const Matrix x = random_points(12, 3, rng);
  const Matrix gram = kernel->gram(x);
  const auto diag = kernel->diagonal(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(diag[i], gram(i, i), 1e-13);
  }
}

TEST_P(KernelPsdProperty, SetParamsChangesGramConsistently) {
  Rng rng(33);
  const auto kernel = GetParam().make();
  const Matrix x = random_points(8, 3, rng);
  const Matrix before = kernel->gram(x);
  auto theta = kernel->log_params();
  for (double& t : theta) t += 0.3;
  kernel->set_log_params(theta);
  const Matrix after = kernel->gram(x);
  // Round-trip back restores the original gram exactly.
  for (double& t : theta) t -= 0.3;
  kernel->set_log_params(theta);
  EXPECT_LT(alamr::linalg::max_abs_diff(kernel->gram(x), before), 1e-14);
  EXPECT_GT(alamr::linalg::max_abs_diff(after, before), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelPsdProperty,
    ::testing::Values(KernelFactory{"rbf", &make_rbf},
                      KernelFactory{"matern32", &make_matern32},
                      KernelFactory{"matern52", &make_matern52},
                      KernelFactory{"ard", &make_ard},
                      KernelFactory{"paper", &make_paper},
                      KernelFactory{"rq", &make_rq}),
    [](const ::testing::TestParamInfo<KernelFactory>& info) {
      return info.param.name;
    });

}  // namespace
