file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_amr_refinement.dir/bench_fig1_amr_refinement.cpp.o"
  "CMakeFiles/bench_fig1_amr_refinement.dir/bench_fig1_amr_refinement.cpp.o.d"
  "bench_fig1_amr_refinement"
  "bench_fig1_amr_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_amr_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
