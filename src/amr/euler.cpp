#include "alamr/amr/euler.hpp"

#include <algorithm>
#include <cmath>

namespace alamr::amr {

namespace {

constexpr double kFloorRho = 1e-10;
constexpr double kFloorP = 1e-10;

}  // namespace

Prim to_primitive(const Cons& c) noexcept {
  Prim w;
  w.rho = std::max(c.rho, kFloorRho);
  w.u = c.mx / w.rho;
  w.v = c.my / w.rho;
  const double kinetic = 0.5 * w.rho * (w.u * w.u + w.v * w.v);
  w.p = std::max((kGamma - 1.0) * (c.e - kinetic), kFloorP);
  return w;
}

Cons to_conserved(const Prim& w) noexcept {
  Cons c;
  c.rho = w.rho;
  c.mx = w.rho * w.u;
  c.my = w.rho * w.v;
  c.e = w.p / (kGamma - 1.0) + 0.5 * w.rho * (w.u * w.u + w.v * w.v);
  return c;
}

double sound_speed(const Prim& w) noexcept {
  return std::sqrt(kGamma * w.p / std::max(w.rho, kFloorRho));
}

Cons flux_x(const Cons& c) noexcept {
  const Prim w = to_primitive(c);
  Cons f;
  f.rho = c.mx;
  f.mx = c.mx * w.u + w.p;
  f.my = c.my * w.u;
  f.e = (c.e + w.p) * w.u;
  return f;
}

Cons flux_x(const Cons& c, const Prim& w) noexcept {
  Cons f;
  f.rho = c.mx;
  f.mx = c.mx * w.u + w.p;
  f.my = c.my * w.u;
  f.e = (c.e + w.p) * w.u;
  return f;
}

Cons hll_flux_x(const Cons& left, const Prim& wl, const Cons& right,
                const Prim& wr) noexcept {
  const double cl = sound_speed(wl);
  const double cr = sound_speed(wr);

  const double sl = std::min(wl.u - cl, wr.u - cr);
  const double sr = std::max(wl.u + cl, wr.u + cr);

  if (sl >= 0.0) return flux_x(left, wl);
  if (sr <= 0.0) return flux_x(right, wr);

  const Cons fl = flux_x(left, wl);
  const Cons fr = flux_x(right, wr);
  const double inv = 1.0 / (sr - sl);
  return (fl * sr - fr * sl + (right - left) * (sr * sl)) * inv;
}

Cons hll_flux_x(const Cons& left, const Cons& right) noexcept {
  const Prim wl = to_primitive(left);
  const Prim wr = to_primitive(right);
  const double cl = sound_speed(wl);
  const double cr = sound_speed(wr);

  // Davis wave-speed estimates.
  const double sl = std::min(wl.u - cl, wr.u - cr);
  const double sr = std::max(wl.u + cl, wr.u + cr);

  if (sl >= 0.0) return flux_x(left);
  if (sr <= 0.0) return flux_x(right);

  const Cons fl = flux_x(left);
  const Cons fr = flux_x(right);
  const double inv = 1.0 / (sr - sl);
  return (fl * sr - fr * sl + (right - left) * (sr * sl)) * inv;
}

Cons hllc_flux_x(const Cons& left, const Prim& wl, const Cons& right,
                 const Prim& wr) noexcept {
  const double cl = sound_speed(wl);
  const double cr = sound_speed(wr);
  const double sl = std::min(wl.u - cl, wr.u - cr);
  const double sr = std::max(wl.u + cl, wr.u + cr);

  if (sl >= 0.0) return flux_x(left, wl);
  if (sr <= 0.0) return flux_x(right, wr);

  // Contact (star) wave speed, Toro Eq. 10.37.
  const double num = wr.p - wl.p + left.mx * (sl - wl.u) - right.mx * (sr - wr.u);
  const double den = wl.rho * (sl - wl.u) - wr.rho * (sr - wr.u);
  const double sm = den != 0.0 ? num / den : 0.0;

  // Star-region state on the upwind side of the contact (Toro Eq. 10.39).
  const auto star_state = [sm](const Cons& u, const Prim& w, double s) {
    const double factor = w.rho * (s - w.u) / (s - sm);
    Cons star;
    star.rho = factor;
    star.mx = factor * sm;
    star.my = factor * w.v;
    star.e = factor * (u.e / w.rho +
                       (sm - w.u) * (sm + w.p / (w.rho * (s - w.u))));
    return star;
  };

  if (sm >= 0.0) {
    const Cons star = star_state(left, wl, sl);
    return flux_x(left, wl) + (star - left) * sl;
  }
  const Cons star = star_state(right, wr, sr);
  return flux_x(right, wr) + (star - right) * sr;
}

Cons hllc_flux_x(const Cons& left, const Cons& right) noexcept {
  return hllc_flux_x(left, to_primitive(left), right, to_primitive(right));
}

Cons hll_flux_y(const Cons& lower, const Cons& upper) noexcept {
  // Rotate: y-momentum becomes the normal component.
  const Cons l{lower.rho, lower.my, lower.mx, lower.e};
  const Cons u{upper.rho, upper.my, upper.mx, upper.e};
  const Cons f = hll_flux_x(l, u);
  return {f.rho, f.my, f.mx, f.e};
}

double max_wave_speed(const Cons& c) noexcept {
  const Prim w = to_primitive(c);
  const double a = sound_speed(w);
  return std::max(std::abs(w.u), std::abs(w.v)) + a;
}

Prim post_shock_state(double mach, double rho1, double p1) noexcept {
  const double m2 = mach * mach;
  Prim post;
  post.p = p1 * (2.0 * kGamma * m2 - (kGamma - 1.0)) / (kGamma + 1.0);
  post.rho = rho1 * ((kGamma + 1.0) * m2) / ((kGamma - 1.0) * m2 + 2.0);
  const double c1 = std::sqrt(kGamma * p1 / rho1);
  post.u = mach * c1 * (1.0 - rho1 / post.rho);
  post.v = 0.0;
  return post;
}

}  // namespace alamr::amr
