
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/campaign.cpp" "src/amr/CMakeFiles/alamr_amr.dir/campaign.cpp.o" "gcc" "src/amr/CMakeFiles/alamr_amr.dir/campaign.cpp.o.d"
  "/root/repo/src/amr/euler.cpp" "src/amr/CMakeFiles/alamr_amr.dir/euler.cpp.o" "gcc" "src/amr/CMakeFiles/alamr_amr.dir/euler.cpp.o.d"
  "/root/repo/src/amr/geometry.cpp" "src/amr/CMakeFiles/alamr_amr.dir/geometry.cpp.o" "gcc" "src/amr/CMakeFiles/alamr_amr.dir/geometry.cpp.o.d"
  "/root/repo/src/amr/machine.cpp" "src/amr/CMakeFiles/alamr_amr.dir/machine.cpp.o" "gcc" "src/amr/CMakeFiles/alamr_amr.dir/machine.cpp.o.d"
  "/root/repo/src/amr/mesh.cpp" "src/amr/CMakeFiles/alamr_amr.dir/mesh.cpp.o" "gcc" "src/amr/CMakeFiles/alamr_amr.dir/mesh.cpp.o.d"
  "/root/repo/src/amr/patch.cpp" "src/amr/CMakeFiles/alamr_amr.dir/patch.cpp.o" "gcc" "src/amr/CMakeFiles/alamr_amr.dir/patch.cpp.o.d"
  "/root/repo/src/amr/problem.cpp" "src/amr/CMakeFiles/alamr_amr.dir/problem.cpp.o" "gcc" "src/amr/CMakeFiles/alamr_amr.dir/problem.cpp.o.d"
  "/root/repo/src/amr/render.cpp" "src/amr/CMakeFiles/alamr_amr.dir/render.cpp.o" "gcc" "src/amr/CMakeFiles/alamr_amr.dir/render.cpp.o.d"
  "/root/repo/src/amr/solver.cpp" "src/amr/CMakeFiles/alamr_amr.dir/solver.cpp.o" "gcc" "src/amr/CMakeFiles/alamr_amr.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/data/CMakeFiles/alamr_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
