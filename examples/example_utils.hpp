#pragma once

// Shared helpers for the example programs: dataset loading with a
// small-campaign fallback so every example runs out of the box, plus
// simple table printing.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>

#include "alamr/amr/campaign.hpp"
#include "alamr/core/trace.hpp"
#include "alamr/data/csv.hpp"

namespace alamr::examples {

/// `--trace <path>` wiring shared by the examples: enables the
/// observability layer (core/trace.hpp) when the flag is present and
/// returns the report path for finish_trace().
inline std::optional<std::string> trace_flag(int argc, char** argv) {
  return core::trace::parse_trace_flag(argc, argv);
}

/// Writes the aggregated trace report (JSON at `path`, CSV at
/// `path`.csv). No-op when --trace was not given.
inline void finish_trace(const std::optional<std::string>& path) {
  if (!path) return;
  core::trace::write_global_trace(*path);
  std::printf("\nTrace report written to %s (and %s.csv)\n", path->c_str(),
              path->c_str());
}

/// Loads the paper-scale dataset if it has been generated (see
/// examples/amr_campaign.cpp), else generates a reduced campaign on the
/// fly (about a minute) so the example is self-contained.
inline data::Dataset load_dataset() {
  const char* override_path = std::getenv("ALAMR_DATASET");
  const std::filesystem::path candidates[] = {
      override_path != nullptr ? std::filesystem::path(override_path)
                               : std::filesystem::path(),
      "data/amr_dataset.csv",
      "../data/amr_dataset.csv",
      "../../data/amr_dataset.csv",
  };
  for (const auto& path : candidates) {
    if (!path.empty() && std::filesystem::exists(path)) {
      std::printf("Loading dataset from %s\n", path.string().c_str());
      return data::read_csv(path);
    }
  }

  std::printf(
      "No cached dataset found - generating a reduced AMR campaign\n"
      "(run examples/amr_campaign to build and cache the full 600-job one).\n");
  amr::CampaignOptions options;
  options.mx_values = {8, 16};
  options.level_values = {2, 3, 4};
  options.unique_configs = 140;
  options.dataset_size = 160;
  options.maxrss_bug_threshold_seconds = 20.0;
  const auto records = amr::Campaign(options).run();
  return amr::Campaign::to_dataset(records, options.dataset_size);
}

inline void print_rule() {
  std::printf(
      "--------------------------------------------------------------------"
      "----------\n");
}

}  // namespace alamr::examples
