#include "alamr/core/simulator.hpp"

#include <algorithm>
#include <stdexcept>

#include "alamr/core/metrics.hpp"
#include "alamr/stats/descriptive.hpp"

namespace alamr::core {

namespace {

/// Gathers rows of a matrix into a new matrix.
linalg::Matrix gather_rows(const linalg::Matrix& x,
                           std::span<const std::size_t> rows) {
  linalg::Matrix out(rows.size(), x.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) out(r, c) = x(rows[r], c);
  }
  return out;
}

std::vector<double> gather(std::span<const double> values,
                           std::span<const std::size_t> rows) {
  std::vector<double> out(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) out[r] = values[rows[r]];
  return out;
}

/// Copy of `m` with column `col` removed (entries keep their bits; memory
/// round-trips do not perturb doubles).
linalg::Matrix erase_column(const linalg::Matrix& m, std::size_t col) {
  linalg::Matrix out(m.rows(), m.cols() - 1);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto src = m.row(i);
    const auto dst = out.row(i);
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(col),
              dst.begin());
    std::copy(src.begin() + static_cast<std::ptrdiff_t>(col + 1), src.end(),
              dst.begin() + static_cast<std::ptrdiff_t>(col));
  }
  return out;
}

/// Copy of `m` with `row` appended at the bottom.
linalg::Matrix append_row(const linalg::Matrix& m, std::span<const double> row) {
  linalg::Matrix out(m.rows() + 1, m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto src = m.row(i);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  std::copy(row.begin(), row.end(), out.row(m.rows()).begin());
  return out;
}

}  // namespace

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kActiveExhausted: return "active set exhausted";
    case StopReason::kIterationBudget: return "iteration budget reached";
    case StopReason::kNoSafeCandidates: return "no safe candidates remain";
    case StopReason::kStabilized: return "predictions stabilized";
  }
  return "unknown";
}

AlSimulator::AlSimulator(const data::Dataset& dataset, AlOptions options)
    : dataset_(dataset), options_(std::move(options)) {
  dataset_.validate();
  if (dataset_.size() < options_.n_test + options_.n_init + 1) {
    throw std::invalid_argument("AlSimulator: dataset too small for partition");
  }
  const linalg::Matrix transformed =
      data::apply_column_transforms(dataset_.x, options_.feature_transforms);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(transformed);
  x_scaled_ = scaler.transform(transformed);
  log_cost_ = data::log10_transform(dataset_.cost);
  log_mem_ = data::log10_transform(dataset_.memory);

  limit_log10_ = std::isnan(options_.memory_limit_log10)
                     ? paper_memory_limit_log10(dataset_)
                     : options_.memory_limit_log10;

  if (options_.trace) trace::set_enabled(true);
}

std::string AlSimulator::trajectory_fingerprint(
    std::string_view strategy_name, const data::Partition& partition) const {
  trace::Fingerprint fp;
  fp.add("alamr.trajectory.v1");
  fp.add(strategy_name);
  fp.add(static_cast<std::uint64_t>(dataset_.size()));
  fp.add(static_cast<std::uint64_t>(x_scaled_.cols()));
  fp.add(limit_log10_);
  fp.add(static_cast<std::uint64_t>(options_.n_test));
  fp.add(static_cast<std::uint64_t>(options_.n_init));
  fp.add(static_cast<std::uint64_t>(options_.max_iterations));
  fp.add(static_cast<std::uint64_t>(options_.feature_transforms.size()));
  for (const data::ColumnTransform t : options_.feature_transforms) {
    fp.add(static_cast<std::uint64_t>(t));
  }
  fp.add(options_.stopping.enabled);
  fp.add(options_.stopping.tolerance);
  fp.add(static_cast<std::uint64_t>(options_.stopping.patience));
  fp.add(static_cast<std::uint64_t>(options_.stopping.min_iterations));
  fp.add(static_cast<std::uint64_t>(options_.kernel));
  const auto add_gpr_options = [&fp](const gp::GprOptions& o) {
    fp.add(static_cast<std::uint64_t>(o.restarts));
    fp.add(o.normalize_y);
    fp.add(o.optimize);
    fp.add(static_cast<std::uint64_t>(o.max_opt_iterations));
    fp.add(o.initial_jitter);
    fp.add(o.max_jitter);
  };
  add_gpr_options(options_.initial_fit);
  add_gpr_options(options_.refit);
  fp.add(static_cast<std::uint64_t>(options_.rmse_stride));
  fp.add(options_.incremental_refit);
  fp.add(options_.incremental_cross);
  const auto add_rows = [&fp](std::span<const std::size_t> rows) {
    fp.add(static_cast<std::uint64_t>(rows.size()));
    for (const std::size_t row : rows) fp.add(static_cast<std::uint64_t>(row));
  };
  add_rows(partition.test);
  add_rows(partition.init);
  add_rows(partition.active);
  return fp.hex();
}

double AlSimulator::memory_limit_mb() const noexcept {
  return std::pow(10.0, limit_log10_);
}

double AlSimulator::paper_memory_limit_log10(const data::Dataset& dataset) {
  // The paper describes L_mem as "95% of the largest log-transformed
  // memory usage", but the VALUE it reports is the decisive anchor:
  // L_mem = 7.53 MB against a dataset whose median memory is 8.00 MB —
  // i.e. the limit sits just below the median and rules out roughly half
  // of the jobs (which is what makes the RGMA dynamics in their Fig. 4 so
  // pronounced). We reproduce that anchor with the median of the log10
  // memory responses; callers can always set an explicit limit through
  // AlOptions::memory_limit_log10.
  const std::vector<double> log_mem = data::log10_transform(dataset.memory);
  return stats::quantile(log_mem, 0.5);
}

std::unique_ptr<gp::Kernel> AlSimulator::make_kernel() const {
  switch (options_.kernel) {
    case KernelChoice::kRbf: return gp::make_paper_kernel();
    case KernelChoice::kRbfArd: return gp::make_ard_kernel(dataset_.dim());
    case KernelChoice::kMatern32:
      return gp::make_matern_kernel(gp::MaternKernel::Nu::kThreeHalves);
    case KernelChoice::kMatern52:
      return gp::make_matern_kernel(gp::MaternKernel::Nu::kFiveHalves);
  }
  throw std::logic_error("AlSimulator: unknown kernel choice");
}

TrajectoryResult AlSimulator::run(const Strategy& strategy,
                                  stats::Rng& rng) const {
  const data::Partition partition =
      data::make_partition(dataset_.size(), options_.n_test, options_.n_init, rng);
  return run_with_partition(strategy, partition, rng);
}

TrajectoryResult AlSimulator::run_with_partition(const Strategy& strategy,
                                                 const data::Partition& partition,
                                                 stats::Rng& rng) const {
  TrajectoryResult result;
  result.strategy_name = strategy.name();
  result.partition = partition;
  result.memory_limit_mb = memory_limit_mb();

  // Everything counted/timed on this thread lands in this trajectory's
  // collector (and the process-wide one); nested parallel_for sections run
  // their fan-out counters on this thread too, so per-trajectory reports
  // stay exact even inside run_batch.
  trace::TraceCollector collector;
  const trace::ScopedCollector trace_scope(collector);

  // Test set fixtures (original units for Eq. 10).
  const linalg::Matrix x_test = gather_rows(x_scaled_, partition.test);
  const std::vector<double> cost_test = gather(dataset_.cost, partition.test);
  const std::vector<double> mem_test = gather(dataset_.memory, partition.test);

  // Models, fitted on the Init partition with the thorough options.
  gp::GaussianProcessRegressor gpr_cost(make_kernel(), options_.initial_fit);
  gp::GaussianProcessRegressor gpr_mem(make_kernel(), options_.initial_fit);

  std::vector<std::size_t> learned(partition.init);  // Init + selected rows
  linalg::Matrix x_learned = gather_rows(x_scaled_, learned);
  std::vector<double> c_learned = gather(log_cost_, learned);
  std::vector<double> m_learned = gather(log_mem_, learned);
  {
    const trace::ScopedTimer timer("init");
    gpr_cost.fit(x_learned, c_learned, rng);
    gpr_mem.fit(x_learned, m_learned, rng);
  }
  gpr_cost.set_options(options_.refit);
  gpr_mem.set_options(options_.refit);

  // Incremental cross-covariance K(X_learned, X_active), one matrix per
  // model (the kernels' hyperparameters diverge). A matrix stays valid as
  // long as its model's hyperparameters have not moved since it was
  // built: acquisitions only erase the chosen column and append one row
  // for the new training point (one shared distance pass serves both
  // kernels). A refit that moves the hyperparameters invalidates that
  // model's matrix and the next predict rebuilds it — entries either way
  // carry exactly the bits kernel.cross(x_train, x_active) would produce.
  linalg::Matrix k_star_cost;
  linalg::Matrix k_star_mem;
  bool k_star_cost_valid = false;
  bool k_star_mem_valid = false;

  // Test predictions in log space are reused by both the RMSE metric and
  // the stabilizing-predictions stopping rule.
  std::vector<double> cost_mu_log;
  const auto test_rmse = [&](const gp::GaussianProcessRegressor& model,
                             std::span<const double> actual,
                             std::vector<double>* mu_log_out = nullptr) {
    std::vector<double> mu_log = model.predict_mean(x_test);
    const std::vector<double> mu = data::exp10_transform(mu_log);
    const double err = rmse(mu, actual);
    if (mu_log_out != nullptr) *mu_log_out = std::move(mu_log);
    return err;
  };
  {
    const trace::ScopedTimer timer("rmse");
    result.initial_rmse_cost = test_rmse(gpr_cost, cost_test, &cost_mu_log);
    result.initial_rmse_mem = test_rmse(gpr_mem, mem_test);
  }

  std::vector<double> previous_cost_mu_log = cost_mu_log;
  std::size_t stable_streak = 0;
  // Cost-weighted RMSE (Eq. 12): weight each test residual by the test
  // sample's actual cost.
  const auto weighted = [&](std::span<const double> mu_log) {
    return weighted_rmse(data::exp10_transform(mu_log), cost_test, cost_test);
  };
  double last_rmse_cost_weighted = weighted(cost_mu_log);

  std::vector<std::size_t> active(partition.active);
  double cc = 0.0;
  double cr = 0.0;
  double last_rmse_cost = result.initial_rmse_cost;
  double last_rmse_mem = result.initial_rmse_mem;

  const std::size_t budget = options_.max_iterations == 0
                                 ? active.size()
                                 : std::min(options_.max_iterations, active.size());
  result.iterations.reserve(budget);
  bool last_record_evaluated = true;

  for (std::size_t iter = 0; iter < budget; ++iter) {
    trace::count("sim.iterations");

    // Algorithm 1, lines 3-4: predict over remaining candidates.
    const linalg::Matrix x_active = gather_rows(x_scaled_, active);
    gp::Prediction pred_cost;
    gp::Prediction pred_mem;
    {
      const trace::ScopedTimer timer("predict");
      if (options_.incremental_cross) {
        const bool rebuild_cost = !k_star_cost_valid;
        const bool rebuild_mem = !k_star_mem_valid;
        if (rebuild_cost || rebuild_mem) {
          // One pairwise-distance pass shared by every kernel that needs
          // a rebuild (both, on the first iteration).
          gp::PairwiseDistances dist =
              gp::PairwiseDistances::cross(x_learned, x_active);
          if (rebuild_cost) {
            trace::count("sim.kstar_rebuild");
            gpr_cost.kernel().prepare_distances(dist);
            k_star_cost = gpr_cost.kernel().cross_cached(dist);
            k_star_cost_valid = true;
          }
          if (rebuild_mem) {
            trace::count("sim.kstar_rebuild");
            gpr_mem.kernel().prepare_distances(dist);
            k_star_mem = gpr_mem.kernel().cross_cached(dist);
            k_star_mem_valid = true;
          }
        }
        if (!rebuild_cost) trace::count("sim.kstar_reuse");
        if (!rebuild_mem) trace::count("sim.kstar_reuse");
        pred_cost = gpr_cost.predict_from_cross(k_star_cost, x_active);
        pred_mem = gpr_mem.predict_from_cross(k_star_mem, x_active);
      } else {
        pred_cost = gpr_cost.predict(x_active);
        pred_mem = gpr_mem.predict(x_active);
      }
    }

    const CandidateView view{x_active, pred_cost.mean, pred_cost.stddev,
                             pred_mem.mean, pred_mem.stddev};

    // Line 5: strategy decision.
    std::optional<std::size_t> pick;
    {
      const trace::ScopedTimer timer("select");
      pick = strategy.select(view, rng);
    }
    if (!pick) {
      result.early_stopped = true;
      result.stop_reason = StopReason::kNoSafeCandidates;
      break;
    }
    const std::size_t local = *pick;
    if (local >= active.size()) {
      throw std::logic_error("AlSimulator: strategy returned invalid index");
    }
    const std::size_t row = active[local];

    IterationRecord record;
    record.iteration = iter;
    record.dataset_row = row;
    record.candidates_before = active.size();
    {
      // Lines 6-9: reveal the sample's measurements and move it from
      // Active to Learned.
      const trace::ScopedTimer timer("reveal");
      record.actual_cost = dataset_.cost[row];
      record.actual_memory = dataset_.memory[row];
      record.predicted_cost_log10 = pred_cost.mean[local];
      record.predicted_cost_sigma = pred_cost.stddev[local];
      record.predicted_mem_log10 = pred_mem.mean[local];
      record.predicted_mem_sigma = pred_mem.stddev[local];

      cc += record.actual_cost;
      cr += individual_regret(record.actual_cost, record.actual_memory,
                              result.memory_limit_mb);
      record.cumulative_cost = cc;
      record.cumulative_regret = cr;

      learned.push_back(row);
      x_learned = append_row(x_learned, x_scaled_.row(row));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(local));
      // Drop the acquired candidate's column from the live cross
      // matrices; remaining entries keep their bits.
      if (k_star_cost_valid) k_star_cost = erase_column(k_star_cost, local);
      if (k_star_mem_valid) k_star_mem = erase_column(k_star_mem, local);
    }

    // Lines 10-11: warm-started refit of both models on Init + Learned.
    {
      const trace::ScopedTimer timer("refit");
      if (options_.incremental_refit) {
        // Same optimization, same rng stream, bit-identical posterior —
        // but the common converged-warm-start case avoids the O(n^2) gram
        // rebuild and O(n^3) refactor.
        const bool cost_kept =
            gpr_cost.fit_add_point(x_scaled_.row(row), log_cost_[row], rng);
        const bool mem_kept =
            gpr_mem.fit_add_point(x_scaled_.row(row), log_mem_[row], rng);
        if (k_star_cost_valid && !cost_kept) trace::count("sim.kstar_invalidate");
        if (k_star_mem_valid && !mem_kept) trace::count("sim.kstar_invalidate");
        k_star_cost_valid = k_star_cost_valid && cost_kept;
        k_star_mem_valid = k_star_mem_valid && mem_kept;
      } else {
        c_learned = gather(log_cost_, learned);
        m_learned = gather(log_mem_, learned);
        gpr_cost.fit(x_learned, c_learned, rng);
        gpr_mem.fit(x_learned, m_learned, rng);
        // fit() re-optimizes from scratch; assume the hyperparameters
        // moved and rebuild the cross matrices next iteration.
        k_star_cost_valid = false;
        k_star_mem_valid = false;
      }
      // Surviving cross matrices gain the acquired point's row: a 1 x m
      // kernel evaluation against the remaining candidates, with the
      // distance pass shared between the two kernels.
      if ((k_star_cost_valid || k_star_mem_valid) && !active.empty()) {
        linalg::Matrix x_new(1, x_scaled_.cols());
        {
          const auto src = x_scaled_.row(row);
          std::copy(src.begin(), src.end(), x_new.row(0).begin());
        }
        const linalg::Matrix x_active_next = gather_rows(x_scaled_, active);
        gp::PairwiseDistances dist =
            gp::PairwiseDistances::cross(x_new, x_active_next);
        if (k_star_cost_valid) {
          trace::count("sim.kstar_append");
          gpr_cost.kernel().prepare_distances(dist);
          const linalg::Matrix new_row = gpr_cost.kernel().cross_cached(dist);
          k_star_cost = append_row(k_star_cost, new_row.row(0));
        }
        if (k_star_mem_valid) {
          trace::count("sim.kstar_append");
          gpr_mem.kernel().prepare_distances(dist);
          const linalg::Matrix new_row = gpr_mem.kernel().cross_cached(dist);
          k_star_mem = append_row(k_star_mem, new_row.row(0));
        }
      }
    }

    // Metrics after this iteration (Eq. 10, non-log space). The final
    // planned iteration always evaluates so the trajectory never ends on
    // a carried-over value.
    const bool evaluate_now = options_.rmse_stride <= 1 ||
                              iter % options_.rmse_stride == 0 ||
                              iter + 1 == budget ||
                              active.empty() || options_.stopping.enabled;
    if (evaluate_now) {
      const trace::ScopedTimer timer("rmse");
      last_rmse_cost = test_rmse(gpr_cost, cost_test, &cost_mu_log);
      last_rmse_mem = test_rmse(gpr_mem, mem_test);
      last_rmse_cost_weighted = weighted(cost_mu_log);
    }
    last_record_evaluated = evaluate_now;
    record.rmse_cost = last_rmse_cost;
    record.rmse_mem = last_rmse_mem;
    record.rmse_cost_weighted = last_rmse_cost_weighted;

    result.iterations.push_back(record);

    // Stabilizing-predictions stopping rule (paper Sec. V-D).
    if (options_.stopping.enabled && evaluate_now) {
      double mean_abs_change = 0.0;
      for (std::size_t t = 0; t < cost_mu_log.size(); ++t) {
        mean_abs_change += std::abs(cost_mu_log[t] - previous_cost_mu_log[t]);
      }
      mean_abs_change /= static_cast<double>(cost_mu_log.size());
      previous_cost_mu_log = cost_mu_log;
      stable_streak =
          mean_abs_change < options_.stopping.tolerance ? stable_streak + 1 : 0;
      if (iter + 1 >= options_.stopping.min_iterations &&
          stable_streak >= options_.stopping.patience) {
        result.early_stopped = true;
        result.stop_reason = StopReason::kStabilized;
        break;
      }
    }
  }
  if (result.stop_reason != StopReason::kNoSafeCandidates &&
      result.stop_reason != StopReason::kStabilized) {
    result.stop_reason = active.empty() ? StopReason::kActiveExhausted
                                        : StopReason::kIterationBudget;
  }

  // An early stop between stride points would otherwise leave the last
  // record with a carried-over RMSE; the models have not changed since
  // that iteration's refit, so evaluating now yields exactly the value a
  // per-iteration evaluation would have recorded.
  if (!last_record_evaluated && !result.iterations.empty()) {
    const trace::ScopedTimer timer("rmse");
    IterationRecord& last = result.iterations.back();
    last.rmse_cost = test_rmse(gpr_cost, cost_test, &cost_mu_log);
    last.rmse_mem = test_rmse(gpr_mem, mem_test);
    last.rmse_cost_weighted = weighted(cost_mu_log);
  }

  if (trace::enabled()) result.trace = collector.report();
  result.trace.fingerprint =
      trajectory_fingerprint(result.strategy_name, partition);
  return result;
}

TrajectoryResult AlSimulator::run_batched(const Strategy& strategy,
                                          std::size_t batch_size,
                                          const data::Partition& partition,
                                          stats::Rng& rng) const {
  if (batch_size == 0) {
    throw std::invalid_argument("run_batched: batch_size must be >= 1");
  }

  TrajectoryResult result;
  result.strategy_name =
      strategy.name() + " (batch=" + std::to_string(batch_size) + ")";
  result.partition = partition;
  result.memory_limit_mb = memory_limit_mb();

  trace::TraceCollector collector;
  const trace::ScopedCollector trace_scope(collector);

  const linalg::Matrix x_test = gather_rows(x_scaled_, partition.test);
  const std::vector<double> cost_test = gather(dataset_.cost, partition.test);
  const std::vector<double> mem_test = gather(dataset_.memory, partition.test);

  gp::GaussianProcessRegressor gpr_cost(make_kernel(), options_.initial_fit);
  gp::GaussianProcessRegressor gpr_mem(make_kernel(), options_.initial_fit);

  std::vector<std::size_t> learned(partition.init);
  linalg::Matrix x_learned = gather_rows(x_scaled_, learned);
  std::vector<double> c_learned = gather(log_cost_, learned);
  std::vector<double> m_learned = gather(log_mem_, learned);
  {
    const trace::ScopedTimer timer("init");
    gpr_cost.fit(x_learned, c_learned, rng);
    gpr_mem.fit(x_learned, m_learned, rng);
  }
  gpr_cost.set_options(options_.refit);
  gpr_mem.set_options(options_.refit);

  const auto test_rmse = [&](const gp::GaussianProcessRegressor& model,
                             std::span<const double> actual) {
    const std::vector<double> mu = data::exp10_transform(model.predict_mean(x_test));
    return rmse(mu, actual);
  };
  {
    const trace::ScopedTimer timer("rmse");
    result.initial_rmse_cost = test_rmse(gpr_cost, cost_test);
    result.initial_rmse_mem = test_rmse(gpr_mem, mem_test);
  }

  std::vector<std::size_t> active(partition.active);
  double cc = 0.0;
  double cr = 0.0;
  const std::size_t budget = options_.max_iterations == 0
                                 ? active.size()
                                 : std::min(options_.max_iterations, active.size());
  std::size_t selected_total = 0;

  while (selected_total < budget && !active.empty()) {
    trace::count("sim.rounds");

    // One prediction pass per round; within the round the model is frozen
    // and already-picked candidates are simply excluded from the view.
    const linalg::Matrix x_active = gather_rows(x_scaled_, active);
    gp::Prediction pred_cost;
    gp::Prediction pred_mem;
    {
      const trace::ScopedTimer timer("predict");
      pred_cost = gpr_cost.predict(x_active);
      pred_mem = gpr_mem.predict(x_active);
    }

    std::vector<std::size_t> remaining(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) remaining[i] = i;

    std::vector<std::size_t> picked_locals;
    bool exhausted = false;
    const std::size_t round_quota =
        std::min(batch_size, budget - selected_total);
    {
      const trace::ScopedTimer timer("select");
      while (picked_locals.size() < round_quota && !remaining.empty()) {
        linalg::Matrix x_view(remaining.size(), x_scaled_.cols());
        std::vector<double> mu_c(remaining.size());
        std::vector<double> sd_c(remaining.size());
        std::vector<double> mu_m(remaining.size());
        std::vector<double> sd_m(remaining.size());
        for (std::size_t v = 0; v < remaining.size(); ++v) {
          const std::size_t local = remaining[v];
          for (std::size_t c = 0; c < x_scaled_.cols(); ++c) {
            x_view(v, c) = x_active(local, c);
          }
          mu_c[v] = pred_cost.mean[local];
          sd_c[v] = pred_cost.stddev[local];
          mu_m[v] = pred_mem.mean[local];
          sd_m[v] = pred_mem.stddev[local];
        }
        const CandidateView view{x_view, mu_c, sd_c, mu_m, sd_m};
        const std::optional<std::size_t> pick = strategy.select(view, rng);
        if (!pick) {
          exhausted = true;
          break;
        }
        picked_locals.push_back(remaining[*pick]);
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(*pick));
      }
    }
    if (picked_locals.empty()) {
      result.early_stopped = true;
      result.stop_reason = StopReason::kNoSafeCandidates;
      break;
    }

    // Reveal the whole batch, then retrain once.
    trace::count("sim.iterations", picked_locals.size());
    std::vector<IterationRecord> round_records;
    {
      const trace::ScopedTimer timer("reveal");
      for (const std::size_t local : picked_locals) {
        const std::size_t row = active[local];
        IterationRecord record;
        record.iteration = selected_total + round_records.size();
        record.dataset_row = row;
        record.candidates_before = active.size();
        record.actual_cost = dataset_.cost[row];
        record.actual_memory = dataset_.memory[row];
        record.predicted_cost_log10 = pred_cost.mean[local];
        record.predicted_cost_sigma = pred_cost.stddev[local];
        record.predicted_mem_log10 = pred_mem.mean[local];
        record.predicted_mem_sigma = pred_mem.stddev[local];
        cc += record.actual_cost;
        cr += individual_regret(record.actual_cost, record.actual_memory,
                                result.memory_limit_mb);
        record.cumulative_cost = cc;
        record.cumulative_regret = cr;
        learned.push_back(row);
        round_records.push_back(record);
      }
      // Remove picked rows from Active (descending local order keeps
      // indices valid).
      std::vector<std::size_t> sorted_locals(picked_locals);
      std::sort(sorted_locals.rbegin(), sorted_locals.rend());
      for (const std::size_t local : sorted_locals) {
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(local));
      }
      selected_total += picked_locals.size();
    }

    {
      const trace::ScopedTimer timer("refit");
      x_learned = gather_rows(x_scaled_, learned);
      c_learned = gather(log_cost_, learned);
      m_learned = gather(log_mem_, learned);
      gpr_cost.fit(x_learned, c_learned, rng);
      gpr_mem.fit(x_learned, m_learned, rng);
    }

    double rmse_cost_now = 0.0;
    double rmse_mem_now = 0.0;
    double rmse_weighted_now = 0.0;
    {
      const trace::ScopedTimer timer("rmse");
      const std::vector<double> round_mu =
          data::exp10_transform(gpr_cost.predict_mean(x_test));
      rmse_cost_now = rmse(round_mu, cost_test);
      rmse_mem_now = test_rmse(gpr_mem, mem_test);
      rmse_weighted_now = weighted_rmse(round_mu, cost_test, cost_test);
    }
    for (IterationRecord& record : round_records) {
      record.rmse_cost = rmse_cost_now;
      record.rmse_mem = rmse_mem_now;
      record.rmse_cost_weighted = rmse_weighted_now;
      result.iterations.push_back(record);
    }
    if (exhausted) {
      result.early_stopped = true;
      result.stop_reason = StopReason::kNoSafeCandidates;
      break;
    }
  }
  if (result.stop_reason != StopReason::kNoSafeCandidates) {
    result.stop_reason = active.empty() ? StopReason::kActiveExhausted
                                        : StopReason::kIterationBudget;
  }

  if (trace::enabled()) result.trace = collector.report();
  result.trace.fingerprint =
      trajectory_fingerprint(result.strategy_name, partition);
  return result;
}

}  // namespace alamr::core
