// Dataset generation: runs the AMR shock-bubble campaign (the substitute
// for the paper's 1K+ ForestClaw jobs on NERSC Edison) and caches the
// 600-row dataset as CSV for the benches and other examples.
//
// Usage:
//   amr_campaign            # full paper-scale campaign (several minutes)
//   amr_campaign --small    # reduced grid, finishes in ~a minute
//   amr_campaign --out X    # write the CSV to a custom path

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "alamr/amr/campaign.hpp"
#include "alamr/data/csv.hpp"
#include "alamr/stats/descriptive.hpp"

namespace {

void print_summary_row(const char* label, std::span<const double> values) {
  const alamr::stats::Summary s = alamr::stats::summarize(values);
  std::printf("%-34s %10.3f %10.3f %10.3f %10.3f\n", label, s.min, s.median,
              s.mean, s.max);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alamr;

  amr::CampaignOptions options;
  std::filesystem::path out = "data/amr_dataset.csv";
  bool out_overridden = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--small") == 0) {
      // Keep the reduced campaign from clobbering the full cached dataset.
      if (!out_overridden) out = "data/amr_dataset_small.csv";
      options.mx_values = {8, 16};
      options.level_values = {2, 3, 4};
      options.unique_configs = 140;
      options.dataset_size = 160;
      options.maxrss_bug_threshold_seconds = 20.0;
    } else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
      out = argv[++a];
      out_overridden = true;
    } else {
      std::fprintf(stderr, "usage: %s [--small] [--out path.csv]\n", argv[0]);
      return 1;
    }
  }

  amr::Campaign campaign(options);
  std::printf("Grid: %zu parameter combinations; sampling %zu unique configs\n",
              campaign.full_grid().size(), options.unique_configs);

  const auto start = std::chrono::steady_clock::now();
  std::size_t last_reported = 0;
  const auto records = campaign.run([&](std::size_t done, std::size_t target) {
    if (done - last_reported >= 50) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      std::printf("  [%6.1fs] %zu jobs executed (target %zu usable)\n", elapsed,
                  done, target);
      std::fflush(stdout);
      last_reported = done;
    }
  });

  std::size_t bugged = 0;
  for (const auto& record : records) {
    if (record.maxrss_missing) ++bugged;
  }
  const data::Dataset dataset =
      amr::Campaign::to_dataset(records, options.dataset_size);

  std::printf(
      "\nExecuted %zu jobs; %zu hit the SLURM MaxRSS=0 accounting quirk;\n"
      "selected %zu usable rows (cf. the paper's 1K jobs -> 612 -> 600).\n\n",
      records.size(), bugged, dataset.size());

  // Table I equivalent.
  std::printf("%-34s %10s %10s %10s %10s\n", "", "min", "median", "mean", "max");
  std::vector<double> column(dataset.size());
  for (std::size_t j = 0; j < dataset.dim(); ++j) {
    for (std::size_t i = 0; i < dataset.size(); ++i) column[i] = dataset.x(i, j);
    print_summary_row(dataset.feature_names[j].c_str(), column);
  }
  print_summary_row("wall clock time, seconds", dataset.wallclock);
  print_summary_row("cost, node-hours", dataset.cost);
  print_summary_row("memory, MB", dataset.memory);

  std::filesystem::create_directories(out.parent_path().empty()
                                          ? std::filesystem::path(".")
                                          : out.parent_path());
  data::write_csv(dataset, out);
  std::printf("\nWrote %s\n", out.string().c_str());
  return 0;
}
