// §P7 backend-scaling experiment (EXPERIMENTS.md §P7): exact vs
// subset-of-data vs local-experts PosteriorBackends on fig4-style RGMA
// trajectories as the candidate pool grows from 10^3 to 10^5 points.
//
// The initial design scales with the dataset (n_init = N/100, clipped to
// [50, 1000]) so the exact backend's O(n^3) refits and O(n^2 M) candidate
// sweeps both grow with N — the regime the approximate backends exist
// for. At the largest size the exact backend is not run (hours); its cost
// is extrapolated from the measured sizes via the dominant per-iteration
// predict term, t ∝ n_avg^2 * M, and the acceptance claim is that each
// approximate backend completes the 10^5-pool trajectory >= 10x faster
// than that extrapolation.
//
// Output: a human-readable table on stderr and a JSON document on stdout
// (merged into BENCH_PR7.json by scripts/bench.sh record_backend_scaling).
//
// Knobs: ALAMR_QUICK=1 drops the 10^5 row (smoke runs);
//        ALAMR_P7_ITERATIONS overrides the 20-iteration horizon.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "alamr/core/export.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/core/strategies.hpp"
#include "alamr/data/partition.hpp"
#include "alamr/gp/backend.hpp"
#include "synthetic_dataset.hpp"

namespace {

struct RunResult {
  std::string backend;
  double wallclock_s = 0.0;
  std::size_t completed = 0;
  double cc = 0.0;
  double cr = 0.0;
  double rmse_cost = 0.0;
  double rmse_mem = 0.0;
};

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
}

std::size_t init_design(std::size_t n) {
  const std::size_t scaled = n / 100;
  return scaled < 50 ? 50 : (scaled > 1000 ? 1000 : scaled);
}

alamr::gp::BackendOptions backend_config(const std::string& name,
                                         std::size_t n_init) {
  alamr::gp::BackendOptions options;
  if (name == "subset_of_data") {
    options.kind = alamr::gp::BackendKind::kSubsetOfData;
    options.inducing_points = 128;
  } else if (name == "local_experts") {
    options.kind = alamr::gp::BackendKind::kLocalExperts;
    // Sized so every expert holds enough of the initial design to own a
    // model from iteration 0 (RGMA needs a finite posterior to find any
    // safe candidate).
    const std::size_t experts = n_init / 25;
    options.experts = experts < 2 ? 2 : (experts > 8 ? 8 : experts);
    options.min_expert_size = 5;
  }
  return options;
}

RunResult run_one(const alamr::data::Dataset& dataset,
                  const std::string& backend, std::size_t iterations) {
  namespace core = alamr::core;
  const std::size_t n_init = init_design(dataset.size());

  core::AlOptions options;
  options.n_test = 200;
  options.n_init = n_init;
  options.max_iterations = iterations;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 40;
  options.refit.restarts = 0;
  options.refit.max_opt_iterations = 4;
  options.backend = backend_config(backend, n_init);

  const core::AlSimulator simulator(dataset, options);
  const core::Rgma rgma(simulator.memory_limit_log10());

  alamr::stats::Rng partition_rng(11);
  const alamr::data::Partition partition = alamr::data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  alamr::stats::Rng rng(2024);
  const auto start = std::chrono::steady_clock::now();
  const core::TrajectoryResult result =
      simulator.run_with_partition(rgma, partition, rng);
  const auto stop = std::chrono::steady_clock::now();

  RunResult out;
  out.backend = backend;
  out.wallclock_s = std::chrono::duration<double>(stop - start).count();
  out.completed = result.iterations.size();
  if (!result.iterations.empty()) {
    const core::IterationRecord& last = result.iterations.back();
    out.cc = last.cumulative_cost;
    out.cr = last.cumulative_regret;
    out.rmse_cost = last.rmse_cost;
    out.rmse_mem = last.rmse_mem;
  }
  return out;
}

/// Dominant-term weight of one exact trajectory: per-iteration candidate
/// sweep is O(n^2 M) with n growing from n_init; sum n_t^2 over the
/// horizon times the pool size.
double exact_weight(std::size_t n, std::size_t iterations) {
  const double n_init = static_cast<double>(init_design(n));
  const double pool = static_cast<double>(n) - 200.0 - n_init;
  double sum_n2 = 0.0;
  for (std::size_t t = 0; t < iterations; ++t) {
    const double nt = n_init + static_cast<double>(t);
    sum_n2 += nt * nt;
  }
  return sum_n2 * pool;
}

}  // namespace

int main() {
  const bool quick = []() {
    const char* env = std::getenv("ALAMR_QUICK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  const std::size_t iterations = env_size_t("ALAMR_P7_ITERATIONS", 20);

  std::vector<std::size_t> sizes = {1000, 10000};
  if (!quick) sizes.push_back(100000);
  // Exact runs only where its O(n^2 M) sweeps stay in seconds; beyond,
  // its cost is extrapolated from the largest measured size.
  const std::size_t exact_cap = 10000;

  std::fprintf(stderr,
               "# §P7 backend scaling — fig4-style RGMA, %zu iterations\n"
               "# %8s %14s %10s %12s %10s %10s %10s\n",
               iterations, "N", "backend", "wall (s)", "iters", "CC",
               "CR", "RMSE(c)");

  std::string json = "{\n  \"statistic\": \"end-to-end trajectory seconds, "
                     "one run\",\n  \"iterations\": " +
                     std::to_string(iterations) + ",\n  \"sizes\": [\n";
  double exact_at_cap = 0.0;
  bool first_size = true;
  for (const std::size_t n : sizes) {
    const alamr::data::Dataset dataset =
        alamr::testing::synthetic_amr_dataset(n, 7000 + n);
    std::vector<RunResult> rows;
    for (const char* backend : {"exact", "subset_of_data", "local_experts"}) {
      if (std::string(backend) == "exact" && n > exact_cap) continue;
      rows.push_back(run_one(dataset, backend, iterations));
      const RunResult& r = rows.back();
      std::fprintf(stderr, "  %8zu %14s %10.2f %12zu %10.3f %10.3f %10.4f\n",
                   n, r.backend.c_str(), r.wallclock_s, r.completed, r.cc,
                   r.cr, r.rmse_cost);
      if (std::string(backend) == "exact" && n == exact_cap)
        exact_at_cap = r.wallclock_s;
    }

    if (!first_size) json += ",\n";
    first_size = false;
    json += "    {\"n\": " + std::to_string(n) +
            ", \"n_init\": " + std::to_string(init_design(n)) +
            ", \"backends\": {";
    bool first_row = true;
    for (const RunResult& r : rows) {
      if (!first_row) json += ", ";
      first_row = false;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "\"%s\": {\"wallclock_s\": %.3f, \"iterations\": %zu, "
                    "\"cc\": %.4f, \"cr\": %.4f, \"rmse_cost\": %.5f, "
                    "\"rmse_mem\": %.5f}",
                    r.backend.c_str(), r.wallclock_s, r.completed, r.cc,
                    r.cr, r.rmse_cost, r.rmse_mem);
      json += buf;
    }
    json += "}";

    if (n > exact_cap && exact_at_cap > 0.0) {
      const double scale =
          exact_weight(n, iterations) / exact_weight(exact_cap, iterations);
      const double extrapolated = exact_at_cap * scale;
      std::fprintf(stderr,
                   "  %8zu %14s %10.0f %12s  (= %.1f s at N=%zu x %.0f "
                   "dominant-term scale)\n",
                   n, "exact(extrap)", extrapolated, "-", exact_at_cap,
                   exact_cap, scale);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    ", \"exact_extrapolated_s\": %.1f", extrapolated);
      json += buf;
      for (const RunResult& r : rows) {
        if (r.backend == "exact") continue;
        const double speedup = extrapolated / r.wallclock_s;
        std::fprintf(stderr, "  %8zu %14s %9.0fx vs extrapolated exact\n",
                     n, r.backend.c_str(), speedup);
        std::snprintf(buf, sizeof(buf),
                      ", \"%s_speedup_vs_extrapolated\": %.1f",
                      r.backend.c_str(), speedup);
        json += buf;
        if (speedup < 10.0) {
          std::fprintf(stderr,
                       "FAILED: %s at N=%zu is only %.1fx faster than the "
                       "extrapolated exact cost (acceptance floor: 10x)\n",
                       r.backend.c_str(), n, speedup);
          return 1;
        }
      }
    }
    json += "}";
  }
  json += "\n  ]\n}\n";
  std::fputs(json.c_str(), stdout);
  return 0;
}
