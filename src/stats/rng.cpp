#include "alamr/stats/rng.hpp"

#include <cmath>
#include <numeric>

namespace alamr::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 seeder(seed);
  for (auto& word : state_) word = seeder.next();
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's method: multiply-shift with rejection of the biased region.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

Rng Rng::split() noexcept {
  // Deriving the child from fresh output keeps the streams decorrelated
  // well enough for simulation purposes (each child reseeds via SplitMix64).
  return Rng(next());
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  shuffle(std::span<std::size_t>(perm));
  return perm;
}

}  // namespace alamr::stats
