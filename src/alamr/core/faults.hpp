#pragma once

// Deterministic, seeded fault injection for the AL engine (the "chaos"
// counterpart of trace.hpp): named injection sites threaded through
// linalg -> opt -> gp -> core let tests and the scripts/check.sh `faults`
// leg exercise the failure/recovery paths — Cholesky non-PSD retries and
// exhaustion, optimizer divergence, corrupted acquisition labels, and
// crashed/timed-out acquisitions — on schedules that are reproducible
// bit-for-bit given (plan, seed).
//
// Cost model: injection is compiled in but DISARMED by default. Every
// site is one `faults::fire(Site)` call whose disarmed path is a
// thread-local pointer load plus one (cached) global pointer load — no
// locks, no clock reads, and no floating-point effects, so disarmed runs
// are byte-for-byte identical to a build without the calls (the golden
// trajectory suite pins this down).
//
// Determinism contract: whether hit number k at a site fires is a pure
// function of (plan seed, site, k) — a counter-based SplitMix64 hash, not
// a stateful stream — so schedules do not depend on what other sites do.
// Hit counters live in a FaultInjector instance. The AL simulator installs
// a fresh injector per trajectory (thread-locally, like
// trace::ScopedCollector), so batch trajectories see identical schedules
// regardless of thread count or scheduling. Sites reached from pool
// workers (e.g. LML probes inside parallel multistart) only consult the
// injector when they run on the installing thread; within run_batch and
// under ALAMR_THREADS=1 all nested work is inline, so every consultation
// is deterministic there.
//
// Arming:
//  - explicitly: AlOptions::failures.plan, or a ScopedFaultInjector;
//  - globally: the ALAMR_FAULT_PLAN environment variable (parsed once).
//    Simulator trajectories instantiate the env plan per trajectory; code
//    outside a trajectory (bare GPR fits, linalg calls) consults a shared
//    process-wide injector whose counters are atomic (deterministic for
//    serial callers, best-effort under concurrency).
//
// Like parallel.hpp/trace.hpp this header is standalone (standard library
// only) and fully inline, so the lower layers (linalg, opt, gp) can
// inject without linking the core module's library. Only the CLI helper
// and the human-readable plan description live in src/core/faults.cpp.

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace alamr::core::faults {

/// Named injection sites. Keep detail::kSiteNames in sync.
enum class Site : std::size_t {
  kCholeskyNonPsd,   // "cholesky.non_psd": a factorization attempt fails
  kOptDiverge,       // "opt.diverge": hyperparameter search diverges
  kDataNanRow,       // "data.nan_row": acquired labels come back NaN
  kAcquireOom,       // "acquire.oom": acquisition crashes over the limit
  kAcquireTimeout,   // "acquire.timeout": acquisition never finishes
  // New sites append at the end: the schedule hash salts by site index,
  // so inserting in the middle would silently reshuffle every existing
  // plan's fire pattern.
  kIoTornWrite,      // "io.torn_write": a checkpoint write is cut short
  kIoPartialRead,    // "io.partial_read": a checkpoint read is cut short
};
inline constexpr std::size_t kSiteCount = 7;

namespace detail {
inline constexpr std::array<std::string_view, kSiteCount> kSiteNames{
    "cholesky.non_psd", "opt.diverge", "data.nan_row", "acquire.oom",
    "acquire.timeout", "io.torn_write", "io.partial_read"};
}  // namespace detail

inline std::string_view site_name(Site site) noexcept {
  return detail::kSiteNames[static_cast<std::size_t>(site)];
}

inline std::optional<Site> parse_site(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (detail::kSiteNames[i] == name) return static_cast<Site>(i);
  }
  return std::nullopt;
}

/// When (which 0-based hit numbers) one site fires. `hits` lists explicit
/// occurrences; independently, every hit fires with `probability` (a
/// counter-hashed Bernoulli draw, see schedule_fires). `max_fires` caps
/// the total across both mechanisms.
struct SiteSchedule {
  std::vector<std::uint64_t> hits;
  double probability = 0.0;
  std::uint64_t max_fires = ~std::uint64_t{0};

  bool inert() const noexcept { return hits.empty() && probability <= 0.0; }
};

namespace detail {

inline std::uint64_t parse_u64(std::string_view text, const char* what) {
  if (text.empty()) {
    throw std::invalid_argument(std::string("FaultPlan: empty ") + what);
  }
  // strtoull silently accepts leading whitespace and sign characters
  // ("-1" wraps to 2^64-1); require pure digits before converting.
  if (text.find_first_not_of("0123456789") != std::string_view::npos) {
    throw std::invalid_argument("FaultPlan: bad " + std::string(what) + " '" +
                                std::string(text) + "'");
  }
  errno = 0;
  char* end = nullptr;
  const std::string owned(text);
  const unsigned long long v = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    throw std::invalid_argument("FaultPlan: bad " + std::string(what) + " '" +
                                owned + "'");
  }
  return static_cast<std::uint64_t>(v);
}

inline double parse_probability(std::string_view text) {
  // strtod accepts leading whitespace, signs, and parses the empty string
  // to 0.0 ("p=" would silently become p=0); require the token to start
  // with a digit or '.' so every accepted spelling is an explicit number.
  if (text.empty() || (text.front() != '.' &&
                       (text.front() < '0' || text.front() > '9'))) {
    throw std::invalid_argument(
        "FaultPlan: probability must be in [0, 1], got '" + std::string(text) +
        "'");
  }
  errno = 0;
  char* end = nullptr;
  const std::string owned(text);
  const double v = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size() || !(v >= 0.0) ||
      !(v <= 1.0)) {
    throw std::invalid_argument(
        "FaultPlan: probability must be in [0, 1], got '" + owned + "'");
  }
  return v;
}

inline std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      parts.push_back(text.substr(begin));
      break;
    }
    parts.push_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

/// SplitMix64 finalizer — the counter-based hash behind probability
/// schedules (duplicated from stats to keep this header dependency-free).
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace detail

/// A full injection plan: one schedule per site plus the hash seed.
/// Value-semantic and cheap to copy; an empty plan can never fire.
class FaultPlan {
 public:
  SiteSchedule& at(Site site) noexcept {
    return sites_[static_cast<std::size_t>(site)];
  }
  const SiteSchedule& at(Site site) const noexcept {
    return sites_[static_cast<std::size_t>(site)];
  }

  void set_seed(std::uint64_t seed) noexcept { seed_ = seed; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// True when no site can ever fire (the disarmed state).
  bool empty() const noexcept {
    for (const SiteSchedule& s : sites_) {
      if (!s.inert()) return false;
    }
    return true;
  }

  /// Parses the spec grammar used by ALAMR_FAULT_PLAN and --fault-plan:
  ///   spec    := segment (';' segment)*
  ///   segment := "seed=" uint64
  ///            | site ':' option (',' option)*
  ///   option  := "p=" double | "hits=" uint64 ('|' uint64)* | "max=" uint64
  /// e.g. "seed=7;acquire.oom:p=0.05;opt.diverge:hits=3|9;cholesky.non_psd:p=1,max=2"
  /// Throws std::invalid_argument on malformed input.
  static FaultPlan parse(std::string_view spec) {
    FaultPlan plan;
    if (spec.empty()) return plan;  // the canonical disarmed spelling
    bool seed_seen = false;
    std::array<bool, kSiteCount> site_seen{};
    for (const std::string_view segment : detail::split(spec, ';')) {
      if (segment.empty()) {
        // "a;;b" or a trailing ';' is a typo, not an empty schedule —
        // silently skipping it would mask a truncated plan.
        throw std::invalid_argument("FaultPlan: empty segment in '" +
                                    std::string(spec) + "'");
      }
      if (segment.starts_with("seed=")) {
        if (seed_seen) {
          throw std::invalid_argument("FaultPlan: duplicate segment '" +
                                      std::string(segment) + "'");
        }
        seed_seen = true;
        plan.set_seed(detail::parse_u64(segment.substr(5), "seed"));
        continue;
      }
      const std::size_t colon = segment.find(':');
      if (colon == std::string_view::npos) {
        throw std::invalid_argument("FaultPlan: segment '" +
                                    std::string(segment) +
                                    "' is not seed=N or site:options");
      }
      const std::optional<Site> site = parse_site(segment.substr(0, colon));
      if (!site) {
        throw std::invalid_argument("FaultPlan: unknown site '" +
                                    std::string(segment.substr(0, colon)) +
                                    "'");
      }
      if (site_seen[static_cast<std::size_t>(*site)]) {
        // Two segments for one site would silently merge (last p wins,
        // hit lists concatenate) — reject so the loser is visible.
        throw std::invalid_argument("FaultPlan: duplicate site '" +
                                    std::string(segment.substr(0, colon)) +
                                    "'");
      }
      site_seen[static_cast<std::size_t>(*site)] = true;
      SiteSchedule& schedule = plan.at(*site);
      bool p_seen = false, hits_seen = false, max_seen = false;
      for (const std::string_view option :
           detail::split(segment.substr(colon + 1), ',')) {
        if (option.starts_with("p=")) {
          if (p_seen) {
            throw std::invalid_argument("FaultPlan: duplicate option '" +
                                        std::string(option) + "'");
          }
          p_seen = true;
          schedule.probability = detail::parse_probability(option.substr(2));
        } else if (option.starts_with("hits=")) {
          if (hits_seen) {
            throw std::invalid_argument("FaultPlan: duplicate option '" +
                                        std::string(option) + "'");
          }
          hits_seen = true;
          for (const std::string_view h : detail::split(option.substr(5), '|')) {
            schedule.hits.push_back(detail::parse_u64(h, "hit index"));
          }
          std::sort(schedule.hits.begin(), schedule.hits.end());
        } else if (option.starts_with("max=")) {
          if (max_seen) {
            throw std::invalid_argument("FaultPlan: duplicate option '" +
                                        std::string(option) + "'");
          }
          max_seen = true;
          schedule.max_fires = detail::parse_u64(option.substr(4), "max fires");
        } else {
          throw std::invalid_argument("FaultPlan: unknown option '" +
                                      std::string(option) + "'");
        }
      }
    }
    return plan;
  }

  /// Canonical spec string; parse(to_string()) reproduces the plan. Used
  /// by checkpoints to refuse resuming under a different plan.
  std::string to_string() const {
    std::ostringstream os;
    os << "seed=" << seed_;
    for (std::size_t i = 0; i < kSiteCount; ++i) {
      const SiteSchedule& s = sites_[i];
      if (s.inert() && s.max_fires == ~std::uint64_t{0}) continue;
      os << ';' << detail::kSiteNames[i] << ':';
      bool first = true;
      if (s.probability > 0.0) {
        os.precision(17);
        os << "p=" << s.probability;
        first = false;
      }
      if (!s.hits.empty()) {
        os << (first ? "" : ",") << "hits=";
        for (std::size_t h = 0; h < s.hits.size(); ++h) {
          os << (h == 0 ? "" : "|") << s.hits[h];
        }
        first = false;
      }
      if (s.max_fires != ~std::uint64_t{0}) {
        os << (first ? "" : ",") << "max=" << s.max_fires;
      }
    }
    return os.str();
  }

 private:
  std::array<SiteSchedule, kSiteCount> sites_{};
  std::uint64_t seed_ = 0;
};

/// Decides, deterministically, whether hit number `hit` at `site` fires
/// under `plan` — a pure function, shared by the per-trajectory and the
/// process-wide injectors.
inline bool schedule_fires(const FaultPlan& plan, Site site,
                           std::uint64_t hit) noexcept {
  const SiteSchedule& s = plan.at(site);
  for (const std::uint64_t h : s.hits) {
    if (h == hit) return true;
  }
  if (s.probability > 0.0) {
    const std::uint64_t h = detail::mix64(
        plan.seed() ^
        detail::mix64((static_cast<std::uint64_t>(site) + 1) *
                      0x9e3779b97f4a7c15ULL) ^
        detail::mix64(hit + 0x2545f4914f6cdd1dULL));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < s.probability) return true;
  }
  return false;
}

/// Live injector: a plan plus per-site hit/fire counters. One instance per
/// trajectory (installed via ScopedFaultInjector); counters make the k-th
/// consultation of a site identifiable, which is what the schedules key on.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  bool should_fire(Site site) noexcept {
    const std::size_t i = static_cast<std::size_t>(site);
    const std::uint64_t hit = hits_[i]++;
    if (fires_[i] >= plan_.at(site).max_fires) return false;
    if (!schedule_fires(plan_, site, hit)) return false;
    ++fires_[i];
    return true;
  }

  const FaultPlan& plan() const noexcept { return plan_; }
  std::uint64_t hits(Site site) const noexcept {
    return hits_[static_cast<std::size_t>(site)];
  }
  std::uint64_t fires(Site site) const noexcept {
    return fires_[static_cast<std::size_t>(site)];
  }
  std::span<const std::uint64_t, kSiteCount> hit_counters() const noexcept {
    return hits_;
  }
  std::span<const std::uint64_t, kSiteCount> fire_counters() const noexcept {
    return fires_;
  }

  /// Checkpoint support: a resumed trajectory restores the counters so the
  /// continuation consults the schedule at the same hit numbers the
  /// uninterrupted run would have.
  void restore_counters(std::span<const std::uint64_t> hits,
                        std::span<const std::uint64_t> fires) noexcept {
    for (std::size_t i = 0; i < kSiteCount && i < hits.size(); ++i) {
      hits_[i] = hits[i];
    }
    for (std::size_t i = 0; i < kSiteCount && i < fires.size(); ++i) {
      fires_[i] = fires[i];
    }
  }

 private:
  FaultPlan plan_;
  std::array<std::uint64_t, kSiteCount> hits_{};
  std::array<std::uint64_t, kSiteCount> fires_{};
};

/// Process-wide injector for code running outside any trajectory while
/// ALAMR_FAULT_PLAN is set. Counters are atomic so concurrent callers do
/// not race; ordering under concurrency is best-effort by design.
class SharedFaultInjector {
 public:
  explicit SharedFaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  bool should_fire(Site site) noexcept {
    const std::size_t i = static_cast<std::size_t>(site);
    const std::uint64_t hit = hits_[i].fetch_add(1, std::memory_order_relaxed);
    if (fires_[i].load(std::memory_order_relaxed) >= plan_.at(site).max_fires) {
      return false;
    }
    if (!schedule_fires(plan_, site, hit)) return false;
    fires_[i].fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kSiteCount> hits_{};
  std::array<std::atomic<std::uint64_t>, kSiteCount> fires_{};
};

namespace detail {

inline thread_local FaultInjector* t_injector = nullptr;

/// Parsed once from ALAMR_FAULT_PLAN; intentionally leaked so injection
/// stays valid during static destruction. A malformed env spec fails fast
/// with a clear message rather than silently running without faults.
inline SharedFaultInjector* env_injector() noexcept {
  static SharedFaultInjector* injector = []() -> SharedFaultInjector* {
    const char* env = std::getenv("ALAMR_FAULT_PLAN");
    if (env == nullptr || env[0] == '\0') return nullptr;
    FaultPlan plan = FaultPlan::parse(env);
    if (plan.empty()) return nullptr;
    return new SharedFaultInjector(std::move(plan));
  }();
  return injector;
}

}  // namespace detail

/// The plan ALAMR_FAULT_PLAN carries, if any — simulator trajectories
/// instantiate it per trajectory so env-driven schedules are deterministic
/// per trajectory, like explicit plans.
inline const FaultPlan* env_plan() noexcept {
  SharedFaultInjector* shared = detail::env_injector();
  return shared == nullptr ? nullptr : &shared->plan();
}

/// The ONE call every injection site makes. Consults this thread's
/// injector when one is installed, else the process-wide env injector.
/// Disarmed cost: a thread-local load and a cached-pointer load.
inline bool fire(Site site) noexcept {
  if (FaultInjector* local = detail::t_injector) {
    return local->should_fire(site);
  }
  if (SharedFaultInjector* shared = detail::env_injector()) {
    return shared->should_fire(site);
  }
  return false;
}

/// True when any injector (thread-local or env) is reachable from this
/// thread — i.e. fire() could return true.
inline bool armed() noexcept {
  return detail::t_injector != nullptr || detail::env_injector() != nullptr;
}

/// The injector installed on this thread (nullptr outside a scope).
inline FaultInjector* current_injector() noexcept { return detail::t_injector; }

/// Installs `injector` as this thread's fault source for the current
/// scope. Scopes nest; the previous injector is restored on destruction.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector& injector) noexcept
      : previous_(detail::t_injector) {
    detail::t_injector = &injector;
  }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;
  ~ScopedFaultInjector() { detail::t_injector = previous_; }

 private:
  FaultInjector* previous_;
};

// --- Core-side conveniences (defined in src/core/faults.cpp; callers
// --- link alamr::core) ----------------------------------------------------

/// CLI helper shared by benches/examples: scans argv for "--fault-plan
/// <spec>" or "--fault-plan=<spec>" and returns the parsed plan. Does NOT
/// install anything; callers put the plan into AlOptions::failures.
std::optional<FaultPlan> parse_fault_flag(int argc, char** argv);

/// Multi-line human-readable summary of a plan, for bench headers.
std::string describe(const FaultPlan& plan);

}  // namespace alamr::core::faults
