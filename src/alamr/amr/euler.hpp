#pragma once

// 2-D compressible Euler equations: conserved variables, primitive
// conversions, and an HLL approximate Riemann solver.
//
// This is the physics inside the AMR substrate that replaces the paper's
// ForestClaw shock-bubble runs. First-order Godunov with HLL is the
// simplest scheme that (a) resolves the shock and the bubble interface
// sharply enough to drive realistic refinement patterns and (b) needs only
// one ghost-cell layer, which keeps the coarse-fine interpolation honest.

#include <array>

namespace alamr::amr {

/// Ratio of specific heats (diatomic gas / air).
inline constexpr double kGamma = 1.4;

/// Conserved state: density, x/y momentum, total energy per unit volume.
struct Cons {
  double rho = 0.0;
  double mx = 0.0;
  double my = 0.0;
  double e = 0.0;

  Cons operator+(const Cons& o) const noexcept {
    return {rho + o.rho, mx + o.mx, my + o.my, e + o.e};
  }
  Cons operator-(const Cons& o) const noexcept {
    return {rho - o.rho, mx - o.mx, my - o.my, e - o.e};
  }
  Cons operator*(double s) const noexcept {
    return {rho * s, mx * s, my * s, e * s};
  }
};

/// Primitive state: density, velocities, pressure.
struct Prim {
  double rho = 0.0;
  double u = 0.0;
  double v = 0.0;
  double p = 0.0;
};

/// Conserved -> primitive. Clamps density/pressure away from zero to keep
/// the first-order scheme robust near the bubble's low-density interior.
Prim to_primitive(const Cons& c) noexcept;

/// Primitive -> conserved.
Cons to_conserved(const Prim& w) noexcept;

/// Speed of sound sqrt(gamma p / rho).
double sound_speed(const Prim& w) noexcept;

/// Physical x-direction flux of the conserved state.
Cons flux_x(const Cons& c) noexcept;

/// HLL flux across an x-face between left and right states.
Cons hll_flux_x(const Cons& left, const Cons& right) noexcept;

/// Physical x-flux given a precomputed primitive state (hot path).
Cons flux_x(const Cons& c, const Prim& w) noexcept;

/// HLL x-flux with precomputed primitives (hot path used by the solver:
/// each cell's primitive conversion is done once per step, not per face).
Cons hll_flux_x(const Cons& left, const Prim& wl, const Cons& right,
                const Prim& wr) noexcept;

/// HLL flux across a y-face: implemented by swapping the roles of the
/// momentum components, solving in x, and swapping back.
Cons hll_flux_y(const Cons& lower, const Cons& upper) noexcept;

/// HLLC flux across an x-face: restores the contact wave that plain HLL
/// smears, which sharpens the bubble interface (a contact discontinuity).
/// Same wave-speed estimates as hll_flux_x.
Cons hllc_flux_x(const Cons& left, const Cons& right) noexcept;

/// HLLC with precomputed primitives (hot path).
Cons hllc_flux_x(const Cons& left, const Prim& wl, const Cons& right,
                 const Prim& wr) noexcept;

/// max(|u| + c, |v| + c) — the CFL-relevant wave speed of one cell.
double max_wave_speed(const Cons& c) noexcept;

/// Post-shock state for a Mach `mach` shock running into quiescent gas
/// (rho1, p1) — the standard Rankine-Hugoniot relations. Used to set up
/// the shock-bubble problem and verified against textbook values in tests.
Prim post_shock_state(double mach, double rho1, double p1) noexcept;

}  // namespace alamr::amr
