file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_kernels.dir/bench_ablate_kernels.cpp.o"
  "CMakeFiles/bench_ablate_kernels.dir/bench_ablate_kernels.cpp.o.d"
  "bench_ablate_kernels"
  "bench_ablate_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
