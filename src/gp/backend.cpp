#include "alamr/gp/backend.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "alamr/core/trace.hpp"

namespace alamr::gp {

namespace {

// ---- hex double round-trips for save_state -------------------------------
// Same exact-bit convention the checkpoint format uses: doubles travel as
// the hex image of their 64 bits, so restored centroids route every query
// to the same expert the live run did.

std::string hex_bits(double v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buffer;
}

double bits_from_hex(const std::string& text) {
  if (text.size() != 18 || text[0] != '0' || text[1] != 'x') {
    throw std::runtime_error("backend: bad double bit pattern '" + text + "'");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else throw std::runtime_error("backend: bad hex digit in '" + text + "'");
    bits = (bits << 4) | digit;
  }
  return std::bit_cast<double>(bits);
}

// ---------------------------------------------------------------------------
// Backend zero: the exact GaussianProcessRegressor, carrying over the
// simulator's incremental K(X_train, X_active) bookkeeping verbatim. Every
// branch below reproduces the corresponding historical simulator branch
// operation for operation (counters included), which is what keeps the
// nine golden configs byte-identical through the interface.
// ---------------------------------------------------------------------------

class ExactGprBackend final : public PosteriorBackend {
 public:
  ExactGprBackend(const BackendOptions& options, std::unique_ptr<Kernel> kernel,
                  const GprOptions& fit_options)
      : gpr_(std::move(kernel), fit_options),
        incremental_refit_(options.incremental_refit),
        incremental_cross_(options.incremental_cross),
        batched_predict_(options.batched_predict),
        panel_predict_(options.panel_predict) {}

  std::string_view name() const noexcept override { return "exact"; }
  BackendKind kind() const noexcept override { return BackendKind::kExact; }
  bool fitted() const noexcept override { return gpr_.fitted(); }
  std::size_t training_size() const noexcept override {
    return gpr_.training_size();
  }

  void set_fit_options(const GprOptions& options) override {
    gpr_.set_options(options);
  }

  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng,
           const DistanceBase* base, std::span<const std::size_t> rows) override {
    base_ = base;
    x_learned_ = x;
    y_learned_.assign(y.begin(), y.end());
    rows_.assign(rows.begin(), rows.end());
    gpr_.fit(x, y, rng, base, rows);
    k_star_valid_ = false;
    test_dist_.reset();
    test_dist_rows_ = 0;
  }

  void add_point(std::span<const double> x, double y, std::size_t row,
                 stats::Rng& rng, const CandidateRef* after) override {
    x_learned_.push_row(x);
    y_learned_.push_back(y);
    if (base_ != nullptr) rows_.push_back(row);
    if (incremental_refit_) {
      // Same optimization, same rng stream, bit-identical posterior — but
      // the common converged-warm-start case avoids the O(n^2) gram
      // rebuild and O(n^3) refactor.
      const bool kept = gpr_.fit_add_point(x, y, rng);
      if (k_star_valid_ && !kept) core::trace::count("sim.kstar_invalidate");
      k_star_valid_ = k_star_valid_ && kept;
    } else {
      // y_learned_ is maintained in learned order (holding exactly the
      // labels the simulator revealed, penalized ones included), so the
      // full refit sees the same bits the seed recipe did.
      gpr_.fit(x_learned_, y_learned_, rng, base_, rows_);
      k_star_valid_ = false;
    }
    // A surviving cross matrix gains the acquired point's row: a 1 x m
    // kernel evaluation against the remaining candidates.
    if (k_star_valid_ && after != nullptr) {
      core::trace::count("sim.kstar_append");
      const std::size_t appended_row[1] = {row};
      PairwiseDistances dist = [&] {
        if (base_ != nullptr) {
          // The base already holds every acquired-point-to-candidate
          // distance; gather the 1 x m slice directly.
          return PairwiseDistances::cross_from_base(*base_, appended_row,
                                                    after->rows);
        }
        Matrix x_new(1, x_learned_.cols());
        std::copy(x.begin(), x.end(), x_new.row(0).begin());
        return PairwiseDistances::cross(x_new, after->x);
      }();
      gpr_.kernel().prepare_distances(dist);
      const Matrix new_row = gpr_.kernel().cross_cached(dist);
      if (dead_ == 0) {
        k_star_.push_row(new_row.row(0));
      } else {
        // Tombstoned columns get a zero entry (finite, never read back);
        // live entries land in their storage slots, bit-for-bit the values
        // the compacted layout would hold.
        row_scratch_.assign(k_star_.cols(), 0.0);
        const std::span<const double> src = new_row.row(0);
        for (std::size_t q = 0; q < live_.size(); ++q) {
          row_scratch_[live_[q]] = src[q];
        }
        k_star_.push_row(row_scratch_);
      }
    }
  }

  PosteriorSpans predict_candidates(const CandidateRef& pool,
                                    linalg::Workspace& ws,
                                    bool with_mean = true) override {
    const std::size_t m = pool.x.rows();
    if (incremental_cross_) {
      if (!k_star_valid_) {
        core::trace::count("sim.kstar_rebuild");
        PairwiseDistances dist =
            base_ != nullptr
                ? PairwiseDistances::cross_from_base(*base_, rows_, pool.rows)
                : PairwiseDistances::cross(x_learned_, pool.x);
        gpr_.kernel().prepare_distances(dist);
        k_star_ = gpr_.kernel().cross_cached(dist);
        k_star_.reserve(n_train_max_, k_star_.cols());
        if (batched_predict_) diag_ = gpr_.kernel().diagonal(pool.x);
        if (batched_predict_ && panel_predict_) {
          // A wholesale cross rebuild breaks the panel's column alignment;
          // the next panel sweep rebuilds it (panel.rebuilds). Reserve so
          // steady-state row appends / column drops stay allocation-free.
          gpr_.panel_invalidate();
          gpr_.panel_reserve(std::max(n_train_max_, gpr_.training_size()),
                             k_star_.cols());
          // Fresh cross matrix: every storage column is live again.
          live_.resize(m);
          for (std::size_t q = 0; q < m; ++q) live_[q] = q;
          dead_ = 0;
        }
        k_star_valid_ = true;
      } else {
        core::trace::count("sim.kstar_reuse");
      }
      if (batched_predict_) {
        // Fused batched posterior over the live cross matrix: outputs live
        // in the caller's pass arena, so the steady-state pass is
        // allocation-free (verified by tests_alloc). Only the panel path
        // honors the mean-skip hint (candidate_mean() recovers single
        // entries from the live cross matrix afterwards).
        const bool skip_mean = !with_mean && panel_predict_;
        if (skip_mean) core::trace::count("sim.mean_skip");
        const std::span<double> mu =
            skip_mean ? std::span<double>{} : ws.alloc(m);
        const std::span<double> sd = ws.alloc(m);
        if (panel_predict_) {
          if (dead_ == 0) {
            gpr_.predict_batch_panel(k_star_, diag_, ws, mu, sd, !skip_mean);
          } else {
            // Tombstoned sweep: run the panel over the full physical
            // column set (dead columns included — their values are finite
            // and discarded) and gather the live entries into pool order.
            // Each column's arithmetic is column-local, so live outputs
            // are bit-for-bit those of the compacted layout.
            const std::size_t phys = k_star_.cols();
            const std::span<double> mu_phys =
                skip_mean ? std::span<double>{} : ws.alloc(phys);
            const std::span<double> sd_phys = ws.alloc(phys);
            gpr_.predict_batch_panel(k_star_, diag_, ws, mu_phys, sd_phys,
                                     !skip_mean);
            for (std::size_t q = 0; q < m; ++q) {
              if (!skip_mean) mu[q] = mu_phys[live_[q]];
              sd[q] = sd_phys[live_[q]];
            }
          }
        } else {
          gpr_.predict_batch(k_star_, diag_, ws, mu, sd);
        }
        return {mu, sd};
      }
      pred_ = gpr_.predict_from_cross(k_star_, pool.x);
      return {pred_.mean, pred_.stddev};
    }
    if (batched_predict_) {
      // No cross-matrix cache to batch over: build it fresh each pass but
      // still run the fused posterior (bit-identical outputs).
      pred_ = gpr_.predict_batch(pool.x, ws);
      return {pred_.mean, pred_.stddev};
    }
    pred_ = gpr_.predict(pool.x);
    return {pred_.mean, pred_.stddev};
  }

  double candidate_mean(std::size_t local) const override {
    // Only meaningful after a mean-skipped panel sweep, so the live cross
    // matrix and pool map are current. Bit-identical to the entry the
    // skipped full pass would have produced (mean_from_cross_column).
    if (!k_star_valid_ || local >= live_.size()) {
      throw std::logic_error(
          "ExactGprBackend::candidate_mean: no live mean-skipped sweep");
    }
    return gpr_.mean_from_cross_column(k_star_, live_[local]);
  }

  void remove_candidate(std::size_t local) override {
    if (!k_star_valid_) return;
    if (batched_predict_ && panel_predict_) {
      // Tombstone instead of compacting: eager column removal moves
      // O(n m) doubles across the cross matrix AND the panel on every
      // acquisition. The column stays in storage (at most a retrain
      // stride of dead columns accumulates before the next swap-triggered
      // rebuild compacts everything); only the pool->storage map shrinks.
      core::trace::count("sim.kstar_tombstone");
      live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(local));
      ++dead_;
      return;
    }
    // Drop the acquired candidate's column from the live cross matrix (and
    // its cached prior-diagonal entry); remaining entries keep their bits —
    // remove_column is pure data movement.
    k_star_.remove_column(local);
    if (batched_predict_) {
      diag_.erase(diag_.begin() + static_cast<std::ptrdiff_t>(local));
    }
  }

  std::vector<double> predict_mean(
      const Matrix& x, std::span<const std::size_t> rows) override {
    if (base_ == nullptr || rows.empty()) return gpr_.predict_mean(x);
    // Route the query cross-covariance through the shared DistanceBase:
    // the train-to-query distance slab depends only on the learned rows
    // (hyperparameters enter in the kernel transform, not the distances),
    // so it is regathered only when the training set grew or the query set
    // changed. Gathered entries are bitwise identical to recomputed ones.
    if (!test_dist_ || test_dist_rows_ != rows_.size() ||
        !std::equal(rows.begin(), rows.end(), query_rows_.begin(),
                    query_rows_.end())) {
      test_dist_ = PairwiseDistances::cross_from_base(*base_, rows_, rows);
      test_dist_rows_ = rows_.size();
      query_rows_.assign(rows.begin(), rows.end());
    }
    gpr_.kernel().prepare_distances(*test_dist_);
    return gpr_.predict_mean_from_cross(gpr_.kernel().cross_cached(*test_dist_));
  }

  Prediction predict(const Matrix& x) const override { return gpr_.predict(x); }

  double lml() const override { return gpr_.log_marginal_likelihood(); }

  std::vector<double> log_params() const override {
    return gpr_.kernel().log_params();
  }

  void set_log_params(std::span<const double> theta) override {
    gpr_.set_kernel_log_params(theta);
  }

  void reserve_additional(std::size_t extra) override {
    n_train_max_ = gpr_.training_size() + extra;
    gpr_.reserve_additional(extra);
    x_learned_.reserve(n_train_max_, x_learned_.cols());
    y_learned_.reserve(n_train_max_);
    if (base_ != nullptr) rows_.reserve(n_train_max_);
  }

  WorkspaceBound workspace_bound(std::size_t n0, std::size_t m0,
                                 std::size_t budget) const override {
    if (!batched_predict_) return {};
    // Two output vectors for the pass plus the n x m variance scratch,
    // maximized over the pass index (the training side grows while the
    // candidate side shrinks). Summed across the two per-response backends
    // this reproduces the historical 4*m0 + z_peak arena bound exactly.
    // Panel mode adds the physical-width gather staging for tombstoned
    // sweeps (two vectors over at most the initial m0 columns).
    std::size_t z_peak = 0;
    for (std::size_t p = 0; p <= budget && p <= m0; ++p) {
      z_peak = std::max(z_peak, (n0 + p) * (m0 - p));
    }
    if (panel_predict_) z_peak = std::max(z_peak, 2 * m0);
    return {.outputs = 2 * m0, .scratch = z_peak};
  }

  std::unique_ptr<PosteriorBackend> clone() const override {
    return std::unique_ptr<PosteriorBackend>(new ExactGprBackend(*this));
  }

 private:
  ExactGprBackend(const ExactGprBackend&) = default;

  GaussianProcessRegressor gpr_;
  const bool incremental_refit_;
  const bool incremental_cross_;
  const bool batched_predict_;
  const bool panel_predict_;

  const DistanceBase* base_ = nullptr;
  Matrix x_learned_;
  std::vector<double> y_learned_;
  std::vector<std::size_t> rows_;
  std::size_t n_train_max_ = 0;

  // Incremental cross-covariance K(X_learned, X_active) plus the cached
  // prior diagonal for the fused batched posterior; both share the
  // validity lifecycle the simulator historically managed.
  Matrix k_star_;
  std::vector<double> diag_;
  bool k_star_valid_ = false;

  // Panel mode keeps acquired candidates' columns in storage (tombstones)
  // instead of compacting: live_ maps pool index -> storage column, dead_
  // counts tombstoned columns. Reset to identity/zero on cross rebuilds.
  std::vector<std::size_t> live_;
  std::size_t dead_ = 0;
  std::vector<double> row_scratch_;

  // Train-to-query distance slab for predict_mean, keyed on the training
  // size and query rows it was gathered for.
  std::optional<PairwiseDistances> test_dist_;
  std::size_t test_dist_rows_ = 0;
  std::vector<std::size_t> query_rows_;

  Prediction pred_;  // storage for the non-arena prediction paths
};

// ---------------------------------------------------------------------------
// Subset-of-data (Nyström-style inducing subset): the exact GPR trained on
// a bounded, deterministically chosen subset of the learned sequence — the
// first `anchors` points (global structure) plus the most recent
// capacity - anchors (the sliding frontier AL is actively refining). The
// subset is a pure function of the learned sequence, so checkpoint resume
// reconstructs it from the learned rows alone and needs no opaque state.
// Within capacity the backend IS the exact recipe (same fit / warm
// fit_add_point call sequence); over capacity each acquisition refits
// O(capacity^3) and every candidate sweep is O(capacity^2 * M).
// ---------------------------------------------------------------------------

class SubsetOfDataBackend final : public PosteriorBackend {
 public:
  SubsetOfDataBackend(const BackendOptions& options,
                      std::unique_ptr<Kernel> kernel,
                      const GprOptions& fit_options)
      : gpr_(std::move(kernel), fit_options),
        incremental_refit_(options.incremental_refit),
        batched_predict_(options.batched_predict),
        panel_predict_(options.panel_predict),
        cap_(std::max<std::size_t>(options.inducing_points, 2)) {
    const std::size_t requested =
        options.sod_anchors != 0 ? options.sod_anchors : cap_ / 2;
    // At least one tail slot stays open so the newest point always enters
    // the subset (the monotone-variance property at the acquired site).
    anchors_ = std::min(requested, cap_ - 1);
  }

  std::string_view name() const noexcept override { return "subset_of_data"; }
  BackendKind kind() const noexcept override {
    return BackendKind::kSubsetOfData;
  }
  bool fitted() const noexcept override { return gpr_.fitted(); }
  std::size_t training_size() const noexcept override { return y_seq_.size(); }

  std::size_t capacity() const noexcept { return cap_; }
  std::size_t subset_size() const noexcept { return gpr_.training_size(); }

  void set_fit_options(const GprOptions& options) override {
    gpr_.set_options(options);
  }

  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng,
           const DistanceBase* base, std::span<const std::size_t> rows) override {
    base_ = base;
    x_seq_ = x;
    y_seq_.assign(y.begin(), y.end());
    rows_seq_.assign(rows.begin(), rows.end());
    core::trace::count("backend.sod_fit");
    k_star_valid_ = false;
    refit_subset(rng);
  }

  void add_point(std::span<const double> x, double y, std::size_t row,
                 stats::Rng& rng, const CandidateRef* after) override {
    x_seq_.push_row(x);
    y_seq_.push_back(y);
    if (base_ != nullptr) rows_seq_.push_back(row);
    if (y_seq_.size() <= cap_) {
      // Subset == everything learned so far: the exact recipe, including
      // its rng consumption, so capacity >= n reproduces the exact
      // backend's posterior bit for bit. While the subset only grows, a
      // cached cross matrix stays live (the window epoch): extend it by
      // the acquired point's 1 x m kernel row, same recipe — and
      // therefore same bits — as the exact backend's append.
      core::trace::count("backend.sod_append");
      if (incremental_refit_) {
        const bool kept = gpr_.fit_add_point(x, y, rng);
        k_star_valid_ = k_star_valid_ && kept && after != nullptr;
        if (k_star_valid_) {
          const std::size_t appended_row[1] = {row};
          PairwiseDistances dist = [&] {
            if (base_ != nullptr) {
              return PairwiseDistances::cross_from_base(*base_, appended_row,
                                                        after->rows);
            }
            Matrix x_new(1, x_seq_.cols());
            std::copy(x.begin(), x.end(), x_new.row(0).begin());
            return PairwiseDistances::cross(x_new, after->x);
          }();
          gpr_.kernel().prepare_distances(dist);
          const Matrix new_row = gpr_.kernel().cross_cached(dist);
          k_star_.push_row(new_row.row(0));
        }
      } else {
        k_star_valid_ = false;
        refit_subset(rng);
      }
    } else {
      // The window slid: the oldest tail point left the subset, so the
      // posterior must be rebuilt — O(cap^3), constant in n — and every
      // cached cross row is against a different training set (epoch over).
      core::trace::count("backend.sod_slide");
      k_star_valid_ = false;
      refit_subset(rng);
    }
  }

  PosteriorSpans predict_candidates(const CandidateRef& pool,
                                    linalg::Workspace& ws,
                                    bool /*with_mean*/ = true) override {
    core::trace::count("backend.sod_predict");
    if (batched_predict_ && panel_predict_) {
      // Panel sweep over a cross matrix cached for the current window
      // epoch. The rebuilt cross is the distance-cache evaluation of
      // K(subset, pool) — bitwise what kernel().cross() produces — so the
      // sweep stays bit-identical to the panel-off arm.
      const std::size_t m = pool.x.rows();
      if (!k_star_valid_) {
        const std::vector<std::size_t> idx = subset_indices();
        PairwiseDistances dist = [&] {
          if (base_ != nullptr) {
            std::vector<std::size_t> srows;
            srows.reserve(idx.size());
            for (const std::size_t i : idx) srows.push_back(rows_seq_[i]);
            return PairwiseDistances::cross_from_base(*base_, srows, pool.rows);
          }
          Matrix sx(idx.size(), x_seq_.cols());
          for (std::size_t r = 0; r < idx.size(); ++r) {
            const auto src = x_seq_.row(idx[r]);
            std::copy(src.begin(), src.end(), sx.row(r).begin());
          }
          return PairwiseDistances::cross(sx, pool.x);
        }();
        gpr_.kernel().prepare_distances(dist);
        k_star_ = gpr_.kernel().cross_cached(dist);
        diag_ = gpr_.kernel().diagonal(pool.x);
        gpr_.panel_invalidate();
        gpr_.panel_reserve(cap_, k_star_.cols());
        k_star_valid_ = true;
      }
      const std::span<double> mu = ws.alloc(m);
      const std::span<double> sd = ws.alloc(m);
      gpr_.predict_batch_panel(k_star_, diag_, ws, mu, sd);
      return {mu, sd};
    }
    pred_ = batched_predict_ ? gpr_.predict_batch(pool.x, ws)
                             : gpr_.predict(pool.x);
    return {pred_.mean, pred_.stddev};
  }

  void remove_candidate(std::size_t local) override {
    if (!k_star_valid_) return;
    k_star_.remove_column(local);
    diag_.erase(diag_.begin() + static_cast<std::ptrdiff_t>(local));
    gpr_.panel_remove_column(local);
  }

  std::vector<double> predict_mean(
      const Matrix& x, std::span<const std::size_t> /*rows*/) override {
    return gpr_.predict_mean(x);
  }

  Prediction predict(const Matrix& x) const override { return gpr_.predict(x); }

  double lml() const override { return gpr_.log_marginal_likelihood(); }

  std::vector<double> log_params() const override {
    return gpr_.kernel().log_params();
  }

  void set_log_params(std::span<const double> theta) override {
    gpr_.set_kernel_log_params(theta);
  }

  void reserve_additional(std::size_t extra) override {
    const std::size_t n_max = y_seq_.size() + extra;
    x_seq_.reserve(n_max, x_seq_.cols());
    y_seq_.reserve(n_max);
    if (base_ != nullptr) rows_seq_.reserve(n_max);
    if (gpr_.training_size() < cap_) {
      gpr_.reserve_additional(
          std::min(extra, cap_ - gpr_.training_size()));
    }
  }

  WorkspaceBound workspace_bound(std::size_t n0, std::size_t m0,
                                 std::size_t budget) const override {
    if (!batched_predict_) return {};
    // The fused sweep's scratch is min(n, cap) x m; outputs are heap-owned
    // Prediction vectors — except on the panel path, whose mean/stddev
    // spans are carved from the pass arena (the Z panel itself lives in
    // member storage). The z_peak term stays as a conservative bound for
    // the panel-off sweep.
    std::size_t z_peak = 0;
    for (std::size_t p = 0; p <= budget && p <= m0; ++p) {
      z_peak = std::max(z_peak, std::min(n0 + p, cap_) * (m0 - p));
    }
    return {.outputs = panel_predict_ ? 2 * m0 : 0, .scratch = z_peak};
  }

  std::unique_ptr<PosteriorBackend> clone() const override {
    return std::unique_ptr<PosteriorBackend>(new SubsetOfDataBackend(*this));
  }

 private:
  SubsetOfDataBackend(const SubsetOfDataBackend&) = default;

  /// Indices (into the learned sequence) of the current subset: the first
  /// min(anchors, n) points plus the most recent cap - anchors.
  std::vector<std::size_t> subset_indices() const {
    const std::size_t n = y_seq_.size();
    std::vector<std::size_t> idx;
    if (n <= cap_) {
      idx.resize(n);
      for (std::size_t i = 0; i < n; ++i) idx[i] = i;
      return idx;
    }
    idx.reserve(cap_);
    for (std::size_t i = 0; i < anchors_; ++i) idx.push_back(i);
    for (std::size_t i = n - (cap_ - anchors_); i < n; ++i) idx.push_back(i);
    return idx;
  }

  void refit_subset(stats::Rng& rng) {
    const std::vector<std::size_t> idx = subset_indices();
    if (idx.size() == y_seq_.size()) {
      // Whole-sequence subset: fit on the stored sequence directly so the
      // call (base rows included) matches the exact backend's exactly.
      gpr_.fit(x_seq_, y_seq_, rng, base_, rows_seq_);
      return;
    }
    Matrix sx(idx.size(), x_seq_.cols());
    std::vector<double> sy(idx.size());
    std::vector<std::size_t> srows;
    if (base_ != nullptr) srows.reserve(idx.size());
    for (std::size_t r = 0; r < idx.size(); ++r) {
      const auto src = x_seq_.row(idx[r]);
      std::copy(src.begin(), src.end(), sx.row(r).begin());
      sy[r] = y_seq_[idx[r]];
      if (base_ != nullptr) srows.push_back(rows_seq_[idx[r]]);
    }
    gpr_.fit(sx, sy, rng, base_, srows);
  }

  GaussianProcessRegressor gpr_;
  const bool incremental_refit_;
  const bool batched_predict_;
  const bool panel_predict_;
  const std::size_t cap_;
  std::size_t anchors_;

  const DistanceBase* base_ = nullptr;
  // The full learned sequence (arrival order); the fitted subset is a pure
  // function of it.
  Matrix x_seq_;
  std::vector<double> y_seq_;
  std::vector<std::size_t> rows_seq_;

  // Window-epoch cross matrix K(subset, X_active) + prior diagonal for the
  // panel path: live while the subset only grows (appends extend it by one
  // row); any slide or full refit ends the epoch.
  Matrix k_star_;
  std::vector<double> diag_;
  bool k_star_valid_ = false;

  Prediction pred_;
};

// ---------------------------------------------------------------------------
// Partitioned local experts: LocalGprEnsemble over nearest-centroid
// regions with the global-PRIOR fallback (no O(n^3) global model).
// Centroids come from a deterministic k-means-lite pass over the initial
// fit's data and are then FROZEN — routing never moves under later
// acquisitions, which keeps region membership append-only (the property
// checkpoint resume leans on). Because the centroids derive from data the
// resumed process no longer has (the init partition's features before any
// acquisition), they are the one piece of opaque save_state.
// ---------------------------------------------------------------------------

class LocalExpertsBackend final : public PosteriorBackend {
 public:
  LocalExpertsBackend(const BackendOptions& options,
                      std::unique_ptr<Kernel> kernel,
                      const GprOptions& fit_options)
      : experts_(std::max<std::size_t>(options.experts, 1)),
        min_expert_size_(std::max<std::size_t>(options.min_expert_size, 1)),
        kmeans_iterations_(options.kmeans_iterations),
        ensemble_(std::move(kernel),
                  [this](std::span<const double> x) {
                    return nearest_centroid(x);
                  },
                  fit_options) {}

  /// The ensemble's labeler captures `this`; a copy must rebind it to the
  /// copy's own centroids or routing would read the copied-from object.
  LocalExpertsBackend(const LocalExpertsBackend& other)
      : experts_(other.experts_),
        min_expert_size_(other.min_expert_size_),
        kmeans_iterations_(other.kmeans_iterations_),
        centroids_(other.centroids_),
        ensemble_(other.ensemble_),
        pred_(other.pred_) {
    ensemble_.set_labeler(
        [this](std::span<const double> x) { return nearest_centroid(x); });
  }

  std::string_view name() const noexcept override { return "local_experts"; }
  BackendKind kind() const noexcept override {
    return BackendKind::kLocalExperts;
  }
  bool fitted() const noexcept override { return ensemble_.fitted(); }
  std::size_t training_size() const noexcept override {
    return ensemble_.training_size();
  }

  std::size_t expert_count() const noexcept { return ensemble_.region_count(); }

  void set_fit_options(const GprOptions& options) override {
    ensemble_.set_options(options);
  }

  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng,
           const DistanceBase* base, std::span<const std::size_t> rows) override {
    if (centroids_.rows() == 0) compute_centroids(x);
    LocalGprEnsemble::FitSpec spec;
    spec.min_region_size = min_expert_size_;
    spec.base = base;
    spec.rows = rows;
    spec.fallback = LocalGprEnsemble::Fallback::kPrior;
    ensemble_.fit(x, y, rng, spec);
    core::trace::count("backend.experts_fit");
    core::trace::count("backend.experts_models", ensemble_.region_count());
  }

  void add_point(std::span<const double> x, double y, std::size_t row,
                 stats::Rng& rng, const CandidateRef* /*after*/) override {
    ensemble_.add_point(x, y, rng, row);
    core::trace::count("backend.experts_route");
  }

  PosteriorSpans predict_candidates(const CandidateRef& pool,
                                    linalg::Workspace& /*ws*/,
                                    bool /*with_mean*/ = true) override {
    core::trace::count("backend.experts_predict");
    pred_ = ensemble_.predict(pool.x);
    return {pred_.mean, pred_.stddev};
  }

  void remove_candidate(std::size_t /*local*/) override {}

  std::vector<double> predict_mean(
      const Matrix& x, std::span<const std::size_t> /*rows*/) override {
    return ensemble_.predict_mean(x);
  }

  Prediction predict(const Matrix& x) const override {
    return ensemble_.predict(x);
  }

  double lml() const override { return ensemble_.lml(); }

  std::vector<double> log_params() const override {
    return ensemble_.log_params();
  }

  void set_log_params(std::span<const double> theta) override {
    // Staged: the ensemble consumes one slice per model inside the next
    // fit(), in log_params() order — the resume protocol.
    ensemble_.set_pending_log_params(theta);
  }

  std::string save_state() const override {
    // Centroids as exact bits: "centroids v1;<k>x<d>;hex,hex,...".
    std::ostringstream os;
    os << "centroids v1;" << centroids_.rows() << 'x' << centroids_.cols()
       << ';';
    for (std::size_t r = 0; r < centroids_.rows(); ++r) {
      for (std::size_t c = 0; c < centroids_.cols(); ++c) {
        if (r != 0 || c != 0) os << ',';
        os << hex_bits(centroids_(r, c));
      }
    }
    return os.str();
  }

  void restore_state(const std::string& state) override {
    std::istringstream is(state);
    std::string header;
    std::string shape;
    if (!std::getline(is, header, ';') || header != "centroids v1" ||
        !std::getline(is, shape, ';')) {
      throw std::runtime_error("local_experts: malformed backend state");
    }
    const std::size_t split = shape.find('x');
    if (split == std::string::npos) {
      throw std::runtime_error("local_experts: malformed centroid shape");
    }
    const std::size_t k = std::stoul(shape.substr(0, split));
    const std::size_t d = std::stoul(shape.substr(split + 1));
    Matrix restored(k, d);
    std::string cell;
    for (std::size_t r = 0; r < k; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        if (!std::getline(is, cell, ',')) {
          throw std::runtime_error("local_experts: truncated centroid state");
        }
        restored(r, c) = bits_from_hex(cell);
      }
    }
    centroids_ = std::move(restored);
  }

  void reserve_additional(std::size_t /*extra*/) override {}

  WorkspaceBound workspace_bound(std::size_t /*n0*/, std::size_t /*m0*/,
                                 std::size_t /*budget*/) const override {
    return {};
  }

  std::unique_ptr<PosteriorBackend> clone() const override {
    return std::unique_ptr<PosteriorBackend>(new LocalExpertsBackend(*this));
  }

 private:
  int nearest_centroid(std::span<const double> x) const {
    if (centroids_.rows() == 0) {
      throw std::logic_error("local_experts: no centroids (fit first)");
    }
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < centroids_.rows(); ++j) {
      const auto c = centroids_.row(j);
      double d = 0.0;
      for (std::size_t f = 0; f < c.size(); ++f) {
        const double diff = x[f] - c[f];
        d += diff * diff;
      }
      // Strict < keeps the lowest-index centroid on ties — deterministic
      // routing with no rng anywhere in the seeding or assignment.
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(j);
      }
    }
    return best;
  }

  /// Deterministic k-means-lite: strided row seeding followed by a fixed
  /// number of Lloyd iterations (empty clusters keep their previous
  /// centroid). No randomness — the same initial fit always produces the
  /// same partition.
  void compute_centroids(const Matrix& x) {
    const std::size_t k = std::min(experts_, x.rows());
    centroids_ = Matrix(k, x.cols());
    for (std::size_t j = 0; j < k; ++j) {
      const auto src = x.row(j * x.rows() / k);
      std::copy(src.begin(), src.end(), centroids_.row(j).begin());
    }
    std::vector<std::size_t> counts(k);
    Matrix sums(k, x.cols());
    for (std::size_t iter = 0; iter < kmeans_iterations_; ++iter) {
      std::fill(counts.begin(), counts.end(), 0);
      for (std::size_t r = 0; r < k; ++r) {
        std::fill(sums.row(r).begin(), sums.row(r).end(), 0.0);
      }
      for (std::size_t i = 0; i < x.rows(); ++i) {
        const std::size_t j =
            static_cast<std::size_t>(nearest_centroid(x.row(i)));
        ++counts[j];
        const auto src = x.row(i);
        const auto dst = sums.row(j);
        for (std::size_t f = 0; f < src.size(); ++f) dst[f] += src[f];
      }
      for (std::size_t j = 0; j < k; ++j) {
        if (counts[j] == 0) continue;  // keep the previous centroid
        const auto dst = centroids_.row(j);
        const auto src = sums.row(j);
        for (std::size_t f = 0; f < dst.size(); ++f) {
          dst[f] = src[f] / static_cast<double>(counts[j]);
        }
      }
    }
  }

  const std::size_t experts_;
  const std::size_t min_expert_size_;
  const std::size_t kmeans_iterations_;
  Matrix centroids_;  // frozen at the first fit (or restore_state)
  LocalGprEnsemble ensemble_;
  Prediction pred_;
};

// ---------------------------------------------------------------------------
// Prior-mean backend: the bottom rung of the degradation ladder. The
// posterior is the constant (training-mean, training-stddev) — no linalg,
// no kernel, no optimizer, so it cannot fail. Statistics are recomputed
// by one deterministic left-to-right pass on every mutation, which makes
// the incremental path (add_point) bit-identical to a from-scratch fit on
// the same sequence — the property checkpoint resume leans on.
// ---------------------------------------------------------------------------

class PriorMeanBackend final : public PosteriorBackend {
 public:
  std::string_view name() const noexcept override { return "prior_mean"; }
  BackendKind kind() const noexcept override { return BackendKind::kPriorMean; }
  bool fitted() const noexcept override { return !y_.empty(); }
  std::size_t training_size() const noexcept override { return y_.size(); }

  void set_fit_options(const GprOptions& options) override { (void)options; }

  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng,
           const DistanceBase* base, std::span<const std::size_t> rows) override {
    (void)x;
    (void)rng;
    (void)base;
    (void)rows;
    y_.assign(y.begin(), y.end());
    recompute();
  }

  void add_point(std::span<const double> x, double y, std::size_t row,
                 stats::Rng& rng, const CandidateRef* after) override {
    (void)x;
    (void)row;
    (void)rng;
    (void)after;
    y_.push_back(y);
    recompute();
  }

  PosteriorSpans predict_candidates(const CandidateRef& pool,
                                    linalg::Workspace& ws,
                                    bool /*with_mean*/ = true) override {
    (void)ws;
    const std::size_t m = pool.rows.empty() ? pool.x.rows() : pool.rows.size();
    mean_buf_.assign(m, mean_);
    sd_buf_.assign(m, sd_);
    return {mean_buf_, sd_buf_};
  }

  void remove_candidate(std::size_t local) override { (void)local; }

  std::vector<double> predict_mean(const Matrix& x,
                                   std::span<const std::size_t> rows) override {
    const std::size_t m = rows.empty() ? x.rows() : rows.size();
    return std::vector<double>(m, mean_);
  }

  Prediction predict(const Matrix& x) const override {
    Prediction out;
    out.mean.assign(x.rows(), mean_);
    out.stddev.assign(x.rows(), sd_);
    return out;
  }

  double lml() const override {
    if (y_.empty()) return 0.0;
    const double var = sd_ * sd_;
    constexpr double kLog2Pi = 1.8378770664093454836;
    double ll = 0.0;
    for (const double v : y_) {
      const double d = v - mean_;
      ll -= 0.5 * (kLog2Pi + std::log(var) + d * d / var);
    }
    return ll;
  }

  std::vector<double> log_params() const override { return {}; }
  void set_log_params(std::span<const double> theta) override { (void)theta; }

  void reserve_additional(std::size_t extra) override {
    y_.reserve(y_.size() + extra);
  }

  WorkspaceBound workspace_bound(std::size_t n0, std::size_t m0,
                                 std::size_t budget) const override {
    (void)n0;
    (void)m0;
    (void)budget;
    return {0, 0};
  }

  std::unique_ptr<PosteriorBackend> clone() const override {
    return std::make_unique<PriorMeanBackend>(*this);
  }

 private:
  void recompute() {
    const double n = static_cast<double>(y_.size());
    double sum = 0.0;
    for (const double v : y_) sum += v;
    mean_ = sum / n;
    double ss = 0.0;
    for (const double v : y_) {
      const double d = v - mean_;
      ss += d * d;
    }
    const double sd = std::sqrt(ss / n);
    // A single observation (or constant labels) has no spread; answer
    // with unit uncertainty rather than a degenerate zero-sigma
    // posterior that acquisition weights cannot use.
    sd_ = sd > 0.0 ? sd : 1.0;
  }

  std::vector<double> y_;
  double mean_ = 0.0;
  double sd_ = 1.0;
  std::vector<double> mean_buf_;
  std::vector<double> sd_buf_;
};

}  // namespace

std::string to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kExact: return "exact";
    case BackendKind::kSubsetOfData: return "subset_of_data";
    case BackendKind::kLocalExperts: return "local_experts";
    case BackendKind::kPriorMean: return "prior_mean";
  }
  return "unknown";
}

std::unique_ptr<PosteriorBackend> make_backend(const BackendOptions& options,
                                               std::unique_ptr<Kernel> kernel,
                                               const GprOptions& fit_options) {
  switch (options.kind) {
    case BackendKind::kExact:
      return std::make_unique<ExactGprBackend>(options, std::move(kernel),
                                               fit_options);
    case BackendKind::kSubsetOfData:
      return std::make_unique<SubsetOfDataBackend>(options, std::move(kernel),
                                                   fit_options);
    case BackendKind::kLocalExperts:
      return std::make_unique<LocalExpertsBackend>(options, std::move(kernel),
                                                   fit_options);
    case BackendKind::kPriorMean:
      return std::make_unique<PriorMeanBackend>();
  }
  throw std::invalid_argument("make_backend: unknown backend kind");
}

// ---------------------------------------------------------------------------
// ResilientBackend: the degradation-ladder decorator (DESIGN.md §14).
// ---------------------------------------------------------------------------

namespace {

namespace res = alamr::core::resilience;

std::vector<BackendKind> ladder_for(BackendKind kind, bool ladder_enabled) {
  std::vector<BackendKind> ladder;
  switch (kind) {
    case BackendKind::kExact:
      ladder = {BackendKind::kExact, BackendKind::kSubsetOfData,
                BackendKind::kPriorMean};
      break;
    case BackendKind::kSubsetOfData:
      ladder = {BackendKind::kSubsetOfData, BackendKind::kPriorMean};
      break;
    case BackendKind::kLocalExperts:
      ladder = {BackendKind::kLocalExperts, BackendKind::kSubsetOfData,
                BackendKind::kPriorMean};
      break;
    case BackendKind::kPriorMean:
      ladder = {BackendKind::kPriorMean};
      break;
  }
  if (!ladder_enabled) ladder.resize(1);
  return ladder;
}

}  // namespace

/// Attributes failure events noted by lower layers (injected
/// cholesky.non_psd / opt.diverge fires) to the owning model's breaker.
struct ResilientBackend::BreakerListener final : res::Listener {
  explicit BreakerListener(ResilientBackend& owner) noexcept : owner(owner) {}
  void on_event(res::Event event) override {
    owner.breaker_.record_failure();
    core::trace::count(std::string("resilience.event.") +
                       std::string(res::to_string(event)));
  }
  ResilientBackend& owner;
};

ResilientBackend::ResilientBackend(const BackendOptions& options,
                                   const core::resilience::Options& resilience,
                                   KernelFactory kernel_factory,
                                   const GprOptions& fit_options)
    : base_options_(options),
      res_(resilience),
      kernel_factory_(std::move(kernel_factory)),
      fit_options_(fit_options),
      ladder_(ladder_for(options.kind, resilience.ladder)),
      breaker_(resilience.breaker_threshold),
      repair_rng_(0x7e511e47u),
      exec_(resilience.backoff, resilience.max_attempts,
            resilience.deadline_ticks) {
  rung_theta_.resize(ladder_.size());
  inner_ = make_inner(ladder_[0]);
}

ResilientBackend::~ResilientBackend() = default;

ResilientBackend::ResilientBackend(const ResilientBackend& other)
    : base_options_(other.base_options_),
      res_(other.res_),
      kernel_factory_(other.kernel_factory_),
      fit_options_(other.fit_options_),
      ladder_(other.ladder_),
      inner_(other.inner_->clone()),
      rung_(other.rung_),
      breaker_(other.breaker_),
      health_(other.health_),
      rung_theta_(other.rung_theta_),
      repair_rng_(other.repair_rng_),
      exec_(other.exec_),
      x_store_(other.x_store_),
      y_store_(other.y_store_),
      rows_store_(other.rows_store_),
      base_(other.base_) {}

std::unique_ptr<PosteriorBackend> ResilientBackend::clone() const {
  return std::unique_ptr<PosteriorBackend>(new ResilientBackend(*this));
}

std::unique_ptr<PosteriorBackend> ResilientBackend::make_inner(
    BackendKind kind) const {
  BackendOptions options = base_options_;
  options.kind = kind;
  std::unique_ptr<Kernel> kernel;
  if (kind != BackendKind::kPriorMean) kernel = kernel_factory_();
  return make_backend(options, std::move(kernel), fit_options_);
}

std::string_view ResilientBackend::name() const noexcept {
  return inner_->name();
}

BackendKind ResilientBackend::kind() const noexcept { return ladder_[0]; }

bool ResilientBackend::fitted() const noexcept { return inner_->fitted(); }

std::size_t ResilientBackend::training_size() const noexcept {
  return inner_->training_size();
}

void ResilientBackend::set_fit_options(const GprOptions& options) {
  fit_options_ = options;
  inner_->set_fit_options(options);
}

core::resilience::Health ResilientBackend::health() const noexcept {
  return health_;
}

void ResilientBackend::record_external_event(core::resilience::Event event) {
  if (!res_.enabled) return;
  breaker_.record_failure();
  core::trace::count(std::string("resilience.event.") +
                     std::string(res::to_string(event)));
}

void ResilientBackend::rebuild_at_rung(std::span<const double> theta) {
  std::unique_ptr<PosteriorBackend> next = make_inner(ladder_[rung_]);
  // Rng-free, optimizer-free rebuild: deterministic whatever stream state
  // the surrounding trajectory is in, and byte-reproducible on resume.
  GprOptions quiet = fit_options_;
  quiet.optimize = false;
  quiet.restarts = 0;
  next->set_fit_options(quiet);
  if (!theta.empty()) next->set_log_params(theta);
  if (!y_store_.empty()) {
    next->fit(x_store_, y_store_, repair_rng_, base_, rows_store_);
  }
  next->set_fit_options(fit_options_);
  inner_ = std::move(next);
}

void ResilientBackend::degrade(const char* why) {
  for (;;) {
    if (rung_ + 1 >= ladder_.size()) {
      health_ = res::Health::kHalted;
      core::trace::count("resilience.halted");
      throw std::runtime_error(
          std::string("resilient backend: degradation ladder exhausted at '") +
          why + "'");
    }
    core::trace::count("resilience.breaker_trips");
    breaker_.acknowledge_trip();
    rung_theta_[rung_] = inner_->log_params();
    ++rung_;
    core::trace::count("resilience.degrade_steps");
    core::trace::count("resilience.degrade_to." + to_string(ladder_[rung_]));
    try {
      rebuild_at_rung({});
      health_ = res::Health::kDegraded;
      return;
    } catch (const std::runtime_error&) {
      core::trace::count("resilience.degrade_rebuild_failures");
      // This rung cannot even hold the data: keep stepping down.
    }
  }
}

void ResilientBackend::maybe_probe_recovery() {
  core::trace::count("resilience.half_open_probes");
  const std::size_t save_rung = rung_;
  rung_ = save_rung - 1;
  try {
    rebuild_at_rung(rung_theta_[rung_]);
    health_ = rung_ == 0 ? res::Health::kHealthy : res::Health::kDegraded;
    core::trace::count("resilience.recoveries");
  } catch (const std::runtime_error&) {
    rung_ = save_rung;  // the failed rebuild never touched inner_
    core::trace::count("resilience.probe_failures");
  }
  breaker_.reset_streak();  // pace the next probe either way
}

void ResilientBackend::pre_op() {
  if (rung_ > 0 && !breaker_.tripped() &&
      breaker_.ok_streak() >= res_.probe_after) {
    maybe_probe_recovery();
  }
  if (breaker_.tripped() && rung_ + 1 < ladder_.size()) {
    // Events recorded outside any guarded op (injected acquire.timeout
    // censors routed in by the simulator) tripped the breaker between
    // operations: step the ladder before serving this one.
    degrade("external events");
  }
}

template <typename Fn>
std::invoke_result_t<Fn&> ResilientBackend::guarded(const char* op,
                                                    RetryAfterDegrade retry,
                                                    Fn&& fn) {
  using R = std::invoke_result_t<Fn&>;
  if (!res_.enabled) return fn();
  pre_op();
  for (;;) {  // one iteration per ladder rung tried
    [[maybe_unused]] std::conditional_t<std::is_void_v<R>, char,
                                        std::optional<R>> result{};
    std::exception_ptr error;
    const res::DeadlineExecutor::Outcome outcome =
        exec_.execute(op, [&]() -> res::OpStatus {
          try {
            BreakerListener listener(*this);
            const res::ScopedListener scope(listener);
            if constexpr (std::is_void_v<R>) {
              fn();
            } else {
              result.emplace(fn());
            }
            return res::OpStatus::kOk;
          } catch (const std::runtime_error&) {
            error = std::current_exception();
            breaker_.record_failure();
            core::trace::count("resilience.backend_op_failures");
            return res::OpStatus::kFailed;
          }
        });
    if (outcome.status == res::OpStatus::kOk) {
      breaker_.record_success();
      if constexpr (std::is_void_v<R>) {
        return;
      } else {
        return std::move(*result);
      }
    }
    if (rung_ + 1 < ladder_.size()) {
      degrade(op);
      if (retry == RetryAfterDegrade::kNo) {
        if constexpr (std::is_void_v<R>) {
          return;
        } else {
          return R{};
        }
      }
      continue;
    }
    health_ = res::Health::kHalted;
    core::trace::count("resilience.halted");
    std::rethrow_exception(error);
  }
}

void ResilientBackend::fit(const Matrix& x, std::span<const double> y,
                           stats::Rng& rng, const DistanceBase* base,
                           std::span<const std::size_t> rows) {
  if (!res_.enabled) {
    inner_->fit(x, y, rng, base, rows);
    return;
  }
  x_store_ = x;
  y_store_.assign(y.begin(), y.end());
  rows_store_.assign(rows.begin(), rows.end());
  base_ = base;
  guarded("backend.fit", RetryAfterDegrade::kYes, [&] {
    inner_->fit(x_store_, y_store_, rng, base_, rows_store_);
  });
}

void ResilientBackend::add_point(std::span<const double> x, double y,
                                 std::size_t row, stats::Rng& rng,
                                 const CandidateRef* after) {
  if (!res_.enabled) {
    inner_->add_point(x, y, row, rng, after);
    return;
  }
  // Probe/degrade BEFORE retaining the point: a rebuild triggered here
  // must not include data the inner has not been handed yet.
  pre_op();
  x_store_.push_row(x);
  y_store_.push_back(y);
  if (base_ != nullptr) rows_store_.push_back(row);
  std::exception_ptr error;
  const res::DeadlineExecutor::Outcome outcome =
      exec_.execute("backend.add_point", [&]() -> res::OpStatus {
        try {
          BreakerListener listener(*this);
          const res::ScopedListener scope(listener);
          inner_->add_point(x, y, row, rng, after);
          return res::OpStatus::kOk;
        } catch (const std::runtime_error&) {
          error = std::current_exception();
          breaker_.record_failure();
          core::trace::count("resilience.backend_op_failures");
          // A failed append may leave the inner mid-mutation: rebuild
          // this rung from the retained copy (which includes the new
          // point) instead of re-invoking add_point on a broken model.
          try {
            rebuild_at_rung(inner_->log_params());
            core::trace::count("resilience.backend_rebuilds");
            return res::OpStatus::kOk;
          } catch (const std::runtime_error&) {
            return res::OpStatus::kFailed;
          }
        }
      });
  if (outcome.status == res::OpStatus::kOk) {
    breaker_.record_success();
    return;
  }
  if (rung_ + 1 < ladder_.size()) {
    degrade("backend.add_point");  // the rebuild re-fits the stored copy
    return;
  }
  health_ = res::Health::kHalted;
  core::trace::count("resilience.halted");
  std::rethrow_exception(error);
}

PosteriorSpans ResilientBackend::predict_candidates(const CandidateRef& pool,
                                                    linalg::Workspace& ws,
                                                    bool with_mean) {
  return guarded("backend.predict_candidates", RetryAfterDegrade::kYes,
                 [&] { return inner_->predict_candidates(pool, ws, with_mean); });
}

double ResilientBackend::candidate_mean(std::size_t local) const {
  // Read-only recovery of one mean entry from the inner backend's live
  // cross matrix; no retry ladder — a failure here means the preceding
  // sweep already lied about being mean-skipped.
  return inner_->candidate_mean(local);
}

void ResilientBackend::remove_candidate(std::size_t local) {
  // Pure cache maintenance, no linalg: forward unguarded. A freshly
  // degraded inner has no candidate cache and treats this as a no-op.
  inner_->remove_candidate(local);
}

std::vector<double> ResilientBackend::predict_mean(
    const Matrix& x, std::span<const std::size_t> rows) {
  return guarded("backend.predict_mean", RetryAfterDegrade::kYes,
                 [&] { return inner_->predict_mean(x, rows); });
}

Prediction ResilientBackend::predict(const Matrix& x) const {
  ResilientBackend* self = const_cast<ResilientBackend*>(this);
  return self->guarded("backend.predict", RetryAfterDegrade::kYes,
                       [&] { return inner_->predict(x); });
}

double ResilientBackend::lml() const { return inner_->lml(); }

std::vector<double> ResilientBackend::log_params() const {
  return inner_->log_params();
}

void ResilientBackend::set_log_params(std::span<const double> theta) {
  inner_->set_log_params(theta);
}

void ResilientBackend::reserve_additional(std::size_t extra) {
  if (res_.enabled) {
    x_store_.reserve(x_store_.rows() + extra, x_store_.cols());
    y_store_.reserve(y_store_.size() + extra);
    rows_store_.reserve(rows_store_.size() + extra);
  }
  inner_->reserve_additional(extra);
}

WorkspaceBound ResilientBackend::workspace_bound(std::size_t n0,
                                                 std::size_t m0,
                                                 std::size_t budget) const {
  return inner_->workspace_bound(n0, m0, budget);
}

std::string ResilientBackend::save_state() const {
  const std::string inner_state = inner_->save_state();
  if (rung_ == 0 && breaker_.total_failures() == 0 && breaker_.trips() == 0) {
    // Untouched decorator: stay byte-compatible with undecorated
    // checkpoints (and keep exact-backend state empty).
    return inner_state;
  }
  std::ostringstream os;
  os << "resil v1;rung=" << rung_ << ";health="
     << static_cast<unsigned>(health_) << ";breaker="
     << breaker_.consecutive_failures() << ',' << breaker_.total_failures()
     << ',' << breaker_.ok_streak() << ',' << breaker_.trips() << ";thetas=";
  for (std::size_t r = 0; r < rung_; ++r) {
    if (r != 0) os << '|';
    for (std::size_t i = 0; i < rung_theta_[r].size(); ++i) {
      os << (i == 0 ? "" : ",") << hex_bits(rung_theta_[r][i]);
    }
  }
  os << ";inner=" << inner_state.size() << ':' << inner_state;
  return os.str();
}

void ResilientBackend::restore_state(const std::string& state) {
  constexpr std::string_view kTag = "resil v1;";
  if (state.compare(0, kTag.size(), kTag) != 0) {
    // Undecorated state: the decorator was untouched when it was saved.
    inner_->restore_state(state);
    return;
  }
  std::string_view rest = std::string_view(state).substr(kTag.size());
  const auto take = [&](std::string_view prefix) {
    if (rest.substr(0, prefix.size()) != prefix) {
      throw std::runtime_error("resilient backend: malformed state near '" +
                               std::string(rest.substr(0, 24)) + "'");
    }
    rest.remove_prefix(prefix.size());
    const std::size_t semi = rest.find(';');
    if (semi == std::string_view::npos) {
      throw std::runtime_error("resilient backend: truncated state");
    }
    const std::string_view field = rest.substr(0, semi);
    rest.remove_prefix(semi + 1);
    return field;
  };
  const auto to_u64 = [](std::string_view text) {
    std::uint64_t v = 0;
    for (const char c : text) {
      if (c < '0' || c > '9') {
        throw std::runtime_error("resilient backend: bad number in state");
      }
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  };
  const std::uint64_t rung = to_u64(take("rung="));
  if (rung >= ladder_.size()) {
    throw std::runtime_error("resilient backend: state rung out of range");
  }
  const std::uint64_t health = to_u64(take("health="));
  if (health > static_cast<unsigned>(res::Health::kHalted)) {
    throw std::runtime_error("resilient backend: bad health in state");
  }
  const std::string_view breaker = take("breaker=");
  std::array<std::uint64_t, 4> counters{};
  {
    std::size_t begin = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t comma = breaker.find(',', begin);
      const bool last = i == 3;
      if (last != (comma == std::string_view::npos)) {
        throw std::runtime_error("resilient backend: bad breaker in state");
      }
      counters[i] = to_u64(breaker.substr(
          begin, last ? std::string_view::npos : comma - begin));
      begin = comma + 1;
    }
  }
  const std::string_view thetas = take("thetas=");
  std::vector<std::vector<double>> parsed_thetas;
  if (!thetas.empty()) {
    std::size_t begin = 0;
    for (;;) {
      const std::size_t bar = thetas.find('|', begin);
      const std::string_view one = thetas.substr(
          begin, bar == std::string_view::npos ? std::string_view::npos
                                               : bar - begin);
      std::vector<double> values;
      if (!one.empty()) {
        std::size_t vb = 0;
        for (;;) {
          const std::size_t comma = one.find(',', vb);
          values.push_back(bits_from_hex(std::string(one.substr(
              vb, comma == std::string_view::npos ? std::string_view::npos
                                                  : comma - vb))));
          if (comma == std::string_view::npos) break;
          vb = comma + 1;
        }
      }
      parsed_thetas.push_back(std::move(values));
      if (bar == std::string_view::npos) break;
      begin = bar + 1;
    }
  }
  if (rest.substr(0, 6) != "inner=") {
    throw std::runtime_error("resilient backend: missing inner state");
  }
  rest.remove_prefix(6);
  const std::size_t colon = rest.find(':');
  if (colon == std::string_view::npos) {
    throw std::runtime_error("resilient backend: malformed inner state");
  }
  const std::uint64_t inner_len = to_u64(rest.substr(0, colon));
  rest.remove_prefix(colon + 1);
  if (rest.size() != inner_len) {
    throw std::runtime_error("resilient backend: inner state length mismatch");
  }

  rung_ = rung;
  health_ = static_cast<res::Health>(health);
  breaker_.restore(counters[0], counters[1], counters[2], counters[3]);
  for (std::size_t r = 0; r < rung_theta_.size(); ++r) {
    rung_theta_[r] = r < parsed_thetas.size() ? parsed_thetas[r]
                                              : std::vector<double>{};
  }
  inner_ = make_inner(ladder_[rung_]);
  inner_->restore_state(std::string(rest));
}

std::unique_ptr<PosteriorBackend> make_resilient_backend(
    const BackendOptions& options, const core::resilience::Options& resilience,
    ResilientBackend::KernelFactory kernel_factory,
    const GprOptions& fit_options) {
  if (!resilience.enabled) {
    return make_backend(options, kernel_factory(), fit_options);
  }
  return std::make_unique<ResilientBackend>(options, resilience,
                                            std::move(kernel_factory),
                                            fit_options);
}

}  // namespace alamr::gp
