#pragma once

// Finite-volume time integrator over the quadtree mesh, instrumented to
// produce the execution profiles the machine model consumes.
//
// Between regrids the mesh topology is constant; the solver records one
// MeshTopology snapshot per such "epoch" together with the number of steps
// taken in it. The machine model later prices every epoch under a given
// node count, so one physics run serves all values of the machine
// parameter p — exactly how the paper's features factor (p is a machine
// parameter; mx, maxlevel, r0, rhoin determine the physics).

#include <cstddef>
#include <vector>

#include "alamr/amr/mesh.hpp"

namespace alamr::amr {

/// Constant-topology phase of the run.
struct EpochProfile {
  MeshTopology topology;
  std::size_t steps = 0;
};

/// Everything the campaign needs from one physics run.
struct SolverStats {
  std::size_t steps = 0;
  std::size_t total_cell_updates = 0;
  std::size_t peak_cells = 0;
  std::size_t peak_leaves = 0;
  std::size_t regrids = 0;
  double final_time = 0.0;
  double initial_mass = 0.0;
  double final_mass = 0.0;
  int finest_level = 0;
  std::vector<std::size_t> final_leaves_per_level;
  std::vector<EpochProfile> epochs;
};

class FvSolver {
 public:
  explicit FvSolver(const ShockBubbleProblem& problem);

  QuadtreeMesh& mesh() noexcept { return mesh_; }
  const QuadtreeMesh& mesh() const noexcept { return mesh_; }

  /// Advances to problem.final_time (or max_steps, whichever first) and
  /// returns the instrumented statistics. Callable once per solver.
  SolverStats run(std::size_t max_steps = 20000);

  /// One time step of size dt (ghosts must be filled). First-order: an
  /// unsplit Godunov update. Second-order: two dimensional-split
  /// MUSCL-Hancock sweeps with a ghost refill in between, alternating the
  /// sweep order each step. Exposed for tests.
  void step(double dt);

 private:
  void step_first_order(double dt);
  /// One MUSCL-Hancock sweep over every leaf; x_direction selects the
  /// sweep axis.
  void sweep_second_order(double dt, bool x_direction);

  QuadtreeMesh mesh_;
  std::vector<Cons> scratch_;
  std::vector<Prim> prims_;
  std::size_t step_parity_ = 0;
  bool ran_ = false;
};

}  // namespace alamr::amr
