// Tests for CSV persistence of datasets.

#include "alamr/data/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace {

using namespace alamr::data;
using alamr::linalg::Matrix;

Dataset sample_dataset() {
  Dataset d;
  d.feature_names = {"p", "mx", "maxlevel", "r0", "rhoin"};
  d.x = Matrix{{4.0, 8.0, 3.0, 0.2, 0.02}, {32.0, 32.0, 6.0, 0.5, 0.5}};
  d.wallclock = {1.97, 4262.73};
  d.cost = {0.002, 11.853};
  d.memory = {0.02, 32.56};
  return d;
}

TEST(Csv, StringRoundTripPreservesEverything) {
  const Dataset original = sample_dataset();
  const Dataset parsed = from_csv_string(to_csv_string(original));
  EXPECT_EQ(parsed.feature_names, original.feature_names);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (std::size_t j = 0; j < original.dim(); ++j) {
      EXPECT_DOUBLE_EQ(parsed.x(i, j), original.x(i, j));
    }
    EXPECT_DOUBLE_EQ(parsed.wallclock[i], original.wallclock[i]);
    EXPECT_DOUBLE_EQ(parsed.cost[i], original.cost[i]);
    EXPECT_DOUBLE_EQ(parsed.memory[i], original.memory[i]);
  }
}

TEST(Csv, HeaderFormat) {
  const std::string text = to_csv_string(sample_dataset());
  EXPECT_EQ(text.substr(0, text.find('\n')),
            "p,mx,maxlevel,r0,rhoin,wallclock_s,cost_nh,maxrss_mb");
}

TEST(Csv, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "alamr_test.csv";
  const Dataset original = sample_dataset();
  write_csv(original, path);
  const Dataset loaded = read_csv(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.cost[1], original.cost[1]);
  std::filesystem::remove(path);
}

TEST(Csv, RejectsMalformedInput) {
  EXPECT_THROW(from_csv_string(""), std::runtime_error);
  EXPECT_THROW(from_csv_string("a,b\n1,2\n"), std::runtime_error);  // < 4 cols
  EXPECT_THROW(from_csv_string("a,wallclock_s,cost_nh,maxrss_mb\n1,2,3\n"),
               std::runtime_error);  // wrong field count
  EXPECT_THROW(from_csv_string("a,wallclock_s,cost_nh,maxrss_mb\n1,x,3,4\n"),
               std::runtime_error);  // non-numeric
}

TEST(Csv, SkipsBlankLines) {
  const Dataset parsed = from_csv_string(
      "f0,wallclock_s,cost_nh,maxrss_mb\n1,2,3,4\n\n5,6,7,8\n");
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.memory[1], 8.0);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/path/file.csv"), std::runtime_error);
}

TEST(Csv, PreservesPrecision) {
  Dataset d;
  d.feature_names = {"f"};
  d.x = Matrix{{0.1234567890123456}};
  d.wallclock = {1e-17};
  d.cost = {3.141592653589793};
  d.memory = {2.718281828459045};
  const Dataset parsed = from_csv_string(to_csv_string(d));
  EXPECT_DOUBLE_EQ(parsed.x(0, 0), d.x(0, 0));
  EXPECT_DOUBLE_EQ(parsed.cost[0], d.cost[0]);
}

}  // namespace
