#pragma once

// Reusable backend-parity harness (DESIGN.md §12): runs any
// PosteriorBackend configuration through the repo's pinned AL recipes and
// compares the full trajectory CSV against a recorded golden.
//
//   - fig4 recipe: byte-for-byte the GoldenTrajectory configuration
//     (synthetic RGMA, seed 2024, 50 iterations) — with BackendKind::
//     kExact it must reproduce tests/golden/rgma_seed2024.csv exactly.
//   - fig5 QUICK recipe: the Fig.-5 RMSE-progression shape (larger nInit,
//     shorter horizon) at test scale.
//
// Approximate backends are pinned by their own tolerance goldens
// (tests/golden/backend_*.csv): every non-numeric cell — headers, row
// indices, censor kinds, i.e. each discrete acquisition decision — must
// match exactly, numeric cells within a relative tolerance that absorbs
// SIMD-dispatch drift but fails loudly on real numerical regressions.
//
// Regenerate the backend goldens with scripts/regen_goldens.sh (refuses
// when the exact backend's bytes moved; ALAMR_REGEN_GOLDEN=1 under the
// hood).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alamr/core/export.hpp"
#include "alamr/core/parallel.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/core/strategies.hpp"
#include "alamr/gp/backend.hpp"
#include "synthetic_dataset.hpp"

namespace alamr::testing {

/// One pinned AL configuration. Everything is seeded; nothing reads the
/// environment.
struct ParityRecipe {
  const char* name;
  std::size_t dataset_size;
  std::uint64_t dataset_seed;
  std::size_t n_test;
  std::size_t n_init;
  std::size_t iterations;
  std::uint64_t partition_seed;
  std::uint64_t run_seed;
};

/// The GoldenTrajectory configuration (paper Fig. 4 shape): must keep
/// matching golden_csv() in test_golden_trajectory.cpp so the exact
/// backend stays pinned to tests/golden/rgma_seed2024.csv.
inline ParityRecipe fig4_recipe() {
  return {"fig4", 320, 2024, 60, 25, 50, 11, 2024};
}

/// Fig. 5 QUICK shape: a larger initial design and a shorter acquisition
/// horizon, distinct seeds — exercises the backends from a different
/// starting posterior.
inline ParityRecipe fig5_quick_recipe() {
  return {"fig5", 320, 2025, 60, 50, 30, 13, 2025};
}

inline core::AlOptions recipe_options(const ParityRecipe& recipe,
                                      const gp::BackendOptions& backend) {
  core::AlOptions options;
  options.n_test = recipe.n_test;
  options.n_init = recipe.n_init;
  options.max_iterations = recipe.iterations;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 40;
  options.refit.restarts = 0;
  options.refit.max_opt_iterations = 4;
  options.backend = backend;
  return options;
}

/// Runs the recipe under the given backend and returns the trajectory.
inline core::TrajectoryResult run_recipe(const ParityRecipe& recipe,
                                         const gp::BackendOptions& backend,
                                         std::size_t threads = 1) {
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(
      recipe.dataset_size, recipe.dataset_seed);
  const core::AlOptions options = recipe_options(recipe, backend);
  const core::AlSimulator simulator(dataset, options);
  const core::Rgma rgma(simulator.memory_limit_log10());

  stats::Rng partition_rng(recipe.partition_seed);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  core::set_global_parallel_threads(threads);
  stats::Rng rng(recipe.run_seed);
  const core::TrajectoryResult result =
      simulator.run_with_partition(rgma, partition, rng);
  core::set_global_parallel_threads(0);
  return result;
}

inline std::string recipe_csv(const ParityRecipe& recipe,
                              const gp::BackendOptions& backend,
                              std::size_t threads = 1) {
  return core::trajectory_to_csv(run_recipe(recipe, backend, threads));
}

/// Headline trajectory metrics for RMSE/CC/CR parity gates.
struct ParitySummary {
  double cc = 0.0;
  double cr = 0.0;
  double rmse_cost = 0.0;
  double rmse_mem = 0.0;
};

inline ParitySummary summarize(const core::TrajectoryResult& result) {
  ParitySummary s;
  if (!result.iterations.empty()) {
    const core::IterationRecord& last = result.iterations.back();
    s.cc = last.cumulative_cost;
    s.cr = last.cumulative_regret;
    s.rmse_cost = last.rmse_cost;
    s.rmse_mem = last.rmse_mem;
  }
  return s;
}

// --- Golden-file plumbing ---------------------------------------------------

inline std::filesystem::path golden_path(const std::string& file) {
  return std::filesystem::path(ALAMR_GOLDEN_DIR) / file;
}

inline std::string read_golden(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

inline bool regenerating_goldens() {
  const char* env = std::getenv("ALAMR_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Regeneration hook: under ALAMR_REGEN_GOLDEN=1 writes `csv` to `path`
/// and returns true (caller should GTEST_SKIP).
inline bool maybe_regenerate(const std::string& csv,
                             const std::filesystem::path& path) {
  if (!regenerating_goldens()) return false;
  std::ofstream out(path, std::ios::binary);
  EXPECT_TRUE(out.is_open()) << "cannot write " << path;
  out << csv;
  return true;
}

// --- Tolerant CSV comparison ------------------------------------------------

namespace detail {

inline std::vector<std::string> split_csv(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

inline bool parse_csv_double(const std::string& token, double& value) {
  if (token.empty()) return false;
  char* end = nullptr;
  value = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

}  // namespace detail

/// Cell-by-cell trajectory comparison: numeric cells within `rel_tol`
/// relative, everything else (headers, row indices, censor kinds — the
/// discrete acquisition decisions) byte-identical.
inline void expect_csv_parity(const std::string& got,
                              const std::string& expect, double rel_tol) {
  const auto got_lines = detail::split_csv(got, '\n');
  const auto expect_lines = detail::split_csv(expect, '\n');
  ASSERT_EQ(got_lines.size(), expect_lines.size()) << "row count moved";
  for (std::size_t line = 0; line < got_lines.size(); ++line) {
    const auto got_cells = detail::split_csv(got_lines[line], ',');
    const auto expect_cells = detail::split_csv(expect_lines[line], ',');
    ASSERT_EQ(got_cells.size(), expect_cells.size()) << "line " << line;
    for (std::size_t col = 0; col < got_cells.size(); ++col) {
      double g = 0.0;
      double e = 0.0;
      if (detail::parse_csv_double(got_cells[col], g) &&
          detail::parse_csv_double(expect_cells[col], e)) {
        if (g == e) continue;  // exact integers, -0.0 == 0.0
        const double scale = std::max(std::abs(e), std::abs(g));
        EXPECT_LE(std::abs(g - e), rel_tol * scale)
            << "line " << line << " col " << col << ": " << got_cells[col]
            << " vs " << expect_cells[col];
      } else {
        EXPECT_EQ(got_cells[col], expect_cells[col])
            << "line " << line << " col " << col;
      }
    }
  }
}

/// Backend golden gate: byte-compare for the exact backend, tolerance
/// parity for approximate ones. Returns true when the caller should
/// GTEST_SKIP (regeneration ran).
inline bool check_against_golden(const std::string& csv,
                                 const std::string& golden_file,
                                 double rel_tol) {
  const std::filesystem::path path = golden_path(golden_file);
  if (maybe_regenerate(csv, path)) return true;
  if (rel_tol <= 0.0) {
    EXPECT_EQ(csv, read_golden(path));
  } else {
    expect_csv_parity(csv, read_golden(path), rel_tol);
  }
  return false;
}

}  // namespace alamr::testing
