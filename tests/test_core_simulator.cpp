// Tests for the Algorithm-1 simulator: bookkeeping, metric recording,
// early termination, and determinism. Uses a small synthetic dataset so
// each trajectory runs in well under a second.

#include "alamr/core/simulator.hpp"

#include "alamr/core/batch.hpp"
#include "alamr/core/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "synthetic_dataset.hpp"

namespace {

using namespace alamr::core;
using alamr::stats::Rng;

AlOptions fast_options(std::size_t n_init = 10, std::size_t max_iters = 15) {
  AlOptions options;
  options.n_test = 40;
  options.n_init = n_init;
  options.max_iterations = max_iters;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 25;
  options.refit.max_opt_iterations = 5;
  return options;
}

const alamr::data::Dataset& dataset() {
  static const auto d = alamr::testing::synthetic_amr_dataset(120, 4242);
  return d;
}

TEST(AlSimulator, RejectsTooSmallDataset) {
  const auto tiny = alamr::testing::synthetic_amr_dataset(30, 1);
  AlOptions options;
  options.n_test = 25;
  options.n_init = 10;
  EXPECT_THROW(AlSimulator(tiny, options), std::invalid_argument);
}

TEST(AlSimulator, MemoryLimitRuleMatchesPaperAnchor) {
  // The default L_mem reproduces the paper's anchor (7.53 MB limit vs
  // 8.00 MB median): the median of log10 memory, so roughly half the
  // samples exceed the limit.
  const AlSimulator sim(dataset(), fast_options());
  const auto log_mem = alamr::data::log10_transform(dataset().memory);
  std::size_t above = 0;
  for (const double m : log_mem) {
    if (m >= sim.memory_limit_log10()) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / log_mem.size(), 0.5, 0.05);
  EXPECT_NEAR(std::pow(10.0, sim.memory_limit_log10()), sim.memory_limit_mb(),
              1e-9);
}

TEST(AlSimulator, ExplicitMemoryLimitHonored) {
  AlOptions options = fast_options();
  options.memory_limit_log10 = 0.3;
  const AlSimulator sim(dataset(), options);
  EXPECT_DOUBLE_EQ(sim.memory_limit_log10(), 0.3);
}

TEST(AlSimulator, TrajectoryBookkeeping) {
  const AlSimulator sim(dataset(), fast_options(10, 20));
  Rng rng(1);
  const TrajectoryResult traj = sim.run(RandUniform(), rng);

  EXPECT_EQ(traj.strategy_name, "RandUniform");
  EXPECT_EQ(traj.iterations.size(), 20u);
  EXPECT_FALSE(traj.early_stopped);

  // Selected rows are distinct, come from the Active partition, and the
  // iteration indices are sequential.
  std::set<std::size_t> selected;
  const std::set<std::size_t> active(traj.partition.active.begin(),
                                     traj.partition.active.end());
  double cc = 0.0;
  for (std::size_t i = 0; i < traj.iterations.size(); ++i) {
    const IterationRecord& rec = traj.iterations[i];
    EXPECT_EQ(rec.iteration, i);
    EXPECT_TRUE(active.contains(rec.dataset_row));
    EXPECT_TRUE(selected.insert(rec.dataset_row).second) << "row selected twice";
    EXPECT_EQ(rec.candidates_before, traj.partition.active.size() - i);
    EXPECT_DOUBLE_EQ(rec.actual_cost, dataset().cost[rec.dataset_row]);
    EXPECT_DOUBLE_EQ(rec.actual_memory, dataset().memory[rec.dataset_row]);
    cc += rec.actual_cost;
    EXPECT_NEAR(rec.cumulative_cost, cc, 1e-12);
  }
}

TEST(AlSimulator, CumulativeRegretMatchesDefinition) {
  AlOptions options = fast_options(10, 25);
  // Put the limit low enough that violations actually occur.
  const auto log_mem = alamr::data::log10_transform(dataset().memory);
  std::vector<double> sorted(log_mem);
  std::sort(sorted.begin(), sorted.end());
  options.memory_limit_log10 = sorted[sorted.size() / 2];  // median

  const AlSimulator sim(dataset(), options);
  Rng rng(3);
  const TrajectoryResult traj = sim.run(RandUniform(), rng);
  double cr = 0.0;
  for (const IterationRecord& rec : traj.iterations) {
    if (rec.actual_memory >= traj.memory_limit_mb) cr += rec.actual_cost;
    EXPECT_NEAR(rec.cumulative_regret, cr, 1e-12);
  }
  EXPECT_GT(cr, 0.0);  // median limit: half the candidates violate
}

TEST(AlSimulator, RmseRecordedAndFiniteAndPositivePredictions) {
  const AlSimulator sim(dataset(), fast_options(15, 10));
  Rng rng(4);
  const TrajectoryResult traj = sim.run(MaxSigma(), rng);
  EXPECT_GT(traj.initial_rmse_cost, 0.0);
  for (const IterationRecord& rec : traj.iterations) {
    EXPECT_TRUE(std::isfinite(rec.rmse_cost));
    EXPECT_TRUE(std::isfinite(rec.rmse_mem));
    EXPECT_GT(rec.rmse_cost, 0.0);
  }
}

TEST(AlSimulator, LearningReducesCostRmseForUncertaintySampling) {
  // After enough uncertainty-driven samples the model should beat the
  // initial fit on test RMSE (the basic premise of AL).
  const AlSimulator sim(dataset(), fast_options(10, 40));
  Rng rng(5);
  const TrajectoryResult traj = sim.run(MaxSigma(), rng);
  EXPECT_LT(traj.iterations.back().rmse_cost, traj.initial_rmse_cost);
}

TEST(AlSimulator, RgmaStopsEarlyWhenNothingSafe) {
  AlOptions options = fast_options(10, 0);  // run to exhaustion
  // Limit below every sample's memory: no safe candidate ever exists.
  options.memory_limit_log10 = -10.0;
  const AlSimulator sim(dataset(), options);
  Rng rng(6);
  const TrajectoryResult traj =
      sim.run(Rgma(options.memory_limit_log10), rng);
  EXPECT_TRUE(traj.early_stopped);
  EXPECT_TRUE(traj.iterations.empty());
}

TEST(AlSimulator, RunToExhaustionConsumesAllActives) {
  AlOptions options = fast_options(10, 0);
  const auto small = alamr::testing::synthetic_amr_dataset(70, 9);
  AlOptions o2 = options;
  o2.n_test = 30;
  o2.n_init = 10;
  const AlSimulator sim(small, o2);
  Rng rng(7);
  const TrajectoryResult traj = sim.run(RandUniform(), rng);
  EXPECT_EQ(traj.iterations.size(), 30u);  // 70 - 30 test - 10 init
}

TEST(AlSimulator, DeterministicGivenSeed) {
  const AlSimulator sim(dataset(), fast_options(10, 8));
  const auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    const TrajectoryResult traj = sim.run(RandGoodness(), rng);
    std::vector<std::size_t> rows;
    for (const auto& rec : traj.iterations) rows.push_back(rec.dataset_row);
    return rows;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(AlSimulator, FixedPartitionIsolatesStrategyRandomness) {
  const AlSimulator sim(dataset(), fast_options(10, 8));
  Rng setup(21);
  const auto partition = alamr::data::make_partition(
      dataset().size(), sim.options().n_test, sim.options().n_init, setup);
  Rng r1(1);
  Rng r2(1);
  const auto a = sim.run_with_partition(MinPred(), partition, r1);
  const auto b = sim.run_with_partition(MinPred(), partition, r2);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].dataset_row, b.iterations[i].dataset_row);
  }
}

TEST(AlSimulator, MinPredSelectsCheapSamples) {
  // MinPred's cumulative cost must be far below RandUniform's on the same
  // partition (paper Fig. 2's central observation).
  const AlSimulator sim(dataset(), fast_options(15, 20));
  Rng setup(31);
  const auto partition = alamr::data::make_partition(
      dataset().size(), sim.options().n_test, sim.options().n_init, setup);
  Rng r1(2);
  Rng r2(2);
  const auto greedy = sim.run_with_partition(MinPred(), partition, r1);
  const auto uniform = sim.run_with_partition(RandUniform(), partition, r2);
  EXPECT_LT(greedy.iterations.back().cumulative_cost,
            0.5 * uniform.iterations.back().cumulative_cost);
}

TEST(AlSimulator, RmseStrideCarriesLastValue) {
  AlOptions options = fast_options(10, 9);
  options.rmse_stride = 3;
  const AlSimulator sim(dataset(), options);
  Rng rng(8);
  const TrajectoryResult traj = sim.run(RandUniform(), rng);
  // Within a stride the recorded RMSE is constant.
  EXPECT_DOUBLE_EQ(traj.iterations[1].rmse_cost, traj.iterations[0].rmse_cost);
  EXPECT_DOUBLE_EQ(traj.iterations[2].rmse_cost, traj.iterations[0].rmse_cost);
}

TEST(AlSimulator, RmseStrideFinalRecordIsFreshlyEvaluated) {
  // RMSE evaluation draws nothing from the rng, so a strided run selects
  // the exact same rows as a dense (stride=1) run on the same partition —
  // the dense run's records are the ground truth for what "fresh" means.
  AlOptions dense_options = fast_options(10, 10);
  AlOptions strided_options = dense_options;
  strided_options.rmse_stride = 4;  // budget 10 is NOT a multiple of 4

  const AlSimulator dense_sim(dataset(), dense_options);
  const AlSimulator strided_sim(dataset(), strided_options);
  Rng setup(51);
  const auto partition = alamr::data::make_partition(
      dataset().size(), dense_options.n_test, dense_options.n_init, setup);
  Rng r1(9);
  Rng r2(9);
  const auto dense = dense_sim.run_with_partition(RandUniform(), partition, r1);
  const auto strided =
      strided_sim.run_with_partition(RandUniform(), partition, r2);
  ASSERT_EQ(dense.iterations.size(), 10u);
  ASSERT_EQ(strided.iterations.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    ASSERT_EQ(strided.iterations[i].dataset_row, dense.iterations[i].dataset_row);
  }

  // Evaluated iterations (0, 4, 8) and the final one (9) match the dense
  // run bit-for-bit; the final record is fresh even though 9 % 4 != 0.
  for (const std::size_t i : {0u, 4u, 8u, 9u}) {
    EXPECT_DOUBLE_EQ(strided.iterations[i].rmse_cost,
                     dense.iterations[i].rmse_cost)
        << "iteration " << i;
    EXPECT_DOUBLE_EQ(strided.iterations[i].rmse_mem,
                     dense.iterations[i].rmse_mem)
        << "iteration " << i;
    EXPECT_DOUBLE_EQ(strided.iterations[i].rmse_cost_weighted,
                     dense.iterations[i].rmse_cost_weighted)
        << "iteration " << i;
  }
  // In-between iterations carry the previous evaluated value instead.
  for (const std::size_t i : {1u, 2u, 3u}) {
    EXPECT_DOUBLE_EQ(strided.iterations[i].rmse_cost,
                     strided.iterations[0].rmse_cost);
  }
  for (const std::size_t i : {5u, 6u, 7u}) {
    EXPECT_DOUBLE_EQ(strided.iterations[i].rmse_cost,
                     strided.iterations[4].rmse_cost);
  }
  // The carried values genuinely differ from a fresh evaluation (if they
  // did not, the stride would be untestable on this configuration).
  EXPECT_NE(strided.iterations[3].rmse_cost, dense.iterations[3].rmse_cost);
}

TEST(AlSimulator, RmseStrideFreshFinalOnEarlyStopToo) {
  // RGMA exhaustion ends the trajectory off the stride grid; the last
  // record must still be re-evaluated, not left carrying a stale value.
  // n_init = 20 gives a memory model accurate enough that RGMA's filter
  // engages mid-run instead of at iteration 0 or never.
  AlOptions dense_options = fast_options(20, 0);  // run until nothing is safe
  const auto log_mem = alamr::data::log10_transform(dataset().memory);
  std::vector<double> sorted(log_mem);
  std::sort(sorted.begin(), sorted.end());
  dense_options.memory_limit_log10 = sorted[(3 * sorted.size()) / 5];
  AlOptions strided_options = dense_options;
  strided_options.rmse_stride = 7;

  const AlSimulator dense_sim(dataset(), dense_options);
  const AlSimulator strided_sim(dataset(), strided_options);
  Rng setup(52);
  const auto partition = alamr::data::make_partition(
      dataset().size(), dense_options.n_test, dense_options.n_init, setup);
  const Rgma rgma(dense_options.memory_limit_log10);
  Rng r1(10);
  Rng r2(10);
  const auto dense = dense_sim.run_with_partition(rgma, partition, r1);
  const auto strided = strided_sim.run_with_partition(rgma, partition, r2);
  ASSERT_TRUE(strided.early_stopped);
  ASSERT_EQ(strided.iterations.size(), dense.iterations.size());
  ASSERT_FALSE(strided.iterations.empty());
  EXPECT_DOUBLE_EQ(strided.iterations.back().rmse_cost,
                   dense.iterations.back().rmse_cost);
  EXPECT_DOUBLE_EQ(strided.iterations.back().rmse_mem,
                   dense.iterations.back().rmse_mem);
  EXPECT_DOUBLE_EQ(strided.iterations.back().rmse_cost_weighted,
                   dense.iterations.back().rmse_cost_weighted);
}

TEST(AlSimulator, StopReasonsAreReported) {
  // Iteration budget.
  {
    const AlSimulator sim(dataset(), fast_options(10, 5));
    Rng rng(41);
    const auto traj = sim.run(RandUniform(), rng);
    EXPECT_EQ(traj.stop_reason, StopReason::kIterationBudget);
    EXPECT_FALSE(traj.early_stopped);
  }
  // Active exhausted.
  {
    const auto small = alamr::testing::synthetic_amr_dataset(60, 3);
    AlOptions options = fast_options(10, 0);
    options.n_test = 30;
    const AlSimulator sim(small, options);
    Rng rng(42);
    const auto traj = sim.run(RandUniform(), rng);
    EXPECT_EQ(traj.stop_reason, StopReason::kActiveExhausted);
  }
  // RGMA exhaustion.
  {
    AlOptions options = fast_options(10, 0);
    options.memory_limit_log10 = -10.0;
    const AlSimulator sim(dataset(), options);
    Rng rng(43);
    const auto traj = sim.run(Rgma(-10.0), rng);
    EXPECT_EQ(traj.stop_reason, StopReason::kNoSafeCandidates);
    EXPECT_TRUE(traj.early_stopped);
  }
  EXPECT_FALSE(to_string(StopReason::kStabilized).empty());
}

TEST(AlSimulator, StabilizingStopRuleFires) {
  AlOptions options = fast_options(30, 0);  // plenty of data, run long
  options.stopping.enabled = true;
  options.stopping.tolerance = 0.5;  // generous: stabilizes quickly
  options.stopping.patience = 3;
  options.stopping.min_iterations = 5;
  const AlSimulator sim(dataset(), options);
  Rng rng(44);
  const auto traj = sim.run(RandUniform(), rng);
  EXPECT_EQ(traj.stop_reason, StopReason::kStabilized);
  EXPECT_TRUE(traj.early_stopped);
  EXPECT_GE(traj.iterations.size(), options.stopping.min_iterations);
  EXPECT_LT(traj.iterations.size(), sim.dataset().size());
}

TEST(AlSimulator, StabilizingStopRespectsMinIterations) {
  AlOptions options = fast_options(30, 0);
  options.stopping.enabled = true;
  options.stopping.tolerance = 1e9;  // every iteration counts as stable
  options.stopping.patience = 1;
  options.stopping.min_iterations = 12;
  const AlSimulator sim(dataset(), options);
  Rng rng(45);
  const auto traj = sim.run(RandUniform(), rng);
  EXPECT_EQ(traj.iterations.size(), 12u);
  EXPECT_EQ(traj.stop_reason, StopReason::kStabilized);
}

TEST(AlSimulator, Log2FeatureTransformRunsAndScales) {
  AlOptions options = fast_options(10, 6);
  // p, mx and maxlevel are exponential-ish axes; transform the first two.
  options.feature_transforms = {
      alamr::data::ColumnTransform::kLog2, alamr::data::ColumnTransform::kLog2,
      alamr::data::ColumnTransform::kIdentity, alamr::data::ColumnTransform::kIdentity,
      alamr::data::ColumnTransform::kIdentity};
  const AlSimulator sim(dataset(), options);
  Rng rng(46);
  const auto traj = sim.run(RandGoodness(), rng);
  EXPECT_EQ(traj.iterations.size(), 6u);
  EXPECT_TRUE(std::isfinite(traj.iterations.back().rmse_cost));
}

TEST(AlSimulator, FeatureTransformChangesSelectionGeometry) {
  // The transform changes candidate distances, so trajectories generally
  // differ on the same partition with the same strategy seed.
  AlOptions plain = fast_options(10, 10);
  AlOptions logp = plain;
  logp.feature_transforms = {
      alamr::data::ColumnTransform::kLog2, alamr::data::ColumnTransform::kIdentity,
      alamr::data::ColumnTransform::kIdentity, alamr::data::ColumnTransform::kIdentity,
      alamr::data::ColumnTransform::kIdentity};
  const AlSimulator sim_plain(dataset(), plain);
  const AlSimulator sim_logp(dataset(), logp);
  Rng setup(47);
  const auto partition = alamr::data::make_partition(
      dataset().size(), plain.n_test, plain.n_init, setup);
  Rng r1(1);
  Rng r2(1);
  const auto a = sim_plain.run_with_partition(MaxSigma(), partition, r1);
  const auto b = sim_logp.run_with_partition(MaxSigma(), partition, r2);
  std::vector<std::size_t> rows_a;
  std::vector<std::size_t> rows_b;
  for (const auto& rec : a.iterations) rows_a.push_back(rec.dataset_row);
  for (const auto& rec : b.iterations) rows_b.push_back(rec.dataset_row);
  EXPECT_NE(rows_a, rows_b);
}

TEST(AlSimulator, WeightedRmseRecordedAndDiffersFromUniform) {
  const AlSimulator sim(dataset(), fast_options(15, 8));
  Rng rng(61);
  const auto traj = sim.run(RandUniform(), rng);
  for (const auto& rec : traj.iterations) {
    EXPECT_GT(rec.rmse_cost_weighted, 0.0);
    EXPECT_TRUE(std::isfinite(rec.rmse_cost_weighted));
    // Cost weighting emphasizes the expensive tail, so it must not
    // coincide with the uniform metric on this long-tailed dataset.
    EXPECT_NE(rec.rmse_cost_weighted, rec.rmse_cost);
  }
  const auto series = extract_series(traj, Metric::kRmseCostWeighted);
  ASSERT_EQ(series.size(), traj.iterations.size());
  EXPECT_DOUBLE_EQ(series.back(), traj.iterations.back().rmse_cost_weighted);
}

TEST(AlSimulatorBatched, BatchSizeOneMatchesSequentialStructure) {
  const AlSimulator sim(dataset(), fast_options(10, 12));
  Rng setup(51);
  const auto partition = alamr::data::make_partition(
      dataset().size(), sim.options().n_test, sim.options().n_init, setup);
  Rng rng(9);
  const auto traj = sim.run_batched(RandGoodness(), 1, partition, rng);
  EXPECT_EQ(traj.iterations.size(), 12u);
  EXPECT_NE(traj.strategy_name.find("batch=1"), std::string::npos);
  // One-at-a-time batches retrain after every selection, so candidate
  // counts decrease by exactly one per record.
  for (std::size_t i = 0; i < traj.iterations.size(); ++i) {
    EXPECT_EQ(traj.iterations[i].candidates_before,
              partition.active.size() - i);
  }
}

TEST(AlSimulatorBatched, RoundsShareRmseAndNoDuplicates) {
  const AlSimulator sim(dataset(), fast_options(10, 12));
  Rng setup(52);
  const auto partition = alamr::data::make_partition(
      dataset().size(), sim.options().n_test, sim.options().n_init, setup);
  Rng rng(10);
  const auto traj = sim.run_batched(RandGoodness(), 4, partition, rng);
  ASSERT_EQ(traj.iterations.size(), 12u);
  std::set<std::size_t> rows;
  for (const auto& rec : traj.iterations) {
    EXPECT_TRUE(rows.insert(rec.dataset_row).second);
  }
  // Records within one round carry the same post-round RMSE.
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t k = 1; k < 4; ++k) {
      EXPECT_DOUBLE_EQ(traj.iterations[4 * r].rmse_cost,
                       traj.iterations[4 * r + k].rmse_cost);
    }
  }
  // Candidate count is frozen within a round and drops by 4 across rounds.
  EXPECT_EQ(traj.iterations[0].candidates_before,
            traj.iterations[3].candidates_before);
  EXPECT_EQ(traj.iterations[4].candidates_before,
            traj.iterations[0].candidates_before - 4);
}

TEST(AlSimulatorBatched, RgmaEarlyStopPropagates) {
  AlOptions options = fast_options(10, 0);
  options.memory_limit_log10 = -10.0;
  const AlSimulator sim(dataset(), options);
  Rng setup(53);
  const auto partition = alamr::data::make_partition(
      dataset().size(), options.n_test, options.n_init, setup);
  Rng rng(11);
  const auto traj = sim.run_batched(Rgma(-10.0), 4, partition, rng);
  EXPECT_TRUE(traj.early_stopped);
  EXPECT_EQ(traj.stop_reason, StopReason::kNoSafeCandidates);
  EXPECT_TRUE(traj.iterations.empty());
}

TEST(AlSimulatorBatched, InvalidBatchSizeThrows) {
  const AlSimulator sim(dataset(), fast_options(10, 5));
  Rng setup(54);
  const auto partition = alamr::data::make_partition(
      dataset().size(), sim.options().n_test, sim.options().n_init, setup);
  Rng rng(12);
  EXPECT_THROW(sim.run_batched(RandUniform(), 0, partition, rng),
               std::invalid_argument);
}

TEST(AlSimulatorBatched, CumulativeMetricsConsistent) {
  const AlSimulator sim(dataset(), fast_options(10, 10));
  Rng setup(55);
  const auto partition = alamr::data::make_partition(
      dataset().size(), sim.options().n_test, sim.options().n_init, setup);
  Rng rng(13);
  const auto traj = sim.run_batched(MaxSigma(), 5, partition, rng);
  double cc = 0.0;
  for (const auto& rec : traj.iterations) {
    cc += rec.actual_cost;
    EXPECT_NEAR(rec.cumulative_cost, cc, 1e-12);
  }
}

// Kernel ablation plumbing: every kernel choice must run end to end.
class SimulatorKernelSweep : public ::testing::TestWithParam<KernelChoice> {};

TEST_P(SimulatorKernelSweep, RunsAndRecords) {
  AlOptions options = fast_options(10, 5);
  options.kernel = GetParam();
  const AlSimulator sim(dataset(), options);
  Rng rng(9);
  const TrajectoryResult traj = sim.run(RandGoodness(), rng);
  EXPECT_EQ(traj.iterations.size(), 5u);
  EXPECT_TRUE(std::isfinite(traj.iterations.back().rmse_cost));
}

INSTANTIATE_TEST_SUITE_P(Kernels, SimulatorKernelSweep,
                         ::testing::Values(KernelChoice::kRbf,
                                           KernelChoice::kRbfArd,
                                           KernelChoice::kMatern32,
                                           KernelChoice::kMatern52),
                         [](const ::testing::TestParamInfo<KernelChoice>& info) {
                           switch (info.param) {
                             case KernelChoice::kRbf: return "rbf";
                             case KernelChoice::kRbfArd: return "ard";
                             case KernelChoice::kMatern32: return "matern32";
                             case KernelChoice::kMatern52: return "matern52";
                           }
                           return "unknown";
                         });

// --- Incremental refit and thread-count invariance ------------------------

void expect_identical_records(const TrajectoryResult& a,
                              const TrajectoryResult& b) {
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const IterationRecord& ra = a.iterations[i];
    const IterationRecord& rb = b.iterations[i];
    EXPECT_EQ(ra.dataset_row, rb.dataset_row) << "iteration " << i;
    EXPECT_EQ(ra.candidates_before, rb.candidates_before);
    EXPECT_DOUBLE_EQ(ra.actual_cost, rb.actual_cost);
    EXPECT_DOUBLE_EQ(ra.actual_memory, rb.actual_memory);
    EXPECT_DOUBLE_EQ(ra.predicted_cost_log10, rb.predicted_cost_log10);
    EXPECT_DOUBLE_EQ(ra.predicted_cost_sigma, rb.predicted_cost_sigma);
    EXPECT_DOUBLE_EQ(ra.predicted_mem_log10, rb.predicted_mem_log10);
    EXPECT_DOUBLE_EQ(ra.predicted_mem_sigma, rb.predicted_mem_sigma);
    EXPECT_DOUBLE_EQ(ra.rmse_cost, rb.rmse_cost);
    EXPECT_DOUBLE_EQ(ra.rmse_mem, rb.rmse_mem);
    EXPECT_DOUBLE_EQ(ra.rmse_cost_weighted, rb.rmse_cost_weighted);
    EXPECT_DOUBLE_EQ(ra.cumulative_cost, rb.cumulative_cost);
    EXPECT_DOUBLE_EQ(ra.cumulative_regret, rb.cumulative_regret);
  }
}

TEST(AlSimulator, IncrementalRefitMatchesFullRefit) {
  // The default per-iteration refit (fit_add_point) must reproduce the
  // full-gather-and-fit trajectory exactly, both with warm-started
  // optimization budgets and in the pure-incremental (0-iteration) mode.
  for (const std::size_t refit_iters : {std::size_t{0}, std::size_t{5}}) {
    AlOptions options = fast_options(10, 12);
    options.refit.max_opt_iterations = refit_iters;

    options.incremental_refit = true;
    const AlSimulator incremental(dataset(), options);
    options.incremental_refit = false;
    const AlSimulator full(dataset(), options);

    Rng setup(41);
    const auto partition = alamr::data::make_partition(
        dataset().size(), options.n_test, options.n_init, setup);
    Rng r1(17);
    Rng r2(17);
    const auto a = incremental.run_with_partition(Rgma(incremental.memory_limit_log10()),
                                                  partition, r1);
    const auto b = full.run_with_partition(Rgma(full.memory_limit_log10()),
                                           partition, r2);
    expect_identical_records(a, b);
  }
}

TEST(AlSimulatorParallel, ThreadCountDoesNotChangeTrajectory) {
  // The pool parallelizes predict-variance solves and multistart restarts
  // inside the trajectory; records must be bit-identical for 1 vs 4 lanes.
  const AlSimulator sim(dataset(), fast_options(10, 8));
  const auto run = [&] {
    Rng rng(23);
    return sim.run(Rgma(sim.memory_limit_log10()), rng);
  };
  alamr::core::set_global_parallel_threads(1);
  const TrajectoryResult serial = run();
  alamr::core::set_global_parallel_threads(4);
  const TrajectoryResult threaded = run();
  alamr::core::set_global_parallel_threads(0);  // env/hardware default
  expect_identical_records(serial, threaded);
}

TEST(AlSimulatorParallel, BatchThreadCountDoesNotChangeResults) {
  const AlSimulator sim(dataset(), fast_options(10, 5));
  const Rgma rgma(sim.memory_limit_log10());
  BatchOptions batch;
  batch.trajectories = 3;
  batch.seed = 99;
  batch.threads = 1;
  const auto serial = run_batch(sim, rgma, batch);
  batch.threads = 4;
  const auto threaded = run_batch(sim, rgma, batch);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    expect_identical_records(serial[t], threaded[t]);
  }
}

}  // namespace
