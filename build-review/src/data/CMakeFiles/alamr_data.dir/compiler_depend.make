# Empty compiler generated dependencies file for alamr_data.
# This may be replaced when dependencies are built.
