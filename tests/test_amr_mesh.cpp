// Tests for the quadtree mesh: construction, 2:1 balance, ghost filling,
// refinement/coarsening, SFC ordering, and topology extraction.

#include "alamr/amr/mesh.hpp"

#include "alamr/amr/render.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace {

using namespace alamr::amr;

ShockBubbleProblem small_problem(int mx = 8, int max_level = 2) {
  ShockBubbleProblem problem;
  problem.mx = mx;
  problem.max_level = max_level;
  problem.r0 = 0.35;
  problem.rhoin = 0.1;
  return problem;
}

/// Checks the 2:1 invariant: every leaf's face neighbor is a leaf at the
/// same level, the parent level, or refined exactly one level deeper.
void expect_two_to_one(const QuadtreeMesh& mesh) {
  for (const PatchKey& key : mesh.leaves_in_sfc_order()) {
    for (int face = 0; face < 4; ++face) {
      const PatchKey neighbor = key.face_neighbor(face);
      if (!mesh.in_domain(neighbor)) continue;
      if (mesh.is_leaf(neighbor)) continue;
      if (mesh.is_leaf(neighbor.parent())) continue;
      // Must be refined once: both children along my face must be leaves.
      bool children_exist = true;
      for (int c = 0; c < 4; ++c) {
        // Only check the two children adjacent to the shared face; simpler
        // and sufficient: all four children being leaves also satisfies it.
        (void)c;
      }
      // The mesh's own ghost fill throws on violations; trigger it.
      children_exist = true;
      EXPECT_TRUE(children_exist);
    }
  }
  // Ghost filling performs the strict check internally.
  EXPECT_NO_THROW(const_cast<QuadtreeMesh&>(mesh).fill_ghosts());
}

TEST(Mesh, RootBrickConstruction) {
  ShockBubbleProblem problem = small_problem(8, 0);
  const QuadtreeMesh mesh(problem);
  EXPECT_EQ(mesh.leaf_count(), 2u);  // 2x1 brick
  EXPECT_EQ(mesh.total_cells(), 2u * 64u);
  EXPECT_EQ(mesh.finest_level(), 0);
}

TEST(Mesh, OddMxRejected) {
  ShockBubbleProblem problem = small_problem(9, 1);
  EXPECT_THROW(QuadtreeMesh{problem}, std::invalid_argument);
}

TEST(Mesh, InitialRefinementTracksShockAndBubble) {
  ShockBubbleProblem problem = small_problem(8, 3);
  const QuadtreeMesh mesh(problem);
  // The initial condition has jumps (shock, bubble edge), so refinement
  // must reach the maximum level.
  EXPECT_EQ(mesh.finest_level(), 3);
  EXPECT_GT(mesh.leaf_count(), 2u);
  // Refinement must concentrate at the shock: the leaf containing the
  // shock x-position should be at the finest level.
  EXPECT_EQ(mesh.level_at(problem.shock_x, 0.25), 3);
  // A far-field point (right of everything) should stay coarse.
  EXPECT_LT(mesh.level_at(0.95, 0.45), 3);
}

TEST(Mesh, GeometryHelpers) {
  ShockBubbleProblem problem = small_problem(8, 1);
  const QuadtreeMesh mesh(problem);
  EXPECT_DOUBLE_EQ(mesh.patch_size(0), 0.5);
  EXPECT_DOUBLE_EQ(mesh.patch_size(1), 0.25);
  EXPECT_DOUBLE_EQ(mesh.cell_size(0), 0.5 / 8.0);
  EXPECT_DOUBLE_EQ(mesh.patch_x0(PatchKey{1, 3, 0}), 0.75);
}

TEST(Mesh, InDomainBounds) {
  ShockBubbleProblem problem = small_problem(8, 2);
  const QuadtreeMesh mesh(problem);
  EXPECT_TRUE(mesh.in_domain(PatchKey{0, 0, 0}));
  EXPECT_TRUE(mesh.in_domain(PatchKey{0, 1, 0}));
  EXPECT_FALSE(mesh.in_domain(PatchKey{0, 2, 0}));
  EXPECT_FALSE(mesh.in_domain(PatchKey{0, 0, 1}));
  EXPECT_FALSE(mesh.in_domain(PatchKey{0, -1, 0}));
  EXPECT_TRUE(mesh.in_domain(PatchKey{2, 7, 3}));
  EXPECT_FALSE(mesh.in_domain(PatchKey{2, 8, 0}));
}

TEST(Mesh, TwoToOneBalanceAfterConstruction) {
  const QuadtreeMesh mesh(small_problem(8, 4));
  expect_two_to_one(mesh);
}

TEST(Mesh, SfcOrderVisitsEveryLeafOnce) {
  const QuadtreeMesh mesh(small_problem(8, 3));
  const auto order = mesh.leaves_in_sfc_order();
  EXPECT_EQ(order.size(), mesh.leaf_count());
  std::set<std::tuple<int, int, int>> seen;
  for (const PatchKey& key : order) {
    EXPECT_TRUE(mesh.is_leaf(key));
    seen.insert({key.level, key.i, key.j});
  }
  EXPECT_EQ(seen.size(), order.size());
}

TEST(Mesh, GhostFillSameLevelCopies) {
  // Uniform mesh (max_level 0): ghost cells across the brick seam must
  // equal the neighbor's interior column.
  ShockBubbleProblem problem = small_problem(8, 0);
  QuadtreeMesh mesh(problem);
  mesh.fill_ghosts();
  const Patch& left = mesh.leaf(PatchKey{0, 0, 0});
  const Patch& right = mesh.leaf(PatchKey{0, 1, 0});
  for (int t = 0; t < 8; ++t) {
    EXPECT_DOUBLE_EQ(left.at(8, t).rho, right.at(0, t).rho);
    EXPECT_DOUBLE_EQ(right.at(-1, t).rho, left.at(7, t).rho);
  }
}

TEST(Mesh, GhostFillPhysicalBoundaries) {
  ShockBubbleProblem problem = small_problem(8, 0);
  QuadtreeMesh mesh(problem);
  mesh.fill_ghosts();
  const Patch& left = mesh.leaf(PatchKey{0, 0, 0});
  // Left boundary is inflow: ghosts carry the post-shock state.
  const Cons inflow = to_conserved(problem.post_shock());
  EXPECT_DOUBLE_EQ(left.at(-1, 3).rho, inflow.rho);
  EXPECT_DOUBLE_EQ(left.at(-1, 3).mx, inflow.mx);
  // Bottom boundary is reflecting: ghost mirrors interior with my negated.
  EXPECT_DOUBLE_EQ(left.at(3, -1).rho, left.at(3, 0).rho);
  EXPECT_DOUBLE_EQ(left.at(3, -1).my, -left.at(3, 0).my);
  // Right boundary is outflow: ghost copies interior.
  const Patch& right = mesh.leaf(PatchKey{0, 1, 0});
  EXPECT_DOUBLE_EQ(right.at(8, 5).rho, right.at(7, 5).rho);
}

TEST(Mesh, GhostFillPreservesConstantStateAcrossLevels) {
  // With a constant field, coarse-fine interpolation must reproduce the
  // constant exactly (conservative averaging and piecewise-constant
  // sampling are exact on constants). Physical boundaries are excluded:
  // inflow injects the post-shock state and reflect flips momentum.
  ShockBubbleProblem problem = small_problem(8, 2);
  QuadtreeMesh mesh(problem);
  const Cons constant = to_conserved(Prim{1.3, 0.2, -0.1, 2.0});
  mesh.for_each_cell_set([&](double, double) { return constant; });
  mesh.fill_ghosts();
  mesh.for_each_leaf([&](const Patch& patch) {
    const int mx = patch.mx();
    const PatchKey key = patch.key();
    for (int t = 0; t < mx; ++t) {
      for (int face = 0; face < 4; ++face) {
        if (!mesh.in_domain(key.face_neighbor(face))) continue;  // physical BC
        const Cons& ghost = face == 0   ? patch.at(-1, t)
                            : face == 1 ? patch.at(mx, t)
                            : face == 2 ? patch.at(t, -1)
                                        : patch.at(t, mx);
        EXPECT_NEAR(ghost.rho, constant.rho, 1e-14);
        EXPECT_NEAR(ghost.e, constant.e, 1e-14);
      }
    }
  });
}

TEST(Mesh, RegridCoarsensSmoothField) {
  // Start from the shock-bubble refinement, then overwrite with a field
  // whose density matches the inflow ghosts (the refinement indicator only
  // reads density): regrid passes must coarsen the mesh back to the root.
  ShockBubbleProblem problem = small_problem(8, 3);
  QuadtreeMesh mesh(problem);
  const std::size_t refined_leaves = mesh.leaf_count();
  const Cons uniform = to_conserved(problem.post_shock());
  mesh.for_each_cell_set([&](double, double) { return uniform; });
  for (int round = 0; round < 6; ++round) mesh.regrid();
  EXPECT_LT(mesh.leaf_count(), refined_leaves);
  EXPECT_EQ(mesh.finest_level(), 0);
}

TEST(Mesh, RegridPreservesMassUnderCoarsening) {
  ShockBubbleProblem problem = small_problem(8, 3);
  QuadtreeMesh mesh(problem);
  const double mass_before = mesh.total_mass();
  mesh.regrid();  // with the initial sharp field: mixture of refine/coarsen
  const double mass_after = mesh.total_mass();
  // Conservative averaging keeps mass; piecewise-constant prolongation
  // keeps mass exactly too.
  EXPECT_NEAR(mass_after, mass_before, 1e-10 * std::abs(mass_before) + 1e-12);
}

TEST(Mesh, RegridKeepsTwoToOne) {
  ShockBubbleProblem problem = small_problem(8, 4);
  QuadtreeMesh mesh(problem);
  for (int round = 0; round < 3; ++round) {
    mesh.regrid();
    expect_two_to_one(mesh);
  }
}

TEST(Mesh, TopologyEdgesAreSymmetric) {
  const QuadtreeMesh mesh(small_problem(8, 3));
  const MeshTopology topo = mesh.topology();
  ASSERT_EQ(topo.keys.size(), mesh.leaf_count());
  EXPECT_EQ(topo.total_cells(), mesh.total_cells());
  // Edge symmetry: if n lists m as neighbor, m lists n.
  for (std::size_t n = 0; n < topo.edges.size(); ++n) {
    for (const LeafEdge& edge : topo.edges[n]) {
      bool reciprocal = false;
      for (const LeafEdge& back : topo.edges[edge.neighbor]) {
        if (back.neighbor == n) reciprocal = true;
      }
      EXPECT_TRUE(reciprocal) << "leaf " << n << " -> " << edge.neighbor;
    }
  }
}

TEST(Mesh, TopologyGhostCountsOnUniformMesh) {
  // On a uniform 2-brick mesh every interior face exchanges exactly mx
  // ghost cells, and each leaf's edge count matches its position (the
  // brick seam is the only interior face).
  ShockBubbleProblem problem = small_problem(8, 0);
  const QuadtreeMesh mesh(problem);
  const MeshTopology topo = mesh.topology();
  ASSERT_EQ(topo.keys.size(), 2u);
  for (const auto& edges : topo.edges) {
    ASSERT_EQ(edges.size(), 1u);  // one neighbor each across the seam
    EXPECT_EQ(edges[0].ghost_cells, 8);
  }
}

TEST(Mesh, TopologyCoarseFineGhostCounts) {
  // Across a coarse-fine face: the coarse side receives mx/2 ghosts from
  // each of the two fine children; each fine child receives mx from the
  // coarse patch.
  ShockBubbleProblem problem = small_problem(8, 3);
  const QuadtreeMesh mesh(problem);
  const MeshTopology topo = mesh.topology();
  bool saw_coarse_fine = false;
  for (std::size_t n = 0; n < topo.keys.size(); ++n) {
    for (const LeafEdge& edge : topo.edges[n]) {
      const int my_level = topo.keys[n].level;
      const int nb_level = topo.keys[edge.neighbor].level;
      if (nb_level == my_level + 1) {
        EXPECT_EQ(edge.ghost_cells, 4);  // mx/2 from each fine child
        saw_coarse_fine = true;
      } else if (nb_level == my_level - 1) {
        EXPECT_EQ(edge.ghost_cells, 8);  // full row sampled from coarse
      } else {
        EXPECT_EQ(nb_level, my_level);
        EXPECT_EQ(edge.ghost_cells, 8);
      }
    }
  }
  EXPECT_TRUE(saw_coarse_fine);
}

TEST(Mesh, SecondOrderGhostsFilledToDepthTwo) {
  ShockBubbleProblem problem = small_problem(8, 2);
  problem.order = SpatialOrder::kSecondOrder;
  QuadtreeMesh mesh(problem);
  const Cons constant = to_conserved(Prim{1.1, 0.1, 0.0, 1.5});
  mesh.for_each_cell_set([&](double, double) { return constant; });
  mesh.fill_ghosts();
  mesh.for_each_leaf([&](const Patch& patch) {
    ASSERT_EQ(patch.ghosts(), 2);
    const int mx = patch.mx();
    const PatchKey key = patch.key();
    for (int d = 0; d < 2; ++d) {
      for (int t = 0; t < mx; ++t) {
        for (int face = 0; face < 4; ++face) {
          if (!mesh.in_domain(key.face_neighbor(face))) continue;
          const Cons& ghost = face == 0   ? patch.at(-1 - d, t)
                              : face == 1 ? patch.at(mx + d, t)
                              : face == 2 ? patch.at(t, -1 - d)
                                          : patch.at(t, mx + d);
          EXPECT_NEAR(ghost.rho, constant.rho, 1e-14) << "depth " << d;
        }
      }
    }
  });
}

TEST(Mesh, LevelAndRhoSampling) {
  ShockBubbleProblem problem = small_problem(8, 2);
  const QuadtreeMesh mesh(problem);
  EXPECT_EQ(mesh.level_at(-0.1, 0.2), -1);
  EXPECT_TRUE(std::isnan(mesh.rho_at(-0.1, 0.2)));
  // Inside the bubble the density equals rhoin.
  EXPECT_NEAR(mesh.rho_at(problem.bubble_x, problem.bubble_y), problem.rhoin,
              1e-12);
}

TEST(MeshRender, PgmHeaderAndBounds) {
  const QuadtreeMesh mesh(small_problem(8, 2));
  const std::string pgm =
      alamr::amr::render_pgm(mesh, alamr::amr::RenderField::kDensity, 32, 16);
  EXPECT_EQ(pgm.substr(0, 3), "P2\n");
  EXPECT_NE(pgm.find("32 16"), std::string::npos);
  // All values parse as integers in [0, 255].
  std::istringstream is(pgm);
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  is >> magic >> w >> h >> maxval;
  int value = 0;
  std::size_t count = 0;
  while (is >> value) {
    EXPECT_GE(value, 0);
    EXPECT_LE(value, 255);
    ++count;
  }
  EXPECT_EQ(count, 32u * 16u);
}

TEST(MeshRender, DensityContrastAcrossShock) {
  // Post-shock gas (left) is denser than ambient: the density render must
  // be brighter on the left, and the level render finest at the shock.
  const QuadtreeMesh mesh(small_problem(8, 3));
  const std::string density =
      alamr::amr::render_pgm(mesh, alamr::amr::RenderField::kDensity, 16, 8);
  std::istringstream is(density);
  std::string magic;
  int w = 0;
  int h = 0;
  int maxval = 0;
  is >> magic >> w >> h >> maxval;
  std::vector<int> pixels(16 * 8);
  for (int& p : pixels) is >> p;
  // Middle row: first column (post-shock) brighter than last (ambient).
  EXPECT_GT(pixels[4 * 16 + 0], pixels[4 * 16 + 15]);
  EXPECT_THROW(
      alamr::amr::render_pgm(mesh, alamr::amr::RenderField::kDensity, 1, 1),
      std::invalid_argument);
}

TEST(Mesh, LeavesPerLevelSumsToLeafCount) {
  const QuadtreeMesh mesh(small_problem(8, 3));
  const auto per_level = mesh.leaves_per_level();
  std::size_t total = 0;
  for (const std::size_t c : per_level) total += c;
  EXPECT_EQ(total, mesh.leaf_count());
}

}  // namespace
