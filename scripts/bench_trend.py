#!/usr/bin/env python3
"""Bench-trend regression gate (scripts/check.sh).

Runs the gate benchmarks (BM_PredictBatch, BM_TrajectoryBatch) fresh and
compares each optimized-arm median against the most recent BENCH_PR*.json
that records it. Fails (exit 1) when a fresh median is more than
--tolerance (default 10%) slower than the recorded one.

The recorded files carry the dispatch level they were measured at in
their context block ("simd_level"); a fresh run on a different tier or a
different host is not comparable, so the gate SKIPS (exit 0, with a
message) when the levels differ, and scripts/check.sh skips the whole
gate under ALAMR_SKIP_BENCH_TREND=1 for unrelated CI hosts. Records
whose context predates the simd_level key (PR3/PR5, measured on the
scalar-only seed recipe) are compared only when the fresh run is pinned
to scalar.

Usage: bench_trend.py <bench-binary> [--tolerance 0.10] [--repetitions 5]
"""

import argparse
import glob
import json
import re
import subprocess
import sys
import tempfile

GATE_FAMILIES = (
    "BM_PredictBatch",
    "BM_TrajectoryBatch",
    "BM_BackendFit",
    "BM_BackendPredictBatch",
    "BM_SweepIncremental",
    "BM_SessionThroughput",
)


def recorded_baselines():
    """{family/size: (optimized_ns, source_file, recorded_level)} from the
    highest-numbered BENCH_PR*.json recording each benchmark."""
    baselines = {}
    paths = sorted(
        glob.glob("BENCH_PR*.json"),
        key=lambda p: int(re.search(r"(\d+)", p).group(1)),
    )
    for path in paths:  # ascending: later PRs overwrite earlier records
        with open(path) as f:
            data = json.load(f)
        level = data.get("context", {}).get("simd_level", "")
        for key, row in data.get("benchmarks", {}).items():
            if key.split("/")[0] in GATE_FAMILIES and "optimized_ns" in row:
                baselines[key] = (row["optimized_ns"], path, level)
    return baselines


def fresh_medians(bench_binary, repetitions):
    """{family/size: optimized-arm median ns} plus the active simd level."""
    out = tempfile.NamedTemporaryFile(suffix=".json", delete=False)
    out.close()
    # Only the optimized arm (/1) is gated, so only it is re-measured —
    # the /0 arms exist to record speedups at PR time, and some (the
    # 1024-session serial serve) are far too slow for a CI gate.
    pattern = "|".join(GATE_FAMILIES)
    subprocess.run(
        [
            bench_binary,
            f"--benchmark_filter=({pattern})/.*/1$",
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=true",
            "--benchmark_min_time=0.1",
            f"--benchmark_out={out.name}",
            "--benchmark_out_format=json",
        ],
        check=True,
        stdout=subprocess.DEVNULL,
    )
    with open(out.name) as f:
        report = json.load(f)
    to_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    medians = {}
    for b in report["benchmarks"]:
        name = b["name"]
        if not name.endswith("_median"):
            continue
        family, size, arm = name[: -len("_median")].rsplit("/", 2)
        if arm != "1":  # the gate guards the optimized path
            continue
        ns = b["real_time"] * to_ns.get(b.get("time_unit", "ns"), 1.0)
        medians[f"{family}/{size}"] = ns
    return medians, report["context"].get("simd_level", "")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_binary")
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument("--repetitions", type=int, default=5)
    args = parser.parse_args()

    baselines = recorded_baselines()
    if not baselines:
        print("bench-trend: no BENCH_PR*.json baselines found; skipping")
        return 0

    medians, level = fresh_medians(args.bench_binary, args.repetitions)
    failures = []
    for key, (base_ns, source, recorded_level) in sorted(baselines.items()):
        if key not in medians:
            print(f"bench-trend: {key} not in fresh run; skipping")
            continue
        # Pre-dispatch records (no simd_level) were measured on the
        # scalar-only seed recipe.
        comparable = recorded_level or "scalar"
        if comparable != level:
            print(
                f"bench-trend: {key} recorded at level "
                f"'{comparable}' ({source}), fresh run at '{level}'; "
                "not comparable, skipping"
            )
            continue
        fresh_ns = medians[key]
        ratio = fresh_ns / base_ns
        verdict = "OK"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            failures.append(key)
        print(
            f"bench-trend: {key}: {fresh_ns:.0f} ns vs {base_ns:.0f} ns "
            f"({source}) -> {ratio:.2f}x {verdict}"
        )
    if failures:
        print(
            f"bench-trend: FAILED, >{args.tolerance:.0%} slower than "
            f"recorded: {', '.join(failures)}"
        )
        return 1
    print("bench-trend: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
