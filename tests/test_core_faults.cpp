// Unit tests for the deterministic fault-injection framework
// (core/faults.hpp): plan grammar round-trips, counter-based schedules,
// fire caps, scoped installation, and checkpoint counter restore.

#include "alamr/core/faults.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace {

using namespace alamr::core::faults;

TEST(FaultPlan, DefaultIsEmptyAndNeverFires) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    for (std::uint64_t hit = 0; hit < 100; ++hit) {
      EXPECT_FALSE(schedule_fires(plan, static_cast<Site>(s), hit));
    }
  }
}

TEST(FaultPlan, ParsesFullGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=7;acquire.oom:p=0.05;opt.diverge:hits=3|9;"
      "cholesky.non_psd:p=1,max=2");
  EXPECT_EQ(plan.seed(), 7u);
  EXPECT_FALSE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.at(Site::kAcquireOom).probability, 0.05);
  EXPECT_EQ(plan.at(Site::kOptDiverge).hits,
            (std::vector<std::uint64_t>{3, 9}));
  EXPECT_DOUBLE_EQ(plan.at(Site::kCholeskyNonPsd).probability, 1.0);
  EXPECT_EQ(plan.at(Site::kCholeskyNonPsd).max_fires, 2u);
  EXPECT_TRUE(plan.at(Site::kDataNanRow).inert());
  EXPECT_TRUE(plan.at(Site::kAcquireTimeout).inert());
}

TEST(FaultPlan, ToStringRoundTrips) {
  const char* spec =
      "seed=19;acquire.oom:p=0.05;acquire.timeout:p=0.15;"
      "data.nan_row:hits=2|7,max=1";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(plan.to_string(), reparsed.to_string());
  EXPECT_EQ(reparsed.seed(), 19u);
  EXPECT_DOUBLE_EQ(reparsed.at(Site::kAcquireTimeout).probability, 0.15);
  EXPECT_EQ(reparsed.at(Site::kDataNanRow).max_fires, 1u);
  // Identical schedules in every respect that matters: same fire pattern.
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    for (std::uint64_t hit = 0; hit < 500; ++hit) {
      EXPECT_EQ(schedule_fires(plan, static_cast<Site>(s), hit),
                schedule_fires(reparsed, static_cast<Site>(s), hit));
    }
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus.site:p=0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("acquire.oom"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("acquire.oom:p=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("acquire.oom:p=-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("acquire.oom:q=0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("opt.diverge:hits=1|x"), std::invalid_argument);
}

TEST(FaultPlan, RejectionMessagesNameTheOffendingToken) {
  // Property-style sweep: every malformed spec must be rejected with an
  // invalid_argument whose message contains the exact token at fault —
  // an operator pasting a plan into a job script gets pointed at the typo.
  const struct {
    const char* spec;
    const char* token;  // must appear verbatim in the error message
  } kCases[] = {
      {"bogus.site:p=0.1", "bogus.site"},
      {"acquire.oom", "acquire.oom"},
      {"acquire.oom:p=1.5", "1.5"},
      {"acquire.oom:p=-0.1", "-0.1"},
      {"acquire.oom:p=", "p"},
      {"acquire.oom:p=nope", "nope"},
      {"acquire.oom:q=0.1", "q"},
      {"acquire.oom:p=0.1,p=0.2", "p"},
      {"acquire.oom:max=-1", "-1"},
      {"acquire.oom:max=huge", "huge"},
      {"acquire.oom:hits=", "hit"},
      {"opt.diverge:hits=1|x", "x"},
      {"opt.diverge:hits=1||3", "hit"},
      {"seed=abc", "abc"},
      {"seed=-5", "-5"},
      {"seed=1;seed=2", "seed"},
      {"acquire.oom:p=0.1;acquire.oom:p=0.2", "acquire.oom"},
      {"io.torn_write:p=0.1;;io.partial_read:p=0.1", "segment"},
  };
  for (const auto& c : kCases) {
    try {
      FaultPlan::parse(c.spec);
      FAIL() << "spec '" << c.spec << "' was accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.token), std::string::npos)
          << "spec '" << c.spec << "' rejected without naming '" << c.token
          << "': " << e.what();
    }
  }
}

TEST(FaultPlan, IoSitesParseScheduleAndRoundTrip) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=5;io.torn_write:hits=2,max=1;io.partial_read:p=0.25");
  EXPECT_EQ(plan.at(Site::kIoTornWrite).hits,
            (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(plan.at(Site::kIoTornWrite).max_fires, 1u);
  EXPECT_DOUBLE_EQ(plan.at(Site::kIoPartialRead).probability, 0.25);
  const FaultPlan reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(plan.to_string(), reparsed.to_string());

  FaultInjector injector(FaultPlan::parse("io.torn_write:hits=0|3"));
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t i = 0; i < 6; ++i) {
    if (injector.should_fire(Site::kIoTornWrite)) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{0, 3}));
  EXPECT_EQ(injector.fires(Site::kIoPartialRead), 0u);
}

TEST(FaultPlan, SiteNamesRoundTrip) {
  for (std::size_t s = 0; s < kSiteCount; ++s) {
    const Site site = static_cast<Site>(s);
    const auto parsed = parse_site(site_name(site));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(parse_site("not.a.site").has_value());
}

TEST(FaultSchedule, IsPureFunctionOfSeedSiteHit) {
  FaultPlan plan = FaultPlan::parse("seed=42;acquire.oom:p=0.3");
  std::vector<bool> first;
  for (std::uint64_t hit = 0; hit < 1000; ++hit) {
    first.push_back(schedule_fires(plan, Site::kAcquireOom, hit));
  }
  for (std::uint64_t hit = 0; hit < 1000; ++hit) {
    EXPECT_EQ(schedule_fires(plan, Site::kAcquireOom, hit), first[hit]);
  }
  // ...and the empirical rate tracks p.
  std::size_t fires = 0;
  for (const bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 230u);
  EXPECT_LT(fires, 370u);
}

TEST(FaultSchedule, DifferentSeedsGiveDifferentSchedules) {
  const FaultPlan a = FaultPlan::parse("seed=1;acquire.oom:p=0.3");
  const FaultPlan b = FaultPlan::parse("seed=2;acquire.oom:p=0.3");
  std::size_t differing = 0;
  for (std::uint64_t hit = 0; hit < 1000; ++hit) {
    if (schedule_fires(a, Site::kAcquireOom, hit) !=
        schedule_fires(b, Site::kAcquireOom, hit)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 100u);
}

TEST(FaultSchedule, SitesAreIndependent) {
  // Same seed, same probability: the per-site salt must decorrelate the
  // streams (otherwise every site would fail on the same iterations).
  const FaultPlan plan =
      FaultPlan::parse("seed=5;acquire.oom:p=0.3;acquire.timeout:p=0.3");
  std::size_t differing = 0;
  for (std::uint64_t hit = 0; hit < 1000; ++hit) {
    if (schedule_fires(plan, Site::kAcquireOom, hit) !=
        schedule_fires(plan, Site::kAcquireTimeout, hit)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 100u);
}

TEST(FaultInjector, ExplicitHitsFireExactlyThere) {
  FaultInjector injector(FaultPlan::parse("opt.diverge:hits=2|5"));
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (injector.should_fire(Site::kOptDiverge)) fired_at.push_back(i);
  }
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{2, 5}));
  EXPECT_EQ(injector.hits(Site::kOptDiverge), 10u);
  EXPECT_EQ(injector.fires(Site::kOptDiverge), 2u);
}

TEST(FaultInjector, MaxFiresCapsTotal) {
  FaultInjector injector(FaultPlan::parse("cholesky.non_psd:p=1,max=3"));
  std::size_t fires = 0;
  for (int i = 0; i < 20; ++i) {
    if (injector.should_fire(Site::kCholeskyNonPsd)) ++fires;
  }
  EXPECT_EQ(fires, 3u);
  // Hit counters keep advancing past the cap (consultations stay
  // addressable for checkpoint restore).
  EXPECT_EQ(injector.hits(Site::kCholeskyNonPsd), 20u);
}

TEST(FaultInjector, RestoreCountersContinuesSchedule) {
  const FaultPlan plan = FaultPlan::parse("seed=11;data.nan_row:p=0.4");
  // Uninterrupted reference run.
  FaultInjector full(plan);
  std::vector<bool> reference;
  for (int i = 0; i < 50; ++i) {
    reference.push_back(full.should_fire(Site::kDataNanRow));
  }
  // Interrupted at 20, counters carried into a fresh injector.
  FaultInjector first(plan);
  for (int i = 0; i < 20; ++i) first.should_fire(Site::kDataNanRow);
  FaultInjector second(plan);
  second.restore_counters(first.hit_counters(), first.fire_counters());
  for (int i = 20; i < 50; ++i) {
    EXPECT_EQ(second.should_fire(Site::kDataNanRow), reference[i])
        << "consultation " << i;
  }
  EXPECT_EQ(second.hits(Site::kDataNanRow), full.hits(Site::kDataNanRow));
  EXPECT_EQ(second.fires(Site::kDataNanRow), full.fires(Site::kDataNanRow));
}

TEST(FaultScope, FireIsDisarmedOutsideAnyScope) {
  // The suite may run under ALAMR_FAULT_PLAN (the check.sh faults leg);
  // skip the disarmed assertion there — the env injector IS supposed to
  // answer then.
  if (std::getenv("ALAMR_FAULT_PLAN") != nullptr) GTEST_SKIP();
  EXPECT_FALSE(armed());
  EXPECT_EQ(current_injector(), nullptr);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fire(Site::kAcquireOom));
}

TEST(FaultScope, ScopedInjectorArmsAndNests) {
  FaultInjector outer(FaultPlan::parse("acquire.oom:hits=0"));
  FaultInjector inner(FaultPlan::parse("acquire.timeout:hits=0"));
  {
    const ScopedFaultInjector outer_scope(outer);
    EXPECT_TRUE(armed());
    EXPECT_EQ(current_injector(), &outer);
    EXPECT_TRUE(fire(Site::kAcquireOom));  // outer's hit 0
    {
      const ScopedFaultInjector inner_scope(inner);
      EXPECT_EQ(current_injector(), &inner);
      EXPECT_FALSE(fire(Site::kAcquireOom));    // inner has no oom schedule
      EXPECT_TRUE(fire(Site::kAcquireTimeout));
    }
    EXPECT_EQ(current_injector(), &outer);  // restored after nesting
    EXPECT_FALSE(fire(Site::kAcquireOom));  // outer's hit 1: not scheduled
  }
  EXPECT_EQ(current_injector(), nullptr);
  EXPECT_EQ(outer.hits(Site::kAcquireOom), 2u);
  EXPECT_EQ(inner.hits(Site::kAcquireTimeout), 1u);
}

TEST(FaultFlag, ParsesBothArgvForms) {
  {
    const char* raw[] = {"bench", "--fault-plan", "seed=3;acquire.oom:p=0.5"};
    const auto plan =
        parse_fault_flag(3, const_cast<char**>(raw));
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->seed(), 3u);
    EXPECT_DOUBLE_EQ(plan->at(Site::kAcquireOom).probability, 0.5);
  }
  {
    const char* raw[] = {"bench", "--fault-plan=seed=4;opt.diverge:hits=1"};
    const auto plan = parse_fault_flag(2, const_cast<char**>(raw));
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->seed(), 4u);
    EXPECT_EQ(plan->at(Site::kOptDiverge).hits,
              (std::vector<std::uint64_t>{1}));
  }
  {
    const char* raw[] = {"bench", "--trace", "out.json"};
    EXPECT_FALSE(parse_fault_flag(3, const_cast<char**>(raw)).has_value());
  }
}

TEST(FaultFlag, DescribeMentionsEverySite) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=9;acquire.oom:p=0.05;opt.diverge:hits=3,max=1");
  const std::string text = describe(plan);
  EXPECT_NE(text.find("acquire.oom"), std::string::npos);
  EXPECT_NE(text.find("opt.diverge"), std::string::npos);
  EXPECT_NE(text.find("seed"), std::string::npos);
}

}  // namespace
