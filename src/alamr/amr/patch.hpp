#pragma once

// One AMR patch: an mx-by-mx block of finite-volume cells plus a ghost
// layer on each side (one cell for the first-order scheme, two for the
// second-order MUSCL-Hancock scheme).

#include <vector>

#include "alamr/amr/euler.hpp"
#include "alamr/amr/geometry.hpp"

namespace alamr::amr {

class Patch {
 public:
  Patch() = default;
  Patch(PatchKey key, int mx, int ghosts = 1);

  const PatchKey& key() const noexcept { return key_; }
  int mx() const noexcept { return mx_; }
  int ghosts() const noexcept { return ghosts_; }
  /// Interior cell count (mx^2).
  std::size_t cells() const noexcept {
    return static_cast<std::size_t>(mx_) * static_cast<std::size_t>(mx_);
  }

  /// Access including ghosts: i, j in [-ghosts, mx+ghosts-1]; the range
  /// (0..mx-1) is interior.
  Cons& at(int i, int j) noexcept { return data_[index(i, j)]; }
  const Cons& at(int i, int j) const noexcept { return data_[index(i, j)]; }

  /// Sum of a conserved component over interior cells (conservation tests).
  double interior_sum_rho() const noexcept;
  double interior_sum_e() const noexcept;

  /// Maximum of |grad rho| * h / rho over interior cells using one-sided
  /// differences into the ghost layer — the refinement indicator.
  double max_relative_density_jump() const noexcept;

  /// Maximum CFL wave speed over interior cells.
  double max_wave_speed() const noexcept;

 private:
  std::size_t index(int i, int j) const noexcept {
    const int stride = mx_ + 2 * ghosts_;
    return static_cast<std::size_t>(j + ghosts_) * static_cast<std::size_t>(stride) +
           static_cast<std::size_t>(i + ghosts_);
  }

  PatchKey key_;
  int mx_ = 0;
  int ghosts_ = 1;
  std::vector<Cons> data_;  // (mx + 2*ghosts)^2, row-major with ghosts
};

}  // namespace alamr::amr
