# Empty compiler generated dependencies file for tests_robustness.
# This may be replaced when dependencies are built.
