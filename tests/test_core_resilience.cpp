// Unit tests for the resilience primitives (core/resilience.hpp):
// virtual-clock backoff determinism, the deadline/retry executor, the
// failure-event listener channel, the circuit breaker state machine, and
// the CLI flag helpers.

#include "alamr/core/resilience.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using namespace alamr::core::resilience;

TEST(VirtualClockTicks, AdvancesAndResets) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance(16);
  clock.advance(5);
  EXPECT_EQ(clock.now(), 21u);
  clock.reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(Backoff, IsPureFunctionOfPolicyOpAttempt) {
  const BackoffPolicy policy{.base_ticks = 16,
                             .multiplier = 2.0,
                             .max_ticks = 1024,
                             .jitter = 0.5,
                             .seed = 7};
  const std::uint64_t op = detail::op_hash("backend.fit");
  for (std::uint64_t attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_EQ(backoff_ticks(policy, op, attempt),
              backoff_ticks(policy, op, attempt));
  }
}

TEST(Backoff, GrowsExponentiallyAndCaps) {
  BackoffPolicy policy{.base_ticks = 16,
                       .multiplier = 2.0,
                       .max_ticks = 100,
                       .jitter = 0.0,  // exact doubling, no randomization
                       .seed = 0};
  const std::uint64_t op = detail::op_hash("x");
  EXPECT_EQ(backoff_ticks(policy, op, 1), 16u);
  EXPECT_EQ(backoff_ticks(policy, op, 2), 32u);
  EXPECT_EQ(backoff_ticks(policy, op, 3), 64u);
  EXPECT_EQ(backoff_ticks(policy, op, 4), 100u);  // capped
  EXPECT_EQ(backoff_ticks(policy, op, 9), 100u);  // stays capped
}

TEST(Backoff, JitterStaysInHalfOpenWindowAndNeverZero) {
  const BackoffPolicy policy{.base_ticks = 16,
                             .multiplier = 2.0,
                             .max_ticks = 1 << 20,
                             .jitter = 0.5,
                             .seed = 3};
  for (std::uint64_t attempt = 1; attempt <= 12; ++attempt) {
    for (const char* name : {"a", "b", "backend.fit"}) {
      const std::uint64_t d = backoff_ticks(
          BackoffPolicy{policy.base_ticks, policy.multiplier, policy.max_ticks,
                        0.0, policy.seed},
          detail::op_hash(name), attempt);
      const std::uint64_t w =
          backoff_ticks(policy, detail::op_hash(name), attempt);
      EXPECT_GE(w, 1u);
      EXPECT_GE(w, d / 2);  // jitter=0.5 keeps at least half the wait
      EXPECT_LE(w, d);
    }
  }
}

TEST(Backoff, SeedAndOpDecorrelateSchedules) {
  const BackoffPolicy a{.base_ticks = 1000, .multiplier = 1.0,
                        .max_ticks = 1000, .jitter = 1.0, .seed = 1};
  BackoffPolicy b = a;
  b.seed = 2;
  std::size_t differing = 0;
  for (std::uint64_t attempt = 1; attempt <= 64; ++attempt) {
    if (backoff_ticks(a, detail::op_hash("op"), attempt) !=
        backoff_ticks(b, detail::op_hash("op"), attempt)) {
      ++differing;
    }
    if (backoff_ticks(a, detail::op_hash("op"), attempt) !=
        backoff_ticks(a, detail::op_hash("other"), attempt)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 100u);
}

TEST(DeadlineExecutorRuns, FirstTrySuccessTouchesNothing) {
  DeadlineExecutor exec({}, 3, 4096);
  int calls = 0;
  const auto out = exec.execute("op", [&] {
    ++calls;
    return OpStatus::kOk;
  });
  EXPECT_EQ(out.status, OpStatus::kOk);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.waited_ticks, 0u);
  EXPECT_FALSE(out.deadline_exceeded);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(exec.clock().now(), 0u);  // no wait, no clock movement
}

TEST(DeadlineExecutorRuns, RetriesWithBackoffThenRecovers) {
  DeadlineExecutor exec({}, 5, 1 << 20);
  int calls = 0;
  const auto out = exec.execute("op", [&] {
    ++calls;
    return calls < 3 ? OpStatus::kFailed : OpStatus::kOk;
  });
  EXPECT_EQ(out.status, OpStatus::kOk);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_GT(out.waited_ticks, 0u);
  EXPECT_EQ(exec.clock().now(), out.waited_ticks);
}

TEST(DeadlineExecutorRuns, GivesUpAtAttemptBudget) {
  DeadlineExecutor exec({}, 3, 1 << 20);
  int calls = 0;
  const auto out = exec.execute("op", [&] {
    ++calls;
    return OpStatus::kTimeout;
  });
  EXPECT_EQ(out.status, OpStatus::kTimeout);
  EXPECT_EQ(out.attempts, 3u);
  EXPECT_EQ(calls, 3);
  EXPECT_FALSE(out.deadline_exceeded);
}

TEST(DeadlineExecutorRuns, DeadlineBeatsAttemptBudget) {
  // Waits of >= base_ticks/2 against a 1-tick deadline: the executor must
  // stop after the first failure without sleeping.
  DeadlineExecutor exec({.base_ticks = 16}, 100, 1);
  int calls = 0;
  const auto out = exec.execute("op", [&] {
    ++calls;
    return OpStatus::kFailed;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(out.deadline_exceeded);
  EXPECT_EQ(exec.clock().now(), 0u);  // the too-long wait was never applied
}

TEST(DeadlineExecutorRuns, ExceptionsPropagateUnretried) {
  DeadlineExecutor exec({}, 5, 1 << 20);
  int calls = 0;
  EXPECT_THROW(exec.execute("op",
                            [&]() -> OpStatus {
                              ++calls;
                              throw std::runtime_error("contract violation");
                            }),
               std::runtime_error);
  EXPECT_EQ(calls, 1);
}

TEST(DeadlineExecutorRuns, IdenticalRunsWaitIdentically) {
  const BackoffPolicy policy{.base_ticks = 16, .multiplier = 2.0,
                             .max_ticks = 1024, .jitter = 0.5, .seed = 11};
  const auto run_once = [&] {
    DeadlineExecutor exec(policy, 4, 1 << 20);
    int calls = 0;
    return exec
        .execute("backend.fit",
                 [&] { return ++calls < 4 ? OpStatus::kFailed : OpStatus::kOk; })
        .waited_ticks;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Breaker, TripsOnConsecutiveFailuresOnly) {
  CircuitBreaker breaker(3);
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_FALSE(breaker.tripped());
  breaker.record_success();  // closes the window
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_FALSE(breaker.tripped());
  breaker.record_failure();
  EXPECT_TRUE(breaker.tripped());
  EXPECT_EQ(breaker.total_failures(), 5u);
}

TEST(Breaker, AcknowledgeReopensWindowAndCountsTrips) {
  CircuitBreaker breaker(2);
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_TRUE(breaker.tripped());
  breaker.acknowledge_trip();
  EXPECT_FALSE(breaker.tripped());
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  EXPECT_EQ(breaker.ok_streak(), 0u);
}

TEST(Breaker, StreakPacesProbesAndRestores) {
  CircuitBreaker breaker(3);
  for (int i = 0; i < 5; ++i) breaker.record_success();
  EXPECT_EQ(breaker.ok_streak(), 5u);
  breaker.reset_streak();
  EXPECT_EQ(breaker.ok_streak(), 0u);
  EXPECT_EQ(breaker.total_failures(), 0u);  // untouched by reset_streak

  breaker.restore(1, 7, 4, 2);
  EXPECT_EQ(breaker.consecutive_failures(), 1u);
  EXPECT_EQ(breaker.total_failures(), 7u);
  EXPECT_EQ(breaker.ok_streak(), 4u);
  EXPECT_EQ(breaker.trips(), 2u);
}

struct RecordingListener final : Listener {
  std::vector<Event> events;
  void on_event(Event event) override { events.push_back(event); }
};

TEST(EventChannel, NoteWithoutListenerIsANoOp) {
  ASSERT_EQ(current_listener(), nullptr);
  note(Event::kCholeskyNonPsd);  // must not crash or allocate a sink
  EXPECT_EQ(current_listener(), nullptr);
}

TEST(EventChannel, ScopedListenersReceiveAndNest) {
  RecordingListener outer;
  RecordingListener inner;
  {
    const ScopedListener outer_scope(outer);
    note(Event::kOptDiverge);
    {
      const ScopedListener inner_scope(inner);
      note(Event::kAcquireTimeout);
    }
    note(Event::kCholeskyNonPsd);  // outer restored after nesting
  }
  note(Event::kIoCorruption);  // nobody listening
  ASSERT_EQ(outer.events.size(), 2u);
  EXPECT_EQ(outer.events[0], Event::kOptDiverge);
  EXPECT_EQ(outer.events[1], Event::kCholeskyNonPsd);
  ASSERT_EQ(inner.events.size(), 1u);
  EXPECT_EQ(inner.events[0], Event::kAcquireTimeout);
}

TEST(EventChannel, EventNamesMatchFaultSites) {
  EXPECT_EQ(to_string(Event::kCholeskyNonPsd), "cholesky.non_psd");
  EXPECT_EQ(to_string(Event::kOptDiverge), "opt.diverge");
  EXPECT_EQ(to_string(Event::kAcquireTimeout), "acquire.timeout");
}

TEST(ResilienceFlag, ParsesAllForms) {
  Options options;
  {
    const char* raw[] = {"bench", "--no-resilience"};
    EXPECT_TRUE(parse_resilience_flag(2, const_cast<char**>(raw), options));
    EXPECT_FALSE(options.enabled);
  }
  {
    const char* raw[] = {"bench", "--resilience=on"};
    EXPECT_TRUE(parse_resilience_flag(2, const_cast<char**>(raw), options));
    EXPECT_TRUE(options.enabled);
  }
  {
    const char* raw[] = {"bench", "--resilience=off"};
    EXPECT_TRUE(parse_resilience_flag(2, const_cast<char**>(raw), options));
    EXPECT_FALSE(options.enabled);
  }
  {
    const char* raw[] = {"bench", "--trace"};
    EXPECT_FALSE(parse_resilience_flag(2, const_cast<char**>(raw), options));
  }
  {
    const char* raw[] = {"bench", "--resilience=maybe"};
    EXPECT_THROW(parse_resilience_flag(2, const_cast<char**>(raw), options),
                 std::invalid_argument);
  }
}

TEST(ResilienceFlag, DescribeMentionsTheKnobs) {
  Options options;
  const std::string text = describe(options);
  EXPECT_NE(text.find("resilience on"), std::string::npos);
  EXPECT_NE(text.find("ladder"), std::string::npos);
  EXPECT_NE(text.find("deadline"), std::string::npos);
  options.enabled = false;
  EXPECT_NE(describe(options).find("off"), std::string::npos);
}

}  // namespace
