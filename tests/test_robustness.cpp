// Failure-injection and pathological-input tests: the library must stay
// numerically sane (no NaNs, no crashes, meaningful exceptions) when fed
// degenerate data — constant responses, extreme outliers, duplicated
// configurations, near-empty partitions.

#include <gtest/gtest.h>

#include <cmath>

#include "alamr/core/simulator.hpp"
#include "alamr/gp/gpr.hpp"
#include "synthetic_dataset.hpp"

namespace {

using namespace alamr;

TEST(Robustness, GprWithConstantTargets) {
  // Zero-variance targets: the fit must not blow up, predictions equal
  // the constant, and stddev stays finite.
  stats::Rng rng(1);
  linalg::Matrix x(12, 2);
  for (std::size_t i = 0; i < 12; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    x(i, 1) = rng.uniform(0.0, 1.0);
  }
  const std::vector<double> y(12, 3.25);
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), {});
  gpr.fit(x, y, rng);
  const gp::Prediction pred = gpr.predict(x);
  for (std::size_t i = 0; i < pred.mean.size(); ++i) {
    EXPECT_NEAR(pred.mean[i], 3.25, 1e-3);
    EXPECT_TRUE(std::isfinite(pred.stddev[i]));
  }
}

TEST(Robustness, GprWithExtremeOutlier) {
  stats::Rng rng(2);
  linalg::Matrix x(15, 1);
  std::vector<double> y(15);
  for (std::size_t i = 0; i < 15; ++i) {
    x(i, 0) = static_cast<double>(i) / 14.0;
    y[i] = std::sin(4.0 * x(i, 0));
  }
  y[7] = 1e4;  // catastrophic measurement
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), {});
  EXPECT_NO_THROW(gpr.fit(x, y, rng));
  const auto mean = gpr.predict_mean(x);
  for (const double m : mean) EXPECT_TRUE(std::isfinite(m));
}

TEST(Robustness, GprWithManyDuplicatedRows) {
  // Replicate-heavy design matrices make K singular without jitter.
  stats::Rng rng(3);
  linalg::Matrix x(20, 2);
  std::vector<double> y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    // Only 4 distinct locations, 5 copies each, noisy targets.
    x(i, 0) = static_cast<double>(i % 4) / 3.0;
    x(i, 1) = 0.5;
    y[i] = std::cos(x(i, 0)) + rng.normal(0.0, 0.01);
  }
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), {});
  EXPECT_NO_THROW(gpr.fit(x, y, rng));
  const gp::Prediction pred = gpr.predict(x);
  for (const double s : pred.stddev) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
  }
}

TEST(Robustness, SimulatorWithNearConstantMemoryResponses) {
  // If memory barely varies, the default limit rule still produces a
  // usable threshold and RGMA does not crash.
  auto dataset = alamr::testing::synthetic_amr_dataset(80, 5);
  for (double& m : dataset.memory) m = 1.0 + 1e-9 * m;
  core::AlOptions options;
  options.n_test = 30;
  options.n_init = 10;
  options.max_iterations = 5;
  options.initial_fit.restarts = 0;
  options.refit.max_opt_iterations = 3;
  const core::AlSimulator sim(dataset, options);
  stats::Rng rng(6);
  const core::Rgma rgma(sim.memory_limit_log10());
  EXPECT_NO_THROW(sim.run(rgma, rng));
}

TEST(Robustness, SimulatorWithTinyActiveSet) {
  // n_active == 1: a single AL step, then exhaustion.
  auto dataset = alamr::testing::synthetic_amr_dataset(42, 7);
  core::AlOptions options;
  options.n_test = 31;
  options.n_init = 10;
  options.max_iterations = 0;
  options.initial_fit.restarts = 0;
  options.refit.max_opt_iterations = 3;
  const core::AlSimulator sim(dataset, options);
  stats::Rng rng(8);
  const auto traj = sim.run(core::RandGoodness(), rng);
  EXPECT_EQ(traj.iterations.size(), 1u);
  EXPECT_EQ(traj.stop_reason, core::StopReason::kActiveExhausted);
}

TEST(Robustness, StrategiesHandleZeroSigmaEverywhere) {
  // Degenerate predictions (all sigma = 0) must not divide by zero.
  linalg::Matrix x(3, 2, 0.5);
  const std::vector<double> mu{0.2, 0.1, 0.3};
  const std::vector<double> zeros{0.0, 0.0, 0.0};
  const core::CandidateView view{x, mu, zeros, mu, zeros};
  stats::Rng rng(9);
  EXPECT_NO_THROW(core::RandGoodness().select(view, rng));
  EXPECT_NO_THROW(core::MaxSigma().select(view, rng));
  EXPECT_NO_THROW(core::ExpectedImprovement().select(view, rng));
  EXPECT_EQ(core::MinPred().select(view, rng), 1u);
}

TEST(Robustness, SimulatorSurvivesHugeDynamicRange) {
  // Costs spanning 12 orders of magnitude (far beyond the paper's 5.4e3).
  auto dataset = alamr::testing::synthetic_amr_dataset(60, 11);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    dataset.cost[i] = std::pow(10.0, -6.0 + 12.0 * (i % 10) / 9.0);
  }
  core::AlOptions options;
  options.n_test = 20;
  options.n_init = 10;
  options.max_iterations = 5;
  options.initial_fit.restarts = 0;
  options.refit.max_opt_iterations = 3;
  const core::AlSimulator sim(dataset, options);
  stats::Rng rng(12);
  const auto traj = sim.run(core::RandGoodness(), rng);
  for (const auto& rec : traj.iterations) {
    EXPECT_TRUE(std::isfinite(rec.rmse_cost));
    EXPECT_TRUE(std::isfinite(rec.cumulative_cost));
  }
}

}  // namespace
