#pragma once

// Trajectory checkpointing: the complete mid-trajectory state of the AL
// driver, serialized to JSON with doubles stored as exact 64-bit hex bit
// patterns, framed with a version header + CRC32, and written by atomic
// rename with N-generation retention — so a resumed run continues
// byte-for-byte identically to an uninterrupted one even when the newest
// generation was torn mid-write (DESIGN.md §14).
//
// Durable frame (format version 2):
//
//   ALAMR-CKPT v2 len=<payload bytes> crc32=<8 lowercase hex>\n<payload>
//
// The CRC covers the payload only, so a torn write (header present,
// payload cut short) and a partial read both fail the length or checksum
// check and the loader falls back to the next older generation. Files
// whose payload starts with '{' are pre-frame (format 1) checkpoints and
// still load. Generations rotate on save: <path> is newest, <path>.1 the
// previous save, ... up to CheckpointConfig::retain. Corrupt generations
// are quarantined in place by renaming to <generation>.bad; a frame
// announcing a NEWER format version than this build understands is not
// corruption — loading throws CheckpointVersionError and keeps the file.
//
// Byte-identical resume leans on two repo invariants: (1) the posterior
// is a pure function of (X_learned, labels, theta) and the incremental and
// full rebuild paths produce the same bits (golden-tested), so rebuilding
// the models at the saved theta reproduces the live state exactly; and
// (2) all randomness flows through the trajectory's Rng, whose full state
// (including the Marsaglia-polar cache) is captured here.
//
// Fault sites: save consults io.torn_write (cuts the published file short)
// and load consults io.partial_read (truncates the in-memory read; the
// loader retries the read once before treating the file as corrupt).

#include <array>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "alamr/core/faults.hpp"
#include "alamr/core/online.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/stats/rng.hpp"

namespace alamr::core {

/// Version of the durable on-disk frame this build reads and writes.
inline constexpr std::uint64_t kCheckpointFormatVersion = 2;

/// A checkpoint written by a NEWER build than this one. Deliberately not
/// treated as corruption: the file is kept on disk untouched so the newer
/// build can still resume from it.
struct CheckpointVersionError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// What the loader did while hunting for an intact generation.
struct CheckpointLoadReport {
  std::filesystem::path loaded_from;  ///< empty when nothing was found
  std::size_t generations_scanned = 0;
  std::size_t fallbacks = 0;     ///< corrupt generations skipped over
  std::size_t read_retries = 0;  ///< rereads that recovered a short read
  std::vector<std::filesystem::path> quarantined;  ///< renamed to *.bad
};

/// CRC-32 (IEEE 802.3, reflected 0xedb88320) of `data`.
std::uint32_t crc32(std::string_view data) noexcept;

/// Wraps `payload` in the durable frame (header + payload).
std::string frame_payload(std::string_view payload);

/// The on-disk name of generation `generation` (0 = `path` itself).
std::filesystem::path checkpoint_generation_path(
    const std::filesystem::path& path, std::size_t generation);

/// Rotates generations and atomically publishes a framed `payload` as
/// generation 0 of `path`, retaining up to `retain` generations. Consults
/// the io.torn_write fault site.
void save_durable_payload(std::string_view payload,
                          const std::filesystem::path& path,
                          std::size_t retain = 3);

/// Scans generations newest-first for an intact frame and returns its
/// payload; corrupt generations are quarantined to *.bad and skipped
/// (recorded in `report` when given). std::nullopt when no generation
/// exists at all; throws std::runtime_error when generations existed but
/// every one was corrupt, and CheckpointVersionError (keeping the file)
/// when a generation was written by a newer format version.
std::optional<std::string> load_durable_payload(
    const std::filesystem::path& path, std::size_t retain = 3,
    CheckpointLoadReport* report = nullptr);

/// Deletes every generation of `path` plus its .tmp remnant. Quarantined
/// *.bad files are kept — they are forensic evidence, not state.
void remove_durable_payload(const std::filesystem::path& path,
                            std::size_t retain = 3);

/// Everything run_trajectory needs to continue mid-flight.
struct TrajectoryCheckpoint {
  /// Compatibility fingerprint: the trajectory fingerprint (options +
  /// strategy + partition) plus the canonical fault-plan spec. Resume
  /// refuses a checkpoint whose fingerprint differs — a different config
  /// could silently produce a chimera trajectory.
  std::string fingerprint;

  std::uint64_t passes = 0;   // loop passes recorded (== iterations.size())
  std::uint64_t trained = 0;  // successful (uncensored) acquisitions

  std::vector<std::uint64_t> learned;  // Init + acquired dataset rows
  std::vector<std::uint64_t> active;   // remaining Active dataset rows
  /// Training labels in learned order (penalized labels included — they
  /// are NOT recoverable from the dataset).
  std::vector<double> c_learned;
  std::vector<double> m_learned;

  /// Kernel log-hyperparameters of the two models at the checkpoint.
  /// Ensemble backends concatenate per-expert parameters in their
  /// log_params() order.
  std::vector<double> theta_cost;
  std::vector<double> theta_mem;

  /// Opaque auxiliary backend state (PosteriorBackend::save_state) — state
  /// NOT derivable from (learned rows, labels, theta), e.g. the
  /// local-experts backend's frozen centroids. Empty for backends without
  /// such state (exact, subset-of-data).
  std::string backend_state_cost;
  std::string backend_state_mem;

  stats::Rng::State rng;

  double cc = 0.0;
  double cr = 0.0;
  double last_rmse_cost = 0.0;
  double last_rmse_mem = 0.0;
  double last_rmse_weighted = 0.0;
  bool last_record_evaluated = true;
  double initial_rmse_cost = 0.0;
  double initial_rmse_mem = 0.0;

  // Stabilizing-predictions stopping-rule state.
  std::uint64_t stable_streak = 0;
  std::vector<double> previous_cost_mu_log;

  std::uint64_t censored_count = 0;
  double censored_cost = 0.0;

  // Fault-injector counters, so the continuation consults schedules at
  // the same hit numbers the uninterrupted run would have.
  std::array<std::uint64_t, faults::kSiteCount> fault_hits{};
  std::array<std::uint64_t, faults::kSiteCount> fault_fires{};

  std::vector<IterationRecord> iterations;
};

/// Serializes `state` to JSON (doubles as hex bit patterns).
std::string checkpoint_to_json(const TrajectoryCheckpoint& state);

/// Parses what checkpoint_to_json produced. Throws std::runtime_error on
/// malformed input.
TrajectoryCheckpoint checkpoint_from_json(const std::string& json);

/// Durable save: rotates generations, then writes `path` + ".tmp" and
/// renames over `path` with the CRC32/version frame.
void save_checkpoint(const TrajectoryCheckpoint& state,
                     const std::filesystem::path& path,
                     std::size_t retain = 3);

/// Loads the newest intact generation of `path`; std::nullopt when no
/// generation exists. Throws std::runtime_error when generations existed
/// but none was loadable, CheckpointVersionError (file kept) for frames
/// from a newer build.
std::optional<TrajectoryCheckpoint> load_checkpoint(
    const std::filesystem::path& path, std::size_t retain = 3,
    CheckpointLoadReport* report = nullptr);

/// Deletes every generation of a completed run's checkpoint.
void remove_checkpoint(const std::filesystem::path& path,
                       std::size_t retain = 3);

/// Everything OnlineAlDriver::run needs to continue mid-flight. The
/// remaining candidate set is NOT stored: it is the grid order minus the
/// visited and abandoned rows, which both are.
struct OnlineCheckpoint {
  /// Options/strategy/grid fingerprint plus the plan in force (same
  /// compatibility contract as TrajectoryCheckpoint::fingerprint).
  std::string fingerprint;

  std::uint64_t al_iterations_done = 0;  // post-init selections recorded

  std::vector<std::uint64_t> visited;  // grid rows in execution order
  std::vector<std::uint64_t> skipped;  // rows dropped after oracle giveups
  /// log10 measurements in visited order.
  std::vector<double> log_cost;
  std::vector<double> log_mem;

  std::vector<double> theta_cost;
  std::vector<double> theta_mem;
  std::string backend_state_cost;
  std::string backend_state_mem;

  stats::Rng::State rng;

  double cc = 0.0;
  double cr = 0.0;
  std::uint64_t oracle_giveups = 0;
  bool exhausted_safe_candidates = false;

  std::array<std::uint64_t, faults::kSiteCount> fault_hits{};
  std::array<std::uint64_t, faults::kSiteCount> fault_fires{};

  std::vector<OnlineRecord> records;
};

/// Serializes/parses the online checkpoint (same hex-bit JSON dialect as
/// the trajectory codec).
std::string online_checkpoint_to_json(const OnlineCheckpoint& state);
OnlineCheckpoint online_checkpoint_from_json(const std::string& json);

/// Durable save/load/remove for online runs — identical frame,
/// generation, quarantine, and version semantics to the trajectory
/// checkpoint entry points above.
void save_online_checkpoint(const OnlineCheckpoint& state,
                            const std::filesystem::path& path,
                            std::size_t retain = 3);
std::optional<OnlineCheckpoint> load_online_checkpoint(
    const std::filesystem::path& path, std::size_t retain = 3,
    CheckpointLoadReport* report = nullptr);
void remove_online_checkpoint(const std::filesystem::path& path,
                              std::size_t retain = 3);

}  // namespace alamr::core
