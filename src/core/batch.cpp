#include "alamr/core/batch.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <stdexcept>
#include <string>

#include "alamr/core/parallel.hpp"
#include "alamr/data/partition.hpp"

namespace alamr::core {

std::vector<TrajectoryResult> run_batch(const AlSimulator& simulator,
                                        const Strategy& strategy,
                                        const BatchOptions& options) {
  if (options.trajectories == 0) {
    throw std::invalid_argument("run_batch: trajectories == 0");
  }

  // Derive one independent RNG per trajectory up front (deterministic
  // regardless of thread interleaving).
  stats::Rng master(options.seed);
  std::vector<stats::Rng> streams;
  streams.reserve(options.trajectories);
  for (std::size_t t = 0; t < options.trajectories; ++t) {
    streams.push_back(master.split());
  }

  const std::size_t n_threads =
      std::min(options.threads == 0 ? configured_parallel_threads()
                                    : options.threads,
               options.trajectories);

  // One dataset-wide context serves every trajectory (they all run
  // against the same scaled features); the workers only read it.
  std::optional<SharedBatchContext> shared;
  if (options.shared_context) shared.emplace(simulator.make_shared_context());
  const SharedBatchContext* shared_ptr = shared ? &*shared : nullptr;

  // Trajectory fan-out on the pool. Each chunk owns a Strategy clone
  // (implementations are stateless, but cloning keeps the contract simple
  // if one ever is not) and writes only its own result slots; the nested
  // parallelism inside each trajectory (predict, multistart) degrades to
  // serial while a chunk runs, so lanes are never oversubscribed.
  std::vector<TrajectoryResult> results(options.trajectories);
  trace::count("batch.runs");
  trace::count("batch.trajectories", options.trajectories);
  {
    const trace::ScopedTimer timer("batch");
    ThreadPool pool(n_threads);
    pool.parallel_for_chunks(
        options.trajectories, [&](std::size_t begin, std::size_t end) {
          const std::unique_ptr<Strategy> local = strategy.clone();
          for (std::size_t t = begin; t < end; ++t) {
            results[t] = simulator.run(*local, streams[t], shared_ptr);
          }
        });
  }
  return results;
}

std::vector<BatchTrajectory> run_batch_isolated(const AlSimulator& simulator,
                                                const Strategy& strategy,
                                                const BatchOptions& options) {
  if (options.trajectories == 0) {
    throw std::invalid_argument("run_batch_isolated: trajectories == 0");
  }

  // Same stream derivation as run_batch, so slot t of an isolated batch is
  // the same trajectory as slot t of a plain one.
  stats::Rng master(options.seed);
  std::vector<stats::Rng> streams;
  streams.reserve(options.trajectories);
  for (std::size_t t = 0; t < options.trajectories; ++t) {
    streams.push_back(master.split());
  }

  const bool checkpointing = !options.checkpoint_dir.empty();
  if (checkpointing) {
    std::filesystem::create_directories(options.checkpoint_dir);
  }

  const std::size_t n_threads =
      std::min(options.threads == 0 ? configured_parallel_threads()
                                    : options.threads,
               options.trajectories);

  std::optional<SharedBatchContext> shared;
  if (options.shared_context) shared.emplace(simulator.make_shared_context());
  const SharedBatchContext* shared_ptr = shared ? &*shared : nullptr;

  std::vector<BatchTrajectory> slots(options.trajectories);
  trace::count("batch.isolated_runs");
  trace::count("batch.trajectories", options.trajectories);
  {
    const trace::ScopedTimer timer("batch");
    ThreadPool pool(n_threads);
    pool.parallel_for_chunks(
        options.trajectories, [&](std::size_t begin, std::size_t end) {
          const std::unique_ptr<Strategy> local = strategy.clone();
          for (std::size_t t = begin; t < end; ++t) {
            try {
              // Partition drawn from the stream exactly as run() would —
              // byte-identical whether or not the trajectory later resumes,
              // because the stream state is redrawn from the same split and
              // the checkpoint replaces the rng state afterwards.
              const data::Partition partition = data::make_partition(
                  simulator.dataset().size(), simulator.options().n_test,
                  simulator.options().n_init, streams[t]);
              if (checkpointing) {
                CheckpointConfig cfg;
                cfg.path = options.checkpoint_dir /
                           ("trajectory_" + std::to_string(t) + ".json");
                cfg.stride = options.checkpoint_stride;
                cfg.resume = options.resume;
                slots[t].result = simulator.run_resumable(
                    *local, partition, streams[t], cfg, shared_ptr);
              } else {
                slots[t].result = simulator.run_with_partition(
                    *local, partition, streams[t], shared_ptr);
              }
              slots[t].ok = true;
            } catch (const std::exception& e) {
              slots[t].ok = false;
              slots[t].error = e.what();
              trace::count("batch.failed_trajectories");
            }
          }
        });
  }
  return slots;
}

std::vector<double> extract_series(const TrajectoryResult& trajectory,
                                   Metric metric) {
  std::vector<double> out;
  out.reserve(trajectory.iterations.size());
  for (const IterationRecord& record : trajectory.iterations) {
    switch (metric) {
      case Metric::kRmseCost: out.push_back(record.rmse_cost); break;
      case Metric::kRmseMem: out.push_back(record.rmse_mem); break;
      case Metric::kRmseCostWeighted:
        out.push_back(record.rmse_cost_weighted);
        break;
      case Metric::kCumulativeCost: out.push_back(record.cumulative_cost); break;
      case Metric::kCumulativeRegret:
        out.push_back(record.cumulative_regret);
        break;
      case Metric::kActualCost: out.push_back(record.actual_cost); break;
    }
  }
  return out;
}

std::vector<CurvePoint> aggregate_curve(
    std::span<const TrajectoryResult> trajectories, Metric metric) {
  std::size_t longest = 0;
  for (const TrajectoryResult& t : trajectories) {
    longest = std::max(longest, t.iterations.size());
  }

  std::vector<std::vector<double>> series;
  series.reserve(trajectories.size());
  for (const TrajectoryResult& t : trajectories) {
    series.push_back(extract_series(t, metric));
  }

  std::vector<CurvePoint> curve;
  curve.reserve(longest);
  for (std::size_t i = 0; i < longest; ++i) {
    CurvePoint point;
    point.iteration = i;
    point.lo = std::numeric_limits<double>::infinity();
    point.hi = -std::numeric_limits<double>::infinity();
    double total = 0.0;
    for (const auto& s : series) {
      if (i >= s.size()) continue;
      total += s[i];
      point.lo = std::min(point.lo, s[i]);
      point.hi = std::max(point.hi, s[i]);
      ++point.count;
    }
    if (point.count == 0) break;
    point.mean = total / static_cast<double>(point.count);
    curve.push_back(point);
  }
  return curve;
}

}  // namespace alamr::core
