# Empty dependencies file for tests_amr.
# This may be replaced when dependencies are built.
