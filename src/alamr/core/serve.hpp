#pragma once

// Multi-tenant session engine (DESIGN.md §15) — the "AL-as-a-service"
// serving core the ROADMAP's north star asks for.
//
// OnlineAlDriver runs ONE online-AL loop to completion, with the oracle
// called inline. The SessionEngine inverts that control flow for a
// daemon: many concurrent sessions, each an open online-AL trajectory,
// advance through a suggest / observe request protocol while the engine
// owns the expensive state. Three structural wins over N drivers:
//
//   1. Sharded session store — sessions live in fixed shards, each with
//      its own mutex and request queue, addressable by id. A session
//      holds its backends, workspace arena, rng stream and resilience
//      state; nothing is shared between sessions except the immutable
//      per-grid context (scaled features + SharedBatchContext distance
//      base), so shard traffic never contends on model state.
//   2. Micro-batched prediction — drain() coalesces every queued
//      suggest/query across sessions into one pass executed on the
//      ThreadPool (`ALAMR_THREADS`). Per session the sweep rides the
//      candidate-panel path (predict_candidates): O(M·n) panel resumes
//      instead of the driver's O(M·n²) fresh solve per request, bit-
//      identical by the panel and distance-base-gather contracts.
//   3. Off-path retrains — hyperparameter refits and full posterior
//      rebuilds run on background workers against a frozen snapshot
//      (cloned backends + copied labels) and atomically swap in under
//      the session's epoch counter. The request path only ever pays
//      panel resumes and one-row Cholesky extends; queries in flight
//      finish on the old posterior.
//
// Determinism contract: every session draws only from its own rng
// stream, consults only its own fault injector, and its requests are
// processed in enqueue order — so per-session results are byte-identical
// to a serial OnlineAlDriver run at any thread count and any shard
// count (golden-tested at 1 and 4 threads). With retrain_stride == 1 a
// session IS the driver recipe bit for bit; larger strides trade refit
// freshness for throughput (add_point extends at fixed hyperparameters
// between full refits) — a serving-schedule knob, deliberately outside
// the checkpoint fingerprint.

#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "alamr/core/online.hpp"
#include "alamr/core/trace.hpp"

namespace alamr::core {

using SessionId = std::uint64_t;

struct ServeOptions {
  /// Fixed shard count of the session store (>= 1).
  std::size_t shards = 8;
  /// Background retrain workers. 0 runs retrains inline at the point
  /// they are scheduled (same math, no off-path latency win).
  std::size_t retrain_workers = 2;
  /// Micro-batching posture. true = the engine path: shared distance
  /// base, panel sweeps, add_point extends between retrains. false = the
  /// per-session-serial reference recipe (fresh predict() sweeps, no
  /// shared context) — the bench baseline arm. Outputs are byte-identical
  /// either way; only the cost of producing them changes.
  bool coalesce = true;
  /// Share one immutable GridContext between sessions opened on a
  /// bit-identical grid (keyed by grid fingerprint).
  bool share_grid_context = true;
  /// Checkpoint generations retained per session (PR9 frames).
  std::size_t checkpoint_retain = 3;
};

struct SessionOptions {
  /// The driver-compatible trajectory configuration (budgets, fit
  /// effort, backend, resilience, fault plan).
  OnlineAlOptions al;
  /// Seed of the session's private rng stream.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Full (optimizing) refits happen on every retrain_stride-th AL
  /// observation; in between, observations extend the posterior at fixed
  /// hyperparameters (one-row Cholesky extend + panel append). 1 = refit
  /// every observation, the OnlineAlDriver recipe bit for bit.
  std::size_t retrain_stride = 1;
  /// Durable checkpoint path for checkpoint/evict/restore; empty = the
  /// session is memory-only.
  std::filesystem::path checkpoint;
};

/// One suggest-next-point answer. `done` means the session has nothing
/// left to suggest (budget spent, grid exhausted, or no safe candidate);
/// otherwise the client runs the experiment described by `features` (raw
/// grid units) and reports back via observe()/observe_failure().
struct Suggestion {
  bool done = false;
  bool initial_phase = false;
  std::size_t grid_row = 0;
  std::vector<double> features;
};

/// Posterior over caller-supplied query points (raw grid units; the
/// engine applies the session's feature scaling). log10 response space,
/// like the driver's models.
struct QueryResult {
  gp::Prediction cost;
  gp::Prediction memory;
};

struct SessionStatus {
  std::size_t records = 0;
  std::size_t init_done = 0;
  std::size_t al_done = 0;
  std::size_t remaining = 0;
  std::size_t oracle_giveups = 0;
  bool suggestion_pending = false;
  bool done = false;
  bool exhausted_safe_candidates = false;
  /// Posterior generation: bumped by every retrain swap.
  std::uint64_t epoch = 0;
  /// Resilience posture of the two surrogates (kHealthy when the
  /// resilience decorator is disabled).
  resilience::Health cost_health = resilience::Health::kHealthy;
  resilience::Health mem_health = resilience::Health::kHealthy;
  gp::BackendKind cost_active = gp::BackendKind::kExact;
  gp::BackendKind mem_active = gp::BackendKind::kExact;
};

class SessionEngine {
 public:
  explicit SessionEngine(ServeOptions options = {});
  ~SessionEngine();

  SessionEngine(const SessionEngine&) = delete;
  SessionEngine& operator=(const SessionEngine&) = delete;

  // -- Session lifecycle ----------------------------------------------------

  /// Opens a fresh session over `grid` (raw feature rows). Validation
  /// mirrors OnlineAlDriver's constructor; duplicate ids throw
  /// OnlineContractError.
  void open_session(SessionId id, linalg::Matrix grid,
                    const Strategy& strategy, SessionOptions options);

  /// Re-opens a previously evicted (or checkpointed) session from its
  /// durable frames: options.checkpoint must name the path, and the
  /// saved fingerprint must match (grid, strategy, options.al, fault
  /// plan) — the same compatibility rule as OnlineAlDriver resume, and
  /// the same frame format, so driver checkpoints restore into the
  /// engine and vice versa.
  void restore_session(SessionId id, linalg::Matrix grid,
                       const Strategy& strategy, SessionOptions options);

  /// Saves a durable checkpoint frame (requires options.checkpoint).
  /// Not legal while a suggestion is outstanding.
  void checkpoint_session(SessionId id);

  /// checkpoint_session + drop from the store (restore_session brings it
  /// back byte-identically).
  void evict_session(SessionId id);

  /// Drops a session without persistence.
  void close_session(SessionId id);

  /// Completes a session: joins any in-flight retrain and returns the
  /// driver-shaped result (records + final models), dropping it from the
  /// store.
  OnlineResult finish_session(SessionId id);

  // -- Asynchronous request protocol ----------------------------------------
  //
  // enqueue_* appends to the session's shard queue (thread-safe, cheap);
  // drain() processes every queued request — one coalesced micro-batch —
  // and the answers land in per-session FIFO mailboxes.

  void enqueue_suggest(SessionId id);
  void enqueue_observe(SessionId id, double cost, double memory);
  /// The experiment could not be run (infrastructure failure): the
  /// suggested candidate is abandoned, like a driver oracle give-up.
  void enqueue_observe_failure(SessionId id);
  void enqueue_query(SessionId id, linalg::Matrix x);

  /// Processes all queued requests; returns how many. Coalesces the
  /// pending predict work into one ThreadPool pass (serially per
  /// session, in enqueue order). The first per-session error (e.g. an
  /// OnlineContractError) is rethrown after every other session's batch
  /// completed.
  std::size_t drain();

  std::optional<Suggestion> take_suggestion(SessionId id);
  std::optional<QueryResult> take_query_result(SessionId id);

  // -- Synchronous conveniences ---------------------------------------------
  //
  // Process on the calling thread immediately, bypassing the queues —
  // the per-session-serial path (and the bench baseline arm).

  Suggestion suggest(SessionId id);
  void observe(SessionId id, double cost, double memory);
  void observe_failure(SessionId id);
  QueryResult query_posterior(SessionId id, const linalg::Matrix& x);

  // -- Introspection --------------------------------------------------------

  std::size_t session_count() const;
  SessionStatus status(SessionId id) const;
  /// The session's private trace collector: serve.requests,
  /// serve.retrain_swaps, plus every model-layer counter its operations
  /// touched. Engine-wide counters (serve.batched_sweeps,
  /// serve.coalesce_width) go to the caller's collector at drain().
  trace::TraceReport session_trace(SessionId id) const;

  const ServeOptions& options() const noexcept { return options_; }

 private:
  struct Impl;
  ServeOptions options_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace alamr::core
