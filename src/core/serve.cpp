#include "alamr/core/serve.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "alamr/core/checkpoint.hpp"
#include "alamr/core/metrics.hpp"
#include "alamr/core/parallel.hpp"
#include "alamr/gp/kernels.hpp"

namespace alamr::core {

namespace {

linalg::Matrix gather_rows(const linalg::Matrix& src,
                           std::span<const std::size_t> rows) {
  // Same loop as the driver's gather_scaled: bit-identical tiles.
  linalg::Matrix out(rows.size(), src.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < src.cols(); ++c) {
      out(r, c) = src(rows[r], c);
    }
  }
  return out;
}

std::string grid_key(const linalg::Matrix& grid) {
  trace::Fingerprint fp;
  fp.add("serve.grid.v1");
  fp.add(static_cast<std::uint64_t>(grid.rows()));
  fp.add(static_cast<std::uint64_t>(grid.cols()));
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) fp.add(grid(r, c));
  }
  return fp.hex();
}

}  // namespace

// ---------------------------------------------------------------------------
// Immutable per-grid state, shared by every session opened on a
// bit-identical grid: raw + scaled features, the fitted scaler, and (on
// the coalescing path) the dataset-wide SharedBatchContext distance base
// that fits and panel sweeps gather from. Strictly read-only after
// construction, so sessions share it with no synchronization.
// ---------------------------------------------------------------------------

struct GridContext {
  linalg::Matrix grid;  // raw features; row indices are session currency
  data::FeatureScaler scaler;
  linalg::Matrix grid_scaled;
  std::optional<SharedBatchContext> batch;
  std::string key;

  GridContext(linalg::Matrix g, bool with_base, std::string k)
      : grid(std::move(g)),
        scaler(data::FeatureScaler::fit(grid)),
        grid_scaled(scaler.transform(grid)),
        key(std::move(k)) {
    if (with_base) {
      batch.emplace(std::make_shared<const gp::DistanceBase>(grid_scaled));
    }
  }

  const gp::DistanceBase* base() const noexcept {
    return batch ? &batch->distance_base() : nullptr;
  }
};

namespace {

// ---------------------------------------------------------------------------
// Off-path retrain machinery. A job is a frozen snapshot — cloned
// backends, copied labels/rows, the session rng and fault-injector BY
// VALUE — so it races with nothing; the ticket is its single-assignment
// result slot. The session joins (swaps the result in) at its next
// suggest/observe; queries never join and keep reading the old posterior.
// ---------------------------------------------------------------------------

struct RetrainTicket {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::unique_ptr<gp::PosteriorBackend> cost;
  std::unique_ptr<gp::PosteriorBackend> mem;
  stats::Rng::State rng_after{};
  bool has_injector = false;
  std::array<std::uint64_t, faults::kSiteCount> hits{};
  std::array<std::uint64_t, faults::kSiteCount> fires{};
  std::exception_ptr error;
};

struct RetrainJob {
  std::shared_ptr<RetrainTicket> ticket;
  std::unique_ptr<gp::PosteriorBackend> cost;
  std::unique_ptr<gp::PosteriorBackend> mem;
  linalg::Matrix x{0, 0};  // gathered scaled features of the visited rows
  std::vector<double> yc;
  std::vector<double> ym;
  std::vector<std::size_t> rows;  // visited rows (distance-base gathers)
  std::shared_ptr<const GridContext> ctx;
  bool use_base = false;
  bool initial = false;   // the one-time thorough initial fit
  gp::GprOptions fit_opts;     // effort of THIS retrain's fit
  gp::GprOptions extend_opts;  // left on the swapped-in model: add_point
                               // extends at fixed theta between retrains
  stats::Rng rng{0};
  std::optional<faults::FaultInjector> injector;
  /// The owning session's collector (mutex-protected; the session is
  /// kept alive past the job by the join-before-destroy invariant).
  trace::TraceCollector* collector = nullptr;
};

void run_retrain_job(RetrainJob& job) {
  RetrainTicket& ticket = *job.ticket;
  try {
    trace::ScopedCollector tc(*job.collector);
    std::optional<faults::ScopedFaultInjector> fi;
    if (job.injector) fi.emplace(*job.injector);
    const gp::DistanceBase* base = job.use_base ? job.ctx->base() : nullptr;
    const std::span<const std::size_t> rows =
        base != nullptr ? std::span<const std::size_t>(job.rows)
                        : std::span<const std::size_t>{};
    job.cost->set_fit_options(job.fit_opts);
    job.mem->set_fit_options(job.fit_opts);
    job.cost->fit(job.x, job.yc, job.rng, base, rows);
    job.mem->fit(job.x, job.ym, job.rng, base, rows);
    // Between retrains the request path only pays one-row Cholesky
    // extends at the theta this fit just produced — re-optimizing there
    // would put the full-refit cost back on the request path.
    job.cost->set_fit_options(job.extend_opts);
    job.mem->set_fit_options(job.extend_opts);
  } catch (...) {
    ticket.error = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(ticket.m);
    ticket.cost = std::move(job.cost);
    ticket.mem = std::move(job.mem);
    ticket.rng_after = job.rng.save_state();
    if (job.injector) {
      ticket.has_injector = true;
      const auto hits = job.injector->hit_counters();
      const auto fires = job.injector->fire_counters();
      std::copy(hits.begin(), hits.end(), ticket.hits.begin());
      std::copy(fires.begin(), fires.end(), ticket.fires.begin());
    }
    ticket.done = true;
  }
  ticket.cv.notify_all();
}

class RetrainPool {
 public:
  explicit RetrainPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) {
      threads_.emplace_back([this] { loop(); });
    }
  }

  ~RetrainPool() { stop(); }

  /// 0-worker pools run the job inline: same math, no off-path latency.
  void schedule(std::shared_ptr<RetrainJob> job) {
    if (threads_.empty()) {
      run_retrain_job(*job);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      queue_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  /// Work-stealing join support: removes and returns the queued job
  /// carrying `ticket` if a worker has not picked it up yet. The caller
  /// runs it inline — same math, same bits — instead of sleeping through
  /// a scheduler handoff. Returns nullptr when the job is already in
  /// flight (or finished); the caller falls back to the ticket wait.
  std::shared_ptr<RetrainJob> steal(const RetrainTicket* ticket) {
    std::lock_guard<std::mutex> lk(m_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if ((*it)->ticket.get() == ticket) {
        std::shared_ptr<RetrainJob> job = std::move(*it);
        queue_.erase(it);
        return job;
      }
    }
    return nullptr;
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

 private:
  void loop() {
    // Retrain workers run their fits serially inline: drained batches can
    // block on a job's ticket while occupying every compute-pool lane, so
    // fanning the fit out over that same pool would deadlock. Serial
    // execution is bit-identical by the parallel determinism contract.
    const ThreadPool::ScopedInline serial;
    for (;;) {
      std::shared_ptr<RetrainJob> job;
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
        // Queued jobs are completed even while stopping: a joiner may be
        // blocked on their tickets.
        if (queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      run_retrain_job(*job);
    }
  }

  std::mutex m_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<RetrainJob>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

// ---------------------------------------------------------------------------
// One open trajectory. All mutable state is guarded by op_mutex (one
// request at a time per session); the drain pass and the synchronous
// conveniences both go through it.
// ---------------------------------------------------------------------------

struct PendingSuggestion {
  std::size_t local = 0;  // index into remaining at suggest time
  std::size_t row = 0;
  double mu_c = 0.0;
  double mu_m = 0.0;
  bool initial = false;
};

struct Session {
  SessionId id = 0;
  std::shared_ptr<const GridContext> ctx;
  std::unique_ptr<Strategy> strategy;
  SessionOptions options;
  std::string plan_spec;
  std::string fingerprint;

  std::optional<faults::FaultInjector> injector;
  stats::Rng rng{0};
  std::unique_ptr<gp::PosteriorBackend> model_cost;
  std::unique_ptr<gp::PosteriorBackend> model_mem;
  std::optional<linalg::Workspace> ws;  // coalescing path only
  linalg::Matrix x_active{0, 0};        // gathered remaining-candidate tile

  bool track_regret = false;
  double limit_mb = 0.0;

  std::vector<std::size_t> remaining;
  std::vector<std::size_t> visited;
  std::vector<std::size_t> skipped;
  std::vector<double> log_cost;
  std::vector<double> log_mem;
  double cc = 0.0;
  double cr = 0.0;
  std::size_t init_done = 0;
  std::size_t al_done = 0;
  std::size_t since_retrain = 0;
  bool initial_fit_done = false;
  bool exhausted = false;
  std::size_t giveups = 0;
  std::vector<OnlineRecord> records;

  std::optional<PendingSuggestion> pending;
  std::shared_ptr<RetrainTicket> ticket;  // in-flight retrain, if any
  std::uint64_t epoch = 0;

  trace::TraceCollector collector;
  mutable std::mutex op_mutex;
  std::deque<Suggestion> suggestions;
  std::deque<QueryResult> query_results;
};

struct Request {
  enum class Kind { kSuggest, kObserve, kObserveFailure, kQuery };
  Kind kind = Kind::kSuggest;
  SessionId id = 0;
  double cost = 0.0;
  double memory = 0.0;
  linalg::Matrix query{0, 0};
};

struct Shard {
  mutable std::mutex m;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions;
  std::deque<Request> queue;
};

}  // namespace

// ---------------------------------------------------------------------------
// Engine implementation
// ---------------------------------------------------------------------------

struct SessionEngine::Impl {
  explicit Impl(const ServeOptions& options)
      : options_(options),
        shards_(std::max<std::size_t>(options.shards, 1)),
        retrain_pool_(options.retrain_workers) {}

  ~Impl() {
    // Stop the workers before the shards (and their sessions, whose
    // collectors running jobs write into) are destroyed.
    retrain_pool_.stop();
  }

  // -- store ----------------------------------------------------------------

  Shard& shard_of(SessionId id) {
    // Fibonacci spread so consecutive ids land on different shards.
    const std::uint64_t h = id * 0x9e3779b97f4a7c15ULL;
    return shards_[static_cast<std::size_t>(h >> 32) % shards_.size()];
  }
  const Shard& shard_of(SessionId id) const {
    return const_cast<Impl*>(this)->shard_of(id);
  }

  std::shared_ptr<Session> find_session(SessionId id) const {
    const Shard& shard = shard_of(id);
    std::lock_guard<std::mutex> lk(shard.m);
    const auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) {
      throw std::invalid_argument("SessionEngine: unknown session id " +
                                  std::to_string(id));
    }
    return it->second;
  }

  std::shared_ptr<Session> take_session(SessionId id) {
    Shard& shard = shard_of(id);
    std::lock_guard<std::mutex> lk(shard.m);
    const auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) {
      throw std::invalid_argument("SessionEngine: unknown session id " +
                                  std::to_string(id));
    }
    std::shared_ptr<Session> s = std::move(it->second);
    shard.sessions.erase(it);
    return s;
  }

  std::shared_ptr<const GridContext> acquire_context(linalg::Matrix grid) {
    const std::string key = grid_key(grid);
    if (!options_.share_grid_context) {
      return std::make_shared<const GridContext>(std::move(grid),
                                                 options_.coalesce, key);
    }
    std::lock_guard<std::mutex> lk(contexts_mutex_);
    if (const auto it = contexts_.find(key); it != contexts_.end()) {
      if (std::shared_ptr<const GridContext> sp = it->second.lock()) return sp;
    }
    auto sp = std::make_shared<const GridContext>(std::move(grid),
                                                  options_.coalesce, key);
    contexts_[key] = sp;
    return sp;
  }

  std::shared_ptr<Session> make_session(SessionId id, linalg::Matrix grid,
                                        const Strategy& strategy,
                                        SessionOptions options) {
    if (grid.rows() == 0) {
      throw std::invalid_argument("SessionEngine: empty candidate grid");
    }
    if (options.al.n_init == 0) {
      throw std::invalid_argument("SessionEngine: n_init must be >= 1");
    }
    if (options.al.n_init + options.al.iterations > grid.rows()) {
      throw std::invalid_argument(
          "SessionEngine: grid smaller than n_init + iterations");
    }
    if (options.retrain_stride == 0) options.retrain_stride = 1;

    auto s = std::make_shared<Session>();
    s->id = id;
    s->ctx = acquire_context(std::move(grid));
    s->strategy = strategy.clone();
    s->options = std::move(options);

    const faults::FaultPlan* plan_source = !s->options.al.plan.empty()
                                               ? &s->options.al.plan
                                               : faults::env_plan();
    if (plan_source != nullptr) {
      s->plan_spec = plan_source->to_string();
      s->injector.emplace(*plan_source);
    }
    s->fingerprint = online_run_fingerprint(s->ctx->grid, s->strategy->name(),
                                            s->options.al, s->plan_spec);
    s->rng = stats::Rng(s->options.seed);

    const auto kernel_factory = [] { return gp::make_paper_kernel(); };
    s->model_cost =
        gp::make_resilient_backend(s->options.al.backend,
                                   s->options.al.resilience, kernel_factory,
                                   s->options.al.initial_fit);
    s->model_mem =
        gp::make_resilient_backend(s->options.al.backend,
                                   s->options.al.resilience, kernel_factory,
                                   s->options.al.initial_fit);

    s->track_regret = !std::isnan(s->options.al.memory_limit_log10);
    s->limit_mb = s->track_regret
                      ? std::pow(10.0, s->options.al.memory_limit_log10)
                      : 0.0;

    const std::size_t rows = s->ctx->grid.rows();
    s->remaining.resize(rows);
    for (std::size_t i = 0; i < rows; ++i) s->remaining[i] = i;

    if (options_.coalesce) {
      // Pre-size the pass arena like the simulator does: both models'
      // outputs coexist during a sweep, plus the larger scratch peak.
      const gp::WorkspaceBound bc = s->model_cost->workspace_bound(
          s->options.al.n_init, rows, s->options.al.iterations);
      const gp::WorkspaceBound bm = s->model_mem->workspace_bound(
          s->options.al.n_init, rows, s->options.al.iterations);
      s->ws.emplace(std::max(bc.outputs + bc.scratch,
                             bc.outputs + bm.outputs + bm.scratch));
    }
    return s;
  }

  void insert_session(std::shared_ptr<Session> s) {
    Shard& shard = shard_of(s->id);
    std::lock_guard<std::mutex> lk(shard.m);
    if (!shard.sessions.emplace(s->id, std::move(s)).second) {
      throw OnlineContractError("SessionEngine: session id already open");
    }
  }

  // -- retrain lifecycle ----------------------------------------------------

  void schedule_retrain(Session& s, bool initial) {
    auto job = std::make_shared<RetrainJob>();
    job->ticket = std::make_shared<RetrainTicket>();
    job->cost = s.model_cost->clone();
    job->mem = s.model_mem->clone();
    job->x = gather_rows(s.ctx->grid_scaled, s.visited);
    job->yc = s.log_cost;
    job->ym = s.log_mem;
    job->rows = s.visited;
    job->ctx = s.ctx;
    job->use_base = options_.coalesce;
    job->initial = initial;
    job->fit_opts = initial ? s.options.al.initial_fit : s.options.al.refit;
    job->extend_opts = s.options.al.refit;
    job->extend_opts.optimize = false;
    job->rng.restore_state(s.rng.save_state());
    job->injector = s.injector;
    job->collector = &s.collector;
    s.ticket = job->ticket;
    trace::count("serve.retrains_scheduled");
    retrain_pool_.schedule(std::move(job));
  }

  /// Swaps a finished (blocking until finished) retrain in: models, rng
  /// stream, fault-injector counters, epoch. Any rng draws or injector
  /// consultations other requests made between schedule and join are
  /// deterministically superseded — the job's copies are the canonical
  /// continuation, which is what makes the trajectory byte-identical to
  /// the inline (serial) schedule.
  void join_retrain(Session& s) {
    if (!s.ticket) return;
    const std::shared_ptr<RetrainTicket> t = std::move(s.ticket);
    s.ticket.reset();
    // Work-stealing join: if the worker has not picked the job up yet,
    // run it right here. On a saturated box this degrades gracefully to
    // inline retrains instead of paying a sleep + scheduler handoff per
    // swap; when workers keep up, the steal misses and we wait as before.
    if (const std::shared_ptr<RetrainJob> job = retrain_pool_.steal(t.get())) {
      trace::count("serve.retrain_steals");
      run_retrain_job(*job);
    }
    std::unique_lock<std::mutex> lk(t->m);
    t->cv.wait(lk, [&] { return t->done; });
    if (t->error) std::rethrow_exception(t->error);
    s.model_cost = std::move(t->cost);
    s.model_mem = std::move(t->mem);
    s.rng.restore_state(t->rng_after);
    if (s.injector && t->has_injector) {
      s.injector->restore_counters(t->hits, t->fires);
    }
    ++s.epoch;
    trace::count("serve.retrain_swaps");
  }

  // -- per-session request processing (op_mutex held) -----------------------

  static bool session_done(const Session& s) {
    if (!s.remaining.empty() && s.init_done < s.options.al.n_init) {
      return false;  // init phase still has picks to make
    }
    if (s.exhausted || s.remaining.empty() || s.visited.empty()) return true;
    return s.al_done >= s.options.al.iterations;
  }

  void learn(Session& s, std::size_t row, double cost, double memory,
             double mu_c, double mu_m, bool initial) {
    OnlineRecord record;
    record.grid_row = row;
    record.cost = cost;
    record.memory = memory;
    record.predicted_cost_log10 = mu_c;
    record.predicted_mem_log10 = mu_m;
    record.initial_phase = initial;
    s.cc += cost;
    if (s.track_regret) s.cr += individual_regret(cost, memory, s.limit_mb);
    record.cumulative_cost = s.cc;
    record.cumulative_regret = s.cr;
    s.records.push_back(record);
    s.visited.push_back(row);
    s.log_cost.push_back(std::log10(cost));
    s.log_mem.push_back(std::log10(memory));
  }

  /// The one-time thorough initial fit, scheduled the moment the init
  /// phase can no longer produce another record (quota met or grid
  /// drained) — the same stream position the driver runs it at.
  void maybe_initial_fit(Session& s) {
    if (s.initial_fit_done || s.visited.empty()) return;
    if (s.init_done < s.options.al.n_init && !s.remaining.empty()) return;
    s.initial_fit_done = true;
    schedule_retrain(s, /*initial=*/true);
  }

  void gather_active(Session& s) {
    s.x_active = gather_rows(s.ctx->grid_scaled, s.remaining);
  }

  Suggestion process_suggest(Session& s) {
    join_retrain(s);
    trace::count("serve.requests");
    if (s.pending) {
      throw OnlineContractError(
          "SessionEngine: suggest while a suggestion is outstanding");
    }
    Suggestion out;
    if (s.init_done < s.options.al.n_init && !s.remaining.empty()) {
      // Init phase: uniform pick, drawn BEFORE the experiment runs and
      // erased when its outcome is reported — the driver's exact order.
      const std::size_t local = s.rng.uniform_index(s.remaining.size());
      const std::size_t row = s.remaining[local];
      s.pending = PendingSuggestion{local, row, 0.0, 0.0, /*initial=*/true};
      out.initial_phase = true;
      out.grid_row = row;
      const auto features = s.ctx->grid.row(row);
      out.features.assign(features.begin(), features.end());
      return out;
    }
    if (session_done(s)) {
      out.done = true;
      return out;
    }
    std::optional<std::size_t> pick;
    double mu_c = 0.0;
    double mu_m = 0.0;
    std::size_t row = 0;
    if (options_.coalesce) {
      // Panel sweep over the shared-context pool: O(M·n) resume between
      // retrains, bit-identical to the fresh predict() below.
      gather_active(s);
      linalg::Workspace::Scope scope(*s.ws);
      const gp::CandidateRef pool{s.x_active, s.remaining};
      // Strategies that never read candidate means (MaxSigma, RandUniform)
      // let the backend skip the O(n·m) mean pass; only the one selected
      // candidate's mean is recovered afterwards, bit-identically.
      const bool with_mean = s.strategy->needs_mean();
      const gp::PosteriorSpans pc =
          s.model_cost->predict_candidates(pool, *s.ws, with_mean);
      const gp::PosteriorSpans pm =
          s.model_mem->predict_candidates(pool, *s.ws, with_mean);
      const CandidateView view{s.x_active, pc.mean, pc.stddev, pm.mean,
                               pm.stddev};
      pick = s.strategy->select(view, s.rng);
      if (pick) {
        mu_c = pc.mean.empty() ? s.model_cost->candidate_mean(*pick)
                               : pc.mean[*pick];
        mu_m = pm.mean.empty() ? s.model_mem->candidate_mean(*pick)
                               : pm.mean[*pick];
      }
    } else {
      // Per-session-serial reference recipe: a fresh full sweep.
      const linalg::Matrix x_remaining =
          gather_rows(s.ctx->grid_scaled, s.remaining);
      const gp::Prediction pred_cost = s.model_cost->predict(x_remaining);
      const gp::Prediction pred_mem = s.model_mem->predict(x_remaining);
      const CandidateView view{x_remaining, pred_cost.mean, pred_cost.stddev,
                               pred_mem.mean, pred_mem.stddev};
      pick = s.strategy->select(view, s.rng);
      if (pick) {
        mu_c = pred_cost.mean[*pick];
        mu_m = pred_mem.mean[*pick];
      }
    }
    if (!pick) {
      s.exhausted = true;
      out.done = true;
      return out;
    }
    row = s.remaining[*pick];
    s.pending = PendingSuggestion{*pick, row, mu_c, mu_m, /*initial=*/false};
    out.grid_row = row;
    const auto features = s.ctx->grid.row(row);
    out.features.assign(features.begin(), features.end());
    return out;
  }

  void process_observe(Session& s, double cost, double memory) {
    join_retrain(s);
    trace::count("serve.requests");
    if (!s.pending) {
      throw OnlineContractError(
          "SessionEngine: observe without an outstanding suggestion");
    }
    if (!(cost > 0.0) || !(memory > 0.0)) {
      throw OnlineContractError(
          "SessionEngine: non-positive measurement reported");
    }
    const PendingSuggestion p = *s.pending;
    s.pending.reset();
    s.remaining.erase(s.remaining.begin() +
                      static_cast<std::ptrdiff_t>(p.local));
    if (p.initial) {
      learn(s, p.row, cost, memory, 0.0, 0.0, /*initial=*/true);
      ++s.init_done;
      maybe_initial_fit(s);
      return;
    }
    ++s.al_done;
    if (options_.coalesce) {
      // Keep the candidate-panel caches aligned with the shrunken pool
      // (cache maintenance only — the serial path never builds a panel).
      s.model_cost->remove_candidate(p.local);
      s.model_mem->remove_candidate(p.local);
    }
    learn(s, p.row, cost, memory, p.mu_c, p.mu_m, /*initial=*/false);
    ++s.since_retrain;
    if (s.since_retrain >= s.options.retrain_stride) {
      // Full (optimizing) refit, off the request path.
      s.since_retrain = 0;
      schedule_retrain(s, /*initial=*/false);
      return;
    }
    // Between retrains: one-row Cholesky extend at fixed hyperparameters,
    // with the panel appended through the after-pool ref.
    const double yc = s.log_cost.back();
    const double ym = s.log_mem.back();
    std::optional<gp::CandidateRef> after;
    if (options_.coalesce && !s.remaining.empty()) {
      gather_active(s);
      after.emplace(gp::CandidateRef{s.x_active, s.remaining});
    }
    const gp::CandidateRef* after_ptr = after ? &*after : nullptr;
    s.model_cost->add_point(s.ctx->grid_scaled.row(p.row), yc, p.row, s.rng,
                            after_ptr);
    s.model_mem->add_point(s.ctx->grid_scaled.row(p.row), ym, p.row, s.rng,
                           after_ptr);
  }

  void process_observe_failure(Session& s) {
    join_retrain(s);
    trace::count("serve.requests");
    if (!s.pending) {
      throw OnlineContractError(
          "SessionEngine: observe_failure without an outstanding suggestion");
    }
    const PendingSuggestion p = *s.pending;
    s.pending.reset();
    s.remaining.erase(s.remaining.begin() +
                      static_cast<std::ptrdiff_t>(p.local));
    s.skipped.push_back(p.row);
    ++s.giveups;
    trace::count("serve.observe_failures");
    if (p.initial) {
      // Does not count toward n_init — but the grid may have just
      // drained, in which case the initial fit is due now.
      maybe_initial_fit(s);
      return;
    }
    ++s.al_done;  // the iteration is consumed, like a driver give-up
    if (options_.coalesce && s.initial_fit_done) {
      s.model_cost->remove_candidate(p.local);
      s.model_mem->remove_candidate(p.local);
    }
  }

  QueryResult process_query(Session& s, const linalg::Matrix& x) {
    trace::count("serve.requests");
    // Queries deliberately do NOT join an in-flight retrain: they are
    // served on the epoch current when they run (the old posterior), so
    // the read path never blocks on a background rebuild. The one
    // exception is a query racing the session's FIRST fit, which has no
    // old posterior to serve.
    if (!s.model_cost->fitted()) join_retrain(s);
    if (!s.model_cost->fitted()) {
      throw OnlineContractError(
          "SessionEngine: query before the session learned anything");
    }
    const linalg::Matrix xs = s.ctx->scaler.transform(x);
    QueryResult out;
    out.cost = s.model_cost->predict(xs);
    out.memory = s.model_mem->predict(xs);
    return out;
  }

  void process_request(Session& s, Request& r) {
    switch (r.kind) {
      case Request::Kind::kSuggest:
        s.suggestions.push_back(process_suggest(s));
        break;
      case Request::Kind::kObserve:
        process_observe(s, r.cost, r.memory);
        break;
      case Request::Kind::kObserveFailure:
        process_observe_failure(s);
        break;
      case Request::Kind::kQuery:
        s.query_results.push_back(process_query(s, r.query));
        break;
    }
  }

  // -- queueing + drain -----------------------------------------------------

  void enqueue(Request r) {
    Shard& shard = shard_of(r.id);
    std::lock_guard<std::mutex> lk(shard.m);
    if (shard.sessions.find(r.id) == shard.sessions.end()) {
      throw std::invalid_argument("SessionEngine: unknown session id " +
                                  std::to_string(r.id));
    }
    shard.queue.push_back(std::move(r));
  }

  std::size_t drain() {
    // One drain at a time; enqueues stay cheap and never block on it.
    std::lock_guard<std::mutex> drain_lk(drain_mutex_);

    struct SessionBatch {
      std::shared_ptr<Session> session;
      std::vector<Request> requests;
      bool has_sweep = false;
    };
    std::vector<SessionBatch> batches;
    std::unordered_map<SessionId, std::size_t> index;
    std::size_t total = 0;

    for (Shard& shard : shards_) {
      std::deque<Request> queue;
      std::lock_guard<std::mutex> lk(shard.m);
      queue.swap(shard.queue);
      for (Request& r : queue) {
        const auto it = shard.sessions.find(r.id);
        if (it == shard.sessions.end()) continue;  // closed since enqueue
        const auto [slot, inserted] = index.emplace(r.id, batches.size());
        if (inserted) batches.push_back({it->second, {}, false});
        SessionBatch& batch = batches[slot->second];
        if (r.kind == Request::Kind::kSuggest ||
            r.kind == Request::Kind::kQuery) {
          batch.has_sweep = true;
        }
        batch.requests.push_back(std::move(r));
        ++total;
      }
    }
    if (batches.empty()) return 0;

    std::size_t width = 0;
    for (const SessionBatch& b : batches) width += b.has_sweep ? 1 : 0;
    if (width > 0) {
      trace::count("serve.batched_sweeps");
      trace::count("serve.coalesce_width", width);
    }

    // Coalesced pass on the ThreadPool: one task per session, requests in
    // enqueue order inside it. Per-session errors are captured so one
    // broken session cannot poison its neighbors, then the first (lowest
    // batch index — deterministic) is rethrown.
    std::vector<std::exception_ptr> errors(batches.size());
    parallel_for(batches.size(), [&](std::size_t i) {
      SessionBatch& batch = batches[i];
      Session& s = *batch.session;
      std::lock_guard<std::mutex> lk(s.op_mutex);
      trace::ScopedCollector tc(s.collector);
      std::optional<faults::ScopedFaultInjector> fi;
      if (s.injector) fi.emplace(*s.injector);
      for (Request& r : batch.requests) {
        try {
          process_request(s, r);
        } catch (...) {
          errors[i] = std::current_exception();
          break;  // this session's batch is poisoned; neighbors continue
        }
      }
    });
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
    return total;
  }

  template <typename Fn>
  decltype(auto) with_session(SessionId id, Fn&& fn) {
    const std::shared_ptr<Session> s = find_session(id);
    std::lock_guard<std::mutex> lk(s->op_mutex);
    trace::ScopedCollector tc(s->collector);
    std::optional<faults::ScopedFaultInjector> fi;
    if (s->injector) fi.emplace(*s->injector);
    return fn(*s);
  }

  // -- persistence ----------------------------------------------------------

  OnlineCheckpoint snapshot(Session& s) {
    if (s.pending) {
      throw OnlineContractError(
          "SessionEngine: checkpoint with a suggestion outstanding");
    }
    join_retrain(s);  // fold the in-flight posterior in first
    OnlineCheckpoint snap;
    snap.fingerprint = s.fingerprint;
    snap.al_iterations_done = s.al_done;
    snap.visited.assign(s.visited.begin(), s.visited.end());
    snap.skipped.assign(s.skipped.begin(), s.skipped.end());
    snap.log_cost = s.log_cost;
    snap.log_mem = s.log_mem;
    snap.theta_cost = s.model_cost->log_params();
    snap.theta_mem = s.model_mem->log_params();
    snap.backend_state_cost = s.model_cost->save_state();
    snap.backend_state_mem = s.model_mem->save_state();
    snap.rng = s.rng.save_state();
    snap.cc = s.cc;
    snap.cr = s.cr;
    snap.oracle_giveups = s.giveups;
    snap.exhausted_safe_candidates = s.exhausted;
    if (s.injector) {
      const auto hits = s.injector->hit_counters();
      const auto fires = s.injector->fire_counters();
      std::copy(hits.begin(), hits.end(), snap.fault_hits.begin());
      std::copy(fires.begin(), fires.end(), snap.fault_fires.begin());
    }
    snap.records = s.records;
    return snap;
  }

  void save(Session& s) {
    if (s.options.checkpoint.empty()) {
      throw OnlineContractError(
          "SessionEngine: session has no checkpoint path");
    }
    trace::count("serve.checkpoints");
    save_online_checkpoint(snapshot(s), s.options.checkpoint,
                           options_.checkpoint_retain);
  }

  void restore(Session& s) {
    if (s.options.checkpoint.empty()) {
      throw OnlineContractError(
          "SessionEngine: restore_session requires a checkpoint path");
    }
    const std::optional<OnlineCheckpoint> resumed = load_online_checkpoint(
        s.options.checkpoint, options_.checkpoint_retain);
    if (!resumed) {
      throw std::runtime_error("SessionEngine: no checkpoint at " +
                               s.options.checkpoint.string());
    }
    if (resumed->fingerprint != s.fingerprint) {
      throw std::runtime_error(
          "SessionEngine: checkpoint at " + s.options.checkpoint.string() +
          " was written by an incompatible configuration (fingerprint "
          "mismatch); refusing to restore");
    }
    trace::count("serve.sessions_restored");

    s.visited.assign(resumed->visited.begin(), resumed->visited.end());
    s.skipped.assign(resumed->skipped.begin(), resumed->skipped.end());
    s.log_cost = resumed->log_cost;
    s.log_mem = resumed->log_mem;
    s.cc = resumed->cc;
    s.cr = resumed->cr;
    s.al_done = resumed->al_iterations_done;
    s.records = resumed->records;
    s.giveups = resumed->oracle_giveups;
    s.exhausted = resumed->exhausted_safe_candidates;
    s.init_done = 0;
    for (const OnlineRecord& record : s.records) {
      if (record.initial_phase) ++s.init_done;
    }
    // Remaining = grid order minus visited/skipped, like the driver.
    std::vector<char> gone(s.ctx->grid.rows(), 0);
    for (const std::size_t row : s.visited) gone[row] = 1;
    for (const std::size_t row : s.skipped) gone[row] = 1;
    s.remaining.clear();
    for (std::size_t i = 0; i < s.ctx->grid.rows(); ++i) {
      if (gone[i] == 0) s.remaining.push_back(i);
    }

    // Rebuild both surrogates AT the saved hyperparameters — rng-free
    // (optimize off); injector counters are restored right after, so any
    // fault-site consultations the rebuild makes are discarded. Mirrors
    // OnlineAlDriver's resume block line for line.
    gp::GprOptions rebuild = s.options.al.refit;
    rebuild.optimize = false;
    s.model_cost->set_fit_options(rebuild);
    s.model_mem->set_fit_options(rebuild);
    if (!resumed->backend_state_cost.empty()) {
      s.model_cost->restore_state(resumed->backend_state_cost);
    }
    if (!resumed->backend_state_mem.empty()) {
      s.model_mem->restore_state(resumed->backend_state_mem);
    }
    s.model_cost->set_log_params(resumed->theta_cost);
    s.model_mem->set_log_params(resumed->theta_mem);
    if (!s.visited.empty()) {
      const linalg::Matrix x = gather_rows(s.ctx->grid_scaled, s.visited);
      const gp::DistanceBase* base =
          options_.coalesce ? s.ctx->base() : nullptr;
      const std::span<const std::size_t> rows =
          base != nullptr ? std::span<const std::size_t>(s.visited)
                          : std::span<const std::size_t>{};
      s.model_cost->fit(x, s.log_cost, s.rng, base, rows);
      s.model_mem->fit(x, s.log_mem, s.rng, base, rows);
    }
    s.rng.restore_state(resumed->rng);
    if (s.injector) {
      s.injector->restore_counters(resumed->fault_hits, resumed->fault_fires);
    }
    if (s.init_done >= s.options.al.n_init && !s.visited.empty()) {
      // The thorough initial fit already happened (its result travels in
      // theta). Between full retrains the request path only extends at
      // fixed theta, so the models keep the non-optimizing `rebuild`
      // options already set above; the next scheduled retrain job sets
      // the real refit effort itself.
      s.initial_fit_done = true;
      // Re-derive the stride phase so restoring with the same stride
      // keeps the retrain schedule — and the trajectory — byte-identical
      // to the uninterrupted session: full refits land every stride-th
      // successful AL observation, so the phase is the AL success count
      // modulo the stride.
      s.since_retrain = (s.records.size() - s.init_done) %
                        s.options.retrain_stride;
    } else {
      // Init phase still open; the one-time fit runs when it closes —
      // possibly right now, if the checkpoint drained the grid mid-init.
      maybe_initial_fit(s);
    }
  }

  ServeOptions options_;
  std::vector<Shard> shards_;
  std::mutex drain_mutex_;
  std::mutex contexts_mutex_;
  std::unordered_map<std::string, std::weak_ptr<const GridContext>> contexts_;
  RetrainPool retrain_pool_;
};

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

SessionEngine::SessionEngine(ServeOptions options)
    : options_(options), impl_(std::make_unique<Impl>(options_)) {}

SessionEngine::~SessionEngine() = default;

void SessionEngine::open_session(SessionId id, linalg::Matrix grid,
                                 const Strategy& strategy,
                                 SessionOptions options) {
  std::shared_ptr<Session> s =
      impl_->make_session(id, std::move(grid), strategy, std::move(options));
  impl_->insert_session(std::move(s));
  trace::count("serve.sessions_opened");
}

void SessionEngine::restore_session(SessionId id, linalg::Matrix grid,
                                    const Strategy& strategy,
                                    SessionOptions options) {
  std::shared_ptr<Session> s =
      impl_->make_session(id, std::move(grid), strategy, std::move(options));
  {
    trace::ScopedCollector tc(s->collector);
    std::optional<faults::ScopedFaultInjector> fi;
    if (s->injector) fi.emplace(*s->injector);
    impl_->restore(*s);
  }
  impl_->insert_session(std::move(s));
}

void SessionEngine::checkpoint_session(SessionId id) {
  impl_->with_session(id, [&](Session& s) { impl_->save(s); });
}

void SessionEngine::evict_session(SessionId id) {
  impl_->with_session(id, [&](Session& s) { impl_->save(s); });
  const std::shared_ptr<Session> s = impl_->take_session(id);
  std::lock_guard<std::mutex> lk(s->op_mutex);  // let in-flight work land
  trace::count("serve.evictions");
}

void SessionEngine::close_session(SessionId id) {
  const std::shared_ptr<Session> s = impl_->take_session(id);
  std::lock_guard<std::mutex> lk(s->op_mutex);
  trace::ScopedCollector tc(s->collector);
  impl_->join_retrain(*s);  // the job writes into this session; wait it out
}

OnlineResult SessionEngine::finish_session(SessionId id) {
  const std::shared_ptr<Session> s = impl_->take_session(id);
  std::lock_guard<std::mutex> lk(s->op_mutex);
  trace::ScopedCollector tc(s->collector);
  std::optional<faults::ScopedFaultInjector> fi;
  if (s->injector) fi.emplace(*s->injector);
  impl_->join_retrain(*s);
  OnlineResult result;
  result.records = std::move(s->records);
  result.exhausted_safe_candidates = s->exhausted;
  result.oracle_giveups = s->giveups;
  result.cost_model = std::move(s->model_cost);
  result.memory_model = std::move(s->model_mem);
  return result;
}

void SessionEngine::enqueue_suggest(SessionId id) {
  impl_->enqueue(Request{Request::Kind::kSuggest, id});
}

void SessionEngine::enqueue_observe(SessionId id, double cost, double memory) {
  impl_->enqueue(Request{Request::Kind::kObserve, id, cost, memory});
}

void SessionEngine::enqueue_observe_failure(SessionId id) {
  impl_->enqueue(Request{Request::Kind::kObserveFailure, id});
}

void SessionEngine::enqueue_query(SessionId id, linalg::Matrix x) {
  Request r{Request::Kind::kQuery, id};
  r.query = std::move(x);
  impl_->enqueue(std::move(r));
}

std::size_t SessionEngine::drain() { return impl_->drain(); }

std::optional<Suggestion> SessionEngine::take_suggestion(SessionId id) {
  const std::shared_ptr<Session> s = impl_->find_session(id);
  std::lock_guard<std::mutex> lk(s->op_mutex);
  if (s->suggestions.empty()) return std::nullopt;
  Suggestion out = std::move(s->suggestions.front());
  s->suggestions.pop_front();
  return out;
}

std::optional<QueryResult> SessionEngine::take_query_result(SessionId id) {
  const std::shared_ptr<Session> s = impl_->find_session(id);
  std::lock_guard<std::mutex> lk(s->op_mutex);
  if (s->query_results.empty()) return std::nullopt;
  QueryResult out = std::move(s->query_results.front());
  s->query_results.pop_front();
  return out;
}

Suggestion SessionEngine::suggest(SessionId id) {
  return impl_->with_session(
      id, [&](Session& s) { return impl_->process_suggest(s); });
}

void SessionEngine::observe(SessionId id, double cost, double memory) {
  impl_->with_session(
      id, [&](Session& s) { impl_->process_observe(s, cost, memory); });
}

void SessionEngine::observe_failure(SessionId id) {
  impl_->with_session(id,
                      [&](Session& s) { impl_->process_observe_failure(s); });
}

QueryResult SessionEngine::query_posterior(SessionId id,
                                           const linalg::Matrix& x) {
  return impl_->with_session(
      id, [&](Session& s) { return impl_->process_query(s, x); });
}

std::size_t SessionEngine::session_count() const {
  std::size_t n = 0;
  for (const Shard& shard : impl_->shards_) {
    std::lock_guard<std::mutex> lk(shard.m);
    n += shard.sessions.size();
  }
  return n;
}

SessionStatus SessionEngine::status(SessionId id) const {
  const std::shared_ptr<Session> s = impl_->find_session(id);
  std::lock_guard<std::mutex> lk(s->op_mutex);
  SessionStatus st;
  st.records = s->records.size();
  st.init_done = s->init_done;
  st.al_done = s->al_done;
  st.remaining = s->remaining.size();
  st.oracle_giveups = s->giveups;
  st.suggestion_pending = s->pending.has_value();
  st.done = Impl::session_done(*s) && !s->pending;
  st.exhausted_safe_candidates = s->exhausted;
  st.epoch = s->epoch;
  if (const auto* res =
          dynamic_cast<const gp::ResilientBackend*>(s->model_cost.get())) {
    st.cost_health = res->health();
    st.cost_active = res->active_kind();
  } else {
    st.cost_active = s->model_cost->kind();
  }
  if (const auto* res =
          dynamic_cast<const gp::ResilientBackend*>(s->model_mem.get())) {
    st.mem_health = res->health();
    st.mem_active = res->active_kind();
  } else {
    st.mem_active = s->model_mem->kind();
  }
  return st;
}

trace::TraceReport SessionEngine::session_trace(SessionId id) const {
  const std::shared_ptr<Session> s = impl_->find_session(id);
  std::lock_guard<std::mutex> lk(s->op_mutex);
  return s->collector.report();
}

}  // namespace alamr::core
