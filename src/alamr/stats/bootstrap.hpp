#pragma once

// Bootstrap confidence intervals for cross-trajectory aggregation.
//
// The paper reasons about "statistical properties of the algorithms
// independent of the initial conditions" by averaging many AL trajectories;
// the benches report bootstrap CIs of per-iteration metrics across
// trajectories so shape claims (who wins, where curves flatten) come with
// uncertainty estimates.

#include <functional>
#include <span>
#include <vector>

#include "alamr/stats/rng.hpp"

namespace alamr::stats {

/// A two-sided percentile interval around a point estimate.
struct Interval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile-bootstrap interval of `statistic` over `values`.
/// `confidence` in (0, 1), e.g. 0.95.
Interval bootstrap_interval(std::span<const double> values,
                            const std::function<double(std::span<const double>)>& statistic,
                            std::size_t resamples, double confidence, Rng& rng);

/// Convenience wrapper: bootstrap CI of the mean.
Interval bootstrap_mean(std::span<const double> values, std::size_t resamples,
                        double confidence, Rng& rng);

}  // namespace alamr::stats
