#pragma once

// Trajectory checkpointing: the complete mid-trajectory state of the AL
// driver, serialized to JSON with doubles stored as exact 64-bit hex bit
// patterns and written by atomic rename (write .tmp, fsync-free rename),
// so a reader never observes a torn file and a resumed run continues
// byte-for-byte identically to an uninterrupted one.
//
// Byte-identical resume leans on two repo invariants: (1) the posterior
// is a pure function of (X_learned, labels, theta) and the incremental and
// full rebuild paths produce the same bits (golden-tested), so rebuilding
// the models at the saved theta reproduces the live state exactly; and
// (2) all randomness flows through the trajectory's Rng, whose full state
// (including the Marsaglia-polar cache) is captured here.

#include <array>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "alamr/core/faults.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/stats/rng.hpp"

namespace alamr::core {

/// Everything run_trajectory needs to continue mid-flight.
struct TrajectoryCheckpoint {
  /// Compatibility fingerprint: the trajectory fingerprint (options +
  /// strategy + partition) plus the canonical fault-plan spec. Resume
  /// refuses a checkpoint whose fingerprint differs — a different config
  /// could silently produce a chimera trajectory.
  std::string fingerprint;

  std::uint64_t passes = 0;   // loop passes recorded (== iterations.size())
  std::uint64_t trained = 0;  // successful (uncensored) acquisitions

  std::vector<std::uint64_t> learned;  // Init + acquired dataset rows
  std::vector<std::uint64_t> active;   // remaining Active dataset rows
  /// Training labels in learned order (penalized labels included — they
  /// are NOT recoverable from the dataset).
  std::vector<double> c_learned;
  std::vector<double> m_learned;

  /// Kernel log-hyperparameters of the two models at the checkpoint.
  /// Ensemble backends concatenate per-expert parameters in their
  /// log_params() order.
  std::vector<double> theta_cost;
  std::vector<double> theta_mem;

  /// Opaque auxiliary backend state (PosteriorBackend::save_state) — state
  /// NOT derivable from (learned rows, labels, theta), e.g. the
  /// local-experts backend's frozen centroids. Empty for backends without
  /// such state (exact, subset-of-data).
  std::string backend_state_cost;
  std::string backend_state_mem;

  stats::Rng::State rng;

  double cc = 0.0;
  double cr = 0.0;
  double last_rmse_cost = 0.0;
  double last_rmse_mem = 0.0;
  double last_rmse_weighted = 0.0;
  bool last_record_evaluated = true;
  double initial_rmse_cost = 0.0;
  double initial_rmse_mem = 0.0;

  // Stabilizing-predictions stopping-rule state.
  std::uint64_t stable_streak = 0;
  std::vector<double> previous_cost_mu_log;

  std::uint64_t censored_count = 0;
  double censored_cost = 0.0;

  // Fault-injector counters, so the continuation consults schedules at
  // the same hit numbers the uninterrupted run would have.
  std::array<std::uint64_t, faults::kSiteCount> fault_hits{};
  std::array<std::uint64_t, faults::kSiteCount> fault_fires{};

  std::vector<IterationRecord> iterations;
};

/// Serializes `state` to JSON (doubles as hex bit patterns).
std::string checkpoint_to_json(const TrajectoryCheckpoint& state);

/// Parses what checkpoint_to_json produced. Throws std::runtime_error on
/// malformed input.
TrajectoryCheckpoint checkpoint_from_json(const std::string& json);

/// Atomic save: writes `path` + ".tmp" then renames over `path`.
void save_checkpoint(const TrajectoryCheckpoint& state,
                     const std::filesystem::path& path);

/// Loads `path`; std::nullopt when the file does not exist. Throws
/// std::runtime_error when it exists but cannot be parsed.
std::optional<TrajectoryCheckpoint> load_checkpoint(
    const std::filesystem::path& path);

}  // namespace alamr::core
