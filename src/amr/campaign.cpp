#include "alamr/amr/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <tuple>

#include "alamr/amr/solver.hpp"
#include "alamr/stats/distributions.hpp"

namespace alamr::amr {

namespace {

/// Physics key: everything except the machine parameter p.
using PhysicsKey = std::tuple<int, int, double, double>;

PhysicsKey physics_key(const Config& c) {
  return {c.mx, c.max_level, c.r0, c.rhoin};
}

}  // namespace

Campaign::Campaign(CampaignOptions options) : options_(std::move(options)) {
  if (options_.p_values.empty() || options_.mx_values.empty() ||
      options_.level_values.empty() || options_.r0_values.empty() ||
      options_.rhoin_values.empty()) {
    throw std::invalid_argument("Campaign: empty parameter axis");
  }
  if (options_.unique_configs > options_.dataset_size) {
    throw std::invalid_argument("Campaign: unique_configs exceeds dataset_size");
  }
}

std::vector<Config> Campaign::full_grid() const {
  std::vector<Config> grid;
  grid.reserve(options_.p_values.size() * options_.mx_values.size() *
               options_.level_values.size() * options_.r0_values.size() *
               options_.rhoin_values.size());
  for (const int p : options_.p_values) {
    for (const int mx : options_.mx_values) {
      for (const int level : options_.level_values) {
        for (const double r0 : options_.r0_values) {
          for (const double rhoin : options_.rhoin_values) {
            grid.push_back(Config{p, mx, level, r0, rhoin});
          }
        }
      }
    }
  }
  return grid;
}

double Campaign::work_estimate(const Config& config) {
  // cells-per-step ~ mx^2 * 4^maxlevel (refined region), steps ~ mx * 2^maxlevel.
  return std::pow(static_cast<double>(config.mx), 3.0) *
         std::pow(8.0, static_cast<double>(config.max_level));
}

ShockBubbleProblem Campaign::make_problem(const Config& config) const {
  ShockBubbleProblem problem = options_.base_problem;
  problem.mx = config.mx;
  problem.max_level = config.max_level;
  problem.r0 = config.r0;
  problem.rhoin = config.rhoin;
  problem.validate();
  return problem;
}

std::vector<JobRecord> Campaign::run(const ProgressFn& progress) {
  stats::Rng rng(options_.seed);

  std::vector<Config> pool = full_grid();
  if (options_.unique_configs > pool.size()) {
    throw std::invalid_argument("Campaign: unique_configs exceeds grid size");
  }

  // Sampling weights: sparser in the expensive regime.
  std::vector<double> weights(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    weights[i] = std::pow(work_estimate(pool[i]), -options_.expense_bias);
  }

  std::map<PhysicsKey, std::shared_ptr<SolverStats>> physics_cache;
  auto solve_physics = [&](const Config& config) -> const SolverStats& {
    const PhysicsKey key = physics_key(config);
    auto& slot = physics_cache[key];
    if (!slot) {
      FvSolver solver(make_problem(config));
      slot = std::make_shared<SolverStats>(solver.run(options_.max_steps_per_job));
    }
    return *slot;
  };

  std::vector<JobRecord> records;
  records.reserve(options_.dataset_size + options_.dataset_size / 2);
  std::size_t usable = 0;
  std::size_t unique_usable = 0;
  std::vector<Config> usable_configs;  // for replicate draws

  auto run_one = [&](const Config& config, bool replicate) {
    const SolverStats& stats = solve_physics(config);
    JobRecord record;
    record.config = config;
    record.replicate = replicate;
    record.result = simulate_job(stats, config.p, options_.machine, rng);
    record.reported_maxrss_mb = record.result.maxrss_mb;
    if (record.result.wallclock_seconds < options_.maxrss_bug_threshold_seconds &&
        rng.uniform() < options_.maxrss_bug_probability) {
      record.reported_maxrss_mb = 0.0;
      record.maxrss_missing = true;
    }
    if (!record.maxrss_missing) {
      ++usable;
      if (!replicate) {
        ++unique_usable;
        usable_configs.push_back(config);
      }
    }
    records.push_back(record);
    if (progress) progress(records.size(), options_.dataset_size);
  };

  // Phase 1: unique configurations, sampled without replacement with
  // inverse-expense weights, until unique_usable usable rows exist.
  while (unique_usable < options_.unique_configs && !pool.empty()) {
    const std::size_t pick =
        stats::sample_categorical(std::span<const double>(weights), rng);
    const Config config = pool[pick];
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    weights.erase(weights.begin() + static_cast<std::ptrdiff_t>(pick));
    run_one(config, /*replicate=*/false);
  }

  // Phase 2: replicate runs of already-sampled configurations (fresh
  // measurement noise) until the dataset target is met.
  while (usable < options_.dataset_size && !usable_configs.empty()) {
    const Config config =
        usable_configs[rng.uniform_index(usable_configs.size())];
    run_one(config, /*replicate=*/true);
  }

  return records;
}

data::Dataset Campaign::to_dataset(const std::vector<JobRecord>& records,
                                   std::size_t limit) {
  std::vector<const JobRecord*> usable;
  for (const JobRecord& record : records) {
    if (!record.maxrss_missing) usable.push_back(&record);
  }
  if (limit > 0 && usable.size() > limit) usable.resize(limit);

  data::Dataset dataset;
  dataset.feature_names = {"p", "mx", "maxlevel", "r0", "rhoin"};
  dataset.x = linalg::Matrix(usable.size(), 5);
  dataset.wallclock.reserve(usable.size());
  dataset.cost.reserve(usable.size());
  dataset.memory.reserve(usable.size());
  for (std::size_t n = 0; n < usable.size(); ++n) {
    const JobRecord& record = *usable[n];
    dataset.x(n, 0) = static_cast<double>(record.config.p);
    dataset.x(n, 1) = static_cast<double>(record.config.mx);
    dataset.x(n, 2) = static_cast<double>(record.config.max_level);
    dataset.x(n, 3) = record.config.r0;
    dataset.x(n, 4) = record.config.rhoin;
    dataset.wallclock.push_back(record.result.wallclock_seconds);
    dataset.cost.push_back(record.result.cost_node_hours);
    dataset.memory.push_back(record.reported_maxrss_mb);
  }
  dataset.validate();
  return dataset;
}

}  // namespace alamr::amr
