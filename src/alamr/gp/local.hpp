#pragma once

// Local Gaussian-process ensembles (paper Sec. VI future work: "train
// multiple local performance models simultaneously ... in the context of
// Adaptive Mesh Refinement simulations", citing locally-weighted
// approaches [22]).
//
// The input space is split by a user-provided labeling function — for AMR
// performance data a natural choice is the maxlevel feature, since each
// level multiplies the work by a near-constant factor — and an
// independent GPR is fitted per region with at least min_region_size
// samples. Predictions dispatch to the region's model; queries whose
// region has no model fall back either to a global model fitted on
// everything (the historical default) or to the global PRIOR (running
// target mean + prior stddev) when the ensemble is asked to stay strictly
// sub-cubic (Fallback::kPrior — the kLocalExperts PosteriorBackend's
// mode, where an O(n^3) global fit would defeat the point). Region fits
// are smaller (O(n_k^3) each), so the ensemble is also cheaper than one
// big GPR.
//
// The ensemble also supports the AL acquisition loop directly:
// add_point() routes one observation to its region, warm-refits that
// region's model incrementally (fitting it fresh the first time the
// region reaches min_region_size), and keeps the fallback state in sync.

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "alamr/gp/gpr.hpp"

namespace alamr::gp {

/// Maps a feature row to a region label. Any int is a valid label —
/// including INT_MIN, which historically collided with an internal
/// fallback sentinel and mis-routed to the global model (fixed; see the
/// regression tests in test_gp_local.cpp).
using RegionLabeler = std::function<int(std::span<const double>)>;

class LocalGprEnsemble {
 public:
  /// How queries whose region has no model of its own are answered.
  enum class Fallback {
    /// One GPR fitted on ALL data (the historical default). O(n^3).
    kGlobalModel,
    /// The global prior: running training-target mean and the prototype
    /// kernel's prior stddev sqrt(k(x, x)). No global fit, so the
    /// ensemble's total cost stays sum of region costs.
    kPrior,
  };

  struct FitSpec {
    std::size_t min_region_size = 5;
    /// Distance-base gathers for the region fits: `rows` lists, for each
    /// x row, its index in base->x(). nullptr recomputes from features
    /// (bitwise-identical results either way).
    const DistanceBase* base = nullptr;
    std::span<const std::size_t> rows = {};
    Fallback fallback = Fallback::kGlobalModel;
  };

  /// `prototype` supplies the kernel structure for every region model
  /// (each region clones it and evolves its own hyperparameters).
  LocalGprEnsemble(std::unique_ptr<Kernel> prototype, RegionLabeler labeler,
                   GprOptions options = {});

  /// Deep copy (the prototype kernel is cloned). The labeler is copied
  /// as-is; callers whose labeler captures `this` of an enclosing object
  /// must rebind it via set_labeler() after copying.
  LocalGprEnsemble(const LocalGprEnsemble& other);
  LocalGprEnsemble& operator=(const LocalGprEnsemble& other);
  LocalGprEnsemble(LocalGprEnsemble&&) noexcept = default;
  LocalGprEnsemble& operator=(LocalGprEnsemble&&) noexcept = default;

  /// Replaces the region labeler (used after copying an ensemble whose
  /// labeler captured state of the copied-from owner). The new labeler
  /// must induce the same partition as the old one for already-routed
  /// points to stay consistent.
  void set_labeler(RegionLabeler labeler);

  /// Historical entry point: FitSpec{min_region_size} with the global-
  /// model fallback.
  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng,
           std::size_t min_region_size = 5);

  /// Fits one GPR per region with at least spec.min_region_size samples;
  /// smaller regions answer through the fallback. The spec's base/rows/
  /// fallback/min_region_size stick for subsequent add_point calls.
  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng,
           const FitSpec& spec);

  /// Appends one observation to its region: warm-refits the region's
  /// model incrementally when it exists, fits it fresh when the region
  /// just reached min_region_size, and otherwise only accumulates. The
  /// global model (kGlobalModel) and the running prior mean stay in sync.
  /// `row` is the point's DistanceBase row (ignored without a base).
  /// Returns the region label. Requires fit().
  int add_point(std::span<const double> x, double y, stats::Rng& rng,
                std::size_t row = 0);

  /// Posterior mean/stddev; each query row dispatches to its region's
  /// model, falling back per the fit's Fallback for regions without one.
  Prediction predict(const Matrix& x) const;

  /// Posterior mean only (cheaper: regions skip the variance solves).
  std::vector<double> predict_mean(const Matrix& x) const;

  /// Sum of the fitted region models' log marginal likelihoods (plus the
  /// global model's under kGlobalModel) — the independent-experts
  /// composite likelihood.
  double lml() const;

  /// Kernel log-hyperparameters, concatenated: fitted regions in
  /// ascending label order, then the global model (when present).
  std::vector<double> log_params() const;

  /// Stages per-model log-params for the NEXT fit(): consumed in the same
  /// order log_params() reports, before each model's fit. The staged
  /// count must match that fit's model count (throws std::runtime_error
  /// otherwise). Used by checkpoint resume, which rebuilds the ensemble
  /// at saved hyperparameters with optimization disabled.
  void set_pending_log_params(std::span<const double> theta);

  /// Fitting-effort knobs for subsequent fits, propagated to every live
  /// model (regions and global).
  void set_options(const GprOptions& options);

  bool fitted() const noexcept { return fitted_; }
  /// Number of regions WITH their own model.
  std::size_t region_count() const noexcept;
  std::size_t training_size() const noexcept { return n_train_; }
  /// Running mean of every target seen (fit + add_point), the kPrior
  /// fallback mean.
  double prior_mean() const noexcept;

  /// Labels that received their own model (sorted).
  std::vector<int> region_labels() const;

  /// The region model for a label; throws std::out_of_range if absent.
  const GaussianProcessRegressor& region_model(int label) const;

 private:
  struct Region {
    Matrix x;                        // member features, arrival order
    std::vector<double> y;
    std::vector<std::size_t> rows;   // DistanceBase rows (when bound)
    std::optional<GaussianProcessRegressor> model;
  };

  /// Fits `region`'s model fresh, consuming one staged theta slice if
  /// pending.
  void fit_region_model(Region& region, stats::Rng& rng);

  /// Prior-fallback posterior at the rows of x.
  Prediction prior_prediction(const Matrix& x) const;

  std::unique_ptr<Kernel> prototype_;
  RegionLabeler labeler_;
  GprOptions options_;

  // Sticky fit-spec state.
  std::size_t min_region_size_ = 5;
  const DistanceBase* base_ = nullptr;
  Fallback fallback_ = Fallback::kGlobalModel;

  bool fitted_ = false;
  std::optional<GaussianProcessRegressor> global_;
  std::map<int, Region> regions_;
  double y_sum_ = 0.0;
  std::size_t n_train_ = 0;

  // Staged by set_pending_log_params, consumed (and cleared) by fit().
  std::vector<double> pending_theta_;
  std::size_t pending_theta_used_ = 0;
};

}  // namespace alamr::gp
