// Tests for descriptive statistics (Table I / Fig. 2 reporting machinery).

#include "alamr/stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::stats;

TEST(Quantile, EndpointsAndMedian) {
  const std::vector<double> v{3.0, 1.0, 2.0, 5.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
}

TEST(Quantile, InterpolatesLikeNumpyType7) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  // numpy.percentile([1,2,3,4], 25) == 1.75
  EXPECT_NEAR(quantile(v, 0.25), 1.75, 1e-12);
  EXPECT_NEAR(quantile(v, 0.75), 3.25, 1e-12);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v{42.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.3), 42.0);
}

TEST(Quantile, RejectsBadInput) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);
  const std::vector<double> inf{1.0, INFINITY};
  EXPECT_THROW(quantile(inf, 0.5), std::invalid_argument);
}

TEST(MeanVariance, KnownValues) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  // Sample variance with n-1: sum sq dev = 32, 32/7.
  EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Variance, ZeroForConstantAndSingleton) {
  const std::vector<double> constant{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(constant), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Skewness, SymmetricIsZeroAndRightTailPositive) {
  const std::vector<double> symmetric{-2.0, -1.0, 0.0, 1.0, 2.0};
  EXPECT_NEAR(skewness(symmetric), 0.0, 1e-12);
  const std::vector<double> right_tailed{1.0, 1.0, 1.0, 1.0, 10.0};
  EXPECT_GT(skewness(right_tailed), 1.0);
}

TEST(Rms, MatchesDefinition) {
  const std::vector<double> e{3.0, 4.0};
  EXPECT_NEAR(rms(e), std::sqrt(12.5), 1e-12);
}

TEST(Summarize, MatchesTableIFormat) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 100.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_DOUBLE_EQ(s.q25, 2.0);
  EXPECT_DOUBLE_EQ(s.q75, 4.0);
}

TEST(StandardNormal, KnownValues) {
  EXPECT_NEAR(standard_normal_pdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_NEAR(standard_normal_cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(standard_normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(standard_normal_cdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(StandardNormal, CdfIsDerivedFromPdf) {
  // Finite-difference of the CDF matches the PDF.
  for (const double z : {-2.0, -0.5, 0.0, 0.7, 2.5}) {
    const double h = 1e-6;
    const double fd =
        (standard_normal_cdf(z + h) - standard_normal_cdf(z - h)) / (2.0 * h);
    EXPECT_NEAR(fd, standard_normal_pdf(z), 1e-8) << "z = " << z;
  }
}

TEST(Welford, MatchesBatchComputation) {
  Rng rng(6);
  std::vector<double> v(5000);
  for (double& x : v) x = rng.normal(3.0, 2.0);
  Welford acc;
  for (const double x : v) acc.add(x);
  EXPECT_EQ(acc.count(), v.size());
  EXPECT_NEAR(acc.mean(), mean(v), 1e-10);
  EXPECT_NEAR(acc.variance(), variance(v), 1e-8);
}

TEST(Welford, EmptyAndSingle) {
  Welford acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

// Property: quantiles are monotone in q and bounded by [min, max].
class QuantileMonotone : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotone, MonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<double> v(101);
  for (double& x : v) x = rng.uniform(-10.0, 10.0);
  double previous = quantile(v, 0.0);
  for (double q = 0.05; q <= 1.0 + 1e-9; q += 0.05) {
    const double value = quantile(v, std::min(q, 1.0));
    EXPECT_GE(value, previous - 1e-12);
    previous = value;
  }
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), *std::min_element(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), *std::max_element(v.begin(), v.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotone,
                         ::testing::Values(2ULL, 13ULL, 777ULL, 31337ULL));

}  // namespace
