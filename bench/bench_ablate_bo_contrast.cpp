// A5 — the paper's Sec. II-C distinction between Bayesian Optimization
// and Active Learning, demonstrated empirically: an Expected-Improvement
// (BO) acquisition races to the cost minimizer, while the AL strategies
// build a surrogate that is accurate across the WHOLE input space. We run
// both on the same partition and compare (a) how quickly each finds a
// near-minimal-cost configuration and (b) the final global test RMSE.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace alamr;
  bench::print_header(
      "A5: AL vs BO acquisition", "Sec. II-C discussion",
      "EI locates a near-minimum-cost config in few iterations but yields "
      "a worse global surrogate than the AL strategies");

  const data::Dataset dataset = bench::load_dataset();
  const core::AlOptions options = bench::al_options(/*n_init=*/20,
                                                    /*iterations=*/80);
  const core::AlSimulator simulator(dataset, options);

  stats::Rng partition_rng(606060);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  // "Near-minimal" target: within 2x of the cheapest Active-sample cost.
  double min_active_cost = 1e300;
  for (const std::size_t row : partition.active) {
    min_active_cost = std::min(min_active_cost, dataset.cost[row]);
  }
  const double target = 2.0 * min_active_cost;

  std::printf("\nCheapest Active sample: %.5f nh (target <= %.5f nh)\n\n",
              min_active_cost, target);
  std::printf("%-20s %18s %14s %14s\n", "strategy", "iters to target",
              "final RMSE", "cum.cost");

  const auto report = [&](const core::Strategy& strategy) {
    stats::Rng rng(99);
    const core::TrajectoryResult traj =
        simulator.run_with_partition(strategy, partition, rng);
    std::size_t to_target = 0;
    bool found = false;
    for (const auto& rec : traj.iterations) {
      ++to_target;
      if (rec.actual_cost <= target) {
        found = true;
        break;
      }
    }
    char cell[32];
    if (found) {
      std::snprintf(cell, sizeof(cell), "%zu", to_target);
    } else {
      std::snprintf(cell, sizeof(cell), "never");
    }
    std::printf("%-20s %18s %14.4f %14.3f\n", traj.strategy_name.c_str(), cell,
                traj.iterations.back().rmse_cost,
                traj.iterations.back().cumulative_cost);
  };

  report(core::ExpectedImprovement());
  report(core::RandGoodness());
  report(core::MaxSigma());
  report(core::RandUniform());
  return 0;
}
