#pragma once

// Resilience primitives for the online serving core (DESIGN.md §14):
//
//   * VirtualClock + BackoffPolicy + DeadlineExecutor — per-operation
//     deadlines with seeded deterministic exponential backoff. Time is a
//     virtual tick counter, never a wall clock, so a retry schedule is a
//     pure function of (policy seed, operation name, attempt index) and
//     byte-reproducible under ALAMR_FAULT_PLAN: the same faults produce
//     the same waits, the same give-ups, the same trajectory bytes.
//   * Event / Listener / note() — a thread-local failure-event channel.
//     Lower layers (cholesky jitter ladder, optimizer recovery) call
//     note(Event) at the exact points where an injected fault fires;
//     whoever installed a ScopedListener (the ResilientBackend decorator,
//     gp/backend.cpp) attributes the event to its circuit breaker. With
//     no listener installed the call is one thread-local pointer load.
//   * CircuitBreaker + Health — consecutive-failure trip counter with
//     half-open recovery pacing, and the healthy/degraded/halted state
//     machine surfaced through resilience.* trace counters.
//
// Like trace.hpp and faults.hpp this header is standalone (standard
// library + trace.hpp) and fully inline, so linalg/gp can participate
// without linking the core library. Only CLI/describe helpers live in
// src/core/resilience.cpp.
//
// Happy-path contract: with no faults armed and no numerical failures,
// every primitive here is byte-invisible — no rng draws, no FP work, no
// clock reads, no trace counters. The 9 golden configs pin this.

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "alamr/core/trace.hpp"

namespace alamr::core::resilience {

namespace detail {

/// SplitMix64 finalizer — same mixing recipe as faults::detail::mix64 so
/// backoff jitter inherits the fault framework's statistical quality.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over an operation name: the per-op salt for backoff jitter.
inline constexpr std::uint64_t op_hash(std::string_view name) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace detail

// --- Virtual time ----------------------------------------------------------

/// Monotonic tick counter standing in for wall time. Retry waits advance
/// it; nothing ever reads a real clock, so schedules are reproducible.
class VirtualClock {
 public:
  std::uint64_t now() const noexcept { return now_; }
  void advance(std::uint64_t ticks) noexcept { now_ += ticks; }
  void reset() noexcept { now_ = 0; }

 private:
  std::uint64_t now_ = 0;
};

// --- Deterministic exponential backoff -------------------------------------

struct BackoffPolicy {
  std::uint64_t base_ticks = 16;   ///< wait before the first retry
  double multiplier = 2.0;         ///< exponential growth per attempt
  std::uint64_t max_ticks = 1024;  ///< ceiling on any single wait
  double jitter = 0.5;             ///< fraction of the wait randomized
  std::uint64_t seed = 0;          ///< salts the jitter stream
};

/// The wait before retry number `attempt` (attempt 1 = first retry) of the
/// operation whose name hashes to `op`. Pure function of its arguments:
/// full-jitter-style `d/2 + u*d/2` where u is a counter-hashed uniform,
/// never an rng draw — two runs with the same plan wait identically.
inline std::uint64_t backoff_ticks(const BackoffPolicy& policy,
                                   std::uint64_t op, std::uint64_t attempt) noexcept {
  double d = static_cast<double>(policy.base_ticks);
  for (std::uint64_t a = 1; a < attempt; ++a) {
    d *= policy.multiplier;
    if (d >= static_cast<double>(policy.max_ticks)) break;
  }
  const double cap = static_cast<double>(policy.max_ticks);
  if (d > cap) d = cap;
  if (policy.jitter <= 0.0) return static_cast<std::uint64_t>(d);
  const std::uint64_t h =
      detail::mix64(policy.seed ^ detail::mix64(op) ^ detail::mix64(attempt));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double jittered = d * (1.0 - policy.jitter) + d * policy.jitter * u;
  const std::uint64_t ticks = static_cast<std::uint64_t>(jittered);
  return ticks == 0 ? 1 : ticks;
}

// --- Deadline/retry executor -----------------------------------------------

enum class OpStatus : std::uint8_t { kOk, kTimeout, kFailed };

constexpr std::string_view to_string(OpStatus s) noexcept {
  switch (s) {
    case OpStatus::kOk: return "ok";
    case OpStatus::kTimeout: return "timeout";
    case OpStatus::kFailed: return "failed";
  }
  return "?";
}

/// Retries an operation under a per-operation tick deadline with
/// deterministic exponential backoff. The callable returns an OpStatus;
/// kTimeout/kFailed are retried after a backoff wait until either the
/// attempt budget or the deadline is exhausted. Exceptions escaping the
/// callable are terminal: they propagate to the caller unretried (the
/// callable classifies its own failures — transient errors become
/// kFailed, contract violations throw).
class DeadlineExecutor {
 public:
  struct Outcome {
    OpStatus status = OpStatus::kOk;
    std::uint32_t attempts = 0;      ///< total calls of the operation
    std::uint64_t waited_ticks = 0;  ///< total backoff applied
    bool deadline_exceeded = false;  ///< gave up on the deadline, not attempts
  };

  DeadlineExecutor() = default;
  DeadlineExecutor(BackoffPolicy policy, std::uint32_t max_attempts,
                   std::uint64_t deadline_ticks) noexcept
      : policy_(policy),
        max_attempts_(max_attempts == 0 ? 1 : max_attempts),
        deadline_ticks_(deadline_ticks) {}

  VirtualClock& clock() noexcept { return clock_; }
  const VirtualClock& clock() const noexcept { return clock_; }
  const BackoffPolicy& policy() const noexcept { return policy_; }
  std::uint32_t max_attempts() const noexcept { return max_attempts_; }

  template <typename Fn>
  Outcome execute(std::string_view op_name, Fn&& fn) {
    const std::uint64_t op = detail::op_hash(op_name);
    const std::uint64_t start = clock_.now();
    Outcome out;
    for (;;) {
      ++out.attempts;
      const OpStatus status = fn();
      out.status = status;
      if (status == OpStatus::kOk) {
        if (out.attempts > 1) {
          trace::count("resilience.op_recovered");
        }
        return out;
      }
      trace::count(status == OpStatus::kTimeout ? "resilience.op_timeouts"
                                                : "resilience.op_failures");
      if (out.attempts >= max_attempts_) {
        trace::count("resilience.op_giveups");
        return out;
      }
      const std::uint64_t wait = backoff_ticks(policy_, op, out.attempts);
      if (deadline_ticks_ != 0 &&
          clock_.now() + wait > start + deadline_ticks_) {
        out.deadline_exceeded = true;
        trace::count("resilience.op_deadline_exceeded");
        trace::count("resilience.op_giveups");
        return out;
      }
      clock_.advance(wait);
      out.waited_ticks += wait;
      trace::count("resilience.op_retries");
    }
  }

 private:
  VirtualClock clock_;
  BackoffPolicy policy_{};
  std::uint32_t max_attempts_ = 3;
  std::uint64_t deadline_ticks_ = 4096;
};

// --- Failure events --------------------------------------------------------

/// Failure events lower layers report while a guarded operation runs.
/// kCholeskyNonPsd / kOptDiverge are noted exactly where the matching
/// fault site fires (injected failures); real numerical failures reach
/// breakers through the exception path instead, so a fault-free run that
/// legitimately climbs the jitter ladder never feeds a breaker.
enum class Event : std::uint8_t {
  kCholeskyNonPsd = 0,
  kOptDiverge = 1,
  kAcquireTimeout = 2,
  kOracleFailure = 3,
  kIoCorruption = 4,
};

inline constexpr std::size_t kEventCount = 5;

constexpr std::string_view to_string(Event e) noexcept {
  switch (e) {
    case Event::kCholeskyNonPsd: return "cholesky.non_psd";
    case Event::kOptDiverge: return "opt.diverge";
    case Event::kAcquireTimeout: return "acquire.timeout";
    case Event::kOracleFailure: return "oracle.failure";
    case Event::kIoCorruption: return "io.corruption";
  }
  return "?";
}

/// Receives failure events noted on this thread while installed.
class Listener {
 public:
  virtual ~Listener() = default;
  virtual void on_event(Event event) = 0;
};

namespace detail {
inline thread_local Listener* t_listener = nullptr;
}  // namespace detail

/// The listener installed on this thread (nullptr when none).
inline Listener* current_listener() noexcept { return detail::t_listener; }

/// Reports a failure event to the current thread's listener, if any.
/// Disarmed cost: one thread-local load and a branch.
inline void note(Event event) {
  if (Listener* l = detail::t_listener) l->on_event(event);
}

/// Installs `listener` as this thread's event sink for the current scope.
/// Scopes nest; the previous sink is restored on destruction.
class ScopedListener {
 public:
  explicit ScopedListener(Listener& listener) noexcept
      : previous_(detail::t_listener) {
    detail::t_listener = &listener;
  }
  ScopedListener(const ScopedListener&) = delete;
  ScopedListener& operator=(const ScopedListener&) = delete;
  ~ScopedListener() { detail::t_listener = previous_; }

 private:
  Listener* previous_;
};

// --- Circuit breaker + health ----------------------------------------------

enum class Health : std::uint8_t { kHealthy = 0, kDegraded = 1, kHalted = 2 };

constexpr std::string_view to_string(Health h) noexcept {
  switch (h) {
    case Health::kHealthy: return "healthy";
    case Health::kDegraded: return "degraded";
    case Health::kHalted: return "halted";
  }
  return "?";
}

/// Consecutive-failure circuit breaker with half-open pacing. Failure
/// events and caught recoverable exceptions call record_failure();
/// completed operations call record_success(), which both closes the
/// consecutive-failure window and advances the ok streak that paces
/// half-open recovery probes. All-integer state: armed or not, the
/// breaker never perturbs numerics.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(std::uint32_t threshold = 3) noexcept
      : threshold_(threshold == 0 ? 1 : threshold) {}

  void record_failure() noexcept {
    ++consecutive_failures_;
    ++total_failures_;
    ok_streak_ = 0;
  }

  void record_success() noexcept {
    consecutive_failures_ = 0;
    ++ok_streak_;
  }

  /// True once the consecutive-failure count reaches the threshold.
  bool tripped() const noexcept { return consecutive_failures_ >= threshold_; }

  /// Acknowledge a trip (the owner stepped its degradation ladder):
  /// reopens the window for the next rung.
  void acknowledge_trip() noexcept {
    ++trips_;
    consecutive_failures_ = 0;
    ok_streak_ = 0;
  }

  std::uint32_t threshold() const noexcept { return threshold_; }
  std::uint64_t consecutive_failures() const noexcept {
    return consecutive_failures_;
  }
  std::uint64_t total_failures() const noexcept { return total_failures_; }
  std::uint64_t ok_streak() const noexcept { return ok_streak_; }
  std::uint64_t trips() const noexcept { return trips_; }

  /// Restart the half-open pacing window without touching the failure
  /// counters (called after a recovery probe, successful or not).
  void reset_streak() noexcept { ok_streak_ = 0; }

  /// Checkpoint restore: reload the exact counter state.
  void restore(std::uint64_t consecutive, std::uint64_t total,
               std::uint64_t streak, std::uint64_t trips) noexcept {
    consecutive_failures_ = consecutive;
    total_failures_ = total;
    ok_streak_ = streak;
    trips_ = trips;
  }

 private:
  std::uint32_t threshold_;
  std::uint64_t consecutive_failures_ = 0;
  std::uint64_t total_failures_ = 0;
  std::uint64_t ok_streak_ = 0;
  std::uint64_t trips_ = 0;
};

// --- Options ---------------------------------------------------------------

/// Knobs for the whole resilience layer, embedded in AlOptions and
/// OnlineAlOptions. enabled=true is the default and byte-invisible while
/// nothing fails; enabled=false removes even the guard scaffolding.
struct Options {
  bool enabled = true;
  bool ladder = true;               ///< allow backend degradation steps
  std::uint32_t max_attempts = 3;   ///< per-op attempts within one rung
  std::uint32_t breaker_threshold = 3;
  std::uint64_t probe_after = 8;    ///< ok ops on a degraded rung per probe
  std::uint64_t deadline_ticks = 4096;
  BackoffPolicy backoff{};
};

// --- CLI helpers (src/core/resilience.cpp; callers link alamr::core) -------

/// Human-readable one-liner for logs/benches.
std::string describe(const Options& options);

/// Scans argv for "--no-resilience" / "--resilience=on|off". Returns the
/// requested enabled state, or nothing when the flag is absent.
bool parse_resilience_flag(int argc, char** argv, Options& options);

}  // namespace alamr::core::resilience
