#include "alamr/stats/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alamr::stats {

namespace {

void validate_weights(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("weights must be non-empty");
  }
  double total = 0.0;
  for (const double w : weights) {
    if (!std::isfinite(w) || w < 0.0) {
      throw std::invalid_argument("weights must be finite and non-negative");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weights must not all be zero");
  }
}

}  // namespace

void normalize_weights(std::span<double> weights) {
  validate_weights(weights);
  double total = 0.0;
  for (const double w : weights) total += w;
  for (double& w : weights) w /= total;
}

std::size_t sample_categorical(std::span<const double> weights, Rng& rng) {
  validate_weights(weights);
  double total = 0.0;
  for (const double w : weights) total += w;
  const double u = rng.uniform() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (u < cumulative) return i;
  }
  // Floating-point slack: u can land a hair past the last cumulative sum.
  return weights.size() - 1;
}

AliasSampler::AliasSampler(std::span<const double> weights) {
  validate_weights(weights);
  const std::size_t n = weights.size();
  normalized_.assign(weights.begin(), weights.end());
  normalize_weights(std::span<double>(normalized_));

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities: average bucket holds exactly 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = normalized_[i] * static_cast<double>(n);

  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are full (probability 1) up to rounding error.
  for (const std::size_t i : small) prob_[i] = 1.0;
  for (const std::size_t i : large) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t bucket = static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  return rng.uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

std::vector<double> goodness_weights(std::span<const double> mu,
                                     std::span<const double> sigma,
                                     double base) {
  if (mu.size() != sigma.size()) {
    throw std::invalid_argument("mu and sigma must have equal length");
  }
  if (mu.empty()) {
    throw std::invalid_argument("goodness_weights requires at least one candidate");
  }
  if (!(base > 1.0) || !std::isfinite(base)) {
    throw std::invalid_argument("goodness base must be finite and > 1");
  }
  // Max-shifted exponentiation: g_i = base^(e_i) with e_i = sigma_i - mu_i
  // is sampled through base^(e_i - max_j e_j), which lives in (0, 1] for
  // any finite spread — so e ~ 400 (where the naive 10^e overflowed to inf
  // and tripped the "weights must be finite" throw mid-trajectory) is safe.
  const double log_base = std::log(base);
  double max_exponent = -std::numeric_limits<double>::infinity();
  bool any_nonfinite = false;
  bool any_pos_inf = false;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double e = sigma[i] - mu[i];
    if (std::isfinite(e)) {
      max_exponent = std::max(max_exponent, e);
    } else {
      any_nonfinite = true;
      if (e > 0.0) any_pos_inf = true;  // +inf (NaN comparisons are false)
    }
  }
  std::vector<double> weights(mu.size());
  if (!any_nonfinite && std::isfinite(max_exponent)) {
    for (std::size_t i = 0; i < mu.size(); ++i) {
      weights[i] = std::exp(log_base * ((sigma[i] - mu[i]) - max_exponent));
    }
    return weights;
  }
  // Degenerate scores (a corrupted or diverged model can emit ±inf/NaN
  // predictions): keep the weights valid instead of poisoning them with
  // NaN. NaN scores get no mass; a +inf score dominates everything finite;
  // with no usable scores at all fall back to uniform so the strategy can
  // still make a deterministic pick and the trajectory survives.
  bool any_mass = false;
  for (std::size_t i = 0; i < mu.size(); ++i) {
    const double e = sigma[i] - mu[i];
    double w = 0.0;
    if (std::isnan(e)) {
      w = 0.0;
    } else if (any_pos_inf) {
      w = e > 0.0 && std::isinf(e) ? 1.0 : 0.0;
    } else if (std::isfinite(e) && std::isfinite(max_exponent)) {
      w = std::exp(log_base * (e - max_exponent));
    }
    any_mass = any_mass || w > 0.0;
    weights[i] = w;
  }
  if (!any_mass) {
    std::fill(weights.begin(), weights.end(), 1.0);
  }
  return weights;
}

}  // namespace alamr::stats
