# Empty compiler generated dependencies file for bench_ablate_batch_size.
# This may be replaced when dependencies are built.
