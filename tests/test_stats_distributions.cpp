// Tests for categorical sampling and the goodness-weight computation that
// RandGoodness/RGMA rely on (paper Sec. IV-B).

#include "alamr/stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace {

using alamr::stats::AliasSampler;
using alamr::stats::goodness_weights;
using alamr::stats::normalize_weights;
using alamr::stats::Rng;
using alamr::stats::sample_categorical;

TEST(NormalizeWeights, SumsToOne) {
  std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  normalize_weights(w);
  double total = 0.0;
  for (const double v : w) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(w[3], 0.4, 1e-12);
}

TEST(NormalizeWeights, RejectsBadInput) {
  std::vector<double> empty;
  EXPECT_THROW(normalize_weights(empty), std::invalid_argument);
  std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(normalize_weights(negative), std::invalid_argument);
  std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(normalize_weights(zeros), std::invalid_argument);
  std::vector<double> nan{1.0, std::nan("")};
  EXPECT_THROW(normalize_weights(nan), std::invalid_argument);
}

TEST(SampleCategorical, ZeroWeightNeverSampled) {
  const std::vector<double> w{0.0, 1.0, 0.0};
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sample_categorical(w, rng), 1u);
  }
}

TEST(SampleCategorical, FrequenciesMatchWeights) {
  const std::vector<double> w{1.0, 2.0, 7.0};
  Rng rng(17);
  std::vector<std::size_t> counts(3, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[sample_categorical(w, rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.7, 0.01);
}

TEST(AliasSampler, MatchesCategoricalFrequencies) {
  const std::vector<double> w{0.5, 0.1, 0.1, 0.3};
  const AliasSampler sampler(w);
  ASSERT_EQ(sampler.size(), 4u);
  Rng rng(3);
  std::vector<std::size_t> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.1, 0.005);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.1, 0.005);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(AliasSampler, StoresNormalizedProbabilities) {
  const std::vector<double> w{2.0, 6.0};
  const AliasSampler sampler(w);
  EXPECT_NEAR(sampler.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.75, 1e-12);
}

TEST(AliasSampler, SingleCategory) {
  const std::vector<double> w{3.0};
  const AliasSampler sampler(w);
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(GoodnessWeights, PrefersCheapUncertainCandidates) {
  // Candidate 0: cheap (low mu); candidate 1: expensive. Same sigma.
  const std::vector<double> mu{0.0, 2.0};
  const std::vector<double> sigma{0.1, 0.1};
  const auto w = goodness_weights(mu, sigma, 10.0);
  // Ratio should be 10^(mu1 - mu0) = 100.
  EXPECT_NEAR(w[0] / w[1], 100.0, 1e-9);
}

TEST(GoodnessWeights, HigherSigmaIncreasesWeight) {
  const std::vector<double> mu{1.0, 1.0};
  const std::vector<double> sigma{0.5, 0.1};
  const auto w = goodness_weights(mu, sigma, 10.0);
  EXPECT_GT(w[0], w[1]);
  EXPECT_NEAR(w[0] / w[1], std::pow(10.0, 0.4), 1e-9);
}

TEST(GoodnessWeights, HigherBaseIsMoreSkewed) {
  const std::vector<double> mu{0.0, 1.0};
  const std::vector<double> sigma{0.0, 0.0};
  const auto w10 = goodness_weights(mu, sigma, 10.0);
  const auto w100 = goodness_weights(mu, sigma, 100.0);
  // The paper: "higher bases will lead to more skewed candidate
  // distributions".
  EXPECT_GT(w100[0] / w100[1], w10[0] / w10[1]);
}

TEST(GoodnessWeights, StableUnderLargeExponents) {
  // Without the max-shift this would overflow to inf.
  const std::vector<double> mu{-400.0, 0.0};
  const std::vector<double> sigma{0.0, 0.0};
  const auto w = goodness_weights(mu, sigma, 10.0);
  EXPECT_TRUE(std::isfinite(w[0]));
  EXPECT_TRUE(std::isfinite(w[1]));
  EXPECT_GT(w[0], 0.0);
  EXPECT_GE(w[1], 0.0);
}

TEST(GoodnessWeights, Regression_SigmaMinusMuNear400) {
  // The mid-trajectory overflow that motivated the log-space rewrite:
  // sigma - mu ~ 400 made the naive 10^e hit inf and trip the "weights
  // must be finite" validation inside sample_categorical. The shifted form
  // must give the dominant candidate all practical mass and stay
  // normalizable.
  const std::vector<double> mu{-400.0, -399.0, 0.0};
  const std::vector<double> sigma{0.0, 0.5, 0.1};
  auto w = goodness_weights(mu, sigma, 10.0);
  for (const double v : w) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  EXPECT_EQ(w[0], 1.0);  // max-shifted winner is exactly base^0
  EXPECT_NO_THROW(alamr::stats::normalize_weights(std::span<double>(w)));
  Rng rng(4);
  EXPECT_EQ(alamr::stats::sample_categorical(w, rng), 0u);
}

TEST(GoodnessWeights, NanScoresGetNoMass) {
  // A corrupted model can emit NaN predictions; those candidates must get
  // zero weight without poisoning the rest.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> mu{0.0, nan, 1.0};
  const std::vector<double> sigma{0.1, 0.1, 0.1};
  const auto w = goodness_weights(mu, sigma, 10.0);
  EXPECT_GT(w[0], 0.0);
  EXPECT_EQ(w[1], 0.0);
  EXPECT_GT(w[2], 0.0);
  EXPECT_GT(w[0], w[2]);  // cheap candidate still preferred
}

TEST(GoodnessWeights, PositiveInfinityDominates) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> mu{-inf, 0.0, 5.0};
  const std::vector<double> sigma{0.0, 0.1, 0.1};
  const auto w = goodness_weights(mu, sigma, 10.0);
  EXPECT_EQ(w[0], 1.0);
  EXPECT_EQ(w[1], 0.0);
  EXPECT_EQ(w[2], 0.0);
}

TEST(GoodnessWeights, NegativeInfinityGetsZeroNotNan) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> mu{inf, 0.0};  // e = sigma - mu = -inf
  const std::vector<double> sigma{0.0, 0.1};
  const auto w = goodness_weights(mu, sigma, 10.0);
  EXPECT_EQ(w[0], 0.0);
  EXPECT_GT(w[1], 0.0);
}

TEST(GoodnessWeights, AllDegenerateFallsBackToUniform) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> mu{nan, nan, nan};
  const std::vector<double> sigma{0.0, 0.0, 0.0};
  const auto w = goodness_weights(mu, sigma, 10.0);
  for (const double v : w) EXPECT_EQ(v, 1.0);
}

TEST(GoodnessWeights, RejectsBadBaseAndMismatch) {
  const std::vector<double> mu{0.0};
  const std::vector<double> sigma{0.0, 1.0};
  EXPECT_THROW(goodness_weights(mu, sigma, 10.0), std::invalid_argument);
  const std::vector<double> s1{0.0};
  EXPECT_THROW(goodness_weights(mu, s1, 1.0), std::invalid_argument);
  EXPECT_THROW(goodness_weights(mu, s1, 0.5), std::invalid_argument);
}

// Property: alias sampler and linear-scan sampler agree in distribution
// for random weight vectors.
class SamplerAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SamplerAgreement, AliasMatchesLinearScan) {
  Rng setup(GetParam());
  const std::size_t n = 2 + setup.uniform_index(20);
  std::vector<double> w(n);
  for (double& v : w) v = setup.uniform(0.01, 1.0);

  const AliasSampler alias(w);
  Rng r1(GetParam() * 31 + 1);
  Rng r2(GetParam() * 31 + 2);
  constexpr int kDraws = 30000;
  std::vector<double> f_alias(n, 0.0);
  std::vector<double> f_scan(n, 0.0);
  for (int i = 0; i < kDraws; ++i) {
    f_alias[alias.sample(r1)] += 1.0 / kDraws;
    f_scan[sample_categorical(w, r2)] += 1.0 / kDraws;
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(f_alias[i], f_scan[i], 0.02) << "category " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerAgreement,
                         ::testing::Values(1ULL, 7ULL, 99ULL, 12345ULL));

}  // namespace
