// Tests for the dense matrix/vector kernels.

#include "alamr/linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::linalg;
using alamr::stats::Rng;

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
  EXPECT_THROW((Matrix{{1.0}, {2.0, 3.0}}), std::invalid_argument);
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  auto r1 = m.row(1);
  r1[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(Matrix, IdentityAndTranspose) {
  const Matrix eye = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(eye(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 2), 0.0);

  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(VectorKernels, DotNormAxpy) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> y{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{3.0, 4.0}), 5.0);

  std::vector<double> z{1.0, 1.0, 1.0};
  axpy(2.0, x, z);
  EXPECT_DOUBLE_EQ(z[2], 7.0);

#if ALAMR_ASSERTS_ENABLED
  EXPECT_THROW(dot(x, std::vector<double>{1.0}), std::invalid_argument);
#endif
}

TEST(VectorKernels, SquaredDistance) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(squared_distance(a, a), 0.0);
}

TEST(MatVec, KnownProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> x{1.0, -1.0};
  const Vector y = matvec(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);

  const Vector yt = matvec_transposed(a, std::vector<double>{1.0, 1.0, 1.0});
  ASSERT_EQ(yt.size(), 2u);
  EXPECT_DOUBLE_EQ(yt[0], 9.0);
  EXPECT_DOUBLE_EQ(yt[1], 12.0);
}

TEST(MatMul, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix prod = matmul(a, Matrix::identity(4));
  EXPECT_LT(max_abs_diff(prod, a), 1e-14);
}

TEST(MatMul, KnownProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(MatMul, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

// Regression: an earlier matmul skipped the inner update when a(i, k) was
// exactly zero. IEEE multiplication is not skippable — 0 * NaN = NaN and
// 0 * inf = NaN must reach the output.
TEST(MatMul, ZeroTimesNanPropagates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Matrix a{{0.0, 1.0}, {0.0, 0.0}};
  const Matrix b{{nan, inf}, {2.0, 3.0}};
  const Matrix c = matmul(a, b);
  // Row 0: 0 * nan + 1 * 2 = nan; 0 * inf + 1 * 3 = nan.
  EXPECT_TRUE(std::isnan(c(0, 0)));
  EXPECT_TRUE(std::isnan(c(0, 1)));
  // Row 1: 0 * nan + 0 * 2 = nan as well — the all-zero row is not "free".
  EXPECT_TRUE(std::isnan(c(1, 0)));
  EXPECT_TRUE(std::isnan(c(1, 1)));
}

// The register-tiled matmul/aat and the 2-wide remainder paths all have to
// agree with a naive triple loop for every size around the tile edges.
TEST(MatMul, TiledMatchesNaiveAroundTileEdges) {
  Rng rng(77);
  for (const std::size_t m : {1u, 2u, 3u, 5u, 8u}) {
    for (const std::size_t k : {1u, 2u, 3u, 7u}) {
      for (const std::size_t n : {1u, 2u, 4u, 9u}) {
        const Matrix a = random_matrix(m, k, rng);
        const Matrix b = random_matrix(k, n, rng);
        const Matrix c = matmul(a, b);
        for (std::size_t i = 0; i < m; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            double want = 0.0;
            for (std::size_t kk = 0; kk < k; ++kk) want += a(i, kk) * b(kk, j);
            EXPECT_NEAR(c(i, j), want, 1e-13)
                << m << "x" << k << "x" << n << " @(" << i << "," << j << ")";
          }
        }
      }
    }
  }
}

// --- degenerate shapes -----------------------------------------------------

TEST(EdgeCases, EmptyMatrixOperations) {
  const Matrix empty(0, 0);
  EXPECT_EQ(matvec(empty, std::vector<double>{}).size(), 0u);
  EXPECT_EQ(matvec_transposed(empty, std::vector<double>{}).size(), 0u);
  EXPECT_EQ(aat(empty).rows(), 0u);
  EXPECT_EQ(matmul(empty, empty).rows(), 0u);

  // Zero rows with nonzero cols: matvec_transposed still yields cols zeros.
  const Matrix wide(0, 3);
  const Vector yt = matvec_transposed(wide, std::vector<double>{});
  ASSERT_EQ(yt.size(), 3u);
  EXPECT_DOUBLE_EQ(yt[0], 0.0);
  const Matrix outer = aat(wide);
  EXPECT_EQ(outer.rows(), 0u);
}

TEST(EdgeCases, OneByOneOperations) {
  const Matrix m{{2.5}};
  const Vector y = matvec(m, std::vector<double>{2.0});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  const Vector yt = matvec_transposed(m, std::vector<double>{2.0});
  ASSERT_EQ(yt.size(), 1u);
  EXPECT_DOUBLE_EQ(yt[0], 5.0);
  EXPECT_DOUBLE_EQ(aat(m)(0, 0), 6.25);
  EXPECT_DOUBLE_EQ(matmul(m, m)(0, 0), 6.25);
}

TEST(Aat, SymmetricAndMatchesMatmul) {
  Rng rng(2);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix s = aat(a);
  const Matrix reference = matmul(a, a.transposed());
  EXPECT_LT(max_abs_diff(s, reference), 1e-12);
  for (std::size_t i = 0; i < s.rows(); ++i) {
    for (std::size_t j = 0; j < s.cols(); ++j) {
      EXPECT_DOUBLE_EQ(s(i, j), s(j, i));
    }
  }
}

TEST(FrobeniusInner, MatchesElementwiseSum) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_DOUBLE_EQ(frobenius_inner(a, b), 5.0 + 12.0 + 21.0 + 32.0);
}

// Property: (AB)x == A(Bx) for random matrices.
class MatmulAssociativity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatmulAssociativity, MatvecComposition) {
  Rng rng(GetParam());
  const std::size_t m = 2 + rng.uniform_index(6);
  const std::size_t k = 2 + rng.uniform_index(6);
  const std::size_t n = 2 + rng.uniform_index(6);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  std::vector<double> x(n);
  for (double& v : x) v = rng.uniform(-2.0, 2.0);

  const Vector lhs = matvec(matmul(a, b), x);
  const Vector rhs = matvec(a, matvec(b, x));
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulAssociativity,
                         ::testing::Values(3ULL, 17ULL, 23ULL, 5151ULL, 909ULL));

}  // namespace
