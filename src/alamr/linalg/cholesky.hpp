#pragma once

// Cholesky factorization for the GPR kernel matrix K_y = K + sigma_n^2 I
// (paper Eq. 3) and the log-determinant term of the LML (Eq. 8).
//
// GPR kernel matrices are SPD in exact arithmetic but can be numerically
// semi-definite when training points nearly coincide (the dataset contains
// repeated configurations on purpose). `cholesky_with_jitter` escalates a
// diagonal jitter until factorization succeeds, mirroring what mature GP
// libraries (GPy, GPflow, scikit-learn) do.

#include <optional>

#include "alamr/linalg/matrix.hpp"

namespace alamr::linalg {

/// Column-block width of the blocked (right-looking) factorization. Exposed
/// so tests can probe the boundaries (n = B-1, B, B+1, ...).
inline constexpr std::size_t kCholeskyBlock = 48;

/// Lower-triangular Cholesky factor L with A = L L^T, plus solve helpers.
class CholeskyFactor {
 public:
  /// Factors SPD matrix `a`. Returns std::nullopt if a non-positive pivot
  /// is encountered (matrix not numerically positive definite).
  ///
  /// Blocked right-looking algorithm: columns are processed in panels of
  /// kCholeskyBlock; after a panel is factored, its contribution is
  /// subtracted from the trailing submatrix with a register-tiled rank-B
  /// update whose inner loops are contiguous row prefixes. Every matrix
  /// entry still receives its k-contributions strictly in ascending order
  /// — first from earlier panels' trailing updates (ascending block by
  /// block), then from its own panel — so the result is bit-identical to
  /// the unblocked left-looking factor_reference().
  static std::optional<CholeskyFactor> factor(const Matrix& a);

  /// Textbook unblocked left-looking factorization. Kept as the validation
  /// and benchmark baseline for factor(); identical results bit-for-bit.
  static std::optional<CholeskyFactor> factor_reference(const Matrix& a);

  std::size_t size() const noexcept { return l_.rows(); }
  const Matrix& lower() const noexcept { return l_; }

  /// Reserves storage so extend() stays allocation-free until the factor
  /// exceeds n x n (DESIGN.md §10: the AL loop reserves the trajectory
  /// bound once up front).
  void reserve(std::size_t n) { l_.reserve(n, n); }

  /// Appends one row/column to the factored matrix in O(n^2): given the new
  /// off-diagonal block `row` (length size()) and the new diagonal entry
  /// `diag`, grows L by one row so that it factors the bordered matrix
  /// [[A, row], [row^T, diag]]. Performs exactly the same floating-point
  /// operations `factor()` would perform for the last column of the bordered
  /// matrix, so the result is bit-identical to a from-scratch factorization.
  /// Returns false — leaving the factor unchanged — when the Schur
  /// complement diag - ||L^{-1} row||^2 is not numerically positive (the
  /// caller should fall back to a full, possibly jittered, refactor).
  bool extend(std::span<const double> row, double diag);

  /// Solves L z = b (forward substitution).
  Vector solve_lower(std::span<const double> b) const;

  /// Solves L^T z = b (backward substitution).
  Vector solve_upper(std::span<const double> b) const;

  /// Solves A x = b via the two triangular solves.
  Vector solve(std::span<const double> b) const;

  /// solve() overwriting `b` with the solution instead of allocating a
  /// result vector. Bit-identical to solve(): the forward pass reads b[i]
  /// before writing it and only consumes already-finalized prefix entries,
  /// and the backward pass is the same in-place saxpy solve_upper() runs
  /// on its copy. Used by the alpha refresh in gp/gpr (arena path).
  void solve_in_place(std::span<double> b) const;

  /// Solves A X = B for all columns of B at once. Row-major blocked
  /// forward + backward substitution: the inner loops sweep contiguous
  /// solution rows (multi-RHS trsm) instead of strided columns, while each
  /// scalar entry sees exactly the operations solve_lower/solve_upper would
  /// perform on its column — bit-identical to the column-by-column path.
  Matrix solve_matrix(const Matrix& b) const;

  /// Multi-RHS forward substitution: solves L Z = B[:, col_begin:col_end)
  /// and returns Z (size() x (col_end - col_begin)). Each column of the
  /// result is bit-identical to solve_lower() of that column of B. Used by
  /// the batched predictive-variance path in gp/gpr.
  Matrix solve_lower_block(const Matrix& b, std::size_t col_begin,
                           std::size_t col_end) const;

  /// solve_lower_block() writing into caller-owned storage: row i of the
  /// solution lands at z + i * ld (ld >= col_end - col_begin). The fused
  /// batched posterior passes an arena span here so the steady-state
  /// variance solve performs no allocation. Bit-identical to
  /// solve_lower_block() — same loops, destination storage aside.
  void solve_lower_block_to(const Matrix& b, std::size_t col_begin,
                            std::size_t col_end, double* z,
                            std::size_t ld) const;

  /// Row-resumable solve_lower_block_to(): computes only solution rows
  /// [row_begin, size()), assuming rows [0, row_begin) of `z` already hold
  /// the solved prefix. This is the capability behind the cross-iteration
  /// candidate panel (DESIGN.md §13): after a one-row extend() at unchanged
  /// hyperparameters, rows 0..n-1 of Z = L^{-1} K* are bitwise unchanged —
  /// forward substitution for row i reads only L rows <= i and B rows <= i
  /// — so only the appended rows need computing, each in O(n) per column.
  /// Row i's chain (copy, ascending-k rank1_sub eliminations, divide by
  /// L_ii) is exactly what solve_lower_block_to() performs for that row,
  /// so resuming is bit-identical to a from-scratch solve.
  /// row_begin == 0 IS solve_lower_block_to().
  void solve_lower_block_resume(const Matrix& b, std::size_t col_begin,
                                std::size_t col_end, double* z, std::size_t ld,
                                std::size_t row_begin) const;

  /// A^{-1} (needed by the analytic LML gradient, which uses
  /// K_y^{-1} - alpha alpha^T). Blocked multi-column solves: each panel of
  /// kCholeskyBlock identity columns goes through one forward + backward
  /// substitution whose inner loops are contiguous over the panel, so the
  /// factor is streamed once per panel instead of once per column. Per
  /// scalar the operations (and therefore the bits) are exactly those of
  /// the column-at-a-time inverse_reference(); only the lower triangle is
  /// computed and mirrored.
  Matrix inverse() const;

  /// Unblocked column-by-column inverse (one scratch vector, zero-prefix
  /// forward solves). Kept as the validation and benchmark baseline for
  /// inverse(); identical results bit-for-bit.
  Matrix inverse_reference() const;

  /// log|A| = 2 * sum_i log L_ii (the model-complexity term of Eq. 8).
  double log_det() const;

 private:
  explicit CholeskyFactor(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// Result of jittered factorization: the factor plus the jitter that was
/// actually added to the diagonal (0 when the clean factorization worked).
struct JitteredCholesky {
  CholeskyFactor factor;
  double jitter = 0.0;
};

/// Factors `a`, escalating diagonal jitter from `initial_jitter` by x10 up
/// to `max_jitter` (both relative to the mean diagonal). Throws
/// std::runtime_error if the matrix cannot be factored even at max jitter.
JitteredCholesky cholesky_with_jitter(const Matrix& a,
                                      double initial_jitter = 1e-12,
                                      double max_jitter = 1e-4);

}  // namespace alamr::linalg
