file(REMOVE_RECURSE
  "CMakeFiles/alamr_core.dir/batch.cpp.o"
  "CMakeFiles/alamr_core.dir/batch.cpp.o.d"
  "CMakeFiles/alamr_core.dir/export.cpp.o"
  "CMakeFiles/alamr_core.dir/export.cpp.o.d"
  "CMakeFiles/alamr_core.dir/metrics.cpp.o"
  "CMakeFiles/alamr_core.dir/metrics.cpp.o.d"
  "CMakeFiles/alamr_core.dir/online.cpp.o"
  "CMakeFiles/alamr_core.dir/online.cpp.o.d"
  "CMakeFiles/alamr_core.dir/simulator.cpp.o"
  "CMakeFiles/alamr_core.dir/simulator.cpp.o.d"
  "CMakeFiles/alamr_core.dir/strategies.cpp.o"
  "CMakeFiles/alamr_core.dir/strategies.cpp.o.d"
  "CMakeFiles/alamr_core.dir/trace.cpp.o"
  "CMakeFiles/alamr_core.dir/trace.cpp.o.d"
  "libalamr_core.a"
  "libalamr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alamr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
