# Empty compiler generated dependencies file for bench_ablate_bo_contrast.
# This may be replaced when dependencies are built.
