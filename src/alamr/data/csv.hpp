#pragma once

// CSV persistence for datasets.
//
// The AMR campaign (dataset generation) is the expensive step of the
// pipeline, so benches generate it once and cache it on disk — the same
// split the paper has between the supercomputer runs and the local
// "offline" AL analysis.

#include <filesystem>
#include <string>

#include "alamr/data/dataset.hpp"

namespace alamr::data {

/// Writes `dataset` with header "<feature...>,wallclock_s,cost_nh,maxrss_mb".
/// Throws std::runtime_error on I/O failure.
void write_csv(const Dataset& dataset, const std::filesystem::path& path);

/// Reads a dataset written by write_csv (or any CSV whose last three
/// columns are wallclock/cost/memory). Throws std::runtime_error on parse
/// or I/O failure.
Dataset read_csv(const std::filesystem::path& path);

/// Serializes to a CSV string (used by tests to avoid filesystem churn).
std::string to_csv_string(const Dataset& dataset);

/// Parses a CSV string in the write_csv format.
Dataset from_csv_string(const std::string& text);

}  // namespace alamr::data
