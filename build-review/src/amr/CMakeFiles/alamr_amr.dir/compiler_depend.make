# Empty compiler generated dependencies file for alamr_amr.
# This may be replaced when dependencies are built.
