#include "alamr/amr/problem.hpp"

#include <cmath>
#include <stdexcept>

namespace alamr::amr {

Cons ShockBubbleProblem::initial_state(double x, double y) const noexcept {
  if (x < shock_x) {
    return to_conserved(post_shock());
  }
  const double dx = x - bubble_x;
  const double dy = y - bubble_y;
  const double r = bubble_radius();
  Prim ambient{1.0, 0.0, 0.0, 1.0};
  if (dx * dx + dy * dy < r * r) {
    ambient.rho = rhoin;
  }
  return to_conserved(ambient);
}

BoundaryType ShockBubbleProblem::boundary(int face) const noexcept {
  switch (face) {
    case 0: return BoundaryType::kInflow;
    case 1: return BoundaryType::kOutflow;
    default: return BoundaryType::kReflect;
  }
}

Prim ShockBubbleProblem::post_shock() const noexcept {
  return post_shock_state(mach, 1.0, 1.0);
}

void ShockBubbleProblem::validate() const {
  if (mx < 4 || mx > 512) {
    throw std::invalid_argument("ShockBubbleProblem: mx out of range [4, 512]");
  }
  if (max_level < 0 || max_level > 12) {
    throw std::invalid_argument("ShockBubbleProblem: max_level out of range");
  }
  if (!(r0 > 0.0) || !(rhoin > 0.0)) {
    throw std::invalid_argument("ShockBubbleProblem: r0 and rhoin must be positive");
  }
  if (!(mach > 1.0)) {
    throw std::invalid_argument("ShockBubbleProblem: mach must exceed 1");
  }
  if (bricks_x < 1 || bricks_y < 1) {
    throw std::invalid_argument("ShockBubbleProblem: bricks must be >= 1");
  }
  if (!(final_time > 0.0) || !(cfl > 0.0) || cfl >= 1.0) {
    throw std::invalid_argument("ShockBubbleProblem: bad time-stepping parameters");
  }
  if (!(refine_threshold > coarsen_threshold) || !(coarsen_threshold > 0.0)) {
    throw std::invalid_argument("ShockBubbleProblem: bad refinement thresholds");
  }
  if (regrid_interval < 1) {
    throw std::invalid_argument("ShockBubbleProblem: regrid_interval must be >= 1");
  }
  const double px = width / bricks_x;
  const double py = height / bricks_y;
  if (std::abs(px - py) > 1e-12) {
    throw std::invalid_argument("ShockBubbleProblem: patches must be square");
  }
}

}  // namespace alamr::amr
