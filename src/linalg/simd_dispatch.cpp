// Runtime dispatch for the SIMD kernel tables (DESIGN.md §11).
//
// Selection happens once, in a dynamic initializer of this TU: CPUID
// (__builtin_cpu_supports against the x86-64-v3/v4 micro-architecture
// levels, matching exactly what the kernel TUs were compiled for) picks
// the best level the host executes, and ALAMR_SIMD_LEVEL overrides it —
// clamped to the host's ceiling, so over-asking degrades instead of
// crashing. Before that initializer runs, g_active constinit-points at
// the scalar table, so static-init-order callers are always safe.

#include <algorithm>
#include <cstdlib>
#include <string>
#include <string_view>

#include "alamr/linalg/simd_tables.hpp"

namespace alamr::linalg::simd {

namespace detail {
constinit std::atomic<const KernelTable*> g_active{&kScalarTable};
constinit std::atomic<Level> g_level{Level::kScalar};
}  // namespace detail

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

namespace {

#if defined(__x86_64__) || defined(__i386__)
#define ALAMR_SIMD_HAVE_CPUID 1
#else
#define ALAMR_SIMD_HAVE_CPUID 0
#endif

const KernelTable* table_for(Level level) noexcept {
  switch (level) {
    case Level::kScalar: return &detail::kScalarTable;
    case Level::kAvx2: return detail::avx2_table();
    case Level::kAvx512: return detail::avx512_table();
  }
  return nullptr;
}

}  // namespace

Level max_supported_level() noexcept {
#if ALAMR_SIMD_HAVE_CPUID
  // The v3/v4 micro-architecture levels bundle exactly the feature sets
  // the kernel TUs are compiled against (-march=x86-64-v3/-v4), so one
  // probe answers "can every instruction the TU may contain execute here".
  if (detail::avx512_table() != nullptr &&
      __builtin_cpu_supports("x86-64-v4")) {
    return Level::kAvx512;
  }
  if (detail::avx2_table() != nullptr && __builtin_cpu_supports("x86-64-v3")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

bool set_level(Level level) noexcept {
  if (level > max_supported_level()) return false;
  const KernelTable* table = table_for(level);
  if (table == nullptr) return false;
  detail::g_level.store(level, std::memory_order_relaxed);
  detail::g_active.store(table, std::memory_order_relaxed);
  return true;
}

std::string cpu_features() noexcept {
  std::string out;
#if ALAMR_SIMD_HAVE_CPUID
  const auto append = [&out](const char* name, bool present) {
    if (!present) return;
    if (!out.empty()) out += ',';
    out += name;
  };
  append("sse2", __builtin_cpu_supports("sse2"));
  append("avx", __builtin_cpu_supports("avx"));
  append("avx2", __builtin_cpu_supports("avx2"));
  append("fma", __builtin_cpu_supports("fma"));
  append("avx512f", __builtin_cpu_supports("avx512f"));
  append("avx512dq", __builtin_cpu_supports("avx512dq"));
  append("avx512bw", __builtin_cpu_supports("avx512bw"));
  append("avx512vl", __builtin_cpu_supports("avx512vl"));
#endif
  return out;
}

namespace {

Level startup_level() noexcept {
  const Level best = max_supported_level();
  const char* env = std::getenv("ALAMR_SIMD_LEVEL");
  if (env == nullptr || *env == '\0') return best;
  const std::string_view request(env);
  Level requested = best;  // unrecognized values fall back to auto
  if (request == "scalar") {
    requested = Level::kScalar;
  } else if (request == "avx2") {
    requested = Level::kAvx2;
  } else if (request == "avx512") {
    requested = Level::kAvx512;
  }
  return std::min(requested, best);
}

[[maybe_unused]] const bool g_dispatch_initialized = [] {
  set_level(startup_level());
  return true;
}();

}  // namespace

}  // namespace alamr::linalg::simd
