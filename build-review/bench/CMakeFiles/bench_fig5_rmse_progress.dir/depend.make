# Empty dependencies file for bench_fig5_rmse_progress.
# This may be replaced when dependencies are built.
