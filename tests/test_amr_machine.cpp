// Tests for the simulated machine: SFC partitioning and job pricing.

#include "alamr/amr/machine.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace {

using namespace alamr::amr;
using alamr::stats::Rng;

SolverStats tiny_run() {
  ShockBubbleProblem problem;
  problem.mx = 8;
  problem.max_level = 2;
  problem.final_time = 0.01;
  FvSolver solver(problem);
  return solver.run();
}

TEST(SfcPartition, ContiguousAndComplete) {
  const std::vector<std::size_t> cells{10, 10, 10, 10, 10, 10, 10, 10};
  const auto owner = sfc_partition(cells, 4);
  ASSERT_EQ(owner.size(), 8u);
  // Contiguous, non-decreasing rank assignment along the curve.
  for (std::size_t i = 1; i < owner.size(); ++i) {
    EXPECT_GE(owner[i], owner[i - 1]);
  }
  // Balanced: each rank owns two equal leaves.
  std::vector<std::size_t> counts(4, 0);
  for (const std::size_t r : owner) ++counts[r];
  for (const std::size_t c : counts) EXPECT_EQ(c, 2u);
}

TEST(SfcPartition, WeightsMatter) {
  // One huge leaf, many small: the huge one should not share a rank with
  // all of the small ones.
  const std::vector<std::size_t> cells{1000, 10, 10, 10, 10, 10};
  const auto owner = sfc_partition(cells, 2);
  EXPECT_EQ(owner[0], 0u);
  // At least most small leaves move to rank 1.
  std::size_t on_rank1 = 0;
  for (std::size_t i = 1; i < cells.size(); ++i) {
    if (owner[i] == 1) ++on_rank1;
  }
  EXPECT_GE(on_rank1, 4u);
}

TEST(SfcPartition, MoreRanksThanLeaves) {
  const std::vector<std::size_t> cells{5, 5};
  const auto owner = sfc_partition(cells, 16);
  EXPECT_EQ(owner.size(), 2u);
  EXPECT_NE(owner[0], owner[1]);
}

TEST(SfcPartition, EdgeCases) {
  EXPECT_THROW(sfc_partition({1, 2}, 0), std::invalid_argument);
  EXPECT_TRUE(sfc_partition({}, 4).empty());
  const auto single = sfc_partition({100}, 8);
  EXPECT_EQ(single[0], 0u);
}

TEST(SimulateJob, BasicInvariants) {
  const SolverStats stats = tiny_run();
  MachineSpec spec;
  spec.wallclock_noise_sigma = 0.0;
  spec.memory_noise_sigma = 0.0;
  Rng rng(1);
  const JobResult job = simulate_job(stats, 4, spec, rng);
  EXPECT_GT(job.wallclock_seconds, 0.0);
  EXPECT_GT(job.maxrss_mb, 0.0);
  EXPECT_GE(job.load_imbalance, 1.0);
  EXPECT_NEAR(job.cost_node_hours, job.wallclock_seconds * 4.0 / 3600.0, 1e-12);
  EXPECT_NEAR(job.wallclock_seconds,
              job.compute_seconds + job.comm_seconds + job.regrid_seconds +
                  job.startup_seconds,
              1e-9);
}

TEST(SimulateJob, DeterministicWithoutNoiseSeed) {
  const SolverStats stats = tiny_run();
  MachineSpec spec;
  Rng r1(9);
  Rng r2(9);
  const JobResult a = simulate_job(stats, 8, spec, r1);
  const JobResult b = simulate_job(stats, 8, spec, r2);
  EXPECT_DOUBLE_EQ(a.wallclock_seconds, b.wallclock_seconds);
  EXPECT_DOUBLE_EQ(a.maxrss_mb, b.maxrss_mb);
}

TEST(SimulateJob, NoiseCreatesReplicateVariability) {
  const SolverStats stats = tiny_run();
  MachineSpec spec;
  Rng rng(5);
  const JobResult a = simulate_job(stats, 8, spec, rng);
  const JobResult b = simulate_job(stats, 8, spec, rng);
  EXPECT_NE(a.wallclock_seconds, b.wallclock_seconds);
}

TEST(SimulateJob, MoreNodesLessComputeMoreCost) {
  // More nodes shrink the parallel compute phase but inflate node-hour
  // cost (imperfect scaling + per-rank startup). Wallclock itself can go
  // either way on a tiny test job because startup overhead grows with
  // rank count, so compare the components the model guarantees.
  ShockBubbleProblem problem;
  problem.mx = 16;
  problem.max_level = 3;
  problem.final_time = 0.01;
  FvSolver solver(problem);
  const SolverStats stats = solver.run();

  MachineSpec spec;
  spec.wallclock_noise_sigma = 0.0;
  spec.memory_noise_sigma = 0.0;
  // One rank per node so the tiny test mesh still has several leaves per
  // rank at the high node count (with 24 cores/node every rank already
  // holds at most one patch and compute time is granularity-limited).
  spec.cores_per_node = 1;
  Rng rng(2);
  const JobResult p4 = simulate_job(stats, 4, spec, rng);
  const JobResult p32 = simulate_job(stats, 32, spec, rng);
  EXPECT_LT(p32.compute_seconds, p4.compute_seconds);
  EXPECT_GT(p32.cost_node_hours, p4.cost_node_hours);
  EXPECT_GT(p32.startup_seconds, p4.startup_seconds);
}

TEST(SimulateJob, MemoryPerProcessShrinksWithNodes) {
  const SolverStats stats = tiny_run();
  MachineSpec spec;
  spec.memory_noise_sigma = 0.0;
  spec.wallclock_noise_sigma = 0.0;
  Rng rng(3);
  const JobResult p4 = simulate_job(stats, 4, spec, rng);
  const JobResult p32 = simulate_job(stats, 32, spec, rng);
  EXPECT_LE(p32.maxrss_mb, p4.maxrss_mb);
}

TEST(SimulateJob, InvalidNodesThrows) {
  const SolverStats stats = tiny_run();
  MachineSpec spec;
  Rng rng(4);
  EXPECT_THROW(simulate_job(stats, 0, spec, rng), std::invalid_argument);
}

// Property: over random leaf-size vectors, the SFC partition is
// contiguous, complete, and its imbalance is bounded by the granularity of
// the largest leaf.
class SfcPartitionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SfcPartitionProperty, ContiguousCompleteBounded) {
  Rng rng(GetParam());
  const std::size_t n_leaves = 1 + rng.uniform_index(200);
  const std::size_t ranks = 1 + rng.uniform_index(64);
  std::vector<std::size_t> cells(n_leaves);
  std::size_t total = 0;
  std::size_t largest = 0;
  for (std::size_t& c : cells) {
    c = 1 + rng.uniform_index(1024);
    total += c;
    largest = std::max(largest, c);
  }
  const auto owner = sfc_partition(cells, ranks);
  ASSERT_EQ(owner.size(), n_leaves);

  std::vector<std::size_t> rank_cells(ranks, 0);
  for (std::size_t i = 0; i < n_leaves; ++i) {
    ASSERT_LT(owner[i], ranks);
    if (i > 0) {
      EXPECT_GE(owner[i], owner[i - 1]);  // contiguous along curve
    }
    rank_cells[owner[i]] += cells[i];
  }
  // Load bound: a rank holds at most its ideal share plus one leaf.
  const double ideal = static_cast<double>(total) / static_cast<double>(ranks);
  for (const std::size_t rc : rank_cells) {
    EXPECT_LE(static_cast<double>(rc), ideal + static_cast<double>(largest));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SfcPartitionProperty,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 5ULL, 8ULL,
                                           13ULL, 21ULL, 34ULL));

TEST(SimulateJob, FasterCellsLowerCost) {
  const SolverStats stats = tiny_run();
  MachineSpec slow;
  MachineSpec fast;
  fast.cell_update_seconds = slow.cell_update_seconds / 10.0;
  slow.wallclock_noise_sigma = fast.wallclock_noise_sigma = 0.0;
  Rng r1(6);
  Rng r2(6);
  EXPECT_GT(simulate_job(stats, 4, slow, r1).wallclock_seconds,
            simulate_job(stats, 4, fast, r2).wallclock_seconds);
}

}  // namespace
