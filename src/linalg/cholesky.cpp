#include "alamr/linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

// Header-only instrumentation (standard library only), so linking stays
// within this module — see the layering note in core/trace.hpp.
#include "alamr/core/trace.hpp"

namespace alamr::linalg {

std::optional<CholeskyFactor> CholeskyFactor::factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      // Contiguous dot over row prefixes (row-major storage).
      const auto li = l.row(i);
      const auto lj = l.row(j);
      for (std::size_t k = 0; k < j; ++k) v -= li[k] * lj[k];
      l(i, j) = v * inv;
    }
  }
  return CholeskyFactor(std::move(l));
}

bool CholeskyFactor::extend(std::span<const double> row, double diag) {
  const std::size_t n = size();
  if (row.size() != n) throw std::invalid_argument("extend: length mismatch");
  core::trace::count("cholesky.extend");
  // New bottom row of L. This repeats, operation for operation, what
  // factor() computes for row n of the bordered matrix: the same dot
  // products over row prefixes and the same `v * (1.0 / l_jj)` scaling, so
  // extending is bit-identical to refactoring from scratch (the first n
  // rows of a factorization depend only on the leading n x n block).
  Vector z(n);
  for (std::size_t j = 0; j < n; ++j) {
    double v = row[j];
    const auto lj = l_.row(j);
    for (std::size_t k = 0; k < j; ++k) v -= z[k] * lj[k];
    z[j] = v * (1.0 / lj[j]);
  }
  double d = diag;
  for (std::size_t k = 0; k < n; ++k) d -= z[k] * z[k];
  if (!(d > 0.0) || !std::isfinite(d)) {
    core::trace::count("cholesky.extend_rejected");
    return false;
  }

  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = l_.row(i);
    const auto dst = grown.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  const auto last = grown.row(n);
  std::copy(z.begin(), z.end(), last.begin());
  last[n] = std::sqrt(d);
  l_ = std::move(grown);
  return true;
}

Vector CholeskyFactor::solve_lower(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("solve_lower: length mismatch");
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    const auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) v -= li[k] * z[k];
    z[i] = v / li[i];
  }
  return z;
}

Vector CholeskyFactor::solve_upper(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("solve_upper: length mismatch");
  // Saxpy (outer-product) form: once z[k] is final, eliminate its
  // contribution from all remaining rows by walking l_.row(k) — contiguous
  // in row-major storage, unlike the column stride l_(k, ii) of the
  // dot-product form.
  Vector z(b.begin(), b.end());
  for (std::size_t k = n; k-- > 0;) {
    const auto lk = l_.row(k);
    const double zk = z[k] / lk[k];
    z[k] = zk;
    for (std::size_t j = 0; j < k; ++j) z[j] -= lk[j] * zk;
  }
  return z;
}

Vector CholeskyFactor::solve(std::span<const double> b) const {
  return solve_upper(solve_lower(b));
}

Matrix CholeskyFactor::solve_matrix(const Matrix& b) const {
  if (b.rows() != size()) throw std::invalid_argument("solve_matrix: shape mismatch");
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) column[i] = b(i, j);
    const Vector solved = solve(column);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = solved[i];
  }
  return x;
}

Matrix CholeskyFactor::inverse() const {
  // Column j of A^{-1} solves A x = e_j. The forward solve of e_j has a
  // zero prefix (entries before j stay zero), and by symmetry only the
  // entries at or below the diagonal are needed — the upper triangle is
  // mirrored. One scratch vector, no identity matrix, no per-column heap
  // allocations.
  const std::size_t n = size();
  Matrix inv(n, n);
  Vector z(n);
  for (std::size_t j = 0; j < n; ++j) {
    // Forward solve L z = e_j, skipping the known-zero prefix.
    for (std::size_t i = j; i < n; ++i) {
      double v = i == j ? 1.0 : 0.0;
      const auto li = l_.row(i);
      for (std::size_t k = j; k < i; ++k) v -= li[k] * z[k];
      z[i] = v / li[i];
    }
    // In-place backward solve L^T x = z, only down to row j (entries above
    // the diagonal of column j come from the mirror).
    for (std::size_t k = n; k-- > j;) {
      const auto lk = l_.row(k);
      const double zk = z[k] / lk[k];
      z[k] = zk;
      for (std::size_t i = j; i < k; ++i) z[i] -= lk[i] * zk;
    }
    inv(j, j) = z[j];
    for (std::size_t i = j + 1; i < n; ++i) {
      inv(i, j) = z[i];
      inv(j, i) = z[i];
    }
  }
  return inv;
}

double CholeskyFactor::log_det() const {
  double total = 0.0;
  for (std::size_t i = 0; i < size(); ++i) total += std::log(l_(i, i));
  return 2.0 * total;
}

JitteredCholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                                      double max_jitter) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky_with_jitter: matrix must be square");
  }
  if (auto clean = CholeskyFactor::factor(a)) {
    return JitteredCholesky{std::move(*clean), 0.0};
  }
  const std::size_t n = a.rows();
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_diag += a(i, i);
  mean_diag = n > 0 ? mean_diag / static_cast<double>(n) : 1.0;
  const double scale = mean_diag > 0.0 ? mean_diag : 1.0;

  // Single working copy across all retries: factor() never mutates its
  // input, so only the diagonal needs resetting. Restoring from the saved
  // pristine diagonal (rather than deducting the previous jitter) keeps
  // each attempt exactly a(i, i) + jitter with no accumulated rounding.
  Matrix work = a;
  Vector pristine_diag(n);
  for (std::size_t i = 0; i < n; ++i) pristine_diag[i] = a(i, i);
  for (double rel = initial_jitter; rel <= max_jitter; rel *= 10.0) {
    core::trace::count("cholesky.jitter_retries");
    const double jitter = rel * scale;
    for (std::size_t i = 0; i < n; ++i) work(i, i) = pristine_diag[i] + jitter;
    if (auto factored = CholeskyFactor::factor(work)) {
      return JitteredCholesky{std::move(*factored), jitter};
    }
  }
  throw std::runtime_error(
      "cholesky_with_jitter: matrix not positive definite even at max jitter");
}

}  // namespace alamr::linalg
