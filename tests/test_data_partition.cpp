// Tests for Init/Active/Test partitioning (paper Sec. IV).

#include "alamr/data/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace {

using namespace alamr::data;
using alamr::stats::Rng;

TEST(Partition, SizesMatchRequest) {
  Rng rng(1);
  const Partition p = make_partition(600, 200, 50, rng);
  EXPECT_EQ(p.test.size(), 200u);
  EXPECT_EQ(p.init.size(), 50u);
  EXPECT_EQ(p.active.size(), 350u);
  EXPECT_EQ(p.total(), 600u);
}

TEST(Partition, PaperConfigurations) {
  // nInit in {1, 50, 100} with nTest = 200 over n = 600 (Sec. IV).
  for (const std::size_t n_init : {1u, 50u, 100u}) {
    Rng rng(n_init);
    const Partition p = make_partition(600, 200, n_init, rng);
    EXPECT_EQ(p.init.size(), n_init);
    EXPECT_EQ(p.active.size(), 400u - n_init);
  }
}

TEST(Partition, DisjointAndCovering) {
  Rng rng(2);
  const Partition p = make_partition(100, 30, 10, rng);
  std::set<std::size_t> all;
  all.insert(p.test.begin(), p.test.end());
  all.insert(p.init.begin(), p.init.end());
  all.insert(p.active.begin(), p.active.end());
  EXPECT_EQ(all.size(), 100u);  // no duplicates anywhere
  EXPECT_EQ(*all.rbegin(), 99u);
}

TEST(Partition, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  const Partition pa = make_partition(50, 10, 5, a);
  const Partition pb = make_partition(50, 10, 5, b);
  EXPECT_EQ(pa.test, pb.test);
  EXPECT_EQ(pa.init, pb.init);
  EXPECT_EQ(pa.active, pb.active);
}

TEST(Partition, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  const Partition pa = make_partition(200, 50, 20, a);
  const Partition pb = make_partition(200, 50, 20, b);
  EXPECT_NE(pa.test, pb.test);
}

TEST(Partition, RejectsInvalidRequests) {
  Rng rng(3);
  EXPECT_THROW(make_partition(10, 8, 3, rng), std::invalid_argument);
  EXPECT_THROW(make_partition(10, 5, 0, rng), std::invalid_argument);
}

TEST(Partition, ActiveMayBeEmpty) {
  Rng rng(4);
  const Partition p = make_partition(10, 5, 5, rng);
  EXPECT_TRUE(p.active.empty());
}

// Property: over many seeds, every index appears in each partition role
// with roughly the expected frequency (shuffling is unbiased).
TEST(Partition, IndexZeroLandsInTestAtExpectedRate) {
  constexpr int kTrials = 2000;
  int in_test = 0;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(static_cast<std::uint64_t>(t) + 1000);
    const Partition p = make_partition(30, 10, 5, rng);
    if (std::find(p.test.begin(), p.test.end(), 0u) != p.test.end()) {
      ++in_test;
    }
  }
  // Expected rate 1/3; binomial 5-sigma band.
  EXPECT_NEAR(in_test / static_cast<double>(kTrials), 1.0 / 3.0, 0.055);
}

}  // namespace
