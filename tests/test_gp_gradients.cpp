// The repository's key numerical property test: analytic gradients of the
// kernel gram matrices and of the log marginal likelihood must match
// central finite differences for every kernel family.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "alamr/gp/gpr.hpp"
#include "alamr/gp/kernels.hpp"
#include "alamr/opt/objective.hpp"
#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::gp;
using alamr::linalg::Matrix;
using alamr::stats::Rng;

Matrix random_points(std::size_t n, std::size_t d, Rng& rng) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniform(0.0, 1.0);
  }
  return x;
}

struct KernelFactory {
  const char* name;
  std::unique_ptr<Kernel> (*make)(std::size_t dim);
};

std::unique_ptr<Kernel> make_rbf(std::size_t) {
  return std::make_unique<RbfKernel>(0.8);
}
std::unique_ptr<Kernel> make_constant(std::size_t) {
  return std::make_unique<ConstantKernel>(1.7);
}
std::unique_ptr<Kernel> make_white(std::size_t) {
  return std::make_unique<WhiteKernel>(0.3);
}
std::unique_ptr<Kernel> make_matern12(std::size_t) {
  return std::make_unique<MaternKernel>(MaternKernel::Nu::kHalf, 0.9);
}
std::unique_ptr<Kernel> make_matern32(std::size_t) {
  return std::make_unique<MaternKernel>(MaternKernel::Nu::kThreeHalves, 0.9);
}
std::unique_ptr<Kernel> make_matern52(std::size_t) {
  return std::make_unique<MaternKernel>(MaternKernel::Nu::kFiveHalves, 0.9);
}
std::unique_ptr<Kernel> make_ard(std::size_t dim) {
  std::vector<double> lengths(dim);
  for (std::size_t i = 0; i < dim; ++i) lengths[i] = 0.4 + 0.3 * static_cast<double>(i);
  return std::make_unique<RbfArdKernel>(std::move(lengths));
}
std::unique_ptr<Kernel> make_paper(std::size_t) {
  return make_paper_kernel(1.2, 0.7, 0.05);
}
std::unique_ptr<Kernel> make_rq(std::size_t) {
  return std::make_unique<RationalQuadraticKernel>(0.8, 1.5);
}
std::unique_ptr<Kernel> make_sum_of_products(std::size_t) {
  return sum(product(std::make_unique<ConstantKernel>(0.8),
                     std::make_unique<MaternKernel>(
                         MaternKernel::Nu::kThreeHalves, 1.1)),
             product(std::make_unique<ConstantKernel>(0.3),
                     std::make_unique<RbfKernel>(0.4)));
}

class GramGradientProperty : public ::testing::TestWithParam<KernelFactory> {};

// d(gram)/d(theta_j) via finite differences on each gram entry.
TEST_P(GramGradientProperty, MatchesFiniteDifferences) {
  Rng rng(41);
  constexpr std::size_t kDim = 3;
  const Matrix x = random_points(7, kDim, rng);
  const auto kernel = GetParam().make(kDim);

  std::vector<Matrix> analytic;
  kernel->gram_with_gradients(x, analytic);
  ASSERT_EQ(analytic.size(), kernel->num_params());

  const std::vector<double> theta0 = kernel->log_params();
  constexpr double kStep = 1e-6;
  for (std::size_t p = 0; p < kernel->num_params(); ++p) {
    std::vector<double> theta = theta0;
    theta[p] = theta0[p] + kStep;
    kernel->set_log_params(theta);
    const Matrix plus = kernel->gram(x);
    theta[p] = theta0[p] - kStep;
    kernel->set_log_params(theta);
    const Matrix minus = kernel->gram(x);
    kernel->set_log_params(theta0);

    for (std::size_t i = 0; i < x.rows(); ++i) {
      for (std::size_t j = 0; j < x.rows(); ++j) {
        const double fd = (plus(i, j) - minus(i, j)) / (2.0 * kStep);
        EXPECT_NEAR(analytic[p](i, j), fd, 1e-6)
            << "param " << p << " entry (" << i << ", " << j << ")";
      }
    }
  }
}

// Gram value returned together with gradients must equal plain gram().
TEST_P(GramGradientProperty, GramConsistentWithPlainEvaluation) {
  Rng rng(43);
  constexpr std::size_t kDim = 3;
  const Matrix x = random_points(9, kDim, rng);
  const auto kernel = GetParam().make(kDim);
  std::vector<Matrix> gradients;
  const Matrix with_grad = kernel->gram_with_gradients(x, gradients);
  EXPECT_LT(alamr::linalg::max_abs_diff(with_grad, kernel->gram(x)), 1e-14);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, GramGradientProperty,
    ::testing::Values(KernelFactory{"rbf", &make_rbf},
                      KernelFactory{"constant", &make_constant},
                      KernelFactory{"white", &make_white},
                      KernelFactory{"matern12", &make_matern12},
                      KernelFactory{"matern32", &make_matern32},
                      KernelFactory{"matern52", &make_matern52},
                      KernelFactory{"ard", &make_ard},
                      KernelFactory{"paper", &make_paper},
                      KernelFactory{"rq", &make_rq},
                      KernelFactory{"sum_of_products", &make_sum_of_products}),
    [](const ::testing::TestParamInfo<KernelFactory>& info) {
      return info.param.name;
    });

class LmlGradientProperty : public ::testing::TestWithParam<KernelFactory> {};

// The analytic LML gradient (via trace identity) must match finite
// differences of the LML value.
TEST_P(LmlGradientProperty, MatchesFiniteDifferences) {
  Rng rng(59);
  constexpr std::size_t kDim = 2;
  const Matrix x = random_points(12, kDim, rng);
  std::vector<double> y(x.rows());
  for (double& v : y) v = rng.normal(0.0, 1.0);

  GprOptions options;
  options.optimize = false;  // keep the kernel at its constructed params
  options.normalize_y = false;
  GaussianProcessRegressor gpr(GetParam().make(kDim), options);
  gpr.fit(x, y, rng);

  const std::vector<double> theta = gpr.kernel().log_params();
  std::vector<double> analytic(theta.size());
  gpr.log_marginal_likelihood(theta, analytic);

  const alamr::opt::Objective lml_value =
      [&gpr](std::span<const double> t, std::span<double>) {
        return gpr.log_marginal_likelihood(t, {});
      };
  const std::vector<double> fd =
      alamr::opt::finite_difference_gradient(lml_value, theta, 1e-6);

  for (std::size_t p = 0; p < theta.size(); ++p) {
    EXPECT_NEAR(analytic[p], fd[p], 1e-4 * std::max(1.0, std::abs(fd[p])))
        << "param " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, LmlGradientProperty,
    ::testing::Values(KernelFactory{"rbf", &make_rbf},
                      KernelFactory{"matern32", &make_matern32},
                      KernelFactory{"matern52", &make_matern52},
                      KernelFactory{"ard", &make_ard},
                      KernelFactory{"paper", &make_paper},
                      KernelFactory{"rq", &make_rq},
                      KernelFactory{"sum_of_products", &make_sum_of_products}),
    [](const ::testing::TestParamInfo<KernelFactory>& info) {
      return info.param.name;
    });

}  // namespace
