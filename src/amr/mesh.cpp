#include "alamr/amr/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alamr::amr {

namespace {

// Flag values used during regrid.
enum : int { kCoarsen = 0, kKeep = 1, kRefine = 2 };

}  // namespace

std::size_t MeshTopology::total_cells() const noexcept {
  std::size_t total = 0;
  for (const std::size_t c : cells) total += c;
  return total;
}

QuadtreeMesh::QuadtreeMesh(const ShockBubbleProblem& problem) : problem_(problem) {
  problem_.validate();
  if (problem_.mx % 2 != 0) {
    throw std::invalid_argument("QuadtreeMesh: mx must be even");
  }

  // Root brick.
  for (std::int32_t bj = 0; bj < problem_.bricks_y; ++bj) {
    for (std::int32_t bi = 0; bi < problem_.bricks_x; ++bi) {
      const PatchKey key{0, bi, bj};
      Patch patch(key, problem_.mx, problem_.ghost_width());
      apply_initial_condition(patch);
      leaves_.emplace(key, std::move(patch));
    }
  }

  // Initial refinement: resolve the initial shock and bubble interface up
  // to max_level, re-evaluating the analytic initial condition on each new
  // level instead of prolonging (sharper startup data).
  for (int round = 0; round < problem_.max_level; ++round) {
    fill_ghosts();
    std::vector<PatchKey> to_refine;
    for (const auto& [key, patch] : leaves_) {
      if (key.level < problem_.max_level &&
          patch.max_relative_density_jump() > problem_.refine_threshold) {
        to_refine.push_back(key);
      }
    }
    if (to_refine.empty()) break;

    // 2:1 balance: refining a leaf requires its coarser face neighbors to
    // refine as well; iterate to a fixpoint.
    std::unordered_map<PatchKey, bool, PatchKeyHash> marked;
    for (const auto& key : to_refine) marked[key] = true;
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<PatchKey> snapshot;
      snapshot.reserve(marked.size());
      for (const auto& [key, flag] : marked) {
        if (flag) snapshot.push_back(key);
      }
      for (const auto& key : snapshot) {
        for (int face = 0; face < 4; ++face) {
          const PatchKey neighbor = key.face_neighbor(face);
          if (!in_domain(neighbor) || is_leaf(neighbor)) continue;
          const PatchKey coarse = neighbor.parent();
          if (is_leaf(coarse) && !marked[coarse]) {
            marked[coarse] = true;
            changed = true;
          }
        }
      }
    }

    std::vector<PatchKey> final_list;
    for (const auto& [key, flag] : marked) {
      if (flag && is_leaf(key)) final_list.push_back(key);
    }
    // Deterministic order regardless of hash iteration.
    std::sort(final_list.begin(), final_list.end(),
              [](const PatchKey& a, const PatchKey& b) {
                if (a.level != b.level) return a.level < b.level;
                if (a.j != b.j) return a.j < b.j;
                return a.i < b.i;
              });
    for (const auto& key : final_list) {
      refine_leaf(key);
      for (int c = 0; c < 4; ++c) {
        apply_initial_condition(leaf(key.child(c)));
      }
    }
  }
  fill_ghosts();
}

void QuadtreeMesh::apply_initial_condition(Patch& patch) {
  const PatchKey key = patch.key();
  const double h = cell_size(key.level);
  const double x0 = patch_x0(key);
  const double y0 = patch_y0(key);
  for (int j = 0; j < patch.mx(); ++j) {
    for (int i = 0; i < patch.mx(); ++i) {
      patch.at(i, j) =
          problem_.initial_state(x0 + (i + 0.5) * h, y0 + (j + 0.5) * h);
    }
  }
}

std::size_t QuadtreeMesh::total_cells() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, patch] : leaves_) total += patch.cells();
  return total;
}

int QuadtreeMesh::finest_level() const noexcept {
  int finest = 0;
  for (const auto& [key, patch] : leaves_) finest = std::max(finest, key.level);
  return finest;
}

double QuadtreeMesh::patch_size(int level) const noexcept {
  return (problem_.width / problem_.bricks_x) / static_cast<double>(1 << level);
}

double QuadtreeMesh::cell_size(int level) const noexcept {
  return patch_size(level) / problem_.mx;
}

double QuadtreeMesh::patch_x0(const PatchKey& key) const noexcept {
  return key.i * patch_size(key.level);
}

double QuadtreeMesh::patch_y0(const PatchKey& key) const noexcept {
  return key.j * patch_size(key.level);
}

bool QuadtreeMesh::is_leaf(const PatchKey& key) const noexcept {
  return leaves_.contains(key);
}

Patch& QuadtreeMesh::leaf(const PatchKey& key) {
  const auto it = leaves_.find(key);
  if (it == leaves_.end()) throw std::out_of_range("QuadtreeMesh: not a leaf");
  return it->second;
}

const Patch& QuadtreeMesh::leaf(const PatchKey& key) const {
  const auto it = leaves_.find(key);
  if (it == leaves_.end()) throw std::out_of_range("QuadtreeMesh: not a leaf");
  return it->second;
}

bool QuadtreeMesh::in_domain(const PatchKey& key) const noexcept {
  if (key.level < 0) return false;
  const std::int32_t nx = problem_.bricks_x << key.level;
  const std::int32_t ny = problem_.bricks_y << key.level;
  return key.i >= 0 && key.i < nx && key.j >= 0 && key.j < ny;
}

void QuadtreeMesh::fill_physical_face(Patch& patch, int face) {
  const int mx = patch.mx();
  const int ghosts = patch.ghosts();
  const BoundaryType bc = problem_.boundary(face);
  const Cons inflow = to_conserved(problem_.post_shock());
  for (int d = 0; d < ghosts; ++d) {
    for (int t = 0; t < mx; ++t) {
      // (gi, gj) ghost cell at depth d; (ii, ij) the interior cell it
      // mirrors (outflow copies the adjacent interior cell for all depths).
      int gi = 0;
      int gj = 0;
      int mi = 0;  // mirror interior (depth d)
      int mj = 0;
      int ai = 0;  // adjacent interior (depth 0)
      int aj = 0;
      switch (face) {
        case 0: gi = -1 - d; gj = t; mi = d; mj = t; ai = 0; aj = t; break;
        case 1: gi = mx + d; gj = t; mi = mx - 1 - d; mj = t; ai = mx - 1; aj = t; break;
        case 2: gi = t; gj = -1 - d; mi = t; mj = d; ai = t; aj = 0; break;
        default: gi = t; gj = mx + d; mi = t; mj = mx - 1 - d; ai = t; aj = mx - 1; break;
      }
      switch (bc) {
        case BoundaryType::kInflow:
          patch.at(gi, gj) = inflow;
          break;
        case BoundaryType::kOutflow:
          patch.at(gi, gj) = patch.at(ai, aj);
          break;
        case BoundaryType::kReflect: {
          Cons mirror = patch.at(mi, mj);
          if (face < 2) {
            mirror.mx = -mirror.mx;
          } else {
            mirror.my = -mirror.my;
          }
          patch.at(gi, gj) = mirror;
          break;
        }
      }
    }
  }
}

void QuadtreeMesh::fill_face(Patch& patch, int face) {
  const PatchKey key = patch.key();
  const int mx = patch.mx();
  const int ghosts = patch.ghosts();
  const PatchKey neighbor_key = key.face_neighbor(face);

  if (!in_domain(neighbor_key)) {
    fill_physical_face(patch, face);
    return;
  }

  // Writes ghost cell (depth d, tangential t); reads use the lambdas below.
  const auto ghost_ref = [&](int d, int t) -> Cons& {
    switch (face) {
      case 0: return patch.at(-1 - d, t);
      case 1: return patch.at(mx + d, t);
      case 2: return patch.at(t, -1 - d);
      default: return patch.at(t, mx + d);
    }
  };
  // Interior cell of the NEIGHBOR at depth d from the shared face.
  const auto neighbor_cell = [&](const Patch& nb, int d, int t) -> const Cons& {
    switch (face) {
      case 0: return nb.at(mx - 1 - d, t);
      case 1: return nb.at(d, t);
      case 2: return nb.at(t, mx - 1 - d);
      default: return nb.at(t, d);
    }
  };

  // Same-level neighbor: direct copy of its interior layers.
  if (const auto it = leaves_.find(neighbor_key); it != leaves_.end()) {
    const Patch& nb = it->second;
    for (int d = 0; d < ghosts; ++d) {
      for (int t = 0; t < mx; ++t) {
        ghost_ref(d, t) = neighbor_cell(nb, d, t);
      }
    }
    return;
  }

  // Coarser neighbor: piecewise-constant sampling from the parent-level
  // patch. Tangential index t maps to off + t/2 where off selects which
  // half of the coarse edge this patch covers; ghost depth d falls into
  // the coarse cell at depth d/2.
  const PatchKey coarse_key = neighbor_key.parent();
  if (const auto it = leaves_.find(coarse_key); it != leaves_.end()) {
    const Patch& nb = it->second;
    const int off_x = (key.j & 1) * (mx / 2);  // for x-faces, tangential = j
    const int off_y = (key.i & 1) * (mx / 2);  // for y-faces, tangential = i
    for (int d = 0; d < ghosts; ++d) {
      for (int t = 0; t < mx; ++t) {
        const int off = face < 2 ? off_x : off_y;
        ghost_ref(d, t) = neighbor_cell(nb, d / 2, off + t / 2);
      }
    }
    return;
  }

  // Finer neighbors: the same-level neighbor is refined; with 2:1 balance
  // its two children along this face exist. Ghost value at depth d is the
  // conservative 2x2 average of the fine cells covering it (fine depths
  // 2d and 2d+1).
  for (int d = 0; d < ghosts; ++d) {
    for (int t = 0; t < mx; ++t) {
      const int half = t < mx / 2 ? 0 : 1;
      const int tf = 2 * (t - half * (mx / 2));  // fine tangential base index
      PatchKey fine_key{};
      switch (face) {
        case 0: fine_key = PatchKey{key.level + 1, 2 * neighbor_key.i + 1, 2 * neighbor_key.j + half}; break;
        case 1: fine_key = PatchKey{key.level + 1, 2 * neighbor_key.i, 2 * neighbor_key.j + half}; break;
        case 2: fine_key = PatchKey{key.level + 1, 2 * neighbor_key.i + half, 2 * neighbor_key.j + 1}; break;
        default: fine_key = PatchKey{key.level + 1, 2 * neighbor_key.i + half, 2 * neighbor_key.j}; break;
      }
      const auto it = leaves_.find(fine_key);
      if (it == leaves_.end()) {
        // 2:1 balance violated - indicates a mesh invariant bug.
        throw std::logic_error("QuadtreeMesh::fill_face: missing fine neighbor");
      }
      const Patch& nb = it->second;
      ghost_ref(d, t) =
          (neighbor_cell(nb, 2 * d, tf) + neighbor_cell(nb, 2 * d, tf + 1) +
           neighbor_cell(nb, 2 * d + 1, tf) +
           neighbor_cell(nb, 2 * d + 1, tf + 1)) * 0.25;
    }
  }
}

void QuadtreeMesh::fill_ghosts() {
  for (auto& [key, patch] : leaves_) {
    for (int face = 0; face < 4; ++face) fill_face(patch, face);
  }
}

double QuadtreeMesh::compute_dt() const {
  double dt = std::numeric_limits<double>::infinity();
  for (const auto& [key, patch] : leaves_) {
    const double ws = std::max(patch.max_wave_speed(), 1e-12);
    dt = std::min(dt, problem_.cfl * cell_size(key.level) / ws);
  }
  return dt;
}

void QuadtreeMesh::refine_leaf(const PatchKey& key) {
  const Patch parent = leaf(key);  // copy: parent is erased below
  const int mx = parent.mx();
  leaves_.erase(key);
  for (int c = 0; c < 4; ++c) {
    const PatchKey child_key = key.child(c);
    Patch child(child_key, mx, parent.ghosts());
    const int ox = (c & 1) * (mx / 2);
    const int oy = ((c >> 1) & 1) * (mx / 2);
    for (int j = 0; j < mx; ++j) {
      for (int i = 0; i < mx; ++i) {
        child.at(i, j) = parent.at(ox + i / 2, oy + j / 2);
      }
    }
    leaves_.emplace(child_key, std::move(child));
  }
}

void QuadtreeMesh::coarsen_quartet(const PatchKey& parent_key) {
  const int mx = problem_.mx;
  Patch parent(parent_key, mx, problem_.ghost_width());
  for (int c = 0; c < 4; ++c) {
    const PatchKey child_key = parent_key.child(c);
    const Patch& child = leaf(child_key);
    const int ox = (c & 1) * (mx / 2);
    const int oy = ((c >> 1) & 1) * (mx / 2);
    for (int j = 0; j < mx / 2; ++j) {
      for (int i = 0; i < mx / 2; ++i) {
        parent.at(ox + i, oy + j) =
            (child.at(2 * i, 2 * j) + child.at(2 * i + 1, 2 * j) +
             child.at(2 * i, 2 * j + 1) + child.at(2 * i + 1, 2 * j + 1)) * 0.25;
      }
    }
  }
  for (int c = 0; c < 4; ++c) leaves_.erase(parent_key.child(c));
  leaves_.emplace(parent_key, std::move(parent));
}

std::size_t QuadtreeMesh::regrid() {
  fill_ghosts();

  std::unordered_map<PatchKey, int, PatchKeyHash> flags;
  flags.reserve(leaves_.size());
  for (const auto& [key, patch] : leaves_) {
    const double indicator = patch.max_relative_density_jump();
    int flag = kKeep;
    if (indicator > problem_.refine_threshold && key.level < problem_.max_level) {
      flag = kRefine;
    } else if (indicator < problem_.coarsen_threshold && key.level > 0) {
      flag = kCoarsen;
    }
    flags[key] = flag;
  }

  // 2:1 balance: a refining leaf forces its coarser face neighbors to
  // refine too; also forbids them from coarsening. Fixpoint iteration.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<PatchKey> refining;
    for (const auto& [key, flag] : flags) {
      if (flag == kRefine) refining.push_back(key);
    }
    for (const auto& key : refining) {
      for (int face = 0; face < 4; ++face) {
        const PatchKey neighbor = key.face_neighbor(face);
        if (!in_domain(neighbor)) continue;
        if (is_leaf(neighbor)) {
          // Same-level neighbor of a refining leaf must not coarsen
          // (its parent would be 2 levels away from my children).
          if (flags[neighbor] == kCoarsen) flags[neighbor] = kKeep;
          continue;
        }
        const PatchKey coarse = neighbor.parent();
        if (is_leaf(coarse) && flags[coarse] != kRefine) {
          flags[coarse] = kRefine;
          changed = true;
        }
      }
    }
  }

  std::size_t changes = 0;

  // Refinement pass (deterministic order).
  std::vector<PatchKey> to_refine;
  for (const auto& [key, flag] : flags) {
    if (flag == kRefine) to_refine.push_back(key);
  }
  std::sort(to_refine.begin(), to_refine.end(),
            [](const PatchKey& a, const PatchKey& b) {
              if (a.level != b.level) return a.level < b.level;
              if (a.j != b.j) return a.j < b.j;
              return a.i < b.i;
            });
  for (const auto& key : to_refine) {
    refine_leaf(key);
    ++changes;
  }

  // Coarsening pass: all four siblings must be coarsen-flagged leaves, and
  // merging must not break 2:1 balance against finer leaves outside.
  std::unordered_map<PatchKey, int, PatchKeyHash> quartet_votes;
  for (const auto& [key, flag] : flags) {
    if (flag == kCoarsen && is_leaf(key)) {
      quartet_votes[key.parent()] += 1;
    }
  }
  std::vector<PatchKey> to_coarsen;
  for (const auto& [parent_key, votes] : quartet_votes) {
    if (votes != 4) continue;
    bool ok = true;
    for (int c = 0; c < 4 && ok; ++c) {
      const PatchKey child_key = parent_key.child(c);
      for (int face = 0; face < 4 && ok; ++face) {
        const PatchKey neighbor = child_key.face_neighbor(face);
        if (!in_domain(neighbor)) continue;
        // Sibling faces are internal to the quartet.
        if (neighbor.parent() == parent_key) continue;
        // If the neighbor is refined (children at child level + 1), the
        // merged parent would face leaves two levels down.
        if (!is_leaf(neighbor) && !is_leaf(neighbor.parent())) ok = false;
      }
    }
    if (ok) to_coarsen.push_back(parent_key);
  }
  std::sort(to_coarsen.begin(), to_coarsen.end(),
            [](const PatchKey& a, const PatchKey& b) {
              if (a.level != b.level) return a.level < b.level;
              if (a.j != b.j) return a.j < b.j;
              return a.i < b.i;
            });
  for (const auto& parent_key : to_coarsen) {
    coarsen_quartet(parent_key);
    ++changes;
  }
  return changes;
}

void QuadtreeMesh::sfc_collect(const PatchKey& key,
                               std::vector<PatchKey>& out) const {
  if (is_leaf(key)) {
    out.push_back(key);
    return;
  }
  for (int c = 0; c < 4; ++c) sfc_collect(key.child(c), out);
}

std::vector<PatchKey> QuadtreeMesh::leaves_in_sfc_order() const {
  std::vector<PatchKey> out;
  out.reserve(leaves_.size());
  for (std::int32_t bj = 0; bj < problem_.bricks_y; ++bj) {
    for (std::int32_t bi = 0; bi < problem_.bricks_x; ++bi) {
      sfc_collect(PatchKey{0, bi, bj}, out);
    }
  }
  return out;
}

MeshTopology QuadtreeMesh::topology() const {
  MeshTopology topo;
  topo.keys = leaves_in_sfc_order();
  topo.cells.resize(topo.keys.size());
  topo.edges.resize(topo.keys.size());

  std::unordered_map<PatchKey, std::size_t, PatchKeyHash> index;
  index.reserve(topo.keys.size());
  for (std::size_t n = 0; n < topo.keys.size(); ++n) index[topo.keys[n]] = n;

  const int mx = problem_.mx;
  for (std::size_t n = 0; n < topo.keys.size(); ++n) {
    const PatchKey key = topo.keys[n];
    topo.cells[n] = leaf(key).cells();
    for (int face = 0; face < 4; ++face) {
      const PatchKey neighbor = key.face_neighbor(face);
      if (!in_domain(neighbor)) continue;
      if (const auto it = index.find(neighbor); it != index.end()) {
        topo.edges[n].push_back(LeafEdge{it->second, mx});
        continue;
      }
      if (const auto it = index.find(neighbor.parent()); it != index.end()) {
        // I receive mx ghost cells sampled from the coarse neighbor.
        topo.edges[n].push_back(LeafEdge{it->second, mx});
        continue;
      }
      // Fine neighbors: two children across this face, mx/2 ghosts each.
      for (int half = 0; half < 2; ++half) {
        PatchKey fine{};
        switch (face) {
          case 0: fine = PatchKey{key.level + 1, 2 * neighbor.i + 1, 2 * neighbor.j + half}; break;
          case 1: fine = PatchKey{key.level + 1, 2 * neighbor.i, 2 * neighbor.j + half}; break;
          case 2: fine = PatchKey{key.level + 1, 2 * neighbor.i + half, 2 * neighbor.j + 1}; break;
          default: fine = PatchKey{key.level + 1, 2 * neighbor.i + half, 2 * neighbor.j}; break;
        }
        if (const auto it = index.find(fine); it != index.end()) {
          topo.edges[n].push_back(LeafEdge{it->second, mx / 2});
        }
      }
    }
  }
  return topo;
}

std::vector<std::size_t> QuadtreeMesh::leaves_per_level() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(problem_.max_level) + 1, 0);
  for (const auto& [key, patch] : leaves_) {
    counts[static_cast<std::size_t>(key.level)] += 1;
  }
  return counts;
}

int QuadtreeMesh::level_at(double x, double y) const {
  if (x < 0.0 || y < 0.0 || x >= problem_.width || y >= problem_.height) {
    return -1;
  }
  for (int level = 0; level <= problem_.max_level; ++level) {
    const double ps = patch_size(level);
    const PatchKey key{level, static_cast<std::int32_t>(x / ps),
                       static_cast<std::int32_t>(y / ps)};
    if (is_leaf(key)) return level;
  }
  return -1;
}

double QuadtreeMesh::rho_at(double x, double y) const {
  const int level = level_at(x, y);
  if (level < 0) return std::numeric_limits<double>::quiet_NaN();
  const double ps = patch_size(level);
  const PatchKey key{level, static_cast<std::int32_t>(x / ps),
                     static_cast<std::int32_t>(y / ps)};
  const Patch& patch = leaf(key);
  const double h = cell_size(level);
  const int ci = std::min(static_cast<int>((x - patch_x0(key)) / h), patch.mx() - 1);
  const int cj = std::min(static_cast<int>((y - patch_y0(key)) / h), patch.mx() - 1);
  return patch.at(ci, cj).rho;
}

double QuadtreeMesh::total_mass() const {
  double mass = 0.0;
  for (const auto& [key, patch] : leaves_) {
    const double h = cell_size(key.level);
    mass += patch.interior_sum_rho() * h * h;
  }
  return mass;
}

}  // namespace alamr::amr
