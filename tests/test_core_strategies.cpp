// Tests for the five candidate-selection algorithms (paper Sec. IV-B).

#include "alamr/core/strategies.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace alamr::core;
using alamr::linalg::Matrix;
using alamr::stats::Rng;

struct Fixture {
  Matrix x;
  std::vector<double> mu_cost;
  std::vector<double> sigma_cost;
  std::vector<double> mu_mem;
  std::vector<double> sigma_mem;

  CandidateView view() const {
    return {x, mu_cost, sigma_cost, mu_mem, sigma_mem};
  }
};

Fixture make_fixture(std::vector<double> mu_cost, std::vector<double> sigma_cost,
                     std::vector<double> mu_mem = {},
                     std::vector<double> sigma_mem = {}) {
  Fixture f;
  const std::size_t n = mu_cost.size();
  f.x = Matrix(n, 2, 0.5);
  f.mu_cost = std::move(mu_cost);
  f.sigma_cost = std::move(sigma_cost);
  f.mu_mem = mu_mem.empty() ? std::vector<double>(n, 0.0) : std::move(mu_mem);
  f.sigma_mem =
      sigma_mem.empty() ? std::vector<double>(n, 0.1) : std::move(sigma_mem);
  return f;
}

TEST(RandUniformTest, CoversAllCandidatesUniformly) {
  const Fixture f = make_fixture({0.0, 1.0, 2.0, 3.0}, {1.0, 1.0, 1.0, 1.0});
  RandUniform strategy;
  Rng rng(1);
  std::vector<std::size_t> counts(4, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    const auto pick = strategy.select(f.view(), rng);
    ASSERT_TRUE(pick.has_value());
    ++counts[*pick];
  }
  for (const std::size_t c : counts) {
    EXPECT_NEAR(c / static_cast<double>(kDraws), 0.25, 0.01);
  }
}

TEST(MaxSigmaTest, PicksLargestUncertainty) {
  const Fixture f = make_fixture({0.0, 0.0, 0.0}, {0.1, 0.9, 0.5});
  MaxSigma strategy;
  Rng rng(2);
  EXPECT_EQ(strategy.select(f.view(), rng), 1u);
}

TEST(MaxSigmaTest, IgnoresCost) {
  // Candidate 1 is extremely expensive but most uncertain — still picked.
  const Fixture f = make_fixture({0.0, 100.0}, {0.1, 0.2});
  MaxSigma strategy;
  Rng rng(3);
  EXPECT_EQ(strategy.select(f.view(), rng), 1u);
}

TEST(MinPredTest, MaximizesSigmaMinusMu) {
  const Fixture f = make_fixture({2.0, 1.0, 3.0}, {0.5, 0.1, 2.9});
  // scores: -1.5, -0.9, -0.1 -> argmax is candidate 2.
  MinPred strategy;
  Rng rng(4);
  EXPECT_EQ(strategy.select(f.view(), rng), 2u);
}

TEST(MinPredTest, DegeneratesToCheapestWhenSigmaFlat) {
  // The paper's observation: with mu spread >> sigma spread, the score is
  // dominated by -mu and the strategy picks the cheapest prediction.
  const Fixture f =
      make_fixture({3.0, 0.5, 2.0, 1.0}, {0.01, 0.012, 0.011, 0.013});
  MinPred strategy;
  Rng rng(5);
  EXPECT_EQ(strategy.select(f.view(), rng), 1u);
}

TEST(RandGoodnessTest, FrequenciesFollowGoodnessWeights) {
  // g = 10^(sigma - mu): candidate 0 has weight 10^0 = 1, candidate 1 has
  // 10^-1 -> probabilities 10/11 and 1/11.
  const Fixture f = make_fixture({0.0, 1.0}, {0.0, 0.0});
  RandGoodness strategy(10.0);
  Rng rng(6);
  int zero = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (strategy.select(f.view(), rng) == 0u) ++zero;
  }
  EXPECT_NEAR(zero / static_cast<double>(kDraws), 10.0 / 11.0, 0.01);
}

TEST(RandGoodnessTest, CanSelectExpensiveCandidates) {
  // Unlike MinPred, the randomized scheme occasionally explores the
  // expensive candidate.
  const Fixture f = make_fixture({0.0, 1.0}, {0.0, 0.0});
  RandGoodness strategy(10.0);
  Rng rng(7);
  bool expensive_seen = false;
  for (int i = 0; i < 200 && !expensive_seen; ++i) {
    expensive_seen = strategy.select(f.view(), rng) == 1u;
  }
  EXPECT_TRUE(expensive_seen);
}

TEST(RandGoodnessTest, BaseControlsSkew) {
  const Fixture f = make_fixture({0.0, 1.0}, {0.0, 0.0});
  Rng r10(8);
  Rng r100(8);
  RandGoodness g10(10.0);
  RandGoodness g100(100.0);
  int cheap10 = 0;
  int cheap100 = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (g10.select(f.view(), r10) == 0u) ++cheap10;
    if (g100.select(f.view(), r100) == 0u) ++cheap100;
  }
  EXPECT_GT(cheap100, cheap10);  // higher base -> more exploitation
}

TEST(RandGoodnessTest, NameIncludesNonDefaultBase) {
  EXPECT_EQ(RandGoodness(10.0).name(), "RandGoodness");
  EXPECT_NE(RandGoodness(2.0).name().find("base=2"), std::string::npos);
  EXPECT_THROW(RandGoodness(1.0), std::invalid_argument);
}

TEST(RgmaTest, FiltersPredictedViolators) {
  // Memory limit 1.0 (log10): candidates 0 and 2 violate; only 1 eligible.
  Fixture f = make_fixture({0.0, 0.0, 0.0}, {0.1, 0.1, 0.1},
                           {1.5, 0.5, 1.0});  // mu_mem
  Rgma strategy(1.0);
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(strategy.select(f.view(), rng), 1u);
  }
}

TEST(RgmaTest, BoundaryIsExclusive) {
  // mu_mem == limit counts as exceeding (Algorithm 2: mu_mem < L_mem).
  Fixture f = make_fixture({0.0, 0.0}, {0.1, 0.1}, {1.0, 0.999});
  Rgma strategy(1.0);
  Rng rng(10);
  EXPECT_EQ(strategy.select(f.view(), rng), 1u);
}

TEST(RgmaTest, EarlyTerminationWhenNoSafeCandidates) {
  Fixture f = make_fixture({0.0, 0.0}, {0.1, 0.1}, {2.0, 3.0});
  Rgma strategy(1.0);
  Rng rng(11);
  EXPECT_EQ(strategy.select(f.view(), rng), std::nullopt);
}

TEST(RgmaTest, GoodnessDrawWithinSafeSet) {
  // Among safe candidates, cheap ones are preferred like RandGoodness.
  Fixture f = make_fixture({0.0, 5.0, 0.1}, {0.0, 0.0, 0.0}, {0.5, 0.5, 5.0});
  Rgma strategy(1.0);
  Rng rng(12);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 2000; ++i) ++counts[*strategy.select(f.view(), rng)];
  EXPECT_EQ(counts[2], 0);           // filtered by memory
  EXPECT_GT(counts[0], counts[1]);   // cheaper preferred
}

TEST(ExpectedImprovementTest, PrefersLowPredictedCost) {
  // Equal uncertainty: EI is maximized at the lowest mean (all have the
  // same improvement term relative to the incumbent proxy, but only the
  // cheapest has improvement ~0 > negative).
  const Fixture f = make_fixture({2.0, 0.5, 1.0}, {0.1, 0.1, 0.1});
  ExpectedImprovement ei;
  Rng rng(70);
  EXPECT_EQ(ei.select(f.view(), rng), 1u);
}

TEST(ExpectedImprovementTest, UncertaintyCanBeatGreed) {
  // Candidate 0: at the incumbent mean with zero uncertainty (EI ~ 0).
  // Candidate 1: slightly worse mean but large sigma -> positive EI.
  const Fixture f = make_fixture({0.0, 0.2}, {1e-13, 1.0});
  ExpectedImprovement ei(0.0);
  Rng rng(71);
  EXPECT_EQ(ei.select(f.view(), rng), 1u);
}

TEST(ExpectedImprovementTest, DeterministicAndClonable) {
  const Fixture f = make_fixture({2.0, 0.5, 1.0}, {0.3, 0.2, 0.4});
  ExpectedImprovement ei;
  const auto copy = ei.clone();
  Rng r1(72);
  Rng r2(73);  // rng unused: selection is deterministic
  EXPECT_EQ(ei.select(f.view(), r1), copy->select(f.view(), r2));
  EXPECT_EQ(ei.name(), "ExpectedImprovement");
  EXPECT_THROW(ExpectedImprovement(-0.1), std::invalid_argument);
}

TEST(StrategyContracts, EmptyAndMisalignedInputsThrow) {
  Matrix empty(0, 2);
  const std::vector<double> none;
  const CandidateView view{empty, none, none, none, none};
  Rng rng(13);
  EXPECT_THROW(RandUniform().select(view, rng), std::invalid_argument);

  Fixture f = make_fixture({0.0, 1.0}, {0.1, 0.1});
  f.mu_mem.pop_back();
  EXPECT_THROW(MaxSigma().select(f.view(), rng), std::invalid_argument);
}

TEST(StrategyContracts, CloneProducesEquivalentBehaviour) {
  const Fixture f = make_fixture({2.0, 1.0, 3.0}, {0.5, 0.1, 2.9});
  MinPred original;
  const auto copy = original.clone();
  Rng r1(14);
  Rng r2(14);
  EXPECT_EQ(original.select(f.view(), r1), copy->select(f.view(), r2));
  EXPECT_EQ(copy->name(), "MinPred");
}

TEST(StrategyContracts, NamesMatchPaper) {
  EXPECT_EQ(RandUniform().name(), "RandUniform");
  EXPECT_EQ(MaxSigma().name(), "MaxSigma");
  EXPECT_EQ(MinPred().name(), "MinPred");
  EXPECT_EQ(RandGoodness().name(), "RandGoodness");
  EXPECT_EQ(Rgma(1.0).name(), "RGMA");
}

}  // namespace
