#pragma once

// The shock-bubble interaction problem (paper Fig. 1): a planar shock
// sweeps over a circular bubble of different density. Parameters r0
// (bubble size) and rhoin (bubble density) are two of the paper's five
// dataset features; mx and maxlevel are the numerical features.

#include "alamr/amr/euler.hpp"

namespace alamr::amr {

/// Boundary condition per domain side.
enum class BoundaryType { kInflow, kOutflow, kReflect };

/// Approximate Riemann solver used at cell faces. HLL (paper-era default
/// robustness choice) smears contacts; HLLC restores the contact wave and
/// resolves the bubble interface more sharply at identical cost class.
enum class RiemannSolver { kHll, kHllc };

/// Spatial accuracy of the finite-volume update. kSecondOrder is the
/// dimensional-split MUSCL-Hancock scheme with minmod-limited slopes
/// (needs a two-cell ghost layer), matching the accuracy class of the
/// Clawpack-family codes the paper ran.
enum class SpatialOrder { kFirstOrder, kSecondOrder };

struct ShockBubbleProblem {
  // --- dataset features -----------------------------------------------
  int mx = 16;        // cells per patch edge
  int max_level = 4;  // deepest refinement level (level 0 = root brick)
  double r0 = 0.3;    // bubble size feature (paper units, 0.2 .. 0.5)
  double rhoin = 0.1; // bubble density (ambient is 1.0)

  // --- fixed problem definition ----------------------------------------
  double mach = 2.0;         // shock Mach number
  double shock_x = 0.12;     // initial shock position
  double bubble_x = 0.35;    // bubble center
  double bubble_y = 0.25;
  /// The r0 feature is expressed in the paper's units (fractions of the
  /// domain height of their setup); we map it to a radius as r0 * scale.
  double bubble_radius_scale = 0.25;

  /// Domain [0, width] x [0, height]; root brick is bricks_x x bricks_y
  /// patches, so patches are square when width/bricks_x == height/bricks_y.
  double width = 1.0;
  double height = 0.5;
  int bricks_x = 2;
  int bricks_y = 1;

  double final_time = 0.03;  // shock reaches and deforms the bubble
  double cfl = 0.4;
  RiemannSolver riemann = RiemannSolver::kHll;
  SpatialOrder order = SpatialOrder::kFirstOrder;

  /// Ghost-layer width the chosen scheme needs.
  int ghost_width() const noexcept {
    return order == SpatialOrder::kSecondOrder ? 2 : 1;
  }

  /// Refinement control: refine a patch when its relative density-jump
  /// indicator exceeds refine_threshold; coarsen below coarsen_threshold.
  double refine_threshold = 0.04;
  double coarsen_threshold = 0.008;
  int regrid_interval = 4;  // steps between regrids

  /// Physical bubble radius in domain units.
  double bubble_radius() const noexcept { return r0 * bubble_radius_scale; }

  /// Initial conserved state at cell center (x, y): post-shock gas left of
  /// the shock, ambient elsewhere, bubble density inside the circle.
  Cons initial_state(double x, double y) const noexcept;

  /// Boundary type of face 0=-x, 1=+x, 2=-y, 3=+y: inflow on the left
  /// (feeding the shock), outflow on the right, reflecting walls top and
  /// bottom (channel configuration).
  BoundaryType boundary(int face) const noexcept;

  /// The fixed post-shock state used by the inflow boundary.
  Prim post_shock() const noexcept;

  /// Throws std::invalid_argument when parameters are out of range.
  void validate() const;
};

}  // namespace alamr::amr
