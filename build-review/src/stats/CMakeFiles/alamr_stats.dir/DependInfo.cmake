
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/alamr_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/alamr_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/alamr_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/alamr_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/alamr_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/alamr_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/kde.cpp" "src/stats/CMakeFiles/alamr_stats.dir/kde.cpp.o" "gcc" "src/stats/CMakeFiles/alamr_stats.dir/kde.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/alamr_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/alamr_stats.dir/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
