#include "alamr/gp/gpr.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "alamr/opt/multistart.hpp"

namespace alamr::gp {

namespace {

constexpr double kLogTwoPi = 1.8378770664093453;  // log(2*pi)

}  // namespace

GaussianProcessRegressor::GaussianProcessRegressor(std::unique_ptr<Kernel> kernel,
                                                   GprOptions options)
    : kernel_(std::move(kernel)), options_(options) {
  if (!kernel_) throw std::invalid_argument("GPR: kernel must not be null");
}

GaussianProcessRegressor::GaussianProcessRegressor(
    const GaussianProcessRegressor& other)
    : kernel_(other.kernel_->clone()),
      options_(other.options_),
      x_train_(other.x_train_),
      y_train_(other.y_train_),
      y_mean_(other.y_mean_),
      factor_(other.factor_),
      alpha_(other.alpha_),
      lml_(other.lml_) {}

GaussianProcessRegressor& GaussianProcessRegressor::operator=(
    const GaussianProcessRegressor& other) {
  if (this == &other) return *this;
  kernel_ = other.kernel_->clone();
  options_ = other.options_;
  x_train_ = other.x_train_;
  y_train_ = other.y_train_;
  y_mean_ = other.y_mean_;
  factor_ = other.factor_;
  alpha_ = other.alpha_;
  lml_ = other.lml_;
  return *this;
}

double GaussianProcessRegressor::log_marginal_likelihood(
    std::span<const double> log_params, std::span<double> grad) const {
  if (x_train_.empty()) {
    throw std::logic_error("GPR: no training data stored");
  }
  // Evaluate against a scratch clone so the caller-visible kernel state is
  // untouched (the optimizer probes many parameter vectors).
  const std::unique_ptr<Kernel> probe = kernel_->clone();
  probe->set_log_params(log_params);

  const std::size_t n = x_train_.rows();
  std::vector<Matrix> gradients;
  Matrix k = grad.empty() ? probe->gram(x_train_)
                          : probe->gram_with_gradients(x_train_, gradients);

  const auto [factor, jitter] =
      linalg::cholesky_with_jitter(k, options_.initial_jitter, options_.max_jitter);
  (void)jitter;

  const linalg::Vector alpha = factor.solve(y_train_);
  double lml = -0.5 * linalg::dot(y_train_, alpha);
  lml -= 0.5 * factor.log_det();
  lml -= 0.5 * static_cast<double>(n) * kLogTwoPi;

  if (!grad.empty()) {
    if (grad.size() != probe->num_params()) {
      throw std::invalid_argument("GPR: gradient span size mismatch");
    }
    // dLML/dtheta_j = 1/2 tr((alpha alpha^T - K^{-1}) dK/dtheta_j).
    const Matrix k_inv = factor.inverse();
    for (std::size_t j = 0; j < gradients.size(); ++j) {
      const Matrix& dk = gradients[j];
      double trace = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const auto dk_row = dk.row(r);
        const auto kinv_row = k_inv.row(r);
        double row_acc = 0.0;
        for (std::size_t c = 0; c < n; ++c) {
          row_acc += (alpha[r] * alpha[c] - kinv_row[c]) * dk_row[c];
        }
        trace += row_acc;
      }
      grad[j] = 0.5 * trace;
    }
  }
  return lml;
}

double GaussianProcessRegressor::compute_posterior() {
  const Matrix k = kernel_->gram(x_train_);
  const auto [factor, jitter] =
      linalg::cholesky_with_jitter(k, options_.initial_jitter, options_.max_jitter);
  (void)jitter;
  factor_ = factor;
  alpha_ = factor_->solve(y_train_);
  const std::size_t n = x_train_.rows();
  lml_ = -0.5 * linalg::dot(y_train_, alpha_) - 0.5 * factor_->log_det() -
         0.5 * static_cast<double>(n) * kLogTwoPi;
  return lml_;
}

void GaussianProcessRegressor::fit(const Matrix& x, std::span<const double> y,
                                   stats::Rng& rng) {
  if (x.rows() == 0) throw std::invalid_argument("GPR::fit: empty design matrix");
  if (x.rows() != y.size()) {
    throw std::invalid_argument("GPR::fit: X/y size mismatch");
  }

  x_train_ = x;
  y_mean_ = 0.0;
  if (options_.normalize_y) {
    for (const double v : y) y_mean_ += v;
    y_mean_ /= static_cast<double>(y.size());
  }
  y_train_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_train_[i] = y[i] - y_mean_;

  if (options_.optimize && kernel_->num_params() > 0 && x.rows() >= 2) {
    const opt::Objective negative_lml =
        [this](std::span<const double> theta, std::span<double> grad) {
          const double value = log_marginal_likelihood(theta, grad);
          for (double& g : grad) g = -g;
          return -value;
        };

    opt::MultistartOptions ms;
    ms.restarts = options_.restarts;
    ms.lbfgs.max_iterations = options_.max_opt_iterations;

    const std::vector<double> start = kernel_->log_params();
    opt::Bounds bounds = kernel_->log_bounds();
    // Keep the warm start feasible even if an earlier fit pushed a
    // parameter onto (or numerically past) its bound.
    std::vector<double> feasible_start = start;
    bounds.project(feasible_start);

    const opt::OptimizeResult best =
        opt::multistart_minimize(negative_lml, feasible_start, bounds, ms, rng);
    kernel_->set_log_params(best.x);
  }

  compute_posterior();
}

Prediction GaussianProcessRegressor::predict(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("GPR::predict before fit");
  if (x.cols() != x_train_.cols()) {
    throw std::invalid_argument("GPR::predict: dimension mismatch");
  }

  const Matrix k_star = kernel_->cross(x_train_, x);  // n_train x n_query
  Prediction out;
  out.mean = linalg::matvec_transposed(k_star, alpha_);
  for (double& m : out.mean) m += y_mean_;

  out.stddev.resize(x.rows());
  const std::vector<double> prior_diag = kernel_->diagonal(x);
  std::vector<double> column(x_train_.rows());
  for (std::size_t q = 0; q < x.rows(); ++q) {
    for (std::size_t i = 0; i < x_train_.rows(); ++i) column[i] = k_star(i, q);
    // sigma^2 = k** - k*^T K_y^{-1} k* via v = L^{-1} k*; sigma^2 = k** - v.v
    const linalg::Vector v = factor_->solve_lower(column);
    const double var = prior_diag[q] - linalg::dot(v, v);
    out.stddev[q] = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return out;
}

std::vector<double> GaussianProcessRegressor::predict_mean(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("GPR::predict_mean before fit");
  if (x.cols() != x_train_.cols()) {
    throw std::invalid_argument("GPR::predict_mean: dimension mismatch");
  }
  const Matrix k_star = kernel_->cross(x_train_, x);
  std::vector<double> mean = linalg::matvec_transposed(k_star, alpha_);
  for (double& m : mean) m += y_mean_;
  return mean;
}

double GaussianProcessRegressor::log_marginal_likelihood() const {
  if (!fitted()) throw std::logic_error("GPR::lml before fit");
  return lml_;
}

}  // namespace alamr::gp
