#pragma once

// Online Active Learning (paper Sec. IV: "an 'online' AL system makes
// decisions about what experiment to run next").
//
// Unlike AlSimulator, which replays a database of precomputed samples,
// the OnlineAlDriver holds a grid of NOT-yet-run candidate configurations
// and an oracle that actually executes an experiment (here: the AMR
// solver + machine model; in production: a job submitted to a cluster).
// Each iteration predicts over the remaining grid, selects one candidate,
// runs it, and refits — paying real (simulated) node-hours for every
// selection, which is exactly the regime the cost-aware strategies are
// designed for.
//
// Serving-core resilience (DESIGN.md §14): oracle calls run under a
// deadline/backoff executor (seeded deterministic retries over a virtual
// clock); candidates whose oracle keeps failing are dropped rather than
// killing the run; the surrogates sit behind the breaker-guarded
// degradation ladder; and runs checkpoint durably (CRC-framed,
// generation-rotated) so a killed run resumes byte-identically.

#include <functional>
#include <limits>

#include "alamr/core/resilience.hpp"
#include "alamr/core/simulator.hpp"  // CheckpointConfig
#include "alamr/core/strategies.hpp"
#include "alamr/data/transforms.hpp"
#include "alamr/gp/backend.hpp"

namespace alamr::core {

/// Executes the experiment described by a feature row and returns the
/// measured (cost [node-hours], memory [MB]). Both must be positive.
/// Transient failures may throw std::runtime_error: the driver retries
/// with backoff and eventually skips the candidate. Throw
/// OnlineContractError for non-retryable protocol violations.
using ExperimentOracle =
    std::function<std::pair<double, double>(std::span<const double> features)>;

/// A broken oracle CONTRACT (for example a non-positive measurement), as
/// opposed to a transient failure. Never retried: propagates out of
/// run() so the bug is fixed rather than papered over.
struct OnlineContractError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct OnlineAlOptions {
  /// Experiments run (on oracle rows chosen uniformly at random) before AL
  /// starts making decisions; the paper's minimal-realistic case is 1.
  std::size_t n_init = 1;
  /// AL selections after the initial phase.
  std::size_t iterations = 25;
  /// L_mem in log10(MB) for RGMA-style strategies and regret accounting;
  /// NaN disables regret tracking (no limit).
  double memory_limit_log10 = std::numeric_limits<double>::quiet_NaN();

  gp::GprOptions initial_fit{.restarts = 2, .max_opt_iterations = 50};
  gp::GprOptions refit{.restarts = 0, .max_opt_iterations = 10};

  /// Surrogate family for the two models (exact GPR by default).
  gp::BackendOptions backend;

  /// Deadline/backoff executor and degradation-ladder knobs. The default
  /// (enabled) is byte-invisible while nothing fails.
  resilience::Options resilience;

  /// Explicit fault-injection plan for this run (empty = fall back to the
  /// ALAMR_FAULT_PLAN env plan, if any). acquire.timeout fires as oracle
  /// timeouts here.
  faults::FaultPlan plan;
};

/// One executed experiment in an online run.
struct OnlineRecord {
  std::size_t grid_row = 0;  // row of the candidate grid that was run
  double cost = 0.0;         // measured node-hours
  double memory = 0.0;       // measured MB
  double predicted_cost_log10 = 0.0;
  double predicted_mem_log10 = 0.0;
  double cumulative_cost = 0.0;
  double cumulative_regret = 0.0;
  bool initial_phase = false;  // run before AL decisions started
};

struct OnlineResult {
  std::vector<OnlineRecord> records;
  bool exhausted_safe_candidates = false;
  /// True when the run stopped at CheckpointConfig::halt_after_iterations
  /// (a checkpoint was saved; resume to continue).
  bool halted_at_checkpoint = false;
  /// Candidates abandoned because their oracle kept failing past the
  /// executor's retry budget.
  std::size_t oracle_giveups = 0;
  /// Final models, usable for downstream prediction over the grid.
  std::unique_ptr<gp::PosteriorBackend> cost_model;
  std::unique_ptr<gp::PosteriorBackend> memory_model;
};

/// The compatibility fingerprint of an online run ("alamr.online.v1"):
/// grid shape and exact feature bits, strategy identity, budgets, fit
/// effort, backend sizing, resilience posture, and fault plan. Checkpoint
/// frames carry it so a resume (or a SessionEngine restore — DESIGN.md
/// §15 shares these frames) only proceeds against the identical setup.
/// `grid` is the RAW candidate grid (pre-scaling).
std::string online_run_fingerprint(const linalg::Matrix& grid,
                                   std::string_view strategy_name,
                                   const OnlineAlOptions& options,
                                   std::string_view plan_spec);

/// Drives online AL over `candidate_grid` (raw feature rows; scaled to the
/// unit cube internally). Every selection calls `oracle` exactly once
/// (plus deadline-executor retries on transient oracle failures).
class OnlineAlDriver {
 public:
  OnlineAlDriver(linalg::Matrix candidate_grid, ExperimentOracle oracle,
                 OnlineAlOptions options);

  std::size_t remaining_candidates() const noexcept {
    return grid_.rows() - visited_count_;
  }

  /// Runs the initial phase plus `options.iterations` AL selections.
  /// Callable once per driver instance: a second call throws
  /// OnlineContractError (the instance's rng/visited bookkeeping is
  /// consumed; reuse would silently produce a different trajectory).
  /// With a checkpoint config the run saves durable generations every
  /// `stride` records and can resume a killed run from the newest intact
  /// generation.
  OnlineResult run(const Strategy& strategy, stats::Rng& rng,
                   const CheckpointConfig* checkpoint = nullptr);

 private:
  linalg::Matrix grid_;          // raw features
  linalg::Matrix grid_scaled_;   // unit-cube features
  ExperimentOracle oracle_;
  OnlineAlOptions options_;
  std::size_t visited_count_ = 0;
  bool ran_ = false;
};

}  // namespace alamr::core
