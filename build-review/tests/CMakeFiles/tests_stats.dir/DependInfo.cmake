
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stats_bootstrap.cpp" "tests/CMakeFiles/tests_stats.dir/test_stats_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/test_stats_bootstrap.cpp.o.d"
  "/root/repo/tests/test_stats_descriptive.cpp" "tests/CMakeFiles/tests_stats.dir/test_stats_descriptive.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/test_stats_descriptive.cpp.o.d"
  "/root/repo/tests/test_stats_distributions.cpp" "tests/CMakeFiles/tests_stats.dir/test_stats_distributions.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/test_stats_distributions.cpp.o.d"
  "/root/repo/tests/test_stats_kde.cpp" "tests/CMakeFiles/tests_stats.dir/test_stats_kde.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/test_stats_kde.cpp.o.d"
  "/root/repo/tests/test_stats_rng.cpp" "tests/CMakeFiles/tests_stats.dir/test_stats_rng.cpp.o" "gcc" "tests/CMakeFiles/tests_stats.dir/test_stats_rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
