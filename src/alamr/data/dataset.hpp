#pragma once

// The experiment database the offline AL simulator consults (paper
// Sec. IV): rows are AMR simulation configurations (5 features), columns
// hold the measured responses (wall-clock seconds, cost in node-hours,
// MaxRSS memory in MB).

#include <string>
#include <vector>

#include "alamr/linalg/matrix.hpp"

namespace alamr::data {

using linalg::Matrix;

/// Column-aligned dataset: row i of `x` corresponds to responses
/// wallclock[i] / cost[i] / memory[i].
struct Dataset {
  Matrix x;                                // n x d design matrix
  std::vector<double> wallclock;           // seconds
  std::vector<double> cost;                // node-hours
  std::vector<double> memory;              // MB (MaxRSS per process)
  std::vector<std::string> feature_names;  // size d

  std::size_t size() const noexcept { return x.rows(); }
  std::size_t dim() const noexcept { return x.cols(); }

  /// Throws std::invalid_argument if any column length disagrees with the
  /// design matrix, or feature_names does not match the dimension.
  void validate() const;

  /// New dataset containing the given rows, in the given order.
  Dataset subset(std::span<const std::size_t> rows) const;

  /// Design-matrix restricted to the given rows.
  Matrix design_subset(std::span<const std::size_t> rows) const;
};

}  // namespace alamr::data
