#include "alamr/opt/multistart.hpp"

#include <stdexcept>

#include "alamr/core/parallel.hpp"

namespace alamr::opt {

OptimizeResult multistart_minimize(const Objective& f,
                                   std::span<const double> x0,
                                   const Bounds& bounds,
                                   const MultistartOptions& options,
                                   stats::Rng& rng) {
  if (options.restarts > 0 &&
      (bounds.lower.size() != x0.size() || bounds.upper.size() != x0.size())) {
    throw std::invalid_argument(
        "multistart_minimize: random restarts need full box bounds");
  }

  // Draw every random start up-front, in restart order, so the rng stream
  // is consumed exactly as the serial loop consumed it — results do not
  // depend on the thread count.
  std::vector<std::vector<double>> starts;
  starts.reserve(options.restarts + 1);
  starts.emplace_back(x0.begin(), x0.end());
  for (std::size_t r = 0; r < options.restarts; ++r) {
    std::vector<double> start(x0.size());
    for (std::size_t i = 0; i < start.size(); ++i) {
      start[i] = rng.uniform(bounds.lower[i], bounds.upper[i]);
    }
    starts.push_back(std::move(start));
  }

  // The runs are independent; `f` may be called from several threads at
  // once (the GPR objective only reads the stored training data).
  std::vector<OptimizeResult> results(starts.size());
  core::parallel_for(starts.size(), [&](std::size_t r) {
    results[r] = lbfgs_minimize(f, starts[r], options.lbfgs, bounds);
  });

  // Reduce in start order with a strict '<' so ties keep the earliest run
  // (the warm start in particular), matching the serial loop; evaluation
  // counts add up across all runs.
  std::size_t best_index = 0;
  std::size_t evaluations = results[0].evaluations;
  for (std::size_t r = 1; r < results.size(); ++r) {
    evaluations += results[r].evaluations;
    if (results[r].value < results[best_index].value) best_index = r;
  }
  OptimizeResult best = std::move(results[best_index]);
  best.evaluations = evaluations;
  return best;
}

}  // namespace alamr::opt
