#pragma once

// Discrete sampling from arbitrary weight vectors.
//
// RandGoodness and RGMA (paper Sec. IV-B) draw the next experiment from a
// discrete probability distribution proportional to the candidate
// "goodness" g = base^(sigma - mu). We provide both a linear-scan CDF
// sampler (simple, used for tiny candidate sets in tests) and Walker's
// alias method (O(1) per draw after O(n) setup, used by the AL loop).

#include <cstddef>
#include <span>
#include <vector>

#include "alamr/stats/rng.hpp"

namespace alamr::stats {

/// Normalizes non-negative weights in place so they sum to one.
/// Throws std::invalid_argument if the weights are empty, contain a
/// negative or non-finite entry, or all equal zero.
void normalize_weights(std::span<double> weights);

/// One draw from the categorical distribution given by (not necessarily
/// normalized) non-negative weights, by inverse-CDF linear scan. O(n).
std::size_t sample_categorical(std::span<const double> weights, Rng& rng);

/// Walker alias-method sampler: O(n) construction, O(1) per sample.
class AliasSampler {
 public:
  /// Builds the alias table. Weights need not be normalized; same
  /// preconditions as normalize_weights().
  explicit AliasSampler(std::span<const double> weights);

  /// Number of categories.
  std::size_t size() const noexcept { return prob_.size(); }

  /// Draws one category index.
  std::size_t sample(Rng& rng) const;

  /// Probability assigned to category i (after normalization).
  double probability(std::size_t i) const noexcept { return normalized_[i]; }

 private:
  std::vector<double> prob_;         // acceptance probability per bucket
  std::vector<std::size_t> alias_;   // alternative category per bucket
  std::vector<double> normalized_;   // normalized input weights (for queries)
};

/// Computes the goodness weights g_i = base^(sigma_i - mu_i) used by
/// RandGoodness/RGMA. The exponent is shifted by max(sigma - mu) before
/// exponentiation so the result never overflows; the shift cancels after
/// normalization.
std::vector<double> goodness_weights(std::span<const double> mu,
                                     std::span<const double> sigma,
                                     double base);

}  // namespace alamr::stats
