
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gp/gpr.cpp" "src/gp/CMakeFiles/alamr_gp.dir/gpr.cpp.o" "gcc" "src/gp/CMakeFiles/alamr_gp.dir/gpr.cpp.o.d"
  "/root/repo/src/gp/kernels.cpp" "src/gp/CMakeFiles/alamr_gp.dir/kernels.cpp.o" "gcc" "src/gp/CMakeFiles/alamr_gp.dir/kernels.cpp.o.d"
  "/root/repo/src/gp/local.cpp" "src/gp/CMakeFiles/alamr_gp.dir/local.cpp.o" "gcc" "src/gp/CMakeFiles/alamr_gp.dir/local.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/opt/CMakeFiles/alamr_opt.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
