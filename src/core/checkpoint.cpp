#include "alamr/core/checkpoint.hpp"

#include <array>
#include <bit>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "alamr/core/trace.hpp"

namespace alamr::core {

namespace {

// ---- JSON writing --------------------------------------------------------
// Doubles are stored as the hex image of their 64 bits ("0x3ff0..."): text
// round-trips are exact, NaN/inf included, independent of locale and
// printf precision.

std::string hex_bits(double v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buffer;
}

double bits_from_hex(const std::string& text) {
  if (text.size() != 18 || text[0] != '0' || text[1] != 'x') {
    throw std::runtime_error("checkpoint: bad double bit pattern '" + text +
                             "'");
  }
  std::uint64_t bits = 0;
  for (std::size_t i = 2; i < text.size(); ++i) {
    const char c = text[i];
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A' + 10);
    else throw std::runtime_error("checkpoint: bad hex digit in '" + text + "'");
    bits = (bits << 4) | digit;
  }
  return std::bit_cast<double>(bits);
}

void write_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default: os << c; break;
    }
  }
  os << '"';
}

template <typename T>
void write_u64_array(std::ostringstream& os, const char* key,
                     const T& values) {
  os << '"' << key << "\":[";
  bool first = true;
  for (const auto v : values) {
    os << (first ? "" : ",") << static_cast<std::uint64_t>(v);
    first = false;
  }
  os << ']';
}

void write_double_array(std::ostringstream& os, const char* key,
                        const std::vector<double>& values) {
  os << '"' << key << "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i == 0 ? "" : ",") << '"' << hex_bits(values[i]) << '"';
  }
  os << ']';
}

// ---- JSON parsing --------------------------------------------------------
// A minimal recursive-descent parser for the subset this file emits:
// objects, arrays, strings, unsigned integers, true/false. Good enough to
// reject truncated or hand-mangled files with a clear error.

struct JsonValue {
  enum class Type { kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNumber;
  bool boolean = false;
  std::uint64_t number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue& at(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return v;
    }
    throw std::runtime_error("checkpoint: missing key '" + key + "'");
  }

  /// Lookup for keys added after version 1 shipped: nullptr when absent,
  /// so pre-existing checkpoint files still parse (and are then accepted
  /// or rejected by the fingerprint gate, not a parse error).
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("checkpoint: JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        if (text_.compare(pos_, 4, "true") == 0) {
          v.boolean = true;
          pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
          v.boolean = false;
          pos_ += 5;
        } else {
          fail("bad literal");
        }
        return v;
      }
      default: {
        JsonValue v;
        v.type = JsonValue::Type::kNumber;
        if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad value");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          v.number = v.number * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
          ++pos_;
        }
        return v;
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      std::string key = parse_string();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

double read_double(const JsonValue& v) {
  if (v.type != JsonValue::Type::kString) {
    throw std::runtime_error("checkpoint: double must be a hex-bits string");
  }
  return bits_from_hex(v.str);
}

std::vector<double> read_double_array(const JsonValue& v) {
  std::vector<double> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) out.push_back(read_double(e));
  return out;
}

std::vector<std::uint64_t> read_u64_array(const JsonValue& v) {
  std::vector<std::uint64_t> out;
  out.reserve(v.array.size());
  for (const JsonValue& e : v.array) {
    if (e.type != JsonValue::Type::kNumber) {
      throw std::runtime_error("checkpoint: expected unsigned integer");
    }
    out.push_back(e.number);
  }
  return out;
}

constexpr std::uint64_t kVersion = 1;

}  // namespace

std::string checkpoint_to_json(const TrajectoryCheckpoint& s) {
  std::ostringstream os;
  os << "{\"version\":" << kVersion << ",";
  os << "\"fingerprint\":";
  write_escaped(os, s.fingerprint);
  os << ",\"passes\":" << s.passes << ",\"trained\":" << s.trained << ',';
  write_u64_array(os, "learned", s.learned);
  os << ',';
  write_u64_array(os, "active", s.active);
  os << ',';
  write_double_array(os, "c_learned", s.c_learned);
  os << ',';
  write_double_array(os, "m_learned", s.m_learned);
  os << ',';
  write_double_array(os, "theta_cost", s.theta_cost);
  os << ',';
  write_double_array(os, "theta_mem", s.theta_mem);
  os << ",\"backend_state_cost\":";
  write_escaped(os, s.backend_state_cost);
  os << ",\"backend_state_mem\":";
  write_escaped(os, s.backend_state_mem);
  os << ",\"rng\":{";
  write_u64_array(os, "words", s.rng.words);
  os << ",\"cached_normal\":\"" << hex_bits(s.rng.cached_normal) << '"'
     << ",\"has_cached_normal\":"
     << (s.rng.has_cached_normal ? "true" : "false") << '}';
  os << ",\"cc\":\"" << hex_bits(s.cc) << '"';
  os << ",\"cr\":\"" << hex_bits(s.cr) << '"';
  os << ",\"last_rmse_cost\":\"" << hex_bits(s.last_rmse_cost) << '"';
  os << ",\"last_rmse_mem\":\"" << hex_bits(s.last_rmse_mem) << '"';
  os << ",\"last_rmse_weighted\":\"" << hex_bits(s.last_rmse_weighted) << '"';
  os << ",\"last_record_evaluated\":"
     << (s.last_record_evaluated ? "true" : "false");
  os << ",\"initial_rmse_cost\":\"" << hex_bits(s.initial_rmse_cost) << '"';
  os << ",\"initial_rmse_mem\":\"" << hex_bits(s.initial_rmse_mem) << '"';
  os << ",\"stable_streak\":" << s.stable_streak << ',';
  write_double_array(os, "previous_cost_mu_log", s.previous_cost_mu_log);
  os << ",\"censored_count\":" << s.censored_count;
  os << ",\"censored_cost\":\"" << hex_bits(s.censored_cost) << "\",";
  write_u64_array(os, "fault_hits", s.fault_hits);
  os << ',';
  write_u64_array(os, "fault_fires", s.fault_fires);
  os << ",\"iterations\":[";
  for (std::size_t i = 0; i < s.iterations.size(); ++i) {
    const IterationRecord& r = s.iterations[i];
    os << (i == 0 ? "" : ",") << "{\"iteration\":" << r.iteration
       << ",\"dataset_row\":" << r.dataset_row
       << ",\"actual_cost\":\"" << hex_bits(r.actual_cost) << '"'
       << ",\"actual_memory\":\"" << hex_bits(r.actual_memory) << '"'
       << ",\"predicted_cost_log10\":\"" << hex_bits(r.predicted_cost_log10)
       << '"' << ",\"predicted_cost_sigma\":\""
       << hex_bits(r.predicted_cost_sigma) << '"'
       << ",\"predicted_mem_log10\":\"" << hex_bits(r.predicted_mem_log10)
       << '"' << ",\"predicted_mem_sigma\":\""
       << hex_bits(r.predicted_mem_sigma) << '"'
       << ",\"rmse_cost\":\"" << hex_bits(r.rmse_cost) << '"'
       << ",\"rmse_mem\":\"" << hex_bits(r.rmse_mem) << '"'
       << ",\"rmse_cost_weighted\":\"" << hex_bits(r.rmse_cost_weighted) << '"'
       << ",\"cumulative_cost\":\"" << hex_bits(r.cumulative_cost) << '"'
       << ",\"cumulative_regret\":\"" << hex_bits(r.cumulative_regret) << '"'
       << ",\"candidates_before\":" << r.candidates_before
       << ",\"censor\":" << static_cast<std::uint64_t>(r.censor) << '}';
  }
  os << "]}";
  return os.str();
}

TrajectoryCheckpoint checkpoint_from_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  const std::uint64_t version = root.at("version").number;
  if (version > kVersion) {
    // Written by a newer build: refuse loudly and leave the file alone
    // (treating this as corruption would quarantine state the newer
    // build could still resume from).
    throw CheckpointVersionError(
        "checkpoint: payload version " + std::to_string(version) +
        " is newer than this build understands (max " +
        std::to_string(kVersion) + "); keeping the file");
  }
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
  TrajectoryCheckpoint s;
  s.fingerprint = root.at("fingerprint").str;
  s.passes = root.at("passes").number;
  s.trained = root.at("trained").number;
  s.learned = read_u64_array(root.at("learned"));
  s.active = read_u64_array(root.at("active"));
  s.c_learned = read_double_array(root.at("c_learned"));
  s.m_learned = read_double_array(root.at("m_learned"));
  s.theta_cost = read_double_array(root.at("theta_cost"));
  s.theta_mem = read_double_array(root.at("theta_mem"));
  if (const JsonValue* v = root.find("backend_state_cost")) {
    s.backend_state_cost = v->str;
  }
  if (const JsonValue* v = root.find("backend_state_mem")) {
    s.backend_state_mem = v->str;
  }
  {
    const JsonValue& rng = root.at("rng");
    const std::vector<std::uint64_t> words = read_u64_array(rng.at("words"));
    if (words.size() != s.rng.words.size()) {
      throw std::runtime_error("checkpoint: rng state must have 4 words");
    }
    std::copy(words.begin(), words.end(), s.rng.words.begin());
    s.rng.cached_normal = read_double(rng.at("cached_normal"));
    s.rng.has_cached_normal = rng.at("has_cached_normal").boolean;
  }
  s.cc = read_double(root.at("cc"));
  s.cr = read_double(root.at("cr"));
  s.last_rmse_cost = read_double(root.at("last_rmse_cost"));
  s.last_rmse_mem = read_double(root.at("last_rmse_mem"));
  s.last_rmse_weighted = read_double(root.at("last_rmse_weighted"));
  s.last_record_evaluated = root.at("last_record_evaluated").boolean;
  s.initial_rmse_cost = read_double(root.at("initial_rmse_cost"));
  s.initial_rmse_mem = read_double(root.at("initial_rmse_mem"));
  s.stable_streak = root.at("stable_streak").number;
  s.previous_cost_mu_log = read_double_array(root.at("previous_cost_mu_log"));
  s.censored_count = root.at("censored_count").number;
  s.censored_cost = read_double(root.at("censored_cost"));
  const std::vector<std::uint64_t> hits = read_u64_array(root.at("fault_hits"));
  const std::vector<std::uint64_t> fires =
      read_u64_array(root.at("fault_fires"));
  // Fewer counters than this build knows is a file written before new
  // sites were appended — the missing tail starts at zero consultations,
  // which is exactly right. More counters means an unknown newer site
  // roster: refuse rather than silently drop state.
  if (hits.size() > faults::kSiteCount || fires.size() > faults::kSiteCount ||
      hits.size() != fires.size()) {
    throw std::runtime_error("checkpoint: fault counter arity mismatch");
  }
  std::copy(hits.begin(), hits.end(), s.fault_hits.begin());
  std::copy(fires.begin(), fires.end(), s.fault_fires.begin());
  for (const JsonValue& rec : root.at("iterations").array) {
    IterationRecord r;
    r.iteration = rec.at("iteration").number;
    r.dataset_row = rec.at("dataset_row").number;
    r.actual_cost = read_double(rec.at("actual_cost"));
    r.actual_memory = read_double(rec.at("actual_memory"));
    r.predicted_cost_log10 = read_double(rec.at("predicted_cost_log10"));
    r.predicted_cost_sigma = read_double(rec.at("predicted_cost_sigma"));
    r.predicted_mem_log10 = read_double(rec.at("predicted_mem_log10"));
    r.predicted_mem_sigma = read_double(rec.at("predicted_mem_sigma"));
    r.rmse_cost = read_double(rec.at("rmse_cost"));
    r.rmse_mem = read_double(rec.at("rmse_mem"));
    r.rmse_cost_weighted = read_double(rec.at("rmse_cost_weighted"));
    r.cumulative_cost = read_double(rec.at("cumulative_cost"));
    r.cumulative_regret = read_double(rec.at("cumulative_regret"));
    r.candidates_before = rec.at("candidates_before").number;
    const std::uint64_t censor = rec.at("censor").number;
    if (censor > static_cast<std::uint64_t>(CensorKind::kNanRow)) {
      throw std::runtime_error("checkpoint: bad censor kind");
    }
    r.censor = static_cast<CensorKind>(censor);
    s.iterations.push_back(std::move(r));
  }
  return s;
}

// ---- Durable frame + generation retention --------------------------------

namespace {

constexpr std::string_view kFrameMagic = "ALAMR-CKPT v";

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

std::string crc32_hex(std::uint32_t crc) {
  char buffer[12];
  std::snprintf(buffer, sizeof(buffer), "%08x", crc);
  return buffer;
}

/// Outcome of validating one generation's bytes.
enum class FrameStatus { kOk, kCorrupt };

struct FrameResult {
  FrameStatus status = FrameStatus::kCorrupt;
  std::string payload;
  std::string why;  // corruption diagnosis for the final error message
};

/// Validates a durable frame (or a pre-frame format-1 JSON file) and
/// extracts the payload. Throws CheckpointVersionError for frames from a
/// newer format — that is a refusal, not corruption.
FrameResult validate_frame(const std::string& bytes,
                           const std::filesystem::path& path) {
  FrameResult out;
  if (!bytes.empty() && bytes.front() == '{') {
    // Format 1: bare JSON, no frame. The payload codec's own version
    // field gates schema compatibility.
    out.status = FrameStatus::kOk;
    out.payload = bytes;
    return out;
  }
  if (bytes.size() < kFrameMagic.size() ||
      std::string_view(bytes).substr(0, kFrameMagic.size()) != kFrameMagic) {
    out.why = "bad frame magic";
    return out;
  }
  const std::size_t header_end = bytes.find('\n');
  if (header_end == std::string::npos) {
    out.why = "unterminated frame header";
    return out;
  }
  const std::string header = bytes.substr(0, header_end);
  unsigned long long version = 0;
  unsigned long long length = 0;
  unsigned crc = 0;
  if (std::sscanf(header.c_str(), "ALAMR-CKPT v%llu len=%llu crc32=%8x",
                  &version, &length, &crc) != 3) {
    out.why = "malformed frame header '" + header + "'";
    return out;
  }
  if (version > kCheckpointFormatVersion) {
    throw CheckpointVersionError(
        "checkpoint: " + path.string() + " has format version " +
        std::to_string(version) + ", newer than this build understands (max " +
        std::to_string(kCheckpointFormatVersion) + "); keeping the file");
  }
  const std::string_view payload =
      std::string_view(bytes).substr(header_end + 1);
  if (payload.size() != length) {
    out.why = "payload length " + std::to_string(payload.size()) +
              " != header len " + std::to_string(length);
    return out;
  }
  if (crc32(payload) != crc) {
    out.why = "crc32 mismatch";
    return out;
  }
  out.status = FrameStatus::kOk;
  out.payload = std::string(payload);
  return out;
}

/// Reads a whole file; consults the io.partial_read fault site, which
/// truncates the returned bytes to model a short read.
std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  if (faults::fire(faults::Site::kIoPartialRead)) {
    trace::count("resilience.io_partial_reads");
    bytes.resize(bytes.size() / 2);
  }
  return bytes;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string frame_payload(std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 48);
  frame += kFrameMagic;
  frame += std::to_string(kCheckpointFormatVersion);
  frame += " len=";
  frame += std::to_string(payload.size());
  frame += " crc32=";
  frame += crc32_hex(crc32(payload));
  frame += '\n';
  frame += payload;
  return frame;
}

std::filesystem::path checkpoint_generation_path(
    const std::filesystem::path& path, std::size_t generation) {
  if (generation == 0) return path;
  return std::filesystem::path(path).concat("." +
                                            std::to_string(generation));
}

void save_durable_payload(std::string_view payload,
                          const std::filesystem::path& path,
                          std::size_t retain) {
  if (retain == 0) retain = 1;
  // Rotate: <path>.{retain-2} -> <path>.{retain-1}, ..., <path> -> <path>.1.
  // Renames are best-effort (a missing generation is simply a gap).
  for (std::size_t g = retain - 1; g >= 1; --g) {
    std::error_code ec;
    std::filesystem::rename(checkpoint_generation_path(path, g - 1),
                            checkpoint_generation_path(path, g), ec);
  }
  std::string frame = frame_payload(payload);
  if (faults::fire(faults::Site::kIoTornWrite)) {
    // A torn write publishes the header plus roughly half the payload:
    // the frame's length/CRC checks catch it on load.
    trace::count("resilience.io_torn_writes");
    const std::size_t header_end = frame.find('\n') + 1;
    frame.resize(header_end + (frame.size() - header_end) / 2);
  }
  const std::filesystem::path tmp = std::filesystem::path(path).concat(".tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      throw std::runtime_error("save_checkpoint: cannot open " + tmp.string());
    }
    out << frame;
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("save_checkpoint: write failed for " +
                               tmp.string());
    }
  }
  // Atomic publish: a concurrent reader sees either the old complete file
  // or the new complete file, never a partial write.
  std::filesystem::rename(tmp, path);
}

std::optional<std::string> load_durable_payload(
    const std::filesystem::path& path, std::size_t retain,
    CheckpointLoadReport* report) {
  if (retain == 0) retain = 1;
  CheckpointLoadReport local;
  CheckpointLoadReport& rep = report != nullptr ? *report : local;
  bool found_any = false;
  std::string first_why;
  // Scan newest-first. Quarantine can leave gaps (generation g renamed to
  // .bad while g+1 survives), so keep scanning past missing files up to a
  // hard cap beyond the retention window.
  constexpr std::size_t kScanCap = 64;
  for (std::size_t g = 0; g < std::max(retain, kScanCap); ++g) {
    const std::filesystem::path gen = checkpoint_generation_path(path, g);
    std::optional<std::string> bytes = read_file(gen);
    if (!bytes.has_value()) {
      if (g + 1 >= retain) break;  // past the window and nothing there
      continue;
    }
    found_any = true;
    ++rep.generations_scanned;
    FrameResult frame = validate_frame(*bytes, gen);
    if (frame.status != FrameStatus::kOk) {
      // One retry: a short read is transient (the file on disk may be
      // fine), a torn write is not — the reread distinguishes them.
      bytes = read_file(gen);
      if (bytes.has_value()) {
        frame = validate_frame(*bytes, gen);
        if (frame.status == FrameStatus::kOk) {
          ++rep.read_retries;
          trace::count("resilience.io_read_retries");
        }
      }
    }
    if (frame.status == FrameStatus::kOk) {
      rep.loaded_from = gen;
      return frame.payload;
    }
    if (first_why.empty()) {
      first_why = gen.string() + ": " + frame.why;
    }
    // Corrupt: quarantine to <gen>.bad and fall back to the next older
    // generation. rename overwrites an existing .bad from a prior crash.
    const std::filesystem::path bad =
        std::filesystem::path(gen).concat(".bad");
    std::error_code ec;
    std::filesystem::rename(gen, bad, ec);
    if (!ec) rep.quarantined.push_back(bad);
    ++rep.fallbacks;
    trace::count("resilience.ckpt_quarantined");
    trace::count("resilience.ckpt_fallbacks");
  }
  if (!found_any) return std::nullopt;
  throw std::runtime_error(
      "checkpoint: no intact generation of " + path.string() +
      " (first failure: " + first_why + "); corrupt generations quarantined "
      "to *.bad");
}

void remove_durable_payload(const std::filesystem::path& path,
                            std::size_t retain) {
  if (retain == 0) retain = 1;
  std::error_code ec;
  constexpr std::size_t kScanCap = 64;
  for (std::size_t g = 0; g < std::max(retain, kScanCap); ++g) {
    const bool existed =
        std::filesystem::remove(checkpoint_generation_path(path, g), ec);
    if (!existed && g + 1 >= retain) break;
  }
  std::filesystem::remove(std::filesystem::path(path).concat(".tmp"), ec);
}

void save_checkpoint(const TrajectoryCheckpoint& state,
                     const std::filesystem::path& path, std::size_t retain) {
  save_durable_payload(checkpoint_to_json(state), path, retain);
  trace::count("resilience.ckpt_saves");
}

std::optional<TrajectoryCheckpoint> load_checkpoint(
    const std::filesystem::path& path, std::size_t retain,
    CheckpointLoadReport* report) {
  const std::optional<std::string> payload =
      load_durable_payload(path, retain, report);
  if (!payload.has_value()) return std::nullopt;
  return checkpoint_from_json(*payload);
}

void remove_checkpoint(const std::filesystem::path& path, std::size_t retain) {
  remove_durable_payload(path, retain);
}

// ---- Online-run checkpoint ------------------------------------------------

namespace {

/// Payload schema version for OnlineCheckpoint (independent of the
/// trajectory payload's version and of the frame format version).
constexpr std::uint64_t kOnlineVersion = 1;

}  // namespace

std::string online_checkpoint_to_json(const OnlineCheckpoint& s) {
  std::ostringstream os;
  os << "{\"version\":" << kOnlineVersion << ",";
  os << "\"kind\":\"online\",";
  os << "\"fingerprint\":";
  write_escaped(os, s.fingerprint);
  os << ",\"al_iterations_done\":" << s.al_iterations_done << ',';
  write_u64_array(os, "visited", s.visited);
  os << ',';
  write_u64_array(os, "skipped", s.skipped);
  os << ',';
  write_double_array(os, "log_cost", s.log_cost);
  os << ',';
  write_double_array(os, "log_mem", s.log_mem);
  os << ',';
  write_double_array(os, "theta_cost", s.theta_cost);
  os << ',';
  write_double_array(os, "theta_mem", s.theta_mem);
  os << ",\"backend_state_cost\":";
  write_escaped(os, s.backend_state_cost);
  os << ",\"backend_state_mem\":";
  write_escaped(os, s.backend_state_mem);
  os << ",\"rng\":{";
  write_u64_array(os, "words", s.rng.words);
  os << ",\"cached_normal\":\"" << hex_bits(s.rng.cached_normal) << '"'
     << ",\"has_cached_normal\":"
     << (s.rng.has_cached_normal ? "true" : "false") << '}';
  os << ",\"cc\":\"" << hex_bits(s.cc) << '"';
  os << ",\"cr\":\"" << hex_bits(s.cr) << '"';
  os << ",\"oracle_giveups\":" << s.oracle_giveups;
  os << ",\"exhausted_safe_candidates\":"
     << (s.exhausted_safe_candidates ? "true" : "false") << ',';
  write_u64_array(os, "fault_hits", s.fault_hits);
  os << ',';
  write_u64_array(os, "fault_fires", s.fault_fires);
  os << ",\"records\":[";
  for (std::size_t i = 0; i < s.records.size(); ++i) {
    const OnlineRecord& r = s.records[i];
    os << (i == 0 ? "" : ",") << "{\"grid_row\":" << r.grid_row
       << ",\"cost\":\"" << hex_bits(r.cost) << '"'
       << ",\"memory\":\"" << hex_bits(r.memory) << '"'
       << ",\"predicted_cost_log10\":\"" << hex_bits(r.predicted_cost_log10)
       << '"' << ",\"predicted_mem_log10\":\""
       << hex_bits(r.predicted_mem_log10) << '"'
       << ",\"cumulative_cost\":\"" << hex_bits(r.cumulative_cost) << '"'
       << ",\"cumulative_regret\":\"" << hex_bits(r.cumulative_regret) << '"'
       << ",\"initial_phase\":" << (r.initial_phase ? "true" : "false")
       << '}';
  }
  os << "]}";
  return os.str();
}

OnlineCheckpoint online_checkpoint_from_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  const std::uint64_t version = root.at("version").number;
  if (version > kOnlineVersion) {
    throw CheckpointVersionError(
        "online checkpoint: payload version " + std::to_string(version) +
        " is newer than this build understands (max " +
        std::to_string(kOnlineVersion) + "); keeping the file");
  }
  if (version != kOnlineVersion) {
    throw std::runtime_error("online checkpoint: unsupported version " +
                             std::to_string(version));
  }
  if (const JsonValue* kind = root.find("kind");
      kind == nullptr || kind->str != "online") {
    throw std::runtime_error(
        "online checkpoint: payload is not an online-run checkpoint");
  }
  OnlineCheckpoint s;
  s.fingerprint = root.at("fingerprint").str;
  s.al_iterations_done = root.at("al_iterations_done").number;
  s.visited = read_u64_array(root.at("visited"));
  s.skipped = read_u64_array(root.at("skipped"));
  s.log_cost = read_double_array(root.at("log_cost"));
  s.log_mem = read_double_array(root.at("log_mem"));
  if (s.log_cost.size() != s.visited.size() ||
      s.log_mem.size() != s.visited.size()) {
    throw std::runtime_error(
        "online checkpoint: label/visited length mismatch");
  }
  s.theta_cost = read_double_array(root.at("theta_cost"));
  s.theta_mem = read_double_array(root.at("theta_mem"));
  s.backend_state_cost = root.at("backend_state_cost").str;
  s.backend_state_mem = root.at("backend_state_mem").str;
  {
    const JsonValue& rng = root.at("rng");
    const std::vector<std::uint64_t> words = read_u64_array(rng.at("words"));
    if (words.size() != s.rng.words.size()) {
      throw std::runtime_error("online checkpoint: rng state must have 4 words");
    }
    std::copy(words.begin(), words.end(), s.rng.words.begin());
    s.rng.cached_normal = read_double(rng.at("cached_normal"));
    s.rng.has_cached_normal = rng.at("has_cached_normal").boolean;
  }
  s.cc = read_double(root.at("cc"));
  s.cr = read_double(root.at("cr"));
  s.oracle_giveups = root.at("oracle_giveups").number;
  s.exhausted_safe_candidates = root.at("exhausted_safe_candidates").boolean;
  const std::vector<std::uint64_t> hits = read_u64_array(root.at("fault_hits"));
  const std::vector<std::uint64_t> fires =
      read_u64_array(root.at("fault_fires"));
  if (hits.size() > faults::kSiteCount || fires.size() > faults::kSiteCount ||
      hits.size() != fires.size()) {
    throw std::runtime_error("online checkpoint: fault counter arity mismatch");
  }
  std::copy(hits.begin(), hits.end(), s.fault_hits.begin());
  std::copy(fires.begin(), fires.end(), s.fault_fires.begin());
  for (const JsonValue& rec : root.at("records").array) {
    OnlineRecord r;
    r.grid_row = rec.at("grid_row").number;
    r.cost = read_double(rec.at("cost"));
    r.memory = read_double(rec.at("memory"));
    r.predicted_cost_log10 = read_double(rec.at("predicted_cost_log10"));
    r.predicted_mem_log10 = read_double(rec.at("predicted_mem_log10"));
    r.cumulative_cost = read_double(rec.at("cumulative_cost"));
    r.cumulative_regret = read_double(rec.at("cumulative_regret"));
    r.initial_phase = rec.at("initial_phase").boolean;
    s.records.push_back(r);
  }
  return s;
}

void save_online_checkpoint(const OnlineCheckpoint& state,
                            const std::filesystem::path& path,
                            std::size_t retain) {
  save_durable_payload(online_checkpoint_to_json(state), path, retain);
  trace::count("resilience.ckpt_saves");
}

std::optional<OnlineCheckpoint> load_online_checkpoint(
    const std::filesystem::path& path, std::size_t retain,
    CheckpointLoadReport* report) {
  const std::optional<std::string> payload =
      load_durable_payload(path, retain, report);
  if (!payload.has_value()) return std::nullopt;
  return online_checkpoint_from_json(*payload);
}

void remove_online_checkpoint(const std::filesystem::path& path,
                              std::size_t retain) {
  remove_durable_payload(path, retain);
}

}  // namespace alamr::core
