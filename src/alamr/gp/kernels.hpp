#pragma once

// Covariance functions for Gaussian Process Regression (paper Eqs. 4-7)
// with kernel engineering in the style of scikit-learn 0.18 (which the
// paper uses): kernels compose by sum and product, and every kernel
// exposes its hyperparameters as a vector of natural-log values ("theta")
// together with analytic gram-matrix gradients for LML maximization.
//
// The paper's model is ConstantKernel * RBF + WhiteKernel (Eq. 7 with
// amplitude sigma_f^2 and noise sigma_n^2). Matern kernels (future-work
// section) and ARD length scales are provided for the kernel ablation.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "alamr/gp/distances.hpp"
#include "alamr/linalg/matrix.hpp"
#include "alamr/opt/objective.hpp"

namespace alamr::gp {

using linalg::Matrix;

/// Abstract covariance function.
///
/// Hyperparameters are exposed in natural-log space; gradients returned by
/// gram_with_gradients are with respect to those log parameters (the chain
/// rule factor is applied internally), which is the convention the LML
/// optimizer expects.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Number of log-hyperparameters.
  virtual std::size_t num_params() const = 0;

  /// Current log-hyperparameters.
  virtual std::vector<double> log_params() const = 0;

  /// Sets log-hyperparameters. Size must equal num_params().
  virtual void set_log_params(std::span<const double> theta) = 0;

  /// Box bounds on the log-hyperparameters (always fully specified).
  virtual opt::Bounds log_bounds() const = 0;

  /// K(X, X) — symmetric gram matrix.
  virtual Matrix gram(const Matrix& x) const = 0;

  /// K(X, X) and dK/dtheta_j for every log-hyperparameter j.
  virtual Matrix gram_with_gradients(const Matrix& x,
                                     std::vector<Matrix>& gradients) const = 0;

  /// K(X, Y) — cross-covariance (WhiteKernel contributes zero here).
  virtual Matrix cross(const Matrix& x, const Matrix& y) const = 0;

  // ---- distance-cached evaluation ------------------------------------------
  //
  // The cached variants consume a PairwiseDistances built from the same
  // point sets the direct calls would take, replacing every O(d) feature
  // pass with one cached load. Results are bit-identical to the direct
  // calls: the per-entry arithmetic after the distance lookup is the same,
  // expression for expression. Base-class defaults fall back to the direct
  // path (using the points the cache retains) so kernels without a cached
  // implementation keep working; all built-in kernels override.

  /// Requests whatever derived data this kernel needs from the cache (ARD
  /// needs per-dimension components). Called eagerly before optimization
  /// so the cache is read-only while multistart workers share it.
  virtual void prepare_distances(PairwiseDistances& dist) const;

  /// gram(X) from a symmetric cache built over X.
  virtual Matrix gram_cached(const PairwiseDistances& dist) const;

  /// gram_with_gradients(X) from a symmetric cache built over X.
  virtual Matrix gram_with_gradients_cached(
      const PairwiseDistances& dist, std::vector<Matrix>& gradients) const;

  /// cross(X, Y) from a rectangular cache built over (X, Y).
  virtual Matrix cross_cached(const PairwiseDistances& dist) const;

  /// diag(K(X, X)) without forming the full gram matrix.
  virtual std::vector<double> diagonal(const Matrix& x) const = 0;

  /// Deep copy (each GPR owns an independent kernel whose state evolves
  /// across AL iterations via warm-started refits).
  virtual std::unique_ptr<Kernel> clone() const = 0;

  /// Human-readable representation with current hyperparameter values.
  virtual std::string describe() const = 0;
};

/// k(x, x') = c. As a factor in a product it is the amplitude sigma_f^2.
class ConstantKernel final : public Kernel {
 public:
  explicit ConstantKernel(double value = 1.0, double lower = 1e-5,
                          double upper = 1e5);

  double value() const noexcept { return value_; }

  std::size_t num_params() const override { return 1; }
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> theta) override;
  opt::Bounds log_bounds() const override;
  Matrix gram(const Matrix& x) const override;
  Matrix gram_with_gradients(const Matrix& x,
                             std::vector<Matrix>& gradients) const override;
  Matrix cross(const Matrix& x, const Matrix& y) const override;
  Matrix gram_cached(const PairwiseDistances& dist) const override;
  Matrix gram_with_gradients_cached(
      const PairwiseDistances& dist,
      std::vector<Matrix>& gradients) const override;
  Matrix cross_cached(const PairwiseDistances& dist) const override;
  std::vector<double> diagonal(const Matrix& x) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string describe() const override;

 private:
  double value_;
  double lower_;
  double upper_;
};

/// k(x, x') = noise * [x == x'] — i.i.d. Gaussian noise sigma_n^2 on the
/// training targets. Contributes only to gram(X, X), never to cross().
class WhiteKernel final : public Kernel {
 public:
  explicit WhiteKernel(double noise = 1e-2, double lower = 1e-10,
                       double upper = 1e2);

  double noise() const noexcept { return noise_; }

  std::size_t num_params() const override { return 1; }
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> theta) override;
  opt::Bounds log_bounds() const override;
  Matrix gram(const Matrix& x) const override;
  Matrix gram_with_gradients(const Matrix& x,
                             std::vector<Matrix>& gradients) const override;
  Matrix cross(const Matrix& x, const Matrix& y) const override;
  Matrix gram_cached(const PairwiseDistances& dist) const override;
  Matrix gram_with_gradients_cached(
      const PairwiseDistances& dist,
      std::vector<Matrix>& gradients) const override;
  Matrix cross_cached(const PairwiseDistances& dist) const override;
  std::vector<double> diagonal(const Matrix& x) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string describe() const override;

 private:
  double noise_;
  double lower_;
  double upper_;
};

/// Isotropic squared exponential (paper Eq. 7, unit amplitude):
/// k(x, x') = exp(-|x - x'|^2 / (2 l^2)).
class RbfKernel final : public Kernel {
 public:
  explicit RbfKernel(double length_scale = 1.0, double lower = 1e-3,
                     double upper = 1e3);

  double length_scale() const noexcept { return length_; }

  std::size_t num_params() const override { return 1; }
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> theta) override;
  opt::Bounds log_bounds() const override;
  Matrix gram(const Matrix& x) const override;
  Matrix gram_with_gradients(const Matrix& x,
                             std::vector<Matrix>& gradients) const override;
  Matrix cross(const Matrix& x, const Matrix& y) const override;
  Matrix gram_cached(const PairwiseDistances& dist) const override;
  Matrix gram_with_gradients_cached(
      const PairwiseDistances& dist,
      std::vector<Matrix>& gradients) const override;
  Matrix cross_cached(const PairwiseDistances& dist) const override;
  std::vector<double> diagonal(const Matrix& x) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string describe() const override;

 private:
  double length_;
  double lower_;
  double upper_;
};

/// Anisotropic (ARD) squared exponential with one length scale per input
/// dimension: k(x, x') = exp(-1/2 sum_i (x_i - x'_i)^2 / l_i^2).
class RbfArdKernel final : public Kernel {
 public:
  explicit RbfArdKernel(std::vector<double> length_scales, double lower = 1e-3,
                        double upper = 1e3);

  std::span<const double> length_scales() const noexcept { return lengths_; }

  std::size_t num_params() const override { return lengths_.size(); }
  void prepare_distances(PairwiseDistances& dist) const override;
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> theta) override;
  opt::Bounds log_bounds() const override;
  Matrix gram(const Matrix& x) const override;
  Matrix gram_with_gradients(const Matrix& x,
                             std::vector<Matrix>& gradients) const override;
  Matrix cross(const Matrix& x, const Matrix& y) const override;
  Matrix gram_cached(const PairwiseDistances& dist) const override;
  Matrix gram_with_gradients_cached(
      const PairwiseDistances& dist,
      std::vector<Matrix>& gradients) const override;
  Matrix cross_cached(const PairwiseDistances& dist) const override;
  std::vector<double> diagonal(const Matrix& x) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string describe() const override;

 private:
  std::vector<double> lengths_;
  double lower_;
  double upper_;
};

/// Matérn covariance with half-integer smoothness nu in {1/2, 3/2, 5/2}
/// (the closed-form cases; the paper's future-work section proposes these
/// for controllable smoothness). nu = 1/2 is the exponential kernel.
class MaternKernel final : public Kernel {
 public:
  enum class Nu { kHalf, kThreeHalves, kFiveHalves };

  explicit MaternKernel(Nu nu, double length_scale = 1.0, double lower = 1e-3,
                        double upper = 1e3);

  Nu nu() const noexcept { return nu_; }
  double length_scale() const noexcept { return length_; }

  std::size_t num_params() const override { return 1; }
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> theta) override;
  opt::Bounds log_bounds() const override;
  Matrix gram(const Matrix& x) const override;
  Matrix gram_with_gradients(const Matrix& x,
                             std::vector<Matrix>& gradients) const override;
  Matrix cross(const Matrix& x, const Matrix& y) const override;
  Matrix gram_cached(const PairwiseDistances& dist) const override;
  Matrix gram_with_gradients_cached(
      const PairwiseDistances& dist,
      std::vector<Matrix>& gradients) const override;
  Matrix cross_cached(const PairwiseDistances& dist) const override;
  std::vector<double> diagonal(const Matrix& x) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string describe() const override;

 private:
  /// Kernel value and d/d(log l) at squared distance r2.
  void eval(double r2, double& value, double& dlogl) const;

  Nu nu_;
  double length_;
  double lower_;
  double upper_;
};

/// Rational Quadratic: k(x,x') = (1 + |x-x'|^2 / (2 alpha l^2))^-alpha —
/// a scale mixture of RBFs; alpha -> inf recovers the RBF. Two
/// log-hyperparameters: [log l, log alpha].
class RationalQuadraticKernel final : public Kernel {
 public:
  explicit RationalQuadraticKernel(double length_scale = 1.0,
                                   double alpha = 1.0, double lower = 1e-3,
                                   double upper = 1e3);

  double length_scale() const noexcept { return length_; }
  double alpha() const noexcept { return alpha_; }

  std::size_t num_params() const override { return 2; }
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> theta) override;
  opt::Bounds log_bounds() const override;
  Matrix gram(const Matrix& x) const override;
  Matrix gram_with_gradients(const Matrix& x,
                             std::vector<Matrix>& gradients) const override;
  Matrix cross(const Matrix& x, const Matrix& y) const override;
  Matrix gram_cached(const PairwiseDistances& dist) const override;
  Matrix gram_with_gradients_cached(
      const PairwiseDistances& dist,
      std::vector<Matrix>& gradients) const override;
  Matrix cross_cached(const PairwiseDistances& dist) const override;
  std::vector<double> diagonal(const Matrix& x) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string describe() const override;

 private:
  /// Value and d/d(log l), d/d(log alpha) at squared distance r2.
  void eval(double r2, double& value, double& dlogl, double& dlogalpha) const;

  double length_;
  double alpha_;
  double lower_;
  double upper_;
};

/// k = k1 + k2; hyperparameters are the concatenation [theta1, theta2].
class SumKernel final : public Kernel {
 public:
  SumKernel(std::unique_ptr<Kernel> left, std::unique_ptr<Kernel> right);

  std::size_t num_params() const override;
  void prepare_distances(PairwiseDistances& dist) const override;
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> theta) override;
  opt::Bounds log_bounds() const override;
  Matrix gram(const Matrix& x) const override;
  Matrix gram_with_gradients(const Matrix& x,
                             std::vector<Matrix>& gradients) const override;
  Matrix cross(const Matrix& x, const Matrix& y) const override;
  Matrix gram_cached(const PairwiseDistances& dist) const override;
  Matrix gram_with_gradients_cached(
      const PairwiseDistances& dist,
      std::vector<Matrix>& gradients) const override;
  Matrix cross_cached(const PairwiseDistances& dist) const override;
  std::vector<double> diagonal(const Matrix& x) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string describe() const override;

 private:
  std::unique_ptr<Kernel> left_;
  std::unique_ptr<Kernel> right_;
};

/// k = k1 * k2 (elementwise); hyperparameters are [theta1, theta2].
class ProductKernel final : public Kernel {
 public:
  ProductKernel(std::unique_ptr<Kernel> left, std::unique_ptr<Kernel> right);

  std::size_t num_params() const override;
  void prepare_distances(PairwiseDistances& dist) const override;
  std::vector<double> log_params() const override;
  void set_log_params(std::span<const double> theta) override;
  opt::Bounds log_bounds() const override;
  Matrix gram(const Matrix& x) const override;
  Matrix gram_with_gradients(const Matrix& x,
                             std::vector<Matrix>& gradients) const override;
  Matrix cross(const Matrix& x, const Matrix& y) const override;
  Matrix gram_cached(const PairwiseDistances& dist) const override;
  Matrix gram_with_gradients_cached(
      const PairwiseDistances& dist,
      std::vector<Matrix>& gradients) const override;
  Matrix cross_cached(const PairwiseDistances& dist) const override;
  std::vector<double> diagonal(const Matrix& x) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string describe() const override;

 private:
  std::unique_ptr<Kernel> left_;
  std::unique_ptr<Kernel> right_;
};

/// Builder helpers so model definitions read like formulas:
/// `product(constant(1.0), rbf(1.0)) + white(1e-2)` style.
std::unique_ptr<Kernel> sum(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b);
std::unique_ptr<Kernel> product(std::unique_ptr<Kernel> a,
                                std::unique_ptr<Kernel> b);

/// The paper's model: sigma_f^2 * RBF(l) + White(sigma_n^2), with broad
/// bounds suitable for unit-cube features and log10 responses.
std::unique_ptr<Kernel> make_paper_kernel(double amplitude = 1.0,
                                          double length_scale = 1.0,
                                          double noise = 1e-2);

/// ARD variant used by the kernel ablation.
std::unique_ptr<Kernel> make_ard_kernel(std::size_t dim, double amplitude = 1.0,
                                        double length_scale = 1.0,
                                        double noise = 1e-2);

/// Matérn variant used by the kernel ablation.
std::unique_ptr<Kernel> make_matern_kernel(MaternKernel::Nu nu,
                                           double amplitude = 1.0,
                                           double length_scale = 1.0,
                                           double noise = 1e-2);

}  // namespace alamr::gp
