#pragma once

// Dense row-major matrix and vector helpers.
//
// The GPR core (Eqs. 3, 8) needs only dense symmetric linear algebra at
// n <= a few hundred, so we implement exactly what is needed rather than
// depending on an external BLAS: storage, gemv/gemm/syrk-style kernels,
// and a Cholesky factorization (cholesky.hpp). Kernels are written to
// vectorize with plain -O2/-O3 (contiguous inner loops, no aliasing
// surprises).

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace alamr::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of double.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list (for tests and small fixtures).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Contiguous view of row i.
  std::span<double> row(std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }

  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Transposed copy.
  Matrix transposed() const;

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- vector kernels -------------------------------------------------------

/// Inner product. Requires equal lengths.
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm.
double norm2(std::span<const double> x);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Squared Euclidean distance between two points (rows of a design matrix).
double squared_distance(std::span<const double> x, std::span<const double> y);

// ---- matrix kernels -------------------------------------------------------

/// y = A x (dimensions checked).
Vector matvec(const Matrix& a, std::span<const double> x);

/// y = A^T x.
Vector matvec_transposed(const Matrix& a, std::span<const double> x);

/// C = A B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Symmetric product A A^T (used for building SPD test fixtures and the
/// rank-k updates inside the LML gradient).
Matrix aat(const Matrix& a);

/// Frobenius-inner-product trace(A^T B); A, B same shape.
double frobenius_inner(const Matrix& a, const Matrix& b);

/// Maximum absolute entry difference (test helper).
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace alamr::linalg
