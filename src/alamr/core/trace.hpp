#pragma once

// Lightweight, thread-safe observability for the AL engine: named
// monotonic counters (how often the O(n^2) incremental-refit fast path
// fires vs the O(n^3) rebuild, Cholesky jitter retries, RGMA filtering,
// pool dispatches) and scoped wall-clock timers aggregated into per-phase
// histograms (predict / select / reveal / refit / rmse). Per-trajectory
// results attach to TrajectoryResult as a TraceReport with an
// options/partition fingerprint, and export to JSON/CSV (core/trace.cpp).
//
// Cost model: tracing is compiled in but OFF by default. Every
// instrumentation call is gated on one relaxed atomic load
// (trace::enabled()), so the disabled path adds no measurable overhead to
// the hot loops (verified by BM_TraceOverhead). Enable with the
// ALAMR_TRACE env var, trace::set_enabled(true), or AlOptions::trace.
//
// Like parallel.hpp, this header is intentionally standalone (standard
// library only) and everything on the instrumentation path is inline, so
// the lower layers (linalg, gp) can instrument without linking the core
// module's library. Only report serialization lives in src/core/trace.cpp.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace alamr::core::trace {

/// Log-scale duration histogram: bucket 0 holds durations below 1 us,
/// bucket b >= 1 holds [4^(b-1), 4^b) us, the last bucket is open-ended
/// (16 buckets reach ~18 minutes).
inline constexpr std::size_t kHistogramBuckets = 16;

inline std::size_t histogram_bucket(double seconds) noexcept {
  double us = seconds * 1e6;
  std::size_t bucket = 0;
  while (us >= 1.0 && bucket + 1 < kHistogramBuckets) {
    us *= 0.25;
    ++bucket;
  }
  return bucket;
}

/// Aggregated wall-clock statistics for one named phase.
struct PhaseStats {
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  double min_seconds = std::numeric_limits<double>::infinity();
  double max_seconds = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> histogram{};

  void add(double seconds) noexcept {
    ++calls;
    total_seconds += seconds;
    if (seconds < min_seconds) min_seconds = seconds;
    if (seconds > max_seconds) max_seconds = seconds;
    ++histogram[histogram_bucket(seconds)];
  }
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct PhaseValue {
  std::string name;
  PhaseStats stats;
};

/// Snapshot of one collector: counters and phase timings sorted by name,
/// plus the reproducibility fingerprint of the run that produced them.
struct TraceReport {
  std::string fingerprint;
  std::vector<CounterValue> counters;
  std::vector<PhaseValue> phases;

  /// Value of a counter, 0 when it was never incremented.
  std::uint64_t counter(std::string_view name) const noexcept {
    for (const CounterValue& c : counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  }

  /// Stats for a phase, nullptr when it was never timed.
  const PhaseStats* phase(std::string_view name) const noexcept {
    for (const PhaseValue& p : phases) {
      if (p.name == name) return &p.stats;
    }
    return nullptr;
  }
};

/// Thread-safe accumulation sink. One instance lives per traced
/// trajectory (installed thread-locally via ScopedCollector) and one
/// process-wide instance aggregates everything (global_collector()).
/// Concurrent count()/record() calls from pool workers sum exactly.
class TraceCollector {
 public:
  void count(std::string_view name, std::uint64_t delta = 1) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      it->second += delta;
    } else {
      counters_.emplace(std::string(name), delta);
    }
  }

  void record(std::string_view phase, double seconds) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = timers_.find(phase);
    if (it != timers_.end()) {
      it->second.add(seconds);
    } else {
      timers_.emplace(std::string(phase), PhaseStats{}).first->second.add(seconds);
    }
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    timers_.clear();
  }

  TraceReport report() const {
    TraceReport out;
    const std::lock_guard<std::mutex> lock(mutex_);
    out.counters.reserve(counters_.size());
    for (const auto& [name, value] : counters_) out.counters.push_back({name, value});
    out.phases.reserve(timers_.size());
    for (const auto& [name, stats] : timers_) out.phases.push_back({name, stats});
    return out;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, PhaseStats, std::less<>> timers_;
};

namespace detail {

inline bool env_default_enabled() {
  const char* env = std::getenv("ALAMR_TRACE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

inline std::atomic<bool> g_enabled{env_default_enabled()};
inline TraceCollector g_global;
inline thread_local TraceCollector* t_current = nullptr;

}  // namespace detail

/// The master switch: one relaxed atomic load — the entire cost of every
/// instrumentation call while tracing is off.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Process-wide sink: receives every count()/record_time() while enabled.
inline TraceCollector& global_collector() noexcept { return detail::g_global; }

/// Snapshot of the process-wide sink.
inline TraceReport global_report() { return detail::g_global.report(); }

/// The collector installed on this thread (nullptr outside a traced
/// trajectory).
inline TraceCollector* current_collector() noexcept { return detail::t_current; }

/// Bumps a named monotonic counter in the global sink and, when one is
/// installed, the current thread's collector. No-op while disabled.
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (!enabled()) return;
  detail::g_global.count(name, delta);
  if (TraceCollector* local = detail::t_current) local->count(name, delta);
}

/// Adds one duration sample to a named phase (same fan-out as count()).
inline void record_time(std::string_view phase, double seconds) {
  if (!enabled()) return;
  detail::g_global.record(phase, seconds);
  if (TraceCollector* local = detail::t_current) local->record(phase, seconds);
}

/// Installs `collector` as this thread's sink for the current scope.
/// Scopes nest; the previous sink is restored on destruction.
class ScopedCollector {
 public:
  explicit ScopedCollector(TraceCollector& collector) noexcept
      : previous_(detail::t_current) {
    detail::t_current = &collector;
  }
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;
  ~ScopedCollector() { detail::t_current = previous_; }

 private:
  TraceCollector* previous_;
};

/// RAII wall-clock timer: measures the enclosing scope and records it
/// under `phase`. `phase` must outlive the timer (callers pass literals).
/// When tracing is disabled at construction, neither clock is read.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view phase) noexcept
      : phase_(phase), armed_(enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (!armed_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    record_time(phase_,
                std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
                    .count());
  }

 private:
  std::string_view phase_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// FNV-1a accumulator for the options/seed fingerprint attached to every
/// TraceReport ("Survey of AL Hyperparameters": conclusions flip with
/// harness settings, so each run must carry its configuration identity).
class Fingerprint {
 public:
  Fingerprint& add(std::string_view text) noexcept {
    for (const char c : text) mix(static_cast<unsigned char>(c));
    mix(0xffu);  // length separator: add("ab").add("c") != add("a").add("bc")
    return *this;
  }

  // Without this overload a string literal would convert pointer-to-bool
  // (a standard conversion, which beats the user-defined one to
  // string_view) and silently hash as `true`.
  Fingerprint& add(const char* text) noexcept {
    return add(std::string_view(text));
  }

  Fingerprint& add(std::uint64_t value) noexcept {
    for (int b = 0; b < 8; ++b) mix(static_cast<unsigned char>(value >> (8 * b)));
    return *this;
  }

  Fingerprint& add(double value) noexcept {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    return add(bits);
  }

  Fingerprint& add(bool value) noexcept {
    mix(value ? 1u : 0u);
    return *this;
  }

  std::uint64_t value() const noexcept { return hash_; }

  /// 16-hex-digit digest.
  std::string hex() const {
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
      out[15 - i] = kDigits[(hash_ >> (4 * i)) & 0xf];
    }
    return out;
  }

 private:
  void mix(unsigned char byte) noexcept {
    hash_ ^= byte;
    hash_ *= 1099511628211ULL;
  }

  std::uint64_t hash_ = 14695981039346656037ULL;
};

// --- Report serialization (defined in src/core/trace.cpp; callers link
// --- alamr::core) ---------------------------------------------------------

/// JSON object: {"fingerprint": ..., "counters": {...}, "phases": {name:
/// {calls, total_s, mean_s, min_s, max_s, histogram_us: [...]}}}.
std::string trace_report_to_json(const TraceReport& report);

/// Flat CSV: kind,name,value,calls,total_s,mean_s,min_s,max_s — counter
/// rows fill value, phase rows fill the timing columns (histograms are
/// JSON-only).
std::string trace_report_to_csv(const TraceReport& report);

void write_trace_json(const TraceReport& report,
                      const std::filesystem::path& path);
void write_trace_csv(const TraceReport& report,
                     const std::filesystem::path& path);

/// CLI helper shared by benches/examples: scans argv for "--trace <path>"
/// or "--trace=<path>". When found, enables tracing process-wide and
/// returns the path; otherwise leaves the enabled state alone.
std::optional<std::string> parse_trace_flag(int argc, char** argv);

/// Writes the process-wide report to <path> (JSON) and <path>.csv.
void write_global_trace(const std::string& path);

}  // namespace alamr::core::trace
