#include "alamr/core/online.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "alamr/core/checkpoint.hpp"
#include "alamr/core/metrics.hpp"

namespace alamr::core {

OnlineAlDriver::OnlineAlDriver(linalg::Matrix candidate_grid,
                               ExperimentOracle oracle, OnlineAlOptions options)
    : grid_(std::move(candidate_grid)),
      oracle_(std::move(oracle)),
      options_(std::move(options)) {
  if (grid_.rows() == 0) {
    throw std::invalid_argument("OnlineAlDriver: empty candidate grid");
  }
  if (!oracle_) {
    throw std::invalid_argument("OnlineAlDriver: null oracle");
  }
  if (options_.n_init == 0) {
    throw std::invalid_argument("OnlineAlDriver: n_init must be >= 1");
  }
  if (options_.n_init + options_.iterations > grid_.rows()) {
    throw std::invalid_argument(
        "OnlineAlDriver: grid smaller than n_init + iterations");
  }
  grid_scaled_ = data::FeatureScaler::fit(grid_).transform(grid_);
}

std::string online_run_fingerprint(const linalg::Matrix& grid,
                                   std::string_view strategy_name,
                                   const OnlineAlOptions& options,
                                   std::string_view plan_spec) {
  trace::Fingerprint fp;
  fp.add("alamr.online.v1");
  fp.add(strategy_name);
  // The grid itself is identity: a checkpoint indexes rows of THIS grid.
  fp.add(static_cast<std::uint64_t>(grid.rows()));
  fp.add(static_cast<std::uint64_t>(grid.cols()));
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) fp.add(grid(r, c));
  }
  fp.add(static_cast<std::uint64_t>(options.n_init));
  fp.add(static_cast<std::uint64_t>(options.iterations));
  fp.add(options.memory_limit_log10);
  const auto add_gpr_options = [&fp](const gp::GprOptions& o) {
    fp.add(static_cast<std::uint64_t>(o.restarts));
    fp.add(o.normalize_y);
    fp.add(o.optimize);
    fp.add(static_cast<std::uint64_t>(o.max_opt_iterations));
    fp.add(o.initial_jitter);
    fp.add(o.max_jitter);
  };
  add_gpr_options(options.initial_fit);
  add_gpr_options(options.refit);
  fp.add(gp::to_string(options.backend.kind));
  fp.add(static_cast<std::uint64_t>(options.backend.inducing_points));
  fp.add(static_cast<std::uint64_t>(options.backend.sod_anchors));
  fp.add(static_cast<std::uint64_t>(options.backend.experts));
  fp.add(static_cast<std::uint64_t>(options.backend.min_expert_size));
  fp.add(static_cast<std::uint64_t>(options.backend.kmeans_iterations));
  fp.add(options.resilience.enabled);
  fp.add(options.resilience.ladder);
  fp.add(static_cast<std::uint64_t>(options.resilience.max_attempts));
  fp.add(static_cast<std::uint64_t>(options.resilience.breaker_threshold));
  fp.add(static_cast<std::uint64_t>(options.resilience.probe_after));
  fp.add(static_cast<std::uint64_t>(options.resilience.deadline_ticks));
  fp.add(static_cast<std::uint64_t>(options.resilience.backoff.base_ticks));
  fp.add(options.resilience.backoff.multiplier);
  fp.add(static_cast<std::uint64_t>(options.resilience.backoff.max_ticks));
  fp.add(options.resilience.backoff.jitter);
  fp.add(options.resilience.backoff.seed);
  fp.add(std::string(plan_spec));
  return fp.hex();
}

OnlineResult OnlineAlDriver::run(const Strategy& strategy, stats::Rng& rng,
                                 const CheckpointConfig* checkpoint) {
  if (ran_) {
    throw OnlineContractError(
        "OnlineAlDriver::run: already ran (one run per instance; construct a "
        "fresh driver, or hold sessions in a core::SessionEngine instead)");
  }
  ran_ = true;

  // Per-run fault injection, mirroring run_trajectory: an explicit plan in
  // the options wins, else the ALAMR_FAULT_PLAN env plan.
  const faults::FaultPlan* plan_source =
      !options_.plan.empty() ? &options_.plan : faults::env_plan();
  std::optional<faults::FaultInjector> injector;
  std::optional<faults::ScopedFaultInjector> fault_scope;
  if (plan_source != nullptr) {
    injector.emplace(*plan_source);
    fault_scope.emplace(*injector);
  }

  OnlineResult result;
  const bool track_regret = !std::isnan(options_.memory_limit_log10);
  const double limit_mb =
      track_regret ? std::pow(10.0, options_.memory_limit_log10) : 0.0;

  const std::string compat = online_run_fingerprint(
      grid_, strategy.name(), options_,
      plan_source != nullptr ? plan_source->to_string() : std::string());

  std::optional<OnlineCheckpoint> resumed;
  if (checkpoint != nullptr && checkpoint->resume && !checkpoint->path.empty()) {
    resumed = load_online_checkpoint(checkpoint->path, checkpoint->retain);
    if (resumed && resumed->fingerprint != compat) {
      throw std::runtime_error(
          "OnlineAlDriver: checkpoint at " + checkpoint->path.string() +
          " was written by an incompatible configuration (fingerprint "
          "mismatch); refusing to resume");
    }
    if (resumed) trace::count("online.resumed");
  }

  std::vector<std::size_t> visited;
  std::vector<std::size_t> skipped;
  std::vector<double> log_cost;
  std::vector<double> log_mem;
  double cc = 0.0;
  double cr = 0.0;
  std::size_t al_done = 0;

  if (resumed) {
    visited.assign(resumed->visited.begin(), resumed->visited.end());
    skipped.assign(resumed->skipped.begin(), resumed->skipped.end());
    log_cost = resumed->log_cost;
    log_mem = resumed->log_mem;
    cc = resumed->cc;
    cr = resumed->cr;
    al_done = resumed->al_iterations_done;
    result.records = resumed->records;
    result.oracle_giveups = resumed->oracle_giveups;
    result.exhausted_safe_candidates = resumed->exhausted_safe_candidates;
  }

  // Remaining candidates = grid order minus everything already run or
  // abandoned (erase() preserves relative order, so this reconstruction
  // matches the live run's remaining set exactly).
  std::vector<std::size_t> remaining;
  {
    std::vector<char> gone(grid_.rows(), 0);
    for (const std::size_t row : visited) gone[row] = 1;
    for (const std::size_t row : skipped) gone[row] = 1;
    remaining.reserve(grid_.rows() - visited.size() - skipped.size());
    for (std::size_t i = 0; i < grid_.rows(); ++i) {
      if (gone[i] == 0) remaining.push_back(i);
    }
  }

  // Surrogates behind the degradation ladder (DESIGN.md §14); constructed
  // with the thorough initial-fit options like the simulator's backends.
  const auto kernel_factory = [] { return gp::make_paper_kernel(); };
  std::unique_ptr<gp::PosteriorBackend> model_cost = gp::make_resilient_backend(
      options_.backend, options_.resilience, kernel_factory,
      options_.initial_fit);
  std::unique_ptr<gp::PosteriorBackend> model_mem = gp::make_resilient_backend(
      options_.backend, options_.resilience, kernel_factory,
      options_.initial_fit);

  // Deadline/backoff executor for oracle calls: deterministic seeded
  // retries over a virtual clock, no wall-time reads.
  resilience::DeadlineExecutor oracle_exec(options_.resilience.backoff,
                                           options_.resilience.max_attempts,
                                           options_.resilience.deadline_ticks);

  const auto gather_scaled = [&](std::span<const std::size_t> rows) {
    linalg::Matrix out(rows.size(), grid_scaled_.cols());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < grid_scaled_.cols(); ++c) {
        out(r, c) = grid_scaled_(rows[r], c);
      }
    }
    return out;
  };

  /// Runs the oracle under the executor. nullopt = gave up after the
  /// retry budget (the candidate should be abandoned). OnlineContractError
  /// is never retried.
  const auto call_oracle =
      [&](std::size_t row) -> std::optional<std::pair<double, double>> {
    std::pair<double, double> measured{0.0, 0.0};
    const auto validate = [&] {
      if (!(measured.first > 0.0) || !(measured.second > 0.0)) {
        throw OnlineContractError(
            "OnlineAlDriver: oracle returned non-positive measurement");
      }
    };
    if (!options_.resilience.enabled) {
      measured = oracle_(grid_.row(row));
      validate();
      return measured;
    }
    const resilience::DeadlineExecutor::Outcome outcome =
        oracle_exec.execute("online.oracle", [&]() -> resilience::OpStatus {
          // The acquire.timeout site models an experiment blowing its
          // wall-clock budget; each retry consults the schedule afresh.
          if (faults::fire(faults::Site::kAcquireTimeout)) {
            trace::count("online.oracle_timeouts_injected");
            return resilience::OpStatus::kTimeout;
          }
          try {
            measured = oracle_(grid_.row(row));
          } catch (const OnlineContractError&) {
            throw;  // broken contract, not a transient failure
          } catch (const std::runtime_error&) {
            trace::count("online.oracle_exceptions");
            return resilience::OpStatus::kFailed;
          }
          validate();
          return resilience::OpStatus::kOk;
        });
    if (outcome.status != resilience::OpStatus::kOk) return std::nullopt;
    return measured;
  };

  /// Books a successful experiment: record, labels, regret accounting.
  const auto learn = [&](std::size_t row, double cost, double memory,
                         double mu_c, double mu_m, bool initial) {
    OnlineRecord record;
    record.grid_row = row;
    record.cost = cost;
    record.memory = memory;
    record.predicted_cost_log10 = mu_c;
    record.predicted_mem_log10 = mu_m;
    record.initial_phase = initial;
    cc += cost;
    if (track_regret) cr += individual_regret(cost, memory, limit_mb);
    record.cumulative_cost = cc;
    record.cumulative_regret = cr;
    result.records.push_back(record);
    visited.push_back(row);
    log_cost.push_back(std::log10(cost));
    log_mem.push_back(std::log10(memory));
  };

  const auto snapshot = [&]() {
    OnlineCheckpoint s;
    s.fingerprint = compat;
    s.al_iterations_done = al_done;
    s.visited.assign(visited.begin(), visited.end());
    s.skipped.assign(skipped.begin(), skipped.end());
    s.log_cost = log_cost;
    s.log_mem = log_mem;
    s.theta_cost = model_cost->log_params();
    s.theta_mem = model_mem->log_params();
    s.backend_state_cost = model_cost->save_state();
    s.backend_state_mem = model_mem->save_state();
    s.rng = rng.save_state();
    s.cc = cc;
    s.cr = cr;
    s.oracle_giveups = result.oracle_giveups;
    s.exhausted_safe_candidates = result.exhausted_safe_candidates;
    if (injector) {
      const auto hits = injector->hit_counters();
      const auto fires = injector->fire_counters();
      std::copy(hits.begin(), hits.end(), s.fault_hits.begin());
      std::copy(fires.begin(), fires.end(), s.fault_fires.begin());
    }
    s.records = result.records;
    return s;
  };
  std::size_t new_records = 0;  // experiments recorded by THIS process
  const auto maybe_checkpoint = [&]() {
    if (checkpoint == nullptr || checkpoint->path.empty()) return;
    if (checkpoint->stride == 0 || new_records % checkpoint->stride != 0) {
      return;
    }
    trace::count("online.checkpoints");
    save_online_checkpoint(snapshot(), checkpoint->path, checkpoint->retain);
  };

  // Whether the one-time optimized initial fit still has to happen: it
  // already did iff the run being resumed had completed its init phase
  // (the saved theta carries its result).
  std::size_t init_done = 0;
  for (const OnlineRecord& record : result.records) {
    if (record.initial_phase) ++init_done;
  }
  const bool initial_fit_pending = init_done < options_.n_init;

  // Resume: rebuild both surrogates AT the saved hyperparameters over the
  // saved training set — rng-free (optimize off), and any fault-site
  // consultations the rebuild makes are discarded when the injector
  // counters are restored right after (same contract as run_resumable).
  if (resumed) {
    gp::GprOptions rebuild = options_.refit;
    rebuild.optimize = false;
    model_cost->set_fit_options(rebuild);
    model_mem->set_fit_options(rebuild);
    if (!resumed->backend_state_cost.empty()) {
      model_cost->restore_state(resumed->backend_state_cost);
    }
    if (!resumed->backend_state_mem.empty()) {
      model_mem->restore_state(resumed->backend_state_mem);
    }
    model_cost->set_log_params(resumed->theta_cost);
    model_mem->set_log_params(resumed->theta_mem);
    if (!visited.empty()) {
      model_cost->fit(gather_scaled(visited), log_cost, rng);
      model_mem->fit(gather_scaled(visited), log_mem, rng);
    }
    rng.restore_state(resumed->rng);
    if (injector) {
      injector->restore_counters(resumed->fault_hits, resumed->fault_fires);
    }
  }

  // Initial phase: uniformly random picks (experimenter intuition /
  // verification runs in the paper's workflow). A candidate whose oracle
  // keeps failing is abandoned and does not count toward n_init.
  while (init_done < options_.n_init && !remaining.empty()) {
    const std::size_t local = rng.uniform_index(remaining.size());
    const std::size_t row = remaining[local];
    const std::optional<std::pair<double, double>> measured = call_oracle(row);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(local));
    if (!measured.has_value()) {
      ++result.oracle_giveups;
      trace::count("online.oracle_giveups");
      skipped.push_back(row);
      continue;
    }
    learn(row, measured->first, measured->second, 0.0, 0.0, /*initial=*/true);
    ++init_done;
    ++new_records;
    maybe_checkpoint();
  }

  if (visited.empty()) {
    // Every candidate's oracle failed before anything was learned: there
    // is no model to drive AL with.
    visited_count_ = skipped.size();
    result.cost_model = std::move(model_cost);
    result.memory_model = std::move(model_mem);
    return result;
  }

  if (initial_fit_pending) {
    model_cost->set_fit_options(options_.initial_fit);
    model_mem->set_fit_options(options_.initial_fit);
    model_cost->fit(gather_scaled(visited), log_cost, rng);
    model_mem->fit(gather_scaled(visited), log_mem, rng);
  }
  model_cost->set_fit_options(options_.refit);
  model_mem->set_fit_options(options_.refit);

  while (al_done < options_.iterations && !remaining.empty()) {
    if (checkpoint != nullptr && checkpoint->halt_after_iterations != 0 &&
        new_records >= checkpoint->halt_after_iterations) {
      result.halted_at_checkpoint = true;
      break;
    }
    const linalg::Matrix x_remaining = gather_scaled(remaining);
    const gp::Prediction pred_cost = model_cost->predict(x_remaining);
    const gp::Prediction pred_mem = model_mem->predict(x_remaining);
    const CandidateView view{x_remaining, pred_cost.mean, pred_cost.stddev,
                             pred_mem.mean, pred_mem.stddev};
    const std::optional<std::size_t> pick = strategy.select(view, rng);
    if (!pick) {
      result.exhausted_safe_candidates = true;
      break;
    }
    const std::size_t local = *pick;
    const std::size_t row = remaining[local];
    const std::optional<std::pair<double, double>> measured = call_oracle(row);
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(local));
    // The iteration is consumed whether the oracle delivered or not —
    // counted BEFORE any checkpoint below so a stride save resumes into
    // the correct iteration, not a replay of this one.
    ++al_done;
    if (!measured.has_value()) {
      // The models never see the abandoned candidate again.
      ++result.oracle_giveups;
      trace::count("online.oracle_giveups");
      skipped.push_back(row);
      continue;
    }
    learn(row, measured->first, measured->second, pred_cost.mean[local],
          pred_mem.mean[local], /*initial=*/false);
    model_cost->fit(gather_scaled(visited), log_cost, rng);
    model_mem->fit(gather_scaled(visited), log_mem, rng);
    ++new_records;
    maybe_checkpoint();
  }

  if (checkpoint != nullptr && !checkpoint->path.empty()) {
    // Final (or halt-point) state, so a later process can resume — same
    // completion contract as run_resumable.
    trace::count("online.checkpoints");
    save_online_checkpoint(snapshot(), checkpoint->path, checkpoint->retain);
  }

  visited_count_ = visited.size() + skipped.size();
  result.cost_model = std::move(model_cost);
  result.memory_model = std::move(model_mem);
  return result;
}

}  // namespace alamr::core
