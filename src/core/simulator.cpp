#include "alamr/core/simulator.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "alamr/core/checkpoint.hpp"
#include "alamr/core/metrics.hpp"
#include "alamr/linalg/simd.hpp"
#include "alamr/stats/descriptive.hpp"

namespace alamr::core {

namespace {

/// Gathers rows of a matrix into a new matrix.
linalg::Matrix gather_rows(const linalg::Matrix& x,
                           std::span<const std::size_t> rows) {
  linalg::Matrix out(rows.size(), x.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) out(r, c) = x(rows[r], c);
  }
  return out;
}

std::vector<double> gather(std::span<const double> values,
                           std::span<const std::size_t> rows) {
  std::vector<double> out(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) out[r] = values[rows[r]];
  return out;
}

/// Refills `out` with the given rows of `x` in place: same values as a
/// freshly gathered matrix, no allocation within reserved capacity.
void gather_rows_into(const linalg::Matrix& x,
                      std::span<const std::size_t> rows, linalg::Matrix& out) {
  out.resize_discard(rows.size(), x.cols());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto src = x.row(rows[r]);
    std::copy(src.begin(), src.end(), out.row(r).begin());
  }
}

}  // namespace

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kActiveExhausted: return "active set exhausted";
    case StopReason::kIterationBudget: return "iteration budget reached";
    case StopReason::kNoSafeCandidates: return "no safe candidates remain";
    case StopReason::kStabilized: return "predictions stabilized";
    case StopReason::kCheckpointHalt: return "halted at checkpoint";
  }
  return "unknown";
}

std::string to_string(CensorKind kind) {
  switch (kind) {
    case CensorKind::kNone: return "none";
    case CensorKind::kOverLimit: return "over_limit";
    case CensorKind::kOom: return "oom";
    case CensorKind::kTimeout: return "timeout";
    case CensorKind::kNanRow: return "nan_row";
  }
  return "unknown";
}

std::string to_string(CensorPolicy policy) {
  switch (policy) {
    case CensorPolicy::kDropCensored: return "drop_censored";
    case CensorPolicy::kPenalizedLabel: return "penalized_label";
    case CensorPolicy::kRetryNextCandidate: return "retry_next_candidate";
  }
  return "unknown";
}

AlSimulator::AlSimulator(const data::Dataset& dataset, AlOptions options)
    : dataset_(dataset), options_(std::move(options)) {
  dataset_.validate();
  if (dataset_.size() < options_.n_test + options_.n_init + 1) {
    throw std::invalid_argument("AlSimulator: dataset too small for partition");
  }
  const linalg::Matrix transformed =
      data::apply_column_transforms(dataset_.x, options_.feature_transforms);
  const data::FeatureScaler scaler = data::FeatureScaler::fit(transformed);
  x_scaled_ = scaler.transform(transformed);
  log_cost_ = data::log10_transform(dataset_.cost);
  log_mem_ = data::log10_transform(dataset_.memory);

  limit_log10_ = std::isnan(options_.memory_limit_log10)
                     ? paper_memory_limit_log10(dataset_)
                     : options_.memory_limit_log10;

  if (options_.trace) trace::set_enabled(true);
}

std::string AlSimulator::trajectory_fingerprint(
    std::string_view strategy_name, const data::Partition& partition) const {
  trace::Fingerprint fp;
  fp.add("alamr.trajectory.v5");
  // The active SIMD dispatch level is part of the numerical identity: the
  // vector levels reassociate reductions, so a trajectory produced at one
  // level is not byte-comparable to (or resumable at) another. Scalar
  // checkpoints keep resuming at scalar on any host.
  fp.add(linalg::simd::to_string(linalg::simd::active_level()));
  fp.add(strategy_name);
  fp.add(static_cast<std::uint64_t>(dataset_.size()));
  fp.add(static_cast<std::uint64_t>(x_scaled_.cols()));
  fp.add(limit_log10_);
  fp.add(static_cast<std::uint64_t>(options_.n_test));
  fp.add(static_cast<std::uint64_t>(options_.n_init));
  fp.add(static_cast<std::uint64_t>(options_.max_iterations));
  fp.add(static_cast<std::uint64_t>(options_.feature_transforms.size()));
  for (const data::ColumnTransform t : options_.feature_transforms) {
    fp.add(static_cast<std::uint64_t>(t));
  }
  fp.add(options_.stopping.enabled);
  fp.add(options_.stopping.tolerance);
  fp.add(static_cast<std::uint64_t>(options_.stopping.patience));
  fp.add(static_cast<std::uint64_t>(options_.stopping.min_iterations));
  fp.add(static_cast<std::uint64_t>(options_.kernel));
  const auto add_gpr_options = [&fp](const gp::GprOptions& o) {
    fp.add(static_cast<std::uint64_t>(o.restarts));
    fp.add(o.normalize_y);
    fp.add(o.optimize);
    fp.add(static_cast<std::uint64_t>(o.max_opt_iterations));
    fp.add(o.initial_jitter);
    fp.add(o.max_jitter);
  };
  add_gpr_options(options_.initial_fit);
  add_gpr_options(options_.refit);
  fp.add(static_cast<std::uint64_t>(options_.rmse_stride));
  fp.add(options_.incremental_refit);
  fp.add(options_.incremental_cross);
  fp.add(options_.batched_predict);
  // panel_predict is deliberately NOT fingerprinted: the candidate panel
  // is derived state (rebuilt bit-identically from the factor and cross
  // matrix), so a checkpoint written with the panel on resumes
  // byte-identically with it off and vice versa.
  // Backend identity: an approximate posterior produces a different (and
  // non-resumable-into-each-other) trajectory, so kind and sizing are part
  // of the fingerprint. The plumbing flags are already covered above.
  fp.add(gp::to_string(options_.backend.kind));
  fp.add(static_cast<std::uint64_t>(options_.backend.inducing_points));
  fp.add(static_cast<std::uint64_t>(options_.backend.sod_anchors));
  fp.add(static_cast<std::uint64_t>(options_.backend.experts));
  fp.add(static_cast<std::uint64_t>(options_.backend.min_expert_size));
  fp.add(static_cast<std::uint64_t>(options_.backend.kmeans_iterations));
  fp.add(options_.failures.failure_aware);
  fp.add(static_cast<std::uint64_t>(options_.failures.policy));
  fp.add(options_.failures.penalty_offset);
  fp.add(options_.failures.plan.to_string());
  // Resilience identity: under an armed plan, degradation/retry decisions
  // change the trajectory, so the knobs that shape them are part of the
  // compatibility key. (Disarmed they are byte-invisible, but resuming a
  // faulted run with different healing rules would still be a chimera.)
  fp.add(options_.resilience.enabled);
  fp.add(options_.resilience.ladder);
  fp.add(static_cast<std::uint64_t>(options_.resilience.max_attempts));
  fp.add(static_cast<std::uint64_t>(options_.resilience.breaker_threshold));
  fp.add(static_cast<std::uint64_t>(options_.resilience.probe_after));
  fp.add(static_cast<std::uint64_t>(options_.resilience.deadline_ticks));
  fp.add(static_cast<std::uint64_t>(options_.resilience.backoff.base_ticks));
  fp.add(options_.resilience.backoff.multiplier);
  fp.add(static_cast<std::uint64_t>(options_.resilience.backoff.max_ticks));
  fp.add(options_.resilience.backoff.jitter);
  fp.add(options_.resilience.backoff.seed);
  const auto add_rows = [&fp](std::span<const std::size_t> rows) {
    fp.add(static_cast<std::uint64_t>(rows.size()));
    for (const std::size_t row : rows) fp.add(static_cast<std::uint64_t>(row));
  };
  add_rows(partition.test);
  add_rows(partition.init);
  add_rows(partition.active);
  return fp.hex();
}

double AlSimulator::memory_limit_mb() const noexcept {
  return std::pow(10.0, limit_log10_);
}

double AlSimulator::paper_memory_limit_log10(const data::Dataset& dataset) {
  // The paper describes L_mem as "95% of the largest log-transformed
  // memory usage", but the VALUE it reports is the decisive anchor:
  // L_mem = 7.53 MB against a dataset whose median memory is 8.00 MB —
  // i.e. the limit sits just below the median and rules out roughly half
  // of the jobs (which is what makes the RGMA dynamics in their Fig. 4 so
  // pronounced). We reproduce that anchor with the median of the log10
  // memory responses; callers can always set an explicit limit through
  // AlOptions::memory_limit_log10.
  const std::vector<double> log_mem = data::log10_transform(dataset.memory);
  return stats::quantile(log_mem, 0.5);
}

std::unique_ptr<gp::Kernel> AlSimulator::make_kernel() const {
  switch (options_.kernel) {
    case KernelChoice::kRbf: return gp::make_paper_kernel();
    case KernelChoice::kRbfArd: return gp::make_ard_kernel(dataset_.dim());
    case KernelChoice::kMatern32:
      return gp::make_matern_kernel(gp::MaternKernel::Nu::kThreeHalves);
    case KernelChoice::kMatern52:
      return gp::make_matern_kernel(gp::MaternKernel::Nu::kFiveHalves);
  }
  throw std::logic_error("AlSimulator: unknown kernel choice");
}

SharedBatchContext AlSimulator::make_shared_context() const {
  const trace::ScopedTimer timer("shared_context");
  return SharedBatchContext(std::make_shared<const gp::DistanceBase>(x_scaled_));
}

TrajectoryResult AlSimulator::run(const Strategy& strategy, stats::Rng& rng,
                                  const SharedBatchContext* shared) const {
  const data::Partition partition =
      data::make_partition(dataset_.size(), options_.n_test, options_.n_init, rng);
  return run_with_partition(strategy, partition, rng, shared);
}

TrajectoryResult AlSimulator::run_with_partition(const Strategy& strategy,
                                                 const data::Partition& partition,
                                                 stats::Rng& rng,
                                                 const SharedBatchContext* shared) const {
  return run_trajectory(strategy, partition, rng, nullptr, shared);
}

TrajectoryResult AlSimulator::run_resumable(const Strategy& strategy,
                                            const data::Partition& partition,
                                            stats::Rng& rng,
                                            const CheckpointConfig& checkpoint,
                                            const SharedBatchContext* shared) const {
  return run_trajectory(strategy, partition, rng, &checkpoint, shared);
}

TrajectoryResult AlSimulator::run_trajectory(const Strategy& strategy,
                                             const data::Partition& partition,
                                             stats::Rng& rng,
                                             const CheckpointConfig* checkpoint,
                                             const SharedBatchContext* shared) const {
  // The shared context is dataset identity: a context built by another
  // simulator (different dataset or transforms) would silently gather
  // wrong distances, so shape mismatches are rejected up front.
  const gp::DistanceBase* base =
      shared != nullptr ? &shared->distance_base() : nullptr;
  if (base != nullptr &&
      (base->size() != x_scaled_.rows() || base->dim() != x_scaled_.cols())) {
    throw std::invalid_argument(
        "run_trajectory: SharedBatchContext does not match this simulator's "
        "dataset");
  }
  TrajectoryResult result;
  result.strategy_name = strategy.name();
  result.partition = partition;
  result.memory_limit_mb = memory_limit_mb();

  // Per-trajectory fault injection: an explicit plan in the options wins,
  // else the ALAMR_FAULT_PLAN env plan is instantiated per trajectory.
  // Installing the injector thread-locally also routes the cholesky/opt
  // sites exercised by this trajectory's fits through it (run_batch
  // trajectories execute all nested work inline on their own thread).
  const faults::FaultPlan* plan_source = nullptr;
  if (!options_.failures.plan.empty()) {
    plan_source = &options_.failures.plan;
  } else {
    plan_source = faults::env_plan();
  }
  std::optional<faults::FaultInjector> injector;
  std::optional<faults::ScopedFaultInjector> fault_scope;
  if (plan_source != nullptr) {
    injector.emplace(*plan_source);
    fault_scope.emplace(*injector);
  }

  // Everything counted/timed on this thread lands in this trajectory's
  // collector (and the process-wide one); nested parallel_for sections run
  // their fan-out counters on this thread too, so per-trajectory reports
  // stay exact even inside run_batch.
  trace::TraceCollector collector;
  const trace::ScopedCollector trace_scope(collector);
  if (base != nullptr) trace::count("sim.shared_context_runs");

  // Checkpoint compatibility identity: the options/strategy/partition
  // fingerprint plus the plan ACTUALLY in force (which may come from the
  // environment rather than the options).
  const std::string fingerprint =
      trajectory_fingerprint(result.strategy_name, partition);
  const std::string compat =
      fingerprint + "|plan=" +
      (plan_source != nullptr ? plan_source->to_string() : std::string());

  std::optional<TrajectoryCheckpoint> resumed;
  if (checkpoint != nullptr && checkpoint->resume && !checkpoint->path.empty()) {
    resumed = load_checkpoint(checkpoint->path, checkpoint->retain);
    if (resumed && resumed->fingerprint != compat) {
      throw std::runtime_error(
          "run_resumable: checkpoint at " + checkpoint->path.string() +
          " was written by an incompatible configuration (fingerprint "
          "mismatch); refusing to resume");
    }
    if (resumed) trace::count("sim.resumed");
  }

  // Test set fixtures (original units for Eq. 10).
  const linalg::Matrix x_test = gather_rows(x_scaled_, partition.test);
  const std::vector<double> cost_test = gather(dataset_.cost, partition.test);
  const std::vector<double> mem_test = gather(dataset_.memory, partition.test);

  // Per-response posterior backends (DESIGN.md §12), fitted on the Init
  // partition with the thorough options. The exact-path plumbing flags are
  // copied from AlOptions so the historical knobs keep selecting the same
  // code paths inside the exact backend.
  gp::BackendOptions backend_options = options_.backend;
  backend_options.incremental_refit = options_.incremental_refit;
  backend_options.incremental_cross = options_.incremental_cross;
  backend_options.batched_predict = options_.batched_predict;
  backend_options.panel_predict = options_.panel_predict;
  const auto kernel_factory = [this] { return make_kernel(); };
  const std::unique_ptr<gp::PosteriorBackend> backend_cost =
      gp::make_resilient_backend(backend_options, options_.resilience,
                                 kernel_factory, options_.initial_fit);
  const std::unique_ptr<gp::PosteriorBackend> backend_mem =
      gp::make_resilient_backend(backend_options, options_.resilience,
                                 kernel_factory, options_.initial_fit);
  // Concrete handles for the resilience surface (null when the layer is
  // disabled): injected acquisition timeouts are attributed to both
  // models' breakers — the acquisition sweep consumed both posteriors.
  gp::ResilientBackend* const resilient_cost =
      dynamic_cast<gp::ResilientBackend*>(backend_cost.get());
  gp::ResilientBackend* const resilient_mem =
      dynamic_cast<gp::ResilientBackend*>(backend_mem.get());

  std::vector<std::size_t> learned;
  std::vector<std::size_t> active;
  std::vector<double> c_learned;
  std::vector<double> m_learned;
  linalg::Matrix x_learned;

  if (!resumed) {
    learned = partition.init;  // Init + selected rows
    active = partition.active;
    x_learned = gather_rows(x_scaled_, learned);
    c_learned = gather(log_cost_, learned);
    m_learned = gather(log_mem_, learned);
    {
      const trace::ScopedTimer timer("init");
      backend_cost->fit(x_learned, c_learned, rng, base, learned);
      backend_mem->fit(x_learned, m_learned, rng, base, learned);
    }
  } else {
    // Rebuild the exact mid-trajectory state: training set and labels
    // (penalized labels included) from the checkpoint, backends refit AT
    // the saved hyperparameters with optimization disabled (no rng draws)
    // — the posterior is a pure function of (X, y, theta) plus any opaque
    // backend state (restored first), and the full rebuild produces the
    // same bits the live incremental path had (golden-tested), so the
    // continuation cannot diverge.
    learned.assign(resumed->learned.begin(), resumed->learned.end());
    active.assign(resumed->active.begin(), resumed->active.end());
    c_learned = resumed->c_learned;
    m_learned = resumed->m_learned;
    x_learned = gather_rows(x_scaled_, learned);
    gp::GprOptions rebuild = options_.refit;
    rebuild.optimize = false;
    backend_cost->set_fit_options(rebuild);
    backend_mem->set_fit_options(rebuild);
    if (!resumed->backend_state_cost.empty()) {
      backend_cost->restore_state(resumed->backend_state_cost);
    }
    if (!resumed->backend_state_mem.empty()) {
      backend_mem->restore_state(resumed->backend_state_mem);
    }
    backend_cost->set_log_params(resumed->theta_cost);
    backend_mem->set_log_params(resumed->theta_mem);
    {
      const trace::ScopedTimer timer("init");
      backend_cost->fit(x_learned, c_learned, rng, base, learned);
      backend_mem->fit(x_learned, m_learned, rng, base, learned);
    }
    rng.restore_state(resumed->rng);
    if (injector) {
      injector->restore_counters(resumed->fault_hits, resumed->fault_fires);
    }
  }
  backend_cost->set_fit_options(options_.refit);
  backend_mem->set_fit_options(options_.refit);

  // Test predictions in log space are reused by both the RMSE metric and
  // the stabilizing-predictions stopping rule. Each backend routes the
  // evaluation through its own cross-covariance machinery (the exact
  // backend gathers the train-to-test distance slab from the shared
  // DistanceBase when one is in play — bitwise identical to recomputing).
  std::vector<double> cost_mu_log;
  const auto test_rmse = [&](gp::PosteriorBackend& model,
                             std::span<const double> actual,
                             std::vector<double>* mu_log_out = nullptr) {
    std::vector<double> mu_log = model.predict_mean(x_test, partition.test);
    const std::vector<double> mu = data::exp10_transform(mu_log);
    const double err = rmse(mu, actual);
    if (mu_log_out != nullptr) *mu_log_out = std::move(mu_log);
    return err;
  };
  std::vector<double> previous_cost_mu_log;
  std::size_t stable_streak = 0;
  // Cost-weighted RMSE (Eq. 12): weight each test residual by the test
  // sample's actual cost.
  const auto weighted = [&](std::span<const double> mu_log) {
    return weighted_rmse(data::exp10_transform(mu_log), cost_test, cost_test);
  };
  double last_rmse_cost_weighted = 0.0;
  double cc = 0.0;
  double cr = 0.0;
  double last_rmse_cost = 0.0;
  double last_rmse_mem = 0.0;
  std::size_t passes = 0;   // loop passes recorded (censored included)
  std::size_t trained = 0;  // successful (uncensored or penalized) refits
  bool last_record_evaluated = true;

  if (!resumed) {
    {
      const trace::ScopedTimer timer("rmse");
      result.initial_rmse_cost =
          test_rmse(*backend_cost, cost_test, &cost_mu_log);
      result.initial_rmse_mem = test_rmse(*backend_mem, mem_test);
    }
    previous_cost_mu_log = cost_mu_log;
    last_rmse_cost_weighted = weighted(cost_mu_log);
    last_rmse_cost = result.initial_rmse_cost;
    last_rmse_mem = result.initial_rmse_mem;
  } else {
    result.initial_rmse_cost = resumed->initial_rmse_cost;
    result.initial_rmse_mem = resumed->initial_rmse_mem;
    previous_cost_mu_log = resumed->previous_cost_mu_log;
    stable_streak = static_cast<std::size_t>(resumed->stable_streak);
    last_rmse_cost_weighted = resumed->last_rmse_weighted;
    cc = resumed->cc;
    cr = resumed->cr;
    last_rmse_cost = resumed->last_rmse_cost;
    last_rmse_mem = resumed->last_rmse_mem;
    last_record_evaluated = resumed->last_record_evaluated;
    passes = static_cast<std::size_t>(resumed->passes);
    trained = static_cast<std::size_t>(resumed->trained);
    result.iterations = resumed->iterations;
    result.censored_count = static_cast<std::size_t>(resumed->censored_count);
    result.censored_cost = resumed->censored_cost;
  }

  // Budget counts successful acquisitions under kRetryNextCandidate and
  // total passes otherwise (censored passes then consume budget too, as a
  // wasted allocation would).
  const bool retry_policy =
      options_.failures.policy == CensorPolicy::kRetryNextCandidate;
  const std::size_t budget =
      options_.max_iterations == 0
          ? partition.active.size()
          : std::min(options_.max_iterations, partition.active.size());
  result.iterations.reserve(budget);

  // Steady-state allocation avoidance (DESIGN.md §10): every container
  // that grows with the trajectory is reserved at its bound once, so
  // per-pass bookkeeping (training append, cross-matrix row/column
  // maintenance) is pure in-place data movement from here on.
  const std::size_t n_train_max = learned.size() + budget;
  learned.reserve(n_train_max);
  c_learned.reserve(n_train_max);
  m_learned.reserve(n_train_max);
  backend_cost->reserve_additional(budget);
  backend_mem->reserve_additional(budget);

  // Per-trajectory workspace arena plus the persistent candidate-feature
  // buffer (CandidateView needs a Matrix&, so it cannot live in the
  // arena; it shrinks monotonically, so one reservation serves the run).
  linalg::Matrix x_active_buf;
  x_active_buf.reserve(active.size(), x_scaled_.cols());
  linalg::Workspace ws;
  {
    // Pre-size one chunk at the worst-case pass footprint the two
    // backends report — the first backend's outputs stay live while the
    // second predicts, so the bound is max(out_1 + scratch_1,
    // out_1 + out_2 + scratch_2). For two exact backends this is exactly
    // the historical 4*m0 + z_peak bound, so no pass ever touches the
    // heap and the arena's footprint is flat from the first pass (the
    // check.sh gate).
    const std::size_t m0 = active.size();
    const std::size_t n0 = learned.size();
    const gp::WorkspaceBound bound_cost =
        backend_cost->workspace_bound(n0, m0, budget);
    const gp::WorkspaceBound bound_mem =
        backend_mem->workspace_bound(n0, m0, budget);
    const std::size_t doubles =
        std::max(bound_cost.outputs + bound_cost.scratch,
                 bound_cost.outputs + bound_mem.outputs + bound_mem.scratch);
    if (doubles != 0) {
      ws.alloc(doubles);
      ws.reset();
    }
  }
  std::size_t arena_cap_prev = ws.capacity_doubles();
  std::size_t arena_steady_growth = 0;
  std::size_t arena_passes = 0;

  // Captures the complete driver state for checkpoint/resume.
  const auto snapshot = [&]() {
    TrajectoryCheckpoint s;
    s.fingerprint = compat;
    s.passes = passes;
    s.trained = trained;
    s.learned.assign(learned.begin(), learned.end());
    s.active.assign(active.begin(), active.end());
    s.c_learned = c_learned;
    s.m_learned = m_learned;
    s.theta_cost = backend_cost->log_params();
    s.theta_mem = backend_mem->log_params();
    s.backend_state_cost = backend_cost->save_state();
    s.backend_state_mem = backend_mem->save_state();
    s.rng = rng.save_state();
    s.cc = cc;
    s.cr = cr;
    s.last_rmse_cost = last_rmse_cost;
    s.last_rmse_mem = last_rmse_mem;
    s.last_rmse_weighted = last_rmse_cost_weighted;
    s.last_record_evaluated = last_record_evaluated;
    s.initial_rmse_cost = result.initial_rmse_cost;
    s.initial_rmse_mem = result.initial_rmse_mem;
    s.stable_streak = stable_streak;
    s.previous_cost_mu_log = previous_cost_mu_log;
    s.censored_count = result.censored_count;
    s.censored_cost = result.censored_cost;
    if (injector) {
      const auto hits = injector->hit_counters();
      const auto fires = injector->fire_counters();
      std::copy(hits.begin(), hits.end(), s.fault_hits.begin());
      std::copy(fires.begin(), fires.end(), s.fault_fires.begin());
    }
    s.iterations = result.iterations;
    return s;
  };
  std::size_t new_passes = 0;  // passes executed by THIS process
  const auto maybe_checkpoint = [&]() {
    if (checkpoint == nullptr || checkpoint->path.empty()) return;
    if (checkpoint->stride == 0 || new_passes % checkpoint->stride != 0) return;
    const trace::ScopedTimer timer("checkpoint");
    trace::count("sim.checkpoints");
    save_checkpoint(snapshot(), checkpoint->path, checkpoint->retain);
  };

  bool halted = false;
  while (!active.empty()) {
    if ((retry_policy ? trained : passes) >= budget) break;
    if (checkpoint != nullptr && checkpoint->halt_after_iterations != 0 &&
        new_passes >= checkpoint->halt_after_iterations) {
      halted = true;
      break;
    }
    trace::count("sim.iterations");

    // Arena steadiness bookkeeping: after the pre-warmed first pass the
    // arena's owned capacity must stay flat — any growth past pass 0 is a
    // sizing bug and trips the check.sh zero-allocation gate via the
    // arena.steady_growth counter (DESIGN.md §10).
    if (arena_passes > 0 && ws.capacity_doubles() > arena_cap_prev) {
      ++arena_steady_growth;
    }
    arena_cap_prev = ws.capacity_doubles();
    ++arena_passes;
    const linalg::Workspace::Scope pass_scope(ws);

    // Algorithm 1, lines 3-4: predict over remaining candidates. Each
    // backend runs its own posterior sweep (the exact backend reproduces
    // the historical incremental-cross / fused-batch / plain branching
    // internally, counters included); outputs land in spans that stay
    // valid until the backend's next fit/add_point/predict call or the
    // pass scope rewinds.
    gather_rows_into(x_scaled_, active, x_active_buf);
    const gp::CandidateRef pool{x_active_buf, active};
    std::span<const double> mu_c;
    std::span<const double> sd_c;
    std::span<const double> mu_m;
    std::span<const double> sd_m;
    {
      const trace::ScopedTimer timer("predict");
      const gp::PosteriorSpans post_cost =
          backend_cost->predict_candidates(pool, ws);
      const gp::PosteriorSpans post_mem =
          backend_mem->predict_candidates(pool, ws);
      mu_c = post_cost.mean;
      sd_c = post_cost.stddev;
      mu_m = post_mem.mean;
      sd_m = post_mem.stddev;
    }

    const CandidateView view{x_active_buf, mu_c, sd_c, mu_m, sd_m};

    // Line 5: strategy decision.
    std::optional<std::size_t> pick;
    {
      const trace::ScopedTimer timer("select");
      pick = strategy.select(view, rng);
    }
    if (!pick) {
      result.early_stopped = true;
      result.stop_reason = StopReason::kNoSafeCandidates;
      break;
    }
    const std::size_t local = *pick;
    if (local >= active.size()) {
      throw std::logic_error("AlSimulator: strategy returned invalid index");
    }
    const std::size_t row = active[local];

    // Failure decision for this acquisition. Each injectable site is
    // consulted exactly once per pass (whatever fired earlier), so hit
    // counters advance in lockstep with the pass count — schedules stay
    // simple to reason about and to restore from a checkpoint. When no
    // injector is armed and failure awareness is off, every branch is
    // false and the pass is byte-identical to the historical loop.
    CensorKind censor = CensorKind::kNone;
    {
      const bool injected_oom = faults::fire(faults::Site::kAcquireOom);
      const bool injected_timeout = faults::fire(faults::Site::kAcquireTimeout);
      const bool injected_nan = faults::fire(faults::Site::kDataNanRow);
      if (injected_timeout) {
        if (resilient_cost != nullptr) {
          resilient_cost->record_external_event(
              resilience::Event::kAcquireTimeout);
        }
        if (resilient_mem != nullptr) {
          resilient_mem->record_external_event(
              resilience::Event::kAcquireTimeout);
        }
      }
      if (injected_oom) {
        censor = CensorKind::kOom;
      } else if (injected_timeout) {
        censor = CensorKind::kTimeout;
      } else if (injected_nan) {
        censor = CensorKind::kNanRow;
      } else if (options_.failures.failure_aware &&
                 log_mem_[row] > limit_log10_) {
        censor = CensorKind::kOverLimit;
      }
    }
    const bool train = censor == CensorKind::kNone ||
                       options_.failures.policy == CensorPolicy::kPenalizedLabel;

    IterationRecord record;
    record.iteration = result.iterations.size();
    record.dataset_row = row;
    record.candidates_before = active.size();
    record.censor = censor;
    {
      // Lines 6-9: reveal the sample's measurements and move it from
      // Active to Learned. A censored acquisition still burned its true
      // cost (the core-hours were spent before the failure), so CC — and
      // CR, since nothing usable came back — absorb the full cost.
      const trace::ScopedTimer timer("reveal");
      record.actual_cost = dataset_.cost[row];
      record.actual_memory = dataset_.memory[row];
      record.predicted_cost_log10 = mu_c[local];
      record.predicted_cost_sigma = sd_c[local];
      record.predicted_mem_log10 = mu_m[local];
      record.predicted_mem_sigma = sd_m[local];

      cc += record.actual_cost;
      if (censor == CensorKind::kNone) {
        cr += individual_regret(record.actual_cost, record.actual_memory,
                                result.memory_limit_mb);
      } else {
        cr += record.actual_cost;
      }
      record.cumulative_cost = cc;
      record.cumulative_regret = cr;

      active.erase(active.begin() + static_cast<std::ptrdiff_t>(local));
      // The candidate left the pool: backends drop whatever per-candidate
      // state they cache (the exact backend's cross-matrix column and
      // prior-diagonal entry — pure data movement, remaining bits kept).
      backend_cost->remove_candidate(local);
      backend_mem->remove_candidate(local);
    }

    if (censor != CensorKind::kNone) {
      trace::count("sim.censored");
      ++result.censored_count;
      result.censored_cost += record.actual_cost;
    }

    if (!train) {
      // kDropCensored / kRetryNextCandidate: the models never see the
      // point. RMSE columns carry the last computed values (the models
      // did not change, so nothing new to evaluate); last_record_evaluated
      // is deliberately untouched — whether the carried value is current
      // depends on the last TRAINED pass, which already set it.
      record.rmse_cost = last_rmse_cost;
      record.rmse_mem = last_rmse_mem;
      record.rmse_cost_weighted = last_rmse_cost_weighted;
      result.iterations.push_back(record);
      ++passes;
      ++new_passes;
      maybe_checkpoint();
      continue;
    }

    // Labels the models train on: the true measurements for a clean
    // acquisition; under kPenalizedLabel a censored run contributes its
    // observed cost and a memory label just above the limit ("it crashed
    // up there"), steering the memory model away from the region.
    const double c_label = log_cost_[row];
    const double m_label = censor == CensorKind::kNone
                               ? log_mem_[row]
                               : limit_log10_ + options_.failures.penalty_offset;
    learned.push_back(row);
    c_learned.push_back(c_label);
    m_learned.push_back(m_label);

    // Lines 10-11: warm-started refit of both models on Init + Learned.
    // Each backend appends the point and refits its own way (the exact
    // backend through fit_add_point or the full refit per the plumbing
    // flags, approximate backends through their bounded updates). `after`
    // describes the POST-acquisition candidate pool for cross-cache row
    // appends; x_active_buf is free for reuse here — the CandidateView
    // and its record reads are done for this pass.
    {
      const trace::ScopedTimer timer("refit");
      std::optional<gp::CandidateRef> after;
      if (!active.empty()) {
        if (base == nullptr) gather_rows_into(x_scaled_, active, x_active_buf);
        after.emplace(gp::CandidateRef{x_active_buf, active});
      }
      const gp::CandidateRef* after_ptr = after ? &*after : nullptr;
      backend_cost->add_point(x_scaled_.row(row), c_label, row, rng, after_ptr);
      backend_mem->add_point(x_scaled_.row(row), m_label, row, rng, after_ptr);
    }

    // Metrics after this iteration (Eq. 10, non-log space). The final
    // planned iteration always evaluates so the trajectory never ends on
    // a carried-over value. `passes` here still holds this pass's 0-based
    // index (incremented below), matching the historical `iter`.
    const bool final_pass =
        (retry_policy ? trained : passes) + 1 == budget;
    const bool evaluate_now = options_.rmse_stride <= 1 ||
                              passes % options_.rmse_stride == 0 ||
                              final_pass ||
                              active.empty() || options_.stopping.enabled;
    if (evaluate_now) {
      const trace::ScopedTimer timer("rmse");
      last_rmse_cost = test_rmse(*backend_cost, cost_test, &cost_mu_log);
      last_rmse_mem = test_rmse(*backend_mem, mem_test);
      last_rmse_cost_weighted = weighted(cost_mu_log);
    }
    last_record_evaluated = evaluate_now;
    record.rmse_cost = last_rmse_cost;
    record.rmse_mem = last_rmse_mem;
    record.rmse_cost_weighted = last_rmse_cost_weighted;

    result.iterations.push_back(record);
    ++trained;
    ++passes;
    ++new_passes;

    // Stabilizing-predictions stopping rule (paper Sec. V-D).
    if (options_.stopping.enabled && evaluate_now) {
      double mean_abs_change = 0.0;
      for (std::size_t t = 0; t < cost_mu_log.size(); ++t) {
        mean_abs_change += std::abs(cost_mu_log[t] - previous_cost_mu_log[t]);
      }
      mean_abs_change /= static_cast<double>(cost_mu_log.size());
      previous_cost_mu_log = cost_mu_log;
      stable_streak =
          mean_abs_change < options_.stopping.tolerance ? stable_streak + 1 : 0;
      if (passes >= options_.stopping.min_iterations &&
          stable_streak >= options_.stopping.patience) {
        result.early_stopped = true;
        result.stop_reason = StopReason::kStabilized;
        break;
      }
    }
    maybe_checkpoint();
  }
  if (halted) {
    result.stop_reason = StopReason::kCheckpointHalt;
    if (checkpoint != nullptr && !checkpoint->path.empty()) {
      save_checkpoint(snapshot(), checkpoint->path, checkpoint->retain);
    }
  } else if (result.stop_reason != StopReason::kNoSafeCandidates &&
             result.stop_reason != StopReason::kStabilized) {
    result.stop_reason = active.empty() ? StopReason::kActiveExhausted
                                        : StopReason::kIterationBudget;
  }

  // An early stop between stride points would otherwise leave the last
  // record with a carried-over RMSE; the models have not changed since
  // that iteration's refit, so evaluating now yields exactly the value a
  // per-iteration evaluation would have recorded.
  if (!halted && !last_record_evaluated && !result.iterations.empty()) {
    const trace::ScopedTimer timer("rmse");
    IterationRecord& last = result.iterations.back();
    last.rmse_cost = test_rmse(*backend_cost, cost_test, &cost_mu_log);
    last.rmse_mem = test_rmse(*backend_mem, mem_test);
    last.rmse_cost_weighted = weighted(cost_mu_log);
  }

  // A completed trajectory retires its checkpoint; a halted one leaves the
  // file in place for the next shard to resume.
  if (!halted && checkpoint != nullptr && !checkpoint->path.empty()) {
    std::error_code ec;
    std::filesystem::remove(checkpoint->path, ec);
  }

  // Arena instrumentation. Counters exist only when counted, and every
  // count below is guarded on nonzero, so pre-existing golden trace
  // bytes are untouched when the arena was never used.
  if (const std::size_t cap_bytes = ws.capacity_doubles() * sizeof(double);
      cap_bytes != 0) {
    trace::count("arena.bytes_peak", cap_bytes);
  }
  if (const std::size_t peak = ws.bytes_peak(); peak != 0) {
    trace::count("arena.inuse_peak_bytes", peak);
  }
  if (ws.heap_allocations() != 0) {
    trace::count("arena.chunk_allocs", ws.heap_allocations());
  }
  if (arena_steady_growth != 0) {
    trace::count("arena.steady_growth", arena_steady_growth);
  }
  if (ws.open_scopes() != 0) {
    trace::count("arena.scope_leaks", ws.open_scopes());
  }

  if (trace::enabled()) result.trace = collector.report();
  result.trace.fingerprint = fingerprint;
  return result;
}

TrajectoryResult AlSimulator::run_batched(const Strategy& strategy,
                                          std::size_t batch_size,
                                          const data::Partition& partition,
                                          stats::Rng& rng) const {
  if (batch_size == 0) {
    throw std::invalid_argument("run_batched: batch_size must be >= 1");
  }

  TrajectoryResult result;
  result.strategy_name =
      strategy.name() + " (batch=" + std::to_string(batch_size) + ")";
  result.partition = partition;
  result.memory_limit_mb = memory_limit_mb();

  trace::TraceCollector collector;
  const trace::ScopedCollector trace_scope(collector);

  const linalg::Matrix x_test = gather_rows(x_scaled_, partition.test);
  const std::vector<double> cost_test = gather(dataset_.cost, partition.test);
  const std::vector<double> mem_test = gather(dataset_.memory, partition.test);

  // Batch rounds run the plain fit/predict recipe (no incremental caches),
  // so the backends only need their kind — the exact-path plumbing flags
  // never come into play through the predict()/predict_mean() entry
  // points used below.
  const auto kernel_factory = [this] { return make_kernel(); };
  const std::unique_ptr<gp::PosteriorBackend> backend_cost =
      gp::make_resilient_backend(options_.backend, options_.resilience,
                                 kernel_factory, options_.initial_fit);
  const std::unique_ptr<gp::PosteriorBackend> backend_mem =
      gp::make_resilient_backend(options_.backend, options_.resilience,
                                 kernel_factory, options_.initial_fit);

  std::vector<std::size_t> learned(partition.init);
  linalg::Matrix x_learned = gather_rows(x_scaled_, learned);
  std::vector<double> c_learned = gather(log_cost_, learned);
  std::vector<double> m_learned = gather(log_mem_, learned);
  {
    const trace::ScopedTimer timer("init");
    backend_cost->fit(x_learned, c_learned, rng);
    backend_mem->fit(x_learned, m_learned, rng);
  }
  backend_cost->set_fit_options(options_.refit);
  backend_mem->set_fit_options(options_.refit);

  const auto test_rmse = [&](gp::PosteriorBackend& model,
                             std::span<const double> actual) {
    const std::vector<double> mu =
        data::exp10_transform(model.predict_mean(x_test));
    return rmse(mu, actual);
  };
  {
    const trace::ScopedTimer timer("rmse");
    result.initial_rmse_cost = test_rmse(*backend_cost, cost_test);
    result.initial_rmse_mem = test_rmse(*backend_mem, mem_test);
  }

  std::vector<std::size_t> active(partition.active);
  double cc = 0.0;
  double cr = 0.0;
  const std::size_t budget = options_.max_iterations == 0
                                 ? active.size()
                                 : std::min(options_.max_iterations, active.size());
  std::size_t selected_total = 0;

  while (selected_total < budget && !active.empty()) {
    trace::count("sim.rounds");

    // One prediction pass per round; within the round the model is frozen
    // and already-picked candidates are simply excluded from the view.
    const linalg::Matrix x_active = gather_rows(x_scaled_, active);
    gp::Prediction pred_cost;
    gp::Prediction pred_mem;
    {
      const trace::ScopedTimer timer("predict");
      pred_cost = backend_cost->predict(x_active);
      pred_mem = backend_mem->predict(x_active);
    }

    std::vector<std::size_t> remaining(active.size());
    for (std::size_t i = 0; i < active.size(); ++i) remaining[i] = i;

    std::vector<std::size_t> picked_locals;
    bool exhausted = false;
    const std::size_t round_quota =
        std::min(batch_size, budget - selected_total);
    {
      const trace::ScopedTimer timer("select");
      while (picked_locals.size() < round_quota && !remaining.empty()) {
        linalg::Matrix x_view(remaining.size(), x_scaled_.cols());
        std::vector<double> mu_c(remaining.size());
        std::vector<double> sd_c(remaining.size());
        std::vector<double> mu_m(remaining.size());
        std::vector<double> sd_m(remaining.size());
        for (std::size_t v = 0; v < remaining.size(); ++v) {
          const std::size_t local = remaining[v];
          for (std::size_t c = 0; c < x_scaled_.cols(); ++c) {
            x_view(v, c) = x_active(local, c);
          }
          mu_c[v] = pred_cost.mean[local];
          sd_c[v] = pred_cost.stddev[local];
          mu_m[v] = pred_mem.mean[local];
          sd_m[v] = pred_mem.stddev[local];
        }
        const CandidateView view{x_view, mu_c, sd_c, mu_m, sd_m};
        const std::optional<std::size_t> pick = strategy.select(view, rng);
        if (!pick) {
          exhausted = true;
          break;
        }
        picked_locals.push_back(remaining[*pick]);
        remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(*pick));
      }
    }
    if (picked_locals.empty()) {
      result.early_stopped = true;
      result.stop_reason = StopReason::kNoSafeCandidates;
      break;
    }

    // Reveal the whole batch, then retrain once.
    trace::count("sim.iterations", picked_locals.size());
    std::vector<IterationRecord> round_records;
    {
      const trace::ScopedTimer timer("reveal");
      for (const std::size_t local : picked_locals) {
        const std::size_t row = active[local];
        IterationRecord record;
        record.iteration = selected_total + round_records.size();
        record.dataset_row = row;
        record.candidates_before = active.size();
        record.actual_cost = dataset_.cost[row];
        record.actual_memory = dataset_.memory[row];
        record.predicted_cost_log10 = pred_cost.mean[local];
        record.predicted_cost_sigma = pred_cost.stddev[local];
        record.predicted_mem_log10 = pred_mem.mean[local];
        record.predicted_mem_sigma = pred_mem.stddev[local];
        cc += record.actual_cost;
        cr += individual_regret(record.actual_cost, record.actual_memory,
                                result.memory_limit_mb);
        record.cumulative_cost = cc;
        record.cumulative_regret = cr;
        learned.push_back(row);
        round_records.push_back(record);
      }
      // Remove picked rows from Active (descending local order keeps
      // indices valid).
      std::vector<std::size_t> sorted_locals(picked_locals);
      std::sort(sorted_locals.rbegin(), sorted_locals.rend());
      for (const std::size_t local : sorted_locals) {
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(local));
      }
      selected_total += picked_locals.size();
    }

    {
      const trace::ScopedTimer timer("refit");
      x_learned = gather_rows(x_scaled_, learned);
      c_learned = gather(log_cost_, learned);
      m_learned = gather(log_mem_, learned);
      backend_cost->fit(x_learned, c_learned, rng);
      backend_mem->fit(x_learned, m_learned, rng);
    }

    double rmse_cost_now = 0.0;
    double rmse_mem_now = 0.0;
    double rmse_weighted_now = 0.0;
    {
      const trace::ScopedTimer timer("rmse");
      const std::vector<double> round_mu =
          data::exp10_transform(backend_cost->predict_mean(x_test));
      rmse_cost_now = rmse(round_mu, cost_test);
      rmse_mem_now = test_rmse(*backend_mem, mem_test);
      rmse_weighted_now = weighted_rmse(round_mu, cost_test, cost_test);
    }
    for (IterationRecord& record : round_records) {
      record.rmse_cost = rmse_cost_now;
      record.rmse_mem = rmse_mem_now;
      record.rmse_cost_weighted = rmse_weighted_now;
      result.iterations.push_back(record);
    }
    if (exhausted) {
      result.early_stopped = true;
      result.stop_reason = StopReason::kNoSafeCandidates;
      break;
    }
  }
  if (result.stop_reason != StopReason::kNoSafeCandidates) {
    result.stop_reason = active.empty() ? StopReason::kActiveExhausted
                                        : StopReason::kIterationBudget;
  }

  if (trace::enabled()) result.trace = collector.report();
  result.trace.fingerprint =
      trajectory_fingerprint(result.strategy_name, partition);
  return result;
}

}  // namespace alamr::core
