#include "alamr/gp/kernels.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace alamr::gp {

namespace {

void check_param_count(std::span<const double> theta, std::size_t expected,
                       const char* who) {
  if (theta.size() != expected) {
    throw std::invalid_argument(std::string(who) + ": wrong parameter count");
  }
}

double checked_positive(double v, const char* who) {
  if (!(v > 0.0) || !std::isfinite(v)) {
    throw std::invalid_argument(std::string(who) + ": value must be positive");
  }
  return v;
}

}  // namespace

// ---- Kernel: distance-cached defaults --------------------------------------
//
// Fallbacks for kernels without a bespoke cached path: evaluate directly on
// the point sets the cache retains. Correct (and still bit-identical, since
// it IS the direct path) but without the refit speedup; every built-in
// kernel overrides these.

void Kernel::prepare_distances(PairwiseDistances&) const {}

Matrix Kernel::gram_cached(const PairwiseDistances& dist) const {
  return gram(dist.x());
}

Matrix Kernel::gram_with_gradients_cached(const PairwiseDistances& dist,
                                          std::vector<Matrix>& gradients) const {
  return gram_with_gradients(dist.x(), gradients);
}

Matrix Kernel::cross_cached(const PairwiseDistances& dist) const {
  return cross(dist.x(), dist.y());
}

// ---- ConstantKernel --------------------------------------------------------

ConstantKernel::ConstantKernel(double value, double lower, double upper)
    : value_(checked_positive(value, "ConstantKernel")),
      lower_(checked_positive(lower, "ConstantKernel")),
      upper_(checked_positive(upper, "ConstantKernel")) {}

std::vector<double> ConstantKernel::log_params() const {
  return {std::log(value_)};
}

void ConstantKernel::set_log_params(std::span<const double> theta) {
  check_param_count(theta, 1, "ConstantKernel");
  value_ = std::exp(theta[0]);
}

opt::Bounds ConstantKernel::log_bounds() const {
  return {{std::log(lower_)}, {std::log(upper_)}};
}

Matrix ConstantKernel::gram(const Matrix& x) const {
  return Matrix(x.rows(), x.rows(), value_);
}

Matrix ConstantKernel::gram_with_gradients(const Matrix& x,
                                           std::vector<Matrix>& gradients) const {
  gradients.clear();
  // d(c)/d(log c) = c everywhere.
  gradients.emplace_back(x.rows(), x.rows(), value_);
  return gram(x);
}

Matrix ConstantKernel::cross(const Matrix& x, const Matrix& y) const {
  return Matrix(x.rows(), y.rows(), value_);
}

Matrix ConstantKernel::gram_cached(const PairwiseDistances& dist) const {
  return Matrix(dist.rows(), dist.rows(), value_);
}

Matrix ConstantKernel::gram_with_gradients_cached(
    const PairwiseDistances& dist, std::vector<Matrix>& gradients) const {
  gradients.clear();
  gradients.emplace_back(dist.rows(), dist.rows(), value_);
  return Matrix(dist.rows(), dist.rows(), value_);
}

Matrix ConstantKernel::cross_cached(const PairwiseDistances& dist) const {
  return Matrix(dist.rows(), dist.cols(), value_);
}

std::vector<double> ConstantKernel::diagonal(const Matrix& x) const {
  return std::vector<double>(x.rows(), value_);
}

std::unique_ptr<Kernel> ConstantKernel::clone() const {
  return std::make_unique<ConstantKernel>(*this);
}

std::string ConstantKernel::describe() const {
  std::ostringstream os;
  os << "Constant(" << value_ << ")";
  return os.str();
}

// ---- WhiteKernel -----------------------------------------------------------

WhiteKernel::WhiteKernel(double noise, double lower, double upper)
    : noise_(checked_positive(noise, "WhiteKernel")),
      lower_(checked_positive(lower, "WhiteKernel")),
      upper_(checked_positive(upper, "WhiteKernel")) {}

std::vector<double> WhiteKernel::log_params() const { return {std::log(noise_)}; }

void WhiteKernel::set_log_params(std::span<const double> theta) {
  check_param_count(theta, 1, "WhiteKernel");
  noise_ = std::exp(theta[0]);
}

opt::Bounds WhiteKernel::log_bounds() const {
  return {{std::log(lower_)}, {std::log(upper_)}};
}

Matrix WhiteKernel::gram(const Matrix& x) const {
  Matrix k(x.rows(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) k(i, i) = noise_;
  return k;
}

Matrix WhiteKernel::gram_with_gradients(const Matrix& x,
                                        std::vector<Matrix>& gradients) const {
  gradients.clear();
  Matrix g(x.rows(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) g(i, i) = noise_;
  gradients.push_back(g);
  return g;
}

Matrix WhiteKernel::cross(const Matrix& x, const Matrix& y) const {
  return Matrix(x.rows(), y.rows(), 0.0);
}

Matrix WhiteKernel::gram_cached(const PairwiseDistances& dist) const {
  Matrix k(dist.rows(), dist.rows());
  for (std::size_t i = 0; i < dist.rows(); ++i) k(i, i) = noise_;
  return k;
}

Matrix WhiteKernel::gram_with_gradients_cached(
    const PairwiseDistances& dist, std::vector<Matrix>& gradients) const {
  gradients.clear();
  Matrix g(dist.rows(), dist.rows());
  for (std::size_t i = 0; i < dist.rows(); ++i) g(i, i) = noise_;
  gradients.push_back(g);
  return g;
}

Matrix WhiteKernel::cross_cached(const PairwiseDistances& dist) const {
  return Matrix(dist.rows(), dist.cols(), 0.0);
}

std::vector<double> WhiteKernel::diagonal(const Matrix& x) const {
  return std::vector<double>(x.rows(), noise_);
}

std::unique_ptr<Kernel> WhiteKernel::clone() const {
  return std::make_unique<WhiteKernel>(*this);
}

std::string WhiteKernel::describe() const {
  std::ostringstream os;
  os << "White(" << noise_ << ")";
  return os.str();
}

// ---- RbfKernel -------------------------------------------------------------

RbfKernel::RbfKernel(double length_scale, double lower, double upper)
    : length_(checked_positive(length_scale, "RbfKernel")),
      lower_(checked_positive(lower, "RbfKernel")),
      upper_(checked_positive(upper, "RbfKernel")) {}

std::vector<double> RbfKernel::log_params() const { return {std::log(length_)}; }

void RbfKernel::set_log_params(std::span<const double> theta) {
  check_param_count(theta, 1, "RbfKernel");
  length_ = std::exp(theta[0]);
}

opt::Bounds RbfKernel::log_bounds() const {
  return {{std::log(lower_)}, {std::log(upper_)}};
}

Matrix RbfKernel::gram(const Matrix& x) const {
  const double inv_2l2 = 1.0 / (2.0 * length_ * length_);
  Matrix k(x.rows(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      const double v = std::exp(-linalg::squared_distance(x.row(i), x.row(j)) * inv_2l2);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix RbfKernel::gram_with_gradients(const Matrix& x,
                                      std::vector<Matrix>& gradients) const {
  const double inv_l2 = 1.0 / (length_ * length_);
  Matrix k(x.rows(), x.rows());
  Matrix g(x.rows(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    k(i, i) = 1.0;
    g(i, i) = 0.0;
    for (std::size_t j = 0; j < i; ++j) {
      const double r2 = linalg::squared_distance(x.row(i), x.row(j));
      const double v = std::exp(-0.5 * r2 * inv_l2);
      // d/d(log l) exp(-r2 / (2 l^2)) = v * r2 / l^2.
      const double dv = v * r2 * inv_l2;
      k(i, j) = v;
      k(j, i) = v;
      g(i, j) = dv;
      g(j, i) = dv;
    }
  }
  gradients.clear();
  gradients.push_back(std::move(g));
  return k;
}

Matrix RbfKernel::cross(const Matrix& x, const Matrix& y) const {
  if (x.cols() != y.cols()) throw std::invalid_argument("RbfKernel::cross: dim mismatch");
  const double inv_2l2 = 1.0 / (2.0 * length_ * length_);
  Matrix k(x.rows(), y.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < y.rows(); ++j) {
      k(i, j) = std::exp(-linalg::squared_distance(x.row(i), y.row(j)) * inv_2l2);
    }
  }
  return k;
}

// The cached variants replay the exact per-entry expressions of the direct
// paths above on the cached squared distances: gram/cross use
// (-r2) * inv_2l2, gram_with_gradients uses -0.5 * r2 * inv_l2 — the two
// direct paths deliberately differ and the cached ones match each op for
// op, so results are bit-identical either way.

Matrix RbfKernel::gram_cached(const PairwiseDistances& dist) const {
  const double inv_2l2 = 1.0 / (2.0 * length_ * length_);
  const Matrix& r2 = dist.squared();
  const std::size_t n = dist.rows();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    const auto r2i = r2.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double v = std::exp(-r2i[j] * inv_2l2);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix RbfKernel::gram_with_gradients_cached(
    const PairwiseDistances& dist, std::vector<Matrix>& gradients) const {
  const double inv_l2 = 1.0 / (length_ * length_);
  const Matrix& r2 = dist.squared();
  const std::size_t n = dist.rows();
  Matrix k(n, n);
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    g(i, i) = 0.0;
    const auto r2i = r2.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const double v = std::exp(-0.5 * r2i[j] * inv_l2);
      const double dv = v * r2i[j] * inv_l2;
      k(i, j) = v;
      k(j, i) = v;
      g(i, j) = dv;
      g(j, i) = dv;
    }
  }
  gradients.clear();
  gradients.push_back(std::move(g));
  return k;
}

Matrix RbfKernel::cross_cached(const PairwiseDistances& dist) const {
  const double inv_2l2 = 1.0 / (2.0 * length_ * length_);
  const Matrix& r2 = dist.squared();
  Matrix k(dist.rows(), dist.cols());
  for (std::size_t i = 0; i < dist.rows(); ++i) {
    const auto r2i = r2.row(i);
    const auto ki = k.row(i);
    for (std::size_t j = 0; j < dist.cols(); ++j) {
      ki[j] = std::exp(-r2i[j] * inv_2l2);
    }
  }
  return k;
}

std::vector<double> RbfKernel::diagonal(const Matrix& x) const {
  return std::vector<double>(x.rows(), 1.0);
}

std::unique_ptr<Kernel> RbfKernel::clone() const {
  return std::make_unique<RbfKernel>(*this);
}

std::string RbfKernel::describe() const {
  std::ostringstream os;
  os << "RBF(l=" << length_ << ")";
  return os.str();
}

// ---- RbfArdKernel ----------------------------------------------------------

RbfArdKernel::RbfArdKernel(std::vector<double> length_scales, double lower,
                           double upper)
    : lengths_(std::move(length_scales)),
      lower_(checked_positive(lower, "RbfArdKernel")),
      upper_(checked_positive(upper, "RbfArdKernel")) {
  if (lengths_.empty()) {
    throw std::invalid_argument("RbfArdKernel: need at least one length scale");
  }
  for (const double l : lengths_) checked_positive(l, "RbfArdKernel");
}

std::vector<double> RbfArdKernel::log_params() const {
  std::vector<double> theta(lengths_.size());
  for (std::size_t i = 0; i < lengths_.size(); ++i) theta[i] = std::log(lengths_[i]);
  return theta;
}

void RbfArdKernel::set_log_params(std::span<const double> theta) {
  check_param_count(theta, lengths_.size(), "RbfArdKernel");
  for (std::size_t i = 0; i < lengths_.size(); ++i) lengths_[i] = std::exp(theta[i]);
}

opt::Bounds RbfArdKernel::log_bounds() const {
  return {std::vector<double>(lengths_.size(), std::log(lower_)),
          std::vector<double>(lengths_.size(), std::log(upper_))};
}

namespace {

// Reciprocal squared length scales, hoisted out of the pair loops. Both the
// direct and the cached ARD paths accumulate q += (diff * diff) * inv_l2[d]
// — the same expression shape — so they agree bit for bit.
std::vector<double> inverse_squared(std::span<const double> lengths) {
  std::vector<double> inv_l2(lengths.size());
  for (std::size_t d = 0; d < lengths.size(); ++d) {
    inv_l2[d] = 1.0 / (lengths[d] * lengths[d]);
  }
  return inv_l2;
}

}  // namespace

Matrix RbfArdKernel::gram(const Matrix& x) const {
  if (x.cols() != lengths_.size()) {
    throw std::invalid_argument("RbfArdKernel: dimension mismatch");
  }
  const std::vector<double> inv_l2 = inverse_squared(lengths_);
  Matrix k(x.rows(), x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    k(i, i) = 1.0;
    const auto xi = x.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const auto xj = x.row(j);
      double q = 0.0;
      for (std::size_t d = 0; d < lengths_.size(); ++d) {
        const double diff = xi[d] - xj[d];
        q += (diff * diff) * inv_l2[d];
      }
      const double v = std::exp(-0.5 * q);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix RbfArdKernel::gram_with_gradients(const Matrix& x,
                                         std::vector<Matrix>& gradients) const {
  if (x.cols() != lengths_.size()) {
    throw std::invalid_argument("RbfArdKernel: dimension mismatch");
  }
  const std::size_t n = x.rows();
  const std::size_t d = lengths_.size();
  const std::vector<double> inv_l2 = inverse_squared(lengths_);
  Matrix k(n, n);
  gradients.assign(d, Matrix(n, n));
  std::vector<double> z2(d);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    const auto xi = x.row(i);
    for (std::size_t j = 0; j < i; ++j) {
      const auto xj = x.row(j);
      double q = 0.0;
      for (std::size_t dim = 0; dim < d; ++dim) {
        const double diff = xi[dim] - xj[dim];
        z2[dim] = (diff * diff) * inv_l2[dim];
        q += z2[dim];
      }
      const double v = std::exp(-0.5 * q);
      k(i, j) = v;
      k(j, i) = v;
      for (std::size_t dim = 0; dim < d; ++dim) {
        // d/d(log l_dim) = v * (x_dim - x'_dim)^2 / l_dim^2.
        const double g = v * z2[dim];
        gradients[dim](i, j) = g;
        gradients[dim](j, i) = g;
      }
    }
  }
  return k;
}

Matrix RbfArdKernel::cross(const Matrix& x, const Matrix& y) const {
  if (x.cols() != lengths_.size() || y.cols() != lengths_.size()) {
    throw std::invalid_argument("RbfArdKernel::cross: dimension mismatch");
  }
  const std::vector<double> inv_l2 = inverse_squared(lengths_);
  Matrix k(x.rows(), y.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto xi = x.row(i);
    for (std::size_t j = 0; j < y.rows(); ++j) {
      const auto yj = y.row(j);
      double q = 0.0;
      for (std::size_t dim = 0; dim < lengths_.size(); ++dim) {
        const double diff = xi[dim] - yj[dim];
        q += (diff * diff) * inv_l2[dim];
      }
      k(i, j) = std::exp(-0.5 * q);
    }
  }
  return k;
}

void RbfArdKernel::prepare_distances(PairwiseDistances& dist) const {
  dist.ensure_components();
}

Matrix RbfArdKernel::gram_cached(const PairwiseDistances& dist) const {
  if (dist.dim() != lengths_.size()) {
    throw std::invalid_argument("RbfArdKernel: dimension mismatch");
  }
  if (!dist.has_components()) {
    throw std::invalid_argument(
        "RbfArdKernel: cache lacks per-dimension components; call "
        "prepare_distances first");
  }
  const std::size_t n = dist.rows();
  const std::size_t d = lengths_.size();
  const std::vector<double> inv_l2 = inverse_squared(lengths_);
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      double q = 0.0;
      for (std::size_t dim = 0; dim < d; ++dim) {
        q += dist.component(dim)(i, j) * inv_l2[dim];
      }
      const double v = std::exp(-0.5 * q);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix RbfArdKernel::gram_with_gradients_cached(
    const PairwiseDistances& dist, std::vector<Matrix>& gradients) const {
  if (dist.dim() != lengths_.size()) {
    throw std::invalid_argument("RbfArdKernel: dimension mismatch");
  }
  if (!dist.has_components()) {
    throw std::invalid_argument(
        "RbfArdKernel: cache lacks per-dimension components; call "
        "prepare_distances first");
  }
  const std::size_t n = dist.rows();
  const std::size_t d = lengths_.size();
  const std::vector<double> inv_l2 = inverse_squared(lengths_);
  Matrix k(n, n);
  gradients.assign(d, Matrix(n, n));
  std::vector<double> z2(d);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      double q = 0.0;
      for (std::size_t dim = 0; dim < d; ++dim) {
        z2[dim] = dist.component(dim)(i, j) * inv_l2[dim];
        q += z2[dim];
      }
      const double v = std::exp(-0.5 * q);
      k(i, j) = v;
      k(j, i) = v;
      for (std::size_t dim = 0; dim < d; ++dim) {
        const double g = v * z2[dim];
        gradients[dim](i, j) = g;
        gradients[dim](j, i) = g;
      }
    }
  }
  return k;
}

Matrix RbfArdKernel::cross_cached(const PairwiseDistances& dist) const {
  if (dist.dim() != lengths_.size()) {
    throw std::invalid_argument("RbfArdKernel: dimension mismatch");
  }
  if (!dist.has_components()) {
    throw std::invalid_argument(
        "RbfArdKernel: cache lacks per-dimension components; call "
        "prepare_distances first");
  }
  const std::size_t d = lengths_.size();
  const std::vector<double> inv_l2 = inverse_squared(lengths_);
  Matrix k(dist.rows(), dist.cols());
  for (std::size_t i = 0; i < dist.rows(); ++i) {
    for (std::size_t j = 0; j < dist.cols(); ++j) {
      double q = 0.0;
      for (std::size_t dim = 0; dim < d; ++dim) {
        q += dist.component(dim)(i, j) * inv_l2[dim];
      }
      k(i, j) = std::exp(-0.5 * q);
    }
  }
  return k;
}

std::vector<double> RbfArdKernel::diagonal(const Matrix& x) const {
  return std::vector<double>(x.rows(), 1.0);
}

std::unique_ptr<Kernel> RbfArdKernel::clone() const {
  return std::make_unique<RbfArdKernel>(*this);
}

std::string RbfArdKernel::describe() const {
  std::ostringstream os;
  os << "RBF_ARD(l=[";
  for (std::size_t i = 0; i < lengths_.size(); ++i) {
    if (i > 0) os << ", ";
    os << lengths_[i];
  }
  os << "])";
  return os.str();
}

// ---- MaternKernel ----------------------------------------------------------

MaternKernel::MaternKernel(Nu nu, double length_scale, double lower, double upper)
    : nu_(nu),
      length_(checked_positive(length_scale, "MaternKernel")),
      lower_(checked_positive(lower, "MaternKernel")),
      upper_(checked_positive(upper, "MaternKernel")) {}

std::vector<double> MaternKernel::log_params() const {
  return {std::log(length_)};
}

void MaternKernel::set_log_params(std::span<const double> theta) {
  check_param_count(theta, 1, "MaternKernel");
  length_ = std::exp(theta[0]);
}

opt::Bounds MaternKernel::log_bounds() const {
  return {{std::log(lower_)}, {std::log(upper_)}};
}

void MaternKernel::eval(double r2, double& value, double& dlogl) const {
  const double r = std::sqrt(r2);
  switch (nu_) {
    case Nu::kHalf: {
      // k = exp(-r/l);  dk/d(log l) = k * r / l.
      const double s = r / length_;
      value = std::exp(-s);
      dlogl = value * s;
      return;
    }
    case Nu::kThreeHalves: {
      // k = (1 + s) exp(-s), s = sqrt(3) r / l;  dk/d(log l) = s^2 exp(-s).
      const double s = std::sqrt(3.0) * r / length_;
      const double e = std::exp(-s);
      value = (1.0 + s) * e;
      dlogl = s * s * e;
      return;
    }
    case Nu::kFiveHalves: {
      // k = (1 + s + s^2/3) exp(-s), s = sqrt(5) r / l;
      // dk/d(log l) = s^2 (1 + s) / 3 * exp(-s).
      const double s = std::sqrt(5.0) * r / length_;
      const double e = std::exp(-s);
      value = (1.0 + s + s * s / 3.0) * e;
      dlogl = s * s * (1.0 + s) / 3.0 * e;
      return;
    }
  }
  value = 0.0;
  dlogl = 0.0;
}

Matrix MaternKernel::gram(const Matrix& x) const {
  Matrix k(x.rows(), x.rows());
  double v = 0.0;
  double dv = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      eval(linalg::squared_distance(x.row(i), x.row(j)), v, dv);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix MaternKernel::gram_with_gradients(const Matrix& x,
                                         std::vector<Matrix>& gradients) const {
  Matrix k(x.rows(), x.rows());
  Matrix g(x.rows(), x.rows());
  double v = 0.0;
  double dv = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      eval(linalg::squared_distance(x.row(i), x.row(j)), v, dv);
      k(i, j) = v;
      k(j, i) = v;
      g(i, j) = dv;
      g(j, i) = dv;
    }
  }
  gradients.clear();
  gradients.push_back(std::move(g));
  return k;
}

Matrix MaternKernel::cross(const Matrix& x, const Matrix& y) const {
  if (x.cols() != y.cols()) {
    throw std::invalid_argument("MaternKernel::cross: dim mismatch");
  }
  Matrix k(x.rows(), y.rows());
  double v = 0.0;
  double dv = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < y.rows(); ++j) {
      eval(linalg::squared_distance(x.row(i), y.row(j)), v, dv);
      k(i, j) = v;
    }
  }
  return k;
}

Matrix MaternKernel::gram_cached(const PairwiseDistances& dist) const {
  const Matrix& r2 = dist.squared();
  const std::size_t n = dist.rows();
  Matrix k(n, n);
  double v = 0.0;
  double dv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      eval(r2(i, j), v, dv);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix MaternKernel::gram_with_gradients_cached(
    const PairwiseDistances& dist, std::vector<Matrix>& gradients) const {
  const Matrix& r2 = dist.squared();
  const std::size_t n = dist.rows();
  Matrix k(n, n);
  Matrix g(n, n);
  double v = 0.0;
  double dv = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      eval(r2(i, j), v, dv);
      k(i, j) = v;
      k(j, i) = v;
      g(i, j) = dv;
      g(j, i) = dv;
    }
  }
  gradients.clear();
  gradients.push_back(std::move(g));
  return k;
}

Matrix MaternKernel::cross_cached(const PairwiseDistances& dist) const {
  const Matrix& r2 = dist.squared();
  Matrix k(dist.rows(), dist.cols());
  double v = 0.0;
  double dv = 0.0;
  for (std::size_t i = 0; i < dist.rows(); ++i) {
    for (std::size_t j = 0; j < dist.cols(); ++j) {
      eval(r2(i, j), v, dv);
      k(i, j) = v;
    }
  }
  return k;
}

std::vector<double> MaternKernel::diagonal(const Matrix& x) const {
  return std::vector<double>(x.rows(), 1.0);
}

std::unique_ptr<Kernel> MaternKernel::clone() const {
  return std::make_unique<MaternKernel>(*this);
}

std::string MaternKernel::describe() const {
  std::ostringstream os;
  const char* nu = nu_ == Nu::kHalf          ? "1/2"
                   : nu_ == Nu::kThreeHalves ? "3/2"
                                             : "5/2";
  os << "Matern(nu=" << nu << ", l=" << length_ << ")";
  return os.str();
}

// ---- RationalQuadraticKernel -------------------------------------------------

RationalQuadraticKernel::RationalQuadraticKernel(double length_scale,
                                                 double alpha, double lower,
                                                 double upper)
    : length_(checked_positive(length_scale, "RationalQuadraticKernel")),
      alpha_(checked_positive(alpha, "RationalQuadraticKernel")),
      lower_(checked_positive(lower, "RationalQuadraticKernel")),
      upper_(checked_positive(upper, "RationalQuadraticKernel")) {}

std::vector<double> RationalQuadraticKernel::log_params() const {
  return {std::log(length_), std::log(alpha_)};
}

void RationalQuadraticKernel::set_log_params(std::span<const double> theta) {
  check_param_count(theta, 2, "RationalQuadraticKernel");
  length_ = std::exp(theta[0]);
  alpha_ = std::exp(theta[1]);
}

opt::Bounds RationalQuadraticKernel::log_bounds() const {
  return {{std::log(lower_), std::log(1e-2)}, {std::log(upper_), std::log(1e3)}};
}

void RationalQuadraticKernel::eval(double r2, double& value, double& dlogl,
                                   double& dlogalpha) const {
  const double q = r2 / (2.0 * alpha_ * length_ * length_);
  const double base = 1.0 + q;
  value = std::pow(base, -alpha_);
  // d/d(log l): q scales as l^-2, so dq/d(log l) = -2q.
  dlogl = 2.0 * alpha_ * q * std::pow(base, -alpha_ - 1.0);
  // d/d(log alpha) = alpha * k * (q/(1+q) - log(1+q)).
  dlogalpha = alpha_ * value * (q / base - std::log(base));
}

Matrix RationalQuadraticKernel::gram(const Matrix& x) const {
  Matrix k(x.rows(), x.rows());
  double v = 0.0;
  double dl = 0.0;
  double da = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      eval(linalg::squared_distance(x.row(i), x.row(j)), v, dl, da);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix RationalQuadraticKernel::gram_with_gradients(
    const Matrix& x, std::vector<Matrix>& gradients) const {
  const std::size_t n = x.rows();
  Matrix k(n, n);
  gradients.assign(2, Matrix(n, n));
  double v = 0.0;
  double dl = 0.0;
  double da = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      eval(linalg::squared_distance(x.row(i), x.row(j)), v, dl, da);
      k(i, j) = v;
      k(j, i) = v;
      gradients[0](i, j) = dl;
      gradients[0](j, i) = dl;
      gradients[1](i, j) = da;
      gradients[1](j, i) = da;
    }
  }
  return k;
}

Matrix RationalQuadraticKernel::cross(const Matrix& x, const Matrix& y) const {
  if (x.cols() != y.cols()) {
    throw std::invalid_argument("RationalQuadraticKernel::cross: dim mismatch");
  }
  Matrix k(x.rows(), y.rows());
  double v = 0.0;
  double dl = 0.0;
  double da = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < y.rows(); ++j) {
      eval(linalg::squared_distance(x.row(i), y.row(j)), v, dl, da);
      k(i, j) = v;
    }
  }
  return k;
}

Matrix RationalQuadraticKernel::gram_cached(const PairwiseDistances& dist) const {
  const Matrix& r2 = dist.squared();
  const std::size_t n = dist.rows();
  Matrix k(n, n);
  double v = 0.0;
  double dl = 0.0;
  double da = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      eval(r2(i, j), v, dl, da);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix RationalQuadraticKernel::gram_with_gradients_cached(
    const PairwiseDistances& dist, std::vector<Matrix>& gradients) const {
  const Matrix& r2 = dist.squared();
  const std::size_t n = dist.rows();
  Matrix k(n, n);
  gradients.assign(2, Matrix(n, n));
  double v = 0.0;
  double dl = 0.0;
  double da = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      eval(r2(i, j), v, dl, da);
      k(i, j) = v;
      k(j, i) = v;
      gradients[0](i, j) = dl;
      gradients[0](j, i) = dl;
      gradients[1](i, j) = da;
      gradients[1](j, i) = da;
    }
  }
  return k;
}

Matrix RationalQuadraticKernel::cross_cached(const PairwiseDistances& dist) const {
  const Matrix& r2 = dist.squared();
  Matrix k(dist.rows(), dist.cols());
  double v = 0.0;
  double dl = 0.0;
  double da = 0.0;
  for (std::size_t i = 0; i < dist.rows(); ++i) {
    for (std::size_t j = 0; j < dist.cols(); ++j) {
      eval(r2(i, j), v, dl, da);
      k(i, j) = v;
    }
  }
  return k;
}

std::vector<double> RationalQuadraticKernel::diagonal(const Matrix& x) const {
  return std::vector<double>(x.rows(), 1.0);
}

std::unique_ptr<Kernel> RationalQuadraticKernel::clone() const {
  return std::make_unique<RationalQuadraticKernel>(*this);
}

std::string RationalQuadraticKernel::describe() const {
  std::ostringstream os;
  os << "RQ(l=" << length_ << ", alpha=" << alpha_ << ")";
  return os.str();
}

// ---- SumKernel -------------------------------------------------------------

SumKernel::SumKernel(std::unique_ptr<Kernel> left, std::unique_ptr<Kernel> right)
    : left_(std::move(left)), right_(std::move(right)) {
  if (!left_ || !right_) throw std::invalid_argument("SumKernel: null child");
}

std::size_t SumKernel::num_params() const {
  return left_->num_params() + right_->num_params();
}

std::vector<double> SumKernel::log_params() const {
  std::vector<double> theta = left_->log_params();
  const std::vector<double> right = right_->log_params();
  theta.insert(theta.end(), right.begin(), right.end());
  return theta;
}

void SumKernel::set_log_params(std::span<const double> theta) {
  check_param_count(theta, num_params(), "SumKernel");
  left_->set_log_params(theta.subspan(0, left_->num_params()));
  right_->set_log_params(theta.subspan(left_->num_params()));
}

opt::Bounds SumKernel::log_bounds() const {
  opt::Bounds b = left_->log_bounds();
  const opt::Bounds rb = right_->log_bounds();
  b.lower.insert(b.lower.end(), rb.lower.begin(), rb.lower.end());
  b.upper.insert(b.upper.end(), rb.upper.begin(), rb.upper.end());
  return b;
}

Matrix SumKernel::gram(const Matrix& x) const {
  Matrix k = left_->gram(x);
  const Matrix r = right_->gram(x);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] += r.data()[i];
  return k;
}

Matrix SumKernel::gram_with_gradients(const Matrix& x,
                                      std::vector<Matrix>& gradients) const {
  std::vector<Matrix> left_grads;
  std::vector<Matrix> right_grads;
  Matrix k = left_->gram_with_gradients(x, left_grads);
  const Matrix r = right_->gram_with_gradients(x, right_grads);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] += r.data()[i];
  gradients.clear();
  gradients.reserve(left_grads.size() + right_grads.size());
  for (auto& g : left_grads) gradients.push_back(std::move(g));
  for (auto& g : right_grads) gradients.push_back(std::move(g));
  return k;
}

Matrix SumKernel::cross(const Matrix& x, const Matrix& y) const {
  Matrix k = left_->cross(x, y);
  const Matrix r = right_->cross(x, y);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] += r.data()[i];
  return k;
}

void SumKernel::prepare_distances(PairwiseDistances& dist) const {
  left_->prepare_distances(dist);
  right_->prepare_distances(dist);
}

Matrix SumKernel::gram_cached(const PairwiseDistances& dist) const {
  // Fast path: a White addend only touches the diagonal, so the dense
  // allocate-then-add pass collapses to n diagonal additions. Bit-identical
  // to the generic pass: off-diagonal entries would add +0.0 (a no-op for
  // every value a kernel gram produces — none emit -0), and the diagonal
  // addition is commutative, hence exact in either operand order.
  if (const auto* white = dynamic_cast<const WhiteKernel*>(right_.get())) {
    Matrix k = left_->gram_cached(dist);
    const double noise = white->noise();
    for (std::size_t i = 0; i < k.rows(); ++i) k(i, i) += noise;
    return k;
  }
  if (const auto* white = dynamic_cast<const WhiteKernel*>(left_.get())) {
    Matrix k = right_->gram_cached(dist);
    const double noise = white->noise();
    for (std::size_t i = 0; i < k.rows(); ++i) k(i, i) += noise;
    return k;
  }
  Matrix k = left_->gram_cached(dist);
  const Matrix r = right_->gram_cached(dist);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] += r.data()[i];
  return k;
}

Matrix SumKernel::gram_with_gradients_cached(
    const PairwiseDistances& dist, std::vector<Matrix>& gradients) const {
  std::vector<Matrix> left_grads;
  std::vector<Matrix> right_grads;
  Matrix k = left_->gram_with_gradients_cached(dist, left_grads);
  const Matrix r = right_->gram_with_gradients_cached(dist, right_grads);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] += r.data()[i];
  gradients.clear();
  gradients.reserve(left_grads.size() + right_grads.size());
  for (auto& g : left_grads) gradients.push_back(std::move(g));
  for (auto& g : right_grads) gradients.push_back(std::move(g));
  return k;
}

Matrix SumKernel::cross_cached(const PairwiseDistances& dist) const {
  Matrix k = left_->cross_cached(dist);
  const Matrix r = right_->cross_cached(dist);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] += r.data()[i];
  return k;
}

std::vector<double> SumKernel::diagonal(const Matrix& x) const {
  std::vector<double> d = left_->diagonal(x);
  const std::vector<double> r = right_->diagonal(x);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] += r[i];
  return d;
}

std::unique_ptr<Kernel> SumKernel::clone() const {
  return std::make_unique<SumKernel>(left_->clone(), right_->clone());
}

std::string SumKernel::describe() const {
  return left_->describe() + " + " + right_->describe();
}

// ---- ProductKernel ---------------------------------------------------------

ProductKernel::ProductKernel(std::unique_ptr<Kernel> left,
                             std::unique_ptr<Kernel> right)
    : left_(std::move(left)), right_(std::move(right)) {
  if (!left_ || !right_) throw std::invalid_argument("ProductKernel: null child");
}

std::size_t ProductKernel::num_params() const {
  return left_->num_params() + right_->num_params();
}

std::vector<double> ProductKernel::log_params() const {
  std::vector<double> theta = left_->log_params();
  const std::vector<double> right = right_->log_params();
  theta.insert(theta.end(), right.begin(), right.end());
  return theta;
}

void ProductKernel::set_log_params(std::span<const double> theta) {
  check_param_count(theta, num_params(), "ProductKernel");
  left_->set_log_params(theta.subspan(0, left_->num_params()));
  right_->set_log_params(theta.subspan(left_->num_params()));
}

opt::Bounds ProductKernel::log_bounds() const {
  opt::Bounds b = left_->log_bounds();
  const opt::Bounds rb = right_->log_bounds();
  b.lower.insert(b.lower.end(), rb.lower.begin(), rb.lower.end());
  b.upper.insert(b.upper.end(), rb.upper.begin(), rb.upper.end());
  return b;
}

Matrix ProductKernel::gram(const Matrix& x) const {
  Matrix k = left_->gram(x);
  const Matrix r = right_->gram(x);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] *= r.data()[i];
  return k;
}

Matrix ProductKernel::gram_with_gradients(const Matrix& x,
                                          std::vector<Matrix>& gradients) const {
  std::vector<Matrix> left_grads;
  std::vector<Matrix> right_grads;
  const Matrix kl = left_->gram_with_gradients(x, left_grads);
  const Matrix kr = right_->gram_with_gradients(x, right_grads);

  gradients.clear();
  gradients.reserve(left_grads.size() + right_grads.size());
  // Product rule: d(K1 o K2)/dtheta1 = dK1/dtheta1 o K2, and symmetrically.
  for (auto& g : left_grads) {
    for (std::size_t i = 0; i < g.data().size(); ++i) g.data()[i] *= kr.data()[i];
    gradients.push_back(std::move(g));
  }
  for (auto& g : right_grads) {
    for (std::size_t i = 0; i < g.data().size(); ++i) g.data()[i] *= kl.data()[i];
    gradients.push_back(std::move(g));
  }

  Matrix k = kl;
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] *= kr.data()[i];
  return k;
}

Matrix ProductKernel::cross(const Matrix& x, const Matrix& y) const {
  Matrix k = left_->cross(x, y);
  const Matrix r = right_->cross(x, y);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] *= r.data()[i];
  return k;
}

void ProductKernel::prepare_distances(PairwiseDistances& dist) const {
  left_->prepare_distances(dist);
  right_->prepare_distances(dist);
}

Matrix ProductKernel::gram_cached(const PairwiseDistances& dist) const {
  // Fast path: a Constant factor is a scalar scale — no dense constant
  // matrix, one multiply per entry. FP multiplication is commutative
  // bit-for-bit, so c * k and k * c agree with the generic elementwise
  // product exactly.
  if (const auto* c = dynamic_cast<const ConstantKernel*>(left_.get())) {
    Matrix k = right_->gram_cached(dist);
    const double v = c->value();
    for (double& e : k.data()) e *= v;
    return k;
  }
  if (const auto* c = dynamic_cast<const ConstantKernel*>(right_.get())) {
    Matrix k = left_->gram_cached(dist);
    const double v = c->value();
    for (double& e : k.data()) e *= v;
    return k;
  }
  Matrix k = left_->gram_cached(dist);
  const Matrix r = right_->gram_cached(dist);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] *= r.data()[i];
  return k;
}

Matrix ProductKernel::gram_with_gradients_cached(
    const PairwiseDistances& dist, std::vector<Matrix>& gradients) const {
  std::vector<Matrix> left_grads;
  std::vector<Matrix> right_grads;
  const Matrix kl = left_->gram_with_gradients_cached(dist, left_grads);
  const Matrix kr = right_->gram_with_gradients_cached(dist, right_grads);

  gradients.clear();
  gradients.reserve(left_grads.size() + right_grads.size());
  // Product rule, same combine order as the direct path.
  for (auto& g : left_grads) {
    for (std::size_t i = 0; i < g.data().size(); ++i) g.data()[i] *= kr.data()[i];
    gradients.push_back(std::move(g));
  }
  for (auto& g : right_grads) {
    for (std::size_t i = 0; i < g.data().size(); ++i) g.data()[i] *= kl.data()[i];
    gradients.push_back(std::move(g));
  }

  Matrix k = kl;
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] *= kr.data()[i];
  return k;
}

Matrix ProductKernel::cross_cached(const PairwiseDistances& dist) const {
  Matrix k = left_->cross_cached(dist);
  const Matrix r = right_->cross_cached(dist);
  for (std::size_t i = 0; i < k.data().size(); ++i) k.data()[i] *= r.data()[i];
  return k;
}

std::vector<double> ProductKernel::diagonal(const Matrix& x) const {
  std::vector<double> d = left_->diagonal(x);
  const std::vector<double> r = right_->diagonal(x);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] *= r[i];
  return d;
}

std::unique_ptr<Kernel> ProductKernel::clone() const {
  return std::make_unique<ProductKernel>(left_->clone(), right_->clone());
}

std::string ProductKernel::describe() const {
  return "(" + left_->describe() + ") * (" + right_->describe() + ")";
}

// ---- builders --------------------------------------------------------------

std::unique_ptr<Kernel> sum(std::unique_ptr<Kernel> a, std::unique_ptr<Kernel> b) {
  return std::make_unique<SumKernel>(std::move(a), std::move(b));
}

std::unique_ptr<Kernel> product(std::unique_ptr<Kernel> a,
                                std::unique_ptr<Kernel> b) {
  return std::make_unique<ProductKernel>(std::move(a), std::move(b));
}

std::unique_ptr<Kernel> make_paper_kernel(double amplitude, double length_scale,
                                          double noise) {
  return sum(product(std::make_unique<ConstantKernel>(amplitude),
                     std::make_unique<RbfKernel>(length_scale)),
             std::make_unique<WhiteKernel>(noise));
}

std::unique_ptr<Kernel> make_ard_kernel(std::size_t dim, double amplitude,
                                        double length_scale, double noise) {
  return sum(product(std::make_unique<ConstantKernel>(amplitude),
                     std::make_unique<RbfArdKernel>(
                         std::vector<double>(dim, length_scale))),
             std::make_unique<WhiteKernel>(noise));
}

std::unique_ptr<Kernel> make_matern_kernel(MaternKernel::Nu nu, double amplitude,
                                           double length_scale, double noise) {
  return sum(product(std::make_unique<ConstantKernel>(amplitude),
                     std::make_unique<MaternKernel>(nu, length_scale)),
             std::make_unique<WhiteKernel>(noise));
}

}  // namespace alamr::gp
