#!/usr/bin/env bash
# Pre-PR gate: builds and runs the full test suite in four configurations
# and fails on the first broken one.
#
#   1. plain       — the default release build (build-check/plain)
#   2. asan        — ALAMR_SANITIZE=address,undefined with the throwing
#                    ALAMR_ASSERT checks forced on (ALAMR_DEBUG_ASSERTS)
#   3. ubsan       — ALAMR_SANITIZE=undefined alone: UBSan at full
#                    optimization without ASan's instrumentation, which
#                    surfaces UB that the combined build can mask
#   4. native      — ALAMR_NATIVE=ON (-march=native, FP contraction off);
#                    proves host-tuned codegen stays bit-identical
#   5. threaded    — plain binaries, ctest with ALAMR_THREADS=4 so every
#                    suite (not just tests_core_threads4) exercises the
#                    4-lane pool
#   6. faults      — plain binaries, fault/robustness/checkpoint suites
#                    under a live ALAMR_FAULT_PLAN (5% OOM, 5% timeout,
#                    3% NaN rows): the recovery ladder and censoring
#                    accounting must hold with the injector armed
#                    process-wide, not just under test-installed scopes
#   7. simd levels — the full suite on the plain build pinned to each
#                    runtime dispatch tier via ALAMR_SIMD_LEVEL: scalar
#                    (byte-golden bits), avx2, and native-best (no
#                    override — whatever CPUID selected, the production
#                    configuration). Byte goldens pin scalar internally,
#                    so they pass at every level; tolerance goldens and
#                    the all-levels-agree kernel tests carry the
#                    vector-tier correctness load
#   8. tsan        — ALAMR_SANITIZE=thread on the shared-structure
#                    concurrency surface: batches where every worker
#                    reads one SharedBatchContext, plus the trace and
#                    pool suites, under ALAMR_THREADS=4
#   9. arena gate  — zero-allocation gate on the plain build: the
#                    counting-allocator suite plus the ArenaGate trace
#                    assertions (steady_growth == 0, scope_leaks == 0)
#                    must hold, i.e. the steady-state AL pass is heap-free
#                    and the arena footprint stops growing after pass 0
#  10. bench trend — scripts/bench_trend.py runs the gate benchmarks
#                    (BM_PredictBatch, BM_TrajectoryBatch) fresh and
#                    fails on a >10% slowdown against the medians
#                    recorded in BENCH_PR*.json. Skip on hosts whose
#                    numbers are not comparable to the records with
#                    ALAMR_SKIP_BENCH_TREND=1
#  11. backends    — the PosteriorBackend parity suite (tests_backends)
#                    as an explicit leg on the plain build, serial and
#                    ALAMR_THREADS=4: exact backend byte-identity through
#                    the interface, approximate-backend tolerance goldens,
#                    parity gates, faults, and checkpoint round-trips
#  12. panel       — the candidate-panel suites (tests_panel plus the
#                    panel-off GoldenTrajectory arms) serial and
#                    ALAMR_THREADS=4, mirroring the batched-off arm so
#                    the panel_predict=false fallback path can't rot
#  13. resilience  — the serving-core resilience suites (executor,
#                    breaker/ladder, durable checkpoints, online
#                    halt/resume) under armed io.* fault plans — torn
#                    writes on every third save, short reads on first
#                    read — serial and ALAMR_THREADS=4: generation
#                    fallback, quarantine, and read-retry must keep
#                    every byte-identity assertion green with real I/O
#                    faults firing process-wide
#
# Finally an explicit golden gate re-runs the golden-trajectory byte
# comparisons (which sweep the cached-kernel / incremental-refit /
# incremental-cross configurations internally) on the plain and native
# builds, serial and with ALAMR_THREADS=4.  They already ran as part of
# the full suites above; the separate step makes a golden break impossible
# to miss in the output.
#
# Usage: scripts/check.sh [jobs]     (default: nproc)
#
# Build trees live under build-check/ to leave the main build/ alone.

set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_config() {
  local name="$1"
  local build_dir="build-check/$name"
  shift
  echo "=== [$name] configure + build ==="
  cmake -B "$build_dir" -S . "$@" > /dev/null
  cmake --build "$build_dir" -j "$jobs" > /dev/null
  echo "=== [$name] ctest ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" > /tmp/check_"$name".log 2>&1 || {
    tail -50 /tmp/check_"$name".log
    echo "FAILED: $name (full log: /tmp/check_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_"$name".log
}

run_golden() {
  local name="$1"
  local build_dir="$2"
  local threads="$3"
  echo "=== [golden/$name] trajectory byte comparisons (ALAMR_THREADS=$threads) ==="
  ALAMR_THREADS="$threads" ctest --test-dir "$build_dir" --output-on-failure \
    -R 'GoldenTrajectory' > /tmp/check_golden_"$name".log 2>&1 || {
    tail -50 /tmp/check_golden_"$name".log
    echo "FAILED: golden/$name (full log: /tmp/check_golden_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_golden_"$name".log
}

# run_level <name> <ALAMR_SIMD_LEVEL value or "">: the full suite on the
# plain build pinned to one runtime dispatch tier. An empty value runs
# whatever CPUID selects (native-best, the production configuration);
# requests above the host's ceiling clamp down, so every leg is safe on
# any machine.
run_level() {
  local name="$1"
  local level="$2"
  echo "=== [simd/$name] full suite at ALAMR_SIMD_LEVEL=${level:-<native-best>} ==="
  ALAMR_SIMD_LEVEL="$level" ctest --test-dir build-check/plain --output-on-failure \
    -j "$jobs" > /tmp/check_simd_"$name".log 2>&1 || {
    tail -50 /tmp/check_simd_"$name".log
    echo "FAILED: simd/$name (full log: /tmp/check_simd_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_simd_"$name".log
}

run_config plain
run_config asan -DALAMR_SANITIZE=address,undefined -DALAMR_DEBUG_ASSERTS=ON
run_config ubsan -DALAMR_SANITIZE=undefined
run_config native -DALAMR_NATIVE=ON

run_level scalar scalar
run_level avx2 avx2
run_level best ""

# Thread-sanitizer leg, scoped to the concurrency surface: the
# shared-batch-context suites (every pool worker reads one immutable
# DistanceBase), the trace collectors, and the thread pool itself. TSan
# slows execution ~10x, so the full suite stays on the plain legs.
echo "=== [tsan] shared-context + concurrency suites under ThreadSanitizer ==="
cmake -B build-check/tsan -S . -DALAMR_SANITIZE=thread > /dev/null
cmake --build build-check/tsan -j "$jobs" > /dev/null
ALAMR_THREADS=4 ctest --test-dir build-check/tsan --output-on-failure \
  -R 'RunBatch|BatchIsolation|Trace|ThreadPool|ParallelFor' \
  > /tmp/check_tsan.log 2>&1 || {
  tail -50 /tmp/check_tsan.log
  echo "FAILED: tsan (full log: /tmp/check_tsan.log)"
  exit 1
}
tail -2 /tmp/check_tsan.log

echo "=== [threads4] ctest with ALAMR_THREADS=4 on the plain build ==="
ALAMR_THREADS=4 ctest --test-dir build-check/plain --output-on-failure -j "$jobs" \
  > /tmp/check_threads4.log 2>&1 || {
  tail -50 /tmp/check_threads4.log
  echo "FAILED: threads4 (full log: /tmp/check_threads4.log)"
  exit 1
}
tail -2 /tmp/check_threads4.log

# Fault-plan leg: the injector answers every un-scoped consultation in the
# process, so the robustness suites prove the recovery ladder holds when
# failures really do happen at these rates.  Explicit per-test plans
# override the environment plan, so the determinism and byte-equality
# assertions inside these suites remain valid.
echo "=== [faults] robustness suites under ALAMR_FAULT_PLAN ==="
ALAMR_FAULT_PLAN='seed=19;acquire.oom:p=0.05;acquire.timeout:p=0.05;data.nan_row:p=0.03' \
  ctest --test-dir build-check/plain --output-on-failure -j "$jobs" \
  -R 'Fault|Robustness|Checkpoint|BatchIsolation' \
  > /tmp/check_faults.log 2>&1 || {
  tail -50 /tmp/check_faults.log
  echo "FAILED: faults (full log: /tmp/check_faults.log)"
  exit 1
}
tail -2 /tmp/check_faults.log

# Zero-allocation gate: the counting-allocator suite (tests_alloc) proves
# the steady-state predict cycle never touches the heap, and the ArenaGate
# suite asserts via trace counters that the arena's capacity stays flat
# after the first pass (arena.steady_growth == 0) with no leaked scopes.
echo "=== [arena] zero-allocation + arena-footprint gate ==="
ctest --test-dir build-check/plain --output-on-failure \
  -R 'AllocFree|ArenaGate' > /tmp/check_arena.log 2>&1 || {
  tail -50 /tmp/check_arena.log
  echo "FAILED: arena (full log: /tmp/check_arena.log)"
  exit 1
}
tail -2 /tmp/check_arena.log

run_golden plain build-check/plain 1
run_golden plain4 build-check/plain 4
run_golden native build-check/native 1
run_golden native4 build-check/native 4

# Backend gate: the PosteriorBackend parity harness (exact backend
# byte-pinned through the interface, approximate backends on tolerance
# goldens, RMSE/CC/CR parity, properties, faults, checkpoints) serial
# and under the 4-lane pool. Already ran inside the full suites; the
# explicit leg makes a backend break impossible to miss.
run_backends() {
  local name="$1"
  local threads="$2"
  echo "=== [backends/$name] PosteriorBackend parity suite (ALAMR_THREADS=$threads) ==="
  ALAMR_THREADS="$threads" ctest --test-dir build-check/plain --output-on-failure \
    -R 'Backend(Parity|Properties|Faults|Checkpoint)' \
    > /tmp/check_backends_"$name".log 2>&1 || {
    tail -50 /tmp/check_backends_"$name".log
    echo "FAILED: backends/$name (full log: /tmp/check_backends_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_backends_"$name".log
}
run_backends serial 1
run_backends threads4 4

# Panel gate: the candidate-panel cache suites — GPR-level bitwise
# identity across append/remove/invalidate cycles, trajectory-level
# panel-on/off byte parity under faults and checkpoint resume, and the
# panel-off golden arms — serial and under the 4-lane pool, so the
# panel_predict=false fallback stays exercised like batched-off is.
run_panel() {
  local name="$1"
  local threads="$2"
  echo "=== [panel/$name] candidate-panel suites (ALAMR_THREADS=$threads) ==="
  ALAMR_THREADS="$threads" ctest --test-dir build-check/plain --output-on-failure \
    -R 'Panel' > /tmp/check_panel_"$name".log 2>&1 || {
    tail -50 /tmp/check_panel_"$name".log
    echo "FAILED: panel/$name (full log: /tmp/check_panel_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_panel_"$name".log
}
run_panel serial 1
run_panel threads4 4

# Serving gate (DESIGN.md §15): the multi-tenant session-engine suites —
# engine-vs-driver byte identity at stride 1, batched-vs-serial arm
# parity, evict/restore round-trips, armed-fault tenant isolation, and
# mixed-shard concurrent traffic — serial and under the 4-lane pool,
# plus a ThreadSanitizer arm over the same filter: drain() fans requests
# across pool lanes while retrain workers publish tickets and joiners
# steal queued jobs, exactly the handoffs TSan is built to vet.
run_serve() {
  local name="$1"
  local threads="$2"
  echo "=== [serve/$name] session-engine suites (ALAMR_THREADS=$threads) ==="
  ALAMR_THREADS="$threads" ctest --test-dir build-check/plain --output-on-failure \
    -R 'Serve' > /tmp/check_serve_"$name".log 2>&1 || {
    tail -50 /tmp/check_serve_"$name".log
    echo "FAILED: serve/$name (full log: /tmp/check_serve_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_serve_"$name".log
}
run_serve serial 1
run_serve threads4 4

echo "=== [serve/tsan] session-engine suites under ThreadSanitizer ==="
ALAMR_THREADS=4 ctest --test-dir build-check/tsan --output-on-failure \
  -R 'Serve' > /tmp/check_serve_tsan.log 2>&1 || {
  tail -50 /tmp/check_serve_tsan.log
  echo "FAILED: serve/tsan (full log: /tmp/check_serve_tsan.log)"
  exit 1
}
tail -2 /tmp/check_serve_tsan.log

# Resilience gate (DESIGN.md §14): the serving-core resilience suites
# with io.* faults armed process-wide. hits-based plans make every fire
# deterministic: io.torn_write:hits=2 tears every test's third durable
# save (the halt-save in the resume suites — recovery must fall back to
# the previous intact generation and still reproduce the uninterrupted
# run byte-for-byte); io.partial_read:hits=0 truncates every test's
# first read (the single re-read retry must absorb it). Tests that
# install scoped injectors or per-run plans override the env plan, so
# their own schedules stay exact. The legacy bare-JSON test is excluded
# from the short-read arm: format-1 files carry no length or checksum,
# so a truncated read is indistinguishable from a complete one — the
# limitation that motivated the v2 frame, whose suites cover it.
run_resilience() {
  local name="$1"
  local threads="$2"
  local plan="$3"
  local exclude="${4:-}"
  echo "=== [resilience/$name] io fault matrix (ALAMR_THREADS=$threads, plan '$plan') ==="
  ALAMR_THREADS="$threads" ALAMR_FAULT_PLAN="$plan" \
    ctest --test-dir build-check/plain --output-on-failure \
    -R 'VirtualClock|Backoff|DeadlineExecutor|Breaker|EventChannel|ResilienceFlag|DurableCheckpoint|CheckpointVersionGate|OnlineResilience|OnlineLadder|OnlineCheckpointResume' \
    ${exclude:+-E "$exclude"} \
    > /tmp/check_resilience_"$name".log 2>&1 || {
    tail -50 /tmp/check_resilience_"$name".log
    echo "FAILED: resilience/$name (full log: /tmp/check_resilience_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_resilience_"$name".log
}
run_resilience torn 1 'io.torn_write:hits=2'
run_resilience torn4 4 'io.torn_write:hits=2'
run_resilience read 1 'io.partial_read:hits=0' 'LegacyBareJson'
run_resilience read4 4 'io.partial_read:hits=0' 'LegacyBareJson'

# Bench-trend gate: fresh optimized-arm medians for the gate benchmarks
# must stay within 10% of the BENCH_PR*.json records. The records carry
# their dispatch level; bench_trend.py skips pairs measured at a
# different tier, and unrelated CI hosts skip the whole gate via env.
if [[ "${ALAMR_SKIP_BENCH_TREND:-0}" == "1" ]]; then
  echo "=== [bench-trend] skipped (ALAMR_SKIP_BENCH_TREND=1) ==="
else
  echo "=== [bench-trend] fresh medians vs BENCH_PR*.json ==="
  python3 scripts/bench_trend.py build-check/plain/bench/bench_micro_perf
fi

echo "All checks passed."
