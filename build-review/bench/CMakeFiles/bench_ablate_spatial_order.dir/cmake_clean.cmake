file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_spatial_order.dir/bench_ablate_spatial_order.cpp.o"
  "CMakeFiles/bench_ablate_spatial_order.dir/bench_ablate_spatial_order.cpp.o.d"
  "bench_ablate_spatial_order"
  "bench_ablate_spatial_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_spatial_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
