file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rmse_progress.dir/bench_fig5_rmse_progress.cpp.o"
  "CMakeFiles/bench_fig5_rmse_progress.dir/bench_fig5_rmse_progress.cpp.o.d"
  "bench_fig5_rmse_progress"
  "bench_fig5_rmse_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rmse_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
