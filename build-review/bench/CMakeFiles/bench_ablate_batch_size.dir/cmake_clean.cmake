file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_batch_size.dir/bench_ablate_batch_size.cpp.o"
  "CMakeFiles/bench_ablate_batch_size.dir/bench_ablate_batch_size.cpp.o.d"
  "bench_ablate_batch_size"
  "bench_ablate_batch_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_batch_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
