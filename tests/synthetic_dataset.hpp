#pragma once

// Shared fixture: a synthetic dataset with the same structure as the AMR
// campaign output (5 features, multiplicative cost growth, correlated
// memory, long tails) but cheap to generate, for core/integration tests.

#include <cmath>

#include "alamr/data/dataset.hpp"
#include "alamr/stats/rng.hpp"

namespace alamr::testing {

inline data::Dataset synthetic_amr_dataset(std::size_t n, std::uint64_t seed) {
  stats::Rng rng(seed);
  data::Dataset d;
  d.feature_names = {"p", "mx", "maxlevel", "r0", "rhoin"};
  d.x = linalg::Matrix(n, 5);
  d.wallclock.reserve(n);
  d.cost.reserve(n);
  d.memory.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double p = std::pow(2.0, 2.0 + static_cast<double>(rng.uniform_index(4)));
    const double mx = 8.0 * (1.0 + static_cast<double>(rng.uniform_index(4)));
    const double level = 3.0 + static_cast<double>(rng.uniform_index(4));
    const double r0 = rng.uniform(0.2, 0.5);
    const double rhoin = rng.uniform(0.02, 0.5);
    d.x(i, 0) = p;
    d.x(i, 1) = mx;
    d.x(i, 2) = level;
    d.x(i, 3) = r0;
    d.x(i, 4) = rhoin;
    const double work =
        std::pow(mx, 3.0) * std::pow(8.0, level) * (0.5 + r0) * 1e-6;
    const double wallclock =
        2.0 + work / p * std::exp(rng.normal(0.0, 0.05));
    d.wallclock.push_back(wallclock);
    d.cost.push_back(wallclock * p / 3600.0);
    d.memory.push_back(0.2 +
                       work * 4e-4 / p * std::exp(rng.normal(0.0, 0.02)));
  }
  return d;
}

}  // namespace alamr::testing
