#include "alamr/gp/distances.hpp"

#include <algorithm>
#include <stdexcept>

#include "alamr/core/trace.hpp"

namespace alamr::gp {

DistanceBase::DistanceBase(const Matrix& x) : x_(x) {
  core::trace::count("gp.dist_base_build");
  const std::size_t n = x_.rows();
  sq_ = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double r2 = linalg::squared_distance(x_.row(i), x_.row(j));
      sq_(i, j) = r2;
      sq_(j, i) = r2;
    }
  }
}

namespace {

linalg::Matrix gather_rows(const Matrix& x, std::span<const std::size_t> rows) {
  Matrix out(rows.size(), x.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = x.row(rows[i]);
    const auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

void check_rows_in_range(std::span<const std::size_t> rows, std::size_t n,
                         const char* what) {
  for (const std::size_t r : rows) {
    if (r >= n) throw std::out_of_range(what);
  }
}

}  // namespace

PairwiseDistances PairwiseDistances::train_from_base(
    const DistanceBase& base, std::span<const std::size_t> rows) {
  check_rows_in_range(rows, base.size(),
                      "PairwiseDistances::train_from_base: row out of range");
  core::trace::count("gp.dist_cache_gather");
  PairwiseDistances d;
  d.symmetric_ = true;
  d.x_ = gather_rows(base.x(), rows);
  const std::size_t k = rows.size();
  d.sq_ = Matrix(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double r2 = base.squared(rows[i], rows[j]);
      d.sq_(i, j) = r2;
      d.sq_(j, i) = r2;
    }
  }
  return d;
}

PairwiseDistances PairwiseDistances::cross_from_base(
    const DistanceBase& base, std::span<const std::size_t> rows_x,
    std::span<const std::size_t> rows_y) {
  check_rows_in_range(rows_x, base.size(),
                      "PairwiseDistances::cross_from_base: row out of range");
  check_rows_in_range(rows_y, base.size(),
                      "PairwiseDistances::cross_from_base: row out of range");
  core::trace::count("gp.dist_cache_gather");
  PairwiseDistances d;
  d.symmetric_ = false;
  d.x_ = gather_rows(base.x(), rows_x);
  d.y_ = gather_rows(base.x(), rows_y);
  d.sq_ = Matrix(rows_x.size(), rows_y.size());
  for (std::size_t i = 0; i < rows_x.size(); ++i) {
    const auto out = d.sq_.row(i);
    for (std::size_t j = 0; j < rows_y.size(); ++j) {
      out[j] = base.squared(rows_x[i], rows_y[j]);
    }
  }
  return d;
}

PairwiseDistances PairwiseDistances::train(const Matrix& x) {
  core::trace::count("gp.dist_cache_build");
  PairwiseDistances d;
  d.symmetric_ = true;
  d.x_ = x;
  const std::size_t n = x.rows();
  d.sq_ = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double r2 = linalg::squared_distance(x.row(i), x.row(j));
      d.sq_(i, j) = r2;
      d.sq_(j, i) = r2;
    }
  }
  return d;
}

PairwiseDistances PairwiseDistances::cross(const Matrix& x, const Matrix& y) {
  if (x.cols() != y.cols()) {
    throw std::invalid_argument("PairwiseDistances::cross: dim mismatch");
  }
  core::trace::count("gp.dist_cache_build");
  PairwiseDistances d;
  d.symmetric_ = false;
  d.x_ = x;
  d.y_ = y;
  d.sq_ = Matrix(x.rows(), y.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto xi = x.row(i);
    for (std::size_t j = 0; j < y.rows(); ++j) {
      d.sq_(i, j) = linalg::squared_distance(xi, y.row(j));
    }
  }
  return d;
}

void PairwiseDistances::ensure_components() {
  if (!components_.empty()) return;
  core::trace::count("gp.dist_components_build");
  const std::size_t ndim = dim();
  const Matrix& ys = y();
  components_.assign(ndim, Matrix(rows(), cols()));
  if (symmetric_) {
    for (std::size_t i = 0; i < rows(); ++i) {
      const auto xi = x_.row(i);
      for (std::size_t j = 0; j < i; ++j) {
        const auto xj = x_.row(j);
        for (std::size_t d = 0; d < ndim; ++d) {
          const double diff = xi[d] - xj[d];
          const double v = diff * diff;
          components_[d](i, j) = v;
          components_[d](j, i) = v;
        }
      }
    }
  } else {
    for (std::size_t i = 0; i < rows(); ++i) {
      const auto xi = x_.row(i);
      for (std::size_t j = 0; j < cols(); ++j) {
        const auto yj = ys.row(j);
        for (std::size_t d = 0; d < ndim; ++d) {
          const double diff = xi[d] - yj[d];
          components_[d](i, j) = diff * diff;
        }
      }
    }
  }
}

void PairwiseDistances::reserve(std::size_t max_rows) {
  x_.reserve(max_rows, x_.cols());
  sq_.reserve(max_rows, symmetric_ ? max_rows : sq_.cols());
  for (Matrix& c : components_) {
    c.reserve(max_rows, symmetric_ ? max_rows : c.cols());
  }
}

void PairwiseDistances::append_x_row(std::span<const double> row) {
  if (row.size() != dim()) {
    throw std::invalid_argument("PairwiseDistances::append_x_row: dim mismatch");
  }
  core::trace::count("gp.dist_cache_extend");
  // All buffers grow in place (pure data movement, allocation-free within
  // reserve()d capacity); the new entries are computed against the
  // pre-append x_, exactly as the old copy-into-grown-matrix recipe did.
  const std::size_t n = x_.rows();
  if (symmetric_) {
    sq_.grow(n + 1, n + 1);
    const auto last = sq_.row(n);
    for (std::size_t j = 0; j < n; ++j) {
      // New point first: the same orientation gram() uses for row i > j.
      const double r2 = linalg::squared_distance(row, x_.row(j));
      last[j] = r2;
      sq_(j, n) = r2;
    }
    last[n] = 0.0;
    for (std::size_t d = 0; d < components_.size(); ++d) {
      Matrix& comp = components_[d];
      comp.grow(n + 1, n + 1);
      const auto clast = comp.row(n);
      for (std::size_t j = 0; j < n; ++j) {
        const double diff = row[d] - x_(j, d);
        const double v = diff * diff;
        clast[j] = v;
        comp(j, n) = v;
      }
      clast[n] = 0.0;
    }
  } else {
    sq_.grow(n + 1, sq_.cols());
    const auto last = sq_.row(n);
    for (std::size_t j = 0; j < y_.rows(); ++j) {
      last[j] = linalg::squared_distance(row, y_.row(j));
    }
    for (std::size_t d = 0; d < components_.size(); ++d) {
      Matrix& comp = components_[d];
      comp.grow(n + 1, comp.cols());
      const auto clast = comp.row(n);
      for (std::size_t j = 0; j < y_.rows(); ++j) {
        const double diff = row[d] - y_(j, d);
        clast[j] = diff * diff;
      }
    }
  }
  x_.push_row(row);
}

}  // namespace alamr::gp
