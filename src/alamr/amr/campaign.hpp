#pragma once

// The experiment campaign that generates the paper's dataset (Sec. IV-A):
// a 4x4x4x5x6 = 1920-combination grid over (p, mx, maxlevel, r0, rhoin),
// from which 525 unique configurations are sampled — expensive regimes
// sampled more sparsely, as the paper did to bound allocation burn — plus
// 75 replicate runs capturing machine variability, for 600 dataset rows.
//
// The SLURM MaxRSS reporting bug the paper hit (zeros for some of the
// cheapest jobs) is emulated: affected jobs are recorded but excluded from
// the dataset, and the campaign keeps sampling until 600 usable rows
// exist, mirroring the paper's 1K-jobs -> 612 usable -> 600 selected
// pipeline.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "alamr/amr/machine.hpp"
#include "alamr/data/dataset.hpp"

namespace alamr::amr {

/// One point of the 5-D feature space.
struct Config {
  int p = 4;          // nodes
  int mx = 16;        // box size
  int max_level = 4;  // max refinement level
  double r0 = 0.3;    // bubble size
  double rhoin = 0.1; // bubble density

  bool operator==(const Config&) const = default;
};

struct CampaignOptions {
  std::vector<int> p_values{4, 8, 16, 32};
  std::vector<int> mx_values{8, 16, 24, 32};
  std::vector<int> level_values{3, 4, 5, 6};
  std::vector<double> r0_values{0.2, 0.275, 0.35, 0.425, 0.5};
  std::vector<double> rhoin_values{0.02, 0.05, 0.1, 0.2, 0.35, 0.5};

  std::size_t unique_configs = 525;
  std::size_t dataset_size = 600;  // unique + replicates

  /// SLURM accounting quirk: jobs shorter than the threshold report
  /// MaxRSS = 0 with this probability.
  double maxrss_bug_threshold_seconds = 140.0;
  double maxrss_bug_probability = 0.35;

  /// Exponent of the inverse-work sampling weight w = est^-bias; 0 = uniform,
  /// larger = sparser sampling of expensive regimes.
  double expense_bias = 0.7;

  std::uint64_t seed = 42;
  MachineSpec machine;
  ShockBubbleProblem base_problem;  // per-config fields overridden
  std::size_t max_steps_per_job = 20000;
};

/// One executed job, in SLURM-accounting form.
struct JobRecord {
  Config config;
  JobResult result;
  double reported_maxrss_mb = 0.0;  // 0 when the accounting bug fired
  bool maxrss_missing = false;
  bool replicate = false;
};

/// Reports (jobs_completed, jobs_planned) as the campaign progresses.
using ProgressFn = std::function<void(std::size_t, std::size_t)>;

class Campaign {
 public:
  explicit Campaign(CampaignOptions options);

  const CampaignOptions& options() const noexcept { return options_; }

  /// All p x mx x maxlevel x r0 x rhoin combinations (1920 by default).
  std::vector<Config> full_grid() const;

  /// Relative work estimate of a config (used for sparse sampling of the
  /// expensive regime): cells-per-step x steps ~ mx^3 * 8^maxlevel.
  static double work_estimate(const Config& config);

  /// Runs the campaign: weighted sampling without replacement of unique
  /// configs, one physics solve per distinct (mx, maxlevel, r0, rhoin)
  /// reused across p values, replicates with fresh measurement noise, and
  /// the MaxRSS accounting quirk. Deterministic for a fixed seed.
  std::vector<JobRecord> run(const ProgressFn& progress = {});

  /// Builds the problem a config maps to.
  ShockBubbleProblem make_problem(const Config& config) const;

  /// Converts usable records (MaxRSS present) to the analysis dataset with
  /// features (p, mx, maxlevel, r0, rhoin). Takes at most `limit` rows
  /// (0 = all usable rows).
  static data::Dataset to_dataset(const std::vector<JobRecord>& records,
                                  std::size_t limit = 0);

 private:
  CampaignOptions options_;
};

}  // namespace alamr::amr
