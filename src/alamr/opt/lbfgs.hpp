#pragma once

// Limited-memory BFGS with Armijo backtracking line search and optional box
// bounds (projected-gradient variant). This is the workhorse behind GPR
// hyperparameter optimization: dimensions are tiny (3-7 log-hyperparameters)
// but each evaluation costs an O(n^3) Cholesky, so the optimizer must be
// frugal with function evaluations.

#include <cstddef>
#include <string>
#include <vector>

#include "alamr/opt/objective.hpp"

namespace alamr::opt {

struct LbfgsOptions {
  std::size_t max_iterations = 100;
  std::size_t history = 8;          // number of (s, y) correction pairs kept
  double gradient_tolerance = 1e-6; // stop when ||proj grad||_inf below this
  double relative_f_tolerance = 1e-10;
  std::size_t max_line_search_steps = 30;
  double armijo_c1 = 1e-4;
};

enum class StopReason {
  kGradientTolerance,
  kFunctionTolerance,
  kMaxIterations,
  kLineSearchFailed,
};

struct OptimizeResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  StopReason reason = StopReason::kMaxIterations;

  /// True when the optimizer stopped because a tolerance was met.
  bool converged() const noexcept {
    return reason == StopReason::kGradientTolerance ||
           reason == StopReason::kFunctionTolerance;
  }
};

std::string to_string(StopReason reason);

/// Minimizes `f` starting from `x0`. If `bounds.active()`, iterates are
/// kept inside the box and convergence is measured on the projected
/// gradient. `f` must fill the gradient when asked.
OptimizeResult lbfgs_minimize(const Objective& f, std::span<const double> x0,
                              const LbfgsOptions& options = {},
                              const Bounds& bounds = {});

}  // namespace alamr::opt
