// Tests for the Euler physics: conversions, fluxes, HLL properties, and
// the Rankine-Hugoniot shock relations used by the problem setup.

#include "alamr/amr/euler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::amr;
using alamr::stats::Rng;

Prim random_state(Rng& rng) {
  Prim w;
  w.rho = rng.uniform(0.05, 3.0);
  w.u = rng.uniform(-2.0, 2.0);
  w.v = rng.uniform(-2.0, 2.0);
  w.p = rng.uniform(0.1, 5.0);
  return w;
}

TEST(Euler, PrimitiveConservedRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Prim w = random_state(rng);
    const Prim back = to_primitive(to_conserved(w));
    EXPECT_NEAR(back.rho, w.rho, 1e-12);
    EXPECT_NEAR(back.u, w.u, 1e-12);
    EXPECT_NEAR(back.v, w.v, 1e-12);
    EXPECT_NEAR(back.p, w.p, 1e-12);
  }
}

TEST(Euler, PrimitiveClampsVacuum) {
  const Cons vacuum{0.0, 0.0, 0.0, 0.0};
  const Prim w = to_primitive(vacuum);
  EXPECT_GT(w.rho, 0.0);
  EXPECT_GT(w.p, 0.0);
}

TEST(Euler, SoundSpeedKnownValue) {
  const Prim air{1.0, 0.0, 0.0, 1.0};
  EXPECT_NEAR(sound_speed(air), std::sqrt(1.4), 1e-14);
}

TEST(Euler, FluxOfStationaryStateIsPressureOnly) {
  const Prim still{2.0, 0.0, 0.0, 3.0};
  const Cons f = flux_x(to_conserved(still));
  EXPECT_DOUBLE_EQ(f.rho, 0.0);
  EXPECT_NEAR(f.mx, 3.0, 1e-14);  // pressure term
  EXPECT_DOUBLE_EQ(f.my, 0.0);
  EXPECT_DOUBLE_EQ(f.e, 0.0);
}

TEST(Hll, ConsistencyWithEqualStates) {
  // k(U, U) must equal the physical flux F(U).
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Cons u = to_conserved(random_state(rng));
    const Cons hll = hll_flux_x(u, u);
    const Cons physical = flux_x(u);
    EXPECT_NEAR(hll.rho, physical.rho, 1e-12);
    EXPECT_NEAR(hll.mx, physical.mx, 1e-12);
    EXPECT_NEAR(hll.my, physical.my, 1e-12);
    EXPECT_NEAR(hll.e, physical.e, 1e-12);
  }
}

TEST(Hll, UpwindsSupersonicFlow) {
  // Supersonic left-to-right flow: flux equals the left physical flux.
  Prim left{1.0, 5.0, 0.0, 1.0};
  Prim right{0.5, 5.0, 0.0, 0.8};
  const Cons f = hll_flux_x(to_conserved(left), to_conserved(right));
  const Cons fl = flux_x(to_conserved(left));
  EXPECT_NEAR(f.rho, fl.rho, 1e-12);
  EXPECT_NEAR(f.e, fl.e, 1e-12);
}

TEST(Hll, PrimCachedOverloadMatches) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Cons l = to_conserved(random_state(rng));
    const Cons r = to_conserved(random_state(rng));
    const Cons direct = hll_flux_x(l, r);
    const Cons cached = hll_flux_x(l, to_primitive(l), r, to_primitive(r));
    EXPECT_NEAR(direct.rho, cached.rho, 1e-14);
    EXPECT_NEAR(direct.mx, cached.mx, 1e-14);
    EXPECT_NEAR(direct.my, cached.my, 1e-14);
    EXPECT_NEAR(direct.e, cached.e, 1e-14);
  }
}

TEST(Hll, YFluxMatchesRotatedProblem) {
  // hll_flux_y on (rho, mx, my, e) must equal hll_flux_x on the states
  // with u and v swapped, with the momentum components swapped back.
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Prim a = random_state(rng);
    const Prim b = random_state(rng);
    const Cons fy = hll_flux_y(to_conserved(a), to_conserved(b));

    const Prim a_rot{a.rho, a.v, a.u, a.p};
    const Prim b_rot{b.rho, b.v, b.u, b.p};
    const Cons fx = hll_flux_x(to_conserved(a_rot), to_conserved(b_rot));
    EXPECT_NEAR(fy.rho, fx.rho, 1e-13);
    EXPECT_NEAR(fy.mx, fx.my, 1e-13);
    EXPECT_NEAR(fy.my, fx.mx, 1e-13);
    EXPECT_NEAR(fy.e, fx.e, 1e-13);
  }
}

TEST(Hllc, ConsistencyWithEqualStates) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Cons u = to_conserved(random_state(rng));
    const Cons hllc = hllc_flux_x(u, u);
    const Cons physical = flux_x(u);
    EXPECT_NEAR(hllc.rho, physical.rho, 1e-11);
    EXPECT_NEAR(hllc.mx, physical.mx, 1e-11);
    EXPECT_NEAR(hllc.my, physical.my, 1e-11);
    EXPECT_NEAR(hllc.e, physical.e, 1e-11);
  }
}

TEST(Hllc, ResolvesStationaryContactExactly) {
  // A stationary contact (u = 0, equal pressure, density jump) is
  // preserved exactly by HLLC but diffused by HLL — the reason HLLC
  // sharpens the bubble interface.
  const Cons left = to_conserved(Prim{1.0, 0.0, 0.0, 1.0});
  const Cons right = to_conserved(Prim{0.125, 0.0, 0.0, 1.0});
  const Cons hllc = hllc_flux_x(left, right);
  EXPECT_NEAR(hllc.rho, 0.0, 1e-13);  // no mass crosses the contact
  EXPECT_NEAR(hllc.e, 0.0, 1e-13);
  const Cons hll = hll_flux_x(left, right);
  EXPECT_GT(std::abs(hll.rho), 0.05);  // HLL leaks mass across it
}

TEST(Hllc, MatchesHllForSupersonicFlow) {
  // Outside the wave fan both solvers return the upwind physical flux.
  const Prim left{1.0, 5.0, 0.3, 1.0};
  const Prim right{0.5, 5.0, -0.2, 0.8};
  const Cons f_hll = hll_flux_x(to_conserved(left), to_conserved(right));
  const Cons f_hllc = hllc_flux_x(to_conserved(left), to_conserved(right));
  EXPECT_NEAR(f_hll.rho, f_hllc.rho, 1e-12);
  EXPECT_NEAR(f_hll.mx, f_hllc.mx, 1e-12);
  EXPECT_NEAR(f_hll.e, f_hllc.e, 1e-12);
}

TEST(Hllc, TransportsTangentialMomentumUpwind) {
  // Across a contact moving right, tangential momentum advects from the
  // left state.
  const Prim left{1.0, 0.5, 2.0, 1.0};
  const Prim right{0.5, 0.5, -3.0, 1.0};
  const Cons f = hllc_flux_x(to_conserved(left), to_conserved(right));
  // Mass flux is positive (rightward contact), and the tangential
  // momentum flux carries the LEFT v.
  EXPECT_GT(f.rho, 0.0);
  EXPECT_NEAR(f.my / f.rho, 2.0, 1e-10);
}

TEST(MaxWaveSpeed, AtLeastSoundSpeed) {
  const Prim still{1.0, 0.0, 0.0, 1.0};
  EXPECT_NEAR(max_wave_speed(to_conserved(still)), std::sqrt(1.4), 1e-12);
  const Prim moving{1.0, 2.0, -1.0, 1.0};
  EXPECT_NEAR(max_wave_speed(to_conserved(moving)), 2.0 + std::sqrt(1.4), 1e-12);
}

TEST(PostShock, MachTwoTextbookValues) {
  // gamma = 1.4, Ms = 2 into (rho, p) = (1, 1):
  // p2 = 4.5, rho2 = 8/3, u2 = 2 c1 (1 - 3/8).
  const Prim post = post_shock_state(2.0, 1.0, 1.0);
  EXPECT_NEAR(post.p, 4.5, 1e-12);
  EXPECT_NEAR(post.rho, 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(post.u, 2.0 * std::sqrt(1.4) * (1.0 - 3.0 / 8.0), 1e-12);
  EXPECT_DOUBLE_EQ(post.v, 0.0);
}

TEST(PostShock, StrongShockDensityLimit) {
  // As Ms -> inf, rho2/rho1 -> (gamma+1)/(gamma-1) = 6 for gamma = 1.4.
  const Prim post = post_shock_state(100.0, 1.0, 1.0);
  EXPECT_NEAR(post.rho, 6.0, 0.01);
}

TEST(PostShock, WeakShockIsNearIdentity) {
  const Prim post = post_shock_state(1.0001, 1.0, 1.0);
  EXPECT_NEAR(post.rho, 1.0, 1e-3);
  EXPECT_NEAR(post.p, 1.0, 1e-3);
  EXPECT_NEAR(post.u, 0.0, 1e-3);
}

}  // namespace
