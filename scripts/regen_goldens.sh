#!/usr/bin/env bash
# Regenerates the tolerance goldens for the approximate PosteriorBackends
# (tests/golden/backend_{sod,local}_{fig4,fig5}.csv) — and, on request,
# the exact-trajectory byte goldens — via the suites' ALAMR_REGEN_GOLDEN
# hook.
#
# Refusal guard: approximate goldens are only meaningful relative to a
# pinned exact posterior. Before regenerating anything this script runs
# the EXACT byte-identity tests (GoldenTrajectory.* plus the
# BackendParity exact-through-the-interface tests) and REFUSES to
# proceed if any fail: a changed exact trajectory means the seed recipe
# itself moved, which is either a bug to fix or an intentional change
# that must first re-pin the exact goldens explicitly with
#
#   ALAMR_REGEN_EXACT=1 scripts/regen_goldens.sh
#
# (that mode regenerates the byte goldens too, and should be accompanied
# by a DESIGN.md note explaining why the bits moved).
#
# Usage: scripts/regen_goldens.sh [build-dir]     (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

cmake -B "$build_dir" -S . > /dev/null
cmake --build "$build_dir" -j "$(nproc)" --target tests_golden tests_backends > /dev/null

if [[ "${ALAMR_REGEN_EXACT:-0}" == "1" ]]; then
  echo "=== regenerating EXACT byte goldens (ALAMR_REGEN_EXACT=1) ==="
  ALAMR_REGEN_GOLDEN=1 ctest --test-dir "$build_dir" --output-on-failure \
    -R 'GoldenTrajectory'
else
  echo "=== guard: exact goldens must be byte-identical before approximate regen ==="
  if ! ctest --test-dir "$build_dir" --output-on-failure \
      -R 'GoldenTrajectory|BackendParity\.ExactBackend' \
      > /tmp/regen_guard.log 2>&1; then
    tail -50 /tmp/regen_guard.log
    cat >&2 <<'MSG'

REFUSING to regenerate approximate goldens: the EXACT golden trajectories
no longer match their recorded bytes (full log: /tmp/regen_guard.log).
Approximate goldens are pinned relative to the exact posterior; fix the
exact regression first, or — if the change to the exact recipe is
intentional — re-pin everything with ALAMR_REGEN_EXACT=1.
MSG
    exit 1
  fi
  tail -2 /tmp/regen_guard.log
fi

echo "=== regenerating approximate-backend tolerance goldens ==="
ALAMR_REGEN_GOLDEN=1 ctest --test-dir "$build_dir" --output-on-failure \
  -R 'BackendParity\.(SubsetOfData|LocalExperts)'

echo "=== verifying: full backend suite against the fresh goldens ==="
ctest --test-dir "$build_dir" --output-on-failure \
  -R 'Backend(Parity|Properties|Faults|Checkpoint)'

echo "regen_goldens: done — review 'git diff tests/golden/' before committing."
