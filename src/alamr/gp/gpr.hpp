#pragma once

// Gaussian Process Regression (paper Sec. III, Eqs. 1-9).
//
// Mirrors the scikit-learn 0.18 GaussianProcessRegressor the paper uses:
//  - fit() maximizes the log marginal likelihood over the kernel's
//    log-hyperparameters with L-BFGS, optionally with random restarts;
//  - refitting reuses the current hyperparameters as the starting point
//    (Algorithm 1: "use old model's parameters as a starting point");
//  - predict() returns the posterior mean and standard deviation (Eq. 3).

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "alamr/gp/kernels.hpp"
#include "alamr/linalg/cholesky.hpp"
#include "alamr/stats/rng.hpp"

namespace alamr::gp {

struct GprOptions {
  /// Random restarts for hyperparameter optimization on top of the
  /// warm/default start (sklearn: n_restarts_optimizer).
  std::size_t restarts = 1;
  /// Subtract the training-target mean before fitting, add back on predict.
  bool normalize_y = true;
  /// Skip hyperparameter optimization entirely (use kernel as configured).
  bool optimize = true;
  /// L-BFGS iteration budget per start. AL refits run warm-started, so a
  /// modest budget converges in practice; the first fit may use more.
  std::size_t max_opt_iterations = 50;
  /// Numerical jitter floor added to K_y when Cholesky requires it.
  double initial_jitter = 1e-12;
  double max_jitter = 1e-4;
};

/// Posterior mean and standard deviation at query points.
struct Prediction {
  std::vector<double> mean;
  std::vector<double> stddev;
};

class GaussianProcessRegressor {
 public:
  /// Takes ownership of the kernel; its hyperparameters evolve with fits.
  GaussianProcessRegressor(std::unique_ptr<Kernel> kernel,
                           GprOptions options = {});

  GaussianProcessRegressor(const GaussianProcessRegressor& other);
  GaussianProcessRegressor& operator=(const GaussianProcessRegressor& other);
  GaussianProcessRegressor(GaussianProcessRegressor&&) noexcept = default;
  GaussianProcessRegressor& operator=(GaussianProcessRegressor&&) noexcept = default;

  /// Fits the model on (x, y): optimizes hyperparameters (unless disabled)
  /// starting from the kernel's current values, then precomputes the
  /// Cholesky factor and alpha = K_y^{-1} y used by predict().
  /// `rng` drives the optional random restarts.
  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng);

  /// Posterior mean and stddev at the rows of `x` (Eq. 3). Requires fit().
  Prediction predict(const Matrix& x) const;

  /// Posterior mean only (cheaper: skips the variance solves).
  std::vector<double> predict_mean(const Matrix& x) const;

  /// Log marginal likelihood at the current hyperparameters (Eq. 8, with
  /// the -n/2 log(2 pi) constant included). Requires fit().
  double log_marginal_likelihood() const;

  /// LML (and gradient if `grad` non-empty) at arbitrary log-params,
  /// evaluated against the stored training data. Exposed for testing the
  /// analytic gradient against finite differences.
  double log_marginal_likelihood(std::span<const double> log_params,
                                 std::span<double> grad) const;

  bool fitted() const noexcept { return factor_.has_value(); }
  const Kernel& kernel() const noexcept { return *kernel_; }
  std::size_t training_size() const noexcept { return x_train_.rows(); }
  const GprOptions& options() const noexcept { return options_; }

  /// Adjusts fitting options between fits (e.g. thorough initial fit,
  /// cheap warm-started refits during AL). Does not invalidate the model.
  void set_options(const GprOptions& options) noexcept { options_ = options; }

 private:
  /// Builds K_y, factors it, computes alpha; stores everything needed by
  /// predict(). Returns the LML value.
  double compute_posterior();

  std::unique_ptr<Kernel> kernel_;
  GprOptions options_;

  Matrix x_train_;
  std::vector<double> y_train_;       // centered targets when normalize_y
  double y_mean_ = 0.0;
  std::optional<linalg::CholeskyFactor> factor_;
  std::vector<double> alpha_;         // K_y^{-1} (y - mean)
  double lml_ = 0.0;
};

}  // namespace alamr::gp
