// PosteriorBackend parity suite (DESIGN.md §12): the exact backend must
// be byte-for-byte the seed recipe, the approximate backends (subset-of-
// data, local experts) are pinned by tolerance goldens, RMSE/CC/CR parity
// gates against the exact trajectory, posterior-sanity properties, fault
// schedules, and checkpoint round-trips.

#include "backend_parity.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "alamr/core/faults.hpp"
#include "alamr/linalg/simd.hpp"
#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr;
using alamr::testing::check_against_golden;
using alamr::testing::fig4_recipe;
using alamr::testing::fig5_quick_recipe;
using alamr::testing::ParityRecipe;
using alamr::testing::ParitySummary;
using alamr::testing::recipe_csv;
using alamr::testing::run_recipe;
using alamr::testing::summarize;
namespace faults = alamr::core::faults;
namespace simd = alamr::linalg::simd;

gp::BackendOptions exact_backend() { return {}; }

/// Small enough that the fig4 trajectory (25 -> 75 training points) runs
/// well past capacity, so the sliding-subset approximation is actually
/// exercised — not just the within-capacity exact path.
gp::BackendOptions sod_backend() {
  gp::BackendOptions b;
  b.kind = gp::BackendKind::kSubsetOfData;
  b.inducing_points = 48;
  return b;
}

/// Two experts with a low membership floor: at fig4's nInit=25 every
/// region already owns a model, so the acquisition loop runs on real
/// local posteriors instead of the wide prior fallback (under which RGMA
/// would rightly find no safe candidate and stop at iteration 0).
gp::BackendOptions local_backend() {
  gp::BackendOptions b;
  b.kind = gp::BackendKind::kLocalExperts;
  b.experts = 2;
  b.min_expert_size = 5;
  return b;
}

/// Vector dispatch levels reassociate reductions (simd.hpp numerics
/// contract), so backend goldens are recorded and compared at the scalar
/// level; kBackendGoldenTol then only has to absorb cross-host libm /
/// FMA-free codegen differences, while discrete cells must match exactly.
class ScopedScalarSimd {
 public:
  ScopedScalarSimd() : saved_(simd::active_level()) {
    EXPECT_TRUE(simd::set_level(simd::Level::kScalar));
  }
  ~ScopedScalarSimd() { simd::set_level(saved_); }
  ScopedScalarSimd(const ScopedScalarSimd&) = delete;
  ScopedScalarSimd& operator=(const ScopedScalarSimd&) = delete;

 private:
  simd::Level saved_;
};

constexpr double kBackendGoldenTol = 1e-9;
// Ambient-level runs (whatever CPUID selected) carry the vector kernels'
// load, mirroring GoldenTrajectoryTolerance's 1e-6 compounded-drift gate.
constexpr double kBackendVectorTol = 1e-6;

// --- Exact backend: byte identity through the interface ---------------------

TEST(BackendParity, ExactBackendReproducesSeedGoldenBytes) {
  const ScopedScalarSimd pin;
  if (alamr::testing::regenerating_goldens()) GTEST_SKIP();
  // rel_tol 0 = byte compare: the PosteriorBackend indirection must not
  // move a single bit of the seed trajectory.
  check_against_golden(recipe_csv(fig4_recipe(), exact_backend()),
                       "rgma_seed2024.csv", 0.0);
}

TEST(BackendParity, ExactBackendFourThreadsReproducesSeedGoldenBytes) {
  const ScopedScalarSimd pin;
  if (alamr::testing::regenerating_goldens()) GTEST_SKIP();
  check_against_golden(
      recipe_csv(fig4_recipe(), exact_backend(), /*threads=*/4),
      "rgma_seed2024.csv", 0.0);
}

// --- Approximate backends: tolerance goldens --------------------------------

TEST(BackendParity, SubsetOfDataFig4MatchesRecordedGolden) {
  const ScopedScalarSimd pin;
  if (check_against_golden(recipe_csv(fig4_recipe(), sod_backend()),
                           "backend_sod_fig4.csv", kBackendGoldenTol)) {
    GTEST_SKIP() << "regenerated backend_sod_fig4.csv";
  }
}

TEST(BackendParity, SubsetOfDataFig5QuickMatchesRecordedGolden) {
  const ScopedScalarSimd pin;
  if (check_against_golden(recipe_csv(fig5_quick_recipe(), sod_backend()),
                           "backend_sod_fig5.csv", kBackendGoldenTol)) {
    GTEST_SKIP() << "regenerated backend_sod_fig5.csv";
  }
}

TEST(BackendParity, LocalExpertsFig4MatchesRecordedGolden) {
  const ScopedScalarSimd pin;
  if (check_against_golden(recipe_csv(fig4_recipe(), local_backend()),
                           "backend_local_fig4.csv", kBackendGoldenTol)) {
    GTEST_SKIP() << "regenerated backend_local_fig4.csv";
  }
}

TEST(BackendParity, LocalExpertsFig5QuickMatchesRecordedGolden) {
  const ScopedScalarSimd pin;
  if (check_against_golden(recipe_csv(fig5_quick_recipe(), local_backend()),
                           "backend_local_fig5.csv", kBackendGoldenTol)) {
    GTEST_SKIP() << "regenerated backend_local_fig5.csv";
  }
}

TEST(BackendParity, ApproximateGoldensHoldAtAmbientDispatchLevel) {
  if (alamr::testing::regenerating_goldens()) GTEST_SKIP();
  check_against_golden(recipe_csv(fig4_recipe(), sod_backend()),
                       "backend_sod_fig4.csv", kBackendVectorTol);
  check_against_golden(recipe_csv(fig4_recipe(), local_backend()),
                       "backend_local_fig4.csv", kBackendVectorTol);
}

// --- RMSE / CC / CR parity gates vs the exact backend ------------------------
//
// The approximations trade posterior fidelity for asymptotics; the gates
// bound how much. Factors are documented in DESIGN.md §12 and sized from
// the measured fig4 ratios with ~2x headroom — they fail loudly if an
// approximate backend stops learning (RMSE blows up) or its acquisition
// policy collapses (CC/CR far from exact), while tolerating the expected
// drift from a bounded training window / partitioned experts.

constexpr double kRmseParityFactor = 3.0;
constexpr double kCostParityFactor = 1.5;

void expect_summary_parity(const ParitySummary& approx,
                           const ParitySummary& exact) {
  EXPECT_LE(approx.rmse_cost, kRmseParityFactor * exact.rmse_cost);
  EXPECT_LE(approx.rmse_mem, kRmseParityFactor * exact.rmse_mem);
  EXPECT_LE(approx.cc, kCostParityFactor * exact.cc);
  EXPECT_GE(approx.cc, exact.cc / kCostParityFactor);
  // CR can legitimately be ~0 for a good policy; gate it one-sided
  // against the exact trajectory's level plus slack.
  EXPECT_LE(approx.cr, kCostParityFactor * (exact.cr + 1.0));
}

TEST(BackendParity, SubsetOfDataRmseParityWithExact) {
  const ParitySummary exact = summarize(run_recipe(fig4_recipe(), exact_backend()));
  const ParitySummary sod = summarize(run_recipe(fig4_recipe(), sod_backend()));
  expect_summary_parity(sod, exact);
}

TEST(BackendParity, LocalExpertsRmseParityWithExact) {
  const ParitySummary exact = summarize(run_recipe(fig4_recipe(), exact_backend()));
  const ParitySummary local =
      summarize(run_recipe(fig4_recipe(), local_backend()));
  expect_summary_parity(local, exact);
}

// --- Posterior properties ----------------------------------------------------

/// Deterministic 2-D training cloud for the direct-backend properties.
linalg::Matrix property_inputs(std::size_t n, stats::Rng& rng) {
  linalg::Matrix x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.uniform(0.0, 1.0);
    x(i, 1) = rng.uniform(0.0, 1.0);
  }
  return x;
}

double property_response(double x0, double x1) {
  return std::sin(3.0 * x0) + 0.5 * x1 * x1;
}

std::unique_ptr<gp::PosteriorBackend> fitted_backend(
    const gp::BackendOptions& options, std::size_t n, stats::Rng& rng) {
  gp::GprOptions fit;
  fit.restarts = 0;
  fit.max_opt_iterations = 15;
  auto backend = gp::make_backend(options, gp::make_paper_kernel(), fit);
  const linalg::Matrix x = property_inputs(n, rng);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = property_response(x(i, 0), x(i, 1));
  backend->fit(x, y, rng);
  // Freeze hyperparameters for the add_point sequence: the monotone-
  // variance property is pure GP math at fixed theta.
  gp::GprOptions frozen;
  frozen.optimize = false;
  backend->set_fit_options(frozen);
  return backend;
}

void expect_variance_shrinks_at_queried_site(
    const gp::BackendOptions& options) {
  stats::Rng rng(71);
  auto backend = fitted_backend(options, 60, rng);

  linalg::Matrix q(1, 2);
  q(0, 0) = 0.4;
  q(0, 1) = 0.6;
  const double y_q = property_response(q(0, 0), q(0, 1));

  double previous = backend->predict(q).stddev[0];
  EXPECT_GE(previous, 0.0);
  for (int step = 0; step < 8; ++step) {
    backend->add_point(q.row(0), y_q, /*row=*/0, rng, nullptr);
    const double now = backend->predict(q).stddev[0];
    EXPECT_GE(now, 0.0);
    // Repeated direct observation at the site: the posterior there must
    // never get LESS certain (tiny slack for FP noise).
    EXPECT_LE(now, previous * (1.0 + 1e-9))
        << "step " << step << ": stddev grew " << previous << " -> " << now;
    previous = now;
  }
}

TEST(BackendProperties, SubsetOfDataVarianceShrinksAtQueriedSite) {
  // Capacity 32 on 60 + 8 points: the window slides the whole sequence,
  // so the property holds in the approximating regime, not just the
  // exact-prefix one.
  gp::BackendOptions b = sod_backend();
  b.inducing_points = 32;
  expect_variance_shrinks_at_queried_site(b);
}

TEST(BackendProperties, LocalExpertsVarianceShrinksAtQueriedSite) {
  expect_variance_shrinks_at_queried_site(local_backend());
}

TEST(BackendProperties, SubsetWithFullCapacityReproducesExactPredictions) {
  // m >= n: the subset IS the training set, so the backend must agree
  // with the exact recipe everywhere (ISSUE acceptance: 1e-10).
  gp::BackendOptions sod;
  sod.kind = gp::BackendKind::kSubsetOfData;
  sod.inducing_points = 4096;

  stats::Rng rng_a(81);
  auto exact = fitted_backend(exact_backend(), 50, rng_a);
  stats::Rng rng_b(81);
  auto subset = fitted_backend(sod, 50, rng_b);

  stats::Rng add_rng_a(91);
  stats::Rng add_rng_b(91);
  stats::Rng query_rng(101);
  const linalg::Matrix extra = property_inputs(10, query_rng);
  for (std::size_t i = 0; i < extra.rows(); ++i) {
    const double y = property_response(extra(i, 0), extra(i, 1));
    exact->add_point(extra.row(i), y, 0, add_rng_a, nullptr);
    subset->add_point(extra.row(i), y, 0, add_rng_b, nullptr);
  }

  const linalg::Matrix q = property_inputs(25, query_rng);
  const gp::Prediction pe = exact->predict(q);
  const gp::Prediction ps = subset->predict(q);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    EXPECT_NEAR(ps.mean[i], pe.mean[i], 1e-10);
    EXPECT_NEAR(ps.stddev[i], pe.stddev[i], 1e-10);
  }
  EXPECT_NEAR(subset->lml(), exact->lml(), 1e-10);
}

// --- Fault schedules fire identically across backends ------------------------
//
// faults.hpp determinism contract: whether hit k fires is a pure function
// of (plan seed, site, k). acquire.oom is consulted once per acquisition
// attempt, a cadence the backend cannot change, so the CENSORED ITERATION
// PATTERN must be identical whichever posterior drives selection.

ParityRecipe fault_recipe() {
  ParityRecipe r = fig5_quick_recipe();
  r.iterations = 20;
  return r;
}

std::vector<std::size_t> censored_iterations(
    const core::TrajectoryResult& result) {
  std::vector<std::size_t> out;
  for (const auto& rec : result.iterations) {
    if (rec.censor != core::CensorKind::kNone) out.push_back(rec.iteration);
  }
  return out;
}

core::TrajectoryResult run_with_plan(const gp::BackendOptions& backend,
                                     const std::string& plan) {
  const ParityRecipe recipe = fault_recipe();
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(
      recipe.dataset_size, recipe.dataset_seed);
  core::AlOptions options = alamr::testing::recipe_options(recipe, backend);
  options.failures.plan = faults::FaultPlan::parse(plan);
  // Drop censored candidates without a synthetic label: the injected
  // fires stay visible in the records while distorting the posterior as
  // little as possible, so every backend's run outlives the hit schedule.
  options.failures.policy = core::CensorPolicy::kDropCensored;
  const core::AlSimulator simulator(dataset, options);
  const core::Rgma rgma(simulator.memory_limit_log10());
  stats::Rng partition_rng(recipe.partition_seed);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);
  stats::Rng rng(recipe.run_seed);
  return simulator.run_with_partition(rgma, partition, rng);
}

TEST(BackendFaults, AcquireOomCensorsIdenticalIterationsUnderEveryBackend) {
  // Early hit numbers: every backend's trajectory outlives pass 5 even
  // if the post-censor posterior drives an early stop later on.
  const std::string plan = "seed=5;acquire.oom:hits=1|3|5";
  const auto exact = run_with_plan(exact_backend(), plan);
  const auto sod = run_with_plan(sod_backend(), plan);
  const auto local = run_with_plan(local_backend(), plan);

  ASSERT_GT(exact.iterations.size(), 5u);
  ASSERT_GT(sod.iterations.size(), 5u);
  ASSERT_GT(local.iterations.size(), 5u);
  const auto expected = censored_iterations(exact);
  ASSERT_EQ(expected.size(), 3u);
  EXPECT_EQ(censored_iterations(sod), expected);
  EXPECT_EQ(censored_iterations(local), expected);
  EXPECT_EQ(sod.censored_count, exact.censored_count);
  EXPECT_EQ(local.censored_count, exact.censored_count);
}

TEST(BackendFaults, CholeskyNonPsdRecoversUnderEveryBackend) {
  // A probabilistic veto on factorization attempts: every backend's
  // recovery ladder (jitter escalation / refit) must absorb it and finish
  // the horizon with finite metrics.
  const std::string plan = "seed=17;cholesky.non_psd:p=0.02,max=6";
  for (const auto& backend : {exact_backend(), sod_backend(), local_backend()}) {
    const auto result = run_with_plan(backend, plan);
    EXPECT_EQ(result.iterations.size(), fault_recipe().iterations)
        << gp::to_string(backend.kind);
    for (const auto& rec : result.iterations) {
      EXPECT_TRUE(std::isfinite(rec.rmse_cost)) << gp::to_string(backend.kind);
      EXPECT_TRUE(std::isfinite(rec.rmse_mem)) << gp::to_string(backend.kind);
    }
  }
}

// --- Checkpoint / resume round-trips mid-trajectory approximations -----------

void expect_resume_byte_identical(const gp::BackendOptions& backend,
                                  const char* file_tag) {
  const ParityRecipe recipe = fault_recipe();
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(
      recipe.dataset_size, recipe.dataset_seed);
  const core::AlOptions options =
      alamr::testing::recipe_options(recipe, backend);
  const core::AlSimulator simulator(dataset, options);
  const core::Rgma rgma(simulator.memory_limit_log10());
  stats::Rng partition_rng(recipe.partition_seed);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  stats::Rng rng_full(recipe.run_seed);
  const auto full = simulator.run_with_partition(rgma, partition, rng_full);

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / file_tag;
  std::filesystem::remove(path);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 3;
  cfg.halt_after_iterations = 9;  // kill mid-trajectory
  stats::Rng rng_first(recipe.run_seed);
  const auto first = simulator.run_resumable(rgma, partition, rng_first, cfg);
  EXPECT_EQ(first.stop_reason, core::StopReason::kCheckpointHalt);
  ASSERT_TRUE(std::filesystem::exists(path));

  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  stats::Rng rng_second(recipe.run_seed);
  const auto resumed = simulator.run_resumable(rgma, partition, rng_second, cfg);
  EXPECT_EQ(core::trajectory_to_csv(resumed), core::trajectory_to_csv(full));
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(BackendCheckpoint, SubsetOfDataResumeIsByteIdentical) {
  expect_resume_byte_identical(sod_backend(), "backend_sod_resume.json");
}

TEST(BackendCheckpoint, LocalExpertsResumeIsByteIdentical) {
  // Exercises PosteriorBackend::save_state/restore_state: the frozen
  // centroids are NOT derivable from (rows, labels, theta) and must ride
  // the checkpoint.
  expect_resume_byte_identical(local_backend(), "backend_local_resume.json");
}

TEST(BackendCheckpoint, CheckpointFromDifferentBackendIsRejected) {
  // Same recipe, different backend kind: the v4 fingerprint must refuse
  // the file instead of silently resuming a chimera trajectory.
  const ParityRecipe recipe = fault_recipe();
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(
      recipe.dataset_size, recipe.dataset_seed);
  const core::AlOptions exact_options =
      alamr::testing::recipe_options(recipe, exact_backend());
  const core::AlSimulator exact_sim(dataset, exact_options);
  const core::Rgma rgma(exact_sim.memory_limit_log10());
  stats::Rng partition_rng(recipe.partition_seed);
  const data::Partition partition = data::make_partition(
      dataset.size(), exact_options.n_test, exact_options.n_init,
      partition_rng);

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "backend_mismatch.json";
  std::filesystem::remove(path);
  core::CheckpointConfig cfg;
  cfg.path = path;
  cfg.stride = 2;
  cfg.halt_after_iterations = 4;
  stats::Rng rng_a(recipe.run_seed);
  (void)exact_sim.run_resumable(rgma, partition, rng_a, cfg);
  ASSERT_TRUE(std::filesystem::exists(path));

  const core::AlOptions sod_options =
      alamr::testing::recipe_options(recipe, sod_backend());
  const core::AlSimulator sod_sim(dataset, sod_options);
  cfg.resume = true;
  cfg.halt_after_iterations = 0;
  stats::Rng rng_b(recipe.run_seed);
  EXPECT_THROW(sod_sim.run_resumable(rgma, partition, rng_b, cfg),
               std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
