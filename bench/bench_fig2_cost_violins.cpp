// E3 — paper Fig. 2: distributions of the ACTUAL costs of the samples
// selected in the first 150 AL iterations, one violin per algorithm
// (RandUniform, MaxSigma, MinPred, RandGoodness). Prints the violin
// statistics (median, IQR) and the KDE of log10 cost evaluated on a grid
// — the plotted density is exactly the violin outline.

#include <cstdio>
#include <memory>

#include "alamr/data/transforms.hpp"
#include "alamr/stats/descriptive.hpp"
#include "alamr/stats/kde.hpp"
#include "bench_common.hpp"

int main() {
  using namespace alamr;
  bench::print_header(
      "E3: cost distributions of AL-selected samples", "Fig. 2",
      "MinPred & RandGoodness medians << RandUniform ~= MaxSigma; "
      "RandUniform long-tailed");

  const data::Dataset dataset = bench::load_dataset();
  const core::AlOptions options = bench::al_options(/*n_init=*/50,
                                                    /*iterations=*/150);
  const core::AlSimulator simulator(dataset, options);

  std::vector<std::unique_ptr<core::Strategy>> strategies;
  strategies.push_back(std::make_unique<core::RandUniform>());
  strategies.push_back(std::make_unique<core::MaxSigma>());
  strategies.push_back(std::make_unique<core::MinPred>());
  strategies.push_back(std::make_unique<core::RandGoodness>());

  // One trajectory per algorithm on the same partition (as in the paper's
  // single-trajectory violin figure).
  stats::Rng partition_rng(20180501);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  std::vector<std::vector<double>> selected_costs;
  std::printf("\n%-14s %10s %10s %10s %10s %10s %12s\n", "algorithm", "min",
              "q25", "median", "q75", "max", "total[nh]");
  for (const auto& strategy : strategies) {
    stats::Rng rng(7);
    const core::TrajectoryResult traj =
        simulator.run_with_partition(*strategy, partition, rng);
    std::vector<double> costs;
    for (const auto& rec : traj.iterations) costs.push_back(rec.actual_cost);
    const stats::Summary s = stats::summarize(costs);
    double total = 0.0;
    for (const double c : costs) total += c;
    std::printf("%-14s %10.4f %10.4f %10.4f %10.4f %10.4f %12.3f\n",
                traj.strategy_name.c_str(), s.min, s.q25, s.median, s.q75,
                s.max, total);
    selected_costs.push_back(std::move(costs));
  }

  // Violin outlines: Gaussian KDE of log10(cost), shared grid.
  std::printf("\nViolin outlines: density of log10(cost) on a common grid\n");
  std::printf("%12s", "log10(cost)");
  for (const auto& strategy : strategies) {
    std::printf(" %13.13s", strategy->name().c_str());
  }
  std::printf("\n");

  std::vector<stats::DensityCurve> curves;
  double lo = 1e300;
  double hi = -1e300;
  for (const auto& costs : selected_costs) {
    const auto log_costs = data::log10_transform(costs);
    curves.push_back(stats::gaussian_kde(log_costs, 25));
    lo = std::min(lo, curves.back().x.front());
    hi = std::max(hi, curves.back().x.back());
  }
  constexpr int kGrid = 25;
  for (int g = 0; g < kGrid; ++g) {
    const double x = lo + (hi - lo) * g / (kGrid - 1);
    std::printf("%12.3f", x);
    for (std::size_t s = 0; s < curves.size(); ++s) {
      // Nearest-grid-point lookup into each algorithm's own KDE grid.
      const auto& curve = curves[s];
      double best = 0.0;
      double best_dist = 1e300;
      for (std::size_t i = 0; i < curve.x.size(); ++i) {
        const double d = std::abs(curve.x[i] - x);
        if (d < best_dist) {
          best_dist = d;
          best = curve.density[i];
        }
      }
      const bool inside = x >= curve.x.front() && x <= curve.x.back();
      std::printf(" %13.4f", inside ? best : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}
