# Empty dependencies file for surrogate_explorer.
# This may be replaced when dependencies are built.
