#include "alamr/opt/multistart.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "alamr/core/faults.hpp"
#include "alamr/core/resilience.hpp"
#include "alamr/core/parallel.hpp"

namespace alamr::opt {

OptimizeResult multistart_minimize(const Objective& f,
                                   std::span<const double> x0,
                                   const Bounds& bounds,
                                   const MultistartOptions& options,
                                   stats::Rng& rng) {
  if (options.restarts > 0 &&
      (bounds.lower.size() != x0.size() || bounds.upper.size() != x0.size())) {
    throw std::invalid_argument(
        "multistart_minimize: random restarts need full box bounds");
  }

  // Draw every random start up-front, in restart order, so the rng stream
  // is consumed exactly as the serial loop consumed it — results do not
  // depend on the thread count.
  std::vector<std::vector<double>> starts;
  starts.reserve(options.restarts + 1);
  starts.emplace_back(x0.begin(), x0.end());
  for (std::size_t r = 0; r < options.restarts; ++r) {
    std::vector<double> start(x0.size());
    for (std::size_t i = 0; i < start.size(); ++i) {
      start[i] = rng.uniform(bounds.lower[i], bounds.upper[i]);
    }
    starts.push_back(std::move(start));
  }

  // Fault site "opt.diverge": consulted once per start HERE, on the
  // calling thread (never inside pool tasks), so the schedule is
  // deterministic whatever the thread count. A fired start is poisoned to
  // a NaN objective value, as if its line search diverged; callers that
  // see a non-finite best value walk the recovery ladder in gpr.cpp.
  std::vector<char> diverged;
  if (core::faults::armed()) {
    diverged.resize(starts.size(), 0);
    for (std::size_t r = 0; r < starts.size(); ++r) {
      diverged[r] = core::faults::fire(core::faults::Site::kOptDiverge) ? 1 : 0;
      if (diverged[r] != 0) {
        core::resilience::note(core::resilience::Event::kOptDiverge);
      }
    }
  }

  // The runs are independent; `f` may be called from several threads at
  // once (the GPR objective only reads the stored training data).
  std::vector<OptimizeResult> results(starts.size());
  core::parallel_for(starts.size(), [&](std::size_t r) {
    if (!diverged.empty() && diverged[r] != 0) {
      results[r].x = starts[r];
      results[r].value = std::numeric_limits<double>::quiet_NaN();
      results[r].reason = StopReason::kLineSearchFailed;
      return;
    }
    results[r] = lbfgs_minimize(f, starts[r], options.lbfgs, bounds);
  });

  // Reduce in start order with a strict '<' so ties keep the earliest run
  // (the warm start in particular), matching the serial loop; evaluation
  // counts add up across all runs.
  std::size_t best_index = 0;
  std::size_t evaluations = results[0].evaluations;
  for (std::size_t r = 1; r < results.size(); ++r) {
    evaluations += results[r].evaluations;
    // NaN never wins a '<', so without the isnan escape a diverged warm
    // start would shadow every later finite restart.
    if ((std::isnan(results[best_index].value) &&
         !std::isnan(results[r].value)) ||
        results[r].value < results[best_index].value) {
      best_index = r;
    }
  }
  OptimizeResult best = std::move(results[best_index]);
  best.evaluations = evaluations;
  return best;
}

}  // namespace alamr::opt
