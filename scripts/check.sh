#!/usr/bin/env bash
# Pre-PR gate: builds and runs the full test suite in four configurations
# and fails on the first broken one.
#
#   1. plain       — the default release build (build-check/plain)
#   2. asan        — ALAMR_SANITIZE=address,undefined with the throwing
#                    ALAMR_ASSERT checks forced on (ALAMR_DEBUG_ASSERTS)
#   3. native      — ALAMR_NATIVE=ON (-march=native, FP contraction off);
#                    proves host-tuned codegen stays bit-identical
#   4. threaded    — plain binaries, ctest with ALAMR_THREADS=4 so every
#                    suite (not just tests_core_threads4) exercises the
#                    4-lane pool
#
# Finally an explicit golden gate re-runs the golden-trajectory byte
# comparisons (which sweep the cached-kernel / incremental-refit /
# incremental-cross configurations internally) on the plain and native
# builds, serial and with ALAMR_THREADS=4.  They already ran as part of
# the full suites above; the separate step makes a golden break impossible
# to miss in the output.
#
# Usage: scripts/check.sh [jobs]     (default: nproc)
#
# Build trees live under build-check/ to leave the main build/ alone.

set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(nproc)}"

run_config() {
  local name="$1"
  local build_dir="build-check/$name"
  shift
  echo "=== [$name] configure + build ==="
  cmake -B "$build_dir" -S . "$@" > /dev/null
  cmake --build "$build_dir" -j "$jobs" > /dev/null
  echo "=== [$name] ctest ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" > /tmp/check_"$name".log 2>&1 || {
    tail -50 /tmp/check_"$name".log
    echo "FAILED: $name (full log: /tmp/check_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_"$name".log
}

run_golden() {
  local name="$1"
  local build_dir="$2"
  local threads="$3"
  echo "=== [golden/$name] trajectory byte comparisons (ALAMR_THREADS=$threads) ==="
  ALAMR_THREADS="$threads" ctest --test-dir "$build_dir" --output-on-failure \
    -R 'GoldenTrajectory' > /tmp/check_golden_"$name".log 2>&1 || {
    tail -50 /tmp/check_golden_"$name".log
    echo "FAILED: golden/$name (full log: /tmp/check_golden_$name.log)"
    exit 1
  }
  tail -2 /tmp/check_golden_"$name".log
}

run_config plain
run_config asan -DALAMR_SANITIZE=address,undefined -DALAMR_DEBUG_ASSERTS=ON
run_config native -DALAMR_NATIVE=ON

echo "=== [threads4] ctest with ALAMR_THREADS=4 on the plain build ==="
ALAMR_THREADS=4 ctest --test-dir build-check/plain --output-on-failure -j "$jobs" \
  > /tmp/check_threads4.log 2>&1 || {
  tail -50 /tmp/check_threads4.log
  echo "FAILED: threads4 (full log: /tmp/check_threads4.log)"
  exit 1
}
tail -2 /tmp/check_threads4.log

run_golden plain build-check/plain 1
run_golden plain4 build-check/plain 4
run_golden native build-check/native 1
run_golden native4 build-check/native 4

echo "All checks passed."
