#include "alamr/opt/multistart.hpp"

#include <stdexcept>

namespace alamr::opt {

OptimizeResult multistart_minimize(const Objective& f,
                                   std::span<const double> x0,
                                   const Bounds& bounds,
                                   const MultistartOptions& options,
                                   stats::Rng& rng) {
  OptimizeResult best = lbfgs_minimize(f, x0, options.lbfgs, bounds);

  if (options.restarts > 0 &&
      (bounds.lower.size() != x0.size() || bounds.upper.size() != x0.size())) {
    throw std::invalid_argument(
        "multistart_minimize: random restarts need full box bounds");
  }

  std::vector<double> start(x0.size());
  for (std::size_t r = 0; r < options.restarts; ++r) {
    for (std::size_t i = 0; i < start.size(); ++i) {
      start[i] = rng.uniform(bounds.lower[i], bounds.upper[i]);
    }
    OptimizeResult candidate = lbfgs_minimize(f, start, options.lbfgs, bounds);
    candidate.evaluations += best.evaluations;
    if (candidate.value < best.value) {
      best = std::move(candidate);
    } else {
      best.evaluations = candidate.evaluations;
    }
  }
  return best;
}

}  // namespace alamr::opt
