// Tests for trajectory/curve CSV export.

#include "alamr/core/export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace {

using namespace alamr::core;

TrajectoryResult sample_trajectory() {
  TrajectoryResult traj;
  traj.strategy_name = "RandGoodness";
  for (std::size_t i = 0; i < 3; ++i) {
    IterationRecord rec;
    rec.iteration = i;
    rec.dataset_row = 10 + i;
    rec.actual_cost = 0.5 * static_cast<double>(i + 1);
    rec.actual_memory = 1.25;
    rec.rmse_cost = 0.1;
    rec.rmse_mem = 0.2;
    rec.rmse_cost_weighted = 0.3;
    rec.cumulative_cost = 0.5 * static_cast<double>((i + 1) * (i + 2)) / 2.0;
    rec.cumulative_regret = 0.0;
    traj.iterations.push_back(rec);
  }
  return traj;
}

TEST(Export, TrajectoryCsvStructure) {
  const std::string csv = trajectory_to_csv(sample_trajectory());
  std::istringstream is(csv);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header.substr(0, 21), "iteration,dataset_row");
  // 13 columns in the header.
  EXPECT_EQ(std::count(header.begin(), header.end(), ','), 12);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    if (!line.empty()) {
      EXPECT_EQ(std::count(line.begin(), line.end(), ','), 12);
      ++rows;
    }
  }
  EXPECT_EQ(rows, 3u);
  EXPECT_NE(csv.find("10,0.5"), std::string::npos);
}

TEST(Export, EmptyTrajectoryIsHeaderOnly) {
  TrajectoryResult empty;
  const std::string csv = trajectory_to_csv(empty);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

TEST(Export, CurveCsvStructure) {
  std::vector<CurvePoint> curve(2);
  curve[0] = {0, 1.5, 1.0, 2.0, 3};
  curve[1] = {1, 1.25, 1.1, 1.4, 3};
  const std::string csv = curve_to_csv(curve);
  EXPECT_NE(csv.find("iteration,mean,lo,hi,count"), std::string::npos);
  EXPECT_NE(csv.find("0,1.5,1,2,3"), std::string::npos);
}

TEST(Export, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "alamr_traj.csv";
  write_trajectory_csv(sample_trajectory(), path);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 100u);
  std::filesystem::remove(path);
  EXPECT_THROW(
      write_trajectory_csv(sample_trajectory(), "/nonexistent/dir/x.csv"),
      std::runtime_error);
}

}  // namespace
