// The observability layer (core/trace.hpp): counters, timer aggregation,
// JSON/CSV export, thread-safety of concurrent increments, and the
// per-trajectory reports the simulator attaches.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "alamr/core/parallel.hpp"
#include "alamr/core/simulator.hpp"
#include "alamr/core/strategies.hpp"
#include "alamr/core/trace.hpp"
#include "synthetic_dataset.hpp"

namespace {

using namespace alamr;
using namespace alamr::core;

/// Saves and restores the process-wide enabled flag so tests compose.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) : previous_(trace::enabled()) {
    trace::set_enabled(on);
  }
  ~EnabledGuard() { trace::set_enabled(previous_); }

 private:
  bool previous_;
};

TEST(Trace, DisabledCallsAreNoOps) {
  const EnabledGuard guard(false);
  trace::TraceCollector collector;
  const trace::ScopedCollector scope(collector);
  trace::count("noop.counter", 5);
  trace::record_time("noop.phase", 1.0);
  {
    const trace::ScopedTimer timer("noop.timer");
  }
  const trace::TraceReport report = collector.report();
  EXPECT_TRUE(report.counters.empty());
  EXPECT_TRUE(report.phases.empty());
}

TEST(Trace, CountersAccumulateIntoCurrentCollector) {
  const EnabledGuard guard(true);
  trace::TraceCollector collector;
  {
    const trace::ScopedCollector scope(collector);
    trace::count("alpha");
    trace::count("alpha", 3);
    trace::count("beta", 7);
  }
  // Outside the scope nothing lands in this collector any more.
  trace::count("alpha", 100);

  const trace::TraceReport report = collector.report();
  EXPECT_EQ(report.counter("alpha"), 4u);
  EXPECT_EQ(report.counter("beta"), 7u);
  EXPECT_EQ(report.counter("never.incremented"), 0u);
  ASSERT_EQ(report.counters.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(report.counters[0].name, "alpha");
  EXPECT_EQ(report.counters[1].name, "beta");
}

TEST(Trace, ScopedCollectorsNestAndRestore) {
  const EnabledGuard guard(true);
  trace::TraceCollector outer;
  trace::TraceCollector inner;
  {
    const trace::ScopedCollector outer_scope(outer);
    trace::count("x");
    {
      const trace::ScopedCollector inner_scope(inner);
      EXPECT_EQ(trace::current_collector(), &inner);
      trace::count("x");
    }
    EXPECT_EQ(trace::current_collector(), &outer);
    trace::count("x");
  }
  EXPECT_EQ(outer.report().counter("x"), 2u);
  EXPECT_EQ(inner.report().counter("x"), 1u);
}

TEST(Trace, TimerAggregationTracksCallsTotalMinMax) {
  trace::TraceCollector collector;
  collector.record("phase", 2e-6);
  collector.record("phase", 8e-6);
  collector.record("phase", 2e-3);

  const trace::TraceReport report = collector.report();
  const trace::PhaseStats* stats = report.phase("phase");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->calls, 3u);
  EXPECT_DOUBLE_EQ(stats->total_seconds, 2e-6 + 8e-6 + 2e-3);
  EXPECT_DOUBLE_EQ(stats->min_seconds, 2e-6);
  EXPECT_DOUBLE_EQ(stats->max_seconds, 2e-3);
  EXPECT_EQ(report.phase("missing"), nullptr);
}

TEST(Trace, HistogramBucketsAreLogScale) {
  // Bucket 0: < 1 us; bucket b: [4^(b-1), 4^b) us; last bucket open-ended.
  EXPECT_EQ(trace::histogram_bucket(0.0), 0u);
  EXPECT_EQ(trace::histogram_bucket(0.5e-6), 0u);
  EXPECT_EQ(trace::histogram_bucket(1e-6), 1u);
  EXPECT_EQ(trace::histogram_bucket(3.9e-6), 1u);
  EXPECT_EQ(trace::histogram_bucket(4e-6), 2u);
  EXPECT_EQ(trace::histogram_bucket(15e-6), 2u);
  EXPECT_EQ(trace::histogram_bucket(1e-3), 5u);  // 1000 us in [256, 1024)
  EXPECT_EQ(trace::histogram_bucket(1e9), trace::kHistogramBuckets - 1);

  trace::TraceCollector collector;
  collector.record("p", 2e-6);
  collector.record("p", 3e-6);
  collector.record("p", 1e-3);
  // phase() points into the report, so the report must stay alive.
  const trace::TraceReport report = collector.report();
  const trace::PhaseStats* stats = report.phase("p");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->histogram[1], 2u);
  EXPECT_EQ(stats->histogram[5], 1u);
}

TEST(Trace, ScopedTimerRecordsElapsedTime) {
  const EnabledGuard guard(true);
  trace::TraceCollector collector;
  const trace::ScopedCollector scope(collector);
  {
    const trace::ScopedTimer timer("timed");
    // Do a little observable work so elapsed > 0 even at coarse clocks.
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i);
  }
  const trace::TraceReport report = collector.report();
  const trace::PhaseStats* stats = report.phase("timed");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->calls, 1u);
  EXPECT_GE(stats->total_seconds, 0.0);
  EXPECT_GE(stats->max_seconds, stats->min_seconds);
}

TEST(Trace, ConcurrentIncrementsFromPoolSumExactly) {
  const EnabledGuard guard(true);
  constexpr std::size_t kIncrements = 20000;

  // Direct hammering of one shared collector from 4 pool lanes.
  trace::TraceCollector collector;
  ThreadPool pool(4);
  pool.parallel_for(kIncrements, [&collector](std::size_t i) {
    collector.count("concurrent", 1);
    collector.record("concurrent.phase", 1e-6 * static_cast<double>(i % 3));
  });
  const trace::TraceReport report = collector.report();
  EXPECT_EQ(report.counter("concurrent"), kIncrements);
  ASSERT_NE(report.phase("concurrent.phase"), nullptr);
  EXPECT_EQ(report.phase("concurrent.phase")->calls, kIncrements);

  // The same through the free-function API: worker threads have no
  // thread-local collector, so the global sink must absorb every count.
  trace::global_collector().clear();
  pool.parallel_for(kIncrements,
                    [](std::size_t) { trace::count("concurrent.global"); });
  EXPECT_EQ(trace::global_report().counter("concurrent.global"), kIncrements);
}

TEST(Trace, PoolTaskDispatchIsCounted) {
  const EnabledGuard guard(true);
  trace::TraceCollector collector;
  const trace::ScopedCollector scope(collector);
  ThreadPool pool(4);
  std::atomic<std::size_t> touched{0};
  pool.parallel_for_chunks(100, [&touched](std::size_t begin, std::size_t end) {
    touched.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(touched.load(), 100u);
  // 4 lanes: the caller runs chunk 0 inline, 3 tasks go to the queue — and
  // they are counted on the submitting thread, i.e. into this collector.
  EXPECT_EQ(collector.report().counter("pool.tasks"), 3u);
}

TEST(Trace, JsonExportContainsCountersPhasesAndFingerprint) {
  trace::TraceCollector collector;
  collector.count("gpr.fit_full", 3);
  collector.record("refit", 0.25);
  collector.record("refit", 0.75);
  trace::TraceReport report = collector.report();
  report.fingerprint = "00ff00ff00ff00ff";

  const std::string json = trace::trace_report_to_json(report);
  EXPECT_NE(json.find("\"fingerprint\": \"00ff00ff00ff00ff\""),
            std::string::npos);
  EXPECT_NE(json.find("\"gpr.fit_full\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"refit\": {\"calls\": 2, \"total_s\": 1"),
            std::string::npos);
  EXPECT_NE(json.find("\"mean_s\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"min_s\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"max_s\": 0.75"), std::string::npos);
  EXPECT_NE(json.find("\"histogram_us\""), std::string::npos);
}

TEST(Trace, CsvExportHasOneRowPerEntry) {
  trace::TraceCollector collector;
  collector.count("alpha", 2);
  collector.count("beta", 5);
  collector.record("select", 0.5);
  trace::TraceReport report = collector.report();
  report.fingerprint = "deadbeefdeadbeef";

  const std::string csv = trace::trace_report_to_csv(report);
  std::istringstream lines(csv);
  std::string line;
  std::vector<std::string> rows;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], "kind,name,value,calls,total_s,mean_s,min_s,max_s");
  EXPECT_EQ(rows[1], "fingerprint,deadbeefdeadbeef,,,,,,");
  EXPECT_EQ(rows[2], "counter,alpha,2,,,,,");
  EXPECT_EQ(rows[3], "counter,beta,5,,,,,");
  EXPECT_EQ(rows[4], "phase,select,,1,0.5,0.5,0.5,0.5");
}

TEST(Trace, ReportsRoundTripThroughFiles) {
  trace::TraceCollector collector;
  collector.count("io.counter", 42);
  collector.record("io.phase", 0.125);
  trace::TraceReport report = collector.report();
  report.fingerprint = "0123456789abcdef";

  const auto dir = std::filesystem::temp_directory_path();
  const auto json_path = dir / "alamr_trace_test.json";
  const auto csv_path = dir / "alamr_trace_test.csv";
  trace::write_trace_json(report, json_path);
  trace::write_trace_csv(report, csv_path);

  const auto slurp = [](const std::filesystem::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  EXPECT_EQ(slurp(json_path), trace::trace_report_to_json(report));
  EXPECT_EQ(slurp(csv_path), trace::trace_report_to_csv(report));
  std::filesystem::remove(json_path);
  std::filesystem::remove(csv_path);
}

TEST(Trace, ParseTraceFlagFormsAndEnabling) {
  const EnabledGuard guard(false);

  const char* no_flag[] = {"prog", "--other"};
  EXPECT_FALSE(trace::parse_trace_flag(2, const_cast<char**>(no_flag)));
  EXPECT_FALSE(trace::enabled());

  const char* spaced[] = {"prog", "--trace", "/tmp/out.json"};
  const auto path = trace::parse_trace_flag(3, const_cast<char**>(spaced));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, "/tmp/out.json");
  EXPECT_TRUE(trace::enabled());

  trace::set_enabled(false);
  const char* equals[] = {"prog", "--trace=/tmp/eq.json"};
  const auto eq_path = trace::parse_trace_flag(2, const_cast<char**>(equals));
  ASSERT_TRUE(eq_path.has_value());
  EXPECT_EQ(*eq_path, "/tmp/eq.json");
  EXPECT_TRUE(trace::enabled());
}

TEST(Trace, FingerprintIsDeterministicAndSensitive) {
  trace::Fingerprint a;
  a.add("strategy").add(std::uint64_t{50}).add(1.5).add(true);
  trace::Fingerprint b;
  b.add("strategy").add(std::uint64_t{50}).add(1.5).add(true);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 16u);

  trace::Fingerprint c;
  c.add("strategy").add(std::uint64_t{51}).add(1.5).add(true);
  EXPECT_NE(a.hex(), c.hex());

  // The length separator keeps concatenations distinct.
  trace::Fingerprint ab;
  ab.add("ab").add("c");
  trace::Fingerprint a_bc;
  a_bc.add("a").add("bc");
  EXPECT_NE(ab.hex(), a_bc.hex());
}

// --- Simulator integration -----------------------------------------------

AlOptions trace_test_options(std::size_t iterations) {
  AlOptions options;
  options.n_test = 40;
  options.n_init = 12;
  options.max_iterations = iterations;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 25;
  options.refit.restarts = 0;
  // Zero refit budget: the warm start is returned unchanged every
  // iteration, so with incremental_refit every refit takes the fast path.
  options.refit.max_opt_iterations = 0;
  return options;
}

TEST(TraceSimulator, FastPathCountsMatchIncrementalRefit) {
  const EnabledGuard guard(true);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);
  constexpr std::size_t kIterations = 8;

  AlOptions options = trace_test_options(kIterations);
  options.incremental_refit = true;
  const AlSimulator simulator(dataset, options);
  const RandGoodness strategy;
  stats::Rng rng(7);
  const TrajectoryResult result = simulator.run(strategy, rng);
  ASSERT_EQ(result.iterations.size(), kIterations);

  // Two models (cost + memory): the initial fits are the only full
  // posterior builds; every refit extends incrementally.
  EXPECT_EQ(result.trace.counter("gpr.fit_full"), 2u);
  EXPECT_EQ(result.trace.counter("gpr.fit_incremental"), 2 * kIterations);
  EXPECT_EQ(result.trace.counter("sim.iterations"), kIterations);
  EXPECT_EQ(result.trace.counter("cholesky.extend"), 2 * kIterations);
  EXPECT_EQ(result.trace.counter("cholesky.extend_rejected"), 0u);
}

TEST(TraceSimulator, FullRefitCountsWhenIncrementalDisabled) {
  const EnabledGuard guard(true);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);
  constexpr std::size_t kIterations = 8;

  AlOptions options = trace_test_options(kIterations);
  options.incremental_refit = false;
  const AlSimulator simulator(dataset, options);
  const RandGoodness strategy;
  stats::Rng rng(7);
  const TrajectoryResult result = simulator.run(strategy, rng);
  ASSERT_EQ(result.iterations.size(), kIterations);

  EXPECT_EQ(result.trace.counter("gpr.fit_incremental"), 0u);
  EXPECT_EQ(result.trace.counter("gpr.fit_full"), 2u + 2 * kIterations);
}

TEST(TraceSimulator, CrossCovarianceCountersMatchIncrementalPath) {
  const EnabledGuard guard(true);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);
  constexpr std::size_t kIterations = 8;

  AlOptions options = trace_test_options(kIterations);
  options.incremental_refit = true;
  options.incremental_cross = true;
  const AlSimulator simulator(dataset, options);
  const RandGoodness strategy;
  stats::Rng rng(7);
  const TrajectoryResult result = simulator.run(strategy, rng);
  ASSERT_EQ(result.iterations.size(), kIterations);

  // Iteration 0 builds K(X_train, X_active) for both models; the
  // zero-budget warm-started refits never move the hyperparameters, so
  // every later iteration reuses the matrices (column erase + row append)
  // and nothing is ever invalidated.
  EXPECT_EQ(result.trace.counter("sim.kstar_rebuild"), 2u);
  EXPECT_EQ(result.trace.counter("sim.kstar_reuse"), 2 * (kIterations - 1));
  EXPECT_EQ(result.trace.counter("sim.kstar_append"), 2 * kIterations);
  EXPECT_EQ(result.trace.counter("sim.kstar_invalidate"), 0u);
  // Every fit/refit objective evaluation consumed the training-distance
  // cache.
  EXPECT_GT(result.trace.counter("gpr.dist_cache_hit"), 0u);
  EXPECT_EQ(result.trace.counter("gpr.dist_cache_miss"), 0u);
}

TEST(TraceSimulator, CrossCovarianceRebuildsWhenDisabled) {
  const EnabledGuard guard(true);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);
  constexpr std::size_t kIterations = 8;

  AlOptions options = trace_test_options(kIterations);
  options.incremental_cross = false;
  const AlSimulator simulator(dataset, options);
  const RandGoodness strategy;
  stats::Rng rng(7);
  const TrajectoryResult result = simulator.run(strategy, rng);
  ASSERT_EQ(result.iterations.size(), kIterations);

  EXPECT_EQ(result.trace.counter("sim.kstar_rebuild"), 0u);
  EXPECT_EQ(result.trace.counter("sim.kstar_reuse"), 0u);
  EXPECT_EQ(result.trace.counter("sim.kstar_append"), 0u);
}

TEST(TraceSimulator, FullRefitInvalidatesCrossCovariance) {
  const EnabledGuard guard(true);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);
  constexpr std::size_t kIterations = 8;

  AlOptions options = trace_test_options(kIterations);
  options.incremental_refit = false;  // fit() from scratch each iteration
  options.incremental_cross = true;
  const AlSimulator simulator(dataset, options);
  const RandGoodness strategy;
  stats::Rng rng(7);
  const TrajectoryResult result = simulator.run(strategy, rng);
  ASSERT_EQ(result.iterations.size(), kIterations);

  // Every refit re-optimizes from scratch, so each predict phase rebuilds
  // both matrices and nothing survives long enough to append to.
  EXPECT_EQ(result.trace.counter("sim.kstar_rebuild"), 2 * kIterations);
  EXPECT_EQ(result.trace.counter("sim.kstar_reuse"), 0u);
  EXPECT_EQ(result.trace.counter("sim.kstar_append"), 0u);
}

TEST(TraceSimulator, PhaseTimersCoverTheLoop) {
  const EnabledGuard guard(true);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);
  constexpr std::size_t kIterations = 6;

  const AlSimulator simulator(dataset, trace_test_options(kIterations));
  const RandGoodness strategy;
  stats::Rng rng(11);
  const TrajectoryResult result = simulator.run(strategy, rng);

  for (const char* phase : {"predict", "select", "reveal", "refit"}) {
    const trace::PhaseStats* stats = result.trace.phase(phase);
    ASSERT_NE(stats, nullptr) << phase;
    EXPECT_EQ(stats->calls, kIterations) << phase;
    EXPECT_GE(stats->total_seconds, 0.0) << phase;
  }
  // rmse: per-iteration evaluations plus the post-init one.
  ASSERT_NE(result.trace.phase("rmse"), nullptr);
  EXPECT_EQ(result.trace.phase("rmse")->calls, kIterations + 1);
  ASSERT_NE(result.trace.phase("init"), nullptr);
  EXPECT_EQ(result.trace.phase("init")->calls, 1u);
}

TEST(TraceSimulator, RgmaFilterCounterFires) {
  const EnabledGuard guard(true);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);

  const AlSimulator simulator(dataset, trace_test_options(6));
  // A limit below every response filters every candidate immediately.
  const Rgma impossible(-100.0);
  stats::Rng rng(3);
  const TrajectoryResult result = simulator.run(impossible, rng);
  EXPECT_TRUE(result.early_stopped);
  EXPECT_EQ(result.stop_reason, StopReason::kNoSafeCandidates);
  EXPECT_GT(result.trace.counter("strategy.rgma_filtered"), 0u);
  EXPECT_EQ(result.trace.counter("strategy.rgma_exhausted"), 1u);
}

TEST(TraceSimulator, DisabledTracingLeavesReportEmptyButFingerprinted) {
  const EnabledGuard guard(false);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);

  const AlSimulator simulator(dataset, trace_test_options(4));
  const RandGoodness strategy;
  stats::Rng rng(5);
  const TrajectoryResult result = simulator.run(strategy, rng);
  EXPECT_TRUE(result.trace.counters.empty());
  EXPECT_TRUE(result.trace.phases.empty());
  EXPECT_EQ(result.trace.fingerprint.size(), 16u);
}

TEST(TraceSimulator, FingerprintIdentifiesConfigurationAndPartition) {
  const EnabledGuard guard(false);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);
  const AlOptions options = trace_test_options(4);
  const AlSimulator simulator(dataset, options);
  const RandGoodness strategy;

  stats::Rng partition_rng(21);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);

  stats::Rng r1(5);
  stats::Rng r2(99);  // different selection stream, same config
  const auto a = simulator.run_with_partition(strategy, partition, r1);
  const auto b = simulator.run_with_partition(strategy, partition, r2);
  EXPECT_EQ(a.trace.fingerprint, b.trace.fingerprint);

  // A different partition (i.e. a different seed) changes the fingerprint.
  stats::Rng other_rng(22);
  const data::Partition other = data::make_partition(
      dataset.size(), options.n_test, options.n_init, other_rng);
  const auto c = simulator.run_with_partition(strategy, other, r1);
  EXPECT_NE(a.trace.fingerprint, c.trace.fingerprint);

  // A different option too.
  AlOptions stride_options = options;
  stride_options.rmse_stride = 3;
  const AlSimulator stride_sim(dataset, stride_options);
  const auto d = stride_sim.run_with_partition(strategy, partition, r2);
  EXPECT_NE(a.trace.fingerprint, d.trace.fingerprint);

  // And the strategy identity.
  const RandUniform uniform;
  const auto e = simulator.run_with_partition(uniform, partition, r2);
  EXPECT_NE(a.trace.fingerprint, e.trace.fingerprint);
}

TEST(TraceSimulator, AlOptionsTraceTurnsTracingOn) {
  const EnabledGuard guard(false);
  const data::Dataset dataset = alamr::testing::synthetic_amr_dataset(120, 4242);
  AlOptions options = trace_test_options(3);
  options.trace = true;
  const AlSimulator simulator(dataset, options);  // enables process-wide
  EXPECT_TRUE(trace::enabled());
  const RandGoodness strategy;
  stats::Rng rng(13);
  const TrajectoryResult result = simulator.run(strategy, rng);
  EXPECT_GT(result.trace.counter("sim.iterations"), 0u);
}

}  // namespace
