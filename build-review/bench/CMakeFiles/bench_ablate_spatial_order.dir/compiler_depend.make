# Empty compiler generated dependencies file for bench_ablate_spatial_order.
# This may be replaced when dependencies are built.
