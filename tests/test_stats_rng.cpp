// Tests for the deterministic RNG: reproducibility, range contracts,
// statistical sanity of uniform/normal/index sampling, stream splitting.

#include "alamr/stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "alamr/stats/descriptive.hpp"

namespace {

using alamr::stats::Rng;
using alamr::stats::SplitMix64;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 2.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng rng(11);
  std::vector<double> samples(20000);
  for (double& s : samples) s = rng.uniform();
  EXPECT_NEAR(alamr::stats::mean(samples), 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexUnbiasedAcrossBuckets) {
  Rng rng(4);
  constexpr std::size_t kBuckets = 10;
  constexpr std::size_t kDraws = 100000;
  std::vector<std::size_t> counts(kBuckets, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(kBuckets)];
  for (const std::size_t c : counts) {
    // Expected 10000 per bucket; 5-sigma band for a binomial.
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 5.0 * std::sqrt(10000.0 * 0.9));
  }
}

TEST(Rng, NormalMatchesMomentsOfStandardGaussian) {
  Rng rng(2024);
  std::vector<double> samples(50000);
  for (double& s : samples) s = rng.normal();
  EXPECT_NEAR(alamr::stats::mean(samples), 0.0, 0.02);
  EXPECT_NEAR(alamr::stats::stddev(samples), 1.0, 0.02);
}

TEST(Rng, NormalScalesAndShifts) {
  Rng rng(77);
  std::vector<double> samples(50000);
  for (double& s : samples) s = rng.normal(5.0, 0.5);
  EXPECT_NEAR(alamr::stats::mean(samples), 5.0, 0.02);
  EXPECT_NEAR(alamr::stats::stddev(samples), 0.5, 0.02);
}

TEST(Rng, SplitProducesDecorrelatedStream) {
  Rng parent(31);
  Rng child = parent.split();
  // Child and parent should not produce identical sequences.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(55);
  Rng b(55);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, PermutationIsValidPermutation) {
  Rng rng(8);
  const auto perm = rng.permutation(100);
  ASSERT_EQ(perm.size(), 100u);
  std::vector<bool> seen(100, false);
  for (const std::size_t p : perm) {
    ASSERT_LT(p, 100u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(Rng, PermutationShuffles) {
  Rng rng(8);
  const auto perm = rng.permutation(100);
  std::size_t fixed_points = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  // Expected number of fixed points of a random permutation is 1.
  EXPECT_LT(fixed_points, 10u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(3);
  std::vector<int> values{1, 2, 2, 3, 3, 3, 4};
  std::vector<int> shuffled = values;
  rng.shuffle(std::span<int>(shuffled));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

// Property sweep: determinism and unbiasedness across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, IndexAlwaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.uniform_index(13), 13u);
  }
}

TEST_P(RngSeedSweep, PermutationValidForAnySeed) {
  Rng rng(GetParam());
  const auto perm = rng.permutation(37);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 37u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xffffffffffffffffULL,
                                           0xdeadbeefULL));

}  // namespace
