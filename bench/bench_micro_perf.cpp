// P1 — microbenchmarks (google-benchmark): the kernels whose cost governs
// the AL loop (Cholesky, gram construction, GPR fit/predict scaling in n)
// and the AMR solver's cell-update throughput.

#include <benchmark/benchmark.h>

#include "alamr/amr/solver.hpp"
#include "alamr/gp/gpr.hpp"
#include "alamr/linalg/cholesky.hpp"
#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr;

linalg::Matrix random_points(std::size_t n, std::size_t d, stats::Rng& rng) {
  linalg::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniform(0.0, 1.0);
  }
  return x;
}

linalg::Matrix random_spd(std::size_t n, stats::Rng& rng) {
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  linalg::Matrix spd = linalg::aat(a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

void BM_Cholesky(benchmark::State& state) {
  stats::Rng rng(1);
  const auto a = random_spd(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto factor = linalg::CholeskyFactor::factor(a);
    benchmark::DoNotOptimize(factor);
  }
}
BENCHMARK(BM_Cholesky)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_KernelGram(benchmark::State& state) {
  stats::Rng rng(2);
  const auto x = random_points(static_cast<std::size_t>(state.range(0)), 5, rng);
  const auto kernel = gp::make_paper_kernel();
  for (auto _ : state) {
    auto gram = kernel->gram(x);
    benchmark::DoNotOptimize(gram);
  }
}
BENCHMARK(BM_KernelGram)->Arg(100)->Arg(200)->Arg(400);

void BM_GramWithGradients(benchmark::State& state) {
  stats::Rng rng(3);
  const auto x = random_points(static_cast<std::size_t>(state.range(0)), 5, rng);
  const auto kernel = gp::make_paper_kernel();
  std::vector<linalg::Matrix> gradients;
  for (auto _ : state) {
    auto gram = kernel->gram_with_gradients(x, gradients);
    benchmark::DoNotOptimize(gram);
  }
}
BENCHMARK(BM_GramWithGradients)->Arg(100)->Arg(200);

void BM_GprFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(4);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.restarts = 0;
  options.max_opt_iterations = 5;
  for (auto _ : state) {
    gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), options);
    gpr.fit(x, y, rng);
    benchmark::DoNotOptimize(gpr);
  }
}
BENCHMARK(BM_GprFit)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_GprPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(5);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.optimize = false;
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  const auto queries = random_points(200, 5, rng);
  for (auto _ : state) {
    auto pred = gpr.predict(queries);
    benchmark::DoNotOptimize(pred);
  }
}
BENCHMARK(BM_GprPredict)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_AmrStep(benchmark::State& state) {
  amr::ShockBubbleProblem problem;
  problem.mx = static_cast<int>(state.range(0));
  problem.max_level = 3;
  amr::FvSolver solver(problem);
  solver.mesh().fill_ghosts();
  const double dt = solver.mesh().compute_dt();
  std::size_t cells = 0;
  for (auto _ : state) {
    solver.step(dt);
    cells += solver.mesh().total_cells();
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AmrStep)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_AmrRegrid(benchmark::State& state) {
  amr::ShockBubbleProblem problem;
  problem.mx = 8;
  problem.max_level = static_cast<int>(state.range(0));
  amr::FvSolver solver(problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.mesh().regrid());
  }
}
BENCHMARK(BM_AmrRegrid)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
