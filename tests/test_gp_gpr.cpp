// Tests for the Gaussian Process regressor (paper Eqs. 1-9 behaviours).

#include "alamr/gp/gpr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>

#include "alamr/stats/rng.hpp"

namespace {

using namespace alamr::gp;
using alamr::linalg::Matrix;
using alamr::stats::Rng;

// Smooth 1-D test function on [0, 1].
double f1(double x) { return std::sin(6.0 * x) + 0.5 * x; }

Matrix grid1d(std::size_t n, double lo = 0.0, double hi = 1.0) {
  Matrix x(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = lo + (hi - lo) * static_cast<double>(i) /
                      static_cast<double>(n - 1);
  }
  return x;
}

TEST(Gpr, InterpolatesNoiselessData) {
  Rng rng(1);
  const Matrix x = grid1d(10);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = f1(x(i, 0));

  // Tiny fixed noise, no optimization: posterior mean must pass through
  // the training targets.
  auto kernel = sum(product(std::make_unique<ConstantKernel>(1.0),
                            std::make_unique<RbfKernel>(0.2)),
                    std::make_unique<WhiteKernel>(1e-8));
  GprOptions options;
  options.optimize = false;
  GaussianProcessRegressor gpr(std::move(kernel), options);
  gpr.fit(x, y, rng);

  const Prediction pred = gpr.predict(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(pred.mean[i], y[i], 1e-4);
    EXPECT_LT(pred.stddev[i], 1e-2);
  }
}

TEST(Gpr, PredictsHeldOutPointsAfterFit) {
  Rng rng(2);
  const Matrix x_train = grid1d(25);
  std::vector<double> y(x_train.rows());
  for (std::size_t i = 0; i < x_train.rows(); ++i) y[i] = f1(x_train(i, 0));

  GaussianProcessRegressor gpr(make_paper_kernel(), {});
  gpr.fit(x_train, y, rng);

  const Matrix x_test = grid1d(17, 0.03, 0.97);
  const Prediction pred = gpr.predict(x_test);
  for (std::size_t i = 0; i < x_test.rows(); ++i) {
    EXPECT_NEAR(pred.mean[i], f1(x_test(i, 0)), 0.05) << "x = " << x_test(i, 0);
  }
}

TEST(Gpr, UncertaintyGrowsAwayFromData) {
  Rng rng(3);
  const Matrix x_train = grid1d(10, 0.0, 0.5);  // data only on [0, 0.5]
  std::vector<double> y(x_train.rows());
  for (std::size_t i = 0; i < x_train.rows(); ++i) y[i] = f1(x_train(i, 0));

  GaussianProcessRegressor gpr(make_paper_kernel(), {});
  gpr.fit(x_train, y, rng);

  const Matrix near{{0.25}};
  const Matrix far{{0.95}};
  EXPECT_LT(gpr.predict(near).stddev[0], gpr.predict(far).stddev[0]);
}

TEST(Gpr, VarianceNeverNegative) {
  Rng rng(4);
  // Duplicated training points stress the posterior variance computation.
  Matrix x(6, 1);
  x(0, 0) = 0.3; x(1, 0) = 0.3; x(2, 0) = 0.3;
  x(3, 0) = 0.7; x(4, 0) = 0.7; x(5, 0) = 0.7;
  const std::vector<double> y{1.0, 1.1, 0.9, -1.0, -0.9, -1.1};
  GaussianProcessRegressor gpr(make_paper_kernel(), {});
  gpr.fit(x, y, rng);
  const Prediction pred = gpr.predict(grid1d(50));
  for (const double s : pred.stddev) {
    EXPECT_GE(s, 0.0);
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(Gpr, OptimizationImprovesLml) {
  Rng rng(5);
  const Matrix x = grid1d(30);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    y[i] = f1(x(i, 0)) + rng.normal(0.0, 0.05);
  }

  GprOptions frozen;
  frozen.optimize = false;
  GaussianProcessRegressor fixed(make_paper_kernel(1.0, 1.0, 0.5), frozen);
  Rng r1(7);
  fixed.fit(x, y, r1);

  GprOptions tuned;
  tuned.restarts = 1;
  GaussianProcessRegressor optimized(make_paper_kernel(1.0, 1.0, 0.5), tuned);
  Rng r2(7);
  optimized.fit(x, y, r2);

  EXPECT_GT(optimized.log_marginal_likelihood(),
            fixed.log_marginal_likelihood());
}

TEST(Gpr, LearnsNoiseLevel) {
  Rng rng(6);
  const Matrix x = grid1d(60);
  constexpr double kNoise = 0.2;
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    y[i] = f1(x(i, 0)) + rng.normal(0.0, kNoise);
  }
  GprOptions options;
  options.restarts = 2;
  GaussianProcessRegressor gpr(make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  // The white-noise hyperparameter is the last log-parameter of the paper
  // kernel; it should recover the injected variance within a factor.
  const double learned_noise = std::exp(gpr.kernel().log_params()[2]);
  EXPECT_GT(learned_noise, kNoise * kNoise / 5.0);
  EXPECT_LT(learned_noise, kNoise * kNoise * 5.0);
}

TEST(Gpr, NormalizeYHandlesLargeOffsets) {
  Rng rng(8);
  const Matrix x = grid1d(20);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = 1000.0 + f1(x(i, 0));

  GprOptions options;
  options.normalize_y = true;
  GaussianProcessRegressor gpr(make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  const Prediction pred = gpr.predict(grid1d(5, 0.1, 0.9));
  for (std::size_t i = 0; i < pred.mean.size(); ++i) {
    EXPECT_NEAR(pred.mean[i], 1000.0 + f1(0.1 + 0.8 * i / 4.0), 0.2);
  }
}

TEST(Gpr, PredictMeanMatchesPredict) {
  Rng rng(9);
  const Matrix x = grid1d(15);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = f1(x(i, 0));
  GaussianProcessRegressor gpr(make_paper_kernel(), {});
  gpr.fit(x, y, rng);

  const Matrix q = grid1d(9, 0.05, 0.95);
  const Prediction full = gpr.predict(q);
  const std::vector<double> mean_only = gpr.predict_mean(q);
  for (std::size_t i = 0; i < q.rows(); ++i) {
    EXPECT_DOUBLE_EQ(full.mean[i], mean_only[i]);
  }
}

TEST(Gpr, WarmStartRefitIsCheapAndConsistent) {
  Rng rng(10);
  const Matrix x = grid1d(25);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    y[i] = f1(x(i, 0)) + rng.normal(0.0, 0.05);
  }
  GprOptions initial;
  initial.restarts = 2;
  GaussianProcessRegressor gpr(make_paper_kernel(), initial);
  gpr.fit(x, y, rng);
  const double lml_first = gpr.log_marginal_likelihood();

  // Refit on the same data with warm start and no restarts: the LML must
  // not regress materially (hyperparameters start where they ended).
  GprOptions refit;
  refit.restarts = 0;
  refit.max_opt_iterations = 5;
  gpr.set_options(refit);
  gpr.fit(x, y, rng);
  EXPECT_GT(gpr.log_marginal_likelihood(), lml_first - 1e-6);
}

TEST(Gpr, CopySemanticsAreDeep) {
  Rng rng(11);
  const Matrix x = grid1d(10);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) y[i] = f1(x(i, 0));
  GaussianProcessRegressor a(make_paper_kernel(), {});
  a.fit(x, y, rng);

  GaussianProcessRegressor b(a);
  // Refitting the copy on different data must not disturb the original.
  std::vector<double> y2(y);
  for (double& v : y2) v += 10.0;
  b.fit(x, y2, rng);
  const double mean_a = a.predict(Matrix{{0.5}}).mean[0];
  const double mean_b = b.predict(Matrix{{0.5}}).mean[0];
  EXPECT_NEAR(mean_b - mean_a, 10.0, 0.5);
}

TEST(Gpr, ErrorsOnMisuse) {
  GaussianProcessRegressor gpr(make_paper_kernel(), {});
  EXPECT_THROW(gpr.predict(Matrix{{0.5}}), std::logic_error);
  EXPECT_THROW(gpr.log_marginal_likelihood(), std::logic_error);

  Rng rng(12);
  const Matrix x = grid1d(4);
  const std::vector<double> wrong_y{1.0, 2.0};
  EXPECT_THROW(gpr.fit(x, wrong_y, rng), std::invalid_argument);
  EXPECT_THROW(GaussianProcessRegressor(nullptr, {}), std::invalid_argument);
}

TEST(Gpr, SingleTrainingPointWorks) {
  Rng rng(13);
  const Matrix x{{0.5}};
  const std::vector<double> y{2.0};
  GaussianProcessRegressor gpr(make_paper_kernel(), {});
  gpr.fit(x, y, rng);  // optimization skipped for n < 2
  const Prediction pred = gpr.predict(Matrix{{0.5}});
  EXPECT_NEAR(pred.mean[0], 2.0, 1e-6);
}

TEST(Gpr, PosteriorVarianceShrinksWithMoreData) {
  // Adding training points near a query must not increase its posterior
  // variance (information never hurts in a fixed-hyperparameter GP).
  Rng rng(14);
  GprOptions options;
  options.optimize = false;
  const Matrix query{{0.52}};

  double previous = std::numeric_limits<double>::infinity();
  for (const std::size_t n : {3u, 6u, 12u, 24u}) {
    const Matrix x = grid1d(n);
    std::vector<double> y(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) y[i] = f1(x(i, 0));
    GaussianProcessRegressor gpr(make_paper_kernel(1.0, 0.3, 1e-6), options);
    gpr.fit(x, y, rng);
    const double sd = gpr.predict(query).stddev[0];
    EXPECT_LE(sd, previous + 1e-12) << "n = " << n;
    previous = sd;
  }
}

TEST(Gpr, PriorVarianceRecoveredFarFromData) {
  // Far from all training data the posterior variance approaches the
  // prior amplitude sigma_f^2 (plus noise in the diagonal convention).
  Rng rng(15);
  const Matrix x = grid1d(10, 0.0, 0.1);  // data clustered near zero
  std::vector<double> y(x.rows(), 0.5);
  GprOptions options;
  options.optimize = false;
  constexpr double kAmplitude = 2.0;
  GaussianProcessRegressor gpr(make_paper_kernel(kAmplitude, 0.05, 1e-4),
                               options);
  gpr.fit(x, y, rng);
  const Prediction far = gpr.predict(Matrix{{50.0}});
  EXPECT_NEAR(far.stddev[0] * far.stddev[0], kAmplitude + 1e-4, 1e-3);
}

// Property: predictions are deterministic given the seed, across repeats.
class GprDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GprDeterminism, SameSeedSameModel) {
  const auto run = [&] {
    Rng rng(GetParam());
    const Matrix x = grid1d(20);
    std::vector<double> y(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i) {
      y[i] = f1(x(i, 0)) + rng.normal(0.0, 0.1);
    }
    GprOptions options;
    options.restarts = 1;
    GaussianProcessRegressor gpr(make_paper_kernel(), options);
    gpr.fit(x, y, rng);
    return gpr.predict(grid1d(7, 0.1, 0.9)).mean;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GprDeterminism,
                         ::testing::Values(21ULL, 22ULL, 23ULL));

// --- Incremental posterior updates ---------------------------------------

/// 2-D training data with a mild nonlinear response.
void make_training(std::size_t n, Rng& rng, Matrix* x, std::vector<double>* y) {
  *x = Matrix(n, 2);
  y->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*x)(i, 0) = rng.uniform(0.0, 1.0);
    (*x)(i, 1) = rng.uniform(0.0, 1.0);
    (*y)[i] = std::sin(4.0 * (*x)(i, 0)) + (*x)(i, 1) * (*x)(i, 1) +
              rng.normal(0.0, 0.05);
  }
}

Matrix leading_rows(const Matrix& x, std::size_t n) {
  Matrix out(n, x.cols());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < x.cols(); ++c) out(i, c) = x(i, c);
  }
  return out;
}

TEST(GprIncremental, AddPointMatchesFitOnConcatenatedData) {
  Rng data_rng(31);
  Matrix x;
  std::vector<double> y;
  make_training(31, data_rng, &x, &y);

  GprOptions options;
  options.optimize = false;  // isolate the posterior math
  Rng r1(5);
  Rng r2(5);

  GaussianProcessRegressor incremental(make_paper_kernel(), options);
  incremental.fit(leading_rows(x, 30), std::span<const double>(y.data(), 30),
                  r1);
  incremental.add_point(x.row(30), y[30]);

  GaussianProcessRegressor full(make_paper_kernel(), options);
  full.fit(x, y, r2);

  ASSERT_EQ(incremental.training_size(), full.training_size());
  EXPECT_NEAR(incremental.log_marginal_likelihood(),
              full.log_marginal_likelihood(), 1e-10);
  const Matrix queries = leading_rows(x, 8);
  const Prediction a = incremental.predict(queries);
  const Prediction b = full.predict(queries);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    EXPECT_NEAR(a.mean[q], b.mean[q], 1e-10);
    EXPECT_NEAR(a.stddev[q], b.stddev[q], 1e-10);
  }
}

TEST(GprIncremental, FitAddPointMatchesFullRefitWithOptimization) {
  // With the warm-started optimization enabled both paths must consume the
  // rng identically and land on the same model — whether or not the
  // optimizer moves the hyperparameters.
  Rng data_rng(32);
  Matrix x;
  std::vector<double> y;
  make_training(26, data_rng, &x, &y);

  for (const std::size_t refit_iters : {std::size_t{0}, std::size_t{8}}) {
    GprOptions initial{.restarts = 1, .max_opt_iterations = 40};
    GprOptions refit{.restarts = 0, .max_opt_iterations = refit_iters};

    Rng r1(6);
    GaussianProcessRegressor incremental(make_paper_kernel(), initial);
    incremental.fit(leading_rows(x, 25), std::span<const double>(y.data(), 25),
                    r1);
    incremental.set_options(refit);
    incremental.fit_add_point(x.row(25), y[25], r1);

    Rng r2(6);
    GaussianProcessRegressor full(make_paper_kernel(), initial);
    full.fit(leading_rows(x, 25), std::span<const double>(y.data(), 25), r2);
    full.set_options(refit);
    full.fit(x, y, r2);

    EXPECT_DOUBLE_EQ(incremental.log_marginal_likelihood(),
                     full.log_marginal_likelihood());
    const Matrix queries = leading_rows(x, 6);
    const Prediction a = incremental.predict(queries);
    const Prediction b = full.predict(queries);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      EXPECT_DOUBLE_EQ(a.mean[q], b.mean[q]);
      EXPECT_DOUBLE_EQ(a.stddev[q], b.stddev[q]);
    }
  }
}

TEST(GprIncremental, ZeroIterationRefitTakesFastPath) {
  Rng data_rng(33);
  Matrix x;
  std::vector<double> y;
  make_training(21, data_rng, &x, &y);

  GprOptions initial{.restarts = 1, .max_opt_iterations = 40};
  Rng rng(7);
  GaussianProcessRegressor gpr(make_paper_kernel(), initial);
  gpr.fit(leading_rows(x, 20), std::span<const double>(y.data(), 20), rng);
  gpr.set_options(GprOptions{.restarts = 0, .max_opt_iterations = 0});
  EXPECT_TRUE(gpr.fit_add_point(x.row(20), y[20], rng));
  EXPECT_EQ(gpr.training_size(), 21u);
}

TEST(GprIncremental, DuplicatePointStaysUsable) {
  // Adding an exact duplicate of a training point drives the extended gram
  // toward singularity (only the White noise on the diagonal keeps it
  // positive); the incremental update must stay finite, falling back to
  // the jittered refactor if the extension fails.
  Rng data_rng(34);
  Matrix x;
  std::vector<double> y;
  make_training(15, data_rng, &x, &y);

  GprOptions options;
  options.optimize = false;
  Rng rng(8);
  GaussianProcessRegressor gpr(make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  gpr.add_point(x.row(3), y[3]);
  EXPECT_EQ(gpr.training_size(), 16u);
  const Prediction pred = gpr.predict(leading_rows(x, 4));
  for (const double v : pred.mean) EXPECT_TRUE(std::isfinite(v));
  for (const double v : pred.stddev) EXPECT_TRUE(std::isfinite(v));
}

TEST(GprIncremental, AddPointBeforeFitThrows) {
  GaussianProcessRegressor gpr(make_paper_kernel(), {});
  Rng rng(9);
  EXPECT_THROW(gpr.add_point(std::vector<double>{0.5}, 1.0), std::logic_error);
  EXPECT_THROW(gpr.fit_add_point(std::vector<double>{0.5}, 1.0, rng),
               std::logic_error);
}

}  // namespace
