// E2 — paper Table I: min/median/mean/max of the five features and three
// responses of the 600-sample dataset, plus the headline dataset facts the
// paper quotes in Sec. IV-A (cost dynamic range, unique-combination count).

#include <cstdio>

#include "alamr/stats/descriptive.hpp"
#include "bench_common.hpp"

namespace {

void row(const char* label, std::span<const double> values) {
  const alamr::stats::Summary s = alamr::stats::summarize(values);
  std::printf("%-44s %10.3f %10.3f %10.3f %10.3f\n", label, s.min, s.median,
              s.mean, s.max);
}

}  // namespace

int main() {
  using namespace alamr;
  bench::print_header(
      "E2: dataset summary", "Table I",
      "cost spans >=3 orders of magnitude; long-tailed responses");

  const data::Dataset dataset = bench::load_dataset();

  std::printf("\n%-44s %10s %10s %10s %10s\n", "", "min", "median", "mean",
              "max");
  std::vector<double> column(dataset.size());
  const char* labels[] = {"Feature: p, # of nodes", "Feature: mx, box size",
                          "Feature: maxlevel, max refinement level",
                          "Feature: r0, bubble size",
                          "Feature: rhoin, bubble density"};
  for (std::size_t j = 0; j < dataset.dim(); ++j) {
    for (std::size_t i = 0; i < dataset.size(); ++i) column[i] = dataset.x(i, j);
    row(j < 5 ? labels[j] : dataset.feature_names[j].c_str(), column);
  }
  row("Response: wall clock time, seconds", dataset.wallclock);
  row("Response: cost, node-hours", dataset.cost);
  row("Response: memory, MB", dataset.memory);

  const auto [min_cost, max_cost] =
      std::minmax_element(dataset.cost.begin(), dataset.cost.end());
  std::printf("\nDataset facts (paper Sec. IV-A analogues):\n");
  std::printf("  samples: %zu (paper: 600)\n", dataset.size());
  std::printf("  max/min cost ratio: %.3g (paper: 5.4e3)\n",
              *max_cost / *min_cost);

  // Unique feature combinations vs replicates.
  std::size_t unique = 0;
  std::vector<bool> seen(dataset.size(), false);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (seen[i]) continue;
    ++unique;
    for (std::size_t j = i; j < dataset.size(); ++j) {
      bool same = true;
      for (std::size_t c = 0; c < dataset.dim(); ++c) {
        if (dataset.x(i, c) != dataset.x(j, c)) {
          same = false;
          break;
        }
      }
      if (same) seen[j] = true;
    }
  }
  std::printf("  unique parameter combinations: %zu, replicate rows: %zu "
              "(paper: 525 / 75)\n",
              unique, dataset.size() - unique);
  return 0;
}
