#pragma once

// Gaussian Process Regression (paper Sec. III, Eqs. 1-9).
//
// Mirrors the scikit-learn 0.18 GaussianProcessRegressor the paper uses:
//  - fit() maximizes the log marginal likelihood over the kernel's
//    log-hyperparameters with L-BFGS, optionally with random restarts;
//  - refitting reuses the current hyperparameters as the starting point
//    (Algorithm 1: "use old model's parameters as a starting point");
//  - predict() returns the posterior mean and standard deviation (Eq. 3).

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "alamr/gp/kernels.hpp"
#include "alamr/linalg/cholesky.hpp"
#include "alamr/linalg/workspace.hpp"
#include "alamr/stats/rng.hpp"

namespace alamr::gp {

struct GprOptions {
  /// Random restarts for hyperparameter optimization on top of the
  /// warm/default start (sklearn: n_restarts_optimizer).
  std::size_t restarts = 1;
  /// Subtract the training-target mean before fitting, add back on predict.
  bool normalize_y = true;
  /// Skip hyperparameter optimization entirely (use kernel as configured).
  bool optimize = true;
  /// L-BFGS iteration budget per start. AL refits run warm-started, so a
  /// modest budget converges in practice; the first fit may use more.
  std::size_t max_opt_iterations = 50;
  /// Numerical jitter floor added to K_y when Cholesky requires it.
  double initial_jitter = 1e-12;
  double max_jitter = 1e-4;
  /// Cache pairwise squared distances at fit() and evaluate optimizer
  /// probes as elementwise transforms of the cache (DESIGN.md §8). Off
  /// forces the direct-gram path everywhere; results are bit-identical
  /// either way (golden-tested), so this exists for A/B testing only.
  bool use_distance_cache = true;
};

/// Posterior mean and standard deviation at query points.
struct Prediction {
  std::vector<double> mean;
  std::vector<double> stddev;
};

class GaussianProcessRegressor {
 public:
  /// Takes ownership of the kernel; its hyperparameters evolve with fits.
  GaussianProcessRegressor(std::unique_ptr<Kernel> kernel,
                           GprOptions options = {});

  GaussianProcessRegressor(const GaussianProcessRegressor& other);
  GaussianProcessRegressor& operator=(const GaussianProcessRegressor& other);
  GaussianProcessRegressor(GaussianProcessRegressor&&) noexcept = default;
  GaussianProcessRegressor& operator=(GaussianProcessRegressor&&) noexcept = default;

  /// Fits the model on (x, y): optimizes hyperparameters (unless disabled)
  /// starting from the kernel's current values, then precomputes the
  /// Cholesky factor and alpha = K_y^{-1} y used by predict().
  /// `rng` drives the optional random restarts.
  ///
  /// When `base` is non-null (and the distance cache is enabled), the
  /// train-distance cache is GATHERED from the shared dataset-wide base
  /// instead of recomputed: `rows` must list, for each row of x, its index
  /// in base.x() (so x == base.x()[rows] bit for bit). The gathered cache
  /// is bitwise identical to the recomputed one, so results do not depend
  /// on which path was taken.
  void fit(const Matrix& x, std::span<const double> y, stats::Rng& rng,
           const DistanceBase* base = nullptr,
           std::span<const std::size_t> rows = {});

  /// Appends one training point WITHOUT re-optimizing hyperparameters:
  /// extends the cached gram by one row/column (n kernel evaluations
  /// instead of n^2), extends the Cholesky factor in O(n^2) instead of
  /// O(n^3), and recomputes alpha with two triangular solves. Bit-identical
  /// to fit() on the concatenated data at the same hyperparameters.
  /// Requires fit().
  void add_point(std::span<const double> x, double y);

  /// AL refit step (Algorithm 1): appends one training point and runs the
  /// warm-started hyperparameter optimization exactly as fit() on the
  /// concatenated data would. When the optimizer leaves the kernel
  /// parameters unchanged — the common case for converged warm restarts,
  /// and always when optimization is disabled — the posterior is updated
  /// through the incremental O(n^2) path; otherwise it falls back to the
  /// full rebuild. Either way the result is bit-identical to full fit().
  /// Returns true when the incremental path was taken. Requires fit().
  bool fit_add_point(std::span<const double> x, double y, stats::Rng& rng);

  /// Posterior mean and stddev at the rows of `x` (Eq. 3). Requires fit().
  Prediction predict(const Matrix& x) const;

  /// predict() with a caller-supplied cross-covariance K(X_train, x)
  /// (n_train x n_query, exactly what kernel().cross(x_train, x) returns).
  /// The AL simulator maintains this matrix incrementally across
  /// iterations; passing it here skips the O(n m d) rebuild. Bit-identical
  /// to predict() when k_star holds the same bits. Requires fit().
  Prediction predict_from_cross(const Matrix& k_star, const Matrix& x) const;

  /// Posterior mean only (cheaper: skips the variance solves).
  std::vector<double> predict_mean(const Matrix& x) const;

  /// predict_mean() with a caller-supplied cross-covariance, mirroring
  /// predict_from_cross(): the AL simulator gathers the test-set
  /// distances from a shared DistanceBase instead of recomputing them
  /// from features each evaluation. Bit-identical to predict_mean() when
  /// k_star holds the same bits. Requires fit().
  std::vector<double> predict_mean_from_cross(const Matrix& k_star) const;

  /// Fused batched posterior (DESIGN.md §10): all candidate means and
  /// stddevs in one pass over a caller-maintained cross-covariance, with
  /// every temporary carved from `ws` — a steady-state call performs zero
  /// heap allocations. `prior_diag` is kernel().diagonal(x) for the query
  /// rows (the AL simulator caches it alongside k_star). Uses the cached
  /// alpha = K_y^{-1}(y - mean), which is recomputed only on (re)fit.
  /// Writes mean_out/stddev_out (both length k_star.cols()); per scalar
  /// the operations are exactly predict_from_cross()'s, so the results
  /// are bit-identical. Requires fit().
  void predict_batch(const Matrix& k_star, std::span<const double> prior_diag,
                     linalg::Workspace& ws, std::span<double> mean_out,
                     std::span<double> stddev_out) const;

  /// Convenience predict_batch(): builds k_star and the prior diagonal
  /// itself (allocating) and returns a Prediction. Bit-identical to
  /// predict(); exists for tests and benchmarks of the fused path.
  Prediction predict_batch(const Matrix& x, linalg::Workspace& ws) const;

  /// predict_batch() through the cross-iteration candidate panel
  /// (DESIGN.md §13): the solved panel Z = L^{-1} K* and its running
  /// squared-column accumulators persist inside the model between calls.
  /// When the posterior only grew by a one-row Cholesky extension since
  /// the previous sweep (unchanged hyperparameters), rows 0..n-1 of Z are
  /// bitwise unchanged and only the appended rows are computed — O(M n)
  /// per sweep instead of O(M n^2) — with variance finalized from the
  /// accumulators as diag - acc. Any full posterior rebuild (theta move,
  /// jittered refactor, fault recovery, checkpoint resume) invalidates
  /// the panel and the next call rebuilds it from scratch. Both paths
  /// perform, per scalar, exactly predict_batch()'s operations in the
  /// same order, so the outputs are bit-identical to predict_batch() —
  /// and therefore to predict() — at every thread count. The caller must
  /// keep the panel aligned with k_star: panel_remove_column() mirrors
  /// every k_star column removal. Requires fit().
  /// `with_mean = false` skips the O(n m) posterior-mean pass (mean_out
  /// may then be empty); individual means are recoverable afterwards via
  /// mean_from_cross_column(), bit-identical to the skipped pass.
  void predict_batch_panel(const Matrix& k_star,
                           std::span<const double> prior_diag,
                           linalg::Workspace& ws, std::span<double> mean_out,
                           std::span<double> stddev_out, bool with_mean = true);

  /// Posterior mean of one column of a caller-maintained cross matrix:
  /// the exact entry a full predict_batch() mean pass over k_star would
  /// write at `col`, reproduced bit-for-bit (same ascending-row fused
  /// multiply-add chain through the dispatched axpy kernel, same final
  /// mean shift). O(n). Requires fit().
  double mean_from_cross_column(const Matrix& k_star, std::size_t col) const;

  /// Drops column `local` from the candidate panel (the candidate was
  /// acquired or censored out of the pool). Pure data movement — the
  /// surviving columns keep their bits. No-op when no panel is live.
  void panel_remove_column(std::size_t local);

  /// Discards the candidate panel; the next predict_batch_panel() call
  /// rebuilds it from scratch (counted as panel.rebuilds). Called
  /// internally on every full posterior rebuild; exposed so callers can
  /// force a rebuild when their cross matrix was rebuilt wholesale.
  void panel_invalidate() noexcept { panel_valid_ = false; }

  /// Pre-sizes the panel storage so steady-state row appends and column
  /// drops stay allocation-free (DESIGN.md §10 discipline).
  void panel_reserve(std::size_t rows, std::size_t cols) {
    panel_z_.reserve(rows, cols);
    panel_acc_.reserve(cols);
  }

  /// Rows of Z currently cached (0 when invalid). Test/diagnostic hook.
  std::size_t panel_rows() const noexcept {
    return panel_valid_ ? panel_z_.rows() : 0;
  }

  /// Pre-sizes every posterior container (training matrix, targets,
  /// gram, factor, alpha, distance cache) for `extra` future add_point /
  /// fit_add_point appends, so incremental updates stay allocation-free
  /// until the reserve is exceeded. Requires fit().
  void reserve_additional(std::size_t extra);

  /// Log marginal likelihood at the current hyperparameters (Eq. 8, with
  /// the -n/2 log(2 pi) constant included). Requires fit().
  double log_marginal_likelihood() const;

  /// LML (and gradient if `grad` non-empty) at arbitrary log-params,
  /// evaluated against the stored training data. Exposed for testing the
  /// analytic gradient against finite differences.
  double log_marginal_likelihood(std::span<const double> log_params,
                                 std::span<double> grad) const;

  bool fitted() const noexcept { return factor_.has_value(); }
  const Kernel& kernel() const noexcept { return *kernel_; }
  std::size_t training_size() const noexcept { return x_train_.rows(); }
  const GprOptions& options() const noexcept { return options_; }

  /// Adjusts fitting options between fits (e.g. thorough initial fit,
  /// cheap warm-started refits during AL). Does not invalidate the model.
  void set_options(const GprOptions& options) noexcept { options_ = options; }

  /// Places the kernel at explicit log-hyperparameters. Used by checkpoint
  /// resume to rebuild a model at its saved theta (followed by a fit with
  /// optimization disabled); does not touch the cached posterior by
  /// itself.
  void set_kernel_log_params(std::span<const double> theta) {
    kernel_->set_log_params(theta);
  }

 private:
  /// Builds K_y, factors it, computes alpha; stores everything needed by
  /// predict(). Returns the LML value. On factorization failure (the
  /// jitter ladder exhausted), reverts to the last hyperparameters that
  /// produced a valid posterior and retries once (recovery ladder rung 3,
  /// DESIGN.md §9) before letting the exception escape.
  double compute_posterior();

  /// The raw posterior build with no recovery — throws on failure.
  double compute_posterior_unchecked();

  /// Recomputes y_mean_ from y_raw_ (in-order sum, as fit() does) and
  /// refreshes the centered targets.
  void recenter_targets();

  /// Warm-started multistart L-BFGS over the LML; shared by fit() and
  /// fit_add_point() so both consume the rng stream identically.
  void optimize_hyperparameters(stats::Rng& rng);

  /// Grows x_train_ / y_raw_ by one point and re-centers the targets.
  void append_training_point(std::span<const double> x, double y);

  /// Incremental counterpart of compute_posterior() for the last appended
  /// point: extends gram_ with n new kernel evaluations and the factor in
  /// O(n^2), falling back to a full (possibly jittered) refactor when the
  /// stored factor carries jitter or the extension is not positive.
  void update_posterior_incremental();

  /// Shared chunked variance kernel behind predict_from_cross(),
  /// predict_batch(), and predict_batch_panel(): resumes the forward
  /// substitution of Z = L^{-1} K* at `row_begin` into `z` (row i at
  /// z + i*m, m = k_star.cols()), folds the new rows' squares into `acc`
  /// (caller-initialized: zeros for a fresh sweep, the running panel sums
  /// for a resumed one), and finalizes stddev = sqrt(max(diag - acc, 0)).
  /// Columns are processed in parallel_for_chunks stripes; every kernel it
  /// touches is elementwise (chunk-splittable), so the bits are identical
  /// at every thread count. acc may alias stddev_out.data(): each slot's
  /// accumulation completes before its finalizing overwrite.
  void variance_sweep(const Matrix& k_star, std::span<const double> prior_diag,
                      double* z, std::size_t row_begin, double* acc,
                      std::span<double> stddev_out) const;

  std::unique_ptr<Kernel> kernel_;
  GprOptions options_;

  Matrix x_train_;
  // Hyperparameter-independent squared-distance cache over x_train_. Built
  // by fit() (and prepared for the kernel, e.g. ARD components) BEFORE
  // optimization starts, extended in O(n d) on append_training_point, so
  // every LML objective evaluation reads it instead of re-walking
  // features. Invalidated only by new training data, never by
  // hyperparameter moves.
  std::optional<PairwiseDistances> train_dist_;
  std::vector<double> y_raw_;         // targets as given (for re-centering)
  std::vector<double> y_train_;       // centered targets when normalize_y
  double y_mean_ = 0.0;
  Matrix gram_;                       // K_y at the current hyperparameters
  double jitter_ = 0.0;               // diagonal jitter baked into factor_
  std::optional<linalg::CholeskyFactor> factor_;
  std::vector<double> alpha_;         // K_y^{-1} (y - mean)
  double lml_ = 0.0;
  // Last log-hyperparameters that produced a valid posterior — the final
  // rung of the recovery ladder when a fresh theta breaks factorization.
  std::vector<double> last_good_params_;
  // Cross-iteration candidate panel (DESIGN.md §13): Z = L^{-1} K* from
  // the last predict_batch_panel() sweep plus the running squared-column
  // sums, valid only while the posterior has grown purely by one-row
  // factor extensions since that sweep. Derived state: never serialized,
  // never fingerprinted — a rebuild reproduces it bit-for-bit.
  Matrix panel_z_;
  std::vector<double> panel_acc_;
  bool panel_valid_ = false;
};

}  // namespace alamr::gp
