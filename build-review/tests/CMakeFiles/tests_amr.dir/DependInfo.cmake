
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_amr_campaign.cpp" "tests/CMakeFiles/tests_amr.dir/test_amr_campaign.cpp.o" "gcc" "tests/CMakeFiles/tests_amr.dir/test_amr_campaign.cpp.o.d"
  "/root/repo/tests/test_amr_euler.cpp" "tests/CMakeFiles/tests_amr.dir/test_amr_euler.cpp.o" "gcc" "tests/CMakeFiles/tests_amr.dir/test_amr_euler.cpp.o.d"
  "/root/repo/tests/test_amr_geometry.cpp" "tests/CMakeFiles/tests_amr.dir/test_amr_geometry.cpp.o" "gcc" "tests/CMakeFiles/tests_amr.dir/test_amr_geometry.cpp.o.d"
  "/root/repo/tests/test_amr_machine.cpp" "tests/CMakeFiles/tests_amr.dir/test_amr_machine.cpp.o" "gcc" "tests/CMakeFiles/tests_amr.dir/test_amr_machine.cpp.o.d"
  "/root/repo/tests/test_amr_mesh.cpp" "tests/CMakeFiles/tests_amr.dir/test_amr_mesh.cpp.o" "gcc" "tests/CMakeFiles/tests_amr.dir/test_amr_mesh.cpp.o.d"
  "/root/repo/tests/test_amr_solver.cpp" "tests/CMakeFiles/tests_amr.dir/test_amr_solver.cpp.o" "gcc" "tests/CMakeFiles/tests_amr.dir/test_amr_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/amr/CMakeFiles/alamr_amr.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/alamr_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
