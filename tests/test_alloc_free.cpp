// Counting-allocator proof of the ISSUE 5 tentpole claim: once the
// workspace arena is warm and every posterior container is reserved, the
// steady-state AL predict cycle performs ZERO heap allocations.
//
// This test binary replaces the global operator new/delete with counting
// versions (binary-local: tests_alloc is its own executable precisely so
// the override cannot leak into other suites). The measured regions
// contain no gtest assertions — EXPECT_* allocates — and run with the
// thread pool forced to one inline lane, since dispatching pool tasks
// heap-allocates closures by design (that cost belongs to the parallel
// engine, not the inner loop; see DESIGN.md §10 for the boundary).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "alamr/core/parallel.hpp"
#include "alamr/gp/gpr.hpp"
#include "alamr/linalg/workspace.hpp"
#include "alamr/stats/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace alamr::gp;
using alamr::linalg::Matrix;
using alamr::linalg::Workspace;
using alamr::stats::Rng;

Matrix random_points(std::size_t n, std::size_t dim, Rng& rng) {
  Matrix x(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) x(i, d) = rng.uniform(0.0, 1.0);
  }
  return x;
}

TEST(AllocFree, CountingAllocatorSeesVectorAllocations) {
  // Sanity-check the instrument itself.
  const std::uint64_t before = g_alloc_count.load();
  { const std::vector<double> v(1024, 1.0); }
  EXPECT_GT(g_alloc_count.load(), before);
}

TEST(AllocFree, WarmArenaAllocIsHeapFree) {
  Workspace ws;
  ws.alloc(8192);
  ws.reset();
  const std::uint64_t before = g_alloc_count.load();
  for (int pass = 0; pass < 100; ++pass) {
    const Workspace::Scope scope(ws);
    auto a = ws.alloc(1000);
    auto b = ws.zeros(7000);
    a[0] = static_cast<double>(pass);
    b[0] = a[0];
  }
  EXPECT_EQ(g_alloc_count.load(), before);
}

// The tentpole gate: a steady-state AL predict pass — batched posterior
// for both models over the maintained cross matrices, outputs in the
// arena — touches the heap zero times.
TEST(AllocFree, SteadyStatePredictCycleIsAllocationFree) {
  alamr::core::set_global_parallel_threads(1);

  Rng rng(51);
  const std::size_t n = 40;
  const std::size_t m = 60;
  const Matrix x = random_points(n, 3, rng);
  std::vector<double> y_cost(n);
  std::vector<double> y_mem(n);
  for (std::size_t i = 0; i < n; ++i) {
    y_cost[i] = x(i, 0) + 0.5 * x(i, 1);
    y_mem[i] = x(i, 2) - 0.25 * x(i, 0);
  }

  GprOptions options;
  options.optimize = false;  // steady state: hyperparameters are settled
  GaussianProcessRegressor gpr_cost(make_paper_kernel(), options);
  GaussianProcessRegressor gpr_mem(make_paper_kernel(), options);
  gpr_cost.fit(x, y_cost, rng);
  gpr_mem.fit(x, y_mem, rng);

  const Matrix q = random_points(m, 3, rng);
  const Matrix k_star_cost = gpr_cost.kernel().cross(x, q);
  const Matrix k_star_mem = gpr_mem.kernel().cross(x, q);
  const std::vector<double> diag_cost = gpr_cost.kernel().diagonal(q);
  const std::vector<double> diag_mem = gpr_mem.kernel().diagonal(q);

  Workspace ws;
  // Warm-up pass sizes the arena (one chunk allocation, amortized).
  {
    const Workspace::Scope scope(ws);
    auto mu = ws.alloc(m);
    auto sd = ws.alloc(m);
    gpr_cost.predict_batch(k_star_cost, diag_cost, ws, mu, sd);
    gpr_mem.predict_batch(k_star_mem, diag_mem, ws, mu, sd);
  }

  const std::uint64_t before = g_alloc_count.load();
  double checksum = 0.0;
  for (int pass = 0; pass < 25; ++pass) {
    const Workspace::Scope scope(ws);
    auto mu_c = ws.alloc(m);
    auto sd_c = ws.alloc(m);
    auto mu_m = ws.alloc(m);
    auto sd_m = ws.alloc(m);
    gpr_cost.predict_batch(k_star_cost, diag_cost, ws, mu_c, sd_c);
    gpr_mem.predict_batch(k_star_mem, diag_mem, ws, mu_m, sd_m);
    checksum += mu_c[pass % m] + sd_c[0] + mu_m[0] + sd_m[pass % m];
  }
  const std::uint64_t after = g_alloc_count.load();

  EXPECT_EQ(after, before) << "steady-state predict cycle allocated";
  EXPECT_TRUE(std::isfinite(checksum));
  EXPECT_EQ(ws.open_scopes(), 0u);
  alamr::core::set_global_parallel_threads(0);
}

// Reserved posterior containers keep incremental add_point off the
// growth path: every big buffer (training matrix, gram, factor, alpha,
// distance cache) appends in place, so the only remaining allocations
// are the O(1) kernel-evaluation temporaries (x_new, the 1-column cross,
// the params snapshot) — a count that must stay FLAT as n grows. Without
// reserve_additional the count would spike whenever a container doubles.
TEST(AllocFree, ReservedAddPointAllocationCountStaysFlat) {
  alamr::core::set_global_parallel_threads(1);

  Rng rng(52);
  const std::size_t n0 = 30;
  const std::size_t extra = 24;
  const Matrix x = random_points(n0, 2, rng);
  std::vector<double> y(n0);
  for (std::size_t i = 0; i < n0; ++i) y[i] = x(i, 0) - x(i, 1);

  GprOptions options;
  options.optimize = false;
  GaussianProcessRegressor gpr(make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  gpr.reserve_additional(extra);

  const Matrix points = random_points(extra, 2, rng);
  std::vector<std::uint64_t> per_append(extra);
  for (std::size_t i = 0; i < extra; ++i) {
    const std::uint64_t before = g_alloc_count.load();
    gpr.add_point(points.row(i), 0.1 * static_cast<double>(i));
    per_append[i] = g_alloc_count.load() - before;
  }

  EXPECT_EQ(gpr.training_size(), n0 + extra);
  for (std::size_t i = 1; i < extra; ++i) {
    EXPECT_EQ(per_append[i], per_append[0])
        << "append " << i << " hit a container growth path";
  }
  alamr::core::set_global_parallel_threads(0);
}

}  // namespace
