file(REMOVE_RECURSE
  "CMakeFiles/tests_robustness.dir/test_robustness.cpp.o"
  "CMakeFiles/tests_robustness.dir/test_robustness.cpp.o.d"
  "tests_robustness"
  "tests_robustness.pdb"
  "tests_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
