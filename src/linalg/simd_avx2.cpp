// AVX2/FMA kernel table. CMake compiles this TU with -march=x86-64-v3
// (AVX2 + FMA + BMI) and defines ALAMR_SIMD_TU_AVX2 when the compiler
// accepts the flag; otherwise the TU compiles to a null table and the
// level reports unsupported. Four independent accumulator chains fill one
// 256-bit register; std::fma is a single vfmadd here.

#include <cmath>
#include <cstddef>

#include "alamr/linalg/simd_tables.hpp"

#if defined(ALAMR_SIMD_TU_AVX2)

#define ALAMR_SIMD_TU_CHAINS 4
#include "alamr/linalg/simd_kernels.inc"

namespace alamr::linalg::simd::detail {
const KernelTable* avx2_table() noexcept { return &kTuTable; }
}  // namespace alamr::linalg::simd::detail

#else

namespace alamr::linalg::simd::detail {
const KernelTable* avx2_table() noexcept { return nullptr; }
}  // namespace alamr::linalg::simd::detail

#endif
