#include "alamr/gp/local.hpp"

#include <limits>
#include <stdexcept>

namespace alamr::gp {

LocalGprEnsemble::LocalGprEnsemble(std::unique_ptr<Kernel> prototype,
                                   RegionLabeler labeler, GprOptions options)
    : prototype_(std::move(prototype)),
      labeler_(std::move(labeler)),
      options_(options) {
  if (!prototype_) {
    throw std::invalid_argument("LocalGprEnsemble: null kernel prototype");
  }
  if (!labeler_) {
    throw std::invalid_argument("LocalGprEnsemble: null labeler");
  }
}

void LocalGprEnsemble::fit(const Matrix& x, std::span<const double> y,
                           stats::Rng& rng, std::size_t min_region_size) {
  if (x.rows() != y.size() || x.rows() == 0) {
    throw std::invalid_argument("LocalGprEnsemble::fit: bad training data");
  }

  // Group row indices by region label.
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    groups[labeler_(x.row(i))].push_back(i);
  }

  // Global fallback on all data.
  global_.emplace(prototype_->clone(), options_);
  global_->fit(x, y, rng);

  regions_.clear();
  for (const auto& [label, rows] : groups) {
    if (rows.size() < min_region_size) continue;
    Matrix x_region(rows.size(), x.cols());
    std::vector<double> y_region(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        x_region(r, c) = x(rows[r], c);
      }
      y_region[r] = y[rows[r]];
    }
    GaussianProcessRegressor model(prototype_->clone(), options_);
    model.fit(x_region, y_region, rng);
    regions_.emplace(label, std::move(model));
  }
}

Prediction LocalGprEnsemble::predict(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("LocalGprEnsemble::predict before fit");

  // Dispatch query rows to their regions, predict per region in one batch,
  // then scatter results back into query order.
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const int label = labeler_(x.row(i));
    groups[regions_.contains(label) ? label
                                    : std::numeric_limits<int>::min()]
        .push_back(i);
  }

  Prediction out;
  out.mean.resize(x.rows());
  out.stddev.resize(x.rows());
  for (const auto& [label, rows] : groups) {
    Matrix x_group(rows.size(), x.cols());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) {
        x_group(r, c) = x(rows[r], c);
      }
    }
    const GaussianProcessRegressor& model =
        label == std::numeric_limits<int>::min() ? *global_
                                                 : regions_.at(label);
    const Prediction group = model.predict(x_group);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      out.mean[rows[r]] = group.mean[r];
      out.stddev[rows[r]] = group.stddev[r];
    }
  }
  return out;
}

std::vector<int> LocalGprEnsemble::region_labels() const {
  std::vector<int> labels;
  labels.reserve(regions_.size());
  for (const auto& [label, model] : regions_) labels.push_back(label);
  return labels;
}

const GaussianProcessRegressor& LocalGprEnsemble::region_model(int label) const {
  const auto it = regions_.find(label);
  if (it == regions_.end()) {
    throw std::out_of_range("LocalGprEnsemble: no model for label");
  }
  return it->second;
}

}  // namespace alamr::gp
