// Tests for bootstrap confidence intervals (cross-trajectory aggregation).

#include "alamr/stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "alamr/stats/descriptive.hpp"

namespace {

using namespace alamr::stats;

TEST(Bootstrap, PointEstimateIsStatisticOfInput) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  Rng rng(1);
  const Interval ci = bootstrap_mean(v, 500, 0.95, rng);
  EXPECT_DOUBLE_EQ(ci.point, 2.5);
}

TEST(Bootstrap, IntervalContainsPointAndIsOrdered) {
  const std::vector<double> v{5.0, 7.0, 9.0, 4.0, 6.0, 8.0};
  Rng rng(2);
  const Interval ci = bootstrap_mean(v, 1000, 0.95, rng);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, DegenerateSampleHasZeroWidth) {
  const std::vector<double> v{3.0, 3.0, 3.0};
  Rng rng(3);
  const Interval ci = bootstrap_mean(v, 200, 0.9, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(Bootstrap, WiderConfidenceGivesWiderInterval) {
  std::vector<double> v;
  Rng data_rng(11);
  for (int i = 0; i < 40; ++i) v.push_back(data_rng.normal(0.0, 1.0));
  Rng r1(4);
  Rng r2(4);
  const Interval narrow = bootstrap_mean(v, 2000, 0.5, r1);
  const Interval wide = bootstrap_mean(v, 2000, 0.99, r2);
  EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> v{1.0, 100.0, 2.0, 3.0};
  Rng rng(5);
  const Interval ci = bootstrap_interval(
      v, [](std::span<const double> s) { return quantile(s, 0.5); }, 300, 0.9,
      rng);
  EXPECT_GE(ci.lo, 1.0);
  EXPECT_LE(ci.hi, 100.0);
}

TEST(Bootstrap, RejectsBadArguments) {
  const std::vector<double> v{1.0};
  const std::vector<double> empty;
  Rng rng(6);
  EXPECT_THROW(bootstrap_mean(empty, 100, 0.9, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean(v, 0, 0.9, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean(v, 100, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_mean(v, 100, 1.0, rng), std::invalid_argument);
}

TEST(Bootstrap, CoverageOfTrueMeanIsReasonable) {
  // Repeated experiments: the 90% CI of the mean should contain the true
  // mean most of the time. Loose bound to keep the test stable.
  Rng meta(7);
  int covered = 0;
  constexpr int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> v(30);
    for (double& x : v) x = meta.normal(2.0, 1.0);
    Rng rng(1000 + static_cast<std::uint64_t>(trial));
    const Interval ci = bootstrap_mean(v, 400, 0.9, rng);
    if (ci.lo <= 2.0 && 2.0 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, kTrials * 7 / 10);
}

}  // namespace
