#include "alamr/linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace alamr::linalg {

std::optional<CholeskyFactor> CholeskyFactor::factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      // Contiguous dot over row prefixes (row-major storage).
      const auto li = l.row(i);
      const auto lj = l.row(j);
      for (std::size_t k = 0; k < j; ++k) v -= li[k] * lj[k];
      l(i, j) = v * inv;
    }
  }
  return CholeskyFactor(std::move(l));
}

Vector CholeskyFactor::solve_lower(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("solve_lower: length mismatch");
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    const auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) v -= li[k] * z[k];
    z[i] = v / li[i];
  }
  return z;
}

Vector CholeskyFactor::solve_upper(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("solve_upper: length mismatch");
  Vector z(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l_(k, ii) * z[k];
    z[ii] = v / l_(ii, ii);
  }
  return z;
}

Vector CholeskyFactor::solve(std::span<const double> b) const {
  return solve_upper(solve_lower(b));
}

Matrix CholeskyFactor::solve_matrix(const Matrix& b) const {
  if (b.rows() != size()) throw std::invalid_argument("solve_matrix: shape mismatch");
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) column[i] = b(i, j);
    const Vector solved = solve(column);
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = solved[i];
  }
  return x;
}

Matrix CholeskyFactor::inverse() const {
  return solve_matrix(Matrix::identity(size()));
}

double CholeskyFactor::log_det() const {
  double total = 0.0;
  for (std::size_t i = 0; i < size(); ++i) total += std::log(l_(i, i));
  return 2.0 * total;
}

JitteredCholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                                      double max_jitter) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky_with_jitter: matrix must be square");
  }
  if (auto clean = CholeskyFactor::factor(a)) {
    return JitteredCholesky{std::move(*clean), 0.0};
  }
  const std::size_t n = a.rows();
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_diag += a(i, i);
  mean_diag = n > 0 ? mean_diag / static_cast<double>(n) : 1.0;
  const double scale = mean_diag > 0.0 ? mean_diag : 1.0;

  for (double rel = initial_jitter; rel <= max_jitter; rel *= 10.0) {
    Matrix jittered = a;
    const double jitter = rel * scale;
    for (std::size_t i = 0; i < n; ++i) jittered(i, i) += jitter;
    if (auto factored = CholeskyFactor::factor(jittered)) {
      return JitteredCholesky{std::move(*factored), jitter};
    }
  }
  throw std::runtime_error(
      "cholesky_with_jitter: matrix not positive definite even at max jitter");
}

}  // namespace alamr::linalg
