#include "alamr/linalg/workspace.hpp"

#include <algorithm>

namespace alamr::linalg {

Workspace::Workspace(std::size_t initial_doubles) {
  if (initial_doubles > 0) ensure_room(initial_doubles);
}

void Workspace::ensure_room(std::size_t n) {
  // Advance past chunks that cannot hold the request. A monotonic bump
  // allocator never backfills skipped tail space until a rewind exposes
  // it again; the waste is bounded by one request per chunk and keeps
  // marks O(1).
  while (active_ < chunks_.size() &&
         chunks_[active_].used + n > chunks_[active_].capacity) {
    ++active_;
  }
  if (active_ == chunks_.size()) {
    const std::size_t prev_cap =
        chunks_.empty() ? 0 : chunks_.back().capacity;
    const std::size_t cap =
        std::max({n, prev_cap * 2, kMinChunkDoubles});
    Chunk c;
    c.data = std::make_unique<double[]>(cap);
    c.capacity = cap;
    chunks_.push_back(std::move(c));
    ++heap_allocations_;
  }
}

std::span<double> Workspace::alloc(std::size_t n) {
  if (n == 0) return {};
  ensure_room(n);
  Chunk& c = chunks_[active_];
  double* p = c.data.get() + c.used;
  c.used += n;
  in_use_ += n;
  peak_ = std::max(peak_, in_use_);
  return {p, n};
}

std::span<double> Workspace::zeros(std::size_t n) {
  const std::span<double> s = alloc(n);
  std::fill(s.begin(), s.end(), 0.0);
  return s;
}

Workspace::Mark Workspace::mark() const noexcept {
  Mark m;
  m.chunk = active_;
  m.used = active_ < chunks_.size() ? chunks_[active_].used : 0;
  m.in_use = in_use_;
  return m;
}

void Workspace::rewind(const Mark& m) noexcept {
  for (std::size_t i = m.chunk + 1; i < chunks_.size(); ++i) {
    chunks_[i].used = 0;
  }
  if (m.chunk < chunks_.size()) chunks_[m.chunk].used = m.used;
  active_ = m.chunk;
  in_use_ = m.in_use;
}

void Workspace::reset() noexcept { rewind(Mark{}); }

std::size_t Workspace::capacity_doubles() const noexcept {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.capacity;
  return total;
}

}  // namespace alamr::linalg
