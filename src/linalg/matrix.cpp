#include "alamr/linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alamr::linalg {

namespace detail {

void assert_fail(const char* msg) { throw std::invalid_argument(msg); }

}  // namespace detail

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

void Matrix::resize_discard(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void Matrix::push_row(std::span<const double> row) {
  if (data_.empty() && rows_ == 0) {
    cols_ = row.size();
  } else if (row.size() != cols_) {
    throw std::invalid_argument("push_row: column-count mismatch");
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

void Matrix::remove_column(std::size_t col) {
  if (col >= cols_) throw std::invalid_argument("remove_column: out of range");
  const std::size_t nc = cols_ - 1;
  // Forward compaction: each row's surviving elements move to their new
  // packed position. Destinations never overtake sources (new offsets are
  // strictly smaller), so a forward copy is safe.
  double* base = data_.data();
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* src = base + i * cols_;
    double* dst = base + i * nc;
    if (dst != src) std::copy(src, src + col, dst);
    std::copy(src + col + 1, src + cols_, dst + col);
  }
  cols_ = nc;
  data_.resize(rows_ * nc);  // trims, never reallocates
}

void Matrix::grow(std::size_t new_rows, std::size_t new_cols) {
  if (new_rows < rows_ || new_cols < cols_) {
    throw std::invalid_argument("grow: new shape smaller than current");
  }
  const std::size_t oc = cols_;
  data_.resize(new_rows * new_cols);  // zero-fills the tail
  if (new_cols != oc && rows_ > 0) {
    // Relayout descending so each row's destination only overwrites rows
    // that were already moved; copy_backward handles the self-overlap of
    // a single row. Gap cells between old and new column counts are
    // zero-filled explicitly (the vector only zeroed the resize tail).
    double* base = data_.data();
    for (std::size_t i = rows_; i-- > 0;) {
      const double* src = base + i * oc;
      double* dst = base + i * new_cols;
      if (dst != src) std::copy_backward(src, src + oc, dst + oc);
      std::fill(dst + oc, dst + new_cols, 0.0);
    }
  }
  rows_ = new_rows;
  cols_ = new_cols;
}

void Matrix::shrink(std::size_t new_rows, std::size_t new_cols) {
  if (new_rows > rows_ || new_cols > cols_) {
    throw std::invalid_argument("shrink: new shape larger than current");
  }
  const std::size_t oc = cols_;
  if (new_cols != oc) {
    // Ascending forward compaction (destinations trail sources).
    double* base = data_.data();
    for (std::size_t i = 0; i < new_rows; ++i) {
      const double* src = base + i * oc;
      double* dst = base + i * new_cols;
      if (dst != src) std::copy(src, src + new_cols, dst);
    }
  }
  rows_ = new_rows;
  cols_ = new_cols;
  data_.resize(new_rows * new_cols);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  // Tiled copy: a straight row sweep writes (or reads) with stride
  // rows_ * 8 bytes, touching a fresh cache line per element. 16x16 tiles
  // (2 KiB working set) keep both the source and destination lines resident
  // while they are reused. Pure data movement — bit-exact by construction.
  constexpr std::size_t kTile = 16;
  for (std::size_t ib = 0; ib < rows_; ib += kTile) {
    const std::size_t ie = std::min(ib + kTile, rows_);
    for (std::size_t jb = 0; jb < cols_; jb += kTile) {
      const std::size_t je = std::min(jb + kTile, cols_);
      for (std::size_t i = ib; i < ie; ++i) {
        for (std::size_t j = jb; j < je; ++j) {
          t(j, i) = (*this)(i, j);
        }
      }
    }
  }
  return t;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

Vector matvec(const Matrix& a, std::span<const double> x) {
  if (a.cols() != x.size()) throw std::invalid_argument("matvec: shape mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = dot(a.row(i), x);
  }
  return y;
}

Vector matvec_transposed(const Matrix& a, std::span<const double> x) {
  if (a.rows() != x.size()) {
    throw std::invalid_argument("matvec_transposed: shape mismatch");
  }
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    axpy(x[i], a.row(i), y);
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  const std::size_t n = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t m = b.cols();
  Matrix c(n, m);
  // Register-tiled i-k-j: two C rows and two B rows in flight, so every
  // load of b.row(k) feeds two accumulation chains. Each C entry still
  // receives its k contributions one at a time in ascending order — no
  // value-dependent skips (a zero or NaN in A participates per IEEE rules)
  // and no reassociation, so the result is independent of tile shape.
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const auto c0 = c.row(i);
    const auto c1 = c.row(i + 1);
    std::size_t k = 0;
    for (; k + 2 <= kk; k += 2) {
      const double a00 = a(i, k);
      const double a01 = a(i, k + 1);
      const double a10 = a(i + 1, k);
      const double a11 = a(i + 1, k + 1);
      const auto b0 = b.row(k);
      const auto b1 = b.row(k + 1);
      for (std::size_t j = 0; j < m; ++j) {
        double v0 = c0[j];
        v0 += a00 * b0[j];
        v0 += a01 * b1[j];
        c0[j] = v0;
        double v1 = c1[j];
        v1 += a10 * b0[j];
        v1 += a11 * b1[j];
        c1[j] = v1;
      }
    }
    for (; k < kk; ++k) {
      axpy(a(i, k), b.row(k), c0);
      axpy(a(i + 1, k), b.row(k), c1);
    }
  }
  for (; i < n; ++i) {
    const auto ci = c.row(i);
    for (std::size_t k = 0; k < kk; ++k) {
      axpy(a(i, k), b.row(k), ci);
    }
  }
  return c;
}

Matrix aat(const Matrix& a) {
  const std::size_t n = a.rows();
  const std::size_t d = a.cols();
  Matrix c(n, n);
  // Pairs of output columns share the load of a.row(i): two independent
  // ascending-k dot chains per pass, each bit-identical to dot(ai, aj).
  for (std::size_t i = 0; i < n; ++i) {
    const auto ai = a.row(i);
    std::size_t j = 0;
    for (; j + 1 < i + 1; j += 2) {
      const auto aj0 = a.row(j);
      const auto aj1 = a.row(j + 1);
      double s0 = 0.0;
      double s1 = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        s0 += ai[k] * aj0[k];
        s1 += ai[k] * aj1[k];
      }
      c(i, j) = s0;
      c(j, i) = s0;
      c(i, j + 1) = s1;
      c(j + 1, i) = s1;
    }
    for (; j <= i; ++j) {
      const double v = dot(ai, a.row(j));
      c(i, j) = v;
      c(j, i) = v;
    }
  }
  return c;
}

double frobenius_inner(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("frobenius_inner: shape mismatch");
  }
  return dot(a.data(), b.data());
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    worst = std::max(worst, std::abs(da[i] - db[i]));
  }
  return worst;
}

}  // namespace alamr::linalg
