file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cost_error.dir/bench_fig3_cost_error.cpp.o"
  "CMakeFiles/bench_fig3_cost_error.dir/bench_fig3_cost_error.cpp.o.d"
  "bench_fig3_cost_error"
  "bench_fig3_cost_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cost_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
