
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/lbfgs.cpp" "src/opt/CMakeFiles/alamr_opt.dir/lbfgs.cpp.o" "gcc" "src/opt/CMakeFiles/alamr_opt.dir/lbfgs.cpp.o.d"
  "/root/repo/src/opt/multistart.cpp" "src/opt/CMakeFiles/alamr_opt.dir/multistart.cpp.o" "gcc" "src/opt/CMakeFiles/alamr_opt.dir/multistart.cpp.o.d"
  "/root/repo/src/opt/nelder_mead.cpp" "src/opt/CMakeFiles/alamr_opt.dir/nelder_mead.cpp.o" "gcc" "src/opt/CMakeFiles/alamr_opt.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/opt/objective.cpp" "src/opt/CMakeFiles/alamr_opt.dir/objective.cpp.o" "gcc" "src/opt/CMakeFiles/alamr_opt.dir/objective.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
