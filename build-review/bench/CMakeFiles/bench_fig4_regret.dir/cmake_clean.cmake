file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_regret.dir/bench_fig4_regret.cpp.o"
  "CMakeFiles/bench_fig4_regret.dir/bench_fig4_regret.cpp.o.d"
  "bench_fig4_regret"
  "bench_fig4_regret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_regret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
