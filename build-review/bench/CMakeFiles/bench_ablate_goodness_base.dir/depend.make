# Empty dependencies file for bench_ablate_goodness_base.
# This may be replaced when dependencies are built.
