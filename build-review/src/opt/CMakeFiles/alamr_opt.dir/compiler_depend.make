# Empty compiler generated dependencies file for alamr_opt.
# This may be replaced when dependencies are built.
