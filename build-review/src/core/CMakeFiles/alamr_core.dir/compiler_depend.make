# Empty compiler generated dependencies file for alamr_core.
# This may be replaced when dependencies are built.
