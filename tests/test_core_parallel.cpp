// Tests for the thread-pool subsystem: index coverage, chunk partitioning,
// nesting, exception propagation, and the ALAMR_THREADS configuration.

#include "alamr/core/parallel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using namespace alamr::core;

TEST(ThreadPool, SizeCountsCallingThread) {
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(4).size(), 4u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ChunksAreContiguousDisjointAndComplete) {
  ThreadPool pool(4);
  const std::size_t n = 103;
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(n, [&](std::size_t begin, std::size_t end) {
    EXPECT_LT(begin, end);
    const std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(begin, end);
  });
  EXPECT_LE(chunks.size(), pool.size());
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, n);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for_chunks(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallRangeUsesFewerLanesThanPoolSize) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_for_chunks(3, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_LE(calls.load(), 3);
}

TEST(ThreadPool, NestedParallelForRunsSerialWithoutDeadlock) {
  ThreadPool pool(4);
  const std::size_t outer = 8;
  const std::size_t inner = 50;
  std::vector<std::vector<int>> marks(outer, std::vector<int>(inner, 0));
  pool.parallel_for(outer, [&](std::size_t o) {
    // Nested call on the same pool must degrade to serial inline execution
    // instead of queuing behind the outer tasks.
    pool.parallel_for(inner, [&](std::size_t i) { ++marks[o][i]; });
  });
  for (const auto& row : marks) {
    for (const int v : row) EXPECT_EQ(v, 1);
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ExceptionInCallerChunkAlsoPropagates) {
  ThreadPool pool(4);
  // Chunk 0 runs on the calling thread; the throw must still arrive after
  // the other chunks drained.
  EXPECT_THROW(pool.parallel_for_chunks(
                   100,
                   [&](std::size_t begin, std::size_t) {
                     if (begin == 0) throw std::logic_error("caller chunk");
                   }),
               std::logic_error);
}

TEST(ParallelConfig, EnvVarOverridesThreadCount) {
  ASSERT_EQ(setenv("ALAMR_THREADS", "3", 1), 0);
  EXPECT_EQ(configured_parallel_threads(), 3u);
  ASSERT_EQ(setenv("ALAMR_THREADS", "0", 1), 0);  // invalid -> fallback
  EXPECT_GE(configured_parallel_threads(), 1u);
  ASSERT_EQ(unsetenv("ALAMR_THREADS"), 0);
  EXPECT_GE(configured_parallel_threads(), 1u);
}

TEST(ParallelConfig, GlobalPoolCanBeResized) {
  set_global_parallel_threads(3);
  EXPECT_EQ(global_pool().size(), 3u);
  std::vector<int> hits(64, 0);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
  set_global_parallel_threads(0);  // back to the environment default
}

}  // namespace
