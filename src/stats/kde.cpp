#include "alamr/stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "alamr/stats/descriptive.hpp"

namespace alamr::stats {

double scott_bandwidth(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("scott_bandwidth: empty input");
  const double sd = stddev(values);
  const double iqr = quantile(values, 0.75) - quantile(values, 0.25);
  double spread = sd;
  if (iqr > 0.0) spread = std::min(sd, iqr / 1.349);
  if (spread <= 0.0) {
    // Degenerate sample (all equal): fall back to a scale-aware floor.
    const double scale = std::abs(values[0]);
    spread = scale > 0.0 ? 1e-3 * scale : 1e-3;
  }
  return spread * std::pow(static_cast<double>(values.size()), -0.2);
}

DensityCurve gaussian_kde(std::span<const double> values, std::size_t grid_size,
                          double bandwidth) {
  if (values.empty()) throw std::invalid_argument("gaussian_kde: empty input");
  if (grid_size < 2) throw std::invalid_argument("gaussian_kde: grid_size < 2");
  const double h = bandwidth > 0.0 ? bandwidth : scott_bandwidth(values);

  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *min_it - 3.0 * h;
  const double hi = *max_it + 3.0 * h;

  DensityCurve curve;
  curve.bandwidth = h;
  curve.x.resize(grid_size);
  curve.density.resize(grid_size);
  const double step = (hi - lo) / static_cast<double>(grid_size - 1);
  const double norm =
      1.0 / (static_cast<double>(values.size()) * h * std::sqrt(2.0 * std::numbers::pi));
  for (std::size_t g = 0; g < grid_size; ++g) {
    const double x = lo + step * static_cast<double>(g);
    double total = 0.0;
    for (const double v : values) {
      const double z = (x - v) / h;
      total += std::exp(-0.5 * z * z);
    }
    curve.x[g] = x;
    curve.density[g] = norm * total;
  }
  return curve;
}

std::size_t Histogram::total() const noexcept {
  std::size_t n = 0;
  for (const std::size_t c : counts) n += c;
  return n;
}

double Histogram::center(std::size_t i) const noexcept {
  const double width = (hi - lo) / static_cast<double>(counts.size());
  return lo + width * (static_cast<double>(i) + 0.5);
}

Histogram histogram(std::span<const double> values, std::size_t bins, double lo,
                    double hi) {
  if (bins == 0) throw std::invalid_argument("histogram: bins == 0");
  if (!(hi > lo)) throw std::invalid_argument("histogram: hi must exceed lo");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double v : values) {
    auto idx = static_cast<std::ptrdiff_t>((v - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++h.counts[static_cast<std::size_t>(idx)];
  }
  return h;
}

}  // namespace alamr::stats
