#pragma once

// Dense row-major matrix and vector helpers.
//
// The GPR core (Eqs. 3, 8) needs only dense symmetric linear algebra at
// n <= a few hundred, so we implement exactly what is needed rather than
// depending on an external BLAS: storage, gemv/gemm/syrk-style kernels,
// and a Cholesky factorization (cholesky.hpp). Kernels are written to
// vectorize with plain -O2/-O3 (contiguous inner loops, no aliasing
// surprises); matmul/aat additionally use small register tiles that keep
// several independent accumulation chains in flight without changing any
// individual chain's floating-point order.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "alamr/linalg/simd.hpp"

// ---- ALAMR_ASSERT ---------------------------------------------------------
//
// Debug-only precondition checks for the hot-path vector kernels (dot,
// axpy, squared_distance and the blocked solves). These run O(n^2)-O(n^3)
// times per GPR fit, so in release builds (NDEBUG) the checks compile to
// nothing and the kernels inline into their callers branch-free. Building
// without NDEBUG, or configuring with -DALAMR_DEBUG_ASSERTS=ON (as the
// sanitizer leg of scripts/check.sh does), restores throwing checks
// (std::invalid_argument, so tests can assert on them).
#if defined(ALAMR_DEBUG_ASSERTS) || !defined(NDEBUG)
#define ALAMR_ASSERTS_ENABLED 1
#define ALAMR_ASSERT(cond, msg) \
  ((cond) ? static_cast<void>(0) : ::alamr::linalg::detail::assert_fail(msg))
#else
#define ALAMR_ASSERTS_ENABLED 0
#define ALAMR_ASSERT(cond, msg) static_cast<void>(0)
#endif

namespace alamr::linalg {

namespace detail {
/// Throws std::invalid_argument(msg). Out of line so the cold failure path
/// never bloats an inlined kernel.
[[noreturn]] void assert_fail(const char* msg);
}  // namespace detail

using Vector = std::vector<double>;

/// Dense row-major matrix of double.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized (or filled with `fill`).
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list (for tests and small fixtures).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Contiguous view of row i.
  std::span<double> row(std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> row(std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }

  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Transposed copy.
  Matrix transposed() const;

  // ---- in-place shape management (DESIGN.md §10) --------------------------
  //
  // The AL inner loop maintains growing training matrices and a shrinking
  // cross-covariance in place: reserve() once up front with the trajectory
  // bound, then push_row/remove_column/grow never touch the heap. All of
  // these are pure data movement — no floating-point arithmetic — so they
  // cannot perturb a single bit of any stored value.

  /// Reserves storage for a rows x cols matrix without changing the shape
  /// or contents.
  void reserve(std::size_t rows, std::size_t cols) {
    data_.reserve(rows * cols);
  }
  /// Element capacity of the underlying storage.
  std::size_t capacity() const noexcept { return data_.capacity(); }

  /// Reshapes to rows x cols; existing element values are NOT preserved
  /// (contents unspecified, like a freshly alloc'd buffer). Never shrinks
  /// capacity; allocates only when rows*cols exceeds capacity().
  void resize_discard(std::size_t rows, std::size_t cols);

  /// Appends one row (row.size() must equal cols(), or define cols() for
  /// an empty matrix). Allocation-free within reserved capacity.
  void push_row(std::span<const double> row);

  /// Removes column `col`, compacting rows forward in place.
  void remove_column(std::size_t col);

  /// Grows in place to new_rows x new_cols (both >= current), preserving
  /// existing entries at their (i, j) positions and zero-filling the new
  /// cells — same result as copying into Matrix(new_rows, new_cols).
  /// Allocation-free within reserved capacity.
  void grow(std::size_t new_rows, std::size_t new_cols);

  /// Shrinks in place to new_rows x new_cols (both <= current), keeping
  /// the leading block. Exact inverse of a grow() that only zero-filled.
  void shrink(std::size_t new_rows, std::size_t new_cols);

  bool operator==(const Matrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- vector kernels -------------------------------------------------------
//
// Inline: these are the innermost loops of every kernel-matrix build and
// triangular solve. Shape checks are ALAMR_ASSERTs (debug-only) rather
// than throws so the release-mode loops carry no branch.
//
// Dispatch policy (simd.hpp): the REDUCTION kernels (dot,
// squared_distance) route through the runtime-selected kernel table only
// for lengths >= simd::kDispatchMin — shorter calls (feature-dimension
// work, mostly) keep the inlined sequential loop, which is bit-identical
// to the scalar table entry, so the threshold never changes scalar-level
// results. The ELEMENTWISE kernels (axpy, rank1_sub) ALWAYS dispatch,
// with no length threshold: element i's result depends only on the
// dispatch level — never on the call length — which makes them
// chunk-splittable. That property is load-bearing: the blocked solves
// behind the batched posterior split their RHS columns into
// thread-count-dependent stripes, and a length threshold there would make
// trajectory bits depend on the thread count at the vector levels.

/// Inner product. Requires equal lengths.
inline double dot(std::span<const double> x, std::span<const double> y) {
  ALAMR_ASSERT(x.size() == y.size(), "dot: length mismatch");
  if (x.size() >= simd::kDispatchMin) {
    return simd::dot(x.data(), y.data(), x.size());
  }
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) total += x[i] * y[i];
  return total;
}

/// Euclidean norm.
double norm2(std::span<const double> x);

/// y += alpha * x.
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  ALAMR_ASSERT(x.size() == y.size(), "axpy: length mismatch");
  simd::axpy(alpha, x.data(), y.data(), x.size());
}

/// y -= alpha * x (the rank-1 update inside triangular solves and the
/// Cholesky trailing update).
inline void rank1_sub(double alpha, std::span<const double> x,
                      std::span<double> y) {
  ALAMR_ASSERT(x.size() == y.size(), "rank1_sub: length mismatch");
  simd::rank1_sub(alpha, x.data(), y.data(), x.size());
}

/// Squared Euclidean distance between two points (rows of a design matrix).
inline double squared_distance(std::span<const double> x,
                               std::span<const double> y) {
  ALAMR_ASSERT(x.size() == y.size(), "squared_distance: length mismatch");
  if (x.size() >= simd::kDispatchMin) {
    return simd::squared_distance(x.data(), y.data(), x.size());
  }
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

// ---- matrix kernels -------------------------------------------------------

/// y = A x (dimensions checked).
Vector matvec(const Matrix& a, std::span<const double> x);

/// y = A^T x.
Vector matvec_transposed(const Matrix& a, std::span<const double> x);

/// C = A B. Register-tiled i-k-j kernel: contiguous inner loops over B and
/// C rows, several C rows in flight. Each C entry accumulates its k
/// contributions strictly in ascending order (IEEE semantics: zeros, NaNs
/// and infinities in either operand propagate per element — there is no
/// sparsity short-circuit).
Matrix matmul(const Matrix& a, const Matrix& b);

/// Symmetric product A A^T (used for building SPD test fixtures and the
/// rank-k updates inside the LML gradient). Register-tiled over 2x2 output
/// blocks; every entry remains an ascending-k dot of two rows.
Matrix aat(const Matrix& a);

/// Frobenius-inner-product trace(A^T B); A, B same shape.
double frobenius_inner(const Matrix& a, const Matrix& b);

/// Maximum absolute entry difference (test helper).
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace alamr::linalg
