#include "alamr/linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

// Header-only instrumentation and fault injection (standard library only),
// so linking stays within this module — see the layering notes in
// core/trace.hpp and core/faults.hpp.
#include "alamr/core/faults.hpp"
#include "alamr/core/resilience.hpp"
#include "alamr/core/trace.hpp"

namespace alamr::linalg {

namespace {

// Register-tiled panel accumulation for the blocked inverse: TW consecutive
// panel columns of row `zi_q` accumulate their k-chain in a fixed-size local
// array (which the compiler keeps in vector registers) instead of
// round-tripping through memory on every k. Each scalar still performs the
// subtractions in exactly the given k order, so results are bit-identical
// to the in-place form.
template <std::size_t TW>
void accumulate_ascending(double* zi_q, const double* l_row, const Matrix& z,
                          std::size_t q, std::size_t k_begin,
                          std::size_t k_end) {
  double acc[TW];
  for (std::size_t t = 0; t < TW; ++t) acc[t] = zi_q[t];
  for (std::size_t k = k_begin; k < k_end; ++k) {
    const double lk = l_row[k];
    const double* zk = z.row(k).data() + q;
    for (std::size_t t = 0; t < TW; ++t) acc[t] -= lk * zk[t];
  }
  for (std::size_t t = 0; t < TW; ++t) zi_q[t] = acc[t];
}

template <std::size_t TW>
void accumulate_descending(double* zi_q, const double* u_row, const Matrix& z,
                           std::size_t q, std::size_t k_begin,
                           std::size_t k_end) {
  double acc[TW];
  for (std::size_t t = 0; t < TW; ++t) acc[t] = zi_q[t];
  for (std::size_t k = k_end; k-- > k_begin;) {
    const double uk = u_row[k];
    const double* zk = z.row(k).data() + q;
    for (std::size_t t = 0; t < TW; ++t) acc[t] -= uk * zk[t];
  }
  for (std::size_t t = 0; t < TW; ++t) zi_q[t] = acc[t];
}

}  // namespace

std::optional<CholeskyFactor> CholeskyFactor::factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  // Work in place on a copy of the lower triangle: trailing updates from
  // finished panels land directly in l, so the panel factorization only has
  // to subtract contributions from its own block. Each entry (i, j) is
  // touched by earlier panels in ascending block order and within each
  // panel in ascending k, which is exactly the ascending k < j order of the
  // unblocked left-looking algorithm — intermediate values round-trip
  // through memory but doubles survive that bit-exactly.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = a.row(i);
    const auto dst = l.row(i);
    std::copy(src.begin(), src.begin() + static_cast<std::ptrdiff_t>(i + 1),
              dst.begin());
  }
  for (std::size_t jb = 0; jb < n; jb += kCholeskyBlock) {
    const std::size_t je = std::min(jb + kCholeskyBlock, n);
    // Panel: factor columns [jb, je) using only within-block prefixes
    // (k in [jb, j)); contributions with k < jb were already applied by
    // the trailing updates of earlier blocks.
    for (std::size_t j = jb; j < je; ++j) {
      double diag = l(j, j);
      {
        const auto lj = l.row(j);
        for (std::size_t k = jb; k < j; ++k) diag -= lj[k] * lj[k];
      }
      if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
      const double ljj = std::sqrt(diag);
      l(j, j) = ljj;
      const double inv = 1.0 / ljj;
      const auto lj = l.row(j);
      for (std::size_t i = j + 1; i < n; ++i) {
        const auto li = l.row(i);
        double v = li[j];
        for (std::size_t k = jb; k < j; ++k) v -= li[k] * lj[k];
        l(i, j) = v * inv;
      }
    }
    // Trailing update: subtract the panel's rank-(je - jb) contribution
    // from the remaining lower triangle. Eight output columns per pass
    // share each load of row i; every chain subtracts k ascending, so each
    // entry sees exactly the reference algorithm's operation order.
    for (std::size_t i = je; i < n; ++i) {
      const auto li = l.row(i);
      const std::size_t limit = std::min(i + 1, n);
      std::size_t j = je;
      for (; j + 8 <= limit; j += 8) {
        const double* lj0 = l.row(j).data();
        const double* lj1 = l.row(j + 1).data();
        const double* lj2 = l.row(j + 2).data();
        const double* lj3 = l.row(j + 3).data();
        const double* lj4 = l.row(j + 4).data();
        const double* lj5 = l.row(j + 5).data();
        const double* lj6 = l.row(j + 6).data();
        const double* lj7 = l.row(j + 7).data();
        double v0 = li[j];
        double v1 = li[j + 1];
        double v2 = li[j + 2];
        double v3 = li[j + 3];
        double v4 = li[j + 4];
        double v5 = li[j + 5];
        double v6 = li[j + 6];
        double v7 = li[j + 7];
        for (std::size_t k = jb; k < je; ++k) {
          const double lik = li[k];
          v0 -= lik * lj0[k];
          v1 -= lik * lj1[k];
          v2 -= lik * lj2[k];
          v3 -= lik * lj3[k];
          v4 -= lik * lj4[k];
          v5 -= lik * lj5[k];
          v6 -= lik * lj6[k];
          v7 -= lik * lj7[k];
        }
        l(i, j) = v0;
        l(i, j + 1) = v1;
        l(i, j + 2) = v2;
        l(i, j + 3) = v3;
        l(i, j + 4) = v4;
        l(i, j + 5) = v5;
        l(i, j + 6) = v6;
        l(i, j + 7) = v7;
      }
      for (; j + 4 <= limit; j += 4) {
        const auto lj0 = l.row(j);
        const auto lj1 = l.row(j + 1);
        const auto lj2 = l.row(j + 2);
        const auto lj3 = l.row(j + 3);
        double v0 = li[j];
        double v1 = li[j + 1];
        double v2 = li[j + 2];
        double v3 = li[j + 3];
        for (std::size_t k = jb; k < je; ++k) {
          const double lik = li[k];
          v0 -= lik * lj0[k];
          v1 -= lik * lj1[k];
          v2 -= lik * lj2[k];
          v3 -= lik * lj3[k];
        }
        l(i, j) = v0;
        l(i, j + 1) = v1;
        l(i, j + 2) = v2;
        l(i, j + 3) = v3;
      }
      for (; j < limit; ++j) {
        const auto lj = l.row(j);
        double v = li[j];
        for (std::size_t k = jb; k < je; ++k) v -= li[k] * lj[k];
        l(i, j) = v;
      }
    }
  }
  return CholeskyFactor(std::move(l));
}

std::optional<CholeskyFactor> CholeskyFactor::factor_reference(
    const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      // Contiguous dot over row prefixes (row-major storage).
      const auto li = l.row(i);
      const auto lj = l.row(j);
      for (std::size_t k = 0; k < j; ++k) v -= li[k] * lj[k];
      l(i, j) = v * inv;
    }
  }
  return CholeskyFactor(std::move(l));
}

bool CholeskyFactor::extend(std::span<const double> row, double diag) {
  const std::size_t n = size();
  if (row.size() != n) throw std::invalid_argument("extend: length mismatch");
  core::trace::count("cholesky.extend");
  // New bottom row of L. This repeats, operation for operation, what
  // factor() computes for row n of the bordered matrix: the same dot
  // products over row prefixes and the same `v * (1.0 / l_jj)` scaling, so
  // extending is bit-identical to refactoring from scratch (the first n
  // rows of a factorization depend only on the leading n x n block).
  //
  // The factor grows in place (allocation-free within reserve()d
  // capacity) and the new row is computed directly in its final storage;
  // grow/shrink are pure data movement, so the surviving entries — and
  // the rejected-extension rollback — are bit-identical to the old
  // copy-into-fresh-matrix recipe.
  l_.grow(n + 1, n + 1);
  const auto z = l_.row(n);
  for (std::size_t j = 0; j < n; ++j) {
    double v = row[j];
    const auto lj = l_.row(j);
    for (std::size_t k = 0; k < j; ++k) v -= z[k] * lj[k];
    z[j] = v * (1.0 / lj[j]);
  }
  double d = diag;
  for (std::size_t k = 0; k < n; ++k) d -= z[k] * z[k];
  if (!(d > 0.0) || !std::isfinite(d)) {
    l_.shrink(n, n);
    core::trace::count("cholesky.extend_rejected");
    return false;
  }
  z[n] = std::sqrt(d);
  return true;
}

Vector CholeskyFactor::solve_lower(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("solve_lower: length mismatch");
  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    const auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) v -= li[k] * z[k];
    z[i] = v / li[i];
  }
  return z;
}

Vector CholeskyFactor::solve_upper(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("solve_upper: length mismatch");
  // Saxpy (outer-product) form: once z[k] is final, eliminate its
  // contribution from all remaining rows by walking l_.row(k) — contiguous
  // in row-major storage, unlike the column stride l_(k, ii) of the
  // dot-product form.
  Vector z(b.begin(), b.end());
  for (std::size_t k = n; k-- > 0;) {
    const auto lk = l_.row(k);
    const double zk = z[k] / lk[k];
    z[k] = zk;
    for (std::size_t j = 0; j < k; ++j) z[j] -= lk[j] * zk;
  }
  return z;
}

Vector CholeskyFactor::solve(std::span<const double> b) const {
  return solve_upper(solve_lower(b));
}

void CholeskyFactor::solve_in_place(std::span<double> b) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument("solve_in_place: length mismatch");
  }
  // Forward: identical chain to solve_lower() — b[i] is read before it is
  // overwritten and positions k < i already hold the finalized prefix.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    const auto li = l_.row(i);
    for (std::size_t k = 0; k < i; ++k) v -= li[k] * b[k];
    b[i] = v / li[i];
  }
  // Backward: solve_upper() already works in place on its copy.
  for (std::size_t k = n; k-- > 0;) {
    const auto lk = l_.row(k);
    const double zk = b[k] / lk[k];
    b[k] = zk;
    for (std::size_t j = 0; j < k; ++j) b[j] -= lk[j] * zk;
  }
}

Matrix CholeskyFactor::solve_lower_block(const Matrix& b,
                                         std::size_t col_begin,
                                         std::size_t col_end) const {
  const std::size_t n = size();
  if (b.rows() != n || col_begin > col_end || col_end > b.cols()) {
    throw std::invalid_argument("solve_lower_block: shape mismatch");
  }
  const std::size_t nc = col_end - col_begin;
  Matrix z(n, nc);
  solve_lower_block_to(b, col_begin, col_end, z.data().data(), nc);
  return z;
}

void CholeskyFactor::solve_lower_block_to(const Matrix& b,
                                          std::size_t col_begin,
                                          std::size_t col_end, double* z,
                                          std::size_t ld) const {
  solve_lower_block_resume(b, col_begin, col_end, z, ld, 0);
}

void CholeskyFactor::solve_lower_block_resume(const Matrix& b,
                                              std::size_t col_begin,
                                              std::size_t col_end, double* z,
                                              std::size_t ld,
                                              std::size_t row_begin) const {
  const std::size_t n = size();
  const std::size_t nc = col_end - col_begin;
  if (b.rows() != n || col_begin > col_end || col_end > b.cols() || ld < nc ||
      row_begin > n) {
    throw std::invalid_argument("solve_lower_block_to: shape mismatch");
  }
  for (std::size_t i = row_begin; i < n; ++i) {
    const auto li = l_.row(i);
    double* zi = z + i * ld;
    const auto bi = b.row(i);
    std::copy(bi.begin() + static_cast<std::ptrdiff_t>(col_begin),
              bi.begin() + static_cast<std::ptrdiff_t>(col_end), zi);
    // Eliminate finished rows k < i across all right-hand sides at once:
    // the inner loop is contiguous over the solution row. Per scalar this
    // is the same ascending-k chain solve_lower() runs on one column.
    for (std::size_t k = 0; k < i; ++k) {
      const double lik = li[k];
      const double* zk = z + k * ld;
      rank1_sub(lik, {zk, nc}, {zi, nc});
    }
    const double lii = li[i];
    for (std::size_t q = 0; q < nc; ++q) zi[q] /= lii;
  }
}

Matrix CholeskyFactor::solve_matrix(const Matrix& b) const {
  if (b.rows() != size()) throw std::invalid_argument("solve_matrix: shape mismatch");
  const std::size_t n = size();
  const std::size_t nc = b.cols();
  // Forward substitution for every column at once...
  Matrix z = solve_lower_block(b, 0, nc);
  // ...then the saxpy-form backward substitution, also row-contiguous.
  // Each scalar sees exactly solve_upper()'s operations for its column.
  for (std::size_t k = n; k-- > 0;) {
    const auto lk = l_.row(k);
    const auto zk = z.row(k);
    const double lkk = lk[k];
    for (std::size_t q = 0; q < nc; ++q) zk[q] /= lkk;
    for (std::size_t j = 0; j < k; ++j) {
      const double lkj = lk[j];
      const auto zj = z.row(j);
      for (std::size_t q = 0; q < nc; ++q) zj[q] -= lkj * zk[q];
    }
  }
  return z;
}

Matrix CholeskyFactor::inverse() const {
  // Column j of A^{-1} solves A x = e_j; by symmetry only entries at or
  // below the diagonal are needed. Columns are processed in panels of
  // kCholeskyBlock so both triangular solves stream the factor once per
  // panel with contiguous inner loops over the panel. The zero prefix of
  // each identity column is preserved exactly: column j = jb + q only
  // participates in an update at position k when j <= k, i.e. q <= k - jb,
  // which is a contiguous column prefix — entries with j > k are never
  // read or written, exactly as in inverse_reference(). Per scalar, each
  // chain subtracts the same terms in the same order as the reference.
  const std::size_t n = size();
  Matrix inv(n, n);
  // U(i, k) = L(k, i): the backward pass walks column i of L for k
  // descending, which in the transposed copy is a contiguous row. One
  // O(n^2) copy buys contiguous O(n^3) access.
  const Matrix u = l_.transposed();
  for (std::size_t jb = 0; jb < n; jb += kCholeskyBlock) {
    const std::size_t je = std::min(jb + kCholeskyBlock, n);
    const std::size_t nc = je - jb;
    // Scratch panel: rows [jb, n) of the nc solution columns. Zero-filled;
    // entries above a column's diagonal are never touched.
    Matrix z(n, nc);
    for (std::size_t q = 0; q < nc; ++q) z(jb + q, q) = 1.0;
    // Forward: L z = E over rows i >= jb. Column q joins once k >= its
    // diagonal row jb + q, so within the panel ("ramp") only the column
    // prefix q <= k - jb is live; from k = je - 1 on, every column is.
    //
    // Panel rows first: ramp + divide (all chains end inside the panel).
    for (std::size_t i = jb; i < je; ++i) {
      const auto li = l_.row(i);
      const auto zi = z.row(i);
      for (std::size_t k = jb; k < i; ++k) {
        const double lik = li[k];
        const auto zk = z.row(k);
        const std::size_t qn = k - jb + 1;
        for (std::size_t q = 0; q < qn; ++q) zi[q] -= lik * zk[q];
      }
      const double lii = li[i];
      const std::size_t qn = i - jb + 1;
      for (std::size_t q = 0; q < qn; ++q) zi[q] /= lii;
    }
    // Below-panel rows: apply the ramp contributions (k inside the panel,
    // partial column prefixes) up front. These are the earliest k of every
    // chain, so they must land before any bulk chunk.
    for (std::size_t i = je; i < n; ++i) {
      const auto li = l_.row(i);
      const auto zi = z.row(i);
      for (std::size_t k = jb; k + 1 < je; ++k) {
        const double lik = li[k];
        const auto zk = z.row(k);
        const std::size_t qn = k - jb + 1;
        for (std::size_t q = 0; q < qn; ++q) zi[q] -= lik * zk[q];
      }
    }
    // Bulk (full-width sources k in [je - 1, n)), chunked so a ~kc x nc
    // slice of z stays cache-resident while every remaining row consumes
    // it. Chunks are applied in ascending order and each register-tiled
    // chain subtracts ascending k inside its chunk, so per scalar the
    // overall chain is still the reference's ascending-k order.
    constexpr std::size_t kc = 64;
    const std::size_t bulk_begin = je - 1;
    for (std::size_t kb = bulk_begin; kb < n; kb += kc) {
      const std::size_t ke = std::min(kb + kc, n);
      // Rows finalized by this chunk: their chains end at k = i - 1 < ke.
      for (std::size_t i = kb + 1; i <= ke && i < n; ++i) {
        const auto li = l_.row(i);
        const auto zi = z.row(i);
        std::size_t q = 0;
        for (; q + 8 <= nc; q += 8) {
          accumulate_ascending<8>(zi.data() + q, li.data(), z, q, kb, i);
        }
        for (; q + 4 <= nc; q += 4) {
          accumulate_ascending<4>(zi.data() + q, li.data(), z, q, kb, i);
        }
        for (; q < nc; ++q) {
          accumulate_ascending<1>(zi.data() + q, li.data(), z, q, kb, i);
        }
        const double lii = li[i];
        for (std::size_t s = 0; s < nc; ++s) zi[s] /= lii;
      }
      // Interior rows: consume the whole chunk, finalized later.
      for (std::size_t i = ke + 1; i < n; ++i) {
        const auto li = l_.row(i);
        const auto zi = z.row(i);
        std::size_t q = 0;
        for (; q + 8 <= nc; q += 8) {
          accumulate_ascending<8>(zi.data() + q, li.data(), z, q, kb, ke);
        }
        for (; q + 4 <= nc; q += 4) {
          accumulate_ascending<4>(zi.data() + q, li.data(), z, q, kb, ke);
        }
        for (; q < nc; ++q) {
          accumulate_ascending<1>(zi.data() + q, li.data(), z, q, kb, ke);
        }
      }
    }
    // Backward: L^T x = z in dot form, rows bottom-up. When row i is
    // processed every row k > i is final, so each scalar subtracts exactly
    // the reference saxpy's terms L(k, i) * z_final[k] in the same
    // descending-k order, then divides by the diagonal — the identical
    // chain, accumulated in registers. Chunked like the forward pass, with
    // chunks applied in descending order so the per-scalar chain still
    // walks k strictly downward.
    for (std::size_t ke = n; ke > jb;) {
      const std::size_t kb = (ke > jb + kc) ? ke - kc : jb;
      // Rows finalized by this chunk (descending, so in-chunk sources are
      // final before they are read).
      for (std::size_t i = ke; i-- > kb;) {
        const auto ui = u.row(i);
        const auto zi = z.row(i);
        const std::size_t qn = std::min(i - jb + 1, nc);
        std::size_t q = 0;
        for (; q + 8 <= qn; q += 8) {
          accumulate_descending<8>(zi.data() + q, ui.data(), z, q, i + 1, ke);
        }
        for (; q + 4 <= qn; q += 4) {
          accumulate_descending<4>(zi.data() + q, ui.data(), z, q, i + 1, ke);
        }
        for (; q < qn; ++q) {
          accumulate_descending<1>(zi.data() + q, ui.data(), z, q, i + 1, ke);
        }
        const double uii = ui[i];
        for (std::size_t s = 0; s < qn; ++s) zi[s] /= uii;
      }
      // Interior rows above the chunk: consume the whole chunk.
      for (std::size_t i = jb; i < kb; ++i) {
        const auto ui = u.row(i);
        const auto zi = z.row(i);
        const std::size_t qn = std::min(i - jb + 1, nc);
        std::size_t q = 0;
        for (; q + 8 <= qn; q += 8) {
          accumulate_descending<8>(zi.data() + q, ui.data(), z, q, kb, ke);
        }
        for (; q + 4 <= qn; q += 4) {
          accumulate_descending<4>(zi.data() + q, ui.data(), z, q, kb, ke);
        }
        for (; q < qn; ++q) {
          accumulate_descending<1>(zi.data() + q, ui.data(), z, q, kb, ke);
        }
      }
      ke = kb;
    }
    for (std::size_t q = 0; q < nc; ++q) {
      const std::size_t j = jb + q;
      inv(j, j) = z(j, q);
      for (std::size_t i = j + 1; i < n; ++i) {
        inv(i, j) = z(i, q);
        inv(j, i) = z(i, q);
      }
    }
  }
  return inv;
}

Matrix CholeskyFactor::inverse_reference() const {
  // The unblocked recipe inverse() reproduces bit-for-bit: one scratch
  // vector, zero-prefix forward solve, in-place backward solve, mirror.
  const std::size_t n = size();
  Matrix inv(n, n);
  Vector z(n);
  for (std::size_t j = 0; j < n; ++j) {
    // Forward solve L z = e_j, skipping the known-zero prefix.
    for (std::size_t i = j; i < n; ++i) {
      double v = i == j ? 1.0 : 0.0;
      const auto li = l_.row(i);
      for (std::size_t k = j; k < i; ++k) v -= li[k] * z[k];
      z[i] = v / li[i];
    }
    // In-place backward solve L^T x = z, only down to row j (entries above
    // the diagonal of column j come from the mirror).
    for (std::size_t k = n; k-- > j;) {
      const auto lk = l_.row(k);
      const double zk = z[k] / lk[k];
      z[k] = zk;
      for (std::size_t i = j; i < k; ++i) z[i] -= lk[i] * zk;
    }
    inv(j, j) = z[j];
    for (std::size_t i = j + 1; i < n; ++i) {
      inv(i, j) = z[i];
      inv(j, i) = z[i];
    }
  }
  return inv;
}

double CholeskyFactor::log_det() const {
  double total = 0.0;
  for (std::size_t i = 0; i < size(); ++i) total += std::log(l_(i, i));
  return 2.0 * total;
}

JitteredCholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                                      double max_jitter) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky_with_jitter: matrix must be square");
  }
  // Fault site "cholesky.non_psd": an armed plan can veto any attempt,
  // driving the ladder (and its exhaustion path) without crafting an
  // actually-indefinite matrix. Disarmed, attempt() is factor() plus two
  // pointer loads — no FP effect.
  const auto attempt = [](const Matrix& m) -> std::optional<CholeskyFactor> {
    if (core::faults::fire(core::faults::Site::kCholeskyNonPsd)) {
      core::trace::count("cholesky.fault_injected");
      core::resilience::note(core::resilience::Event::kCholeskyNonPsd);
      return std::nullopt;
    }
    return CholeskyFactor::factor(m);
  };
  if (auto clean = attempt(a)) {
    return JitteredCholesky{std::move(*clean), 0.0};
  }
  const std::size_t n = a.rows();
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_diag += a(i, i);
  mean_diag = n > 0 ? mean_diag / static_cast<double>(n) : 1.0;
  const double scale = mean_diag > 0.0 ? mean_diag : 1.0;

  // Single working copy across all retries: factor() never mutates its
  // input, so only the diagonal needs resetting. Restoring from the saved
  // pristine diagonal (rather than deducting the previous jitter) keeps
  // each attempt exactly a(i, i) + jitter with no accumulated rounding.
  Matrix work = a;
  Vector pristine_diag(n);
  for (std::size_t i = 0; i < n; ++i) pristine_diag[i] = a(i, i);
  double largest_attempted = -1.0;
  for (double rel = initial_jitter; rel <= max_jitter; rel *= 10.0) {
    core::trace::count("cholesky.jitter_retries");
    largest_attempted = rel;
    const double jitter = rel * scale;
    for (std::size_t i = 0; i < n; ++i) work(i, i) = pristine_diag[i] + jitter;
    if (auto factored = attempt(work)) {
      return JitteredCholesky{std::move(*factored), jitter};
    }
  }
  // The *10 ladder accumulates rounding: from 1e-12 it tops out at
  // 9.9999999999999978e-05, one ulp-cluster short of a 1e-4 max_jitter,
  // and the next step overshoots — so the promised max rung was never
  // tried. Always attempt exactly max_jitter before declaring defeat.
  // (Only previously-throwing executions reach this, so succeeding runs
  // keep their exact byte-for-byte behavior.)
  if (largest_attempted < max_jitter) {
    core::trace::count("cholesky.jitter_retries");
    const double jitter = max_jitter * scale;
    for (std::size_t i = 0; i < n; ++i) work(i, i) = pristine_diag[i] + jitter;
    if (auto factored = attempt(work)) {
      return JitteredCholesky{std::move(*factored), jitter};
    }
  }
  throw std::runtime_error(
      "cholesky_with_jitter: matrix not positive definite even at max jitter");
}

}  // namespace alamr::linalg
