// P1 — microbenchmarks (google-benchmark): the kernels whose cost governs
// the AL loop (Cholesky, gram construction, GPR fit/predict scaling in n)
// and the AMR solver's cell-update throughput.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "alamr/amr/solver.hpp"
#include "alamr/core/batch.hpp"
#include "alamr/core/serve.hpp"
#include "alamr/core/strategies.hpp"
#include "alamr/core/trace.hpp"
#include "alamr/gp/backend.hpp"
#include "alamr/gp/gpr.hpp"
#include "alamr/linalg/cholesky.hpp"
#include "alamr/linalg/simd.hpp"
#include "alamr/linalg/workspace.hpp"
#include "alamr/stats/rng.hpp"
#include "synthetic_dataset.hpp"

// P5 — BM_ArenaPass reports heap allocations per AL pass, so this binary
// counts every operator new. One relaxed atomic increment per allocation:
// noise for the other benchmarks, decisive data for the arena ones.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace alamr;

linalg::Matrix random_points(std::size_t n, std::size_t d, stats::Rng& rng) {
  linalg::Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniform(0.0, 1.0);
  }
  return x;
}

linalg::Matrix random_spd(std::size_t n, stats::Rng& rng) {
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  linalg::Matrix spd = linalg::aat(a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

void BM_Cholesky(benchmark::State& state) {
  stats::Rng rng(1);
  const auto a = random_spd(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto factor = linalg::CholeskyFactor::factor(a);
    benchmark::DoNotOptimize(factor);
  }
}
BENCHMARK(BM_Cholesky)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

// O(n^2) rank-1 extension vs the O(n^3) BM_Cholesky refactor above. The
// per-iteration copy of the base factor is itself O(n^2), so the numbers
// are an upper bound on the real extension cost.
void BM_CholeskyExtend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(6);
  const auto spd = random_spd(n + 1, rng);
  linalg::Matrix lead(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) lead(i, j) = spd(i, j);
  }
  const auto base = *linalg::CholeskyFactor::factor(lead);
  std::vector<double> row(n);
  for (std::size_t i = 0; i < n; ++i) row[i] = spd(n, i);
  const double diag = spd(n, n);
  for (auto _ : state) {
    auto factor = base;
    benchmark::DoNotOptimize(factor.extend(row, diag));
  }
}
BENCHMARK(BM_CholeskyExtend)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

void BM_KernelGram(benchmark::State& state) {
  stats::Rng rng(2);
  const auto x = random_points(static_cast<std::size_t>(state.range(0)), 5, rng);
  const auto kernel = gp::make_paper_kernel();
  for (auto _ : state) {
    auto gram = kernel->gram(x);
    benchmark::DoNotOptimize(gram);
  }
}
BENCHMARK(BM_KernelGram)->Arg(100)->Arg(200)->Arg(400);

void BM_GramWithGradients(benchmark::State& state) {
  stats::Rng rng(3);
  const auto x = random_points(static_cast<std::size_t>(state.range(0)), 5, rng);
  const auto kernel = gp::make_paper_kernel();
  std::vector<linalg::Matrix> gradients;
  for (auto _ : state) {
    auto gram = kernel->gram_with_gradients(x, gradients);
    benchmark::DoNotOptimize(gram);
  }
}
BENCHMARK(BM_GramWithGradients)->Arg(100)->Arg(200);

// P3 — the distance cache: kernel-matrix + gradient construction (the body
// of every L-BFGS objective probe) from raw features (Arg 0) vs from a
// prebuilt PairwiseDistances (Arg 1, what refits actually run). Cache
// construction is outside the loop: it happens once per training set, not
// once per probe.
void BM_KernelDistanceCache(benchmark::State& state) {
  const bool cached = state.range(1) != 0;
  stats::Rng rng(3);
  const auto x = random_points(static_cast<std::size_t>(state.range(0)), 5, rng);
  const auto kernel = gp::make_paper_kernel();
  gp::PairwiseDistances dist = gp::PairwiseDistances::train(x);
  kernel->prepare_distances(dist);
  std::vector<linalg::Matrix> gradients;
  for (auto _ : state) {
    auto gram = cached ? kernel->gram_with_gradients_cached(dist, gradients)
                       : kernel->gram_with_gradients(x, gradients);
    benchmark::DoNotOptimize(gram);
  }
}
BENCHMARK(BM_KernelDistanceCache)
    ->Args({300, 0})
    ->Args({300, 1})
    ->Args({600, 0})
    ->Args({600, 1});

// P3 — blocked right-looking Cholesky (factor) vs the unblocked
// left-looking seed algorithm (factor_reference). Same bits, different
// cache behavior: the blocked panels keep the working set resident.
void BM_BlockedCholesky(benchmark::State& state) {
  const bool blocked = state.range(1) != 0;
  stats::Rng rng(1);
  const auto a = random_spd(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto factor = blocked ? linalg::CholeskyFactor::factor(a)
                          : linalg::CholeskyFactor::factor_reference(a);
    benchmark::DoNotOptimize(factor);
  }
}
BENCHMARK(BM_BlockedCholesky)
    ->Args({300, 0})
    ->Args({300, 1})
    ->Args({600, 0})
    ->Args({600, 1});

// P3 — blocked panel inverse (the LML gradient's K^{-1}) vs the
// column-at-a-time reference.
void BM_CholeskyInverse(benchmark::State& state) {
  const bool blocked = state.range(1) != 0;
  stats::Rng rng(1);
  const auto a = random_spd(static_cast<std::size_t>(state.range(0)), rng);
  const auto factor = *linalg::CholeskyFactor::factor(a);
  for (auto _ : state) {
    auto inv = blocked ? factor.inverse() : factor.inverse_reference();
    benchmark::DoNotOptimize(inv);
  }
}
BENCHMARK(BM_CholeskyInverse)->Args({300, 0})->Args({300, 1});

// P3 — one full hyperparameter-refit objective evaluation (LML value +
// gradient) at fixed n. Arg 1 is the real path refits run:
// log_marginal_likelihood consuming the training-distance cache and the
// blocked factorization. Arg 0 replays the pre-cache recipe through public
// API: direct gram_with_gradients from features plus the unblocked
// reference factorization, followed by the identical solve/inverse/trace
// tail. The ratio is what each L-BFGS iteration gained.
void BM_RefitObjective(benchmark::State& state) {
  const bool optimized = state.range(1) != 0;
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(4);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.optimize = false;
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  const std::vector<double> theta = gpr.kernel().log_params();
  std::vector<double> grad(theta.size());

  if (optimized) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(gpr.log_marginal_likelihood(theta, grad));
    }
    return;
  }
  // Center y the way fit(normalize_y) does, so both arms factor the same K.
  double mean = 0.0;
  for (const double v : y) mean += v;
  mean /= static_cast<double>(n);
  std::vector<double> yc(n);
  for (std::size_t i = 0; i < n; ++i) yc[i] = y[i] - mean;
  for (auto _ : state) {
    const std::unique_ptr<gp::Kernel> probe = gpr.kernel().clone();
    probe->set_log_params(theta);
    std::vector<linalg::Matrix> gradients;
    const linalg::Matrix k = probe->gram_with_gradients(x, gradients);
    const auto factor = linalg::CholeskyFactor::factor_reference(k);
    const linalg::Vector alpha = factor->solve(yc);
    double lml = -0.5 * linalg::dot(yc, alpha) - 0.5 * factor->log_det();
    const linalg::Matrix k_inv = factor->inverse_reference();
    for (std::size_t j = 0; j < gradients.size(); ++j) {
      const linalg::Matrix& dk = gradients[j];
      double trace = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const auto dk_row = dk.row(r);
        const auto kinv_row = k_inv.row(r);
        double off_acc = 0.0;
        for (std::size_t c = r + 1; c < n; ++c) {
          off_acc += (alpha[r] * alpha[c] - kinv_row[c]) * dk_row[c];
        }
        trace += (alpha[r] * alpha[r] - kinv_row[r]) * dk_row[r] + 2.0 * off_acc;
      }
      grad[j] = 0.5 * trace;
    }
    benchmark::DoNotOptimize(lml);
    benchmark::DoNotOptimize(grad);
  }
}
BENCHMARK(BM_RefitObjective)->Args({300, 0})->Args({300, 1});

// The value-only refit objective — what every multistart scoring probe and
// every L-BFGS line-search trial evaluates when no gradient is requested.
// Skips the gradient matrices and the O(n^3) inverse, so the distance-cache
// and blocked-factor gains dominate the measurement.
void BM_RefitObjectiveValue(benchmark::State& state) {
  const bool optimized = state.range(1) != 0;
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(4);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.optimize = false;
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  const std::vector<double> theta = gpr.kernel().log_params();

  if (optimized) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(gpr.log_marginal_likelihood(theta, {}));
    }
    return;
  }
  // Seed recipe: rebuild the Gram matrix from raw features and factor with
  // the unblocked reference algorithm, as the pre-optimization code did on
  // every objective probe.
  double mean = 0.0;
  for (const double v : y) mean += v;
  mean /= static_cast<double>(n);
  std::vector<double> yc(n);
  for (std::size_t i = 0; i < n; ++i) yc[i] = y[i] - mean;
  for (auto _ : state) {
    const std::unique_ptr<gp::Kernel> probe = gpr.kernel().clone();
    probe->set_log_params(theta);
    const linalg::Matrix k = probe->gram(x);
    const auto factor = linalg::CholeskyFactor::factor_reference(k);
    const linalg::Vector alpha = factor->solve(yc);
    double lml = -0.5 * linalg::dot(yc, alpha) - 0.5 * factor->log_det();
    benchmark::DoNotOptimize(lml);
  }
}
BENCHMARK(BM_RefitObjectiveValue)->Args({300, 0})->Args({300, 1});

void BM_GprFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(4);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.restarts = 0;
  options.max_opt_iterations = 5;
  for (auto _ : state) {
    gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), options);
    gpr.fit(x, y, rng);
    benchmark::DoNotOptimize(gpr);
  }
}
BENCHMARK(BM_GprFit)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

// The AL refit pair: posterior update after one new training point, from
// scratch (n^2 kernel evaluations + O(n^3) factor) vs incrementally
// (n kernel evaluations + O(n^2) extension). Optimization is disabled in
// both so the numbers isolate the posterior math the fast path replaces.
void BM_GprFullRefit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(7);
  const auto x = random_points(n + 1, 5, rng);
  std::vector<double> y(n + 1);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.optimize = false;
  for (auto _ : state) {
    gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), options);
    gpr.fit(x, y, rng);
    benchmark::DoNotOptimize(gpr);
  }
}
BENCHMARK(BM_GprFullRefit)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_GprAddPoint(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(7);  // same data as BM_GprFullRefit
  const auto x = random_points(n + 1, 5, rng);
  std::vector<double> y(n + 1);
  for (double& v : y) v = rng.normal();
  linalg::Matrix x0(n, 5);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 5; ++j) x0(i, j) = x(i, j);
  }
  gp::GprOptions options;
  options.optimize = false;
  gp::GaussianProcessRegressor base(gp::make_paper_kernel(), options);
  base.fit(x0, std::span<const double>(y.data(), n), rng);
  for (auto _ : state) {
    // The deep copy of the fitted model is O(n^2), so as with
    // BM_CholeskyExtend this is an upper bound on the add_point cost.
    gp::GaussianProcessRegressor gpr = base;
    gpr.add_point(x.row(n), y[n]);
    benchmark::DoNotOptimize(gpr);
  }
}
BENCHMARK(BM_GprAddPoint)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_GprPredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(5);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.optimize = false;
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  const auto queries = random_points(200, 5, rng);
  for (auto _ : state) {
    auto pred = gpr.predict(queries);
    benchmark::DoNotOptimize(pred);
  }
}
BENCHMARK(BM_GprPredict)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

// P3 — the AL per-iteration predict phase at n = 300 training points and
// 300 candidates. Arg 0 replays the seed recipe: rebuild K(X_train, X_q)
// from features, then one triangular solve + dot per candidate column
// (re-streaming the whole factor once per column). Arg 1 is the simulator's
// path with AlOptions::incremental_cross: the maintained cross-covariance
// goes straight into predict_from_cross, whose chunked multi-column solves
// stream the factor once.
void BM_IncrementalPredict(benchmark::State& state) {
  const bool incremental = state.range(1) != 0;
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(5);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.optimize = false;
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  const auto queries = random_points(300, 5, rng);

  if (incremental) {
    const linalg::Matrix k_star = gpr.kernel().cross(x, queries);
    for (auto _ : state) {
      auto pred = gpr.predict_from_cross(k_star, queries);
      benchmark::DoNotOptimize(pred);
    }
    return;
  }
  const std::vector<double> prior = gpr.kernel().diagonal(queries);
  const auto gram = gpr.kernel().gram(x);
  const auto factor = *linalg::CholeskyFactor::factor(gram);
  const linalg::Vector alpha = factor.solve(y);
  for (auto _ : state) {
    const linalg::Matrix k_star = gpr.kernel().cross(x, queries);
    gp::Prediction pred;
    pred.mean = linalg::matvec_transposed(k_star, alpha);
    pred.stddev.resize(queries.rows());
    std::vector<double> col(n);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      for (std::size_t i = 0; i < n; ++i) col[i] = k_star(i, q);
      const linalg::Vector z = factor.solve_lower(col);
      const double var = prior[q] - linalg::dot(z, z);
      pred.stddev[q] = var > 0.0 ? std::sqrt(var) : 0.0;
    }
    benchmark::DoNotOptimize(pred);
  }
}
BENCHMARK(BM_IncrementalPredict)->Args({300, 0})->Args({300, 1});

// P5 — the fused batched posterior vs the per-candidate path it
// supersedes, at n = 300 training points and 300 candidates. Arg 0 is the
// historical per-candidate recipe: one 1-row predict() per candidate,
// each rebuilding its own 1-column cross-covariance and re-streaming the
// factor. Arg 1 is one GEMM-shaped predict_batch over a prebuilt cross
// matrix with every temporary in a reused arena. The acceptance bar is
// arm 1 >= 1.5x arm 0 (BENCH_PR5.json: BM_PredictBatch).
void BM_PredictBatch(benchmark::State& state) {
  const bool fused = state.range(1) != 0;
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 300;
  stats::Rng rng(5);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.optimize = false;
  gp::GaussianProcessRegressor gpr(gp::make_paper_kernel(), options);
  gpr.fit(x, y, rng);
  const auto queries = random_points(m, 5, rng);

  if (fused) {
    const linalg::Matrix k_star = gpr.kernel().cross(x, queries);
    const std::vector<double> prior = gpr.kernel().diagonal(queries);
    linalg::Workspace ws;
    std::vector<double> mean(m);
    std::vector<double> stddev(m);
    for (auto _ : state) {
      gpr.predict_batch(k_star, prior, ws, mean, stddev);
      benchmark::DoNotOptimize(mean);
      benchmark::DoNotOptimize(stddev);
    }
    return;
  }
  linalg::Matrix xq(1, 5);
  std::vector<double> mean(m);
  std::vector<double> stddev(m);
  for (auto _ : state) {
    for (std::size_t q = 0; q < m; ++q) {
      const auto src = queries.row(q);
      std::copy(src.begin(), src.end(), xq.row(0).begin());
      const gp::Prediction pred = gpr.predict(xq);
      mean[q] = pred.mean[0];
      stddev[q] = pred.stddev[0];
    }
    benchmark::DoNotOptimize(mean);
    benchmark::DoNotOptimize(stddev);
  }
}
BENCHMARK(BM_PredictBatch)->Args({300, 0})->Args({300, 1});

// P8 — the steady-state AL sweep the candidate panel accelerates: each
// iteration learns one point (O(n^2) factor extension), appends its
// cross-covariance row, and re-sweeps all M = 300 candidates. Arg 0
// re-solves the whole Z = L^-1 K* panel per sweep (O(M n^2)); Arg 1 is
// predict_batch_panel, which resumes the forward substitution at the one
// new row (O(M n)). Every 25 iterations the model rewinds to the base fit
// (outside timing) so the factor stays near n; the panel arm re-warms its
// panel inside the paused region, so its timed sweeps are pure appends —
// the rebuild cost a theta move would pay is exactly what arm 0 measures,
// and keeping it out of arm 1 keeps the median stable under the
// bench-trend gate's short runs. The acceptance bar is arm 1 >= 5x arm 0
// at n = 800 (BENCH_PR8.json: BM_SweepIncremental). Counter deltas
// (rows_appended / rebuilds) are read per run — the global sink is
// cleared at entry so repetitions don't bleed together.
void BM_SweepIncremental(benchmark::State& state) {
  const bool panel = state.range(1) != 0;
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 300;
  constexpr std::size_t kWindow = 25;
  core::trace::global_collector().clear();
  const bool was_enabled = core::trace::enabled();
  core::trace::set_enabled(true);
  stats::Rng rng(21);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions options;
  options.optimize = false;
  gp::GaussianProcessRegressor base(gp::make_paper_kernel(), options);
  base.fit(x, y, rng);
  base.reserve_additional(kWindow);
  base.panel_reserve(n + kWindow, m);
  const auto queries = random_points(m, 5, rng);
  const linalg::Matrix base_k_star = base.kernel().cross(x, queries);
  const std::vector<double> prior = base.kernel().diagonal(queries);
  const auto x_new = random_points(kWindow, 5, rng);
  const linalg::Matrix new_rows = base.kernel().cross(x_new, queries);

  linalg::Workspace ws;
  std::vector<double> mean(m);
  std::vector<double> stddev(m);
  gp::GaussianProcessRegressor gpr = base;
  linalg::Matrix k_star = base_k_star;
  k_star.reserve(n + kWindow, m);
  std::size_t step = kWindow;  // forces the reset on the first iteration
  std::uint64_t sweeps = 0;
  for (auto _ : state) {
    if (step == kWindow) {
      state.PauseTiming();
      gpr = base;
      k_star = base_k_star;
      k_star.reserve(n + kWindow, m);
      if (panel) gpr.predict_batch_panel(k_star, prior, ws, mean, stddev);
      step = 0;
      state.ResumeTiming();
    }
    gpr.add_point(x_new.row(step), 0.5);
    k_star.push_row(new_rows.row(step));
    if (panel) {
      gpr.predict_batch_panel(k_star, prior, ws, mean, stddev);
    } else {
      gpr.predict_batch(k_star, prior, ws, mean, stddev);
    }
    ++step;
    ++sweeps;
    benchmark::DoNotOptimize(mean);
    benchmark::DoNotOptimize(stddev);
  }
  core::trace::set_enabled(was_enabled);
  if (panel) {
    const core::trace::TraceReport report = core::trace::global_report();
    state.counters["rows_appended"] =
        static_cast<double>(report.counter("panel.rows_appended"));
    state.counters["rebuilds"] =
        static_cast<double>(report.counter("panel.rebuilds"));
    state.counters["sweeps"] = static_cast<double>(sweeps);
  }
}
BENCHMARK(BM_SweepIncremental)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({800, 0})
    ->Args({800, 1});

// P5 — one full AL pass through the public simulator API, with heap
// allocations counted by this binary's operator-new override. Arg 0 runs
// the scalar per-pass posterior (batched_predict = false); Arg 1 the
// fused arena path. allocs_per_iter is the decisive counter: the arena
// path's steady-state predict phase contributes zero.
void BM_ArenaPass(benchmark::State& state) {
  const bool arena = state.range(1) != 0;
  const data::Dataset dataset = testing::synthetic_amr_dataset(200, 99);
  core::AlOptions options;
  options.n_test = 40;
  options.n_init = 30;
  options.max_iterations = 50;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 30;
  options.refit.restarts = 0;
  options.refit.max_opt_iterations = 0;
  options.batched_predict = arena;
  const core::AlSimulator simulator(dataset, options);
  const core::Rgma rgma(simulator.memory_limit_log10());
  stats::Rng partition_rng(31);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);
  std::uint64_t allocs = 0;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    stats::Rng rng(77);
    const std::uint64_t before = g_alloc_count.load();
    auto result = simulator.run_with_partition(rgma, partition, rng);
    allocs += g_alloc_count.load() - before;
    iterations += result.iterations.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["allocs_per_iter"] =
      static_cast<double>(allocs) / static_cast<double>(iterations);
}
BENCHMARK(BM_ArenaPass)->Args({200, 0})->Args({200, 1})->Unit(benchmark::kMillisecond);

// P7 — PosteriorBackend cost at the fit and candidate-sweep bottlenecks.
// Arg 0 is the exact backend (the seed GPR recipe through the interface),
// Arg 1 the subset-of-data backend at capacity 128 — the configuration
// that makes 10^5-candidate pools tractable (EXPERIMENTS.md §P7). Both
// arms share the plain rebuild recipe (no incremental caches), so the
// numbers isolate the approximation's O(n^3) -> O(m^3) / O(n^2 M) ->
// O(m^2 M) wins rather than cache warm-up effects.
gp::BackendOptions bench_backend_options(bool approx) {
  gp::BackendOptions options;
  options.incremental_refit = false;
  options.incremental_cross = false;
  options.batched_predict = true;
  if (approx) {
    options.kind = gp::BackendKind::kSubsetOfData;
    options.inducing_points = 128;
  }
  return options;
}

void BM_BackendFit(benchmark::State& state) {
  const bool approx = state.range(1) != 0;
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(13);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions fit_options;
  fit_options.optimize = false;  // isolate the linear algebra
  for (auto _ : state) {
    auto backend = gp::make_backend(bench_backend_options(approx),
                                    gp::make_paper_kernel(), fit_options);
    stats::Rng fit_rng(17);
    backend->fit(x, y, fit_rng);
    benchmark::DoNotOptimize(backend);
  }
}
BENCHMARK(BM_BackendFit)->Args({600, 0})->Args({600, 1})->Unit(benchmark::kMillisecond);

void BM_BackendPredictBatch(benchmark::State& state) {
  const bool approx = state.range(1) != 0;
  const auto m = static_cast<std::size_t>(state.range(0));  // candidates
  const std::size_t n = 600;
  stats::Rng rng(19);
  const auto x = random_points(n, 5, rng);
  std::vector<double> y(n);
  for (double& v : y) v = rng.normal();
  gp::GprOptions fit_options;
  fit_options.optimize = false;
  auto backend = gp::make_backend(bench_backend_options(approx),
                                  gp::make_paper_kernel(), fit_options);
  stats::Rng fit_rng(23);
  backend->fit(x, y, fit_rng);

  const auto pool_x = random_points(m, 5, rng);
  const gp::CandidateRef pool{pool_x, {}};
  linalg::Workspace ws;
  for (auto _ : state) {
    const linalg::Workspace::Scope pass(ws);
    const gp::PosteriorSpans post = backend->predict_candidates(pool, ws);
    benchmark::DoNotOptimize(post.mean.data());
    benchmark::DoNotOptimize(post.stddev.data());
  }
}
BENCHMARK(BM_BackendPredictBatch)
    ->Args({2000, 0})
    ->Args({2000, 1})
    ->Unit(benchmark::kMillisecond);

// P6 — the raw dispatch kernels: a strictly-sequential inline loop
// (Arg 0, the bits the scalar table reproduces) vs the runtime-selected
// kernel table (Arg 1). Arg 1 measures whatever level the process
// selected at startup — pin it with ALAMR_SIMD_LEVEL to compare tiers;
// the active level is recorded in the JSON context block (simd_level).
void BM_SimdKernels(benchmark::State& state) {
  const bool vectorized = state.range(1) != 0;
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(9);
  std::vector<double> a(n);
  std::vector<double> b(n);
  std::vector<double> acc(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1.0, 1.0);
    b[i] = rng.uniform(-1.0, 1.0);
  }
  if (vectorized) {
    for (auto _ : state) {
      double d = linalg::simd::dot(a.data(), b.data(), n);
      double r2 = linalg::simd::squared_distance(a.data(), b.data(), n);
      linalg::simd::axpy(0.5, a.data(), acc.data(), n);
      benchmark::DoNotOptimize(d);
      benchmark::DoNotOptimize(r2);
      benchmark::DoNotOptimize(acc);
    }
    return;
  }
  for (auto _ : state) {
    double d = 0.0;
    double r2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d += a[i] * b[i];
      const double diff = a[i] - b[i];
      r2 += diff * diff;
    }
    for (std::size_t i = 0; i < n; ++i) acc[i] += 0.5 * a[i];
    benchmark::DoNotOptimize(d);
    benchmark::DoNotOptimize(r2);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_SimdKernels)->Args({256, 0})->Args({256, 1})->Args({4096, 0})->Args({4096, 1});

// Trajectory fan-out on the thread pool: 4 independent AL trajectories
// with Args({lanes, shared}). Results are bit-identical across lane
// counts (each trajectory has its own derived rng stream) and across the
// shared flag (gathered distances carry the same bits); only wall-clock
// moves. The shared arms build the dataset-wide DistanceBase once and
// hand it to every trajectory, replacing each member's from-scratch
// distance passes with gathers — the P6 acceptance bar is shared >=
// unshared at equal lanes (BENCH_PR6.json: BM_TrajectoryBatch). The
// 50-pass trajectories mirror the paper's fig4/fig5 workload, where
// per-pass cross/test evaluations dominate the one-time initial fit.
void BM_TrajectoryBatch(benchmark::State& state) {
  const data::Dataset dataset = testing::synthetic_amr_dataset(200, 99);
  core::AlOptions options;
  options.n_test = 40;
  options.n_init = 30;
  options.max_iterations = 50;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 30;
  options.refit.restarts = 0;
  options.refit.max_opt_iterations = 0;
  const core::AlSimulator simulator(dataset, options);
  const core::Rgma rgma(simulator.memory_limit_log10());
  core::BatchOptions batch;
  batch.trajectories = 4;
  batch.seed = 1234;
  batch.threads = static_cast<std::size_t>(state.range(0));
  batch.shared_context = state.range(1) != 0;
  for (auto _ : state) {
    auto results = core::run_batch(simulator, rgma, batch);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_TrajectoryBatch)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

// P2: cost of the observability layer on a 100-iteration RGMA trajectory.
// Arg(0) = tracing disabled (every instrumentation call reduces to one
// relaxed atomic load — must be within noise, <= 2%, of the pre-trace
// numbers), Arg(1) = enabled (counters + per-phase timers + per-trajectory
// report). The refit budget is 0 so every iteration takes the incremental
// fast path — the configuration where fixed per-iteration overhead is the
// largest fraction of the work.
void BM_TraceOverhead(benchmark::State& state) {
  const bool tracing = state.range(0) != 0;
  // Repetitions of this function share the process-wide trace sink;
  // clear it so per-run counter deltas stay attributable to this run.
  core::trace::global_collector().clear();
  const data::Dataset dataset = testing::synthetic_amr_dataset(200, 99);
  core::AlOptions options;
  options.n_test = 40;
  options.n_init = 30;
  options.max_iterations = 100;
  options.initial_fit.restarts = 1;
  options.initial_fit.max_opt_iterations = 30;
  options.refit.restarts = 0;
  options.refit.max_opt_iterations = 0;
  const core::AlSimulator simulator(dataset, options);
  const core::Rgma rgma(simulator.memory_limit_log10());
  stats::Rng partition_rng(31);
  const data::Partition partition = data::make_partition(
      dataset.size(), options.n_test, options.n_init, partition_rng);
  const bool was_enabled = core::trace::enabled();
  core::trace::set_enabled(tracing);
  std::uint64_t incremental = 0;
  std::uint64_t full = 0;
  for (auto _ : state) {
    stats::Rng rng(77);
    auto result = simulator.run_with_partition(rgma, partition, rng);
    incremental = result.trace.counter("gpr.fit_incremental");
    full = result.trace.counter("gpr.fit_full");
    benchmark::DoNotOptimize(result);
  }
  core::trace::set_enabled(was_enabled);
  if (tracing) {
    state.counters["fit_incremental"] = static_cast<double>(incremental);
    state.counters["fit_full"] = static_cast<double>(full);
  }
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_AmrStep(benchmark::State& state) {
  amr::ShockBubbleProblem problem;
  problem.mx = static_cast<int>(state.range(0));
  problem.max_level = 3;
  amr::FvSolver solver(problem);
  solver.mesh().fill_ghosts();
  const double dt = solver.mesh().compute_dt();
  std::size_t cells = 0;
  for (auto _ : state) {
    solver.step(dt);
    cells += solver.mesh().total_cells();
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AmrStep)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_AmrRegrid(benchmark::State& state) {
  amr::ShockBubbleProblem problem;
  problem.mx = 8;
  problem.max_level = static_cast<int>(state.range(0));
  amr::FvSolver solver(problem);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.mesh().regrid());
  }
}
BENCHMARK(BM_AmrRegrid)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// P10 — multi-tenant session engine: requests served per second at
// 64/256/1024 concurrent tenants (BENCH_PR10.json: BM_SessionThroughput).
// Arm /0 drives every tenant down the per-session-serial reference path:
// synchronous suggest/observe, a fresh O(M n^2) posterior sweep per
// suggest, retrains inline on the request path. Arm /1 drives the same
// tenants through the queued protocol: drain() coalesces each round's
// suggest work into one micro-batched pass whose sweeps resume the
// cross-iteration candidate panel (O(M n)) over a shared distance base,
// and full refits run on background workers off the request path. Both
// arms run the same retrain stride, so per-session trajectories are
// byte-identical (pinned by tests_serve); only the cost of serving them
// differs. Acceptance: /1 >= 3x /0 at 256 sessions.
void BM_SessionThroughput(benchmark::State& state) {
  const std::size_t sessions = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;

  constexpr std::size_t kPerAxis = 20;  // 400-candidate grid per tenant
  linalg::Matrix grid(kPerAxis * kPerAxis, 2);
  for (std::size_t i = 0; i < kPerAxis; ++i) {
    for (std::size_t j = 0; j < kPerAxis; ++j) {
      grid(i * kPerAxis + j, 0) =
          static_cast<double>(i) / static_cast<double>(kPerAxis - 1);
      grid(i * kPerAxis + j, 1) =
          static_cast<double>(j) / static_cast<double>(kPerAxis - 1);
    }
  }
  const auto oracle = [](std::span<const double> f) {
    return std::pair{0.01 * std::pow(10.0, 2.0 * f[0]),
                     0.5 * std::pow(10.0, 1.5 * f[1])};
  };

  core::SessionOptions options;
  options.al.n_init = 2;
  options.al.iterations = 47;
  options.al.initial_fit.restarts = 1;
  options.al.initial_fit.max_opt_iterations = 8;
  options.al.refit.max_opt_iterations = 1;
  options.retrain_stride = 16;
  const core::MaxSigma strategy;

  std::size_t requests = 0;
  for (auto _ : state) {
    core::ServeOptions serve;
    serve.coalesce = batched;
    serve.retrain_workers = batched ? 1 : 0;
    core::SessionEngine engine(serve);
    for (core::SessionId id = 1; id <= sessions; ++id) {
      options.seed = 1000 + id;
      engine.open_session(id, grid, strategy, options);
    }
    if (batched) {
      std::vector<char> done(sessions + 1, 0);
      for (;;) {
        bool any = false;
        for (core::SessionId id = 1; id <= sessions; ++id) {
          if (done[id]) continue;
          engine.enqueue_suggest(id);
          any = true;
        }
        if (!any) break;
        requests += engine.drain();
        for (core::SessionId id = 1; id <= sessions; ++id) {
          if (done[id]) continue;
          const std::optional<core::Suggestion> s = engine.take_suggestion(id);
          if (!s || s->done) {
            done[id] = 1;
            continue;
          }
          const auto [cost, memory] = oracle(s->features);
          engine.enqueue_observe(id, cost, memory);
        }
        requests += engine.drain();
      }
    } else {
      for (core::SessionId id = 1; id <= sessions; ++id) {
        for (;;) {
          const core::Suggestion s = engine.suggest(id);
          ++requests;
          if (s.done) break;
          const auto [cost, memory] = oracle(s.features);
          engine.observe(id, cost, memory);
          ++requests;
        }
      }
    }
    benchmark::DoNotOptimize(engine.session_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}
BENCHMARK(BM_SessionThroughput)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main so every JSON/console report carries the dispatch decision
// in its context block: which kernel tier this process selected at
// startup (after the ALAMR_SIMD_LEVEL override) and the CPU feature
// flags it was derived from. scripts/bench.sh copies both keys into the
// BENCH_PR*.json context so recorded numbers stay attributable to a
// kernel tier after the host is gone.
int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "simd_level",
      alamr::linalg::simd::to_string(alamr::linalg::simd::active_level()));
  benchmark::AddCustomContext("cpu_features",
                              alamr::linalg::simd::cpu_features());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
