#pragma once

// Objective-function interface shared by the optimizers.
//
// GPR hyperparameter fitting (paper Eq. 9) maximizes the log marginal
// likelihood; we minimize its negation. Objectives expose value and
// (optionally) analytic gradient in one call because both come out of the
// same Cholesky factorization.

#include <functional>
#include <span>
#include <vector>

namespace alamr::opt {

/// Evaluates f(x) and, if `grad` is non-empty, writes df/dx into it.
/// `grad.size()` is either 0 (value only) or x.size().
using Objective =
    std::function<double(std::span<const double> x, std::span<double> grad)>;

/// Central finite-difference gradient of a value-only function; used to
/// verify analytic gradients in tests (LML gradient vs FD is one of the
/// repository's key property tests).
std::vector<double> finite_difference_gradient(const Objective& f,
                                               std::span<const double> x,
                                               double step = 1e-6);

/// Box bounds; empty vectors mean unbounded. When present, sizes must
/// match the dimension.
struct Bounds {
  std::vector<double> lower;
  std::vector<double> upper;

  bool active() const noexcept { return !lower.empty() || !upper.empty(); }
  /// Clamps x into the box (no-op for unbounded coordinates).
  void project(std::span<double> x) const;
  void validate(std::size_t dim) const;
};

}  // namespace alamr::opt
