# Empty dependencies file for amr_campaign.
# This may be replaced when dependencies are built.
