// CLI/describe helpers for the resilience layer (core/resilience.hpp).

#include "alamr/core/resilience.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace alamr::core::resilience {

std::string describe(const Options& options) {
  std::ostringstream out;
  out << "resilience " << (options.enabled ? "on" : "off");
  if (!options.enabled) return out.str();
  out << ": ladder " << (options.ladder ? "on" : "off")
      << ", max_attempts " << options.max_attempts
      << ", breaker_threshold " << options.breaker_threshold
      << ", probe_after " << options.probe_after
      << ", deadline " << options.deadline_ticks << " ticks"
      << ", backoff base " << options.backoff.base_ticks
      << " x" << options.backoff.multiplier
      << " cap " << options.backoff.max_ticks;
  return out.str();
}

bool parse_resilience_flag(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--no-resilience") == 0) {
      options.enabled = false;
      return true;
    }
    constexpr const char* kPrefix = "--resilience=";
    if (std::strncmp(arg, kPrefix, std::strlen(kPrefix)) == 0) {
      const char* value = arg + std::strlen(kPrefix);
      if (std::strcmp(value, "on") == 0) {
        options.enabled = true;
      } else if (std::strcmp(value, "off") == 0) {
        options.enabled = false;
      } else {
        throw std::invalid_argument(
            std::string("--resilience expects on|off, got '") + value + "'");
      }
      return true;
    }
  }
  return false;
}

}  // namespace alamr::core::resilience
