#include "alamr/amr/geometry.hpp"

namespace alamr::amr {

namespace {

// Spreads the low 32 bits of x so there is a zero bit between each.
std::uint64_t spread_bits(std::uint64_t x) noexcept {
  x &= 0xffffffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

}  // namespace

std::uint64_t morton_encode(std::uint32_t x, std::uint32_t y) noexcept {
  return spread_bits(x) | (spread_bits(y) << 1);
}

}  // namespace alamr::amr
