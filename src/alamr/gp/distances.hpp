#pragma once

// Hyperparameter-independent pairwise-distance caches for kernel matrices.
//
// Every RBF/Matern/RQ gram or cross-covariance entry is a scalar function
// of the squared Euclidean distance between two points, and the distances
// do not depend on the hyperparameters the LML optimizer moves. A
// PairwiseDistances object therefore factors the O(n^2 d) feature passes
// out of the refit loop: it is built once per training set (and appended
// to in O(n d) when active learning acquires a point), after which every
// L-BFGS objective evaluation reduces to an elementwise transform of the
// cached buffer via Kernel::gram_cached / gram_with_gradients_cached.
//
// ARD kernels need the per-dimension squared differences, not just their
// sum; those are materialized on demand by ensure_components(), which
// Kernel::prepare_distances() calls eagerly BEFORE optimization starts so
// the cache is strictly read-only while multistart workers share it.

#include <span>
#include <vector>

#include "alamr/linalg/matrix.hpp"

namespace alamr::gp {

using linalg::Matrix;

/// Immutable dataset-wide distance base: a copy of the (scaled) feature
/// matrix plus the full N x N squared-distance matrix over it, built ONCE
/// per dataset and then shared read-only — e.g. across every trajectory
/// of a batch run (core::SharedBatchContext). Row-subset caches gather
/// from it in O(k^2) copies instead of O(k^2 d) squared_distance FLOPs,
/// and because linalg::squared_distance(a, b) is bit-equal to (b, a)
/// (negation is exact, squares identical), a gathered cache is bitwise
/// identical to one built from scratch on the subset — whatever order the
/// subset lists the rows in.
///
/// After construction the object is strictly read-only, so concurrent
/// trajectories may gather from one instance without synchronization.
class DistanceBase {
 public:
  /// Builds the base over all rows of x (counter: gp.dist_base_build).
  explicit DistanceBase(const Matrix& x);

  /// Number of points.
  std::size_t size() const noexcept { return x_.rows(); }
  std::size_t dim() const noexcept { return x_.cols(); }

  const Matrix& x() const noexcept { return x_; }
  std::span<const double> point(std::size_t i) const noexcept {
    return x_.row(i);
  }

  /// |x_i - x_j|^2, exactly as linalg::squared_distance computes it.
  double squared(std::size_t i, std::size_t j) const noexcept {
    return sq_(i, j);
  }

 private:
  Matrix x_;
  Matrix sq_;
};

/// Cache of squared pairwise distances between two point sets (train x
/// train when symmetric, train x query otherwise). Entries are computed
/// with exactly linalg::squared_distance, in the same (i, j) orientation
/// the kernels use, so cached kernel evaluations are bit-identical to the
/// direct ones.
class PairwiseDistances {
 public:
  /// Symmetric train x train cache (diagonal is exactly 0, lower triangle
  /// computed, upper mirrored — matching the kernels' gram() loops).
  static PairwiseDistances train(const Matrix& x);

  /// Rectangular x-by-y cache (row i = point i of x, column j = point j
  /// of y — matching the kernels' cross() loops).
  static PairwiseDistances cross(const Matrix& x, const Matrix& y);

  /// Symmetric cache over the subset base.x()[rows], gathered from the
  /// precomputed base in O(k^2) copies (counter: gp.dist_cache_gather).
  /// Bitwise identical to train() on the gathered point matrix.
  static PairwiseDistances train_from_base(const DistanceBase& base,
                                           std::span<const std::size_t> rows);

  /// Rectangular base.x()[rows_x] by base.x()[rows_y] cache, gathered from
  /// the precomputed base (counter: gp.dist_cache_gather). Bitwise
  /// identical to cross() on the gathered point matrices.
  static PairwiseDistances cross_from_base(const DistanceBase& base,
                                           std::span<const std::size_t> rows_x,
                                           std::span<const std::size_t> rows_y);

  bool symmetric() const noexcept { return symmetric_; }
  std::size_t rows() const noexcept { return sq_.rows(); }
  std::size_t cols() const noexcept { return sq_.cols(); }
  std::size_t dim() const noexcept { return x_.cols(); }

  /// The point sets the cache was built from (y() aliases x() when
  /// symmetric). Used by the base-class fallbacks for kernels that do not
  /// implement a cached path.
  const Matrix& x() const noexcept { return x_; }
  const Matrix& y() const noexcept { return symmetric_ ? x_ : y_; }

  /// Squared distances; (i, j) = |x_i - y_j|^2.
  const Matrix& squared() const noexcept { return sq_; }

  /// Builds the per-dimension squared-difference matrices
  /// component(d)(i, j) = (x_i[d] - y_j[d])^2 if not already built. Must
  /// be called before any parallel phase that reads component() (see
  /// Kernel::prepare_distances) — it is NOT thread-safe against readers.
  void ensure_components();
  bool has_components() const noexcept { return !components_.empty(); }
  const Matrix& component(std::size_t d) const { return components_[d]; }

  /// Appends one point to the x side in O(rows * dim): the symmetric cache
  /// grows by a row and a column, the rectangular cache by one row. New
  /// entries use the same squared_distance orientation as construction
  /// (new point first), so the grown cache equals a from-scratch rebuild.
  /// Grows every buffer in place — allocation-free within reserve()d
  /// capacity (DESIGN.md §10).
  void append_x_row(std::span<const double> row);

  /// Reserves storage so append_x_row() stays allocation-free until the x
  /// side exceeds max_rows points.
  void reserve(std::size_t max_rows);

 private:
  PairwiseDistances() = default;

  bool symmetric_ = true;
  Matrix x_;
  Matrix y_;  // empty when symmetric_
  Matrix sq_;
  std::vector<Matrix> components_;
};

}  // namespace alamr::gp
