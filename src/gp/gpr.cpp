#include "alamr/gp/gpr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "alamr/core/faults.hpp"
#include "alamr/core/parallel.hpp"
#include "alamr/core/resilience.hpp"
#include "alamr/core/trace.hpp"
#include "alamr/opt/multistart.hpp"
#include "alamr/opt/nelder_mead.hpp"

namespace alamr::gp {

namespace {

constexpr double kLogTwoPi = 1.8378770664093453;  // log(2*pi)

}  // namespace

GaussianProcessRegressor::GaussianProcessRegressor(std::unique_ptr<Kernel> kernel,
                                                   GprOptions options)
    : kernel_(std::move(kernel)), options_(options) {
  if (!kernel_) throw std::invalid_argument("GPR: kernel must not be null");
}

GaussianProcessRegressor::GaussianProcessRegressor(
    const GaussianProcessRegressor& other)
    : kernel_(other.kernel_->clone()),
      options_(other.options_),
      x_train_(other.x_train_),
      train_dist_(other.train_dist_),
      y_raw_(other.y_raw_),
      y_train_(other.y_train_),
      y_mean_(other.y_mean_),
      gram_(other.gram_),
      jitter_(other.jitter_),
      factor_(other.factor_),
      alpha_(other.alpha_),
      lml_(other.lml_),
      last_good_params_(other.last_good_params_),
      panel_z_(other.panel_z_),
      panel_acc_(other.panel_acc_),
      panel_valid_(other.panel_valid_) {}

GaussianProcessRegressor& GaussianProcessRegressor::operator=(
    const GaussianProcessRegressor& other) {
  if (this == &other) return *this;
  kernel_ = other.kernel_->clone();
  options_ = other.options_;
  x_train_ = other.x_train_;
  train_dist_ = other.train_dist_;
  y_raw_ = other.y_raw_;
  y_train_ = other.y_train_;
  y_mean_ = other.y_mean_;
  gram_ = other.gram_;
  jitter_ = other.jitter_;
  factor_ = other.factor_;
  alpha_ = other.alpha_;
  lml_ = other.lml_;
  last_good_params_ = other.last_good_params_;
  panel_z_ = other.panel_z_;
  panel_acc_ = other.panel_acc_;
  panel_valid_ = other.panel_valid_;
  return *this;
}

double GaussianProcessRegressor::log_marginal_likelihood(
    std::span<const double> log_params, std::span<double> grad) const {
  if (x_train_.empty()) {
    throw std::logic_error("GPR: no training data stored");
  }
  // Evaluate against a scratch clone so the caller-visible kernel state is
  // untouched (the optimizer probes many parameter vectors).
  const std::unique_ptr<Kernel> probe = kernel_->clone();
  probe->set_log_params(log_params);

  const std::size_t n = x_train_.rows();
  std::vector<Matrix> gradients;
  Matrix k;
  if (train_dist_ && train_dist_->rows() == n) {
    // Hot path for every optimizer probe: elementwise transform of the
    // cached squared distances; no feature passes. Bit-identical to the
    // direct evaluation below. Thread-safe: the cache is read-only here
    // (fit() prepared it before optimization), so concurrent multistart
    // workers share it freely.
    core::trace::count("gpr.dist_cache_hit");
    k = grad.empty() ? probe->gram_cached(*train_dist_)
                     : probe->gram_with_gradients_cached(*train_dist_, gradients);
  } else {
    core::trace::count("gpr.dist_cache_miss");
    k = grad.empty() ? probe->gram(x_train_)
                     : probe->gram_with_gradients(x_train_, gradients);
  }

  const auto [factor, jitter] =
      linalg::cholesky_with_jitter(k, options_.initial_jitter, options_.max_jitter);
  (void)jitter;

  const linalg::Vector alpha = factor.solve(y_train_);
  double lml = -0.5 * linalg::dot(y_train_, alpha);
  lml -= 0.5 * factor.log_det();
  lml -= 0.5 * static_cast<double>(n) * kLogTwoPi;

  if (!grad.empty()) {
    if (grad.size() != probe->num_params()) {
      throw std::invalid_argument("GPR: gradient span size mismatch");
    }
    // dLML/dtheta_j = 1/2 tr((alpha alpha^T - K^{-1}) dK/dtheta_j).
    // Both alpha alpha^T - K^{-1} and dK are symmetric, so the trace needs
    // only the upper triangle: diagonal terms once, off-diagonal doubled.
    // All parameters share one pass: the alpha alpha^T - K^{-1} entry is
    // computed once per (r, c) and fed to every gradient's accumulator,
    // each of which sums the same terms in the same ascending-c order a
    // per-parameter pass would.
    const Matrix k_inv = factor.inverse();
    const std::size_t np = gradients.size();
    std::vector<double> traces(np, 0.0);
    std::vector<double> off(np);
    std::vector<const double*> dk_rows(np);
    for (std::size_t r = 0; r < n; ++r) {
      const auto kinv_row = k_inv.row(r);
      const double ar = alpha[r];
      for (std::size_t j = 0; j < np; ++j) {
        dk_rows[j] = gradients[j].row(r).data();
        off[j] = 0.0;
      }
      for (std::size_t c = r + 1; c < n; ++c) {
        const double s = ar * alpha[c] - kinv_row[c];
        for (std::size_t j = 0; j < np; ++j) off[j] += s * dk_rows[j][c];
      }
      const double sd = ar * ar - kinv_row[r];
      for (std::size_t j = 0; j < np; ++j) {
        traces[j] += sd * dk_rows[j][r] + 2.0 * off[j];
      }
    }
    for (std::size_t j = 0; j < np; ++j) grad[j] = 0.5 * traces[j];
  }
  return lml;
}

double GaussianProcessRegressor::compute_posterior_unchecked() {
  // Full O(n^2) gram rebuild + O(n^3) refactor — the slow path that
  // fit_add_point's incremental update exists to avoid.
  core::trace::count("gpr.fit_full");
  // A rebuilt factor shares no rows with the old one, so any cached
  // candidate panel is stale (DESIGN.md §13 invalidation rule 1).
  panel_valid_ = false;
  gram_ = train_dist_ && train_dist_->rows() == x_train_.rows()
              ? kernel_->gram_cached(*train_dist_)
              : kernel_->gram(x_train_);
  auto [factor, jitter] = linalg::cholesky_with_jitter(
      gram_, options_.initial_jitter, options_.max_jitter);
  factor_ = std::move(factor);
  jitter_ = jitter;
  // alpha refresh in place (no solve-result temporaries); assign() reuses
  // alpha_'s capacity. This is the ONLY place besides the incremental
  // update that recomputes alpha — predict/predict_batch always read the
  // cache, which the gpr.alpha_solve counter lets tests pin down.
  core::trace::count("gpr.alpha_solve");
  alpha_.assign(y_train_.begin(), y_train_.end());
  factor_->solve_in_place(alpha_);
  const std::size_t n = x_train_.rows();
  lml_ = -0.5 * linalg::dot(y_train_, alpha_) - 0.5 * factor_->log_det() -
         0.5 * static_cast<double>(n) * kLogTwoPi;
  last_good_params_ = kernel_->log_params();
  return lml_;
}

double GaussianProcessRegressor::compute_posterior() {
  try {
    return compute_posterior_unchecked();
  } catch (const std::exception&) {
    // Recovery ladder rung 3 (DESIGN.md §9): the optimizer accepted a
    // theta whose gram cannot be factored even at max jitter. Rather than
    // killing the trajectory, revert to the last theta known to produce a
    // valid posterior and rebuild there. Rethrow when there is no previous
    // theta (first fit) or it IS the failing theta.
    if (last_good_params_.empty() ||
        last_good_params_ == kernel_->log_params()) {
      throw;
    }
    core::trace::count("gpr.posterior_recover");
    kernel_->set_log_params(last_good_params_);
    return compute_posterior_unchecked();
  }
}

void GaussianProcessRegressor::recenter_targets() {
  y_mean_ = 0.0;
  if (options_.normalize_y) {
    for (const double v : y_raw_) y_mean_ += v;
    y_mean_ /= static_cast<double>(y_raw_.size());
  }
  y_train_.resize(y_raw_.size());
  for (std::size_t i = 0; i < y_raw_.size(); ++i) {
    y_train_[i] = y_raw_[i] - y_mean_;
  }
}

void GaussianProcessRegressor::optimize_hyperparameters(stats::Rng& rng) {
  const opt::Objective negative_lml =
      [this](std::span<const double> theta, std::span<double> grad) {
        const double value = log_marginal_likelihood(theta, grad);
        for (double& g : grad) g = -g;
        return -value;
      };

  opt::MultistartOptions ms;
  ms.restarts = options_.restarts;
  ms.lbfgs.max_iterations = options_.max_opt_iterations;

  const std::vector<double> start = kernel_->log_params();
  opt::Bounds bounds = kernel_->log_bounds();
  // Keep the warm start feasible even if an earlier fit pushed a
  // parameter onto (or numerically past) its bound.
  std::vector<double> feasible_start = start;
  bounds.project(feasible_start);

  // A zero-budget call (no restarts, no L-BFGS iterations) cannot move
  // the hyperparameters: the only candidate the optimizer can return is
  // the warm start itself. Skip the probe entirely — it costs a full
  // O(n^3) gradient LML evaluation per kernel per refit just to
  // rediscover the start point, which dominated zero-refit AL passes
  // (BM_ArenaPass). Guarded so the skip is unobservable: restarts == 0
  // consumes no rng draws, an out-of-bounds warm start still goes
  // through the optimizer (the projection clamp is the old behavior),
  // and an armed fault injector keeps the historical path so the
  // opt.diverge hit schedule is unchanged.
  if (options_.restarts == 0 && options_.max_opt_iterations == 0 &&
      feasible_start == start && !core::faults::armed()) {
    return;
  }

  // Recovery ladder (DESIGN.md §9). Rung 1: multistart L-BFGS — the only
  // path ever taken when nothing fails, so healthy runs are bit-identical
  // to the pre-ladder code. A non-finite best value (diverged line search,
  // injected opt.diverge) or a thrown factorization during probing falls
  // through to rung 2: derivative-free Nelder-Mead on a guarded objective
  // that maps non-finite/throwing evaluations to +inf. If that also fails,
  // rung 3: keep the previous hyperparameters (the kernel is untouched).
  std::optional<std::vector<double>> winner;
  try {
    const opt::OptimizeResult best =
        opt::multistart_minimize(negative_lml, feasible_start, bounds, ms, rng);
    if (std::isfinite(best.value)) winner = best.x;
  } catch (const std::exception&) {
  }

  if (!winner) {
    core::trace::count("gpr.opt_degrade_nm");
    // The same fault site that poisoned the L-BFGS starts can veto the
    // Nelder-Mead rung, so tests can drive the ladder to the bottom.
    const bool nm_vetoed = core::faults::fire(core::faults::Site::kOptDiverge);
    if (nm_vetoed) {
      core::resilience::note(core::resilience::Event::kOptDiverge);
    }
    if (!nm_vetoed) {
      const opt::Objective guarded = [this](std::span<const double> theta,
                                            std::span<double> grad) -> double {
        for (double& g : grad) g = 0.0;  // NM never uses the gradient
        try {
          const double value =
              log_marginal_likelihood(theta, std::span<double>{});
          return std::isfinite(value)
                     ? -value
                     : std::numeric_limits<double>::infinity();
        } catch (const std::exception&) {
          return std::numeric_limits<double>::infinity();
        }
      };
      opt::NelderMeadOptions nm;
      nm.max_iterations =
          std::max<std::size_t>(100, options_.max_opt_iterations * 10);
      try {
        const opt::NelderMeadResult fallback =
            opt::nelder_mead_minimize(guarded, feasible_start, nm, bounds);
        if (std::isfinite(fallback.value)) winner = fallback.x;
      } catch (const std::exception&) {
      }
    }
  }

  if (!winner) {
    core::trace::count("gpr.opt_keep_previous");
    return;  // kernel_ still holds the pre-optimization hyperparameters
  }
  kernel_->set_log_params(*winner);
}

void GaussianProcessRegressor::fit(const Matrix& x, std::span<const double> y,
                                   stats::Rng& rng, const DistanceBase* base,
                                   std::span<const std::size_t> rows) {
  if (x.rows() == 0) throw std::invalid_argument("GPR::fit: empty design matrix");
  if (x.rows() != y.size()) {
    throw std::invalid_argument("GPR::fit: X/y size mismatch");
  }
  if (base != nullptr && rows.size() != x.rows()) {
    throw std::invalid_argument("GPR::fit: base rows/X size mismatch");
  }

  x_train_ = x;
  // Build the distance cache (and whatever the kernel derives from it,
  // e.g. ARD components) up front: optimization below shares it across
  // multistart workers, so it must be complete and read-only by then.
  // With a shared base the cache is gathered (O(n^2) copies) rather than
  // recomputed (O(n^2 d) FLOPs); the bits are identical either way.
  if (options_.use_distance_cache) {
    train_dist_ = base != nullptr
                      ? PairwiseDistances::train_from_base(*base, rows)
                      : PairwiseDistances::train(x_train_);
    kernel_->prepare_distances(*train_dist_);
  } else {
    train_dist_.reset();
  }
  y_raw_.assign(y.begin(), y.end());
  recenter_targets();

  if (options_.optimize && kernel_->num_params() > 0 && x.rows() >= 2) {
    optimize_hyperparameters(rng);
  }

  compute_posterior();
}

void GaussianProcessRegressor::append_training_point(std::span<const double> x,
                                                     double y) {
  if (x.size() != x_train_.cols()) {
    throw std::invalid_argument("GPR::add_point: dimension mismatch");
  }
  x_train_.push_row(x);  // in place; allocation-free within reserve
  if (train_dist_) train_dist_->append_x_row(x);

  y_raw_.push_back(y);
  // fit() centers by summing all targets in order; repeat that exactly so
  // the incremental path stays bit-identical to a full refit.
  recenter_targets();
}

void GaussianProcessRegressor::update_posterior_incremental() {
  core::trace::count("gpr.fit_incremental");
  const std::size_t n = x_train_.rows() - 1;  // training size before append
  Matrix x_new(1, x_train_.cols());
  {
    const auto last = x_train_.row(n);
    std::copy(last.begin(), last.end(), x_new.row(0).begin());
  }

  // n new kernel evaluations instead of the full n^2 gram rebuild. cross()
  // produces the same bits gram() would for these entries; the diagonal
  // entry comes from diagonal() so noise terms (White) are included.
  const Matrix k_new = kernel_->cross(x_train_, x_new);  // (n+1) x 1
  const double k_diag = kernel_->diagonal(x_new)[0];

  gram_.grow(n + 1, n + 1);  // in place; allocation-free within reserve
  for (std::size_t i = 0; i < n; ++i) gram_(i, n) = k_new(i, 0);
  {
    const auto bottom = gram_.row(n);
    for (std::size_t j = 0; j < n; ++j) bottom[j] = k_new(j, 0);
    bottom[n] = k_diag;
  }

  // O(n^2) factor extension. Only valid when the stored factor is of the
  // clean gram: with jitter baked in, or when the extension is not
  // positive, fall back to the full jittered refactor — exactly the path
  // a from-scratch fit() would take on this gram.
  bool extended = false;
  if (jitter_ == 0.0) {
    extended = factor_->extend(gram_.row(n).first(n), k_diag);
  }
  if (!extended) {
    // The jittered refactor can change every entry of L, not just the new
    // row — the candidate panel no longer matches (a successful extend()
    // leaves rows 0..n-1 of L untouched, so the panel stays live there).
    panel_valid_ = false;
    auto [factor, jitter] = linalg::cholesky_with_jitter(
        gram_, options_.initial_jitter, options_.max_jitter);
    factor_ = std::move(factor);
    jitter_ = jitter;
  }

  core::trace::count("gpr.alpha_solve");
  alpha_.assign(y_train_.begin(), y_train_.end());
  factor_->solve_in_place(alpha_);
  const std::size_t m = x_train_.rows();
  lml_ = -0.5 * linalg::dot(y_train_, alpha_) - 0.5 * factor_->log_det() -
         0.5 * static_cast<double>(m) * kLogTwoPi;
  last_good_params_ = kernel_->log_params();
}

void GaussianProcessRegressor::add_point(std::span<const double> x, double y) {
  if (!fitted()) throw std::logic_error("GPR::add_point before fit");
  append_training_point(x, y);
  update_posterior_incremental();
}

bool GaussianProcessRegressor::fit_add_point(std::span<const double> x, double y,
                                             stats::Rng& rng) {
  if (!fitted()) throw std::logic_error("GPR::fit_add_point before fit");

  const std::vector<double> params_before = kernel_->log_params();
  append_training_point(x, y);

  bool params_changed = false;
  if (options_.optimize && kernel_->num_params() > 0 && x_train_.rows() >= 2) {
    // Run the warm-started optimization exactly as fit() on the
    // concatenated data would (same rng stream, same starts). Converged
    // warm restarts return the start point bit-for-bit, so an exact
    // comparison detects "parameters unchanged".
    optimize_hyperparameters(rng);
    params_changed = kernel_->log_params() != params_before;
  }

  if (params_changed) {
    // New hyperparameters invalidate the cached gram: full rebuild.
    compute_posterior();
    return false;
  }
  update_posterior_incremental();
  return true;
}

Prediction GaussianProcessRegressor::predict(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("GPR::predict before fit");
  if (x.cols() != x_train_.cols()) {
    throw std::invalid_argument("GPR::predict: dimension mismatch");
  }
  return predict_from_cross(kernel_->cross(x_train_, x), x);
}

Prediction GaussianProcessRegressor::predict_from_cross(const Matrix& k_star,
                                                        const Matrix& x) const {
  if (!fitted()) throw std::logic_error("GPR::predict before fit");
  if (k_star.rows() != x_train_.rows() || k_star.cols() != x.rows()) {
    throw std::invalid_argument("GPR::predict_from_cross: shape mismatch");
  }

  const std::size_t n = x_train_.rows();
  Prediction out;
  out.mean = linalg::matvec_transposed(k_star, alpha_);
  for (double& m : out.mean) m += y_mean_;

  out.stddev.resize(x.rows());
  const std::vector<double> prior_diag = kernel_->diagonal(x);
  // sigma^2 = k** - k*^T K_y^{-1} k* via Z = L^{-1} K*; sigma^2_q = k** -
  // |z_q|^2. One heap scratch for Z; the shared sweep zero-inits the
  // accumulators in the stddev slots, so per scalar this performs exactly
  // the per-chunk solve + square + finalize chain it always has.
  std::vector<double> z(n * x.rows());
  variance_sweep(k_star, prior_diag, z.data(), 0, out.stddev.data(),
                 out.stddev);
  return out;
}

void GaussianProcessRegressor::variance_sweep(
    const Matrix& k_star, std::span<const double> prior_diag, double* z,
    std::size_t row_begin, double* acc, std::span<double> stddev_out) const {
  const std::size_t n = x_train_.rows();
  const std::size_t m = k_star.cols();
  const double* diag = prior_diag.data();
  double* sd = stddev_out.data();
  // Each query's variance solve is independent; chunks write disjoint
  // z / acc / stddev stripes, so the result is identical for any thread
  // count. Within a chunk the forward substitution runs over all columns
  // at once (contiguous inner loops) — per scalar it performs exactly the
  // operations a per-column solve_lower + dot(v, v) would, and resuming
  // at row_begin > 0 replays exactly the operations rows >= row_begin of
  // a from-scratch solve would see (solve_lower_block_resume contract).
  core::parallel_for_chunks(m, [&](std::size_t begin, std::size_t end) {
    factor_->solve_lower_block_resume(k_star, begin, end, z + begin, m,
                                      row_begin);
    const std::size_t nc = end - begin;
    double* a = acc + begin;
    if (row_begin == 0) std::fill(a, a + nc, 0.0);
    for (std::size_t i = row_begin; i < n; ++i) {
      const double* zi = z + i * m + begin;
      for (std::size_t q = 0; q < nc; ++q) a[q] += zi[q] * zi[q];
    }
    for (std::size_t q = 0; q < nc; ++q) {
      const double var = diag[begin + q] - a[q];
      sd[begin + q] = var > 0.0 ? std::sqrt(var) : 0.0;
    }
  });
}

void GaussianProcessRegressor::predict_batch(const Matrix& k_star,
                                             std::span<const double> prior_diag,
                                             linalg::Workspace& ws,
                                             std::span<double> mean_out,
                                             std::span<double> stddev_out) const {
  if (!fitted()) throw std::logic_error("GPR::predict_batch before fit");
  const std::size_t n = x_train_.rows();
  const std::size_t m = k_star.cols();
  if (k_star.rows() != n || prior_diag.size() != m || mean_out.size() != m ||
      stddev_out.size() != m) {
    throw std::invalid_argument("GPR::predict_batch: shape mismatch");
  }
  if (m == 0) return;
  core::trace::count("predict.batch_calls");
  core::trace::count("predict.batch_queries", m);

  // Mean: zero-init + ascending-row axpy of the cached alpha — exactly
  // matvec_transposed(k_star, alpha_), written into the caller's span.
  std::fill(mean_out.begin(), mean_out.end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::axpy(alpha_[i], k_star.row(i), mean_out);
  }
  for (double& v : mean_out) v += y_mean_;

  // Variance: one arena-owned n x m scratch for Z = L^{-1} K*. Allocated
  // before the parallel region (the Workspace is single-threaded by
  // contract); the shared sweep accumulates the column squares directly in
  // the stddev slots (zero-initialized per chunk) before finalizing them —
  // each scalar sees exactly the operations predict_from_cross() performs
  // on it.
  const linalg::Workspace::Scope scope(ws);
  const std::span<double> z = ws.alloc(n * m);
  variance_sweep(k_star, prior_diag, z.data(), 0, stddev_out.data(),
                 stddev_out);
}

void GaussianProcessRegressor::predict_batch_panel(
    const Matrix& k_star, std::span<const double> prior_diag,
    linalg::Workspace& ws, std::span<double> mean_out,
    std::span<double> stddev_out, bool with_mean) {
  if (!fitted()) throw std::logic_error("GPR::predict_batch before fit");
  const std::size_t n = x_train_.rows();
  const std::size_t m = k_star.cols();
  if (k_star.rows() != n || prior_diag.size() != m || stddev_out.size() != m ||
      (with_mean && mean_out.size() != m)) {
    throw std::invalid_argument("GPR::predict_batch: shape mismatch");
  }
  if (m == 0) return;
  core::trace::count("predict.batch_calls");
  core::trace::count("predict.batch_queries", m);
  (void)ws;  // kept for signature parity with predict_batch(); the panel
             // lives in member storage so it survives the sweep.

  // Mean: alpha changes on every posterior update, so this stays a full
  // O(n m) pass — identical to predict_batch()'s. Skipped entirely for
  // uncertainty-only acquisition (mean_from_cross_column() recovers any
  // single entry bit-identically).
  if (with_mean) {
    std::fill(mean_out.begin(), mean_out.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      linalg::axpy(alpha_[i], k_star.row(i), mean_out);
    }
    for (double& v : mean_out) v += y_mean_;
  }

  // Variance through the panel. Reusable only when the posterior grew
  // purely by factor extensions since the cached sweep (panel_valid_) and
  // the caller kept the cross matrix aligned column-for-column.
  const std::size_t r0 = panel_z_.rows();
  const bool reusable = panel_valid_ && panel_z_.cols() == m && r0 <= n;
  if (!reusable) {
    core::trace::count("panel.rebuilds");
    panel_acc_.resize(m);
    panel_z_.resize_discard(n, m);
    variance_sweep(k_star, prior_diag, panel_z_.data().data(), 0,
                   panel_acc_.data(), stddev_out);
  } else {
    // Rows 0..r0-1 of Z and the running sums are bitwise those of a fresh
    // sweep; only the appended factor rows are solved and folded in.
    // r0 == n (no growth since last sweep) finalizes from the sums alone.
    if (r0 < n) {
      core::trace::count("panel.rows_appended", n - r0);
      panel_z_.grow(n, m);
    }
    variance_sweep(k_star, prior_diag, panel_z_.data().data(), r0,
                   panel_acc_.data(), stddev_out);
  }
  panel_valid_ = true;
}

double GaussianProcessRegressor::mean_from_cross_column(const Matrix& k_star,
                                                        std::size_t col) const {
  if (!fitted()) throw std::logic_error("GPR::predict_batch before fit");
  const std::size_t n = x_train_.rows();
  if (k_star.rows() != n || col >= k_star.cols()) {
    throw std::invalid_argument("GPR::mean_from_cross_column: shape mismatch");
  }
  // Entry `col` of the full mean pass: zero-init, ascending-row axpy,
  // mean shift. Routed through the dispatched axpy kernel one element at
  // a time so the fused-multiply-add chain is the one the full pass runs
  // on this entry — bit-identical by construction.
  double acc = 0.0;
  const std::span<double> out(&acc, 1);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::axpy(alpha_[i], k_star.row(i).subspan(col, 1), out);
  }
  return acc + y_mean_;
}

void GaussianProcessRegressor::panel_remove_column(std::size_t local) {
  if (!panel_valid_ || local >= panel_z_.cols()) return;
  core::trace::count("panel.cols_dropped");
  panel_z_.remove_column(local);
  panel_acc_.erase(panel_acc_.begin() +
                   static_cast<std::ptrdiff_t>(local));
}

Prediction GaussianProcessRegressor::predict_batch(const Matrix& x,
                                                   linalg::Workspace& ws) const {
  if (!fitted()) throw std::logic_error("GPR::predict_batch before fit");
  if (x.cols() != x_train_.cols()) {
    throw std::invalid_argument("GPR::predict_batch: dimension mismatch");
  }
  const Matrix k_star = kernel_->cross(x_train_, x);
  const std::vector<double> prior_diag = kernel_->diagonal(x);
  Prediction out;
  out.mean.resize(x.rows());
  out.stddev.resize(x.rows());
  predict_batch(k_star, prior_diag, ws, out.mean, out.stddev);
  return out;
}

void GaussianProcessRegressor::reserve_additional(std::size_t extra) {
  if (!fitted()) throw std::logic_error("GPR::reserve_additional before fit");
  const std::size_t n_max = x_train_.rows() + extra;
  x_train_.reserve(n_max, x_train_.cols());
  y_raw_.reserve(n_max);
  y_train_.reserve(n_max);
  alpha_.reserve(n_max);
  gram_.reserve(n_max, n_max);
  factor_->reserve(n_max);
  if (train_dist_) train_dist_->reserve(n_max);
}

std::vector<double> GaussianProcessRegressor::predict_mean(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("GPR::predict_mean before fit");
  if (x.cols() != x_train_.cols()) {
    throw std::invalid_argument("GPR::predict_mean: dimension mismatch");
  }
  const Matrix k_star = kernel_->cross(x_train_, x);
  std::vector<double> mean = linalg::matvec_transposed(k_star, alpha_);
  for (double& m : mean) m += y_mean_;
  return mean;
}

std::vector<double> GaussianProcessRegressor::predict_mean_from_cross(
    const Matrix& k_star) const {
  if (!fitted()) throw std::logic_error("GPR::predict_mean before fit");
  if (k_star.rows() != x_train_.rows()) {
    throw std::invalid_argument("GPR::predict_mean_from_cross: shape mismatch");
  }
  std::vector<double> mean = linalg::matvec_transposed(k_star, alpha_);
  for (double& m : mean) m += y_mean_;
  return mean;
}

double GaussianProcessRegressor::log_marginal_likelihood() const {
  if (!fitted()) throw std::logic_error("GPR::lml before fit");
  return lml_;
}

}  // namespace alamr::gp
