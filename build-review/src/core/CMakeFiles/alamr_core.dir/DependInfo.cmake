
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch.cpp" "src/core/CMakeFiles/alamr_core.dir/batch.cpp.o" "gcc" "src/core/CMakeFiles/alamr_core.dir/batch.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/alamr_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/alamr_core.dir/export.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/alamr_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/alamr_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/alamr_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/alamr_core.dir/online.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/alamr_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/alamr_core.dir/simulator.cpp.o.d"
  "/root/repo/src/core/strategies.cpp" "src/core/CMakeFiles/alamr_core.dir/strategies.cpp.o" "gcc" "src/core/CMakeFiles/alamr_core.dir/strategies.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/alamr_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/alamr_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/gp/CMakeFiles/alamr_gp.dir/DependInfo.cmake"
  "/root/repo/build-review/src/data/CMakeFiles/alamr_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/opt/CMakeFiles/alamr_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
