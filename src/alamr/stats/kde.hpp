#pragma once

// Gaussian kernel density estimation, used to regenerate the violin plots
// of Fig. 2 (cost distributions of AL-selected samples). The bench prints
// the density evaluated on a fixed grid; plotted, that is the violin shape.

#include <span>
#include <vector>

namespace alamr::stats {

/// A density curve sampled on an evenly spaced grid.
struct DensityCurve {
  std::vector<double> x;        // grid points
  std::vector<double> density;  // estimated density at each grid point
  double bandwidth = 0.0;       // bandwidth actually used
};

/// Scott's rule bandwidth: sigma_hat * n^(-1/5); robust variant uses
/// min(stddev, IQR/1.349). Returns a small positive floor for degenerate
/// (zero-spread) samples so the KDE stays well defined.
double scott_bandwidth(std::span<const double> values);

/// Evaluates a Gaussian KDE on `grid_size` points spanning
/// [min - 3h, max + 3h]. If `bandwidth` <= 0, Scott's rule is used.
DensityCurve gaussian_kde(std::span<const double> values,
                          std::size_t grid_size = 64,
                          double bandwidth = 0.0);

/// Histogram with `bins` equal-width bins on [lo, hi]; values outside the
/// range are clamped into the edge bins. Counts are raw (not normalized).
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  std::size_t total() const noexcept;
  /// Center of bin i.
  double center(std::size_t i) const noexcept;
};

Histogram histogram(std::span<const double> values, std::size_t bins,
                    double lo, double hi);

}  // namespace alamr::stats
