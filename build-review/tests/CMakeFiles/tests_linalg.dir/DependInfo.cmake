
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_linalg_cholesky.cpp" "tests/CMakeFiles/tests_linalg.dir/test_linalg_cholesky.cpp.o" "gcc" "tests/CMakeFiles/tests_linalg.dir/test_linalg_cholesky.cpp.o.d"
  "/root/repo/tests/test_linalg_matrix.cpp" "tests/CMakeFiles/tests_linalg.dir/test_linalg_matrix.cpp.o" "gcc" "tests/CMakeFiles/tests_linalg.dir/test_linalg_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/linalg/CMakeFiles/alamr_linalg.dir/DependInfo.cmake"
  "/root/repo/build-review/src/stats/CMakeFiles/alamr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
